package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestFacadeAnalyze(t *testing.T) {
	rep, err := repro.Analyze("particles")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bottleneck() == nil {
		t.Fatal("no bottleneck in the imbalanced workload")
	}
	if _, err := repro.Analyze("nope"); err == nil {
		t.Fatal("unknown workload must fail")
	}
	names := repro.Workloads()
	if len(names) < 6 {
		t.Fatalf("workload library too small: %v", names)
	}
}

// TestCommands builds and exercises every cmd/ binary end to end: generate a
// summary file with apprentice, analyze it with cosy (all engines and the
// baseline), and check the aslc front end on the canonical specification.
func TestCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"apprentice", "cosy", "aslc"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	summary := filepath.Join(dir, "particles.apr")
	if out, err := exec.Command(bins["apprentice"], "-workload", "particles", "-pes", "2,8,32", "-o", summary).CombinedOutput(); err != nil {
		t.Fatalf("apprentice: %v\n%s", err, out)
	}
	if fi, err := os.Stat(summary); err != nil || fi.Size() == 0 {
		t.Fatalf("summary file: %v", err)
	}

	for _, engine := range []string{"object", "sql", "client"} {
		out, err := exec.Command(bins["cosy"], "-in", summary, "-nope", "32", "-engine", engine).CombinedOutput()
		if err != nil {
			t.Fatalf("cosy -engine %s: %v\n%s", engine, err, out)
		}
		text := string(out)
		if !strings.Contains(text, "bottleneck:") || !strings.Contains(text, "SyncCost") {
			t.Fatalf("cosy -engine %s output:\n%s", engine, text)
		}
	}

	// The refinement-driven search on both engines.
	for _, engine := range []string{"object", "sql"} {
		out, err := exec.Command(bins["cosy"], "-in", summary, "-nope", "32", "-engine", engine, "-guided").CombinedOutput()
		if err != nil {
			t.Fatalf("cosy -guided -engine %s: %v\n%s", engine, err, out)
		}
		if !strings.Contains(string(out), "refinement search:") {
			t.Fatalf("cosy -guided -engine %s output:\n%s", engine, out)
		}
	}

	out, err := exec.Command(bins["cosy"], "-in", summary, "-nope", "32", "-baseline").CombinedOutput()
	if err != nil {
		t.Fatalf("cosy -baseline: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "paradyn") {
		t.Fatalf("baseline output:\n%s", out)
	}

	out, err = exec.Command(bins["aslc"], "-canonical").CombinedOutput()
	if err != nil {
		t.Fatalf("aslc: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "8 properties") {
		t.Fatalf("aslc output: %s", out)
	}
	out, err = exec.Command(bins["aslc"], "-canonical", "-emit", "schema").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "CREATE TABLE Region") {
		t.Fatalf("aslc -emit schema: %v\n%s", err, out)
	}
	out, err = exec.Command(bins["aslc"], "-canonical", "-emit", "sql").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "property SyncCost") {
		t.Fatalf("aslc -emit sql: %v\n%s", err, out)
	}
}

// TestCosyAgainstKojakdb runs the full client/server deployment: a kojakdb
// wire server with the COSY schema, and cosy analyzing through a connection
// pool with an explicit fetch size, prepared statements end to end.
func TestCosyAgainstKojakdb(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"kojakdb", "cosy"} {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	// cosy creates the schema itself, so the server starts without -schema.
	srv := exec.Command(bins["kojakdb"], "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(os.Interrupt)
		srv.Wait()
	}()
	// The server prints "kojakdb: serving on <addr> ..." once it is bound.
	var addr string
	{
		buf := make([]byte, 256)
		n, err := stdout.Read(buf)
		if err != nil {
			t.Fatalf("reading server banner: %v", err)
		}
		line := string(buf[:n])
		fields := strings.Fields(line)
		for i, f := range fields {
			if f == "on" && i+1 < len(fields) {
				addr = fields[i+1]
			}
		}
		if addr == "" {
			t.Fatalf("no address in banner %q", line)
		}
	}

	out, err := exec.Command(bins["cosy"],
		"-workload", "particles", "-nope", "32",
		"-engine", "sql", "-db", addr, "-fetchsize", "25", "-workers", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("cosy -engine sql -db: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "bottleneck:") {
		t.Fatalf("cosy -engine sql -db output:\n%s", out)
	}
}

// TestExamplesRun executes every example main and checks it succeeds.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs examples")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 4 {
		t.Fatalf("expected at least 4 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			out, err := exec.Command("go", "run", "./examples/"+e.Name()).CombinedOutput()
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
