// Command kojakdb runs a standalone COSY database server speaking the wire
// protocol, with a selectable vendor performance profile. It optionally
// pre-creates the COSY schema so clients can start inserting immediately.
//
// Usage:
//
//	kojakdb -addr 127.0.0.1:7070 -profile oracle7 -schema
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/asl/sqlgen"
	"repro/internal/model"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	profileName := flag.String("profile", "fast", "vendor profile: fast, access, oracle7, mssql, postgres, oracle-remote")
	schema := flag.Bool("schema", false, "pre-create the COSY schema")
	verbose := flag.Bool("v", false, "log connection errors")
	flag.Parse()

	profile, ok := wire.ByName(*profileName)
	if !ok {
		fmt.Fprintf(os.Stderr, "kojakdb: unknown profile %q\n", *profileName)
		os.Exit(2)
	}

	db := sqldb.NewDB()
	if *schema {
		world := model.MustCompileSpec()
		exec := sqlgen.ExecutorFunc(func(q string, p *sqldb.Params) (int, error) {
			res, err := db.Exec(q, p)
			if err != nil {
				return 0, err
			}
			return res.Affected, nil
		})
		if err := sqlgen.CreateSchema(world, exec); err != nil {
			log.Fatal(err)
		}
	}

	var logger *log.Logger
	if *verbose {
		logger = log.New(os.Stderr, "kojakdb: ", log.LstdFlags)
	}
	srv, err := wire.NewServer(db, profile, logger)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kojakdb: serving on %s (profile %s, schema=%v)\n", srv.Addr(), profile, *schema)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("kojakdb: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("kojakdb: plan cache: %d hits, %d misses, %d evictions (%d cached plans)\n",
		st.PlanCacheHits, st.PlanCacheMisses, st.PlanCacheEvictions, st.PlanCacheEntries)
	fmt.Printf("kojakdb: prepared statements: %d live handles, %d replans after DDL\n",
		st.PreparedLive, st.Replans)
}
