// Command kojakdb runs a standalone COSY database server speaking the wire
// protocol, with a selectable vendor performance profile. It optionally
// pre-creates the COSY schema so clients can start inserting immediately.
//
// A kojakdb instance can serve as one shard of a run-partitioned COSY
// database: sharding is entirely client-side (cosy/apprentice route by run
// id), so a shard is an ordinary server that merely knows its place in the
// topology. -shard-id/-shards record that identity in the banner so
// operators can tell N otherwise-identical servers apart; -max-concurrent
// bounds how many statements the instance executes simultaneously, the
// saturation model the sharding benchmarks are measured against.
//
// Usage:
//
//	kojakdb -addr 127.0.0.1:7070 -profile oracle7 -schema
//	kojakdb -addr 127.0.0.1:7071 -shard-id 1 -shards 4 -schema
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/asl/sqlgen"
	"repro/internal/model"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	profileName := flag.String("profile", "fast", "vendor profile: fast, access, oracle7, mssql, postgres, oracle-remote")
	schema := flag.Bool("schema", false, "pre-create the COSY schema")
	verbose := flag.Bool("v", false, "log connection errors")
	drain := flag.Duration("drain", 5*time.Second, "how long a SIGINT/SIGTERM shutdown waits for connected clients to drain before force-closing them")
	shardID := flag.Int("shard-id", 0, "this instance's shard index in a sharded deployment (0-based)")
	shards := flag.Int("shards", 1, "total shard count of the deployment this instance belongs to")
	maxConcurrent := flag.Int("max-concurrent", 0, "statements executed simultaneously; 0 means unbounded")
	cacheSize := flag.Int("cache-size", sqldb.DefaultResultCacheSize, "result-cache capacity in cached SELECT results; 0 disables the cache")
	engine := flag.String("engine", sqldb.EngineVector, "SELECT execution engine: vector (columnar, batch-at-a-time) or row (tuple-at-a-time interpreter)")
	flag.Parse()

	switch {
	case flag.NArg() > 0:
		usageError("unexpected arguments: %v", flag.Args())
	case *addr == "":
		usageError("-addr must not be empty")
	case *shards < 1:
		usageError("-shards must be at least 1, got %d", *shards)
	case *shardID < 0 || *shardID >= *shards:
		usageError("-shard-id %d outside the shard range [0,%d)", *shardID, *shards)
	case *maxConcurrent < 0:
		usageError("-max-concurrent must not be negative, got %d", *maxConcurrent)
	case *cacheSize < 0:
		usageError("-cache-size must not be negative, got %d (0 disables the cache)", *cacheSize)
	case *drain < 0:
		usageError("-drain must not be negative, got %v", *drain)
	}

	profile, ok := wire.ByName(*profileName)
	if !ok {
		usageError("unknown profile %q", *profileName)
	}

	db := sqldb.NewDB()
	db.SetResultCacheSize(*cacheSize)
	if err := db.SetEngine(*engine); err != nil {
		usageError("%v", err)
	}
	if *schema {
		world := model.MustCompileSpec()
		exec := sqlgen.ExecutorFunc(func(q string, p *sqldb.Params) (int, error) {
			res, err := db.Exec(q, p)
			if err != nil {
				return 0, err
			}
			return res.Affected, nil
		})
		if err := sqlgen.CreateSchema(world, exec); err != nil {
			log.Fatal(err)
		}
	}

	var logger *log.Logger
	if *verbose {
		logger = log.New(os.Stderr, "kojakdb: ", log.LstdFlags)
	}
	srv, err := wire.NewServer(db, profile, logger)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetMaxConcurrent(*maxConcurrent)
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	identity := ""
	if *shards > 1 {
		identity = fmt.Sprintf(", shard %d/%d", *shardID, *shards)
	}
	fmt.Printf("kojakdb: serving on %s (profile %s, engine %s, schema=%v%s)\n", srv.Addr(), profile, *engine, *schema, identity)

	// Graceful shutdown on SIGINT and SIGTERM: stop accepting, give the
	// connected clients up to -drain to finish their in-flight requests and
	// disconnect, then force-close whatever lingers and report the session's
	// statement statistics. A second signal skips the drain.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("kojakdb: %v received, draining connections (up to %v; signal again to force)\n", got, *drain)
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(*drain) }()
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case got = <-sig:
		fmt.Printf("kojakdb: %v received again, closing now\n", got)
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
		<-done
	}
	st := db.Stats()
	fmt.Printf("kojakdb: plan cache: %d hits, %d misses, %d evictions (%d cached plans)\n",
		st.PlanCacheHits, st.PlanCacheMisses, st.PlanCacheEvictions, st.PlanCacheEntries)
	fmt.Printf("kojakdb: prepared statements: %d live handles, %d replans after DDL\n",
		st.PreparedLive, st.Replans)
	fmt.Printf("kojakdb: batched execution: %d batches carrying %d bindings\n",
		st.BatchExecs, st.BatchBindings)
	fmt.Printf("kojakdb: result cache: %d hits, %d misses, %d invalidations, %d evictions (%d cached results)\n",
		st.ResultCacheHits, st.ResultCacheMisses, st.ResultCacheInvalidations, st.ResultCacheEvictions, st.ResultCacheEntries)
	fmt.Printf("kojakdb: execution engine %s: %d vectorized selects, %d row-engine fallbacks\n",
		st.Engine, st.VecSelects, st.VecFallbacks)
	if st.VecFallbacks > 0 {
		r := st.VecFallbackReasons
		fmt.Printf("kojakdb: fallback reasons: %d join-shape, %d star, %d order-by-expr, %d subquery, %d other\n",
			r.JoinShape, r.Star, r.OrderExpr, r.Subquery, r.Other)
	}
}

// usageError reports a bad flag value and exits with the conventional usage
// status.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kojakdb: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run kojakdb -h for usage")
	os.Exit(2)
}
