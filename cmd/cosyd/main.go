// Command cosyd runs the COSY analyzer as a resident multi-tenant service:
// it loads one dataset once, then serves analyze-run requests over TCP until
// shut down. Clients (see cmd/loadgen, or internal/service.Client) share the
// loaded database; per-tenant admission control bounds and fair-shares the
// concurrent analyses, and request deadlines cancel abandoned work down
// through every layer.
//
// The backing database is in-process by default; -db points the service at
// one or more kojakdb servers instead (comma-separated addresses are the
// shards of a run-partitioned database, exactly as in cosy).
//
// Usage:
//
//	cosyd -addr 127.0.0.1:7075 -workload particles
//	cosyd -addr 127.0.0.1:7075 -workload particles -capacity 8 -tenants sweep:1:4,interactive:4:0
//	cosyd -addr 127.0.0.1:7075 -db 127.0.0.1:7070,127.0.0.1:7071 -preloaded
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/core"
	"repro/internal/godbc"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/sqldb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7075", "listen address")
	in := flag.String("in", "", "Apprentice summary file (overrides -workload)")
	workload := flag.String("workload", "stencil2d", "library workload to simulate when no -in file is given")
	dbAddr := flag.String("db", "", "kojakdb address(es) backing the service, comma-separated for a sharded database; empty runs in process")
	preloaded := flag.Bool("preloaded", false, "assume the -db servers already hold the dataset; skip schema creation and loading")
	capacity := flag.Int("capacity", runtime.GOMAXPROCS(0), "concurrent analyses admitted; further requests queue")
	maxQueue := flag.Int("max-queue", 0, "queued requests beyond which new ones are rejected; 0 means unbounded")
	tenants := flag.String("tenants", "", "per-tenant admission policies as name:weight:maxinflight[,...]; weight scales the tenant's fair share, maxinflight 0 means uncapped")
	workers := flag.Int("workers", 0, "evaluation workers per analysis; omit for GOMAXPROCS")
	batchSize := flag.Int("batchsize", 0, "context instances per batched request; 1 disables batching, omit for the default")
	threshold := flag.Float64("threshold", 0, "performance-problem severity threshold; omit for the default")
	verbose := flag.Bool("v", false, "log connection errors")
	drain := flag.Duration("drain", 5*time.Second, "how long a SIGINT/SIGTERM shutdown waits for clients to drain before force-closing them")
	metricsAddr := flag.String("metrics-addr", "", "address serving GET /metrics and GET /healthz over HTTP; empty disables the endpoint")
	flag.Parse()

	switch {
	case flag.NArg() > 0:
		usageError("unexpected arguments: %v", flag.Args())
	case *addr == "":
		usageError("-addr must not be empty")
	case *capacity < 1:
		usageError("-capacity must be at least 1, got %d", *capacity)
	case *maxQueue < 0:
		usageError("-max-queue must not be negative, got %d", *maxQueue)
	case *workers < 0:
		usageError("-workers must not be negative, got %d (0 means GOMAXPROCS)", *workers)
	case *batchSize < 0:
		usageError("-batchsize must not be negative, got %d (0 means the default)", *batchSize)
	case *threshold < 0:
		usageError("-threshold must not be negative, got %g", *threshold)
	case *drain < 0:
		usageError("-drain must not be negative, got %v", *drain)
	}
	tenantCfg, err := parseTenants(*tenants)
	if err != nil {
		usageError("%v", err)
	}
	shardAddrs, err := godbc.SplitAddrs(*dbAddr)
	if err != nil {
		usageError("%v", err)
	}
	if *preloaded && len(shardAddrs) == 0 {
		usageError("-preloaded requires -db (the in-process database starts empty)")
	}

	ds, err := loadDataset(*in, *workload)
	if err != nil {
		log.Fatal(err)
	}
	g, err := model.Build(ds)
	if err != nil {
		log.Fatal(err)
	}

	// The executor must be safe for concurrent use: capacity admitted
	// analyses each fan out over the evaluation workers.
	conns := *capacity * max(*workers, 1)
	var q core.QueryExec
	var closeDB func()
	switch {
	case len(shardAddrs) > 1:
		sdb, err := godbc.DialSharded(shardAddrs, conns)
		if err != nil {
			log.Fatal(err)
		}
		closeDB = func() { sdb.Close() }
		if !*preloaded {
			if err := loadSharded(g, sdb); err != nil {
				log.Fatal(err)
			}
		}
		q = sdb
	case len(shardAddrs) == 1:
		pool, err := godbc.NewPool(shardAddrs[0], conns)
		if err != nil {
			log.Fatal(err)
		}
		closeDB = func() { pool.Close() }
		if !*preloaded {
			if err := loadSingle(g, sqlgen.ExecutorFunc(func(s string, p *sqldb.Params) (int, error) {
				res, err := pool.Exec(s, p)
				return res.Affected, err
			})); err != nil {
				log.Fatal(err)
			}
		}
		q = pool
	default:
		db := sqldb.NewDB()
		if err := loadSingle(g, sqlgen.ExecutorFunc(func(s string, p *sqldb.Params) (int, error) {
			res, err := db.Exec(s, p)
			if err != nil {
				return 0, err
			}
			return res.Affected, nil
		})); err != nil {
			log.Fatal(err)
		}
		closeDB = func() {}
		q = godbc.Embedded{DB: db}
	}

	svc := service.New(g, q, service.Config{
		Capacity:  *capacity,
		MaxQueue:  *maxQueue,
		Workers:   *workers,
		BatchSize: *batchSize,
		Threshold: *threshold,
		Tenants:   tenantCfg,
	})
	var logger *log.Logger
	if *verbose {
		logger = log.New(os.Stderr, "cosyd: ", log.LstdFlags)
	}
	srv := service.NewServer(svc, logger)
	if err := srv.Listen(*addr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cosyd: serving %s on %s (capacity %d, %d tenants configured)\n",
		g.Dataset.Program, srv.Addr(), *capacity, len(tenantCfg))
	var metricsSrv interface{ Close() error }
	if *metricsAddr != "" {
		hs, bound, err := srv.ServeMetrics(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		metricsSrv = hs
		fmt.Printf("cosyd: metrics on http://%s/metrics\n", bound)
	}

	// Graceful shutdown on SIGINT/SIGTERM, as kojakdb does: stop accepting,
	// drain in-flight analyses up to -drain, then force-close. A second
	// signal skips the drain.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("cosyd: %v received, draining connections (up to %v; signal again to force)\n", got, *drain)
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(*drain) }()
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case got = <-sig:
		fmt.Printf("cosyd: %v received again, closing now\n", got)
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
		<-done
	}
	closeDB()
	// The final snapshot is taken only now, strictly after Shutdown (or
	// Close) returned: that return is the drain barrier — every request
	// goroutine has finished its admission release and metrics recording —
	// so these numbers reconcile exactly (nothing in flight, every admitted
	// analysis classified). Snapshotting before the barrier raced the last
	// requests and could under-count.
	snap := srv.MetricsSnapshot()
	st := snap.Admission
	fmt.Printf("cosyd: admission: %d admitted (%d queued first), %d shed, %d rejected\n",
		st.Admitted, st.Queued, st.Shed, st.Rejected)
	if metricsSrv != nil {
		metricsSrv.Close()
	}
}

// parseTenants parses -tenants: comma-separated name:weight:maxinflight
// triples ("sweep:1:4,interactive:4:0").
func parseTenants(list string) (map[string]service.TenantConfig, error) {
	if list == "" {
		return nil, nil
	}
	out := make(map[string]service.TenantConfig)
	for _, item := range strings.Split(list, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) != 3 || parts[0] == "" {
			return nil, fmt.Errorf("cosyd: tenant %q: want name:weight:maxinflight", item)
		}
		weight, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("cosyd: tenant %q: weight must be a positive number", item)
		}
		maxInFlight, err := strconv.Atoi(parts[2])
		if err != nil || maxInFlight < 0 {
			return nil, fmt.Errorf("cosyd: tenant %q: maxinflight must be a non-negative integer (0 means uncapped)", item)
		}
		if _, dup := out[parts[0]]; dup {
			return nil, fmt.Errorf("cosyd: tenant %q configured twice", parts[0])
		}
		out[parts[0]] = service.TenantConfig{Weight: weight, MaxInFlight: maxInFlight}
	}
	return out, nil
}

// loadSingle creates the schema and loads the whole dataset on one executor.
func loadSingle(g *model.Graph, exec sqlgen.Executor) error {
	if err := sqlgen.CreateSchema(g.World, exec); err != nil {
		return err
	}
	_, err := sqlgen.Load(g.Store, exec)
	return err
}

// loadSharded creates the schema on every shard and loads the dataset
// run-wise, exactly as cosy does.
func loadSharded(g *model.Graph, sdb *godbc.ShardedDB) error {
	if err := sqlgen.CreateSchema(g.World, sdb.BroadcastExecutor()); err != nil {
		return err
	}
	_, err := sqlgen.LoadSharded(g.Store, model.RunPartitioned(), sdb.ShardFor, sdb.ShardExecutors()...)
	return err
}

func loadDataset(in, workload string) (*model.Dataset, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return apprentice.ReadSummary(f)
	}
	w, ok := apprentice.Library()[workload]
	if !ok {
		return nil, fmt.Errorf("cosyd: unknown workload %q", workload)
	}
	return apprentice.Simulate(w, apprentice.PartitionSweep(2, 4, 8, 16, 32), 42)
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cosyd: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run cosyd -h for usage")
	os.Exit(2)
}
