package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBatchedAnalyze/oracle-remote/prepared/workers=1         	       3	 383983570 ns/op
BenchmarkBatchedAnalyze/oracle-remote/batch=32/workers=1         	       3	  41357539 ns/op
BenchmarkBatchedAnalyze/oracle-remote/batch=32/workers=1         	       3	  41221004 ns/op
BenchmarkInsertionByBackend/oracle7-8     	      12	  98210042 ns/op	        52.31 ns/record
PASS
ok  	repro	2.905s
?   	repro/cmd/benchjson	[no test files]
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "repro" {
		t.Fatalf("metadata: %+v", doc)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("cpu: %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkBatchedAnalyze/oracle-remote/prepared/workers=1" || b.Iterations != 3 {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 383983570 {
		t.Fatalf("ns/op: %v", b.Metrics)
	}
	// Repeated -count runs stay separate entries.
	if doc.Benchmarks[1].Name != doc.Benchmarks[2].Name {
		t.Fatalf("repeated runs: %+v", doc.Benchmarks[1:3])
	}
	// Custom ReportMetric units survive.
	last := doc.Benchmarks[3]
	if last.Metrics["ns/record"] != 52.31 {
		t.Fatalf("custom metric: %v", last.Metrics)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	doc, err := Parse(strings.NewReader("random line\nBenchmarkBroken abc ns/op\nok repro 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed noise as benchmarks: %+v", doc.Benchmarks)
	}
}
