package main

import (
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBatchedAnalyze/oracle-remote/prepared/workers=1         	       3	 383983570 ns/op
BenchmarkBatchedAnalyze/oracle-remote/batch=32/workers=1         	       3	  41357539 ns/op
BenchmarkBatchedAnalyze/oracle-remote/batch=32/workers=1         	       3	  41221004 ns/op
BenchmarkInsertionByBackend/oracle7-8     	      12	  98210042 ns/op	        52.31 ns/record
PASS
ok  	repro	2.905s
?   	repro/cmd/benchjson	[no test files]
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Pkg != "repro" {
		t.Fatalf("metadata: %+v", doc)
	}
	if !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("cpu: %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkBatchedAnalyze/oracle-remote/prepared/workers=1" || b.Iterations != 3 {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 383983570 {
		t.Fatalf("ns/op: %v", b.Metrics)
	}
	// Repeated -count runs stay separate entries.
	if doc.Benchmarks[1].Name != doc.Benchmarks[2].Name {
		t.Fatalf("repeated runs: %+v", doc.Benchmarks[1:3])
	}
	// Custom ReportMetric units survive.
	last := doc.Benchmarks[3]
	if last.Metrics["ns/record"] != 52.31 {
		t.Fatalf("custom metric: %v", last.Metrics)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	doc, err := Parse(strings.NewReader("random line\nBenchmarkBroken abc ns/op\nok repro 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("parsed noise as benchmarks: %+v", doc.Benchmarks)
	}
}

// bdoc builds a document from (name, ns/op) pairs; repeated names model
// -count repetitions.
func bdoc(entries ...any) *Document {
	doc := &Document{}
	for i := 0; i+1 < len(entries); i += 2 {
		doc.Benchmarks = append(doc.Benchmarks, Benchmark{
			Name:       entries[i].(string),
			Iterations: 1,
			Metrics:    map[string]float64{"ns/op": entries[i+1].(float64)},
		})
	}
	return doc
}

func regressions(deltas []Delta) []string {
	var out []string
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d.Name)
		}
	}
	return out
}

// TestCompareNoChange: identical measurements never regress — the no-change
// PR case the bench-compare job must pass.
func TestCompareNoChange(t *testing.T) {
	doc := bdoc("BenchmarkBatchedAnalyze/batch=32", 100.0, "BenchmarkBatchedAnalyze/prepared", 500.0)
	deltas := Compare(doc, bdoc("BenchmarkBatchedAnalyze/batch=32", 100.0, "BenchmarkBatchedAnalyze/prepared", 500.0), nil, 0.20)
	if len(deltas) != 2 {
		t.Fatalf("compared %d benchmarks, want 2", len(deltas))
	}
	if r := regressions(deltas); len(r) != 0 {
		t.Fatalf("no-change comparison flagged regressions: %v", r)
	}
}

// TestCompareFlagsRegression: a 25% slowdown trips the 20% gate, a 10% one
// does not, and an improvement never does.
func TestCompareFlagsRegression(t *testing.T) {
	old := bdoc("a", 100.0, "b", 100.0, "c", 100.0)
	deltas := Compare(old, bdoc("a", 125.0, "b", 110.0, "c", 60.0), nil, 0.20)
	if got := regressions(deltas); len(got) != 1 || got[0] != "a" {
		t.Fatalf("regressions = %v, want [a]", got)
	}
	// Exactly at the bound is allowed; just beyond is not.
	if r := regressions(Compare(old, bdoc("a", 120.0), nil, 0.20)); len(r) != 0 {
		t.Fatalf("exactly 20%% flagged: %v", r)
	}
	if r := regressions(Compare(old, bdoc("a", 121.0), nil, 0.20)); len(r) != 1 {
		t.Fatalf("21%% not flagged: %v", r)
	}
}

// TestCompareUsesBestOfRepeats: -count repetitions are folded to the
// minimum per side, so one noisy outlier in either document cannot fake or
// mask a regression.
func TestCompareUsesBestOfRepeats(t *testing.T) {
	old := bdoc("a", 100.0, "a", 400.0) // noisy old outlier
	deltas := Compare(old, bdoc("a", 105.0, "a", 390.0), nil, 0.20)
	if deltas[0].Old != 100 || deltas[0].New != 105 {
		t.Fatalf("best-of folding: %+v", deltas[0])
	}
	if deltas[0].Regression {
		t.Fatal("5% over the best old run flagged as regression")
	}
	if r := regressions(Compare(old, bdoc("a", 130.0, "a", 90.0), nil, 0.20)); len(r) != 0 {
		t.Fatalf("best new run improved, still flagged: %v", r)
	}
}

// TestCompareFilterAndDisjoint: the -bench expression restricts the
// comparison, and disjoint documents compare vacuously (the missing-baseline
// skip is decided by CI, but an empty intersection must not fail either).
func TestCompareFilterAndDisjoint(t *testing.T) {
	old := bdoc("BenchmarkBatchedAnalyze/x", 100.0, "BenchmarkOther", 100.0)
	new := bdoc("BenchmarkBatchedAnalyze/x", 500.0, "BenchmarkOther", 500.0)
	deltas := Compare(old, new, regexp.MustCompile("BenchmarkBatchedAnalyze"), 0.20)
	if len(deltas) != 1 || deltas[0].Name != "BenchmarkBatchedAnalyze/x" {
		t.Fatalf("filtered comparison: %+v", deltas)
	}
	if got := Compare(bdoc("a", 1.0), bdoc("b", 1.0), nil, 0.20); len(got) != 0 {
		t.Fatalf("disjoint documents compared: %+v", got)
	}
}

// TestCompareRenamedBenchmarkIgnored: a benchmark that only exists on one
// side (added or removed by the PR) is not comparable and must not fail the
// gate.
func TestCompareRenamedBenchmarkIgnored(t *testing.T) {
	deltas := Compare(bdoc("old-name", 100.0), bdoc("new-name", 1000.0, "old-name", 100.0), nil, 0.20)
	if len(deltas) != 1 || deltas[0].Name != "old-name" || deltas[0].Regression {
		t.Fatalf("rename handling: %+v", deltas)
	}
}

// TestCompareAcrossCoreCounts: the -GOMAXPROCS suffix go test appends must
// not defeat the comparison when the baseline runner and the PR runner have
// different core counts (including a 1-core side with no suffix at all).
func TestCompareAcrossCoreCounts(t *testing.T) {
	old := bdoc("BenchmarkX/batch=32-2", 100.0)
	deltas := Compare(old, bdoc("BenchmarkX/batch=32-4", 130.0), nil, 0.20)
	if len(deltas) != 1 || !deltas[0].Regression {
		t.Fatalf("cross-core comparison: %+v", deltas)
	}
	if deltas[0].Name != "BenchmarkX/batch=32" {
		t.Fatalf("name not normalized: %+v", deltas[0])
	}
	if got := Compare(old, bdoc("BenchmarkX/batch=32", 101.0), nil, 0.20); len(got) != 1 || got[0].Regression {
		t.Fatalf("suffixless side: %+v", got)
	}
	// A name whose tail is not a core count stays untouched.
	if got := Compare(bdoc("BenchmarkX/mode=a-b", 100.0), bdoc("BenchmarkX/mode=a-b", 100.0), nil, 0.20); len(got) != 1 {
		t.Fatalf("non-numeric suffix normalized away: %+v", got)
	}
}
