// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can archive one machine-readable perf artifact per commit
// (BENCH_<sha>.json) and the perf trajectory of the repository can be
// charted across pushes.
//
// With -compare it consumes two such documents instead and fails (exit 1)
// when any benchmark present in both regressed its ns/op beyond -max-regress
// — the check the bench-compare CI job runs on every pull request against
// the latest main artifact.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=3x -count=3 ./... | benchjson -sha $GITHUB_SHA > BENCH_$GITHUB_SHA.json
//	benchjson -compare -max-regress 0.20 [-bench BenchmarkBatchedAnalyze] old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line. Repeated runs of the same
// benchmark (-count > 1) appear as repeated entries, in output order, so
// downstream tooling can compute its own spread statistics.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps a unit ("ns/op", "B/op", "allocs/op", custom
	// b.ReportMetric units) to its value.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the archived artifact: build metadata plus every benchmark.
type Document struct {
	SHA        string      `json:"sha,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output. Unrecognized lines (PASS, ok, test
// log noise) are skipped: the converter must not fail on the mixed output of
// a multi-package ./... run.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	meta := map[string]*string{
		"goos:": &doc.GOOS, "goarch:": &doc.GOARCH, "pkg:": &doc.Pkg, "cpu:": &doc.CPU,
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if dst, ok := meta[fields[0]]; ok && *dst == "" {
				*dst = strings.Join(fields[1:], " ")
				continue
			}
		}
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
		// The remainder alternates value and unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) == 0 {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// Delta is the comparison of one benchmark across two documents. Ratio is
// new/old of the best (minimum) ns/op on each side: -count repetitions make
// both sides a distribution, and the minimum is the run least disturbed by
// scheduler noise, so a real regression moves it while a noisy outlier does
// not.
type Delta struct {
	Name       string
	Old, New   float64 // best ns/op per side
	Ratio      float64
	Regression bool
}

// normalizeName strips the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkX/batch=32-4" → "BenchmarkX/batch=32"), so a
// baseline recorded on an N-core runner still compares against a run on an
// M-core one instead of silently sharing no names with it.
func normalizeName(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return name
	}
	if suffix := name[i+1:]; suffix != "" {
		for _, c := range suffix {
			if c < '0' || c > '9' {
				return name
			}
		}
		return name[:i]
	}
	return name
}

// bestNsOp folds a document's (possibly repeated) benchmark entries into the
// minimum ns/op per normalized name, keeping only names matching the filter
// expression (nil matches everything).
func bestNsOp(doc *Document, filter *regexp.Regexp) map[string]float64 {
	best := make(map[string]float64)
	for _, b := range doc.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok || (filter != nil && !filter.MatchString(b.Name)) {
			continue
		}
		name := normalizeName(b.Name)
		if cur, seen := best[name]; !seen || ns < cur {
			best[name] = ns
		}
	}
	return best
}

// Compare evaluates every benchmark present in both documents against the
// allowed regression (0.20 = new may be at most 20% slower), in name order.
func Compare(oldDoc, newDoc *Document, filter *regexp.Regexp, maxRegress float64) []Delta {
	oldBest, newBest := bestNsOp(oldDoc, filter), bestNsOp(newDoc, filter)
	names := make([]string, 0, len(oldBest))
	for name := range oldBest {
		if _, ok := newBest[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	deltas := make([]Delta, 0, len(names))
	for _, name := range names {
		o, n := oldBest[name], newBest[name]
		d := Delta{Name: name, Old: o, New: n}
		if o > 0 {
			d.Ratio = n / o
			d.Regression = d.Ratio > 1+maxRegress
		}
		deltas = append(deltas, d)
	}
	return deltas
}

func readDocument(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// compareMain implements -compare: exit 0 when nothing regressed (or nothing
// was comparable), 1 on regression, 2 on usage errors.
func compareMain(oldPath, newPath string, filter *regexp.Regexp, maxRegress float64) int {
	oldDoc, err := readDocument(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := readDocument(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	deltas := Compare(oldDoc, newDoc, filter, maxRegress)
	if len(deltas) == 0 {
		// An empty intersection is a gate that gated nothing: stay green (a
		// renamed benchmark must not fail every future PR) but shout — the
		// ::warning line surfaces as an annotation on GitHub runners.
		fmt.Printf("::warning::benchjson: no benchmark appears in both %s (sha %s) and %s (sha %s); the regression gate compared nothing\n",
			oldPath, oldDoc.SHA, newPath, newDoc.SHA)
		return 0
	}
	regressed := 0
	fmt.Printf("benchjson: comparing %d benchmarks against %s (max ns/op regression %.0f%%)\n",
		len(deltas), oldDoc.SHA, maxRegress*100)
	for _, d := range deltas {
		verdict := "ok"
		if d.Regression {
			verdict = "REGRESSION"
			regressed++
		}
		fmt.Printf("  %-64s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n",
			d.Name, d.Old, d.New, (d.Ratio-1)*100, verdict)
	}
	if regressed > 0 {
		fmt.Printf("benchjson: %d of %d benchmarks regressed beyond %.0f%%\n", regressed, len(deltas), maxRegress*100)
		return 1
	}
	return 0
}

func main() {
	sha := flag.String("sha", "", "commit SHA recorded in the document")
	compare := flag.Bool("compare", false, "compare two benchmark documents (old.json new.json) instead of converting")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed ns/op regression in -compare mode (0.20 = 20% slower)")
	bench := flag.String("bench", "", "restrict -compare to benchmarks whose name matches this regular expression")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two documents: old.json new.json")
			os.Exit(2)
		}
		if *maxRegress < 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -max-regress must not be negative")
			os.Exit(2)
		}
		var filter *regexp.Regexp
		if *bench != "" {
			var err error
			if filter, err = regexp.Compile(*bench); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: bad -bench expression:", err)
				os.Exit(2)
			}
		}
		os.Exit(compareMain(flag.Arg(0), flag.Arg(1), filter, *maxRegress))
	}
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "benchjson: unexpected arguments (use -compare to diff documents)")
		os.Exit(2)
	}
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.SHA = *sha
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
