// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can archive one machine-readable perf artifact per commit
// (BENCH_<sha>.json) and the perf trajectory of the repository can be
// charted across pushes.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=3x -count=3 ./... | benchjson -sha $GITHUB_SHA > BENCH_$GITHUB_SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line. Repeated runs of the same
// benchmark (-count > 1) appear as repeated entries, in output order, so
// downstream tooling can compute its own spread statistics.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps a unit ("ns/op", "B/op", "allocs/op", custom
	// b.ReportMetric units) to its value.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the archived artifact: build metadata plus every benchmark.
type Document struct {
	SHA        string      `json:"sha,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output. Unrecognized lines (PASS, ok, test
// log noise) are skipped: the converter must not fail on the mixed output of
// a multi-package ./... run.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	meta := map[string]*string{
		"goos:": &doc.GOOS, "goarch:": &doc.GOARCH, "pkg:": &doc.Pkg, "cpu:": &doc.CPU,
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if dst, ok := meta[fields[0]]; ok && *dst == "" {
				*dst = strings.Join(fields[1:], " ")
				continue
			}
		}
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
		// The remainder alternates value and unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) == 0 {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

func main() {
	sha := flag.String("sha", "", "commit SHA recorded in the document")
	flag.Parse()
	doc, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.SHA = *sha
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
