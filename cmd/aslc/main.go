// Command aslc is the ASL front end: it parses and type-checks an ASL
// specification and can emit the generated relational schema and the SQL
// translation of each property — the automation the paper describes as
// future work.
//
// Usage:
//
//	aslc spec.asl                      # check only
//	aslc -emit schema spec.asl         # print generated DDL
//	aslc -emit sql spec.asl            # print per-property SQL
//	aslc -emit ast spec.asl            # print the canonicalized specification
//	aslc -canonical -emit sql          # run on the built-in COSY specification
//	aslc -canonical -emit sql -dialect ansi   # render for another SQL dialect
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/asl/ast"
	"repro/internal/asl/parser"
	"repro/internal/asl/sem"
	"repro/internal/asl/sqlgen"
	"repro/internal/model"
	"repro/internal/sqlast/build"
)

func main() {
	emit := flag.String("emit", "", "what to emit: schema, sql, or ast (default: check only)")
	canonical := flag.Bool("canonical", false, "use the built-in COSY specification instead of a file")
	dialect := flag.String("dialect", build.Kojakdb.Name, "SQL dialect for -emit schema and -emit sql: "+strings.Join(build.Names(), ", "))
	flag.Parse()

	if _, ok := build.Lookup(*dialect); !ok {
		fatal(fmt.Errorf("aslc: unknown -dialect %q (one of %s)", *dialect, strings.Join(build.Names(), ", ")))
	}

	var src string
	switch {
	case *canonical:
		src = model.SpecSource
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: aslc [-emit schema|sql|ast] [-canonical] [spec.asl]")
		os.Exit(2)
	}

	spec, err := parser.Parse(src)
	if err != nil {
		reportErrors(err)
	}
	world, err := sem.Check(spec)
	if err != nil {
		reportErrors(err)
	}

	switch *emit {
	case "":
		fmt.Printf("ok: %d classes, %d enums, %d functions, %d constants, %d properties\n",
			len(world.Classes), len(world.Enums), len(world.Funcs), len(world.Consts), len(world.Props))
	case "ast":
		fmt.Print(ast.Print(spec))
	case "schema":
		ddl, err := sqlgen.RenderSchema(world, *dialect)
		if err != nil {
			fatal(err)
		}
		for _, stmt := range ddl {
			fmt.Println(stmt + ";")
		}
	case "sql":
		compiled, errs := sqlgen.CompileAll(world)
		names := make([]string, 0, len(compiled))
		for n := range compiled {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			cp := compiled[n]
			r, err := cp.Render(*dialect)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-- property %s(", n)
			for i, p := range cp.Params {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Printf("%s %s", p.Type, p.Name)
			}
			fmt.Print(")\n")
			if len(r.ParamOrder) > 0 {
				fmt.Printf("-- positional markers bind: %s\n", strings.Join(r.ParamOrder, ", "))
			}
			fmt.Printf("%s;\n\n", r.SQL)
		}
		errNames := make([]string, 0, len(errs))
		for n := range errs {
			errNames = append(errNames, n)
		}
		sort.Strings(errNames)
		for _, n := range errNames {
			fmt.Printf("-- property %s: not translatable: %v\n", n, errs[n])
		}
	default:
		fatal(fmt.Errorf("aslc: unknown -emit mode %q", *emit))
	}
}

func reportErrors(err error) {
	switch list := err.(type) {
	case parser.ErrorList:
		for _, e := range list {
			fmt.Fprintln(os.Stderr, e)
		}
	case sem.ErrorList:
		for _, e := range list {
			fmt.Fprintln(os.Stderr, e)
		}
	default:
		fmt.Fprintln(os.Stderr, err)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
