// Command loadgen drives a cosyd server with an open-loop request stream and
// reports latency percentiles and sustained throughput — the measurement
// harness of the resident-service experiment (E12 in EXPERIMENTS.md).
//
// Open loop means arrivals are scheduled by a fixed rate, not by completions:
// a slow server does not slow the generator down, it grows the in-flight
// population — exactly how a group of impatient tool users behaves, and the
// regime admission control exists for.
//
// The -min-throughput and -max-p99 flags turn a run into an assertion for CI:
// the exit status is nonzero when the measured values miss them.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7075 -duration 10s -rate 50 -tenants 8
//	loadgen -addr 127.0.0.1:7075 -duration 10s -rate 50 -deadline 500ms -min-throughput 5 -max-p99 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7075", "cosyd server address")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	rate := flag.Float64("rate", 20, "request arrivals per second (open loop)")
	tenants := flag.Int("tenants", 1, "synthetic tenants (tenant-0..tenant-N-1, arrivals round-robin)")
	nope := flag.Int("nope", 0, "test run to analyze, by processor count (0 selects the largest)")
	deadline := flag.Duration("deadline", 0, "per-request deadline; 0 means none")
	minThroughput := flag.Float64("min-throughput", 0, "fail (exit 1) when completed analyses/sec fall below this")
	maxP99 := flag.Duration("max-p99", 0, "fail (exit 1) when the p99 latency exceeds this")
	flag.Parse()

	switch {
	case flag.NArg() > 0:
		usageError("unexpected arguments: %v", flag.Args())
	case *addr == "":
		usageError("-addr must not be empty")
	case *duration <= 0:
		usageError("-duration must be positive, got %v", *duration)
	case *rate <= 0:
		usageError("-rate must be positive, got %g", *rate)
	case *tenants < 1:
		usageError("-tenants must be at least 1, got %d", *tenants)
	case *deadline < 0:
		usageError("-deadline must not be negative, got %v", *deadline)
	}

	// One multiplexed connection per tenant: tenants are independent clients
	// of the shared service, not goroutines sharing one socket's fate.
	clients := make([]*service.Client, *tenants)
	for i := range clients {
		c, err := service.Dial(*addr)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		canceled  int
		rejected  int
		failed    int
	)
	record := func(d time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			latencies = append(latencies, d)
		case err == context.DeadlineExceeded || err == context.Canceled ||
			strings.Contains(err.Error(), service.ErrCanceled):
			canceled++
		case strings.Contains(err.Error(), service.ErrRejected.Error()):
			rejected++
		default:
			failed++
		}
	}

	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(*duration)
	var wg sync.WaitGroup
	start := time.Now()
	offered := 0

launch:
	for {
		select {
		case <-stop:
			break launch
		case <-ticker.C:
			i := offered % *tenants
			offered++
			wg.Add(1)
			go func(c *service.Client, tenant string) {
				defer wg.Done()
				ctx := context.Background()
				if *deadline > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, *deadline)
					defer cancel()
				}
				t0 := time.Now()
				_, err := c.Analyze(ctx, tenant, *nope)
				record(time.Since(t0), err)
			}(clients[i], fmt.Sprintf("tenant-%d", i))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	completed := len(latencies)
	throughput := float64(completed) / elapsed.Seconds()
	fmt.Printf("loadgen: %d offered in %.1fs (%d tenants, rate %.1f/s)\n", offered, elapsed.Seconds(), *tenants, *rate)
	fmt.Printf("loadgen: %d completed (%.2f analyses/sec), %d canceled, %d rejected, %d failed\n",
		completed, throughput, canceled, rejected, failed)
	if completed > 0 {
		fmt.Printf("loadgen: latency p50 %v, p99 %v, max %v\n",
			percentile(latencies, 0.50), percentile(latencies, 0.99), latencies[completed-1])
	}

	ok := true
	if *minThroughput > 0 && throughput < *minThroughput {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: throughput %.2f analyses/sec below the %.2f floor\n", throughput, *minThroughput)
		ok = false
	}
	if *maxP99 > 0 {
		if completed == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: no completed analyses to measure p99 against the %v ceiling\n", *maxP99)
			ok = false
		} else if p99 := percentile(latencies, 0.99); p99 > *maxP99 {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: p99 %v above the %v ceiling\n", p99, *maxP99)
			ok = false
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d requests failed outright\n", failed)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
}

// percentile reads the p-quantile from sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run loadgen -h for usage")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
