// Command loadgen drives a cosyd server with an open-loop request stream and
// reports latency percentiles and sustained throughput — the measurement
// harness of the resident-service experiment (E12 in EXPERIMENTS.md).
//
// Open loop means arrivals are scheduled by a fixed rate, not by completions:
// a slow server does not slow the generator down, it grows the in-flight
// population — exactly how a group of impatient tool users behaves, and the
// regime admission control exists for.
//
// The -min-throughput and -max-p99 flags turn a run into an assertion for CI:
// the exit status is nonzero when the measured values miss them.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7075 -duration 10s -rate 50 -tenants 8
//	loadgen -addr 127.0.0.1:7075 -duration 10s -rate 50 -deadline 500ms -min-throughput 5 -max-p99 2s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7075", "cosyd server address")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	rate := flag.Float64("rate", 20, "request arrivals per second (open loop)")
	tenants := flag.Int("tenants", 1, "synthetic tenants (tenant-0..tenant-N-1, arrivals round-robin)")
	nope := flag.Int("nope", 0, "test run to analyze, by processor count (0 selects the largest)")
	deadline := flag.Duration("deadline", 0, "per-request deadline; 0 means none")
	minThroughput := flag.Float64("min-throughput", 0, "fail (exit 1) when completed analyses/sec fall below this")
	maxP99 := flag.Duration("max-p99", 0, "fail (exit 1) when the p99 latency exceeds this")
	scrape := flag.String("scrape", "", "cosyd metrics address (host:port) to sample during the run; the report then includes the server-side view")
	flag.Parse()

	switch {
	case flag.NArg() > 0:
		usageError("unexpected arguments: %v", flag.Args())
	case *addr == "":
		usageError("-addr must not be empty")
	case *duration <= 0:
		usageError("-duration must be positive, got %v", *duration)
	case *rate <= 0:
		usageError("-rate must be positive, got %g", *rate)
	case *tenants < 1:
		usageError("-tenants must be at least 1, got %d", *tenants)
	case *deadline < 0:
		usageError("-deadline must not be negative, got %v", *deadline)
	}

	// One multiplexed connection per tenant: tenants are independent clients
	// of the shared service, not goroutines sharing one socket's fate.
	clients := make([]*service.Client, *tenants)
	for i := range clients {
		c, err := service.Dial(*addr)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		canceled  int
		rejected  int
		failed    int
	)
	record := func(d time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			latencies = append(latencies, d)
		case err == context.DeadlineExceeded || err == context.Canceled ||
			strings.Contains(err.Error(), service.ErrCanceled):
			canceled++
		case strings.Contains(err.Error(), service.ErrRejected.Error()):
			rejected++
		default:
			failed++
		}
	}

	// The scraper samples /metrics while load is in flight — live scrapes are
	// the point of the endpoint, and the soak gate wants proof they work
	// under load, not only at the end.
	var sampler *scraper
	if *scrape != "" {
		sampler = newScraper(*scrape)
		if _, err := sampler.scrapeOnce(); err != nil {
			fatal(fmt.Errorf("loadgen: scraping %s: %w", *scrape, err))
		}
		sampler.start(2 * time.Second)
	}

	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(*duration)
	var wg sync.WaitGroup
	start := time.Now()
	offered := 0

launch:
	for {
		select {
		case <-stop:
			break launch
		case <-ticker.C:
			i := offered % *tenants
			offered++
			wg.Add(1)
			go func(c *service.Client, tenant string) {
				defer wg.Done()
				ctx := context.Background()
				if *deadline > 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, *deadline)
					defer cancel()
				}
				t0 := time.Now()
				_, err := c.Analyze(ctx, tenant, *nope)
				record(time.Since(t0), err)
			}(clients[i], fmt.Sprintf("tenant-%d", i))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	completed := len(latencies)
	throughput := float64(completed) / elapsed.Seconds()
	fmt.Printf("loadgen: %d offered in %.1fs (%d tenants, rate %.1f/s)\n", offered, elapsed.Seconds(), *tenants, *rate)
	fmt.Printf("loadgen: %d completed (%.2f analyses/sec), %d canceled, %d rejected, %d failed\n",
		completed, throughput, canceled, rejected, failed)
	if completed > 0 {
		fmt.Printf("loadgen: latency p50 %v, p99 %v, max %v\n",
			percentile(latencies, 0.50), percentile(latencies, 0.99), latencies[completed-1])
	}
	if sampler != nil {
		sampler.stopAndReport()
	}

	ok := true
	if *minThroughput > 0 && throughput < *minThroughput {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: throughput %.2f analyses/sec below the %.2f floor\n", throughput, *minThroughput)
		ok = false
	}
	if *maxP99 > 0 {
		if completed == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: no completed analyses to measure p99 against the %v ceiling\n", *maxP99)
			ok = false
		} else if p99 := percentile(latencies, 0.99); p99 > *maxP99 {
			fmt.Fprintf(os.Stderr, "loadgen: FAIL: p99 %v above the %v ceiling\n", p99, *maxP99)
			ok = false
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d requests failed outright\n", failed)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
}

// scraper samples a cosyd /metrics endpoint in the background while load
// runs, then reports the server-side view next to the client-side one: the
// same analyses as the server counted and timed them. Mid-run samples are
// counted (they prove the endpoint answers under load); the report reads the
// final post-load scrape.
type scraper struct {
	addr    string
	client  *http.Client
	done    chan struct{}
	stopped chan struct{}

	mu      sync.Mutex
	samples int
	errs    int
}

func newScraper(addr string) *scraper {
	return &scraper{
		addr:    addr,
		client:  &http.Client{Timeout: 5 * time.Second},
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
}

// scrapeOnce fetches and decodes one snapshot.
func (s *scraper) scrapeOnce() (*service.MetricsSnapshot, error) {
	resp, err := s.client.Get("http://" + s.addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var snap service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// start samples the endpoint every interval until stopAndReport.
func (s *scraper) start(interval time.Duration) {
	go func() {
		defer close(s.stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				_, err := s.scrapeOnce()
				s.mu.Lock()
				if err != nil {
					s.errs++
				} else {
					s.samples++
				}
				s.mu.Unlock()
			}
		}
	}()
}

// stopAndReport ends sampling, takes a final scrape (all client requests have
// returned by now, so the server-side counters are settled), and prints the
// server's admission totals and latency percentiles merged over the tenants.
func (s *scraper) stopAndReport() {
	close(s.done)
	<-s.stopped
	s.mu.Lock()
	samples, errs := s.samples, s.errs
	s.mu.Unlock()
	snap, err := s.scrapeOnce()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: final scrape of %s failed: %v\n", s.addr, err)
		return
	}
	st := snap.Admission
	fmt.Printf("loadgen: server: admitted %d (%d queued first), %d shed, %d rejected, %d in flight (%d live scrapes, %d failed)\n",
		st.Admitted, st.Queued, st.Shed, st.Rejected, st.InFlight, samples, errs)
	lats := make([]metrics.HistogramSnapshot, 0, len(snap.Tenants))
	waits := make([]metrics.HistogramSnapshot, 0, len(snap.Tenants))
	for _, t := range snap.Tenants {
		lats = append(lats, t.Latency)
		waits = append(waits, t.QueueWait)
	}
	lat, wait := metrics.Merge(lats...), metrics.Merge(waits...)
	if lat.Count > 0 {
		fmt.Printf("loadgen: server: latency p50 %v, p99 %v, max %v; queue wait p50 %v, p99 %v\n",
			time.Duration(lat.P50Nanos), time.Duration(lat.P99Nanos), time.Duration(lat.MaxNanos),
			time.Duration(wait.P50Nanos), time.Duration(wait.P99Nanos))
	}
}

// percentile reads the p-quantile from sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run loadgen -h for usage")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
