// Command apprentice generates synthetic Cray T3E / MPP Apprentice summary
// data: it simulates a workload from the library on a sweep of partition
// sizes and writes the summary file COSY ingests — or, with -db, ingests the
// sweep directly into one or more running kojakdb instances. With several
// comma-separated addresses the instances are treated as the shards of a
// run-partitioned COSY database: structural rows replicate to every shard,
// each run's timing rows land on the shard that owns the run, and a cosy
// analysis pointed at the same -db list finds every run on its owning shard.
//
// Usage:
//
//	apprentice -workload particles -pes 2,8,32 -seed 42 -o particles.apr
//	apprentice -workload particles -pes 2,8,32 -db 127.0.0.1:7070,127.0.0.1:7071 -schema
//	apprentice -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/godbc"
	"repro/internal/model"
)

func main() {
	workload := flag.String("workload", "stencil2d", "workload name (see -list)")
	pes := flag.String("pes", "2,4,8,16,32", "comma-separated partition sizes")
	seed := flag.Int64("seed", 42, "simulation seed")
	out := flag.String("o", "", "output file (default stdout; ignored when -db is given)")
	db := flag.String("db", "", "kojakdb address(es) to ingest into instead of writing a summary file, comma-separated for a sharded database")
	schema := flag.Bool("schema", false, "create the COSY schema on the -db servers before ingesting")
	list := flag.Bool("list", false, "list available workloads and exit")
	scaledFuncs := flag.Int("scaled-funcs", 8, "functions for the 'scaled' workload")
	scaledLoops := flag.Int("scaled-loops", 6, "loops per function for the 'scaled' workload")
	flag.Parse()

	lib := apprentice.Library()
	if *list {
		names := make([]string, 0, len(lib))
		for n := range lib {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("available workloads:", strings.Join(names, ", "), "+ scaled")
		return
	}

	var w *apprentice.Workload
	if *workload == "scaled" {
		w = apprentice.ScaledStencil(*scaledFuncs, *scaledLoops)
	} else {
		var ok bool
		w, ok = lib[*workload]
		if !ok {
			fmt.Fprintf(os.Stderr, "apprentice: unknown workload %q (try -list)\n", *workload)
			os.Exit(2)
		}
	}

	var sizes []int
	for _, part := range strings.Split(*pes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "apprentice: bad partition size %q\n", part)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	ds, err := apprentice.Simulate(w, apprentice.PartitionSweep(sizes...), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := ds.Stats()

	if *db != "" {
		if err := ingest(ds, *db, *schema); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "apprentice: %s: %d runs, %d regions, %d typed timings, %d call sites\n",
			w.Name, st.Runs, st.Regions, st.TypedTimings, st.CallSites)
		return
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := apprentice.WriteSummary(dst, ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "apprentice: %s: %d runs, %d regions, %d typed timings, %d call sites\n",
		w.Name, st.Runs, st.Regions, st.TypedTimings, st.CallSites)
}

// ingest materializes the dataset and loads it into the kojakdb instances
// named by dbAddr: one address loads everything there, several load the
// sweep run-wise across the shards — the write-path half of the client-side
// sharding contract (cosy's ShardedDB reads with the same routing policy).
func ingest(ds *model.Dataset, dbAddr string, createSchema bool) error {
	addrs, err := godbc.SplitAddrs(dbAddr)
	if err != nil {
		return err
	}
	g, err := model.Build(ds)
	if err != nil {
		return err
	}
	sdb, err := godbc.DialSharded(addrs, 1)
	if err != nil {
		return err
	}
	defer sdb.Close()
	if createSchema {
		if err := sqlgen.CreateSchema(g.World, sdb.BroadcastExecutor()); err != nil {
			return err
		}
	}
	counts, err := sqlgen.LoadSharded(g.Store, model.RunPartitioned(), sdb.ShardFor, sdb.ShardExecutors()...)
	if err != nil {
		return err
	}
	for i, n := range counts {
		fmt.Fprintf(os.Stderr, "apprentice: shard %d (%s): %d statements\n", i, addrs[i], n)
	}
	return nil
}
