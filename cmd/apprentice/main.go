// Command apprentice generates synthetic Cray T3E / MPP Apprentice summary
// data: it simulates a workload from the library on a sweep of partition
// sizes and writes the summary file COSY ingests.
//
// Usage:
//
//	apprentice -workload particles -pes 2,8,32 -seed 42 -o particles.apr
//	apprentice -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/apprentice"
)

func main() {
	workload := flag.String("workload", "stencil2d", "workload name (see -list)")
	pes := flag.String("pes", "2,4,8,16,32", "comma-separated partition sizes")
	seed := flag.Int64("seed", 42, "simulation seed")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available workloads and exit")
	scaledFuncs := flag.Int("scaled-funcs", 8, "functions for the 'scaled' workload")
	scaledLoops := flag.Int("scaled-loops", 6, "loops per function for the 'scaled' workload")
	flag.Parse()

	lib := apprentice.Library()
	if *list {
		names := make([]string, 0, len(lib))
		for n := range lib {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("available workloads:", strings.Join(names, ", "), "+ scaled")
		return
	}

	var w *apprentice.Workload
	if *workload == "scaled" {
		w = apprentice.ScaledStencil(*scaledFuncs, *scaledLoops)
	} else {
		var ok bool
		w, ok = lib[*workload]
		if !ok {
			fmt.Fprintf(os.Stderr, "apprentice: unknown workload %q (try -list)\n", *workload)
			os.Exit(2)
		}
	}

	var sizes []int
	for _, part := range strings.Split(*pes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "apprentice: bad partition size %q\n", part)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	ds, err := apprentice.Simulate(w, apprentice.PartitionSweep(sizes...), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := apprentice.WriteSummary(dst, ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := ds.Stats()
	fmt.Fprintf(os.Stderr, "apprentice: %s: %d runs, %d regions, %d typed timings, %d call sites\n",
		w.Name, st.Runs, st.Regions, st.TypedTimings, st.CallSites)
}
