// Command cosy is the KOJAK Cost Analyzer: it ingests an Apprentice summary
// file (or simulates a library workload directly), evaluates the ASL
// performance properties for a selected test run, and prints the severity
// ranking, the performance problems, and the bottleneck.
//
// The SQL engines run against the in-process database by default; -db
// points them at one or more running kojakdb wire servers instead. A single
// address is reached through a connection pool sized to the worker count; a
// comma-separated list is treated as the shards of a run-partitioned COSY
// database — the dataset is loaded run-wise across the shards and every
// property query routes to the shard owning the analyzed run. Property
// queries are prepared once and, when the backend supports it, executed as
// array-bound batches of -batchsize contexts — one round trip per batch
// instead of one per property instance.
//
// Usage:
//
//	cosy -in particles.apr -nope 32
//	cosy -workload particles -nope 32 -engine sql
//	cosy -workload particles -nope 32 -engine sql -db 127.0.0.1:7070
//	cosy -workload particles -nope 32 -engine sql -db 127.0.0.1:7070,127.0.0.1:7071
//	cosy -workload particles -nope 32 -baseline      (Paradyn-style fixed set)
//	cosy -workload particles -nope 32 -workers 4     (parallel evaluation)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/core"
	"repro/internal/godbc"
	"repro/internal/model"
	"repro/internal/paradyn"
	"repro/internal/sqlast/build"
	"repro/internal/sqldb"
)

func main() {
	in := flag.String("in", "", "Apprentice summary file (overrides -workload)")
	workload := flag.String("workload", "stencil2d", "library workload to simulate when no -in file is given")
	nope := flag.Int("nope", 0, "test run to analyze, by processor count (default: largest)")
	engine := flag.String("engine", "object", "evaluation engine: object, sql, or client")
	threshold := flag.Float64("threshold", core.DefaultThreshold, "performance-problem severity threshold")
	imbalance := flag.Float64("imbalance-threshold", 0, "override ImbalanceThreshold (0 keeps the spec value)")
	baseline := flag.Bool("baseline", false, "run the Paradyn-style fixed bottleneck baseline instead")
	guided := flag.Bool("guided", false, "use the refinement-driven search instead of exhaustive evaluation")
	workers := flag.Int("workers", 0, "property-evaluation workers; 1 is fully serial, omit for GOMAXPROCS")
	dbAddr := flag.String("db", "", "kojakdb address(es) for the sql/client engines, comma-separated for a sharded database; empty runs in process")
	preloaded := flag.Bool("preloaded", false, "assume the -db servers already hold the dataset (e.g. ingested by apprentice with the same workload, sizes, and seed); skip schema creation and loading")
	fetchSize := flag.Int("fetchsize", 0, "rows per cursor fetch on pooled connections (the JDBC row-at-a-time default is 1); omit to keep the default")
	batchSize := flag.Int("batchsize", 0, "context instances per batched request on the sql engine; 1 disables batching, omit for the default (32)")
	cache := flag.String("cache", "on", "result cache of the in-process database: on or off (kojakdb servers configure theirs with -cache-size)")
	sqlEngineName := flag.String("sql-engine", sqldb.EngineVector, "SELECT execution engine of the in-process database: vector or row (kojakdb servers select theirs with -engine)")
	sqlDialect := flag.String("sql-dialect", build.Kojakdb.Name, "SQL dialect property queries are rendered in: "+strings.Join(build.Names(), ", "))
	flag.Parse()

	validateFlags()
	shardAddrs, err := godbc.SplitAddrs(*dbAddr)
	if err != nil {
		usageError("%v", err)
	}

	ds, err := loadDataset(*in, *workload)
	if err != nil {
		fatal(err)
	}
	version := ds.Versions[0]
	run := pickRun(version, *nope)
	if run == nil {
		fatal(fmt.Errorf("cosy: no test run with %d PEs", *nope))
	}

	if *baseline {
		findings, err := paradyn.Analyze(version, run, paradyn.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Print(paradyn.Render(findings))
		return
	}

	g, err := model.Build(ds)
	if err != nil {
		fatal(err)
	}
	opts := []core.Option{core.WithThreshold(*threshold), core.WithWorkers(*workers), core.WithBatchSize(*batchSize)}
	if *imbalance > 0 {
		opts = append(opts, core.WithConst("ImbalanceThreshold", *imbalance))
	}
	opts = append(opts, core.WithSQLDialect(*sqlDialect))
	analyzer := core.New(g, opts...)

	switch *engine {
	case "object", "sql", "client":
	default:
		usageError("unknown engine %q", *engine)
	}
	if *guided && *engine == "client" {
		usageError("-guided supports -engine object or sql, not client")
	}
	if len(shardAddrs) > 0 && *engine == "object" {
		usageError("-db requires -engine sql or client (the object engine runs in process)")
	}
	if len(shardAddrs) > 1 && *engine == "client" {
		usageError("-engine client reads whole tables and cannot span shards; give a single -db address")
	}
	if *preloaded && len(shardAddrs) == 0 {
		usageError("-preloaded requires -db (the in-process database starts empty)")
	}
	if *cache == "off" && len(shardAddrs) > 0 {
		usageError("-cache=off only reaches the in-process database; configure the servers with kojakdb -cache-size 0")
	}
	if *sqlEngineName != sqldb.EngineVector && len(shardAddrs) > 0 {
		usageError("-sql-engine only reaches the in-process database; select the servers' engine with kojakdb -engine")
	}
	// The dialect only changes how property queries are rendered, which only
	// the sql engine does. It composes with -db (kojakdb servers parse every
	// registered dialect) and with -sql-engine (both in-process SELECT engines
	// execute the same parsed statements); schema DDL and the dataset load
	// always ship in the canonical dialect.
	if *sqlDialect != build.Kojakdb.Name && *engine != "sql" {
		usageError("-sql-dialect only affects -engine sql (the %s engine does not render property SQL)", *engine)
	}

	// The SQL engines need a loaded database: in process by default, a
	// pooled kojakdb server, or a set of kojakdb shards loaded run-wise.
	sqlEngine := *engine == "sql" || *engine == "client"
	var q core.QueryExec
	if sqlEngine {
		size := *workers
		if size <= 0 {
			size = runtime.GOMAXPROCS(0)
		}
		switch {
		case len(shardAddrs) > 1:
			sdb, err := godbc.DialSharded(shardAddrs, size)
			if err != nil {
				fatal(err)
			}
			defer sdb.Close()
			if *fetchSize > 0 {
				sdb.SetFetchSize(*fetchSize)
			}
			if !*preloaded {
				if err := loadSharded(g, sdb); err != nil {
					fatal(err)
				}
			}
			q = sdb
		case len(shardAddrs) == 1:
			pool, err := godbc.NewPool(shardAddrs[0], size)
			if err != nil {
				fatal(err)
			}
			defer pool.Close()
			if *fetchSize > 0 {
				pool.SetFetchSize(*fetchSize)
			}
			if !*preloaded {
				if err := loadSingle(g, sqlgen.ExecutorFunc(func(s string, p *sqldb.Params) (int, error) {
					res, err := pool.Exec(s, p)
					return res.Affected, err
				})); err != nil {
					fatal(err)
				}
			}
			q = pool
		default:
			db := sqldb.NewDB()
			if *cache == "off" {
				db.SetResultCacheSize(0)
			}
			if err := db.SetEngine(*sqlEngineName); err != nil {
				usageError("%v", err)
			}
			exec := sqlgen.ExecutorFunc(func(s string, p *sqldb.Params) (int, error) {
				res, err := db.Exec(s, p)
				if err != nil {
					return 0, err
				}
				return res.Affected, nil
			})
			if err := loadSingle(g, exec); err != nil {
				fatal(err)
			}
			q = godbc.Embedded{DB: db}
		}
	}

	if *guided {
		var report *core.Report
		var stats *core.SearchStats
		if *engine == "sql" {
			report, stats, err = analyzer.AnalyzeGuidedSQL(run, core.DefaultHierarchy(), q)
		} else {
			report, stats, err = analyzer.AnalyzeGuided(run, core.DefaultHierarchy())
		}
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Render())
		fmt.Printf("refinement search: evaluated %d of %d instances (%.0f%% saved)\n",
			stats.Evaluated, stats.Exhaustive, stats.Savings()*100)
		return
	}

	var report *core.Report
	switch *engine {
	case "object":
		report, err = analyzer.AnalyzeObject(run)
	case "sql":
		report, err = analyzer.AnalyzeSQL(run, q)
	case "client":
		report, err = analyzer.AnalyzeClientSide(run, q)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.Render())
}

// validateFlags rejects explicitly-set flag values that would misbehave at
// runtime (a zero worker pool, a zero batch, an empty server address) with a
// usage error. Omitted flags keep their documented defaults.
func validateFlags() {
	if flag.NArg() > 0 {
		usageError("unexpected arguments: %v", flag.Args())
	}
	set := make(map[string]flag.Value)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = f.Value })
	check := func(name string, ok func(string) bool, why string) {
		if v, explicit := set[name]; explicit && !ok(v.String()) {
			usageError("-%s %s: %s", name, v, why)
		}
	}
	atLeast1 := func(s string) bool { var n int; _, err := fmt.Sscanf(s, "%d", &n); return err == nil && n >= 1 }
	check("workers", atLeast1, "must be at least 1 (omit the flag for GOMAXPROCS)")
	check("batchsize", atLeast1, "must be at least 1 (1 disables batching; omit the flag for the default)")
	check("fetchsize", atLeast1, "must be at least 1 (omit the flag for the default)")
	check("db", func(s string) bool { return strings.TrimSpace(s) != "" }, "must name at least one kojakdb address")
	check("cache", func(s string) bool { return s == "on" || s == "off" }, "must be on or off")
	check("sql-engine", func(s string) bool { return s == sqldb.EngineVector || s == sqldb.EngineRow }, "must be vector or row")
	check("sql-dialect", func(s string) bool { _, ok := build.Lookup(s); return ok }, "must be one of "+strings.Join(build.Names(), ", "))
	check("nope", atLeast1, "must be at least 1 (omit the flag for the largest run)")
	nonNegative := func(s string) bool { var f float64; _, err := fmt.Sscanf(s, "%g", &f); return err == nil && f >= 0 }
	check("threshold", nonNegative, "must not be negative")
	check("imbalance-threshold", func(s string) bool { var f float64; _, err := fmt.Sscanf(s, "%g", &f); return err == nil && f > 0 }, "must be positive (omit the flag to keep the spec value)")
}

// loadSingle creates the schema and loads the whole dataset on one executor.
func loadSingle(g *model.Graph, exec sqlgen.Executor) error {
	if err := sqlgen.CreateSchema(g.World, exec); err != nil {
		return err
	}
	_, err := sqlgen.Load(g.Store, exec)
	return err
}

// loadSharded creates the schema on every shard and loads the dataset
// run-wise: structural data replicates, run-owned timing rows land on the
// shard the analyzer will query for them.
func loadSharded(g *model.Graph, sdb *godbc.ShardedDB) error {
	if err := sqlgen.CreateSchema(g.World, sdb.BroadcastExecutor()); err != nil {
		return err
	}
	_, err := sqlgen.LoadSharded(g.Store, model.RunPartitioned(), sdb.ShardFor, sdb.ShardExecutors()...)
	return err
}

func loadDataset(in, workload string) (*model.Dataset, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return apprentice.ReadSummary(f)
	}
	w, ok := apprentice.Library()[workload]
	if !ok {
		return nil, fmt.Errorf("cosy: unknown workload %q", workload)
	}
	return apprentice.Simulate(w, apprentice.PartitionSweep(2, 4, 8, 16, 32), 42)
}

func pickRun(v *model.Version, nope int) *model.TestRun {
	var best *model.TestRun
	for _, r := range v.Runs {
		if nope > 0 {
			if r.NoPe == nope {
				return r
			}
			continue
		}
		if best == nil || r.NoPe > best.NoPe {
			best = r
		}
	}
	return best
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cosy: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run cosy -h for usage")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
