// Command cosy is the KOJAK Cost Analyzer: it ingests an Apprentice summary
// file (or simulates a library workload directly), evaluates the ASL
// performance properties for a selected test run, and prints the severity
// ranking, the performance problems, and the bottleneck.
//
// Usage:
//
//	cosy -in particles.apr -nope 32
//	cosy -workload particles -nope 32 -engine sql
//	cosy -workload particles -nope 32 -baseline      (Paradyn-style fixed set)
//	cosy -workload particles -nope 32 -workers 4     (parallel evaluation)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/core"
	"repro/internal/godbc"
	"repro/internal/model"
	"repro/internal/paradyn"
	"repro/internal/sqldb"
)

func main() {
	in := flag.String("in", "", "Apprentice summary file (overrides -workload)")
	workload := flag.String("workload", "stencil2d", "library workload to simulate when no -in file is given")
	nope := flag.Int("nope", 0, "test run to analyze, by processor count (default: largest)")
	engine := flag.String("engine", "object", "evaluation engine: object, sql, or client")
	threshold := flag.Float64("threshold", core.DefaultThreshold, "performance-problem severity threshold")
	imbalance := flag.Float64("imbalance-threshold", 0, "override ImbalanceThreshold (0 keeps the spec value)")
	baseline := flag.Bool("baseline", false, "run the Paradyn-style fixed bottleneck baseline instead")
	guided := flag.Bool("guided", false, "use the refinement-driven search instead of exhaustive evaluation")
	workers := flag.Int("workers", 0, "property-evaluation workers; 1 is fully serial, 0 uses GOMAXPROCS")
	flag.Parse()

	ds, err := loadDataset(*in, *workload)
	if err != nil {
		fatal(err)
	}
	version := ds.Versions[0]
	run := pickRun(version, *nope)
	if run == nil {
		fatal(fmt.Errorf("cosy: no test run with %d PEs", *nope))
	}

	if *baseline {
		findings, err := paradyn.Analyze(version, run, paradyn.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Print(paradyn.Render(findings))
		return
	}

	g, err := model.Build(ds)
	if err != nil {
		fatal(err)
	}
	opts := []core.Option{core.WithThreshold(*threshold), core.WithWorkers(*workers)}
	if *imbalance > 0 {
		opts = append(opts, core.WithConst("ImbalanceThreshold", *imbalance))
	}
	analyzer := core.New(g, opts...)

	if *guided {
		report, stats, err := analyzer.AnalyzeGuided(run, core.DefaultHierarchy())
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Render())
		fmt.Printf("refinement search: evaluated %d of %d instances (%.0f%% saved)\n",
			stats.Evaluated, stats.Exhaustive, stats.Savings()*100)
		return
	}

	var report *core.Report
	switch *engine {
	case "object":
		report, err = analyzer.AnalyzeObject(run)
	case "sql", "client":
		db := sqldb.NewDB()
		exec := sqlgen.ExecutorFunc(func(q string, p *sqldb.Params) (int, error) {
			res, err := db.Exec(q, p)
			if err != nil {
				return 0, err
			}
			return res.Affected, nil
		})
		if err = sqlgen.CreateSchema(g.World, exec); err != nil {
			fatal(err)
		}
		if _, err = sqlgen.Load(g.Store, exec); err != nil {
			fatal(err)
		}
		if *engine == "sql" {
			report, err = analyzer.AnalyzeSQL(run, godbc.Embedded{DB: db})
		} else {
			report, err = analyzer.AnalyzeClientSide(run, godbc.Embedded{DB: db})
		}
	default:
		fatal(fmt.Errorf("cosy: unknown engine %q", *engine))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.Render())
}

func loadDataset(in, workload string) (*model.Dataset, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return apprentice.ReadSummary(f)
	}
	w, ok := apprentice.Library()[workload]
	if !ok {
		return nil, fmt.Errorf("cosy: unknown workload %q", workload)
	}
	return apprentice.Simulate(w, apprentice.PartitionSweep(2, 4, 8, 16, 32), 42)
}

func pickRun(v *model.Version, nope int) *model.TestRun {
	var best *model.TestRun
	for _, r := range v.Runs {
		if nope > 0 {
			if r.NoPe == nope {
				return r
			}
			continue
		}
		if best == nil || r.NoPe > best.NoPe {
			best = r
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
