// Command cosy is the KOJAK Cost Analyzer: it ingests an Apprentice summary
// file (or simulates a library workload directly), evaluates the ASL
// performance properties for a selected test run, and prints the severity
// ranking, the performance problems, and the bottleneck.
//
// The SQL engines run against the in-process database by default; -db
// points them at a running kojakdb wire server instead, through a connection
// pool sized to the worker count. Property queries are prepared once and,
// when the backend supports it, executed as array-bound batches of
// -batchsize contexts — one round trip per batch instead of one per
// property instance.
//
// Usage:
//
//	cosy -in particles.apr -nope 32
//	cosy -workload particles -nope 32 -engine sql
//	cosy -workload particles -nope 32 -engine sql -db 127.0.0.1:7070
//	cosy -workload particles -nope 32 -baseline      (Paradyn-style fixed set)
//	cosy -workload particles -nope 32 -workers 4     (parallel evaluation)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/core"
	"repro/internal/godbc"
	"repro/internal/model"
	"repro/internal/paradyn"
	"repro/internal/sqldb"
)

func main() {
	in := flag.String("in", "", "Apprentice summary file (overrides -workload)")
	workload := flag.String("workload", "stencil2d", "library workload to simulate when no -in file is given")
	nope := flag.Int("nope", 0, "test run to analyze, by processor count (default: largest)")
	engine := flag.String("engine", "object", "evaluation engine: object, sql, or client")
	threshold := flag.Float64("threshold", core.DefaultThreshold, "performance-problem severity threshold")
	imbalance := flag.Float64("imbalance-threshold", 0, "override ImbalanceThreshold (0 keeps the spec value)")
	baseline := flag.Bool("baseline", false, "run the Paradyn-style fixed bottleneck baseline instead")
	guided := flag.Bool("guided", false, "use the refinement-driven search instead of exhaustive evaluation")
	workers := flag.Int("workers", 0, "property-evaluation workers; 1 is fully serial, 0 uses GOMAXPROCS")
	dbAddr := flag.String("db", "", "kojakdb wire server address for the sql/client engines; empty runs in process")
	fetchSize := flag.Int("fetchsize", 0, "rows per cursor fetch on pooled connections (the JDBC row-at-a-time default is 1); 0 keeps the default")
	batchSize := flag.Int("batchsize", 0, "context instances per batched request on the sql engine; 1 disables batching, 0 uses the default (32)")
	flag.Parse()

	ds, err := loadDataset(*in, *workload)
	if err != nil {
		fatal(err)
	}
	version := ds.Versions[0]
	run := pickRun(version, *nope)
	if run == nil {
		fatal(fmt.Errorf("cosy: no test run with %d PEs", *nope))
	}

	if *baseline {
		findings, err := paradyn.Analyze(version, run, paradyn.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Print(paradyn.Render(findings))
		return
	}

	g, err := model.Build(ds)
	if err != nil {
		fatal(err)
	}
	opts := []core.Option{core.WithThreshold(*threshold), core.WithWorkers(*workers), core.WithBatchSize(*batchSize)}
	if *imbalance > 0 {
		opts = append(opts, core.WithConst("ImbalanceThreshold", *imbalance))
	}
	analyzer := core.New(g, opts...)

	switch *engine {
	case "object", "sql", "client":
	default:
		fatal(fmt.Errorf("cosy: unknown engine %q", *engine))
	}
	if *guided && *engine == "client" {
		fatal(fmt.Errorf("cosy: -guided supports -engine object or sql, not client"))
	}
	if *dbAddr != "" && *engine == "object" {
		fatal(fmt.Errorf("cosy: -db requires -engine sql or client (the object engine runs in process)"))
	}

	// The SQL engines need a loaded database: in process by default, or a
	// kojakdb server reached through a connection pool.
	sqlEngine := *engine == "sql" || *engine == "client"
	var q core.QueryExec
	if sqlEngine {
		var exec sqlgen.Executor
		if *dbAddr != "" {
			size := *workers
			if size <= 0 {
				size = runtime.GOMAXPROCS(0)
			}
			pool, err := godbc.NewPool(*dbAddr, size)
			if err != nil {
				fatal(err)
			}
			defer pool.Close()
			if *fetchSize > 0 {
				pool.SetFetchSize(*fetchSize)
			}
			exec = sqlgen.ExecutorFunc(func(s string, p *sqldb.Params) (int, error) {
				res, err := pool.Exec(s, p)
				return res.Affected, err
			})
			q = pool
		} else {
			db := sqldb.NewDB()
			exec = sqlgen.ExecutorFunc(func(s string, p *sqldb.Params) (int, error) {
				res, err := db.Exec(s, p)
				if err != nil {
					return 0, err
				}
				return res.Affected, nil
			})
			q = godbc.Embedded{DB: db}
		}
		if err := sqlgen.CreateSchema(g.World, exec); err != nil {
			fatal(err)
		}
		if _, err := sqlgen.Load(g.Store, exec); err != nil {
			fatal(err)
		}
	}

	if *guided {
		var report *core.Report
		var stats *core.SearchStats
		if *engine == "sql" {
			report, stats, err = analyzer.AnalyzeGuidedSQL(run, core.DefaultHierarchy(), q)
		} else {
			report, stats, err = analyzer.AnalyzeGuided(run, core.DefaultHierarchy())
		}
		if err != nil {
			fatal(err)
		}
		fmt.Print(report.Render())
		fmt.Printf("refinement search: evaluated %d of %d instances (%.0f%% saved)\n",
			stats.Evaluated, stats.Exhaustive, stats.Savings()*100)
		return
	}

	var report *core.Report
	switch *engine {
	case "object":
		report, err = analyzer.AnalyzeObject(run)
	case "sql":
		report, err = analyzer.AnalyzeSQL(run, q)
	case "client":
		report, err = analyzer.AnalyzeClientSide(run, q)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.Render())
}

func loadDataset(in, workload string) (*model.Dataset, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return apprentice.ReadSummary(f)
	}
	w, ok := apprentice.Library()[workload]
	if !ok {
		return nil, fmt.Errorf("cosy: unknown workload %q", workload)
	}
	return apprentice.Simulate(w, apprentice.PartitionSweep(2, 4, 8, 16, 32), 42)
}

func pickRun(v *model.Version, nope int) *model.TestRun {
	var best *model.TestRun
	for _, r := range v.Runs {
		if nope > 0 {
			if r.NoPe == nope {
				return r
			}
			continue
		}
		if best == nil || r.NoPe > best.NoPe {
			best = r
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
