// Command cosytop renders a cosyd server's /metrics snapshot as a compact
// text view — the operator's glance at a resident service: per-tenant
// admission outcomes and latency percentiles, pool and multiplexer pressure,
// and the backend engine's counters.
//
// One-shot by default; -interval repeats the view (top-style) until
// interrupted or -n iterations have printed.
//
// Usage:
//
//	cosytop -addr 127.0.0.1:9090
//	cosytop -addr 127.0.0.1:9090 -interval 2s
//	cosytop -addr 127.0.0.1:9090 -interval 1s -n 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "cosyd metrics address (host:port)")
	interval := flag.Duration("interval", 0, "refresh interval; 0 prints one snapshot and exits")
	count := flag.Int("n", 0, "with -interval, stop after this many snapshots; 0 means until interrupted")
	flag.Parse()

	switch {
	case flag.NArg() > 0:
		usageError("unexpected arguments: %v", flag.Args())
	case *addr == "":
		usageError("-addr must not be empty")
	case *interval < 0:
		usageError("-interval must not be negative, got %v", *interval)
	case *count < 0:
		usageError("-n must not be negative, got %d", *count)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	printed := 0
	for {
		snap, err := fetch(client, *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosytop: %v\n", err)
			os.Exit(1)
		}
		if printed > 0 {
			fmt.Println()
		}
		render(os.Stdout, *addr, snap)
		printed++
		if *interval == 0 || (*count > 0 && printed >= *count) {
			return
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, addr string) (*service.MetricsSnapshot, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var snap service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

func render(out *os.File, addr string, snap *service.MetricsSnapshot) {
	state := "serving"
	if snap.Draining {
		state = "draining"
	}
	fmt.Fprintf(out, "cosyd %s  up %s  %s  goroutines %d  conns %d\n",
		addr, (time.Duration(snap.UptimeSeconds * float64(time.Second))).Round(time.Second), state, snap.Goroutines, snap.Conns)
	a := snap.Admission
	fmt.Fprintf(out, "admission  admitted %d (queued %d)  shed %d  rejected %d  in-flight %d  waiting %d\n",
		a.Admitted, a.Queued, a.Shed, a.Rejected, a.InFlight, a.Waiting)

	if len(snap.Tenants) > 0 {
		names := make([]string, 0, len(snap.Tenants))
		for name := range snap.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "TENANT\tADMIT\tQUEUE\tSHED\tREJ\tINFL\tDONE\tCANC\tFAIL\tWAIT p99\tLAT p50\tLAT p99")
		for _, name := range names {
			t := snap.Tenants[name]
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\n",
				name, t.Admitted, t.Queued, t.Shed, t.Rejected, t.InFlight,
				t.Completed, t.Canceled, t.Failed,
				time.Duration(t.QueueWait.P99Nanos), time.Duration(t.Latency.P50Nanos), time.Duration(t.Latency.P99Nanos))
		}
		w.Flush()
	}

	for i, p := range snap.Pools {
		fmt.Fprintf(out, "pool %d  %s  %d/%d in use (%d idle)  %d checkouts (%d dialed, %d discarded)  wait p99 %v\n",
			i, p.Addr, p.InUse, p.Capacity, p.Idle, p.Checkouts, p.Dialed, p.Discarded,
			time.Duration(p.CheckoutWait.P99Nanos))
	}
	if m := snap.Mux; m != nil {
		fmt.Fprintf(out, "mux  mode %s  %d in flight  %d requests  %d cancels\n", m.Mode, m.InFlight, m.Requests, m.Cancels)
	}
	if b := snap.Backend; b != nil {
		fmt.Fprintf(out, "backend  engine %s  vec %d (fallback %d)  plan cache %d/%d hit  %d requests  vendor cost %v\n",
			b.Engine, b.VecSelects, b.VecFallbacks, b.PlanCacheHits, b.PlanCacheHits+b.PlanCacheMisses,
			b.Requests, time.Duration(b.VendorNanos).Round(time.Millisecond))
		if b.VecFallbacks > 0 {
			fmt.Fprintf(out, "backend  fallback reasons  join-shape %d  star %d  order-by-expr %d  subquery %d  other %d\n",
				b.FbJoinShape, b.FbStar, b.FbOrderExpr, b.FbSubquery, b.FbOther)
		}
	}
	if c := snap.Cache; c != nil {
		fmt.Fprintf(out, "cache  %d hits  %d misses  %d invalidations  %d evictions  %d entries\n",
			c.Hits, c.Misses, c.Invalidations, c.Evictions, c.Entries)
	}
}

func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cosytop: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run cosytop -h for usage")
	os.Exit(2)
}
