package parser

import (
	"strings"
	"testing"

	"repro/internal/asl/ast"
	"repro/internal/asl/token"
)

// paperSpec is the verbatim material of the paper's Section 4 (with the
// TotTimes→TotalTiming LET type corrected, see model.SpecSource).
const paperSpec = `
class Program {
  String Name;
  setof ProgVersion Versions;
}
class ProgVersion {
  DateTime Compilation;
  setof Function Functions;
  setof TestRun Runs;
  SourceCode Code;
}
class TestRun { DateTime Start; int NoPe; int Clockspeed; }
class Region {
  Region ParentRegion;
  setof TotalTiming TotTimes;
  setof TypedTiming TypTimes;
}
class TotalTiming { TestRun Run; float Excl; float Incl; float Ovhd; }

TotalTiming Summary(Region r, TestRun t) = UNIQUE({s IN r.TotTimes WITH s.Run==t});
float Duration(Region r, TestRun t) = Summary(r,t).Incl;

Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
  LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
      MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
  float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
  IN
  CONDITION: TotalCost>0; CONFIDENCE: 1;
  SEVERITY: TotalCost/Duration(Basis,t);
}
`

func TestPaperSpecParses(t *testing.T) {
	spec, err := Parse(paperSpec)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(spec.Classes()); n != 5 {
		t.Errorf("classes = %d, want 5", n)
	}
	if n := len(spec.Funcs()); n != 2 {
		t.Errorf("funcs = %d, want 2", n)
	}
	props := spec.Properties()
	if len(props) != 1 {
		t.Fatalf("properties = %d, want 1", len(props))
	}
	p := props[0]
	if p.Name != "SublinearSpeedup" || len(p.Params) != 3 || len(p.Lets) != 2 {
		t.Fatalf("property shape: %+v", p)
	}
	if len(p.Conditions) != 1 || len(p.Confidence) != 1 || len(p.Severity) != 1 {
		t.Fatalf("clauses: %d cond, %d conf, %d sev", len(p.Conditions), len(p.Confidence), len(p.Severity))
	}
	// The first LET binds UNIQUE over a comprehension whose filter holds a
	// WHERE-quantified MIN.
	uniq, ok := p.Lets[0].Value.(*ast.Unique)
	if !ok {
		t.Fatalf("LET 0 is %T, want Unique", p.Lets[0].Value)
	}
	compr, ok := uniq.Set.(*ast.SetCompr)
	if !ok || compr.Var != "sum" {
		t.Fatalf("comprehension: %+v", uniq.Set)
	}
	cmp, ok := compr.Cond.(*ast.Binary)
	if !ok || cmp.Op != token.EQ {
		t.Fatalf("comprehension filter: %T", compr.Cond)
	}
	min, ok := cmp.R.(*ast.Agg)
	if !ok || min.Kind != ast.AggMin || min.Binder != "s" {
		t.Fatalf("MIN aggregate: %+v", cmp.R)
	}
}

func TestLabeledConditionsAndGuards(t *testing.T) {
	src := `
property P(Region r, TestRun t) {
  CONDITION: (a) r.X > 0 OR (b) r.Y > 0 OR r.Z > 0;
  CONFIDENCE: MAX((a) -> 0.9, (b) -> 0.5, 0.1);
  SEVERITY: MAX((a) -> r.X, (b) -> r.Y);
}`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Properties()[0]
	if len(p.Conditions) != 3 {
		t.Fatalf("conditions = %d", len(p.Conditions))
	}
	if p.Conditions[0].Label != "a" || p.Conditions[1].Label != "b" || p.Conditions[2].Label != "" {
		t.Fatalf("labels: %+v", p.Conditions)
	}
	if !p.ConfidenceMax || len(p.Confidence) != 3 {
		t.Fatalf("confidence: max=%v n=%d", p.ConfidenceMax, len(p.Confidence))
	}
	if p.Confidence[0].Guard != "a" || p.Confidence[2].Guard != "" {
		t.Fatalf("guards: %+v", p.Confidence)
	}
	if !p.SeverityMax || len(p.Severity) != 2 {
		t.Fatalf("severity: %+v", p.Severity)
	}
	if c := p.ConditionByLabel("b"); c == nil {
		t.Fatal("ConditionByLabel(b) = nil")
	}
}

func TestParenthesizedExprIsNotALabel(t *testing.T) {
	// "(x) > 5" must parse as a comparison of the parenthesized identifier,
	// not as label x followed by "> 5".
	src := `
property P(Region r) {
  CONDITION: (r) != null;
  CONFIDENCE: 1;
  SEVERITY: 1;
}`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Properties()[0]
	if p.Conditions[0].Label != "" {
		t.Fatalf("label %q leaked from parenthesized expression", p.Conditions[0].Label)
	}
}

func TestEnumAndExtends(t *testing.T) {
	src := `
enum TimingType { Barrier, Send, Receive }
class Base { int X; }
class Derived extends Base { float Y; }
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	enums := spec.Enums()
	if len(enums) != 1 || len(enums[0].Members) != 3 {
		t.Fatalf("enum: %+v", enums)
	}
	var derived *ast.ClassDecl
	for _, c := range spec.Classes() {
		if c.Name == "Derived" {
			derived = c
		}
	}
	if derived == nil || derived.Extends != "Base" {
		t.Fatalf("extends: %+v", derived)
	}
}

func TestSetofNesting(t *testing.T) {
	spec, err := Parse(`class C { setof setof D Grid; }`)
	if err != nil {
		t.Fatal(err)
	}
	attr := spec.Classes()[0].Attrs[0]
	if attr.Type.SetDepth != 2 || attr.Type.Name != "D" {
		t.Fatalf("type: %+v", attr.Type)
	}
	if attr.Type.String() != "setof setof D" {
		t.Fatalf("type string: %s", attr.Type)
	}
}

func TestExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1 + 2 * 3", "(1 + (2 * 3))"},
		{"(1 + 2) * 3", "((1 + 2) * 3)"},
		{"a AND b OR c", "((a AND b) OR c)"},
		{"NOT a AND b", "((NOT a) AND b)"},
		{"-a * b", "((-a) * b)"},
		{"a < b == false", "((a < b) == false)"},
		{"a.b.c + 1", "(a.b.c + 1)"},
		{"x % 2 == 0", "((x % 2) == 0)"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := ast.ExprString(e); got != c.want {
			t.Errorf("%q parsed as %s, want %s", c.src, got, c.want)
		}
	}
}

func TestAggregateForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{"SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t)", "SUM(tt.Time WHERE tt IN r.TypTimes AND (tt.Run == t))"},
		{"MIN(s.Run.NoPe WHERE s IN r.TotTimes)", "MIN(s.Run.NoPe WHERE s IN r.TotTimes)"},
		{"MAX(a, b, c)", "MAX(a, b, c)"},
		{"COUNT(r.TotTimes)", "COUNT(r.TotTimes)"},
		{"UNIQUE({x IN s WITH x.A == 1})", "UNIQUE({x IN s WITH (x.A == 1)})"},
		{"{x IN s}", "{x IN s}"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := ast.ExprString(e); got != c.want {
			t.Errorf("%q parsed as %s, want %s", c.src, got, c.want)
		}
	}
}

func TestAggregateConjunctsWithParenthesizedOr(t *testing.T) {
	e, err := ParseExpr("SUM(tt.Time WHERE tt IN r.TypTimes AND (tt.Type == Send OR tt.Type == Receive) AND tt.Run == t)")
	if err != nil {
		t.Fatal(err)
	}
	agg := e.(*ast.Agg)
	if len(agg.Conds) != 2 {
		t.Fatalf("conds = %d, want 2", len(agg.Conds))
	}
	if _, ok := agg.Conds[0].(*ast.Binary); !ok {
		t.Fatalf("cond 0: %T", agg.Conds[0])
	}
}

func TestLiterals(t *testing.T) {
	cases := []struct{ src, want string }{
		{"42", "42"},
		{"3.5", "3.5"},
		{`"hi"`, `"hi"`},
		{"true", "true"},
		{"false", "false"},
		{"null", "null"},
		{"@1999-12-17T10:30:00@", "@1999-12-17T10:30:00@"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if got := ast.ExprString(e); got != c.want {
			t.Errorf("%q -> %s, want %s", c.src, got, c.want)
		}
	}
}

func TestBadDateTime(t *testing.T) {
	if _, err := ParseExpr("@17-12-1999@"); err == nil {
		t.Fatal("expected error for malformed datetime")
	}
}

func TestRoundTripThroughPrinter(t *testing.T) {
	spec, err := Parse(paperSpec)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(spec)
	spec2, err := Parse(printed)
	if err != nil {
		t.Fatalf("re-parsing printed spec: %v\n%s", err, printed)
	}
	printed2 := ast.Print(spec2)
	if printed != printed2 {
		t.Fatalf("printer not a fixed point:\n--- first:\n%s\n--- second:\n%s", printed, printed2)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`class { }`,
		`class C extends { }`,
		`class C { int ; }`,
		`enum E { }`,
		`property P() { CONFIDENCE: 1; SEVERITY: 1; }`, // missing CONDITION
		`property P() { CONDITION: 1 > 0; SEVERITY: 1; }`,
		`property P() { CONDITION: 1 > 0; CONFIDENCE: 1; }`,
		`float F( = 1;`,
		`float C = ;`,
		`property P() { CONDITION: UNIQUE(; CONFIDENCE: 1; SEVERITY: 1; }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected syntax error", src)
		}
	}
}

func TestErrorRecoveryFindsMultipleErrors(t *testing.T) {
	src := `
class A { int X }
class B { int Y; }
class C { bogus bogus bogus
`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected errors")
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(list) < 2 {
		t.Fatalf("recovered only %d errors: %v", len(list), err)
	}
	if !strings.Contains(list.Error(), "more error") {
		t.Errorf("ErrorList summary: %s", list.Error())
	}
}

func TestTrailingSemicolonAfterProperty(t *testing.T) {
	// Figure 1 writes '};' — the semicolon must be accepted.
	src := `property P(Region r) { CONDITION: true; CONFIDENCE: 1; SEVERITY: 1; };`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseExprTrailingGarbage(t *testing.T) {
	if _, err := ParseExpr("1 + 2 extra"); err == nil {
		t.Fatal("expected error for trailing tokens")
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	e, err := ParseExpr("SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t) / MAX(a, 1)")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	ast.Walk(e, func(ast.Expr) { count++ })
	if count < 10 {
		t.Fatalf("walk visited %d nodes", count)
	}
}
