// Package parser implements a recursive-descent parser for the APART
// Specification Language: the class/enum data-model syntax of Section 4.1 of
// the paper and the property grammar of Figure 1, including LET/IN blocks,
// labeled conditions, guarded confidence and severity lists, set
// comprehensions, UNIQUE, and WHERE-quantified aggregates.
package parser

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/asl/ast"
	"repro/internal/asl/lexer"
	"repro/internal/asl/token"
)

// Error is a parse error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("asl: %s: %s", e.Pos, e.Msg) }

// ErrorList is a collection of parse errors.
type ErrorList []*Error

// Error implements the error interface; it reports the first error and the
// total count.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// Parser parses ASL source text.
type Parser struct {
	toks []token.Token
	pos  int
	errs ErrorList
}

type bailout struct{}

// Parse parses a complete specification document. On syntax errors it
// returns the partial AST together with an ErrorList.
func Parse(src string) (*ast.Spec, error) {
	lx := lexer.New(src)
	toks := lx.All()
	p := &Parser{toks: toks}
	for _, le := range lx.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	spec := &ast.Spec{}
	for p.cur().Kind != token.EOF {
		d := p.parseDeclRecover()
		if d != nil {
			spec.Decls = append(spec.Decls, d)
		}
	}
	if len(p.errs) > 0 {
		return spec, p.errs
	}
	return spec, nil
}

// ParseExpr parses a single standalone expression (used by tests and by the
// interactive tooling).
func ParseExpr(src string) (ast.Expr, error) {
	lx := lexer.New(src)
	p := &Parser{toks: lx.All()}
	var e ast.Expr
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(bailout); !ok {
					panic(r)
				}
				err = p.errs
			}
		}()
		e = p.parseExpr(1)
		if p.cur().Kind != token.EOF {
			p.errorf(p.cur().Pos, "unexpected %s after expression", p.cur())
			return p.errs
		}
		return nil
	}()
	if err != nil {
		return nil, err
	}
	if len(p.errs) > 0 {
		return e, p.errs
	}
	return e, nil
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }

func (p *Parser) peek(n int) token.Token {
	i := p.pos + n
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[i]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		panic(bailout{})
	}
	return p.next()
}

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// parseDeclRecover parses one top-level declaration, resynchronizing to the
// next declaration keyword on error so several errors can be reported in one
// pass.
func (p *Parser) parseDeclRecover() (d ast.Decl) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			d = nil
			p.sync()
		}
	}()
	return p.parseDecl()
}

// sync skips tokens until a plausible start of the next declaration.
func (p *Parser) sync() {
	depth := 0
	for {
		switch p.cur().Kind {
		case token.EOF:
			return
		case token.LBRACE:
			depth++
		case token.RBRACE:
			if depth > 0 {
				depth--
			} else {
				p.next()
				return
			}
		case token.CLASS, token.ENUM, token.PROPERTY:
			if depth == 0 {
				return
			}
		}
		p.next()
	}
}

func (p *Parser) parseDecl() ast.Decl {
	switch p.cur().Kind {
	case token.CLASS:
		return p.parseClass()
	case token.ENUM:
		return p.parseEnum()
	case token.PROPERTY:
		return p.parseProperty()
	case token.IDENT, token.SETOF:
		return p.parseFuncOrConst()
	default:
		p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur())
		panic(bailout{})
	}
}

func (p *Parser) parseClass() *ast.ClassDecl {
	kw := p.expect(token.CLASS)
	name := p.expect(token.IDENT)
	d := &ast.ClassDecl{ClassPos: kw.Pos, Name: name.Text}
	if p.accept(token.EXTENDS) {
		d.Extends = p.expect(token.IDENT).Text
	}
	p.expect(token.LBRACE)
	for p.cur().Kind != token.RBRACE && p.cur().Kind != token.EOF {
		typ := p.parseTypeRef()
		attr := p.expect(token.IDENT)
		p.expect(token.SEMICOLON)
		d.Attrs = append(d.Attrs, ast.Attr{Type: typ, Name: attr.Text})
	}
	p.expect(token.RBRACE)
	return d
}

func (p *Parser) parseEnum() *ast.EnumDecl {
	kw := p.expect(token.ENUM)
	name := p.expect(token.IDENT)
	d := &ast.EnumDecl{EnumPos: kw.Pos, Name: name.Text}
	p.expect(token.LBRACE)
	for {
		m := p.expect(token.IDENT)
		d.Members = append(d.Members, m.Text)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RBRACE)
	return d
}

func (p *Parser) parseTypeRef() ast.TypeRef {
	var t ast.TypeRef
	first := p.cur()
	for p.accept(token.SETOF) {
		t.SetDepth++
	}
	name := p.expect(token.IDENT)
	t.Name = name.Text
	if t.SetDepth > 0 {
		t.NamePos = first.Pos
	} else {
		t.NamePos = name.Pos
	}
	return t
}

// parseFuncOrConst parses either a constant ("float Threshold = 0.25;") or a
// function declaration ("float Duration(Region r, TestRun t) = expr;").
func (p *Parser) parseFuncOrConst() ast.Decl {
	typ := p.parseTypeRef()
	name := p.expect(token.IDENT)
	if p.accept(token.LPAREN) {
		var params []ast.Param
		if p.cur().Kind != token.RPAREN {
			params = p.parseParams()
		}
		p.expect(token.RPAREN)
		p.expect(token.ASSIGN)
		body := p.parseExpr(1)
		p.expect(token.SEMICOLON)
		return &ast.FuncDecl{RetType: typ, Name: name.Text, Params: params, Body: body}
	}
	p.expect(token.ASSIGN)
	val := p.parseExpr(1)
	p.expect(token.SEMICOLON)
	return &ast.ConstDecl{Type: typ, Name: name.Text, Value: val}
}

func (p *Parser) parseParams() []ast.Param {
	var params []ast.Param
	for {
		typ := p.parseTypeRef()
		name := p.expect(token.IDENT)
		params = append(params, ast.Param{Type: typ, Name: name.Text})
		if !p.accept(token.COMMA) {
			break
		}
	}
	return params
}

func (p *Parser) parseProperty() *ast.PropertyDecl {
	kw := p.expect(token.PROPERTY)
	name := p.expect(token.IDENT)
	d := &ast.PropertyDecl{PropPos: kw.Pos, Name: name.Text}
	p.expect(token.LPAREN)
	if p.cur().Kind != token.RPAREN {
		d.Params = p.parseParams()
	}
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)

	if p.accept(token.LET) {
		for p.cur().Kind != token.IN && p.cur().Kind != token.EOF {
			typ := p.parseTypeRef()
			lname := p.expect(token.IDENT)
			p.expect(token.ASSIGN)
			val := p.parseExpr(1)
			// The paper's own examples are inconsistent about the trailing
			// semicolon before IN; accept it as optional.
			p.accept(token.SEMICOLON)
			d.Lets = append(d.Lets, ast.LetDef{Type: typ, Name: lname.Text, Value: val})
		}
		p.expect(token.IN)
	}

	p.expect(token.CONDITION)
	p.expect(token.COLON)
	d.Conditions = p.parseConditions()
	p.expect(token.SEMICOLON)

	p.expect(token.CONFIDENCE)
	p.expect(token.COLON)
	d.Confidence, d.ConfidenceMax = p.parseGuardedClause()
	p.expect(token.SEMICOLON)

	p.expect(token.SEVERITY)
	p.expect(token.COLON)
	d.Severity, d.SeverityMax = p.parseGuardedClause()
	p.expect(token.SEMICOLON)

	p.expect(token.RBRACE)
	p.accept(token.SEMICOLON) // Figure 1 shows '};' — the semicolon is optional here
	return d
}

// parseConditions parses the CONDITION alternatives. Figure 1 makes OR the
// separator between conditions, so each alternative is parsed above OR
// precedence; an OR inside one alternative requires parentheses.
func (p *Parser) parseConditions() []ast.Condition {
	var conds []ast.Condition
	for {
		var c ast.Condition
		if lbl, ok := p.tryCondLabel(); ok {
			c.Label = lbl
		}
		c.Expr = p.parseExpr(2)
		conds = append(conds, c)
		if !p.accept(token.OR) {
			break
		}
	}
	return conds
}

// tryCondLabel recognizes the "(cond-id)" prefix of a labeled condition. A
// bare "(ident)" is also a valid parenthesized expression, so the label
// reading is chosen only when the token after the closing parenthesis can
// begin an expression; this matches Figure 1, where a label is always
// followed by a bool-expr.
func (p *Parser) tryCondLabel() (string, bool) {
	if p.cur().Kind != token.LPAREN || p.peek(1).Kind != token.IDENT || p.peek(2).Kind != token.RPAREN {
		return "", false
	}
	if !startsExpr(p.peek(3).Kind) {
		return "", false
	}
	p.next() // (
	id := p.next()
	p.next() // )
	return id.Text, true
}

func startsExpr(k token.Kind) bool {
	switch k {
	case token.IDENT, token.INT, token.FLOAT, token.STRING, token.DATETIME,
		token.LPAREN, token.LBRACE, token.MINUS, token.NOT, token.NOTKW,
		token.TRUE, token.FALSE, token.NULLKW,
		token.SUM, token.MIN, token.MAX, token.AVG, token.COUNT, token.UNIQUE:
		return true
	}
	return false
}

// parseGuardedClause parses the body of a CONFIDENCE or SEVERITY clause:
// either MAX(guarded-list) or a single guarded expression.
func (p *Parser) parseGuardedClause() ([]ast.Guarded, bool) {
	// "MAX (" could open either the clause-level MAX of Figure 1 or an
	// ordinary arithmetic MAX expression. Treat it as the clause-level form;
	// the two coincide semantically (maximum over the listed values), and the
	// guarded "->" form is only legal here.
	if p.cur().Kind == token.MAX && p.peek(1).Kind == token.LPAREN {
		p.next()
		p.next()
		var gs []ast.Guarded
		for {
			gs = append(gs, p.parseGuarded())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		return gs, true
	}
	return []ast.Guarded{p.parseGuarded()}, false
}

func (p *Parser) parseGuarded() ast.Guarded {
	var g ast.Guarded
	if p.cur().Kind == token.LPAREN && p.peek(1).Kind == token.IDENT &&
		p.peek(2).Kind == token.RPAREN && p.peek(3).Kind == token.ARROW {
		p.next() // (
		g.Guard = p.next().Text
		p.next() // )
		p.next() // ->
	}
	g.Expr = p.parseExpr(1)
	return g
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// parseExpr parses a binary expression with operators of precedence at least
// minPrec (precedence climbing).
func (p *Parser) parseExpr(minPrec int) ast.Expr {
	left := p.parseUnary()
	for {
		op := p.cur().Kind
		prec := op.Precedence()
		if prec < minPrec || prec == 0 {
			return left
		}
		p.next()
		right := p.parseExpr(prec + 1)
		left = &ast.Binary{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.MINUS:
		p.next()
		return &ast.Unary{OpPos: t.Pos, Op: token.MINUS, X: p.parseUnary()}
	case token.NOT, token.NOTKW:
		p.next()
		return &ast.Unary{OpPos: t.Pos, Op: token.NOTKW, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	e := p.parsePrimary()
	for p.cur().Kind == token.DOT {
		p.next()
		name := p.expect(token.IDENT)
		e = &ast.Member{X: e, Name: name.Text}
	}
	return e
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q: %v", t.Text, err)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid float literal %q: %v", t.Text, err)
		}
		return &ast.FloatLit{LitPos: t.Pos, Value: v}
	case token.STRING:
		p.next()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Text}
	case token.TRUE:
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: true}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: false}
	case token.NULLKW:
		p.next()
		return &ast.NullLit{LitPos: t.Pos}
	case token.DATETIME:
		p.next()
		ts, err := time.Parse("2006-01-02T15:04:05", t.Text)
		if err != nil {
			p.errorf(t.Pos, "invalid datetime literal %q (want 2006-01-02T15:04:05)", t.Text)
		}
		return &ast.DateTimeLit{LitPos: t.Pos, Raw: t.Text, Value: ts.Unix()}
	case token.LPAREN:
		p.next()
		e := p.parseExpr(1)
		p.expect(token.RPAREN)
		return e
	case token.LBRACE:
		return p.parseSetCompr()
	case token.SUM, token.MIN, token.MAX, token.AVG, token.COUNT:
		return p.parseAgg()
	case token.UNIQUE:
		p.next()
		p.expect(token.LPAREN)
		set := p.parseExpr(1)
		p.expect(token.RPAREN)
		return &ast.Unique{UPos: t.Pos, Set: set}
	case token.IDENT:
		p.next()
		if p.cur().Kind == token.LPAREN {
			p.next()
			var args []ast.Expr
			if p.cur().Kind != token.RPAREN {
				for {
					args = append(args, p.parseExpr(1))
					if !p.accept(token.COMMA) {
						break
					}
				}
			}
			p.expect(token.RPAREN)
			return &ast.Call{CallPos: t.Pos, Name: t.Text, Args: args}
		}
		return &ast.Ident{IdentPos: t.Pos, Name: t.Text}
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	panic(bailout{})
}

// parseSetCompr parses "{x IN source WITH cond}" (WITH optional).
func (p *Parser) parseSetCompr() ast.Expr {
	lb := p.expect(token.LBRACE)
	v := p.expect(token.IDENT)
	p.expect(token.IN)
	src := p.parseExpr(1)
	sc := &ast.SetCompr{LBracePos: lb.Pos, Var: v.Text, Source: src}
	if p.accept(token.WITH) {
		sc.Cond = p.parseExpr(1)
	}
	p.expect(token.RBRACE)
	return sc
}

// parseAgg parses the built-in aggregates in both of their forms:
//
//	SUM(value WHERE x IN source AND c1 AND c2)  — quantified form
//	MAX(a, b, c)                                — n-ary scalar form
//	COUNT(setExpr)                              — aggregate over a set value
//
// In the quantified form, the value expression and the filter conjuncts are
// parsed at comparison precedence so that the top-level ANDs separate the
// conjuncts (an AND inside a conjunct needs parentheses), mirroring the
// grammar in the paper's examples.
func (p *Parser) parseAgg() ast.Expr {
	t := p.next()
	var kind ast.AggKind
	switch t.Kind {
	case token.SUM:
		kind = ast.AggSum
	case token.MIN:
		kind = ast.AggMin
	case token.MAX:
		kind = ast.AggMax
	case token.AVG:
		kind = ast.AggAvg
	case token.COUNT:
		kind = ast.AggCount
	}
	p.expect(token.LPAREN)
	first := p.parseExpr(3) // stop below AND/OR so WHERE conjuncts stay separate
	if p.accept(token.WHERE) {
		binder := p.expect(token.IDENT)
		p.expect(token.IN)
		src := p.parseExpr(3)
		agg := &ast.Agg{AggPos: t.Pos, Kind: kind, Value: first, Binder: binder.Text, Source: src}
		for p.accept(token.AND) {
			agg.Conds = append(agg.Conds, p.parseExpr(3))
		}
		p.expect(token.RPAREN)
		return agg
	}
	if p.cur().Kind == token.COMMA {
		args := []ast.Expr{first}
		for p.accept(token.COMMA) {
			args = append(args, p.parseExpr(1))
		}
		p.expect(token.RPAREN)
		return &ast.NAry{AggPos: t.Pos, Kind: kind, Args: args}
	}
	p.expect(token.RPAREN)
	return &ast.Agg{AggPos: t.Pos, Kind: kind, Value: first}
}
