// Package sem implements semantic analysis for ASL specifications: symbol
// resolution, the class hierarchy, and a full type checker over every
// declaration and expression. Later stages (the object evaluator and the SQL
// generator) rely on the types recorded here.
package sem

import (
	"fmt"
	"strings"
)

// BasicKind enumerates the built-in scalar types of ASL.
type BasicKind int

// Built-in scalar types.
const (
	Int BasicKind = iota
	Float
	Bool
	String
	DateTime
)

// String returns the ASL spelling of the basic kind.
func (k BasicKind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "Bool"
	case String:
		return "String"
	case DateTime:
		return "DateTime"
	}
	return fmt.Sprintf("BasicKind(%d)", int(k))
}

// Type is the interface implemented by all ASL types.
type Type interface {
	String() string
	typ()
}

// Basic is a built-in scalar type.
type Basic struct{ Kind BasicKind }

func (t *Basic) typ()           {}
func (t *Basic) String() string { return t.Kind.String() }

// Singleton basic types, shared by the whole checker.
var (
	IntType      = &Basic{Kind: Int}
	FloatType    = &Basic{Kind: Float}
	BoolType     = &Basic{Kind: Bool}
	StringType   = &Basic{Kind: String}
	DateTimeType = &Basic{Kind: DateTime}
)

// Enum is a declared enumeration type such as TimingType.
type Enum struct {
	Name    string
	Members []string
	// Ordinal maps member name to its position.
	Ordinal map[string]int
}

func (t *Enum) typ()           {}
func (t *Enum) String() string { return t.Name }

// Attr is a resolved class attribute.
type Attr struct {
	Name string
	Type Type
}

// Class is a declared class type with single inheritance.
type Class struct {
	Name  string
	Base  *Class // nil for root classes
	Attrs []Attr // attributes declared directly on this class
}

func (t *Class) typ()           {}
func (t *Class) String() string { return t.Name }

// Lookup finds an attribute by name, searching the inheritance chain.
func (t *Class) Lookup(name string) (Attr, bool) {
	for c := t; c != nil; c = c.Base {
		for _, a := range c.Attrs {
			if a.Name == name {
				return a, true
			}
		}
	}
	return Attr{}, false
}

// AllAttrs returns the attributes of the class including inherited ones,
// base-class attributes first.
func (t *Class) AllAttrs() []Attr {
	var out []Attr
	if t.Base != nil {
		out = append(out, t.Base.AllAttrs()...)
	}
	return append(out, t.Attrs...)
}

// IsSubclassOf reports whether t is c or derives from c.
func (t *Class) IsSubclassOf(c *Class) bool {
	for x := t; x != nil; x = x.Base {
		if x == c {
			return true
		}
	}
	return false
}

// Set is "setof Elem".
type Set struct{ Elem Type }

func (t *Set) typ()           {}
func (t *Set) String() string { return "setof " + t.Elem.String() }

// Null is the type of the null literal; assignable to any class type.
type Null struct{}

func (t *Null) typ()           {}
func (t *Null) String() string { return "null" }

// NullType is the singleton null type.
var NullType = &Null{}

// IsNumeric reports whether t is int or float.
func IsNumeric(t Type) bool {
	b, ok := t.(*Basic)
	return ok && (b.Kind == Int || b.Kind == Float)
}

// Identical reports structural type identity.
func Identical(a, b Type) bool {
	switch x := a.(type) {
	case *Basic:
		y, ok := b.(*Basic)
		return ok && x.Kind == y.Kind
	case *Enum:
		return a == b
	case *Class:
		return a == b
	case *Null:
		_, ok := b.(*Null)
		return ok
	case *Set:
		y, ok := b.(*Set)
		return ok && Identical(x.Elem, y.Elem)
	}
	return false
}

// AssignableTo reports whether a value of type src can be used where dst is
// expected: identity, int→float promotion, null→class, and subclass→base.
func AssignableTo(src, dst Type) bool {
	if Identical(src, dst) {
		return true
	}
	if sb, ok := src.(*Basic); ok {
		if db, ok := dst.(*Basic); ok && sb.Kind == Int && db.Kind == Float {
			return true
		}
	}
	if _, ok := src.(*Null); ok {
		if _, ok := dst.(*Class); ok {
			return true
		}
	}
	if sc, ok := src.(*Class); ok {
		if dc, ok := dst.(*Class); ok {
			return sc.IsSubclassOf(dc)
		}
	}
	if ss, ok := src.(*Set); ok {
		if ds, ok := dst.(*Set); ok {
			return AssignableTo(ss.Elem, ds.Elem)
		}
	}
	return false
}

// Comparable reports whether values of the two types may be compared with
// == and !=.
func Comparable(a, b Type) bool {
	if IsNumeric(a) && IsNumeric(b) {
		return true
	}
	return AssignableTo(a, b) || AssignableTo(b, a)
}

// Ordered reports whether values of the two types may be compared with the
// ordering operators < <= > >=.
func Ordered(a, b Type) bool {
	if IsNumeric(a) && IsNumeric(b) {
		return true
	}
	ab, aok := a.(*Basic)
	bb, bok := b.(*Basic)
	if aok && bok && ab.Kind == bb.Kind && (ab.Kind == String || ab.Kind == DateTime) {
		return true
	}
	return false
}

// FuncSig is the signature of a declared ASL function.
type FuncSig struct {
	Name   string
	Params []Attr // parameter names and types, in order
	Ret    Type
}

// String renders the signature.
func (f *FuncSig) String() string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.Type.String() + " " + p.Name
	}
	return fmt.Sprintf("%s %s(%s)", f.Ret, f.Name, strings.Join(parts, ", "))
}

// PropertySig is the checked signature of a property declaration.
type PropertySig struct {
	Name   string
	Params []Attr
	// LetTypes records the declared type of each LET binding, in order.
	LetTypes []Attr
}
