package sem

import (
	"strings"
	"testing"

	"repro/internal/asl/parser"
)

func check(t *testing.T, src string) (*World, error) {
	t.Helper()
	spec, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(spec)
}

func mustCheck(t *testing.T, src string) *World {
	t.Helper()
	w, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return w
}

func wantErr(t *testing.T, src, fragment string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not contain %q", err, fragment)
	}
}

const base = `
class Run { int NoPe; }
class Timing { Run R; float T; }
class Region { String Name; setof Timing Ts; }
enum Color { Red, Green, Blue }
`

func TestClassResolution(t *testing.T) {
	w := mustCheck(t, base)
	region := w.Classes["Region"]
	attr, ok := region.Lookup("Ts")
	if !ok {
		t.Fatal("Region.Ts missing")
	}
	set, ok := attr.Type.(*Set)
	if !ok {
		t.Fatalf("Ts type %s", attr.Type)
	}
	if set.Elem != w.Classes["Timing"] {
		t.Fatalf("Ts element %s", set.Elem)
	}
}

func TestInheritance(t *testing.T) {
	w := mustCheck(t, `
class Base { int X; }
class Mid extends Base { int Y; }
class Leaf extends Mid { int Z; }
`)
	leaf := w.Classes["Leaf"]
	for _, name := range []string{"X", "Y", "Z"} {
		if _, ok := leaf.Lookup(name); !ok {
			t.Errorf("Leaf.%s not inherited", name)
		}
	}
	if got := len(leaf.AllAttrs()); got != 3 {
		t.Errorf("AllAttrs = %d", got)
	}
	if !leaf.IsSubclassOf(w.Classes["Base"]) || w.Classes["Base"].IsSubclassOf(leaf) {
		t.Error("IsSubclassOf wrong")
	}
}

func TestInheritanceCycle(t *testing.T) {
	wantErr(t, `
class A extends B { }
class B extends A { }
`, "cycle")
}

func TestDuplicateDeclarations(t *testing.T) {
	wantErr(t, `class A {} class A {}`, "redeclared")
	wantErr(t, `enum E { X } enum E { Y }`, "redeclared")
	wantErr(t, `class A {} enum A { X }`, "both class and enum")
	wantErr(t, `enum E { X, X }`, "repeated")
	wantErr(t, `enum E { X } enum F { X }`, "already declared")
	wantErr(t, `class A { int X; int X; }`, "redeclared")
	wantErr(t, base+`float F(Run r) = 1.0; float F(Run r) = 2.0;`, "redeclared")
	wantErr(t, base+`float C = 1.0; float C = 2.0;`, "redeclared")
}

func TestUnknownTypes(t *testing.T) {
	wantErr(t, `class A { Bogus X; }`, "unknown type")
	wantErr(t, `class A extends Nope { }`, "unknown class")
}

func TestFunctionChecks(t *testing.T) {
	mustCheck(t, base+`float Total(Region r) = SUM(x.T WHERE x IN r.Ts);`)
	wantErr(t, base+`int Total(Region r) = SUM(x.T WHERE x IN r.Ts);`, "declared to return")
	wantErr(t, base+`float F(Region r) = r.Bogus;`, "no attribute")
	wantErr(t, base+`float F(Region r) = G(r);`, "undefined function")
	wantErr(t, base+`float F(Region r) = r.Name + 1;`, "numeric")
}

func TestExpressionTypes(t *testing.T) {
	w := mustCheck(t, base+`
float C1 = 1.5 * 2.0;
int C2 = 3 + 4;
float C3 = 3 / 4;
Bool C4 = 1 < 2 AND true;
Bool C5 = Red == Green;
String C6 = "a" + "b";
int C7 = 7 % 2;
`)
	if len(w.Consts) != 7 {
		t.Fatalf("consts = %d", len(w.Consts))
	}
}

func TestTypeErrors(t *testing.T) {
	wantErr(t, `float C = 1 + true;`, "numeric")
	wantErr(t, `float C = "a" * 2;`, "numeric")
	wantErr(t, `Bool C = 1 AND 2;`, "Bool")
	wantErr(t, base+`Bool C = Red < Green;`, "ordered")
	wantErr(t, base+`Bool C = Red == 1;`, "compare")
	wantErr(t, `int C = 1.5 % 2;`, "int operands")
	wantErr(t, `float C = -true;`, "numeric operand")
	wantErr(t, `Bool C = NOT 5;`, "Bool operand")
	wantErr(t, `float C = Undefined;`, "undefined identifier")
}

func TestIntPromotesToFloat(t *testing.T) {
	mustCheck(t, `float C = 3;`)
	wantErr(t, `int C = 3.5;`, "initialized with")
}

func TestPropertyChecks(t *testing.T) {
	mustCheck(t, base+`
property P(Region r, Run t) {
  LET float Total = SUM(x.T WHERE x IN r.Ts AND x.R == t);
  IN
  CONDITION: (big) Total > 1.0;
  CONFIDENCE: MAX((big) -> 0.8);
  SEVERITY: Total;
}`)
	wantErr(t, base+`
property P(Region r) {
  CONDITION: r.Name;
  CONFIDENCE: 1;
  SEVERITY: 1;
}`, "must be Bool")
	wantErr(t, base+`
property P(Region r) {
  CONDITION: true;
  CONFIDENCE: r.Name;
  SEVERITY: 1;
}`, "must be numeric")
	wantErr(t, base+`
property P(Region r) {
  CONDITION: (a) true OR (a) false;
  CONFIDENCE: 1;
  SEVERITY: 1;
}`, "repeated")
	wantErr(t, base+`
property P(Region r) {
  CONDITION: (a) true;
  CONFIDENCE: MAX((zz) -> 1);
  SEVERITY: 1;
}`, "does not name a condition")
	wantErr(t, base+`
property P(Region r, Region r) {
  CONDITION: true;
  CONFIDENCE: 1;
  SEVERITY: 1;
}`, "repeated")
}

func TestComprehensionAndUnique(t *testing.T) {
	mustCheck(t, base+`
Timing First(Region r, Run t) = UNIQUE({x IN r.Ts WITH x.R == t});
float V(Region r, Run t) = First(r, t).T;
`)
	wantErr(t, base+`float F(Region r) = UNIQUE(r.Name);`, "requires a set")
	wantErr(t, base+`float F(Region r) = SUM(x.T WHERE x IN r.Name);`, "not a set")
	wantErr(t, base+`Bool F(Region r) = {x IN r.Ts WITH x.T};`, "must be Bool")
}

func TestAggregateTyping(t *testing.T) {
	w := mustCheck(t, base+`
int N(Region r) = COUNT(r.Ts);
float A(Region r) = AVG(x.T WHERE x IN r.Ts);
float M(Region r) = MIN(x.T WHERE x IN r.Ts);
`)
	if !Identical(w.Funcs["N"].Ret, IntType) {
		t.Errorf("COUNT returns %s", w.Funcs["N"].Ret)
	}
	wantErr(t, base+`float F(Region r) = SUM(x.R WHERE x IN r.Ts);`, "numeric")
	wantErr(t, base+`float F(Region r) = MAX(x.R WHERE x IN r.Ts);`, "ordered")
}

func TestNullAssignableToClass(t *testing.T) {
	mustCheck(t, base+`Bool F(Region r) = r == null;`)
	wantErr(t, `Bool C = 1 == null;`, "compare")
}

func TestCallArity(t *testing.T) {
	wantErr(t, base+`
float D(Region r, Run t) = 1.0;
float F(Region r) = D(r);
`, "expects 2 arguments")
	wantErr(t, base+`
float D(Region r) = 1.0;
float F(Run t) = D(t);
`, "want Region")
}

func TestAssignabilityAndComparability(t *testing.T) {
	w := mustCheck(t, `
class Base { int X; }
class Sub extends Base { int Y; }
`)
	sub, bse := w.Classes["Sub"], w.Classes["Base"]
	if !AssignableTo(sub, bse) || AssignableTo(bse, sub) {
		t.Error("subclass assignability wrong")
	}
	if !AssignableTo(NullType, bse) {
		t.Error("null not assignable to class")
	}
	if !AssignableTo(&Set{Elem: sub}, &Set{Elem: bse}) {
		t.Error("set covariance for subclass failed")
	}
	if !Comparable(IntType, FloatType) || Comparable(IntType, BoolType) {
		t.Error("comparability wrong")
	}
	if !Ordered(StringType, StringType) || Ordered(BoolType, BoolType) {
		t.Error("ordering wrong")
	}
}

func TestTypesRecorded(t *testing.T) {
	w := mustCheck(t, base+`float F(Region r) = SUM(x.T WHERE x IN r.Ts);`)
	decl := w.FuncDecls["F"]
	typ, ok := w.Types[decl.Body]
	if !ok || !Identical(typ, FloatType) {
		t.Fatalf("body type %v recorded=%v", typ, ok)
	}
}

func TestFuncSigString(t *testing.T) {
	w := mustCheck(t, base+`float F(Region r, Run t) = 1.0;`)
	if got := w.Funcs["F"].String(); !strings.Contains(got, "float F(Region r, Run t)") {
		t.Errorf("signature: %s", got)
	}
}
