package sem

import (
	"fmt"

	"repro/internal/asl/ast"
	"repro/internal/asl/token"
)

// Error is a semantic error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("asl: %s: %s", e.Pos, e.Msg) }

// ErrorList is a collection of semantic errors.
type ErrorList []*Error

// Error implements the error interface.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
}

// World is the result of semantic analysis: every declared type, function,
// constant, and property, plus the inferred type of every expression.
type World struct {
	Spec    *Spec
	Classes map[string]*Class
	Enums   map[string]*Enum
	// EnumMembers maps a member name (e.g. "Barrier") to its enum. Member
	// names are required to be unique across enums so they can be used as
	// bare identifiers, as the paper does with "Barrier".
	EnumMembers map[string]*Enum
	Funcs       map[string]*FuncSig
	FuncDecls   map[string]*ast.FuncDecl
	Consts      map[string]Type
	ConstDecls  map[string]*ast.ConstDecl
	Props       map[string]*PropertySig
	PropDecls   map[string]*ast.PropertyDecl
	// Types records the inferred type of every checked expression node.
	Types map[ast.Expr]Type
}

// Spec is re-exported so downstream packages need not import ast for the
// common case.
type Spec = ast.Spec

// checker carries the analysis state.
type checker struct {
	w    *World
	errs ErrorList
}

// Check analyses a parsed specification and returns the typed World. All
// semantic errors are collected and returned together.
func Check(spec *ast.Spec) (*World, error) {
	w := &World{
		Spec:        spec,
		Classes:     make(map[string]*Class),
		Enums:       make(map[string]*Enum),
		EnumMembers: make(map[string]*Enum),
		Funcs:       make(map[string]*FuncSig),
		FuncDecls:   make(map[string]*ast.FuncDecl),
		Consts:      make(map[string]Type),
		ConstDecls:  make(map[string]*ast.ConstDecl),
		Props:       make(map[string]*PropertySig),
		PropDecls:   make(map[string]*ast.PropertyDecl),
		Types:       make(map[ast.Expr]Type),
	}
	c := &checker{w: w}

	c.declareTypes(spec)
	c.resolveClasses(spec)
	c.checkDecls(spec)

	if len(c.errs) > 0 {
		return w, c.errs
	}
	return w, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// declareTypes registers class and enum names (pass 1).
func (c *checker) declareTypes(spec *ast.Spec) {
	for _, d := range spec.Decls {
		switch x := d.(type) {
		case *ast.ClassDecl:
			if _, dup := c.w.Classes[x.Name]; dup {
				c.errorf(x.Pos(), "class %s redeclared", x.Name)
				continue
			}
			if _, dup := c.w.Enums[x.Name]; dup {
				c.errorf(x.Pos(), "%s declared as both class and enum", x.Name)
				continue
			}
			c.w.Classes[x.Name] = &Class{Name: x.Name}
		case *ast.EnumDecl:
			if _, dup := c.w.Enums[x.Name]; dup {
				c.errorf(x.Pos(), "enum %s redeclared", x.Name)
				continue
			}
			if _, dup := c.w.Classes[x.Name]; dup {
				c.errorf(x.Pos(), "%s declared as both class and enum", x.Name)
				continue
			}
			e := &Enum{Name: x.Name, Members: x.Members, Ordinal: make(map[string]int)}
			for i, m := range x.Members {
				if _, dup := e.Ordinal[m]; dup {
					c.errorf(x.Pos(), "enum %s: member %s repeated", x.Name, m)
					continue
				}
				e.Ordinal[m] = i
				if other, clash := c.w.EnumMembers[m]; clash {
					c.errorf(x.Pos(), "enum member %s already declared in enum %s", m, other.Name)
					continue
				}
				c.w.EnumMembers[m] = e
			}
			c.w.Enums[x.Name] = e
		}
	}
}

// resolveClasses links base classes and attribute types (pass 2).
func (c *checker) resolveClasses(spec *ast.Spec) {
	for _, d := range spec.Decls {
		x, ok := d.(*ast.ClassDecl)
		if !ok {
			continue
		}
		cls := c.w.Classes[x.Name]
		if x.Extends != "" {
			base, ok := c.w.Classes[x.Extends]
			if !ok {
				c.errorf(x.Pos(), "class %s extends unknown class %s", x.Name, x.Extends)
			} else {
				cls.Base = base
			}
		}
		for _, a := range x.Attrs {
			t := c.resolveTypeRef(a.Type)
			if t == nil {
				continue
			}
			if _, dup := cls.Lookup(a.Name); dup {
				c.errorf(a.Type.Pos(), "class %s: attribute %s redeclared", x.Name, a.Name)
				continue
			}
			cls.Attrs = append(cls.Attrs, Attr{Name: a.Name, Type: t})
		}
	}
	// Detect inheritance cycles.
	for name, cls := range c.w.Classes {
		slow, fast := cls, cls
		for fast != nil && fast.Base != nil {
			slow, fast = slow.Base, fast.Base.Base
			if slow == fast {
				c.errorf(token.Pos{Line: 1, Col: 1}, "inheritance cycle involving class %s", name)
				cls.Base = nil
				break
			}
		}
	}
}

func (c *checker) resolveTypeRef(ref ast.TypeRef) Type {
	var base Type
	switch ref.Name {
	case "int":
		base = IntType
	case "float":
		base = FloatType
	case "Bool", "bool", "boolean":
		base = BoolType
	case "String", "string":
		base = StringType
	case "DateTime":
		base = DateTimeType
	default:
		if cls, ok := c.w.Classes[ref.Name]; ok {
			base = cls
		} else if e, ok := c.w.Enums[ref.Name]; ok {
			base = e
		} else {
			c.errorf(ref.Pos(), "unknown type %s", ref.Name)
			return nil
		}
	}
	for i := 0; i < ref.SetDepth; i++ {
		base = &Set{Elem: base}
	}
	return base
}

// env is a lexical scope for expression checking.
type env struct {
	parent *env
	vars   map[string]Type
}

func newEnv(parent *env) *env { return &env{parent: parent, vars: make(map[string]Type)} }

func (e *env) lookup(name string) (Type, bool) {
	for s := e; s != nil; s = s.parent {
		if t, ok := s.vars[name]; ok {
			return t, true
		}
	}
	return nil, false
}

// checkDecls checks constants, functions, and properties (pass 3).
func (c *checker) checkDecls(spec *ast.Spec) {
	// Declare signatures first so functions may call each other and
	// constants are visible everywhere, independent of source order.
	for _, d := range spec.Decls {
		switch x := d.(type) {
		case *ast.ConstDecl:
			t := c.resolveTypeRef(x.Type)
			if t == nil {
				continue
			}
			if _, dup := c.w.Consts[x.Name]; dup {
				c.errorf(x.Pos(), "constant %s redeclared", x.Name)
				continue
			}
			c.w.Consts[x.Name] = t
			c.w.ConstDecls[x.Name] = x
		case *ast.FuncDecl:
			ret := c.resolveTypeRef(x.RetType)
			if ret == nil {
				continue
			}
			if _, dup := c.w.Funcs[x.Name]; dup {
				c.errorf(x.Pos(), "function %s redeclared", x.Name)
				continue
			}
			sig := &FuncSig{Name: x.Name, Ret: ret}
			for _, p := range x.Params {
				pt := c.resolveTypeRef(p.Type)
				if pt == nil {
					pt = FloatType // error already reported; keep checking
				}
				sig.Params = append(sig.Params, Attr{Name: p.Name, Type: pt})
			}
			c.w.Funcs[x.Name] = sig
			c.w.FuncDecls[x.Name] = x
		}
	}

	for _, d := range spec.Decls {
		switch x := d.(type) {
		case *ast.ConstDecl:
			want, ok := c.w.Consts[x.Name]
			if !ok {
				continue
			}
			got := c.checkExpr(x.Value, newEnv(nil))
			if got != nil && !AssignableTo(got, want) {
				c.errorf(x.Pos(), "constant %s declared %s but initialized with %s", x.Name, want, got)
			}
		case *ast.FuncDecl:
			sig, ok := c.w.Funcs[x.Name]
			if !ok {
				continue
			}
			scope := newEnv(nil)
			for _, p := range sig.Params {
				scope.vars[p.Name] = p.Type
			}
			got := c.checkExpr(x.Body, scope)
			if got != nil && !AssignableTo(got, sig.Ret) {
				c.errorf(x.Pos(), "function %s declared to return %s but body has type %s", x.Name, sig.Ret, got)
			}
		case *ast.PropertyDecl:
			c.checkProperty(x)
		}
	}
}

func (c *checker) checkProperty(x *ast.PropertyDecl) {
	if _, dup := c.w.Props[x.Name]; dup {
		c.errorf(x.Pos(), "property %s redeclared", x.Name)
		return
	}
	sig := &PropertySig{Name: x.Name}
	scope := newEnv(nil)
	for _, p := range x.Params {
		pt := c.resolveTypeRef(p.Type)
		if pt == nil {
			pt = FloatType
		}
		if _, dup := scope.vars[p.Name]; dup {
			c.errorf(x.Pos(), "property %s: parameter %s repeated", x.Name, p.Name)
		}
		scope.vars[p.Name] = pt
		sig.Params = append(sig.Params, Attr{Name: p.Name, Type: pt})
	}
	for _, l := range x.Lets {
		want := c.resolveTypeRef(l.Type)
		got := c.checkExpr(l.Value, scope)
		if want == nil {
			want = got
		}
		if want == nil {
			want = FloatType
		}
		if got != nil && !AssignableTo(got, want) {
			c.errorf(l.Type.Pos(), "property %s: LET %s declared %s but bound to %s", x.Name, l.Name, want, got)
		}
		scope.vars[l.Name] = want
		sig.LetTypes = append(sig.LetTypes, Attr{Name: l.Name, Type: want})
	}

	if len(x.Conditions) == 0 {
		c.errorf(x.Pos(), "property %s: missing CONDITION clause", x.Name)
	}
	labels := make(map[string]bool)
	for _, cond := range x.Conditions {
		if cond.Label != "" {
			if labels[cond.Label] {
				c.errorf(cond.Expr.Pos(), "property %s: condition label %s repeated", x.Name, cond.Label)
			}
			labels[cond.Label] = true
		}
		t := c.checkExpr(cond.Expr, scope)
		if t != nil && !Identical(t, BoolType) {
			c.errorf(cond.Expr.Pos(), "property %s: condition must be Bool, found %s", x.Name, t)
		}
	}
	checkGuarded := func(kind string, gs []ast.Guarded) {
		for _, g := range gs {
			if g.Guard != "" && !labels[g.Guard] {
				c.errorf(g.Expr.Pos(), "property %s: %s guard (%s) does not name a condition", x.Name, kind, g.Guard)
			}
			t := c.checkExpr(g.Expr, scope)
			if t != nil && !IsNumeric(t) {
				c.errorf(g.Expr.Pos(), "property %s: %s expression must be numeric, found %s", x.Name, kind, t)
			}
		}
	}
	checkGuarded("CONFIDENCE", x.Confidence)
	checkGuarded("SEVERITY", x.Severity)

	c.w.Props[x.Name] = sig
	c.w.PropDecls[x.Name] = x
}

// checkExpr infers and records the type of e, reporting errors against the
// expression's position. A nil result means the type could not be determined
// (an error has already been reported).
func (c *checker) checkExpr(e ast.Expr, scope *env) Type {
	t := c.exprType(e, scope)
	if t != nil {
		c.w.Types[e] = t
	}
	return t
}

func (c *checker) exprType(e ast.Expr, scope *env) Type {
	switch x := e.(type) {
	case *ast.IntLit:
		return IntType
	case *ast.FloatLit:
		return FloatType
	case *ast.StringLit:
		return StringType
	case *ast.BoolLit:
		return BoolType
	case *ast.NullLit:
		return NullType
	case *ast.DateTimeLit:
		return DateTimeType
	case *ast.Ident:
		if t, ok := scope.lookup(x.Name); ok {
			return t
		}
		if t, ok := c.w.Consts[x.Name]; ok {
			return t
		}
		if enum, ok := c.w.EnumMembers[x.Name]; ok {
			return enum
		}
		c.errorf(x.Pos(), "undefined identifier %s", x.Name)
		return nil
	case *ast.Member:
		recv := c.checkExpr(x.X, scope)
		if recv == nil {
			return nil
		}
		cls, ok := recv.(*Class)
		if !ok {
			c.errorf(x.Pos(), "attribute access .%s on non-class type %s", x.Name, recv)
			return nil
		}
		attr, ok := cls.Lookup(x.Name)
		if !ok {
			c.errorf(x.Pos(), "class %s has no attribute %s", cls.Name, x.Name)
			return nil
		}
		return attr.Type
	case *ast.Unary:
		t := c.checkExpr(x.X, scope)
		if t == nil {
			return nil
		}
		if x.Op == token.MINUS {
			if !IsNumeric(t) {
				c.errorf(x.Pos(), "unary - requires a numeric operand, found %s", t)
				return nil
			}
			return t
		}
		if !Identical(t, BoolType) {
			c.errorf(x.Pos(), "NOT requires a Bool operand, found %s", t)
			return nil
		}
		return BoolType
	case *ast.Binary:
		return c.binaryType(x, scope)
	case *ast.Call:
		sig, ok := c.w.Funcs[x.Name]
		if !ok {
			c.errorf(x.Pos(), "call of undefined function %s", x.Name)
			for _, a := range x.Args {
				c.checkExpr(a, scope)
			}
			return nil
		}
		if len(x.Args) != len(sig.Params) {
			c.errorf(x.Pos(), "function %s expects %d arguments, got %d", x.Name, len(sig.Params), len(x.Args))
		}
		for i, a := range x.Args {
			at := c.checkExpr(a, scope)
			if i < len(sig.Params) && at != nil && !AssignableTo(at, sig.Params[i].Type) {
				c.errorf(a.Pos(), "function %s: argument %d has type %s, want %s", x.Name, i+1, at, sig.Params[i].Type)
			}
		}
		return sig.Ret
	case *ast.SetCompr:
		src := c.checkExpr(x.Source, scope)
		var elem Type
		if src != nil {
			set, ok := src.(*Set)
			if !ok {
				c.errorf(x.Source.Pos(), "set comprehension over non-set type %s", src)
			} else {
				elem = set.Elem
			}
		}
		inner := newEnv(scope)
		if elem == nil {
			elem = FloatType
		}
		inner.vars[x.Var] = elem
		if x.Cond != nil {
			ct := c.checkExpr(x.Cond, inner)
			if ct != nil && !Identical(ct, BoolType) {
				c.errorf(x.Cond.Pos(), "WITH condition must be Bool, found %s", ct)
			}
		}
		return &Set{Elem: elem}
	case *ast.Unique:
		st := c.checkExpr(x.Set, scope)
		if st == nil {
			return nil
		}
		set, ok := st.(*Set)
		if !ok {
			c.errorf(x.Pos(), "UNIQUE requires a set, found %s", st)
			return nil
		}
		return set.Elem
	case *ast.NAry:
		var result Type = IntType
		for _, a := range x.Args {
			at := c.checkExpr(a, scope)
			if at == nil {
				continue
			}
			if !IsNumeric(at) {
				c.errorf(a.Pos(), "%s argument must be numeric, found %s", x.Kind, at)
				continue
			}
			if Identical(at, FloatType) {
				result = FloatType
			}
		}
		return result
	case *ast.Agg:
		return c.aggType(x, scope)
	}
	c.errorf(e.Pos(), "internal: unhandled expression %T", e)
	return nil
}

func (c *checker) aggType(x *ast.Agg, scope *env) Type {
	inner := scope
	if x.Binder != "" {
		src := c.checkExpr(x.Source, scope)
		var elem Type
		if src != nil {
			set, ok := src.(*Set)
			if !ok {
				c.errorf(x.Source.Pos(), "%s WHERE %s IN ...: source is not a set (%s)", x.Kind, x.Binder, src)
			} else {
				elem = set.Elem
			}
		}
		if elem == nil {
			elem = FloatType
		}
		inner = newEnv(scope)
		inner.vars[x.Binder] = elem
		for _, cond := range x.Conds {
			ct := c.checkExpr(cond, inner)
			if ct != nil && !Identical(ct, BoolType) {
				c.errorf(cond.Pos(), "%s filter must be Bool, found %s", x.Kind, ct)
			}
		}
	}
	vt := c.checkExpr(x.Value, inner)
	if x.Binder == "" {
		// Aggregate over a set-valued expression, e.g. COUNT(r.TotTimes).
		if vt != nil {
			set, ok := vt.(*Set)
			if !ok {
				c.errorf(x.Value.Pos(), "%s over non-set value of type %s", x.Kind, vt)
				return nil
			}
			vt = set.Elem
		}
	}
	switch x.Kind {
	case ast.AggCount:
		return IntType
	case ast.AggAvg:
		if vt != nil && !IsNumeric(vt) {
			c.errorf(x.Value.Pos(), "%s requires numeric elements, found %s", x.Kind, vt)
		}
		return FloatType
	case ast.AggSum:
		if vt != nil && !IsNumeric(vt) {
			c.errorf(x.Value.Pos(), "%s requires numeric elements, found %s", x.Kind, vt)
			return FloatType
		}
		if vt == nil {
			return FloatType
		}
		return vt
	default: // MIN, MAX
		if vt != nil && !IsNumeric(vt) && !Identical(vt, DateTimeType) && !Identical(vt, StringType) {
			c.errorf(x.Value.Pos(), "%s requires ordered elements, found %s", x.Kind, vt)
			return FloatType
		}
		if vt == nil {
			return FloatType
		}
		return vt
	}
}

func (c *checker) binaryType(x *ast.Binary, scope *env) Type {
	lt := c.checkExpr(x.L, scope)
	rt := c.checkExpr(x.R, scope)
	if lt == nil || rt == nil {
		return nil
	}
	switch x.Op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT:
		if x.Op == token.PLUS && Identical(lt, StringType) && Identical(rt, StringType) {
			return StringType
		}
		if !IsNumeric(lt) || !IsNumeric(rt) {
			c.errorf(x.Pos(), "operator %s requires numeric operands, found %s and %s", x.Op, lt, rt)
			return nil
		}
		if x.Op == token.PERCENT {
			if !Identical(lt, IntType) || !Identical(rt, IntType) {
				c.errorf(x.Pos(), "operator %% requires int operands, found %s and %s", lt, rt)
				return nil
			}
			return IntType
		}
		if Identical(lt, FloatType) || Identical(rt, FloatType) || x.Op == token.SLASH {
			return FloatType
		}
		return IntType
	case token.EQ, token.NEQ:
		if !Comparable(lt, rt) {
			c.errorf(x.Pos(), "cannot compare %s and %s", lt, rt)
			return nil
		}
		return BoolType
	case token.LT, token.LEQ, token.GT, token.GEQ:
		if !Ordered(lt, rt) {
			c.errorf(x.Pos(), "operator %s requires ordered operands, found %s and %s", x.Op, lt, rt)
			return nil
		}
		return BoolType
	case token.AND, token.OR:
		if !Identical(lt, BoolType) || !Identical(rt, BoolType) {
			c.errorf(x.Pos(), "operator %s requires Bool operands, found %s and %s", x.Op, lt, rt)
			return nil
		}
		return BoolType
	}
	c.errorf(x.Pos(), "internal: unhandled binary operator %s", x.Op)
	return nil
}
