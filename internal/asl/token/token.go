// Package token defines the lexical tokens of the APART Specification
// Language (ASL) as used by the KOJAK Cost Analyzer, together with source
// positions for error reporting.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds follow the grammar of the paper (Figure 1 plus
// the data-model syntax of Section 4.1). ASL keywords are case-insensitive.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT    // Duration, r, TotTimes
	INT      // 42
	FLOAT    // 3.14
	STRING   // "sweep3d"
	DATETIME // @1999-12-17T10:30:00@

	// Operators and delimiters.
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	PERCENT   // %
	ASSIGN    // =
	EQ        // ==
	NEQ       // !=
	LT        // <
	LEQ       // <=
	GT        // >
	GEQ       // >=
	ARROW     // ->
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	DOT       // .
	NOT       // ! (also keyword NOT)

	// Keywords.
	keywordBegin
	CLASS
	ENUM
	EXTENDS
	SETOF
	PROPERTY
	LET
	IN
	CONDITION
	CONFIDENCE
	SEVERITY
	MAX
	MIN
	SUM
	AVG
	COUNT
	UNIQUE
	WITH
	WHERE
	AND
	OR
	NOTKW
	TRUE
	FALSE
	NULLKW
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL:    "ILLEGAL",
	EOF:        "EOF",
	IDENT:      "IDENT",
	INT:        "INT",
	FLOAT:      "FLOAT",
	STRING:     "STRING",
	DATETIME:   "DATETIME",
	PLUS:       "+",
	MINUS:      "-",
	STAR:       "*",
	SLASH:      "/",
	PERCENT:    "%",
	ASSIGN:     "=",
	EQ:         "==",
	NEQ:        "!=",
	LT:         "<",
	LEQ:        "<=",
	GT:         ">",
	GEQ:        ">=",
	ARROW:      "->",
	LPAREN:     "(",
	RPAREN:     ")",
	LBRACE:     "{",
	RBRACE:     "}",
	LBRACKET:   "[",
	RBRACKET:   "]",
	COMMA:      ",",
	SEMICOLON:  ";",
	COLON:      ":",
	DOT:        ".",
	NOT:        "!",
	CLASS:      "class",
	ENUM:       "enum",
	EXTENDS:    "extends",
	SETOF:      "setof",
	PROPERTY:   "property",
	LET:        "LET",
	IN:         "IN",
	CONDITION:  "CONDITION",
	CONFIDENCE: "CONFIDENCE",
	SEVERITY:   "SEVERITY",
	MAX:        "MAX",
	MIN:        "MIN",
	SUM:        "SUM",
	AVG:        "AVG",
	COUNT:      "COUNT",
	UNIQUE:     "UNIQUE",
	WITH:       "WITH",
	WHERE:      "WHERE",
	AND:        "AND",
	OR:         "OR",
	NOTKW:      "NOT",
	TRUE:       "true",
	FALSE:      "false",
	NULLKW:     "null",
}

// String returns the textual spelling of the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether the kind is an ASL keyword.
func (k Kind) IsKeyword() bool { return k > keywordBegin && k < keywordEnd }

// keywords maps lower-cased spellings to the case-insensitive keyword
// kinds: the paper itself mixes "Property" and "PROPERTY".
var keywords = map[string]Kind{
	"class":      CLASS,
	"enum":       ENUM,
	"extends":    EXTENDS,
	"setof":      SETOF,
	"property":   PROPERTY,
	"let":        LET,
	"in":         IN,
	"condition":  CONDITION,
	"confidence": CONFIDENCE,
	"severity":   SEVERITY,
	"with":       WITH,
	"where":      WHERE,
	"and":        AND,
	"or":         OR,
	"not":        NOTKW,
	"true":       TRUE,
	"false":      FALSE,
	"null":       NULLKW,
}

// aggKeywords are recognized only in their exact uppercase spelling, which
// is how the paper writes them. The paper also uses "sum" as a set-
// comprehension variable, so these spellings cannot be case-insensitive.
var aggKeywords = map[string]Kind{
	"MAX":    MAX,
	"MIN":    MIN,
	"SUM":    SUM,
	"AVG":    AVG,
	"COUNT":  COUNT,
	"UNIQUE": UNIQUE,
}

// Lookup maps an identifier spelling to its keyword kind, or IDENT if the
// spelling is not a keyword. Structural keywords match case-insensitively;
// the aggregate operators MAX, MIN, SUM, AVG, COUNT and UNIQUE match only in
// uppercase (the paper uses "sum" as an ordinary variable).
func Lookup(ident string) Kind {
	if k, ok := aggKeywords[ident]; ok {
		return k
	}
	if k, ok := keywords[toLower(ident)]; ok {
		return k
	}
	return IDENT
}

func toLower(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Valid reports whether the position has been set.
func (p Pos) Valid() bool { return p.Line > 0 }

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT, STRING, DATETIME, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Precedence returns the binary-operator precedence for expression parsing,
// or 0 if the kind is not a binary operator. Higher binds tighter.
func (k Kind) Precedence() int {
	switch k {
	case OR:
		return 1
	case AND:
		return 2
	case EQ, NEQ, LT, LEQ, GT, GEQ:
		return 3
	case PLUS, MINUS:
		return 4
	case STAR, SLASH, PERCENT:
		return 5
	}
	return 0
}
