package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := []struct {
		ident string
		want  Kind
	}{
		// Structural keywords match case-insensitively: the paper itself
		// mixes "Property" and "PROPERTY".
		{"class", CLASS},
		{"CLASS", CLASS},
		{"Class", CLASS},
		{"property", PROPERTY},
		{"PROPERTY", PROPERTY},
		{"Property", PROPERTY},
		{"extends", EXTENDS},
		{"setof", SETOF},
		{"enum", ENUM},
		{"let", LET},
		{"LET", LET},
		{"in", IN},
		{"condition", CONDITION},
		{"confidence", CONFIDENCE},
		{"severity", SEVERITY},
		{"with", WITH},
		{"where", WHERE},
		{"and", AND},
		{"or", OR},
		{"not", NOTKW},
		{"true", TRUE},
		{"false", FALSE},
		{"null", NULLKW},
		// Aggregates are uppercase-only; the paper uses "sum" as an ordinary
		// set-comprehension variable.
		{"MAX", MAX},
		{"MIN", MIN},
		{"SUM", SUM},
		{"AVG", AVG},
		{"COUNT", COUNT},
		{"UNIQUE", UNIQUE},
		{"sum", IDENT},
		{"max", IDENT},
		{"Avg", IDENT},
		{"Count", IDENT},
		// Plain identifiers.
		{"Duration", IDENT},
		{"r", IDENT},
		{"TotTimes", IDENT},
		{"classes", IDENT},
	}
	for _, tc := range cases {
		if got := Lookup(tc.ident); got != tc.want {
			t.Errorf("Lookup(%q) = %v, want %v", tc.ident, got, tc.want)
		}
	}
}

func TestKeywordRangeIsClassified(t *testing.T) {
	for k := keywordBegin + 1; k < keywordEnd; k++ {
		if !k.IsKeyword() {
			t.Errorf("kind %d inside the keyword range is not IsKeyword", int(k))
		}
		if len(k.String()) >= 5 && k.String()[:5] == "Kind(" {
			t.Errorf("keyword kind %d has no spelling in kindNames", int(k))
		}
	}
	for _, k := range []Kind{ILLEGAL, EOF, IDENT, INT, FLOAT, STRING, DATETIME, PLUS, DOT, NOT} {
		if k.IsKeyword() {
			t.Errorf("%v must not be a keyword", k)
		}
	}
}

func TestEveryKeywordHasALookupSpelling(t *testing.T) {
	// Every kind in the keyword range must be reachable through Lookup with
	// its canonical String spelling — the printer relies on this to emit
	// re-lexable source.
	for k := keywordBegin + 1; k < keywordEnd; k++ {
		spelling := k.String()
		if got := Lookup(spelling); got != k {
			t.Errorf("Lookup(%q) = %v, want %v", spelling, got, k)
		}
	}
}

func TestKindStringFallback(t *testing.T) {
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind renders as %q", got)
	}
}

func TestPos(t *testing.T) {
	if (Pos{}).Valid() {
		t.Error("zero Pos must be invalid")
	}
	p := Pos{Line: 3, Col: 14}
	if !p.Valid() || p.String() != "3:14" {
		t.Errorf("Pos = %q, valid %v", p.String(), p.Valid())
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IDENT, Text: "Duration"}, `IDENT("Duration")`},
		{Token{Kind: INT, Text: "42"}, `INT("42")`},
		{Token{Kind: STRING, Text: "sweep3d"}, `STRING("sweep3d")`},
		{Token{Kind: ARROW, Text: "->"}, "->"},
		{Token{Kind: CLASS, Text: "class"}, "class"},
	}
	for _, tc := range cases {
		if got := tc.tok.String(); got != tc.want {
			t.Errorf("Token.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// OR < AND < comparison < additive < multiplicative, all > 0; everything
	// else is not a binary operator.
	if !(OR.Precedence() < AND.Precedence() &&
		AND.Precedence() < EQ.Precedence() &&
		EQ.Precedence() < PLUS.Precedence() &&
		PLUS.Precedence() < STAR.Precedence()) {
		t.Error("operator precedence ordering violated")
	}
	for _, k := range []Kind{EQ, NEQ, LT, LEQ, GT, GEQ} {
		if k.Precedence() != EQ.Precedence() {
			t.Errorf("%v precedence %d, want %d", k, k.Precedence(), EQ.Precedence())
		}
	}
	for _, k := range []Kind{PLUS, MINUS} {
		if k.Precedence() != PLUS.Precedence() {
			t.Errorf("%v precedence mismatch", k)
		}
	}
	for _, k := range []Kind{STAR, SLASH, PERCENT} {
		if k.Precedence() != STAR.Precedence() {
			t.Errorf("%v precedence mismatch", k)
		}
	}
	for _, k := range []Kind{IDENT, LPAREN, ASSIGN, NOT, ARROW, EOF} {
		if k.Precedence() != 0 {
			t.Errorf("%v must not have binary precedence", k)
		}
	}
}
