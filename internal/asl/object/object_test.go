package object

import (
	"testing"
	"testing/quick"

	"repro/internal/asl/parser"
	"repro/internal/asl/sem"
)

func testWorld(t *testing.T) *sem.World {
	t.Helper()
	spec, err := parser.Parse(`
class Run { int NoPe; }
class Region { String Name; float T; Bool Hot; DateTime When; Run R; setof Run Rs; Color C; }
enum Color { Red, Green }
`)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sem.Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestStoreAllocation(t *testing.T) {
	w := testWorld(t)
	s := NewStore()
	a := s.New(w.Classes["Run"])
	b := s.New(w.Classes["Region"])
	if a.ID == b.ID {
		t.Fatal("IDs must be unique")
	}
	if s.Len() != 2 || len(s.All()) != 2 {
		t.Fatalf("store size %d", s.Len())
	}
	if got := s.OfClass("Run"); len(got) != 1 || got[0] != a {
		t.Fatalf("OfClass: %v", got)
	}
}

func TestNewWithID(t *testing.T) {
	w := testWorld(t)
	s := NewStore()
	o := s.NewWithID(w.Classes["Run"], 100)
	if o.ID != 100 {
		t.Fatalf("ID = %d", o.ID)
	}
	next := s.New(w.Classes["Run"])
	if next.ID <= 100 {
		t.Fatalf("allocator did not advance past explicit ID: %d", next.ID)
	}
}

func TestAttributeDefaults(t *testing.T) {
	w := testWorld(t)
	s := NewStore()
	r := s.New(w.Classes["Region"])
	if v := r.Get("Name"); !Equal(v, Str("")) {
		t.Errorf("Name default %s", v)
	}
	if v := r.Get("T"); !Equal(v, Float(0)) {
		t.Errorf("T default %s", v)
	}
	if v := r.Get("Hot"); !Equal(v, Bool(false)) {
		t.Errorf("Hot default %s", v)
	}
	if v := r.Get("R"); !IsNull(v) {
		t.Errorf("R default %s", v)
	}
	if v, ok := r.Get("Rs").(*Set); !ok || len(v.Elems) != 0 {
		t.Errorf("Rs default %v", r.Get("Rs"))
	}
	if v, ok := r.Get("C").(Enum); !ok || v.Member != "Red" {
		t.Errorf("C default %v", r.Get("C"))
	}
	if r.Has("Name") {
		t.Error("Has reports unset attribute")
	}
	r.Set("Name", Str("x"))
	if !r.Has("Name") {
		t.Error("Has misses set attribute")
	}
}

func TestSetUnknownAttributePanics(t *testing.T) {
	w := testWorld(t)
	s := NewStore()
	r := s.New(w.Classes["Region"])
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown attribute")
		}
	}()
	r.Set("Bogus", Int(1))
}

func TestAppendNonSetPanics(t *testing.T) {
	w := testWorld(t)
	s := NewStore()
	r := s.New(w.Classes["Region"])
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Append on scalar attribute")
		}
	}()
	r.Append("Name", Str("x"))
}

func TestAppendBuildsSet(t *testing.T) {
	w := testWorld(t)
	s := NewStore()
	r := s.New(w.Classes["Region"])
	run1, run2 := s.New(w.Classes["Run"]), s.New(w.Classes["Run"])
	r.Append("Rs", run1)
	r.Append("Rs", run2)
	set := r.Get("Rs").(*Set)
	if len(set.Elems) != 2 || set.Elems[0] != Value(run1) {
		t.Fatalf("set: %v", set)
	}
	names := r.AttrNames()
	if len(names) != 1 || names[0] != "Rs" {
		t.Fatalf("AttrNames: %v", names)
	}
}

func TestEqualSemantics(t *testing.T) {
	w := testWorld(t)
	s := NewStore()
	a, b := s.New(w.Classes["Run"]), s.New(w.Classes["Run"])
	cases := []struct {
		x, y Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Float(1.0), true},
		{Float(1.5), Int(1), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Int(1), false},
		{Bool(true), Bool(true), true},
		{DateTime(5), DateTime(5), true},
		{DateTime(5), Int(5), false},
		{Null{}, Null{}, true},
		{a, a, true},
		{a, b, false},
		{a, Null{}, false},
		{&Set{Elems: []Value{Int(1)}}, &Set{Elems: []Value{Int(1)}}, true},
		{&Set{Elems: []Value{Int(1)}}, &Set{Elems: []Value{Int(2)}}, false},
		{&Set{Elems: []Value{Int(1)}}, &Set{Elems: []Value{Int(1), Int(2)}}, false},
	}
	for i, c := range cases {
		if got := Equal(c.x, c.y); got != c.want {
			t.Errorf("case %d: Equal(%s, %s) = %v", i, c.x, c.y, got)
		}
	}
	e := w.Enums["Color"]
	if !Equal(Enum{Type: e, Member: "Red"}, Enum{Type: e, Member: "Red"}) {
		t.Error("enum equality")
	}
	if Equal(Enum{Type: e, Member: "Red"}, Enum{Type: e, Member: "Green"}) {
		t.Error("enum inequality")
	}
}

func TestQuickEqualIsReflexiveAndSymmetric(t *testing.T) {
	f := func(a, b int32, s1, s2 string) bool {
		vals := []Value{Int(int64(a)), Float(float64(b)), Str(s1), Str(s2), Bool(a%2 == 0), Null{}}
		for _, x := range vals {
			if !Equal(x, x) {
				return false
			}
			for _, y := range vals {
				if Equal(x, y) != Equal(y, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(3), "3"},
		{Float(2.5), "2.5"},
		{Str("x"), `"x"`},
		{Bool(true), "true"},
		{Null{}, "null"},
		{&Set{Elems: []Value{Int(1), Int(2)}}, "{1, 2}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%T String = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := AsFloat(Int(3)); !ok || f != 3 {
		t.Error("AsFloat(Int)")
	}
	if f, ok := AsFloat(Float(2.5)); !ok || f != 2.5 {
		t.Error("AsFloat(Float)")
	}
	if _, ok := AsFloat(Str("x")); ok {
		t.Error("AsFloat(Str) should fail")
	}
}
