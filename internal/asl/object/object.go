// Package object implements the runtime representation of ASL data-model
// instances: typed values, objects with attributes, sets, and an object
// store holding a complete performance-data snapshot.
//
// The object graph is the semantic reference for property evaluation (the
// "client-side" path of the paper); the relational representation used by
// the SQL path is derived from the same graph.
package object

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/asl/sem"
)

// Value is the interface implemented by all ASL runtime values.
type Value interface {
	value()
	// TypeName names the dynamic type for diagnostics.
	TypeName() string
	// String renders the value for reports and debugging.
	String() string
}

// Int is an ASL int value.
type Int int64

// Float is an ASL float value.
type Float float64

// Bool is an ASL Bool value.
type Bool bool

// Str is an ASL String value.
type Str string

// DateTime is an ASL DateTime value, in seconds since the Unix epoch.
type DateTime int64

// Enum is a member of a declared enumeration.
type Enum struct {
	Type   *sem.Enum
	Member string
}

// Null is the null object reference.
type Null struct{}

// Set is an ASL set value. Sets preserve insertion order so that evaluation
// and reports are deterministic; set semantics (no duplicates) are the
// responsibility of the producers.
type Set struct {
	Elems []Value
}

// Object is an instance of a declared class.
type Object struct {
	Class *sem.Class
	// ID is unique within a Store and doubles as the relational primary key.
	ID    int64
	attrs map[string]Value
}

func (Int) value()      {}
func (Float) value()    {}
func (Bool) value()     {}
func (Str) value()      {}
func (DateTime) value() {}
func (Enum) value()     {}
func (Null) value()     {}
func (*Set) value()     {}
func (*Object) value()  {}

// TypeName implementations.
func (Int) TypeName() string      { return "int" }
func (Float) TypeName() string    { return "float" }
func (Bool) TypeName() string     { return "Bool" }
func (Str) TypeName() string      { return "String" }
func (DateTime) TypeName() string { return "DateTime" }
func (v Enum) TypeName() string   { return v.Type.Name }
func (Null) TypeName() string     { return "null" }
func (*Set) TypeName() string     { return "set" }
func (o *Object) TypeName() string {
	if o == nil || o.Class == nil {
		return "object"
	}
	return o.Class.Name
}

// String implementations.
func (v Int) String() string      { return strconv.FormatInt(int64(v), 10) }
func (v Float) String() string    { return strconv.FormatFloat(float64(v), 'g', -1, 64) }
func (v Bool) String() string     { return strconv.FormatBool(bool(v)) }
func (v Str) String() string      { return strconv.Quote(string(v)) }
func (v DateTime) String() string { return fmt.Sprintf("@%d@", int64(v)) }
func (v Enum) String() string     { return v.Member }
func (Null) String() string       { return "null" }

func (v *Set) String() string {
	s := "{"
	for i, e := range v.Elems {
		if i > 0 {
			s += ", "
		}
		s += e.String()
	}
	return s + "}"
}

func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	return fmt.Sprintf("%s#%d", o.Class.Name, o.ID)
}

// Get returns the value of an attribute. Unset attributes read as Null for
// class-typed attributes and as the zero value otherwise.
func (o *Object) Get(name string) Value {
	if v, ok := o.attrs[name]; ok {
		return v
	}
	attr, ok := o.Class.Lookup(name)
	if !ok {
		return Null{}
	}
	return ZeroOf(attr.Type)
}

// Has reports whether the attribute has been explicitly set.
func (o *Object) Has(name string) bool {
	_, ok := o.attrs[name]
	return ok
}

// Set assigns an attribute value. It panics if the attribute is not declared
// on the object's class: the data loaders are generated from the same
// specification, so an unknown attribute is a programming error, not input
// error.
func (o *Object) Set(name string, v Value) {
	if _, ok := o.Class.Lookup(name); !ok {
		panic(fmt.Sprintf("object: class %s has no attribute %s", o.Class.Name, name))
	}
	o.attrs[name] = v
}

// Append adds an element to a set-valued attribute, creating the set on
// first use. It panics if the attribute is not declared with a setof type.
func (o *Object) Append(name string, v Value) {
	attr, ok := o.Class.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("object: class %s has no attribute %s", o.Class.Name, name))
	}
	if _, isSet := attr.Type.(*sem.Set); !isSet {
		panic(fmt.Sprintf("object: attribute %s of %s is not a set", name, o.Class.Name))
	}
	cur, ok := o.attrs[name]
	if !ok {
		cur = &Set{}
		o.attrs[name] = cur
	}
	set, ok := cur.(*Set)
	if !ok {
		panic(fmt.Sprintf("object: attribute %s of %s holds a non-set value", name, o.Class.Name))
	}
	set.Elems = append(set.Elems, v)
}

// AttrNames returns the names of explicitly set attributes, sorted.
func (o *Object) AttrNames() []string {
	names := make([]string, 0, len(o.attrs))
	for n := range o.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ZeroOf returns the zero value of a semantic type: 0, 0.0, false, "",
// epoch, the first enum member, null for classes, and the empty set.
func ZeroOf(t sem.Type) Value {
	switch x := t.(type) {
	case *sem.Basic:
		switch x.Kind {
		case sem.Int:
			return Int(0)
		case sem.Float:
			return Float(0)
		case sem.Bool:
			return Bool(false)
		case sem.String:
			return Str("")
		case sem.DateTime:
			return DateTime(0)
		}
	case *sem.Enum:
		if len(x.Members) > 0 {
			return Enum{Type: x, Member: x.Members[0]}
		}
	case *sem.Class:
		return Null{}
	case *sem.Set:
		return &Set{}
	}
	return Null{}
}

// Store owns a set of objects and assigns their IDs.
type Store struct {
	nextID  int64
	objects []*Object
	byClass map[string][]*Object
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{nextID: 1, byClass: make(map[string][]*Object)}
}

// New allocates an object of the given class.
func (s *Store) New(class *sem.Class) *Object {
	o := &Object{Class: class, ID: s.nextID, attrs: make(map[string]Value)}
	s.nextID++
	s.objects = append(s.objects, o)
	s.byClass[class.Name] = append(s.byClass[class.Name], o)
	return o
}

// NewWithID allocates an object with a caller-chosen ID; used when
// reconstructing a store from its relational representation, where the IDs
// are the primary keys. The caller is responsible for ID uniqueness.
func (s *Store) NewWithID(class *sem.Class, id int64) *Object {
	o := &Object{Class: class, ID: id, attrs: make(map[string]Value)}
	if id >= s.nextID {
		s.nextID = id + 1
	}
	s.objects = append(s.objects, o)
	s.byClass[class.Name] = append(s.byClass[class.Name], o)
	return o
}

// All returns every object in allocation order.
func (s *Store) All() []*Object { return s.objects }

// OfClass returns the objects whose class is exactly the named class, in
// allocation order.
func (s *Store) OfClass(name string) []*Object { return s.byClass[name] }

// Len returns the number of objects in the store.
func (s *Store) Len() int { return len(s.objects) }

// IsNull reports whether v is the null reference.
func IsNull(v Value) bool {
	_, ok := v.(Null)
	return ok
}

// AsFloat converts a numeric value to float64.
func AsFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case Int:
		return float64(x), true
	case Float:
		return float64(x), true
	}
	return 0, false
}

// Equal implements ASL value equality: numeric comparison across int/float,
// identity for objects, member equality for enums, and null == null.
func Equal(a, b Value) bool {
	if af, ok := AsFloat(a); ok {
		if bf, ok := AsFloat(b); ok {
			return af == bf
		}
		return false
	}
	switch x := a.(type) {
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case DateTime:
		y, ok := b.(DateTime)
		return ok && x == y
	case Enum:
		y, ok := b.(Enum)
		return ok && x.Type == y.Type && x.Member == y.Member
	case Null:
		_, ok := b.(Null)
		return ok
	case *Object:
		y, ok := b.(*Object)
		if ok {
			return x == y
		}
		_, isNull := b.(Null)
		return isNull && x == nil
	case *Set:
		y, ok := b.(*Set)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !Equal(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	}
	return false
}
