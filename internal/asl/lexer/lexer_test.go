package lexer

import (
	"strings"
	"testing"

	"repro/internal/asl/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	lx := New(src)
	var out []token.Kind
	for {
		tok := lx.Next()
		if tok.Kind == token.EOF {
			return out
		}
		out = append(out, tok.Kind)
	}
}

func TestOperatorsAndDelimiters(t *testing.T) {
	src := `+ - * / % = == != < <= > >= -> ( ) { } [ ] , ; : . !`
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.ASSIGN, token.EQ, token.NEQ, token.LT, token.LEQ, token.GT,
		token.GEQ, token.ARROW, token.LPAREN, token.RPAREN, token.LBRACE,
		token.RBRACE, token.LBRACKET, token.RBRACKET, token.COMMA,
		token.SEMICOLON, token.COLON, token.DOT, token.NOT,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	for _, src := range []string{"property", "Property", "PROPERTY", "pRoPeRtY"} {
		got := kinds(t, src)
		if len(got) != 1 || got[0] != token.PROPERTY {
			t.Errorf("%q lexed as %v, want PROPERTY", src, got)
		}
	}
	if got := kinds(t, "CONDITION CONFIDENCE SEVERITY LET IN WITH WHERE AND OR class enum extends setof"); len(got) != 13 {
		t.Fatalf("keyword count: %v", got)
	}
}

func TestAggregateKeywordsCaseSensitive(t *testing.T) {
	// The paper uses "sum" as a comprehension variable, so only uppercase
	// spellings are aggregate keywords.
	got := kinds(t, "SUM sum Sum MIN min UNIQUE unique")
	want := []token.Kind{token.SUM, token.IDENT, token.IDENT, token.MIN, token.IDENT, token.UNIQUE, token.IDENT}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	lx := New("0 42 3.14 1e6 2.5e-3 7.")
	cases := []struct {
		kind token.Kind
		text string
	}{
		{token.INT, "0"},
		{token.INT, "42"},
		{token.FLOAT, "3.14"},
		{token.FLOAT, "1e6"},
		{token.FLOAT, "2.5e-3"},
		{token.INT, "7"},
		{token.DOT, "."},
	}
	for i, c := range cases {
		tok := lx.Next()
		if tok.Kind != c.kind || tok.Text != c.text {
			t.Errorf("token %d = %s %q, want %s %q", i, tok.Kind, tok.Text, c.kind, c.text)
		}
	}
}

func TestNumberNotExponent(t *testing.T) {
	// "1end" is INT(1) IDENT(end), not a malformed exponent.
	lx := New("1end")
	a, b := lx.Next(), lx.Next()
	if a.Kind != token.INT || a.Text != "1" || b.Kind != token.IDENT || b.Text != "end" {
		t.Fatalf("got %s %s", a, b)
	}
}

func TestStrings(t *testing.T) {
	lx := New(`"hello" "a\"b" "tab\tnl\n"`)
	want := []string{"hello", `a"b`, "tab\tnl\n"}
	for i, w := range want {
		tok := lx.Next()
		if tok.Kind != token.STRING || tok.Text != w {
			t.Errorf("string %d = %q (%s), want %q", i, tok.Text, tok.Kind, w)
		}
	}
	if len(New(`"unterminated`).All()) == 0 {
		t.Fatal("no tokens")
	}
	lx = New(`"unterminated`)
	lx.Next()
	if len(lx.Errors()) == 0 {
		t.Error("unterminated string produced no error")
	}
}

func TestDateTime(t *testing.T) {
	lx := New("@1999-12-17T10:30:00@")
	tok := lx.Next()
	if tok.Kind != token.DATETIME || tok.Text != "1999-12-17T10:30:00" {
		t.Fatalf("got %s", tok)
	}
	lx = New("@not closed")
	lx.Next()
	if len(lx.Errors()) == 0 {
		t.Error("unterminated datetime produced no error")
	}
}

func TestComments(t *testing.T) {
	src := `
	// a line comment with property keywords: class enum
	x /* block
	   comment */ y`
	got := kinds(t, src)
	if len(got) != 2 || got[0] != token.IDENT || got[1] != token.IDENT {
		t.Fatalf("got %v", got)
	}
	lx := New("/* unterminated")
	lx.Next()
	if len(lx.Errors()) == 0 {
		t.Error("unterminated block comment produced no error")
	}
}

func TestPositions(t *testing.T) {
	lx := New("a\n  bb\n")
	a := lx.Next()
	b := lx.Next()
	if a.Pos.Line != 1 || a.Pos.Col != 1 {
		t.Errorf("a at %s, want 1:1", a.Pos)
	}
	if b.Pos.Line != 2 || b.Pos.Col != 3 {
		t.Errorf("bb at %s, want 2:3", b.Pos)
	}
}

func TestIllegalCharacter(t *testing.T) {
	lx := New("a # b")
	lx.Next()
	tok := lx.Next()
	if tok.Kind != token.ILLEGAL {
		t.Fatalf("got %s, want ILLEGAL", tok)
	}
	if len(lx.Errors()) == 0 {
		t.Error("illegal character produced no error")
	}
}

func TestAllTerminatesWithEOF(t *testing.T) {
	toks := New("a b c").All()
	if toks[len(toks)-1].Kind != token.EOF {
		t.Fatal("All must end with EOF")
	}
	// EOF is sticky.
	lx := New("")
	for i := 0; i < 3; i++ {
		if lx.Next().Kind != token.EOF {
			t.Fatal("EOF not sticky")
		}
	}
}

func TestPaperPropertyLexes(t *testing.T) {
	src := `
Property SublinearSpeedup(Region r, TestRun t, Region Basis) {
  LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
      MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
    float TotalCost = Duration(r,t) - Duration(r,MinPeSum.Run)
  IN
  CONDITION: TotalCost>0; CONFIDENCE: 1;
  SEVERITY: TotalCost/Duration(Basis,t);
}`
	lx := New(src)
	n := 0
	for {
		tok := lx.Next()
		if tok.Kind == token.EOF {
			break
		}
		if tok.Kind == token.ILLEGAL {
			t.Fatalf("illegal token %s at %s", tok, tok.Pos)
		}
		n++
	}
	if len(lx.Errors()) != 0 {
		t.Fatalf("errors: %v", lx.Errors())
	}
	if n < 60 {
		t.Fatalf("suspiciously few tokens: %d", n)
	}
}

func TestTokenStringer(t *testing.T) {
	if s := (token.Token{Kind: token.IDENT, Text: "x"}).String(); !strings.Contains(s, "x") {
		t.Errorf("IDENT stringer: %s", s)
	}
	if token.LEQ.String() != "<=" {
		t.Errorf("LEQ stringer: %s", token.LEQ)
	}
	if !token.PROPERTY.IsKeyword() || token.IDENT.IsKeyword() {
		t.Error("IsKeyword misclassifies")
	}
}
