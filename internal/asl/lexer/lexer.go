// Package lexer implements the scanner for the APART Specification Language.
//
// The scanner is hand written, keeps precise source positions, supports //
// line comments and /* block comments */, case-insensitive keywords, string
// literals with escapes, integer/float literals, and @...@ datetime literals.
package lexer

import (
	"fmt"

	"repro/internal/asl/token"
)

// Error is a scan error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("asl: %s: %s", e.Pos, e.Msg) }

// Lexer scans ASL source text into tokens.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
	errs []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the scan errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// skipSpace consumes whitespace and comments.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token. At end of input it returns EOF
// tokens forever.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		return token.Token{Kind: token.Lookup(text), Text: text, Pos: pos}
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	case c == '@':
		return l.scanDateTime(pos)
	}
	l.advance()
	mk := func(k token.Kind, text string) token.Token {
		return token.Token{Kind: k, Text: text, Pos: pos}
	}
	switch c {
	case '+':
		return mk(token.PLUS, "+")
	case '-':
		if l.peek() == '>' {
			l.advance()
			return mk(token.ARROW, "->")
		}
		return mk(token.MINUS, "-")
	case '*':
		return mk(token.STAR, "*")
	case '/':
		return mk(token.SLASH, "/")
	case '%':
		return mk(token.PERCENT, "%")
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.EQ, "==")
		}
		return mk(token.ASSIGN, "=")
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(token.NEQ, "!=")
		}
		return mk(token.NOT, "!")
	case '<':
		if l.peek() == '=' {
			l.advance()
			return mk(token.LEQ, "<=")
		}
		return mk(token.LT, "<")
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(token.GEQ, ">=")
		}
		return mk(token.GT, ">")
	case '(':
		return mk(token.LPAREN, "(")
	case ')':
		return mk(token.RPAREN, ")")
	case '{':
		return mk(token.LBRACE, "{")
	case '}':
		return mk(token.RBRACE, "}")
	case '[':
		return mk(token.LBRACKET, "[")
	case ']':
		return mk(token.RBRACKET, "]")
	case ',':
		return mk(token.COMMA, ",")
	case ';':
		return mk(token.SEMICOLON, ";")
	case ':':
		return mk(token.COLON, ":")
	case '.':
		return mk(token.DOT, ".")
	}
	l.errorf(pos, "illegal character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Text: string(c), Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	kind := token.INT
	// Fraction: a '.' followed by a digit. A bare '.' after digits is member
	// access on an integer literal, which ASL does not have, so '.' + digit
	// is unambiguous.
	if l.peek() == '.' && isDigit(l.peek2()) {
		kind = token.FLOAT
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			kind = token.FLOAT
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			// Not an exponent after all (e.g. "1end"); rewind.
			l.off = save
		}
	}
	return token.Token{Kind: kind, Text: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var buf []byte
	for l.off < len(l.src) {
		c := l.advance()
		switch c {
		case '"':
			return token.Token{Kind: token.STRING, Text: string(buf), Pos: pos}
		case '\\':
			if l.off >= len(l.src) {
				break
			}
			e := l.advance()
			switch e {
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			case '\\':
				buf = append(buf, '\\')
			case '"':
				buf = append(buf, '"')
			default:
				l.errorf(pos, "unknown escape \\%c in string literal", e)
				buf = append(buf, e)
			}
		case '\n':
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Text: string(buf), Pos: pos}
		default:
			buf = append(buf, c)
		}
	}
	l.errorf(pos, "unterminated string literal")
	return token.Token{Kind: token.ILLEGAL, Text: string(buf), Pos: pos}
}

// scanDateTime scans @...@ datetime literals, e.g. @1999-12-17T10:30:00@.
// The payload is validated by the parser; the lexer only brackets it.
func (l *Lexer) scanDateTime(pos token.Pos) token.Token {
	l.advance() // opening '@'
	start := l.off
	for l.off < len(l.src) && l.peek() != '@' && l.peek() != '\n' {
		l.advance()
	}
	if l.peek() != '@' {
		l.errorf(pos, "unterminated datetime literal")
		return token.Token{Kind: token.ILLEGAL, Text: l.src[start:l.off], Pos: pos}
	}
	text := l.src[start:l.off]
	l.advance() // closing '@'
	return token.Token{Kind: token.DATETIME, Text: text, Pos: pos}
}

// All scans the entire input and returns the tokens up to and including EOF.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
