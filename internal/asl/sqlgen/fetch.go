package sqlgen

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/asl/object"
	"repro/internal/asl/sem"
	"repro/internal/sqlast/build"
	"repro/internal/sqldb"
)

// QueryExecutor abstracts SELECT execution (embedded engine or godbc
// connection).
type QueryExecutor interface {
	ExecQuery(query string, params *sqldb.Params) (*sqldb.ResultSet, error)
}

// PreparedQuery is a reusable handle for one query: parsed and planned once,
// executed many times with fresh parameters — the JDBC PreparedStatement
// shape the paper's property evaluation is built on.
type PreparedQuery interface {
	ExecQuery(params *sqldb.Params) (*sqldb.ResultSet, error)
	Close() error
}

// QueryPreparer is implemented by executors that support prepared queries
// (godbc connections, pools, and the embedded engine). Analysis code probes
// for it and falls back to per-call text execution when absent.
type QueryPreparer interface {
	PrepareQuery(query string) (PreparedQuery, error)
}

// BatchQueryResult is the per-binding outcome of a batched prepared query:
// exactly one of Set and Err is non-nil.
type BatchQueryResult struct {
	Set *sqldb.ResultSet
	Err error
}

// BatchPreparedQuery is implemented by prepared queries that support array
// binding: one call executes the handle once per parameter set, over the
// wire in a single request. Results are ordered as the bindings; per-binding
// failures are reported inline and do not abort the batch. Analysis code
// probes for it and falls back to per-binding ExecQuery calls when absent.
type BatchPreparedQuery interface {
	PreparedQuery
	ExecQueryBatch(bindings []*sqldb.Params) ([]BatchQueryResult, error)
}

// ContextQueryExecutor is implemented by executors whose text-protocol
// executions observe a context: pool checkout, the wire round trip, and the
// profiled vendor delays all return early when the context is canceled.
// Analysis code probes for it and falls back to the uncancellable call when
// absent — cancellation then takes effect between executions instead.
type ContextQueryExecutor interface {
	ExecQueryContext(ctx context.Context, query string, params *sqldb.Params) (*sqldb.ResultSet, error)
}

// ContextPreparedQuery is the context-observing execution of a prepared
// handle; see ContextQueryExecutor.
type ContextPreparedQuery interface {
	ExecQueryContext(ctx context.Context, params *sqldb.Params) (*sqldb.ResultSet, error)
}

// ContextBatchPreparedQuery is the context-observing array-binding execution
// of a prepared handle; a canceled batch fails as a whole (no partial result
// slice), mirroring the transport-failure contract of ExecQueryBatch.
type ContextBatchPreparedQuery interface {
	ExecQueryBatchContext(ctx context.Context, bindings []*sqldb.Params) ([]BatchQueryResult, error)
}

// ReadStore reconstructs a complete object store from its relational
// representation by fetching every table — the "client-side evaluation"
// setup of the paper's Section 5, where the analysis tool pulls the data
// components out of the database and evaluates property conditions itself.
func ReadStore(w *sem.World, q QueryExecutor) (*object.Store, error) {
	store := object.NewStore()
	byID := make(map[int64]*object.Object)

	classNames := make([]string, 0, len(w.Classes))
	for n := range w.Classes {
		classNames = append(classNames, n)
	}
	sort.Strings(classNames)

	// Pass 1: create all objects so references can be linked in pass 2.
	rowsByClass := make(map[string]*sqldb.ResultSet)
	for _, name := range classNames {
		r, err := build.Kojakdb.Render(&build.Select{
			Items:   []build.Item{{Star: true}},
			From:    &build.Table{Name: name},
			OrderBy: []build.OrderKey{{Expr: &build.Col{Name: "id"}}},
		})
		if err != nil {
			return nil, fmt.Errorf("sqlgen: reading %s: %w", name, err)
		}
		set, err := q.ExecQuery(r.SQL, nil)
		if err != nil {
			return nil, fmt.Errorf("sqlgen: reading %s: %w", name, err)
		}
		rowsByClass[name] = set
		idCol := columnIndex(set.Columns, "id")
		if idCol < 0 {
			return nil, fmt.Errorf("sqlgen: table %s has no id column", name)
		}
		cls := w.Classes[name]
		for _, row := range set.Rows {
			id := row[idCol].Int()
			if _, dup := byID[id]; dup {
				return nil, fmt.Errorf("sqlgen: duplicate object id %d", id)
			}
			byID[id] = store.NewWithID(cls, id)
		}
	}

	// Pass 2: scalar attributes and object references.
	for _, name := range classNames {
		cls := w.Classes[name]
		set := rowsByClass[name]
		idCol := columnIndex(set.Columns, "id")
		for _, row := range set.Rows {
			obj := byID[row[idCol].Int()]
			for _, attr := range cls.AllAttrs() {
				if _, isSet := attr.Type.(*sem.Set); isSet {
					continue
				}
				col := columnIndex(set.Columns, ColumnFor(attr))
				if col < 0 {
					return nil, fmt.Errorf("sqlgen: table %s lacks column %s", name, ColumnFor(attr))
				}
				v, err := fromSQLValue(row[col], attr.Type, byID)
				if err != nil {
					return nil, fmt.Errorf("sqlgen: %s.%s: %w", name, attr.Name, err)
				}
				obj.Set(attr.Name, v)
			}
		}
	}

	// Pass 3: set memberships from the junction tables.
	for _, name := range classNames {
		cls := w.Classes[name]
		for _, attr := range cls.AllAttrs() {
			if _, isSet := attr.Type.(*sem.Set); !isSet {
				continue
			}
			j := JunctionFor(cls, attr.Name)
			r, err := build.Kojakdb.Render(&build.Select{
				Items: []build.Item{
					{Expr: &build.Col{Name: "owner_id"}},
					{Expr: &build.Col{Name: "elem_id"}},
				},
				From: &build.Table{Name: j},
			})
			if err != nil {
				return nil, fmt.Errorf("sqlgen: reading %s: %w", j, err)
			}
			set, err := q.ExecQuery(r.SQL, nil)
			if err != nil {
				return nil, fmt.Errorf("sqlgen: reading %s: %w", j, err)
			}
			for _, row := range set.Rows {
				owner, ok := byID[row[0].Int()]
				if !ok {
					return nil, fmt.Errorf("sqlgen: %s references unknown owner %d", j, row[0].Int())
				}
				elem, ok := byID[row[1].Int()]
				if !ok {
					return nil, fmt.Errorf("sqlgen: %s references unknown element %d", j, row[1].Int())
				}
				owner.Append(attr.Name, elem)
			}
		}
	}
	return store, nil
}

func columnIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

func fromSQLValue(v sqldb.Value, t sem.Type, byID map[int64]*object.Object) (object.Value, error) {
	if v.IsNull() {
		return object.Null{}, nil
	}
	switch x := t.(type) {
	case *sem.Basic:
		switch x.Kind {
		case sem.Int:
			return object.Int(v.Int()), nil
		case sem.Float:
			return object.Float(v.Float()), nil
		case sem.Bool:
			return object.Bool(v.Bool()), nil
		case sem.String:
			return object.Str(v.Text()), nil
		case sem.DateTime:
			return object.DateTime(v.Int()), nil
		}
	case *sem.Enum:
		member := v.Text()
		if _, ok := x.Ordinal[member]; !ok {
			return nil, fmt.Errorf("enum %s has no member %q", x.Name, member)
		}
		return object.Enum{Type: x, Member: member}, nil
	case *sem.Class:
		obj, ok := byID[v.Int()]
		if !ok {
			return nil, fmt.Errorf("dangling reference to object %d", v.Int())
		}
		if !obj.Class.IsSubclassOf(x) {
			return nil, fmt.Errorf("object %d has class %s, want %s", v.Int(), obj.Class.Name, x.Name)
		}
		return obj, nil
	}
	return nil, fmt.Errorf("unsupported attribute type %s", t)
}
