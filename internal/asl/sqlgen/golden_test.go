package sqlgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sqlast/build"
	"repro/internal/sqldb"
)

// TestGoldenPropertySQL pins the canonical kojakdb rendering of every
// shipped ASL property to the exact strings the pre-AST string-concatenating
// compiler produced (captured in testdata/golden before the refactor).
// Plan-cache and result-cache keys are built from this text, so a byte of
// drift silently invalidates every cached plan and result across a version
// upgrade.
func TestGoldenPropertySQL(t *testing.T) {
	w := model.MustCompileSpec()
	for _, name := range model.AllProperties {
		cp, err := CompileProperty(w, name)
		if err != nil {
			t.Fatalf("CompileProperty(%s): %v", name, err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".sql"))
		if err != nil {
			t.Fatalf("golden file for %s: %v", name, err)
		}
		if cp.SQL != strings.TrimSuffix(string(want), "\n") {
			t.Errorf("property %s: canonical SQL drifted from pre-refactor golden\n got: %s\nwant: %s",
				name, cp.SQL, strings.TrimSuffix(string(want), "\n"))
		}
		// The kojakdb rendering of the AST is the same text.
		r, err := cp.Render(build.Kojakdb.Name)
		if err != nil {
			t.Fatalf("Render(kojakdb) %s: %v", name, err)
		}
		if r.SQL != cp.SQL {
			t.Errorf("property %s: Render(kojakdb) != SQL\n got: %s\nwant: %s", name, r.SQL, cp.SQL)
		}
		if r.ParamOrder != nil {
			t.Errorf("property %s: kojakdb rendering reported a ParamOrder; named-marker dialects must not", name)
		}
	}
}

// TestGoldenSchemaDDL pins the canonical schema DDL the same way.
func TestGoldenSchemaDDL(t *testing.T) {
	w := model.MustCompileSpec()
	ddl, err := Schema(w)
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "schema.ddl"))
	if err != nil {
		t.Fatalf("golden schema: %v", err)
	}
	got := strings.Join(ddl, "\n") + "\n"
	if got != string(want) {
		t.Errorf("schema DDL drifted from pre-refactor golden\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestGoldenSQLParses replays the golden corpus through the engine parser:
// the canonical dialect must stay inside the subset the engine accepts.
func TestGoldenSQLParses(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("golden corpus missing: %v", err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sqldb.ParseSQL(strings.TrimSuffix(string(b), "\n")); err != nil {
			t.Errorf("%s: golden SQL no longer parses: %v", filepath.Base(f), err)
		}
	}
}

// TestCheckBinding covers the parameter-cardinality error cases: missing
// parameter, kind mismatch, undeclared extra, and the accepted shapes
// (exact binding, NULL for any kind).
func TestCheckBinding(t *testing.T) {
	w := model.MustCompileSpec()
	cp, err := CompileProperty(w, "LoadImbalance")
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Params) != 3 {
		t.Fatalf("LoadImbalance declares %d params, want 3", len(cp.Params))
	}
	bind := func(names ...string) *sqldb.Params {
		p := &sqldb.Params{Named: map[string]sqldb.Value{}}
		for _, n := range names {
			p.Named[n] = sqldb.NewInt(1)
		}
		return p
	}
	all := []string{cp.Params[0].Name, cp.Params[1].Name, cp.Params[2].Name}

	if err := cp.CheckBinding(bind(all...)); err != nil {
		t.Errorf("full binding rejected: %v", err)
	}
	if err := cp.CheckBinding(bind(all[:2]...)); err == nil {
		t.Error("missing parameter accepted")
	} else if !strings.Contains(err.Error(), "no value bound") {
		t.Errorf("missing parameter: wrong error %v", err)
	}
	extra := bind(all...)
	extra.Named["intruder"] = sqldb.NewInt(7)
	if err := cp.CheckBinding(extra); err == nil {
		t.Error("undeclared extra parameter accepted")
	} else if !strings.Contains(err.Error(), "not declared") {
		t.Errorf("extra parameter: wrong error %v", err)
	}
	wrongKind := bind(all...)
	wrongKind.Named[all[0]] = sqldb.NewText("not an id")
	if err := cp.CheckBinding(wrongKind); err == nil {
		t.Error("kind mismatch accepted (class-typed parameter bound to text)")
	} else if !strings.Contains(err.Error(), "wants int") {
		t.Errorf("kind mismatch: wrong error %v", err)
	}
	nulled := bind(all...)
	nulled.Named[all[0]] = sqldb.Null
	if err := cp.CheckBinding(nulled); err != nil {
		t.Errorf("NULL binding rejected: %v", err)
	}
	if err := cp.CheckBinding(nil); err == nil {
		t.Error("nil params accepted for a parameterized property")
	}
}

// TestFillPositional checks the named→positional conversion used by
// positional-marker dialects, including duplicated markers.
func TestFillPositional(t *testing.T) {
	p := &sqldb.Params{Named: map[string]sqldb.Value{
		"r": sqldb.NewInt(10),
		"t": sqldb.NewInt(20),
	}}
	if err := FillPositional(p, []string{"t", "r", "t"}); err != nil {
		t.Fatal(err)
	}
	got := []int64{p.Positional[0].Int(), p.Positional[1].Int(), p.Positional[2].Int()}
	if got[0] != 20 || got[1] != 10 || got[2] != 20 {
		t.Errorf("positional fill = %v, want [20 10 20]", got)
	}
	if p.Named == nil {
		t.Error("Named map dropped; sharded routing reads the run id from it")
	}
	if err := FillPositional(p, []string{"missing"}); err == nil {
		t.Error("unbound name accepted")
	}
}
