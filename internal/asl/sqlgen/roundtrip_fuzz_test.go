// Render→reparse round-trip fuzzing of the typed query builder: any SELECT
// the engine parser accepts is lifted into a build AST, rendered in the
// canonical kojakdb dialect, and fed back through the parser. The rendered
// text must stay inside the engine's subset, re-render to the identical bytes
// (the canonical rendering is a fixed point), and evaluate to the same rows
// as the original text. The ansi rendering is additionally reparsed and
// executed (quoted identifiers, ? markers, FETCH FIRST are all engine
// syntax); the oracle7 rendering is reparsed only, since its 1/0 boolean
// literals legitimately change result values.
package sqlgen

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/apprentice"
	"repro/internal/model"
	"repro/internal/sqlast/build"
	"repro/internal/sqldb"
)

// roundtripState is the shared database fuzz executions query: the canonical
// COSY schema with a small simulated history plus an auxiliary table holding
// NULLs in every column type.
var roundtripState struct {
	sync.Once
	db  *sqldb.DB
	err error
}

func roundtripDB(tb testing.TB) *sqldb.DB {
	tb.Helper()
	s := &roundtripState
	s.Do(func() {
		db := sqldb.NewDB()
		db.SetResultCacheSize(0)
		exec := ExecutorFunc(func(q string, p *sqldb.Params) (int, error) {
			res, err := db.Exec(q, p)
			if err != nil {
				return 0, err
			}
			return res.Affected, nil
		})
		ds, err := apprentice.Simulate(apprentice.Stencil(), apprentice.PartitionSweep(2, 4), 42)
		if err != nil {
			s.err = err
			return
		}
		g, err := model.Build(ds)
		if err != nil {
			s.err = err
			return
		}
		if err := CreateSchema(g.World, exec); err != nil {
			s.err = err
			return
		}
		if _, err := Load(g.Store, exec); err != nil {
			s.err = err
			return
		}
		for _, q := range []string{
			`CREATE TABLE fuzz_aux (id INTEGER PRIMARY KEY, v INTEGER, w REAL, s TEXT, b BOOLEAN)`,
			`INSERT INTO fuzz_aux (id, v, w, s, b) VALUES (1, 10, 1.5, 'alpha', TRUE)`,
			`INSERT INTO fuzz_aux (id, v, w, s, b) VALUES (2, NULL, 2.5, 'beta', FALSE)`,
			`INSERT INTO fuzz_aux (id, v, w, s, b) VALUES (3, 30, NULL, NULL, TRUE)`,
			`INSERT INTO fuzz_aux (id, v, w, s, b) VALUES (4, 10, 4.0, 'alpha', NULL)`,
		} {
			if _, err := db.Exec(q, nil); err != nil {
				s.err = err
				return
			}
		}
		s.db = db
	})
	if s.err != nil {
		tb.Fatal(s.err)
	}
	return s.db
}

// roundtripParams binds one integer value under every named marker the
// statement references and three positional slots, so parameterized mutants
// execute instead of erroring on an unbound name.
func roundtripParams(sel *build.Select) *sqldb.Params {
	p := &sqldb.Params{Positional: []sqldb.Value{
		sqldb.NewInt(1), sqldb.NewInt(1), sqldb.NewInt(1),
	}}
	refs, err := build.NamedParams(sel)
	if err != nil {
		return p
	}
	for _, r := range refs {
		if p.Named == nil {
			p.Named = make(map[string]sqldb.Value)
		}
		p.Named[r.Name] = sqldb.NewInt(1)
	}
	return p
}

// execRows runs a SELECT and returns its rows; the column labels are
// deliberately not compared, because the rendered text spells derived labels
// differently (e.g. "(v + 1)" for "v+1") without changing any value.
func execRows(db *sqldb.DB, sql string, p *sqldb.Params) ([]sqldb.Row, error) {
	res, err := db.Exec(sql, p)
	if err != nil {
		return nil, err
	}
	return res.Set.Rows, nil
}

func FuzzRenderRoundTrip(f *testing.F) {
	w := model.MustCompileSpec()
	compiled, errs := CompileAll(w)
	if len(errs) > 0 {
		f.Fatalf("canonical properties failed to compile: %v", errs)
	}
	names := make([]string, 0, len(compiled))
	for name := range compiled {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.Add(compiled[name].SQL)
	}

	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := sqldb.ParseSQL(sql)
		if err != nil {
			return
		}
		parsed, ok := stmt.(*sqldb.SelectStmt)
		if !ok {
			return
		}
		ast, err := build.FromParsedSelect(parsed)
		if err != nil {
			return // construct outside the builder's subset
		}
		r1, err := build.Kojakdb.Render(ast)
		if err != nil {
			return // identifiers outside the builder's subset (quoted input)
		}

		// The canonical rendering must stay inside the engine's subset and be
		// a fixed point: reparse and re-render reproduce the identical bytes.
		stmt2, err := sqldb.ParseSQL(r1.SQL)
		if err != nil {
			t.Fatalf("rendered SQL does not reparse: %v\ninput:    %s\nrendered: %s", err, sql, r1.SQL)
		}
		ast2, err := build.FromParsedSelect(stmt2.(*sqldb.SelectStmt))
		if err != nil {
			t.Fatalf("rendered SQL does not re-lift: %v\nrendered: %s", err, r1.SQL)
		}
		r2, err := build.Kojakdb.Render(ast2)
		if err != nil {
			t.Fatalf("re-lifted AST does not re-render: %v\nrendered: %s", err, r1.SQL)
		}
		if r2.SQL != r1.SQL {
			t.Fatalf("rendering is not a fixed point:\ninput:  %s\nfirst:  %s\nsecond: %s", sql, r1.SQL, r2.SQL)
		}

		// The rendered text must evaluate exactly like the original.
		db := roundtripDB(t)
		params := roundtripParams(ast)
		origRows, origErr := execRows(db, sql, params)
		renRows, renErr := execRows(db, r1.SQL, params)
		if (origErr == nil) != (renErr == nil) {
			t.Fatalf("execution divergence:\ninput:    %s (err=%v)\nrendered: %s (err=%v)", sql, origErr, r1.SQL, renErr)
		}
		if origErr == nil && !reflect.DeepEqual(origRows, renRows) {
			t.Fatalf("row divergence:\ninput:    %s\nrendered: %s\norig: %+v\nrend: %+v", sql, r1.SQL, origRows, renRows)
		}

		// The ansi rendering is executable engine syntax too: reparse it and
		// compare rows, filling the positional slots in rendered marker order.
		if ra, err := build.ANSI.Render(ast); err == nil {
			if _, err := sqldb.ParseSQL(ra.SQL); err != nil {
				t.Fatalf("ansi rendering does not reparse: %v\nrendered: %s", err, ra.SQL)
			}
			ansiParams := roundtripParams(ast)
			fillErr := error(nil)
			if len(ra.ParamOrder) > 0 {
				fillErr = FillPositional(ansiParams, ra.ParamOrder)
			}
			if fillErr == nil {
				ansiRows, ansiErr := execRows(db, ra.SQL, ansiParams)
				if (origErr == nil) != (ansiErr == nil) {
					t.Fatalf("ansi execution divergence:\ninput: %s (err=%v)\nansi:  %s (err=%v)", sql, origErr, ra.SQL, ansiErr)
				}
				if origErr == nil && !reflect.DeepEqual(origRows, ansiRows) {
					t.Fatalf("ansi row divergence:\ninput: %s\nansi:  %s\norig: %+v\nansi: %+v", sql, ra.SQL, origRows, ansiRows)
				}
			}
		}

		// The oracle7 rendering must at least stay parseable; its 1/0 boolean
		// spelling legitimately changes result values, so rows are not compared.
		if ro, err := build.Oracle7.Render(ast); err == nil {
			if _, err := sqldb.ParseSQL(ro.SQL); err != nil {
				t.Fatalf("oracle7 rendering does not reparse: %v\nrendered: %s", err, ro.SQL)
			}
		}
	})
}
