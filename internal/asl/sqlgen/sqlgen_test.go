package sqlgen

import (
	"strings"
	"testing"

	"repro/internal/asl/object"
	"repro/internal/asl/parser"
	"repro/internal/asl/sem"
	"repro/internal/sqldb"
)

const testSpec = `
class Run { int NoPe; DateTime Start; }
class Timing { Run R; float T; Kind K; Bool Valid; }
class Region { String Name; Region Parent; setof Timing Ts; }
enum Kind { Alpha, Beta }

float Limit = 0.5;

float Total(Region r, Run t) = SUM(x.T WHERE x IN r.Ts AND x.R == t);

property Hot(Region r, Run t) {
  LET float Tot = Total(r, t);
  IN
  CONDITION: (big) Tot > Limit;
  CONFIDENCE: MAX((big) -> 0.8);
  SEVERITY: Tot;
}

property UsesUnique(Region r, Run t) {
  LET Timing x = UNIQUE({c IN r.Ts WITH c.R == t});
  IN
  CONDITION: x.T > 0.0;
  CONFIDENCE: 1;
  SEVERITY: x.T;
}

property UsesNAry(Region r, Run t) {
  CONDITION: MAX(Total(r, t), 1.0) > 2.0;
  CONFIDENCE: 1;
  SEVERITY: 1;
}
`

func testWorld(t *testing.T) *sem.World {
	t.Helper()
	spec, err := parser.Parse(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sem.Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func dbExecutor(db *sqldb.DB) ExecutorFunc {
	return func(q string, p *sqldb.Params) (int, error) {
		res, err := db.Exec(q, p)
		if err != nil {
			return 0, err
		}
		return res.Affected, nil
	}
}

func TestSchemaGeneration(t *testing.T) {
	w := testWorld(t)
	ddl, err := Schema(w)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(ddl, "\n")
	for _, want := range []string{
		"CREATE TABLE Region (id INTEGER PRIMARY KEY, Name TEXT, Parent_id INTEGER)",
		"CREATE TABLE Region_Ts (owner_id INTEGER NOT NULL, elem_id INTEGER NOT NULL)",
		"CREATE INDEX idx_Region_Ts_owner ON Region_Ts (owner_id)",
		"CREATE TABLE Timing (id INTEGER PRIMARY KEY, R_id INTEGER, T REAL, K TEXT, Valid BOOLEAN)",
		"CREATE INDEX idx_Timing_R_id ON Timing (R_id)",
		"CREATE TABLE Run (id INTEGER PRIMARY KEY, NoPe INTEGER, Start INTEGER)",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("DDL lacks %q:\n%s", want, joined)
		}
	}
	// The DDL must actually execute.
	db := sqldb.NewDB()
	if err := CreateSchema(w, dbExecutor(db)); err != nil {
		t.Fatal(err)
	}
}

func buildStore(t *testing.T, w *sem.World) (*object.Store, *object.Object, *object.Object) {
	t.Helper()
	store := object.NewStore()
	run := store.New(w.Classes["Run"])
	run.Set("NoPe", object.Int(4))
	run.Set("Start", object.DateTime(945424800))
	region := store.New(w.Classes["Region"])
	region.Set("Name", object.Str("main"))
	kind := w.Enums["Kind"]
	for i, v := range []float64{1.0, 2.0} {
		tm := store.New(w.Classes["Timing"])
		tm.Set("R", run)
		tm.Set("T", object.Float(v))
		tm.Set("Valid", object.Bool(true))
		member := "Alpha"
		if i == 1 {
			member = "Beta"
		}
		tm.Set("K", object.Enum{Type: kind, Member: member})
		region.Append("Ts", tm)
	}
	return store, region, run
}

func TestLoadPlanAndLoad(t *testing.T) {
	w := testWorld(t)
	store, _, _ := buildStore(t, w)
	plan, err := LoadPlan(store)
	if err != nil {
		t.Fatal(err)
	}
	// 4 objects + 2 junction rows.
	if len(plan) != 6 {
		t.Fatalf("plan size = %d, want 6", len(plan))
	}
	db := sqldb.NewDB()
	exec := dbExecutor(db)
	if err := CreateSchema(w, exec); err != nil {
		t.Fatal(err)
	}
	n, err := Load(store, exec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("loaded %d statements", n)
	}
	res := db.MustExec("SELECT COUNT(*) FROM Timing", nil)
	if res.Set.Rows[0][0].Int() != 2 {
		t.Fatalf("timing rows: %v", res.Set.Rows)
	}
	res = db.MustExec("SELECT K FROM Timing ORDER BY id", nil)
	if res.Set.Rows[0][0].Text() != "Alpha" || res.Set.Rows[1][0].Text() != "Beta" {
		t.Fatalf("enum storage: %v", res.Set.Rows)
	}
}

func TestCompileHotProperty(t *testing.T) {
	w := testWorld(t)
	cp, err := CompileProperty(w, "Hot")
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.CondLabels) != 1 || cp.CondLabels[0] != "big" {
		t.Fatalf("labels: %v", cp.CondLabels)
	}
	if len(cp.ConfGuards) != 1 || cp.ConfGuards[0] != "big" {
		t.Fatalf("guards: %v", cp.ConfGuards)
	}
	for _, want := range []string{"COALESCE(", "SUM(", "$r", "$t", "0.5"} {
		if !strings.Contains(cp.SQL, want) {
			t.Errorf("SQL lacks %q: %s", want, cp.SQL)
		}
	}

	// Execute it against loaded data.
	store, region, run := buildStore(t, w)
	db := sqldb.NewDB()
	exec := dbExecutor(db)
	if err := CreateSchema(w, exec); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(store, exec); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(cp.SQL, &sqldb.Params{Named: map[string]sqldb.Value{
		"r": sqldb.NewInt(region.ID),
		"t": sqldb.NewInt(run.ID),
	}})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Set.Rows[0]
	if !row[0].Bool() {
		t.Errorf("condition: %v", row[0])
	}
	if row[1].Float() != 0.8 {
		t.Errorf("confidence: %v", row[1])
	}
	if row[2].Float() != 3.0 {
		t.Errorf("severity: %v", row[2])
	}
}

func TestCompileUniqueCardinality(t *testing.T) {
	w := testWorld(t)
	cp, err := CompileProperty(w, "UsesUnique")
	if err != nil {
		t.Fatal(err)
	}
	store, region, run := buildStore(t, w)
	db := sqldb.NewDB()
	exec := dbExecutor(db)
	if err := CreateSchema(w, exec); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(store, exec); err != nil {
		t.Fatal(err)
	}
	// Two timings match the run: UNIQUE must fail as a multi-row scalar
	// subquery, matching the object evaluator's error.
	_, err = db.Exec(cp.SQL, &sqldb.Params{Named: map[string]sqldb.Value{
		"r": sqldb.NewInt(region.ID),
		"t": sqldb.NewInt(run.ID),
	}})
	if err == nil || !strings.Contains(err.Error(), "scalar subquery") {
		t.Fatalf("want cardinality error, got %v", err)
	}
}

func TestCompileNAryUnsupported(t *testing.T) {
	w := testWorld(t)
	if _, err := CompileProperty(w, "UsesNAry"); err == nil {
		t.Fatal("NAry MAX must be rejected by the SQL translator")
	}
	compiled, errs := CompileAll(w)
	if _, ok := compiled["Hot"]; !ok {
		t.Error("Hot missing from CompileAll")
	}
	if _, ok := errs["UsesNAry"]; !ok {
		t.Error("UsesNAry missing from CompileAll errors")
	}
}

func TestCompileUnknownProperty(t *testing.T) {
	w := testWorld(t)
	if _, err := CompileProperty(w, "Nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestReadStoreRoundTrip(t *testing.T) {
	w := testWorld(t)
	store, region, run := buildStore(t, w)
	db := sqldb.NewDB()
	exec := dbExecutor(db)
	if err := CreateSchema(w, exec); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(store, exec); err != nil {
		t.Fatal(err)
	}
	qexec := queryFunc(func(q string, p *sqldb.Params) (*sqldb.ResultSet, error) {
		res, err := db.Exec(q, p)
		if err != nil {
			return nil, err
		}
		return res.Set, nil
	})
	got, err := ReadStore(w, qexec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != store.Len() {
		t.Fatalf("store size %d, want %d", got.Len(), store.Len())
	}
	// The fetched region must have the same name, the same number of
	// timings, and timing values must match by ID.
	var fetched *object.Object
	for _, o := range got.OfClass("Region") {
		if o.ID == region.ID {
			fetched = o
		}
	}
	if fetched == nil {
		t.Fatal("region missing after round trip")
	}
	if name := fetched.Get("Name"); !object.Equal(name, object.Str("main")) {
		t.Fatalf("name: %s", name)
	}
	set := fetched.Get("Ts").(*object.Set)
	if len(set.Elems) != 2 {
		t.Fatalf("timings: %d", len(set.Elems))
	}
	for _, e := range set.Elems {
		tm := e.(*object.Object)
		r := tm.Get("R").(*object.Object)
		if r.ID != run.ID {
			t.Fatalf("timing run id %d, want %d", r.ID, run.ID)
		}
		if k := tm.Get("K").(object.Enum); k.Type != w.Enums["Kind"] {
			t.Fatal("enum type not restored")
		}
		if v := tm.Get("Valid"); !object.Equal(v, object.Bool(true)) {
			t.Fatalf("bool not restored: %s", v)
		}
	}
}

type queryFunc func(q string, p *sqldb.Params) (*sqldb.ResultSet, error)

func (f queryFunc) ExecQuery(q string, p *sqldb.Params) (*sqldb.ResultSet, error) { return f(q, p) }

func TestColumnNaming(t *testing.T) {
	w := testWorld(t)
	region := w.Classes["Region"]
	parent, _ := region.Lookup("Parent")
	if ColumnFor(parent) != "Parent_id" {
		t.Errorf("class attr column: %s", ColumnFor(parent))
	}
	name, _ := region.Lookup("Name")
	if ColumnFor(name) != "Name" {
		t.Errorf("scalar attr column: %s", ColumnFor(name))
	}
	if JunctionFor(region, "Ts") != "Region_Ts" {
		t.Errorf("junction: %s", JunctionFor(region, "Ts"))
	}
}

func TestStringEscaping(t *testing.T) {
	w := testWorld(t)
	store := object.NewStore()
	r := store.New(w.Classes["Region"])
	r.Set("Name", object.Str("o'brien"))
	db := sqldb.NewDB()
	exec := dbExecutor(db)
	if err := CreateSchema(w, exec); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(store, exec); err != nil {
		t.Fatal(err)
	}
	res := db.MustExec("SELECT Name FROM Region", nil)
	if res.Set.Rows[0][0].Text() != "o'brien" {
		t.Fatalf("got %v", res.Set.Rows[0][0])
	}
}
