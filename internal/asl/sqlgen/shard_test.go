package sqlgen_test

import (
	"strings"
	"testing"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/model"
	"repro/internal/sqldb"
)

// shardGraph materializes a small two-run dataset.
func shardGraph(t *testing.T) *model.Graph {
	t.Helper()
	ds, err := apprentice.Simulate(apprentice.Particles(), apprentice.PartitionSweep(2, 8), 42)
	if err != nil {
		t.Fatal(err)
	}
	g, err := model.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func tableOf(sql string) string {
	fields := strings.Fields(sql)
	if len(fields) < 3 || fields[0] != "INSERT" {
		return ""
	}
	return fields[2]
}

// TestRoutedLoadPlanAttribution: every INSERT of a partitioned class (and of
// its junction memberships) carries its owning run id; everything else
// broadcasts; and routing never changes the statement sequence.
func TestRoutedLoadPlanAttribution(t *testing.T) {
	g := shardGraph(t)
	part := model.RunPartitioned()
	plan, err := sqlgen.LoadPlan(g.Store)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := sqlgen.RoutedLoadPlan(g.Store, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(routed) != len(plan) {
		t.Fatalf("routed plan has %d statements, plain plan %d", len(routed), len(plan))
	}
	runIDs := make(map[int64]bool)
	for _, run := range g.Dataset.Versions[0].Runs {
		runIDs[g.Runs[run].ID] = true
	}
	partitionedSeen, broadcastSeen := 0, 0
	for i, rs := range routed {
		if rs.SQL != plan[i].SQL {
			t.Fatalf("statement %d reordered: %q vs %q", i, rs.SQL, plan[i].SQL)
		}
		table := tableOf(rs.SQL)
		// Junction rows of a partitioned class route with their element.
		partitionedTable := part[table] ||
			table == "Region_TypTimes" || table == "FunctionCall_Sums"
		switch {
		case partitionedTable && rs.Broadcast():
			t.Fatalf("statement %d (%s) not routed: %q", i, table, rs.SQL)
		case !partitionedTable && !rs.Broadcast():
			t.Fatalf("statement %d (%s) routed to run %d: %q", i, table, rs.RunID, rs.SQL)
		case rs.Broadcast():
			broadcastSeen++
		default:
			if !runIDs[rs.RunID] {
				t.Fatalf("statement %d routed to unknown run %d", i, rs.RunID)
			}
			partitionedSeen++
		}
	}
	if partitionedSeen == 0 || broadcastSeen == 0 {
		t.Fatalf("degenerate plan: %d partitioned, %d broadcast", partitionedSeen, broadcastSeen)
	}
}

// countingExec is an in-memory shard double recording executed statements.
type countingExec struct {
	db    *sqldb.DB
	stmts int
}

func (c *countingExec) Exec(q string, p *sqldb.Params) (int, error) {
	res, err := c.db.Exec(q, p)
	if err != nil {
		return 0, err
	}
	c.stmts++
	return res.Affected, nil
}

func tableCount(t *testing.T, db *sqldb.DB, table string) int64 {
	t.Helper()
	res, err := db.Exec("SELECT COUNT(*) FROM "+table, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Set.Rows[0][0].Int()
}

// TestLoadShardedPartitionsAndReplicates loads a two-run dataset across two
// shards and verifies the placement invariants: partitioned tables split
// with nothing lost, replicated tables are identical everywhere.
func TestLoadShardedPartitionsAndReplicates(t *testing.T) {
	g := shardGraph(t)
	shards := []*countingExec{{db: sqldb.NewDB()}, {db: sqldb.NewDB()}}
	var execs []sqlgen.Executor
	for _, s := range shards {
		if err := sqlgen.CreateSchema(g.World, s); err != nil {
			t.Fatal(err)
		}
		s.stmts = 0
		execs = append(execs, s)
	}
	shardFor := func(runID int64) int { return int(runID % 2) }
	counts, err := sqlgen.LoadSharded(g.Store, model.RunPartitioned(), shardFor, execs...)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0]+counts[1] != shards[0].stmts+shards[1].stmts {
		t.Fatalf("reported counts %v, executed %d+%d", counts, shards[0].stmts, shards[1].stmts)
	}

	// A single-node load is the reference row census.
	single := &countingExec{db: sqldb.NewDB()}
	if err := sqlgen.CreateSchema(g.World, single); err != nil {
		t.Fatal(err)
	}
	if _, err := sqlgen.Load(g.Store, single); err != nil {
		t.Fatal(err)
	}

	for _, table := range []string{"TypedTiming", "CallTiming", "Region_TypTimes", "FunctionCall_Sums"} {
		a, b := tableCount(t, shards[0].db, table), tableCount(t, shards[1].db, table)
		want := tableCount(t, single.db, table)
		if a+b != want {
			t.Errorf("%s: shards hold %d+%d rows, single node %d", table, a, b, want)
		}
		if a == 0 || b == 0 {
			t.Errorf("%s: lopsided partition %d/%d (both runs on one shard?)", table, a, b)
		}
	}
	for _, table := range []string{"TotalTiming", "TestRun", "Region", "Function", "Region_TotTimes", "Program"} {
		a, b := tableCount(t, shards[0].db, table), tableCount(t, shards[1].db, table)
		want := tableCount(t, single.db, table)
		if a != want || b != want {
			t.Errorf("%s: shards hold %d/%d rows, single node %d (must replicate)", table, a, b, want)
		}
	}
}

// TestLoadShardedRejectsBadRouting: a policy that routes outside the shard
// range is an error, not a crash or silent drop.
func TestLoadShardedRejectsBadRouting(t *testing.T) {
	g := shardGraph(t)
	s := &countingExec{db: sqldb.NewDB()}
	if err := sqlgen.CreateSchema(g.World, s); err != nil {
		t.Fatal(err)
	}
	if _, err := sqlgen.LoadSharded(g.Store, model.RunPartitioned(),
		func(int64) int { return 7 }, s); err == nil {
		t.Fatal("out-of-range routing accepted")
	}
	if _, err := sqlgen.LoadSharded(g.Store, model.RunPartitioned(), func(int64) int { return 0 }); err == nil {
		t.Fatal("zero shards accepted")
	}
}
