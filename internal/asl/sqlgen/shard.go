package sqlgen

// Client-side sharding support: the interfaces the analyzer uses to route
// property executions to the database shard that owns a test run, and the
// load-plan variant that routes each INSERT of a store to its owning shard.
//
// Sharding is entirely a client concern. Every shard is an ordinary
// single-node server speaking the ordinary wire protocol; what partitions the
// COSY database is (a) where the loader sends each row and (b) where the
// analyzer sends each query. Both decisions key on the same value, the object
// id of the owning TestRun, so they can never disagree.

import (
	"fmt"
	"sync"

	"repro/internal/asl/object"
	"repro/internal/asl/sem"
	"repro/internal/sqlast/build"
	"repro/internal/sqldb"
)

// RoutedPreparer is implemented by executors that can route a prepared query
// per execution: each parameter set names its owning test run under runParam,
// and the executor sends the execution to the shard that owns that run.
// Analysis code probes for it and falls back to plain QueryPreparer when
// absent.
type RoutedPreparer interface {
	PrepareRoutedQuery(query, runParam string) (PreparedQuery, error)
}

// RoutedExecutor is the text-protocol analogue of RoutedPreparer: one-shot
// query execution routed by the run id bound under runParam.
type RoutedExecutor interface {
	ExecQueryRouted(query, runParam string, params *sqldb.Params) (*sqldb.ResultSet, error)
}

// RoutedStatement is one statement of a sharded load plan: the statement
// itself plus the object id of the test run that owns it. RunID 0 marks a
// statement with no owning run — structural data that must be replicated to
// every shard.
type RoutedStatement struct {
	Statement
	RunID int64
}

// Broadcast reports whether the statement must run on every shard.
func (s RoutedStatement) Broadcast() bool { return s.RunID == 0 }

// runOf returns the object id of the run owning obj, if obj's class is in the
// partitioned set and carries a class-valued Run attribute.
func runOf(obj *object.Object, partitioned map[string]bool) int64 {
	if obj == nil || !partitioned[obj.Class.Name] {
		return 0
	}
	if run, ok := obj.Get("Run").(*object.Object); ok {
		return run.ID
	}
	return 0
}

// RoutedLoadPlan is the load-plan emission walk: one INSERT per object plus
// one per set membership, in store allocation order, each tagged with the
// object id of its owning run. An object whose class is in the partitioned
// set (and every junction row whose element is such an object) routes to its
// run; everything else is tagged for broadcast. A nil partitioned set tags
// everything broadcast — that is LoadPlan. Which classes are safely
// partitionable is a property of the ASL specification, not of the store —
// for the canonical COSY spec it is model.RunPartitioned.
func RoutedLoadPlan(store *object.Store, partitioned map[string]bool) ([]RoutedStatement, error) {
	var stmts []RoutedStatement
	for _, obj := range store.All() {
		cls := obj.Class
		colNames := []string{"id"}
		vals := []sqldb.Value{sqldb.NewInt(obj.ID)}
		var junctions []RoutedStatement
		for _, attr := range cls.AllAttrs() {
			if _, isSet := attr.Type.(*sem.Set); isSet {
				setVal, ok := obj.Get(attr.Name).(*object.Set)
				if !ok {
					continue
				}
				j := JunctionFor(cls, attr.Name)
				for _, elem := range setVal.Elems {
					eo, ok := elem.(*object.Object)
					if !ok {
						return nil, fmt.Errorf("sqlgen: %s.%s holds a non-object element", cls.Name, attr.Name)
					}
					sql, err := insertSQL(j, []string{"owner_id", "elem_id"})
					if err != nil {
						return nil, err
					}
					junctions = append(junctions, RoutedStatement{
						Statement: Statement{
							SQL: sql,
							Params: &sqldb.Params{Positional: []sqldb.Value{
								sqldb.NewInt(obj.ID), sqldb.NewInt(eo.ID),
							}},
						},
						RunID: runOf(eo, partitioned),
					})
				}
				continue
			}
			sv, err := toSQLValue(obj.Get(attr.Name))
			if err != nil {
				return nil, fmt.Errorf("sqlgen: %s.%s: %w", cls.Name, attr.Name, err)
			}
			colNames = append(colNames, ColumnFor(attr))
			vals = append(vals, sv)
		}
		sql, err := insertSQL(cls.Name, colNames)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, RoutedStatement{
			Statement: Statement{
				SQL:    sql,
				Params: &sqldb.Params{Positional: vals},
			},
			RunID: runOf(obj, partitioned),
		})
		stmts = append(stmts, junctions...)
	}
	return stmts, nil
}

// insertSQL builds a positional-parameter INSERT for the table and columns
// in the canonical dialect, validating every identifier on the way.
func insertSQL(table string, cols []string) (string, error) {
	values := make([]build.Expr, len(cols))
	for i := range cols {
		values[i] = &build.Ordinal{N: i}
	}
	r, err := build.Kojakdb.Render(&build.Insert{Table: table, Cols: cols, Values: values})
	if err != nil {
		return "", fmt.Errorf("sqlgen: %w", err)
	}
	return r.SQL, nil
}

// LoadSharded executes a store's load plan across shards: broadcast
// statements run on every shard, run-owned statements only on the shard
// shardFor assigns to their run. Each shard receives its statement stream in
// plan order, and the streams execute concurrently — on remote profiles a
// replicated load therefore costs one shard's round trips, not the sum of
// all of them. It returns the number of statements executed per shard.
// shardFor must be the same routing policy the analyzer queries with
// (godbc.ShardedDB.ShardFor), or queries will miss their data.
func LoadSharded(store *object.Store, partitioned map[string]bool, shardFor func(runID int64) int, shards ...Executor) ([]int, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("sqlgen: no shards to load")
	}
	plan, err := RoutedLoadPlan(store, partitioned)
	if err != nil {
		return nil, err
	}
	streams := make([][]RoutedStatement, len(shards))
	for _, stmt := range plan {
		if stmt.Broadcast() {
			for i := range streams {
				streams[i] = append(streams[i], stmt)
			}
			continue
		}
		i := shardFor(stmt.RunID)
		if i < 0 || i >= len(shards) {
			return nil, fmt.Errorf("sqlgen: routing run %d to shard %d of %d", stmt.RunID, i, len(shards))
		}
		streams[i] = append(streams[i], stmt)
	}
	counts := make([]int, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, stmt := range streams[i] {
				if _, err := shards[i].Exec(stmt.SQL, stmt.Params); err != nil {
					errs[i] = fmt.Errorf("sqlgen: shard %d: %s: %w", i, stmt.SQL, err)
					return
				}
				counts[i]++
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return counts, err
		}
	}
	return counts, nil
}
