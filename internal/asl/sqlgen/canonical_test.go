package sqlgen

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sqldb"
)

// TestCanonicalSpecFullyTranslates pins the paper's future-work claim: every
// property of the canonical COSY specification compiles to SQL, and the
// generated schema covers every class.
func TestCanonicalSpecFullyTranslates(t *testing.T) {
	w := model.MustCompileSpec()
	compiled, errs := CompileAll(w)
	for name, err := range errs {
		t.Errorf("property %s not translatable: %v", name, err)
	}
	if len(compiled) != len(model.AllProperties) {
		t.Fatalf("compiled %d of %d properties", len(compiled), len(model.AllProperties))
	}
	for _, name := range model.AllProperties {
		cp, ok := compiled[name]
		if !ok {
			t.Errorf("property %s missing", name)
			continue
		}
		if _, err := sqldb.ParseSQL(cp.SQL); err != nil {
			t.Errorf("property %s: generated SQL does not parse: %v", name, err)
		}
		if len(cp.Params) != 3 {
			t.Errorf("property %s: %d params", name, len(cp.Params))
		}
	}

	ddl, err := Schema(w)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(ddl, ";")
	for cls := range w.Classes {
		if !strings.Contains(joined, "CREATE TABLE "+cls+" ") {
			t.Errorf("schema lacks table for class %s", cls)
		}
	}
	// Junction tables for every setof attribute of the COSY model.
	for _, j := range []string{"Program_Versions", "ProgVersion_Functions", "ProgVersion_Runs", "Function_Calls", "Function_Regions", "Region_TotTimes", "Region_TypTimes", "FunctionCall_Sums"} {
		if !strings.Contains(joined, "CREATE TABLE "+j+" ") {
			t.Errorf("schema lacks junction table %s", j)
		}
	}
	// The whole DDL executes on a fresh engine.
	db := sqldb.NewDB()
	for _, stmt := range ddl {
		if _, err := db.Exec(stmt, nil); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
}

// TestGeneratedSQLShapes pins characteristic fragments of the translation
// so regressions in the compiler are visible in review.
func TestGeneratedSQLShapes(t *testing.T) {
	w := model.MustCompileSpec()
	syncCost, err := CompileProperty(w, "SyncCost")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"COALESCE(",          // ASL SUM over empty selection is 0
		"Region_TypTimes",    // junction traversal
		"= 'Barrier'",        // enum member as text literal
		"$r", "$t", "$Basis", // the property parameters
		"AS c0", "AS f0", "AS s0",
	} {
		if !strings.Contains(syncCost.SQL, want) {
			t.Errorf("SyncCost SQL lacks %q:\n%s", want, syncCost.SQL)
		}
	}
	sub, err := CompileProperty(w, "SublinearSpeedup")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sub.SQL, "MIN(") {
		t.Errorf("SublinearSpeedup SQL lacks the MIN aggregate:\n%s", sub.SQL)
	}
	imb, err := CompileProperty(w, "LoadImbalance")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(imb.SQL, "0.25") {
		t.Errorf("LoadImbalance SQL does not inline ImbalanceThreshold:\n%s", imb.SQL)
	}
}
