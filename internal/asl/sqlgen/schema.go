// Package sqlgen implements the automation the paper lists as future work:
// it derives a relational database schema from an ASL data model and
// translates ASL performance properties into SQL queries, so that property
// conditions are evaluated entirely inside the database (the fast path of
// the paper's Section 5).
//
// Mapping conventions:
//
//   - every class becomes a table named after the class with an "id"
//     INTEGER PRIMARY KEY;
//   - scalar attributes map to columns of the same name (int, DateTime →
//     INTEGER; float → REAL; String, enums → TEXT; Bool → BOOLEAN);
//   - class-valued attributes become "<Attr>_id" foreign-key columns;
//   - "setof C" attributes become junction tables "<Class>_<Attr>" with
//     owner_id and elem_id columns and an index on owner_id.
package sqlgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asl/object"
	"repro/internal/asl/sem"
	"repro/internal/sqldb"
)

// ColumnFor returns the column name of a scalar or class-valued attribute.
func ColumnFor(attr sem.Attr) string {
	if _, ok := attr.Type.(*sem.Class); ok {
		return attr.Name + "_id"
	}
	return attr.Name
}

// JunctionFor returns the junction table name of a set-valued attribute.
func JunctionFor(class *sem.Class, attrName string) string {
	return class.Name + "_" + attrName
}

// sqlTypeFor maps an ASL scalar type to a SQL column type.
func sqlTypeFor(t sem.Type) (string, error) {
	switch x := t.(type) {
	case *sem.Basic:
		switch x.Kind {
		case sem.Int, sem.DateTime:
			return "INTEGER", nil
		case sem.Float:
			return "REAL", nil
		case sem.String:
			return "TEXT", nil
		case sem.Bool:
			return "BOOLEAN", nil
		}
	case *sem.Enum:
		return "TEXT", nil
	case *sem.Class:
		return "INTEGER", nil // foreign key
	}
	return "", fmt.Errorf("sqlgen: no SQL type for %s", t)
}

// Schema generates the DDL statements (CREATE TABLE and CREATE INDEX) for
// every class of the world, in deterministic order.
func Schema(w *sem.World) ([]string, error) {
	names := make([]string, 0, len(w.Classes))
	for n := range w.Classes {
		names = append(names, n)
	}
	sort.Strings(names)

	var ddl []string
	for _, n := range names {
		cls := w.Classes[n]
		var cols []string
		cols = append(cols, "id INTEGER PRIMARY KEY")
		var indexes []string
		for _, attr := range cls.AllAttrs() {
			if set, ok := attr.Type.(*sem.Set); ok {
				elem, ok := set.Elem.(*sem.Class)
				if !ok {
					return nil, fmt.Errorf("sqlgen: class %s: setof %s is not a class set", n, set.Elem)
				}
				j := JunctionFor(cls, attr.Name)
				ddl = append(ddl,
					fmt.Sprintf("CREATE TABLE %s (owner_id INTEGER NOT NULL, elem_id INTEGER NOT NULL)", j))
				indexes = append(indexes,
					fmt.Sprintf("CREATE INDEX idx_%s_owner ON %s (owner_id)", j, j),
					fmt.Sprintf("CREATE INDEX idx_%s_elem ON %s (elem_id)", j, j))
				_ = elem
				continue
			}
			st, err := sqlTypeFor(attr.Type)
			if err != nil {
				return nil, fmt.Errorf("sqlgen: class %s attribute %s: %w", n, attr.Name, err)
			}
			cols = append(cols, fmt.Sprintf("%s %s", ColumnFor(attr), st))
			if _, isClass := attr.Type.(*sem.Class); isClass {
				indexes = append(indexes,
					fmt.Sprintf("CREATE INDEX idx_%s_%s ON %s (%s)", n, ColumnFor(attr), n, ColumnFor(attr)))
			}
		}
		ddl = append(ddl, fmt.Sprintf("CREATE TABLE %s (%s)", n, strings.Join(cols, ", ")))
		ddl = append(ddl, indexes...)
	}
	return ddl, nil
}

// Statement is one parameterized SQL statement of a load plan.
type Statement struct {
	SQL    string
	Params *sqldb.Params
}

// toSQLValue converts a runtime ASL value to a SQL value.
func toSQLValue(v object.Value) (sqldb.Value, error) {
	switch x := v.(type) {
	case object.Int:
		return sqldb.NewInt(int64(x)), nil
	case object.Float:
		return sqldb.NewFloat(float64(x)), nil
	case object.Str:
		return sqldb.NewText(string(x)), nil
	case object.Bool:
		return sqldb.NewBool(bool(x)), nil
	case object.DateTime:
		return sqldb.NewInt(int64(x)), nil
	case object.Enum:
		return sqldb.NewText(x.Member), nil
	case object.Null:
		return sqldb.Null, nil
	case *object.Object:
		return sqldb.NewInt(x.ID), nil
	}
	return sqldb.Null, fmt.Errorf("sqlgen: cannot store %s value in a column", v.TypeName())
}

// LoadPlan converts an object store into one INSERT statement per object
// plus one per set membership, mirroring the record-at-a-time insertion the
// paper benchmarks. Statements come out in store allocation order. It is the
// un-routed view of RoutedLoadPlan (shard.go), which owns the single
// emission walk so routing attribution can never drift from the statements.
func LoadPlan(store *object.Store) ([]Statement, error) {
	routed, err := RoutedLoadPlan(store, nil)
	if err != nil {
		return nil, err
	}
	stmts := make([]Statement, len(routed))
	for i, rs := range routed {
		stmts[i] = rs.Statement
	}
	return stmts, nil
}

// Executor abstracts statement execution so the loader works against both
// the embedded engine and a godbc connection.
type Executor interface {
	Exec(query string, params *sqldb.Params) (affected int, err error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(query string, params *sqldb.Params) (int, error)

// Exec implements Executor.
func (f ExecutorFunc) Exec(query string, params *sqldb.Params) (int, error) {
	return f(query, params)
}

// CreateSchema runs the generated DDL against an executor.
func CreateSchema(w *sem.World, exec Executor) error {
	ddl, err := Schema(w)
	if err != nil {
		return err
	}
	for _, stmt := range ddl {
		if _, err := exec.Exec(stmt, nil); err != nil {
			return fmt.Errorf("sqlgen: %s: %w", stmt, err)
		}
	}
	return nil
}

// Load executes the full load plan for a store.
func Load(store *object.Store, exec Executor) (int, error) {
	plan, err := LoadPlan(store)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, stmt := range plan {
		if _, err := exec.Exec(stmt.SQL, stmt.Params); err != nil {
			return n, fmt.Errorf("sqlgen: %s: %w", stmt.SQL, err)
		}
		n++
	}
	return n, nil
}
