// Package sqlgen implements the automation the paper lists as future work:
// it derives a relational database schema from an ASL data model and
// translates ASL performance properties into SQL queries, so that property
// conditions are evaluated entirely inside the database (the fast path of
// the paper's Section 5).
//
// Mapping conventions:
//
//   - every class becomes a table named after the class with an "id"
//     INTEGER PRIMARY KEY;
//   - scalar attributes map to columns of the same name (int, DateTime →
//     INTEGER; float → REAL; String, enums → TEXT; Bool → BOOLEAN);
//   - class-valued attributes become "<Attr>_id" foreign-key columns;
//   - "setof C" attributes become junction tables "<Class>_<Attr>" with
//     owner_id and elem_id columns and an index on owner_id.
package sqlgen

import (
	"fmt"
	"sort"

	"repro/internal/asl/object"
	"repro/internal/asl/sem"
	"repro/internal/sqlast/build"
	"repro/internal/sqldb"
)

// ColumnFor returns the column name of a scalar or class-valued attribute.
func ColumnFor(attr sem.Attr) string {
	if _, ok := attr.Type.(*sem.Class); ok {
		return attr.Name + "_id"
	}
	return attr.Name
}

// JunctionFor returns the junction table name of a set-valued attribute.
func JunctionFor(class *sem.Class, attrName string) string {
	return class.Name + "_" + attrName
}

// colTypeFor maps an ASL scalar type to an abstract column type; dialects
// spell it (kojakdb: INTEGER/REAL/TEXT/BOOLEAN).
func colTypeFor(t sem.Type) (build.ColType, error) {
	switch x := t.(type) {
	case *sem.Basic:
		switch x.Kind {
		case sem.Int, sem.DateTime:
			return build.TInt, nil
		case sem.Float:
			return build.TFloat, nil
		case sem.String:
			return build.TText, nil
		case sem.Bool:
			return build.TBool, nil
		}
	case *sem.Enum:
		return build.TText, nil
	case *sem.Class:
		return build.TInt, nil // foreign key
	}
	return 0, fmt.Errorf("sqlgen: no SQL type for %s", t)
}

// SchemaStmts generates the DDL statements (CREATE TABLE and CREATE INDEX)
// for every class of the world as builder nodes, in deterministic order.
func SchemaStmts(w *sem.World) ([]build.Stmt, error) {
	names := make([]string, 0, len(w.Classes))
	for n := range w.Classes {
		names = append(names, n)
	}
	sort.Strings(names)

	var ddl []build.Stmt
	for _, n := range names {
		cls := w.Classes[n]
		cols := []build.ColDef{{Name: "id", Type: build.TInt, PrimaryKey: true}}
		var indexes []build.Stmt
		for _, attr := range cls.AllAttrs() {
			if set, ok := attr.Type.(*sem.Set); ok {
				if _, ok := set.Elem.(*sem.Class); !ok {
					return nil, fmt.Errorf("sqlgen: class %s: setof %s is not a class set", n, set.Elem)
				}
				j := JunctionFor(cls, attr.Name)
				ddl = append(ddl, &build.CreateTable{Name: j, Cols: []build.ColDef{
					{Name: "owner_id", Type: build.TInt, NotNull: true},
					{Name: "elem_id", Type: build.TInt, NotNull: true},
				}})
				indexes = append(indexes,
					&build.CreateIndex{Name: "idx_" + j + "_owner", Table: j, Cols: []string{"owner_id"}},
					&build.CreateIndex{Name: "idx_" + j + "_elem", Table: j, Cols: []string{"elem_id"}})
				continue
			}
			ct, err := colTypeFor(attr.Type)
			if err != nil {
				return nil, fmt.Errorf("sqlgen: class %s attribute %s: %w", n, attr.Name, err)
			}
			cols = append(cols, build.ColDef{Name: ColumnFor(attr), Type: ct})
			if _, isClass := attr.Type.(*sem.Class); isClass {
				col := ColumnFor(attr)
				indexes = append(indexes,
					&build.CreateIndex{Name: "idx_" + n + "_" + col, Table: n, Cols: []string{col}})
			}
		}
		ddl = append(ddl, &build.CreateTable{Name: n, Cols: cols})
		ddl = append(ddl, indexes...)
	}
	return ddl, nil
}

// Schema generates the DDL for every class of the world in the canonical
// kojakdb dialect, in deterministic order.
func Schema(w *sem.World) ([]string, error) {
	return RenderSchema(w, build.Kojakdb.Name)
}

// RenderSchema generates the DDL in the named dialect.
func RenderSchema(w *sem.World, dialect string) ([]string, error) {
	d, ok := build.Lookup(dialect)
	if !ok {
		return nil, fmt.Errorf("sqlgen: unknown SQL dialect %q", dialect)
	}
	stmts, err := SchemaStmts(w)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(stmts))
	for i, s := range stmts {
		r, err := d.Render(s)
		if err != nil {
			return nil, err
		}
		out[i] = r.SQL
	}
	return out, nil
}

// Statement is one parameterized SQL statement of a load plan.
type Statement struct {
	SQL    string
	Params *sqldb.Params
}

// toSQLValue converts a runtime ASL value to a SQL value.
func toSQLValue(v object.Value) (sqldb.Value, error) {
	switch x := v.(type) {
	case object.Int:
		return sqldb.NewInt(int64(x)), nil
	case object.Float:
		return sqldb.NewFloat(float64(x)), nil
	case object.Str:
		return sqldb.NewText(string(x)), nil
	case object.Bool:
		return sqldb.NewBool(bool(x)), nil
	case object.DateTime:
		return sqldb.NewInt(int64(x)), nil
	case object.Enum:
		return sqldb.NewText(x.Member), nil
	case object.Null:
		return sqldb.Null, nil
	case *object.Object:
		return sqldb.NewInt(x.ID), nil
	}
	return sqldb.Null, fmt.Errorf("sqlgen: cannot store %s value in a column", v.TypeName())
}

// LoadPlan converts an object store into one INSERT statement per object
// plus one per set membership, mirroring the record-at-a-time insertion the
// paper benchmarks. Statements come out in store allocation order. It is the
// un-routed view of RoutedLoadPlan (shard.go), which owns the single
// emission walk so routing attribution can never drift from the statements.
func LoadPlan(store *object.Store) ([]Statement, error) {
	routed, err := RoutedLoadPlan(store, nil)
	if err != nil {
		return nil, err
	}
	stmts := make([]Statement, len(routed))
	for i, rs := range routed {
		stmts[i] = rs.Statement
	}
	return stmts, nil
}

// Executor abstracts statement execution so the loader works against both
// the embedded engine and a godbc connection.
type Executor interface {
	Exec(query string, params *sqldb.Params) (affected int, err error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(query string, params *sqldb.Params) (int, error)

// Exec implements Executor.
func (f ExecutorFunc) Exec(query string, params *sqldb.Params) (int, error) {
	return f(query, params)
}

// CreateSchema runs the generated DDL against an executor.
func CreateSchema(w *sem.World, exec Executor) error {
	ddl, err := Schema(w)
	if err != nil {
		return err
	}
	for _, stmt := range ddl {
		if _, err := exec.Exec(stmt, nil); err != nil {
			return fmt.Errorf("sqlgen: %s: %w", stmt, err)
		}
	}
	return nil
}

// Load executes the full load plan for a store.
func Load(store *object.Store, exec Executor) (int, error) {
	plan, err := LoadPlan(store)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, stmt := range plan {
		if _, err := exec.Exec(stmt.SQL, stmt.Params); err != nil {
			return n, fmt.Errorf("sqlgen: %s: %w", stmt.SQL, err)
		}
		n++
	}
	return n, nil
}
