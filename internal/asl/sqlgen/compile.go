package sqlgen

import (
	"fmt"
	"strings"

	"repro/internal/asl/ast"
	"repro/internal/asl/sem"
	"repro/internal/asl/token"
	"repro/internal/sqlast/build"
	"repro/internal/sqldb"
)

// CompiledProperty is an ASL property translated into a single SQL SELECT.
// The query produces one row with one boolean column per condition
// ("c0".."cN"), one numeric column per confidence entry ("f0"..) and one per
// severity entry ("s0".."sM"). Property parameters become typed named SQL
// parameters carrying object ids for class-typed parameters and plain values
// otherwise.
//
// NULL columns arise where the object evaluator would raise an evaluation
// error (UNIQUE over an empty set, MIN over an empty selection, and so on);
// the analyzer treats both as "instance not evaluable".
//
// The query is compiled to a typed AST and rendered per dialect; SQL holds
// the canonical kojakdb rendering, which is what plan-cache and result-cache
// keys are built from.
type CompiledProperty struct {
	Name string
	// Params are the ASL property parameters in order.
	Params []sem.Attr
	// AST is the compiled query; Render spells it for a dialect.
	AST *build.Select
	// SQL is the complete SELECT statement in the canonical kojakdb dialect.
	SQL string
	// CondLabels holds the condition label (or "") per condition column.
	CondLabels []string
	// ConfGuards and SevGuards hold the guard label (or "") per confidence
	// and severity column.
	ConfGuards []string
	SevGuards  []string

	// refs are the named parameters the query references, with their
	// declared kinds, in first-occurrence order.
	refs []build.Param
}

// Render spells the property query for the named dialect. The kojakdb
// rendering equals SQL byte for byte.
func (cp *CompiledProperty) Render(dialect string) (build.Rendered, error) {
	d, ok := build.Lookup(dialect)
	if !ok {
		return build.Rendered{}, fmt.Errorf("sqlgen: unknown SQL dialect %q (have %s)", dialect, strings.Join(build.Names(), ", "))
	}
	return d.Render(cp.AST)
}

// CheckBinding validates a parameter binding against the property's declared
// parameters: every parameter the query references must be bound under
// Params.Named with a value of the declared kind (NULL is always accepted),
// and every bound name must be a declared parameter.
func (cp *CompiledProperty) CheckBinding(p *sqldb.Params) error {
	var named map[string]sqldb.Value
	if p != nil {
		named = p.Named
	}
	for _, ref := range cp.refs {
		v, ok := named[ref.Name]
		if !ok {
			return fmt.Errorf("sqlgen: property %s: no value bound for parameter $%s", cp.Name, ref.Name)
		}
		if !kindAccepts(ref.Kind, v) {
			return fmt.Errorf("sqlgen: property %s: parameter $%s wants %s, bound %s", cp.Name, ref.Name, ref.Kind, v)
		}
	}
	if len(named) > len(cp.Params) {
		declared := make(map[string]bool, len(cp.Params))
		for _, p := range cp.Params {
			declared[p.Name] = true
		}
		for name := range named {
			if !declared[name] {
				return fmt.Errorf("sqlgen: property %s: bound parameter $%s is not declared", cp.Name, name)
			}
		}
	}
	return nil
}

// kindAccepts reports whether a bound value satisfies a declared parameter
// kind. NULL is a legitimate binding for every kind.
func kindAccepts(k build.ParamKind, v sqldb.Value) bool {
	if v.IsNull() {
		return true
	}
	switch k {
	case build.KindInt:
		return v.IsInt()
	case build.KindFloat:
		return v.IsNumeric()
	case build.KindText:
		return v.IsText()
	case build.KindBool:
		return v.IsBool()
	}
	return true
}

// FillPositional populates p.Positional with the named values in marker
// order — the binding conversion for positional-marker dialects. Named stays
// populated: sharded routing and binding checks read it.
func FillPositional(p *sqldb.Params, order []string) error {
	vals := make([]sqldb.Value, len(order))
	for i, name := range order {
		v, ok := p.Named[name]
		if !ok {
			return fmt.Errorf("sqlgen: positional binding: no value for parameter $%s", name)
		}
		vals[i] = v
	}
	p.Positional = vals
	return nil
}

// paramKindFor maps an ASL parameter type to the SQL parameter kind its
// bindings are checked against. Class-typed parameters carry object ids.
func paramKindFor(t sem.Type) build.ParamKind {
	switch x := t.(type) {
	case *sem.Class:
		return build.KindInt
	case *sem.Enum:
		return build.KindText
	case *sem.Basic:
		switch x.Kind {
		case sem.Int, sem.DateTime:
			return build.KindInt
		case sem.Float:
			return build.KindFloat
		case sem.String:
			return build.KindText
		case sem.Bool:
			return build.KindBool
		}
	}
	return build.KindAny
}

// maxInlineDepth bounds ASL function inlining.
const maxInlineDepth = 32

// CompileError reports a property that cannot be translated to SQL.
type CompileError struct {
	Property string
	Pos      token.Pos
	Msg      string
}

// Error implements the error interface.
func (e *CompileError) Error() string {
	return fmt.Sprintf("sqlgen: property %s: %s: %s", e.Property, e.Pos, e.Msg)
}

// compiler carries translation state for one property.
type compiler struct {
	w      *sem.World
	prop   string
	aliasN int
	depth  int
}

// cval is a compiled ASL expression.
//
// Exactly one representation applies:
//   - ex != nil    — a SQL scalar expression; for class-typed values the
//     expression yields the object id;
//   - alias != ""  — a bound table row (set-comprehension or aggregate
//     binder variable), whose columns are directly addressable;
//   - set != nil   — a set-valued expression (only legal inside UNIQUE,
//     aggregates, and comprehensions).
type cval struct {
	ex    build.Expr
	alias string
	class *sem.Class // non-nil for object-valued ex/alias values
	set   *setDesc
	// isNull marks the ASL null literal.
	isNull bool
}

// setDesc describes a compiled set expression: the elements of a junction
// attribute, optionally filtered.
type setDesc struct {
	elem      *sem.Class
	junction  string
	ownerEx   build.Expr   // expression for the owning object id
	elemAlias string       // alias bound for the element rows
	conds     []build.Expr // predicates over elemAlias
}

func (c *compiler) errf(pos token.Pos, format string, args ...any) *CompileError {
	return &CompileError{Property: c.prop, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *compiler) newAlias(prefix string) string {
	c.aliasN++
	return fmt.Sprintf("%s%d", prefix, c.aliasN)
}

// env maps ASL names to compiled values.
type cenv struct {
	parent *cenv
	vars   map[string]cval
}

func newCEnv(parent *cenv) *cenv { return &cenv{parent: parent, vars: make(map[string]cval)} }

func (e *cenv) lookup(name string) (cval, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return cval{}, false
}

// CompileProperty translates the named property of the world into SQL.
func CompileProperty(w *sem.World, name string) (*CompiledProperty, error) {
	decl, ok := w.PropDecls[name]
	if !ok {
		return nil, fmt.Errorf("sqlgen: unknown property %s", name)
	}
	sig := w.Props[name]
	c := &compiler{w: w, prop: name}

	env := newCEnv(nil)
	for _, p := range sig.Params {
		v := cval{ex: &build.Param{Name: p.Name, Kind: paramKindFor(p.Type)}}
		if cls, isClass := p.Type.(*sem.Class); isClass {
			v.class = cls
		}
		env.vars[p.Name] = v
	}
	for _, l := range decl.Lets {
		v, err := c.compile(l.Value, env)
		if err != nil {
			return nil, err
		}
		env.vars[l.Name] = v
	}

	out := &CompiledProperty{Name: name, Params: sig.Params}
	sel := &build.Select{}
	for i, cond := range decl.Conditions {
		ex, err := c.compileScalar(cond.Expr, env)
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, build.Item{Expr: ex, As: fmt.Sprintf("c%d", i)})
		out.CondLabels = append(out.CondLabels, cond.Label)
	}
	for i, g := range decl.Confidence {
		ex, err := c.compileScalar(g.Expr, env)
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, build.Item{Expr: ex, As: fmt.Sprintf("f%d", i)})
		out.ConfGuards = append(out.ConfGuards, g.Guard)
	}
	for i, g := range decl.Severity {
		ex, err := c.compileScalar(g.Expr, env)
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, build.Item{Expr: ex, As: fmt.Sprintf("s%d", i)})
		out.SevGuards = append(out.SevGuards, g.Guard)
	}
	out.AST = sel
	refs, err := build.NamedParams(sel)
	if err != nil {
		return nil, fmt.Errorf("sqlgen: property %s: %w", name, err)
	}
	out.refs = refs
	r, err := build.Kojakdb.Render(sel)
	if err != nil {
		return nil, fmt.Errorf("sqlgen: property %s: %w", name, err)
	}
	out.SQL = r.SQL
	return out, nil
}

// compileScalar compiles an expression that must yield a SQL scalar.
func (c *compiler) compileScalar(e ast.Expr, env *cenv) (build.Expr, error) {
	v, err := c.compile(e, env)
	if err != nil {
		return nil, err
	}
	switch {
	case v.set != nil:
		return nil, c.errf(e.Pos(), "set-valued expression where a scalar is required")
	case v.alias != "":
		// A bare binder variable as a scalar means its id.
		return &build.Col{Table: v.alias, Name: "id"}, nil
	case v.isNull:
		return &build.Null{}, nil
	default:
		return v.ex, nil
	}
}

// idExpr returns an expression for the object id of a class-typed value.
func (c *compiler) idExpr(v cval, pos token.Pos) (build.Expr, error) {
	switch {
	case v.alias != "":
		return &build.Col{Table: v.alias, Name: "id"}, nil
	case v.class != nil:
		return v.ex, nil
	}
	return nil, c.errf(pos, "expected an object value")
}

func (c *compiler) compile(e ast.Expr, env *cenv) (cval, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return cval{ex: &build.Int{V: x.Value}}, nil
	case *ast.FloatLit:
		return cval{ex: &build.Float{V: x.Value}}, nil
	case *ast.StringLit:
		return cval{ex: &build.Str{V: x.Value}}, nil
	case *ast.BoolLit:
		return cval{ex: &build.Bool{V: x.Value}}, nil
	case *ast.NullLit:
		return cval{isNull: true}, nil
	case *ast.DateTimeLit:
		return cval{ex: &build.Int{V: x.Value}}, nil
	case *ast.Ident:
		if v, ok := env.lookup(x.Name); ok {
			return v, nil
		}
		if decl, ok := c.w.ConstDecls[x.Name]; ok {
			return c.compile(decl.Value, newCEnv(nil))
		}
		if _, ok := c.w.EnumMembers[x.Name]; ok {
			return cval{ex: &build.Str{V: x.Name}}, nil
		}
		return cval{}, c.errf(x.Pos(), "undefined identifier %s", x.Name)
	case *ast.Member:
		return c.compileMember(x, env)
	case *ast.Unary:
		sub, err := c.compileScalar(x.X, env)
		if err != nil {
			return cval{}, err
		}
		if x.Op == token.MINUS {
			return cval{ex: &build.Paren{X: &build.Un{Op: build.OpNeg, X: sub}}}, nil
		}
		return cval{ex: &build.Paren{X: &build.Un{Op: build.OpNot, X: sub}}}, nil
	case *ast.Binary:
		return c.compileBinary(x, env)
	case *ast.Call:
		return c.compileCall(x, env)
	case *ast.SetCompr:
		src, err := c.compileSet(x.Source, env)
		if err != nil {
			return cval{}, err
		}
		inner := newCEnv(env)
		inner.vars[x.Var] = cval{alias: src.elemAlias, class: src.elem}
		if x.Cond != nil {
			cond, err := c.compileScalar(x.Cond, inner)
			if err != nil {
				return cval{}, err
			}
			src.conds = append(src.conds, cond)
		}
		return cval{set: src}, nil
	case *ast.Unique:
		src, err := c.compileSet(x.Set, env)
		if err != nil {
			return cval{}, err
		}
		return cval{ex: c.setQuery(src, &build.Col{Table: src.elemAlias, Name: "id"}), class: src.elem}, nil
	case *ast.Agg:
		return c.compileAgg(x, env)
	case *ast.NAry:
		return cval{}, c.errf(x.Pos(), "scalar %s(...) argument lists are not supported in SQL translation", x.Kind)
	}
	return cval{}, c.errf(e.Pos(), "internal: unhandled expression %T", e)
}

// compileSet compiles an expression that must denote a set.
func (c *compiler) compileSet(e ast.Expr, env *cenv) (*setDesc, error) {
	v, err := c.compile(e, env)
	if err != nil {
		return nil, err
	}
	if v.set == nil {
		return nil, c.errf(e.Pos(), "expected a set-valued expression")
	}
	return v.set, nil
}

// setQuery builds a setDesc into a scalar subquery computing value.
func (c *compiler) setQuery(s *setDesc, value build.Expr) build.Expr {
	j := c.newAlias("j")
	sel := &build.Select{
		Items: []build.Item{{Expr: value}},
		From:  &build.Table{Name: s.junction, Alias: j},
		Joins: []build.Join{{
			Table: build.Table{Name: s.elem.Name, Alias: s.elemAlias},
			On: &build.Bin{Op: build.OpEq,
				L: &build.Col{Table: s.elemAlias, Name: "id"},
				R: &build.Col{Table: j, Name: "elem_id"}},
		}},
		Where: append([]build.Expr{&build.Bin{Op: build.OpEq,
			L: &build.Col{Table: j, Name: "owner_id"},
			R: s.ownerEx}}, s.conds...),
	}
	return &build.Subquery{Sel: sel}
}

func (c *compiler) compileMember(x *ast.Member, env *cenv) (cval, error) {
	base, err := c.compile(x.X, env)
	if err != nil {
		return cval{}, err
	}
	if base.set != nil {
		return cval{}, c.errf(x.Pos(), "attribute access on a set")
	}
	if base.class == nil {
		return cval{}, c.errf(x.Pos(), "attribute access on a non-object value")
	}
	attr, ok := base.class.Lookup(x.Name)
	if !ok {
		return cval{}, c.errf(x.Pos(), "class %s has no attribute %s", base.class.Name, x.Name)
	}

	if set, isSet := attr.Type.(*sem.Set); isSet {
		elem, ok := set.Elem.(*sem.Class)
		if !ok {
			return cval{}, c.errf(x.Pos(), "setof %s is not a class set", set.Elem)
		}
		owner, err := c.idExpr(base, x.Pos())
		if err != nil {
			return cval{}, err
		}
		return cval{set: &setDesc{
			elem:      elem,
			junction:  JunctionFor(base.class, x.Name),
			ownerEx:   owner,
			elemAlias: c.newAlias("a"),
		}}, nil
	}

	col := ColumnFor(attr)
	var out cval
	if cls, isClass := attr.Type.(*sem.Class); isClass {
		out.class = cls
	}
	if base.alias != "" {
		out.ex = &build.Col{Table: base.alias, Name: col}
		return out, nil
	}
	// Dereference via a scalar subquery on the base class table.
	a := c.newAlias("d")
	out.ex = &build.Subquery{Sel: &build.Select{
		Items: []build.Item{{Expr: &build.Col{Table: a, Name: col}}},
		From:  &build.Table{Name: base.class.Name, Alias: a},
		Where: []build.Expr{&build.Bin{Op: build.OpEq,
			L: &build.Col{Table: a, Name: "id"},
			R: base.ex}},
	}}
	return out, nil
}

func (c *compiler) compileBinary(x *ast.Binary, env *cenv) (cval, error) {
	l, err := c.compile(x.L, env)
	if err != nil {
		return cval{}, err
	}
	r, err := c.compile(x.R, env)
	if err != nil {
		return cval{}, err
	}
	// Comparisons against the null literal become IS NULL tests.
	if l.isNull || r.isNull {
		other := l
		if l.isNull {
			other = r
		}
		ex, err := c.scalarOf(other, x.Pos())
		if err != nil {
			return cval{}, err
		}
		switch x.Op {
		case token.EQ:
			return cval{ex: &build.Paren{X: &build.IsNull{X: ex}}}, nil
		case token.NEQ:
			return cval{ex: &build.Paren{X: &build.IsNull{X: ex, Not: true}}}, nil
		}
		return cval{}, c.errf(x.Pos(), "null may only be compared with == or !=")
	}
	lt, err := c.scalarOf(l, x.L.Pos())
	if err != nil {
		return cval{}, err
	}
	rt, err := c.scalarOf(r, x.R.Pos())
	if err != nil {
		return cval{}, err
	}
	var op build.BinOp
	switch x.Op {
	case token.PLUS:
		op = build.OpAdd
	case token.MINUS:
		op = build.OpSub
	case token.STAR:
		op = build.OpMul
	case token.SLASH:
		op = build.OpDiv
	case token.PERCENT:
		op = build.OpMod
	case token.EQ:
		op = build.OpEq
	case token.NEQ:
		op = build.OpNeq
	case token.LT:
		op = build.OpLt
	case token.LEQ:
		op = build.OpLeq
	case token.GT:
		op = build.OpGt
	case token.GEQ:
		op = build.OpGeq
	case token.AND:
		op = build.OpAnd
	case token.OR:
		op = build.OpOr
	default:
		return cval{}, c.errf(x.Pos(), "operator %s is not supported in SQL translation", x.Op)
	}
	return cval{ex: &build.Paren{X: &build.Bin{Op: op, L: lt, R: rt}}}, nil
}

// scalarOf renders a compiled value as a SQL scalar (object values render as
// their id).
func (c *compiler) scalarOf(v cval, pos token.Pos) (build.Expr, error) {
	switch {
	case v.set != nil:
		return nil, c.errf(pos, "set value used as a scalar")
	case v.alias != "":
		return &build.Col{Table: v.alias, Name: "id"}, nil
	case v.isNull:
		return &build.Null{}, nil
	}
	return v.ex, nil
}

func (c *compiler) compileCall(x *ast.Call, env *cenv) (cval, error) {
	decl, ok := c.w.FuncDecls[x.Name]
	if !ok {
		return cval{}, c.errf(x.Pos(), "call of unknown function %s", x.Name)
	}
	if len(x.Args) != len(decl.Params) {
		return cval{}, c.errf(x.Pos(), "function %s expects %d arguments, got %d", x.Name, len(decl.Params), len(x.Args))
	}
	if c.depth >= maxInlineDepth {
		return cval{}, c.errf(x.Pos(), "function inlining exceeds depth %d (recursive functions cannot be translated)", maxInlineDepth)
	}
	inner := newCEnv(nil)
	for i, p := range decl.Params {
		av, err := c.compile(x.Args[i], env)
		if err != nil {
			return cval{}, err
		}
		inner.vars[p.Name] = av
	}
	c.depth++
	defer func() { c.depth-- }()
	return c.compile(decl.Body, inner)
}

func (c *compiler) compileAgg(x *ast.Agg, env *cenv) (cval, error) {
	var src *setDesc
	inner := env
	if x.Binder != "" {
		var err error
		src, err = c.compileSet(x.Source, env)
		if err != nil {
			return cval{}, err
		}
		inner = newCEnv(env)
		inner.vars[x.Binder] = cval{alias: src.elemAlias, class: src.elem}
		for _, cond := range x.Conds {
			ex, err := c.compileScalar(cond, inner)
			if err != nil {
				return cval{}, err
			}
			src.conds = append(src.conds, ex)
		}
	} else {
		var err error
		src, err = c.compileSet(x.Value, env)
		if err != nil {
			return cval{}, err
		}
		if x.Kind != ast.AggCount {
			return cval{}, c.errf(x.Pos(), "%s over a bare set is only supported for COUNT", x.Kind)
		}
		return cval{ex: c.setQuery(src, &build.Call{Name: "COUNT", Star: true})}, nil
	}

	if x.Kind == ast.AggCount {
		return cval{ex: c.setQuery(src, &build.Call{Name: "COUNT", Star: true})}, nil
	}
	valEx, err := c.compileScalar(x.Value, inner)
	if err != nil {
		return cval{}, err
	}
	agg := c.setQuery(src, &build.Call{Name: fmt.Sprint(x.Kind), Args: []build.Expr{valEx}})
	if x.Kind == ast.AggSum {
		// ASL defines SUM over an empty selection as zero; SQL yields NULL.
		agg = &build.Call{Name: "COALESCE", Args: []build.Expr{agg, &build.Int{V: 0}}}
	}
	return cval{ex: agg}, nil
}

// CompileAll compiles every property of the world, returning them keyed by
// name. Properties that cannot be translated are reported in the errors map
// rather than failing the whole batch, mirroring COSY's per-property
// fallback to client-side evaluation.
func CompileAll(w *sem.World) (map[string]*CompiledProperty, map[string]error) {
	out := make(map[string]*CompiledProperty)
	errs := make(map[string]error)
	for name := range w.PropDecls {
		cp, err := CompileProperty(w, name)
		if err != nil {
			errs[name] = err
			continue
		}
		out[name] = cp
	}
	return out, errs
}
