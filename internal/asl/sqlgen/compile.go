package sqlgen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asl/ast"
	"repro/internal/asl/sem"
	"repro/internal/asl/token"
)

// CompiledProperty is an ASL property translated into a single SQL SELECT.
// The query produces one row with one boolean column per condition
// ("c0".."cN"), one numeric column per confidence entry ("f0"..) and one per
// severity entry ("s0".."sM"). Property parameters become named SQL
// parameters "$<param>" carrying object ids for class-typed parameters and
// plain values otherwise.
//
// NULL columns arise where the object evaluator would raise an evaluation
// error (UNIQUE over an empty set, MIN over an empty selection, and so on);
// the analyzer treats both as "instance not evaluable".
type CompiledProperty struct {
	Name string
	// Params are the ASL property parameters in order.
	Params []sem.Attr
	// SQL is the complete SELECT statement.
	SQL string
	// CondLabels holds the condition label (or "") per condition column.
	CondLabels []string
	// ConfGuards and SevGuards hold the guard label (or "") per confidence
	// and severity column.
	ConfGuards []string
	SevGuards  []string
}

// maxInlineDepth bounds ASL function inlining.
const maxInlineDepth = 32

// CompileError reports a property that cannot be translated to SQL.
type CompileError struct {
	Property string
	Pos      token.Pos
	Msg      string
}

// Error implements the error interface.
func (e *CompileError) Error() string {
	return fmt.Sprintf("sqlgen: property %s: %s: %s", e.Property, e.Pos, e.Msg)
}

// compiler carries translation state for one property.
type compiler struct {
	w      *sem.World
	prop   string
	aliasN int
	depth  int
}

// cval is a compiled ASL expression.
//
// Exactly one representation applies:
//   - text != ""  — a SQL scalar expression; for class-typed values the
//     expression yields the object id;
//   - alias != "" — a bound table row (set-comprehension or aggregate
//     binder variable), whose columns are directly addressable;
//   - set != nil  — a set-valued expression (only legal inside UNIQUE,
//     aggregates, and comprehensions).
type cval struct {
	text  string
	alias string
	class *sem.Class // non-nil for object-valued text/alias values
	set   *setDesc
	// isNull marks the ASL null literal.
	isNull bool
}

// setDesc describes a compiled set expression: the elements of a junction
// attribute, optionally filtered.
type setDesc struct {
	elem      *sem.Class
	junction  string
	ownerText string   // SQL expression for the owning object id
	elemAlias string   // alias bound for the element rows
	conds     []string // SQL predicates over elemAlias
}

func (c *compiler) errf(pos token.Pos, format string, args ...any) *CompileError {
	return &CompileError{Property: c.prop, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *compiler) newAlias(prefix string) string {
	c.aliasN++
	return fmt.Sprintf("%s%d", prefix, c.aliasN)
}

// env maps ASL names to compiled values.
type cenv struct {
	parent *cenv
	vars   map[string]cval
}

func newCEnv(parent *cenv) *cenv { return &cenv{parent: parent, vars: make(map[string]cval)} }

func (e *cenv) lookup(name string) (cval, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return cval{}, false
}

// CompileProperty translates the named property of the world into SQL.
func CompileProperty(w *sem.World, name string) (*CompiledProperty, error) {
	decl, ok := w.PropDecls[name]
	if !ok {
		return nil, fmt.Errorf("sqlgen: unknown property %s", name)
	}
	sig := w.Props[name]
	c := &compiler{w: w, prop: name}

	env := newCEnv(nil)
	for _, p := range sig.Params {
		v := cval{text: "$" + p.Name}
		if cls, isClass := p.Type.(*sem.Class); isClass {
			v.class = cls
		}
		env.vars[p.Name] = v
	}
	for _, l := range decl.Lets {
		v, err := c.compile(l.Value, env)
		if err != nil {
			return nil, err
		}
		env.vars[l.Name] = v
	}

	out := &CompiledProperty{Name: name, Params: sig.Params}
	var items []string
	for i, cond := range decl.Conditions {
		sql, err := c.compileScalar(cond.Expr, env)
		if err != nil {
			return nil, err
		}
		items = append(items, fmt.Sprintf("%s AS c%d", sql, i))
		out.CondLabels = append(out.CondLabels, cond.Label)
	}
	for i, g := range decl.Confidence {
		sql, err := c.compileScalar(g.Expr, env)
		if err != nil {
			return nil, err
		}
		items = append(items, fmt.Sprintf("%s AS f%d", sql, i))
		out.ConfGuards = append(out.ConfGuards, g.Guard)
	}
	for i, g := range decl.Severity {
		sql, err := c.compileScalar(g.Expr, env)
		if err != nil {
			return nil, err
		}
		items = append(items, fmt.Sprintf("%s AS s%d", sql, i))
		out.SevGuards = append(out.SevGuards, g.Guard)
	}
	out.SQL = "SELECT " + strings.Join(items, ", ")
	return out, nil
}

// compileScalar compiles an expression that must yield a SQL scalar.
func (c *compiler) compileScalar(e ast.Expr, env *cenv) (string, error) {
	v, err := c.compile(e, env)
	if err != nil {
		return "", err
	}
	switch {
	case v.set != nil:
		return "", c.errf(e.Pos(), "set-valued expression where a scalar is required")
	case v.alias != "":
		// A bare binder variable as a scalar means its id.
		return v.alias + ".id", nil
	case v.isNull:
		return "NULL", nil
	default:
		return v.text, nil
	}
}

// idText returns a SQL expression for the object id of a class-typed value.
func (c *compiler) idText(v cval, pos token.Pos) (string, error) {
	switch {
	case v.alias != "":
		return v.alias + ".id", nil
	case v.class != nil:
		return v.text, nil
	}
	return "", c.errf(pos, "expected an object value")
}

func (c *compiler) compile(e ast.Expr, env *cenv) (cval, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return cval{text: strconv.FormatInt(x.Value, 10)}, nil
	case *ast.FloatLit:
		return cval{text: strconv.FormatFloat(x.Value, 'g', -1, 64)}, nil
	case *ast.StringLit:
		return cval{text: sqlString(x.Value)}, nil
	case *ast.BoolLit:
		if x.Value {
			return cval{text: "TRUE"}, nil
		}
		return cval{text: "FALSE"}, nil
	case *ast.NullLit:
		return cval{isNull: true}, nil
	case *ast.DateTimeLit:
		return cval{text: strconv.FormatInt(x.Value, 10)}, nil
	case *ast.Ident:
		if v, ok := env.lookup(x.Name); ok {
			return v, nil
		}
		if decl, ok := c.w.ConstDecls[x.Name]; ok {
			return c.compile(decl.Value, newCEnv(nil))
		}
		if _, ok := c.w.EnumMembers[x.Name]; ok {
			return cval{text: sqlString(x.Name)}, nil
		}
		return cval{}, c.errf(x.Pos(), "undefined identifier %s", x.Name)
	case *ast.Member:
		return c.compileMember(x, env)
	case *ast.Unary:
		sub, err := c.compileScalar(x.X, env)
		if err != nil {
			return cval{}, err
		}
		if x.Op == token.MINUS {
			return cval{text: "(-" + sub + ")"}, nil
		}
		return cval{text: "(NOT " + sub + ")"}, nil
	case *ast.Binary:
		return c.compileBinary(x, env)
	case *ast.Call:
		return c.compileCall(x, env)
	case *ast.SetCompr:
		src, err := c.compileSet(x.Source, env)
		if err != nil {
			return cval{}, err
		}
		inner := newCEnv(env)
		inner.vars[x.Var] = cval{alias: src.elemAlias, class: src.elem}
		if x.Cond != nil {
			cond, err := c.compileScalar(x.Cond, inner)
			if err != nil {
				return cval{}, err
			}
			src.conds = append(src.conds, cond)
		}
		return cval{set: src}, nil
	case *ast.Unique:
		src, err := c.compileSet(x.Set, env)
		if err != nil {
			return cval{}, err
		}
		return cval{text: c.setQuery(src, src.elemAlias+".id"), class: src.elem}, nil
	case *ast.Agg:
		return c.compileAgg(x, env)
	case *ast.NAry:
		return cval{}, c.errf(x.Pos(), "scalar %s(...) argument lists are not supported in SQL translation", x.Kind)
	}
	return cval{}, c.errf(e.Pos(), "internal: unhandled expression %T", e)
}

// compileSet compiles an expression that must denote a set.
func (c *compiler) compileSet(e ast.Expr, env *cenv) (*setDesc, error) {
	v, err := c.compile(e, env)
	if err != nil {
		return nil, err
	}
	if v.set == nil {
		return nil, c.errf(e.Pos(), "expected a set-valued expression")
	}
	return v.set, nil
}

// setQuery renders a setDesc as a scalar subquery computing valueSQL.
func (c *compiler) setQuery(s *setDesc, valueSQL string) string {
	j := c.newAlias("j")
	var b strings.Builder
	fmt.Fprintf(&b, "(SELECT %s FROM %s %s JOIN %s %s ON %s.id = %s.elem_id WHERE %s.owner_id = %s",
		valueSQL, s.junction, j, s.elem.Name, s.elemAlias, s.elemAlias, j, j, s.ownerText)
	for _, cond := range s.conds {
		b.WriteString(" AND ")
		b.WriteString(cond)
	}
	b.WriteString(")")
	return b.String()
}

func (c *compiler) compileMember(x *ast.Member, env *cenv) (cval, error) {
	base, err := c.compile(x.X, env)
	if err != nil {
		return cval{}, err
	}
	if base.set != nil {
		return cval{}, c.errf(x.Pos(), "attribute access on a set")
	}
	if base.class == nil {
		return cval{}, c.errf(x.Pos(), "attribute access on a non-object value")
	}
	attr, ok := base.class.Lookup(x.Name)
	if !ok {
		return cval{}, c.errf(x.Pos(), "class %s has no attribute %s", base.class.Name, x.Name)
	}

	if set, isSet := attr.Type.(*sem.Set); isSet {
		elem, ok := set.Elem.(*sem.Class)
		if !ok {
			return cval{}, c.errf(x.Pos(), "setof %s is not a class set", set.Elem)
		}
		owner, err := c.idText(base, x.Pos())
		if err != nil {
			return cval{}, err
		}
		return cval{set: &setDesc{
			elem:      elem,
			junction:  JunctionFor(base.class, x.Name),
			ownerText: owner,
			elemAlias: c.newAlias("a"),
		}}, nil
	}

	col := ColumnFor(attr)
	var out cval
	if cls, isClass := attr.Type.(*sem.Class); isClass {
		out.class = cls
	}
	if base.alias != "" {
		out.text = base.alias + "." + col
		return out, nil
	}
	// Dereference via a scalar subquery on the base class table.
	a := c.newAlias("d")
	out.text = fmt.Sprintf("(SELECT %s.%s FROM %s %s WHERE %s.id = %s)",
		a, col, base.class.Name, a, a, base.text)
	return out, nil
}

func (c *compiler) compileBinary(x *ast.Binary, env *cenv) (cval, error) {
	l, err := c.compile(x.L, env)
	if err != nil {
		return cval{}, err
	}
	r, err := c.compile(x.R, env)
	if err != nil {
		return cval{}, err
	}
	// Comparisons against the null literal become IS NULL tests.
	if l.isNull || r.isNull {
		other := l
		if l.isNull {
			other = r
		}
		text, err := c.scalarOf(other, x.Pos())
		if err != nil {
			return cval{}, err
		}
		switch x.Op {
		case token.EQ:
			return cval{text: "(" + text + " IS NULL)"}, nil
		case token.NEQ:
			return cval{text: "(" + text + " IS NOT NULL)"}, nil
		}
		return cval{}, c.errf(x.Pos(), "null may only be compared with == or !=")
	}
	lt, err := c.scalarOf(l, x.L.Pos())
	if err != nil {
		return cval{}, err
	}
	rt, err := c.scalarOf(r, x.R.Pos())
	if err != nil {
		return cval{}, err
	}
	var op string
	switch x.Op {
	case token.PLUS:
		op = "+"
	case token.MINUS:
		op = "-"
	case token.STAR:
		op = "*"
	case token.SLASH:
		op = "/"
	case token.PERCENT:
		op = "%"
	case token.EQ:
		op = "="
	case token.NEQ:
		op = "<>"
	case token.LT:
		op = "<"
	case token.LEQ:
		op = "<="
	case token.GT:
		op = ">"
	case token.GEQ:
		op = ">="
	case token.AND:
		op = "AND"
	case token.OR:
		op = "OR"
	default:
		return cval{}, c.errf(x.Pos(), "operator %s is not supported in SQL translation", x.Op)
	}
	return cval{text: "(" + lt + " " + op + " " + rt + ")"}, nil
}

// scalarOf renders a compiled value as a SQL scalar (object values render as
// their id).
func (c *compiler) scalarOf(v cval, pos token.Pos) (string, error) {
	switch {
	case v.set != nil:
		return "", c.errf(pos, "set value used as a scalar")
	case v.alias != "":
		return v.alias + ".id", nil
	case v.isNull:
		return "NULL", nil
	}
	return v.text, nil
}

func (c *compiler) compileCall(x *ast.Call, env *cenv) (cval, error) {
	decl, ok := c.w.FuncDecls[x.Name]
	if !ok {
		return cval{}, c.errf(x.Pos(), "call of unknown function %s", x.Name)
	}
	if len(x.Args) != len(decl.Params) {
		return cval{}, c.errf(x.Pos(), "function %s expects %d arguments, got %d", x.Name, len(decl.Params), len(x.Args))
	}
	if c.depth >= maxInlineDepth {
		return cval{}, c.errf(x.Pos(), "function inlining exceeds depth %d (recursive functions cannot be translated)", maxInlineDepth)
	}
	inner := newCEnv(nil)
	for i, p := range decl.Params {
		av, err := c.compile(x.Args[i], env)
		if err != nil {
			return cval{}, err
		}
		inner.vars[p.Name] = av
	}
	c.depth++
	defer func() { c.depth-- }()
	return c.compile(decl.Body, inner)
}

func (c *compiler) compileAgg(x *ast.Agg, env *cenv) (cval, error) {
	var src *setDesc
	inner := env
	if x.Binder != "" {
		var err error
		src, err = c.compileSet(x.Source, env)
		if err != nil {
			return cval{}, err
		}
		inner = newCEnv(env)
		inner.vars[x.Binder] = cval{alias: src.elemAlias, class: src.elem}
		for _, cond := range x.Conds {
			sql, err := c.compileScalar(cond, inner)
			if err != nil {
				return cval{}, err
			}
			src.conds = append(src.conds, sql)
		}
	} else {
		var err error
		src, err = c.compileSet(x.Value, env)
		if err != nil {
			return cval{}, err
		}
		if x.Kind != ast.AggCount {
			return cval{}, c.errf(x.Pos(), "%s over a bare set is only supported for COUNT", x.Kind)
		}
		return cval{text: c.setQuery(src, "COUNT(*)")}, nil
	}

	if x.Kind == ast.AggCount {
		return cval{text: c.setQuery(src, "COUNT(*)")}, nil
	}
	valSQL, err := c.compileScalar(x.Value, inner)
	if err != nil {
		return cval{}, err
	}
	agg := c.setQuery(src, fmt.Sprintf("%s(%s)", x.Kind, valSQL))
	if x.Kind == ast.AggSum {
		// ASL defines SUM over an empty selection as zero; SQL yields NULL.
		agg = "COALESCE(" + agg + ", 0)"
	}
	return cval{text: agg}, nil
}

func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// CompileAll compiles every property of the world, returning them keyed by
// name. Properties that cannot be translated are reported in the errors map
// rather than failing the whole batch, mirroring COSY's per-property
// fallback to client-side evaluation.
func CompileAll(w *sem.World) (map[string]*CompiledProperty, map[string]error) {
	out := make(map[string]*CompiledProperty)
	errs := make(map[string]error)
	for name := range w.PropDecls {
		cp, err := CompileProperty(w, name)
		if err != nil {
			errs[name] = err
			continue
		}
		out[name] = cp
	}
	return out, errs
}
