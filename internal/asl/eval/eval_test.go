package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asl/object"
	"repro/internal/asl/parser"
	"repro/internal/asl/sem"
)

const testSpec = `
class Run { int NoPe; }
class Timing { Run R; float T; TType Kind; }
class Region { String Name; setof Timing Ts; }
enum TType { Alpha, Beta }

float Threshold = 0.5;

float Total(Region r, Run t) = SUM(x.T WHERE x IN r.Ts AND x.R == t);
Timing Pick(Region r, Run t) = UNIQUE({x IN r.Ts WITH x.R == t});

property Hot(Region r, Run t) {
  LET float Tot = Total(r, t);
  IN
  CONDITION: (big) Tot > Threshold OR (huge) Tot > 10.0;
  CONFIDENCE: MAX((big) -> 0.5, (huge) -> 0.9);
  SEVERITY: MAX((big) -> Tot, (huge) -> Tot * 2.0);
}

property Never(Region r, Run t) {
  CONDITION: Total(r, t) < 0.0;
  CONFIDENCE: 1;
  SEVERITY: 99.0;
}
`

// world builds the test world plus a tiny object graph:
// region with timings 1.0 and 2.0 on run A (NoPe 2), 0.25 on run B (NoPe 4).
func world(t *testing.T) (*sem.World, *Evaluator, map[string]object.Value) {
	t.Helper()
	spec, err := parser.Parse(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sem.Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	store := object.NewStore()
	runA := store.New(w.Classes["Run"])
	runA.Set("NoPe", object.Int(2))
	runB := store.New(w.Classes["Run"])
	runB.Set("NoPe", object.Int(4))
	region := store.New(w.Classes["Region"])
	region.Set("Name", object.Str("main"))
	tt := w.Enums["TType"]
	mk := func(run *object.Object, v float64, kind string) {
		timing := store.New(w.Classes["Timing"])
		timing.Set("R", run)
		timing.Set("T", object.Float(v))
		timing.Set("Kind", object.Enum{Type: tt, Member: kind})
		region.Append("Ts", timing)
	}
	mk(runA, 1.0, "Alpha")
	mk(runA, 2.0, "Beta")
	mk(runB, 0.25, "Alpha")
	ev := New(w)
	return w, ev, map[string]object.Value{"region": region, "runA": runA, "runB": runB}
}

// evalStr evaluates an expression source under the given bindings.
func evalStr(t *testing.T, ev *Evaluator, src string, bind map[string]object.Value) (object.Value, error) {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	env := NewEnv(nil)
	for k, v := range bind {
		env.Bind(k, v)
	}
	return ev.Eval(e, env)
}

func mustEval(t *testing.T, ev *Evaluator, src string, bind map[string]object.Value) object.Value {
	t.Helper()
	v, err := evalStr(t, ev, src, bind)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	_, ev, _ := world(t)
	cases := []struct {
		src  string
		want object.Value
	}{
		{"1 + 2 * 3", object.Int(7)},
		{"(1 + 2) * 3", object.Int(9)},
		{"10 / 4", object.Float(2.5)},
		{"7 % 3", object.Int(1)},
		{"1.5 + 1", object.Float(2.5)},
		{"-5 + 2", object.Int(-3)},
		{"2 < 3", object.Bool(true)},
		{"2 >= 3", object.Bool(false)},
		{"1 == 1.0", object.Bool(true)},
		{"true AND false", object.Bool(false)},
		{"true OR false", object.Bool(true)},
		{"NOT true", object.Bool(false)},
		{`"a" + "b"`, object.Str("ab")},
		{`"a" < "b"`, object.Bool(true)},
		{"null == null", object.Bool(true)},
		{"MAX(1, 5, 3)", object.Int(5)},
		{"MIN(2.5, 1.0)", object.Float(1)},
	}
	for _, c := range cases {
		got := mustEval(t, ev, c.src, nil)
		if !object.Equal(got, c.want) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	_, ev, bind := world(t)
	// The right operand would fail (attribute on int); AND must not reach it.
	if v := mustEval(t, ev, "false AND runA.NoPe.Bogus > 0", bind); v != object.Bool(false) {
		t.Fatalf("got %s", v)
	}
	if v := mustEval(t, ev, "true OR runA.NoPe.Bogus > 0", bind); v != object.Bool(true) {
		t.Fatalf("got %s", v)
	}
}

func TestErrors(t *testing.T) {
	_, ev, bind := world(t)
	cases := []struct{ src, frag string }{
		{"1 / 0", "division by zero"},
		{"1 % 0", "modulo by zero"},
		{"1 + true", "operator"},
		{"undefined_name", "undefined identifier"},
		{"runA.Bogus.X", "attribute"},
		{"UNIQUE({x IN region.Ts WITH x.T > 100.0})", "empty set"},
		{"UNIQUE({x IN region.Ts WITH x.T > 0.0})", "3 elements"},
		{"MIN(x.T WHERE x IN region.Ts AND x.T > 100.0)", "empty selection"},
		{"-true", "unary"},
		{"NOT 1", "NOT on"},
		{`"a" < 1`, "operator"},
	}
	for _, c := range cases {
		_, err := evalStr(t, ev, c.src, bind)
		if err == nil {
			t.Errorf("%s: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q lacks %q", c.src, err, c.frag)
		}
	}
}

func TestComprehensionAndAggregates(t *testing.T) {
	_, ev, bind := world(t)
	cases := []struct {
		src  string
		want object.Value
	}{
		{"SUM(x.T WHERE x IN region.Ts AND x.R == runA)", object.Float(3.0)},
		{"SUM(x.T WHERE x IN region.Ts AND x.R == runB)", object.Float(0.25)},
		{"SUM(x.T WHERE x IN region.Ts AND x.R == runA AND x.Kind == Beta)", object.Float(2.0)},
		{"SUM(x.T WHERE x IN region.Ts AND x.T > 100.0)", object.Float(0)}, // empty: zero
		{"COUNT(region.Ts)", object.Int(3)},
		{"COUNT(x.T WHERE x IN region.Ts AND x.R == runA)", object.Int(2)},
		{"MIN(x.T WHERE x IN region.Ts)", object.Float(0.25)},
		{"MAX(x.T WHERE x IN region.Ts)", object.Float(2.0)},
		{"AVG(x.T WHERE x IN region.Ts AND x.R == runA)", object.Float(1.5)},
		{"MIN(x.R.NoPe WHERE x IN region.Ts)", object.Int(2)},
		{"UNIQUE({x IN region.Ts WITH x.R == runB}).T", object.Float(0.25)},
	}
	for _, c := range cases {
		got := mustEval(t, ev, c.src, bind)
		if !object.Equal(got, c.want) {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestFunctions(t *testing.T) {
	_, ev, bind := world(t)
	v, err := ev.CallFunc("Total", bind["region"], bind["runA"])
	if err != nil {
		t.Fatal(err)
	}
	if !object.Equal(v, object.Float(3.0)) {
		t.Fatalf("Total = %s", v)
	}
	if _, err := ev.CallFunc("Total", bind["region"]); err == nil {
		t.Fatal("arity error expected")
	}
	if _, err := ev.CallFunc("Nope"); err == nil {
		t.Fatal("unknown function expected")
	}
}

func TestPropertySemantics(t *testing.T) {
	_, ev, bind := world(t)
	// Run A: Tot = 3.0 > 0.5 (big) but not > 10 (huge).
	res, err := ev.EvalProperty("Hot", bind["region"], bind["runA"])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatal("Hot must hold for run A")
	}
	if res.Confidence != 0.5 {
		t.Errorf("confidence = %g, want 0.5 (huge guard must not apply)", res.Confidence)
	}
	if res.Severity != 3.0 {
		t.Errorf("severity = %g, want 3.0", res.Severity)
	}
	if len(res.Conditions) != 2 || res.Conditions[0].Label != "big" || !res.Conditions[0].Value || res.Conditions[1].Value {
		t.Errorf("conditions: %+v", res.Conditions)
	}

	// Run B: Tot = 0.25 < 0.5: property does not hold; severity zero.
	res, err = ev.EvalProperty("Hot", bind["region"], bind["runB"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds || res.Severity != 0 || res.Confidence != 0 {
		t.Fatalf("run B: %+v", res)
	}

	// Never: condition is false everywhere.
	res, err = ev.EvalProperty("Never", bind["region"], bind["runA"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("Never must not hold")
	}
}

func TestPropertyErrors(t *testing.T) {
	_, ev, bind := world(t)
	if _, err := ev.EvalProperty("Unknown", bind["region"], bind["runA"]); err == nil {
		t.Fatal("unknown property expected error")
	}
	if _, err := ev.EvalProperty("Hot", bind["region"]); err == nil {
		t.Fatal("arity error expected")
	}
}

func TestConstOverride(t *testing.T) {
	_, ev, bind := world(t)
	ev.SetConst("Threshold", object.Float(5.0))
	res, err := ev.EvalProperty("Hot", bind["region"], bind["runA"])
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("Hot must not hold with Threshold=5 (Tot=3)")
	}
}

func TestRecursionLimit(t *testing.T) {
	spec, err := parser.Parse(`float Loop(int n) = Loop(n);`)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sem.Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(w)
	if _, err := ev.CallFunc("Loop", object.Int(1)); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("want depth error, got %v", err)
	}
}

func TestOverflowIsError(t *testing.T) {
	_, ev, _ := world(t)
	if _, err := evalStr(t, ev, "1e308 * 1e308", nil); err == nil {
		t.Fatal("overflow must be an error")
	}
}

// TestQuickArithmeticMatchesGo drives random integer expressions through the
// evaluator and compares against direct Go computation.
func TestQuickArithmeticMatchesGo(t *testing.T) {
	_, ev, _ := world(t)
	f := func(a, b int16, c uint8) bool {
		env := NewEnv(nil)
		env.Bind("a", object.Int(int64(a)))
		env.Bind("b", object.Int(int64(b)))
		env.Bind("c", object.Int(int64(c%7)+1))
		e, err := parser.ParseExpr("(a + b) * 2 - a % c")
		if err != nil {
			return false
		}
		got, err := ev.Eval(e, env)
		if err != nil {
			return false
		}
		want := (int64(a)+int64(b))*2 - int64(a)%(int64(c%7)+1)
		return object.Equal(got, object.Int(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSumMatchesGo checks SUM over randomized object sets.
func TestQuickSumMatchesGo(t *testing.T) {
	spec, err := parser.Parse(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	w, err := sem.Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals []float32) bool {
		store := object.NewStore()
		run := store.New(w.Classes["Run"])
		region := store.New(w.Classes["Region"])
		region.Set("Name", object.Str("r"))
		want := 0.0
		for _, v := range vals {
			fv := float64(v)
			if math.IsNaN(fv) || math.IsInf(fv, 0) {
				continue
			}
			timing := store.New(w.Classes["Timing"])
			timing.Set("R", run)
			timing.Set("T", object.Float(fv))
			region.Append("Ts", timing)
			want += fv
		}
		ev := New(w)
		env := NewEnv(nil)
		env.Bind("region", region)
		e, err := parser.ParseExpr("SUM(x.T WHERE x IN region.Ts)")
		if err != nil {
			return false
		}
		got, err := ev.Eval(e, env)
		if err != nil {
			return false
		}
		gf, _ := object.AsFloat(got)
		return math.Abs(gf-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvShadowing(t *testing.T) {
	outer := NewEnv(nil)
	outer.Bind("x", object.Int(1))
	inner := NewEnv(outer)
	inner.Bind("x", object.Int(2))
	if v, _ := inner.Lookup("x"); !object.Equal(v, object.Int(2)) {
		t.Fatal("inner binding must shadow outer")
	}
	if v, _ := outer.Lookup("x"); !object.Equal(v, object.Int(1)) {
		t.Fatal("outer binding clobbered")
	}
	if _, ok := inner.Lookup("y"); ok {
		t.Fatal("unbound name found")
	}
}

func TestDateTimeComparison(t *testing.T) {
	_, ev, _ := world(t)
	v := mustEval(t, ev, "@1999-12-17T10:30:00@ < @1999-12-18T00:00:00@", nil)
	if v != object.Bool(true) {
		t.Fatalf("got %s", v)
	}
}
