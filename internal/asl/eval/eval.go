// Package eval implements the reference interpreter for ASL: expressions,
// auxiliary functions, and performance properties are evaluated directly
// over the runtime object graph. This is the "client-side evaluation" path
// of the paper's Section 5; the SQL path in asl/sqlgen must agree with it.
package eval

import (
	"fmt"
	"math"

	"repro/internal/asl/ast"
	"repro/internal/asl/object"
	"repro/internal/asl/sem"
	"repro/internal/asl/token"
)

// Error is an evaluation error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Pos.Valid() {
		return fmt.Sprintf("asl eval: %s: %s", e.Pos, e.Msg)
	}
	return "asl eval: " + e.Msg
}

func errf(pos token.Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// maxCallDepth bounds user-function recursion.
const maxCallDepth = 64

// Env is a lexical environment binding names to runtime values.
type Env struct {
	parent *Env
	vars   map[string]object.Value
}

// NewEnv returns an environment with the given parent (which may be nil).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]object.Value)}
}

// Bind sets a name in this scope.
func (e *Env) Bind(name string, v object.Value) { e.vars[name] = v }

// Lookup finds a name in this scope or any ancestor.
func (e *Env) Lookup(name string) (object.Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// ConditionResult records the outcome of one CONDITION alternative.
type ConditionResult struct {
	Label string
	Value bool
}

// PropertyResult is the outcome of evaluating one property instance.
type PropertyResult struct {
	Property string
	// Args are the actual parameters defining the property context.
	Args []object.Value
	// Holds reports whether any condition was true.
	Holds bool
	// Confidence in [0,1]; zero when the property does not hold.
	Confidence float64
	// Severity; zero when the property does not hold. A property with
	// severity above the analysis threshold is a performance problem.
	Severity   float64
	Conditions []ConditionResult
}

// Evaluator interprets ASL over an object graph.
type Evaluator struct {
	world  *sem.World
	consts map[string]object.Value
	depth  int
}

// New returns an evaluator for the checked world.
func New(w *sem.World) *Evaluator {
	return &Evaluator{world: w, consts: make(map[string]object.Value)}
}

// World returns the world the evaluator operates on.
func (ev *Evaluator) World() *sem.World { return ev.world }

// SetConst overrides a specification constant (e.g. ImbalanceThreshold) at
// analysis time, mirroring the paper's "user- or tool-defined threshold".
func (ev *Evaluator) SetConst(name string, v object.Value) { ev.consts[name] = v }

// constValue resolves a specification constant, caching the result.
func (ev *Evaluator) constValue(name string) (object.Value, bool, error) {
	if v, ok := ev.consts[name]; ok {
		return v, true, nil
	}
	decl, ok := ev.world.ConstDecls[name]
	if !ok {
		return nil, false, nil
	}
	v, err := ev.Eval(decl.Value, NewEnv(nil))
	if err != nil {
		return nil, false, err
	}
	ev.consts[name] = v
	return v, true, nil
}

// EvalProperty evaluates the named property for the given actual parameters
// and returns its full result.
func (ev *Evaluator) EvalProperty(name string, args ...object.Value) (*PropertyResult, error) {
	decl, ok := ev.world.PropDecls[name]
	if !ok {
		return nil, errf(token.Pos{}, "unknown property %s", name)
	}
	if len(args) != len(decl.Params) {
		return nil, errf(decl.Pos(), "property %s expects %d arguments, got %d", name, len(decl.Params), len(args))
	}
	env := NewEnv(nil)
	for i, p := range decl.Params {
		env.Bind(p.Name, args[i])
	}
	for _, l := range decl.Lets {
		v, err := ev.Eval(l.Value, env)
		if err != nil {
			return nil, err
		}
		env.Bind(l.Name, v)
	}

	res := &PropertyResult{Property: name, Args: args}
	condByLabel := make(map[string]bool)
	for _, c := range decl.Conditions {
		v, err := ev.Eval(c.Expr, env)
		if err != nil {
			return nil, err
		}
		b, ok := v.(object.Bool)
		if !ok {
			return nil, errf(c.Expr.Pos(), "condition evaluated to %s, want Bool", v.TypeName())
		}
		res.Conditions = append(res.Conditions, ConditionResult{Label: c.Label, Value: bool(b)})
		if c.Label != "" {
			condByLabel[c.Label] = bool(b)
		}
		res.Holds = res.Holds || bool(b)
	}
	if !res.Holds {
		return res, nil
	}

	evalGuarded := func(gs []ast.Guarded) (float64, error) {
		best := 0.0
		for _, g := range gs {
			if g.Guard != "" && !condByLabel[g.Guard] {
				continue
			}
			v, err := ev.Eval(g.Expr, env)
			if err != nil {
				return 0, err
			}
			f, ok := object.AsFloat(v)
			if !ok {
				return 0, errf(g.Expr.Pos(), "expression evaluated to %s, want numeric", v.TypeName())
			}
			if f > best {
				best = f
			}
		}
		return best, nil
	}
	var err error
	if res.Confidence, err = evalGuarded(decl.Confidence); err != nil {
		return nil, err
	}
	if res.Severity, err = evalGuarded(decl.Severity); err != nil {
		return nil, err
	}
	return res, nil
}

// CallFunc invokes a declared ASL function with the given arguments.
func (ev *Evaluator) CallFunc(name string, args ...object.Value) (object.Value, error) {
	decl, ok := ev.world.FuncDecls[name]
	if !ok {
		return nil, errf(token.Pos{}, "unknown function %s", name)
	}
	if len(args) != len(decl.Params) {
		return nil, errf(decl.Pos(), "function %s expects %d arguments, got %d", name, len(decl.Params), len(args))
	}
	if ev.depth >= maxCallDepth {
		return nil, errf(decl.Pos(), "function %s: call depth exceeds %d", name, maxCallDepth)
	}
	env := NewEnv(nil)
	for i, p := range decl.Params {
		env.Bind(p.Name, args[i])
	}
	ev.depth++
	defer func() { ev.depth-- }()
	return ev.Eval(decl.Body, env)
}

// Eval evaluates an expression in the given environment.
func (ev *Evaluator) Eval(e ast.Expr, env *Env) (object.Value, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return object.Int(x.Value), nil
	case *ast.FloatLit:
		return object.Float(x.Value), nil
	case *ast.StringLit:
		return object.Str(x.Value), nil
	case *ast.BoolLit:
		return object.Bool(x.Value), nil
	case *ast.NullLit:
		return object.Null{}, nil
	case *ast.DateTimeLit:
		return object.DateTime(x.Value), nil
	case *ast.Ident:
		if v, ok := env.Lookup(x.Name); ok {
			return v, nil
		}
		if v, ok, err := ev.constValue(x.Name); err != nil {
			return nil, err
		} else if ok {
			return v, nil
		}
		if enum, ok := ev.world.EnumMembers[x.Name]; ok {
			return object.Enum{Type: enum, Member: x.Name}, nil
		}
		return nil, errf(x.Pos(), "undefined identifier %s", x.Name)
	case *ast.Member:
		recv, err := ev.Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		obj, ok := recv.(*object.Object)
		if !ok {
			return nil, errf(x.Pos(), "attribute .%s on %s value", x.Name, recv.TypeName())
		}
		if obj == nil {
			return nil, errf(x.Pos(), "attribute .%s on null object", x.Name)
		}
		return obj.Get(x.Name), nil
	case *ast.Unary:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		if x.Op == token.MINUS {
			switch n := v.(type) {
			case object.Int:
				return object.Int(-n), nil
			case object.Float:
				return object.Float(-n), nil
			}
			return nil, errf(x.Pos(), "unary - on %s value", v.TypeName())
		}
		b, ok := v.(object.Bool)
		if !ok {
			return nil, errf(x.Pos(), "NOT on %s value", v.TypeName())
		}
		return object.Bool(!b), nil
	case *ast.Binary:
		return ev.evalBinary(x, env)
	case *ast.Call:
		args := make([]object.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ev.Eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return ev.CallFunc(x.Name, args...)
	case *ast.SetCompr:
		src, err := ev.evalSet(x.Source, env)
		if err != nil {
			return nil, err
		}
		out := &object.Set{}
		inner := NewEnv(env)
		for _, elem := range src.Elems {
			inner.Bind(x.Var, elem)
			if x.Cond != nil {
				cv, err := ev.Eval(x.Cond, inner)
				if err != nil {
					return nil, err
				}
				cb, ok := cv.(object.Bool)
				if !ok {
					return nil, errf(x.Cond.Pos(), "WITH condition evaluated to %s, want Bool", cv.TypeName())
				}
				if !cb {
					continue
				}
			}
			out.Elems = append(out.Elems, elem)
		}
		return out, nil
	case *ast.Unique:
		set, err := ev.evalSet(x.Set, env)
		if err != nil {
			return nil, err
		}
		switch len(set.Elems) {
		case 1:
			return set.Elems[0], nil
		case 0:
			return nil, errf(x.Pos(), "UNIQUE over empty set")
		default:
			return nil, errf(x.Pos(), "UNIQUE over set of %d elements", len(set.Elems))
		}
	case *ast.NAry:
		return ev.evalNAry(x, env)
	case *ast.Agg:
		return ev.evalAgg(x, env)
	}
	return nil, errf(e.Pos(), "internal: unhandled expression %T", e)
}

func (ev *Evaluator) evalSet(e ast.Expr, env *Env) (*object.Set, error) {
	v, err := ev.Eval(e, env)
	if err != nil {
		return nil, err
	}
	set, ok := v.(*object.Set)
	if !ok {
		return nil, errf(e.Pos(), "expected a set, found %s", v.TypeName())
	}
	return set, nil
}

func (ev *Evaluator) evalNAry(x *ast.NAry, env *Env) (object.Value, error) {
	if x.Kind != ast.AggMax && x.Kind != ast.AggMin {
		return nil, errf(x.Pos(), "%s does not take an argument list", x.Kind)
	}
	var best float64
	isFloat := false
	for i, a := range x.Args {
		v, err := ev.Eval(a, env)
		if err != nil {
			return nil, err
		}
		f, ok := object.AsFloat(v)
		if !ok {
			return nil, errf(a.Pos(), "%s argument evaluated to %s, want numeric", x.Kind, v.TypeName())
		}
		if _, fl := v.(object.Float); fl {
			isFloat = true
		}
		if i == 0 || (x.Kind == ast.AggMax && f > best) || (x.Kind == ast.AggMin && f < best) {
			best = f
		}
	}
	if isFloat {
		return object.Float(best), nil
	}
	return object.Int(int64(best)), nil
}

// evalAgg evaluates quantified aggregates. Over an empty selection SUM and
// COUNT return zero; MIN, MAX and AVG are errors (the relational engine
// would return NULL, and the analysis layer treats both identically).
func (ev *Evaluator) evalAgg(x *ast.Agg, env *Env) (object.Value, error) {
	var values []object.Value
	if x.Binder == "" {
		set, err := ev.evalSet(x.Value, env)
		if err != nil {
			return nil, err
		}
		values = set.Elems
	} else {
		src, err := ev.evalSet(x.Source, env)
		if err != nil {
			return nil, err
		}
		inner := NewEnv(env)
		for _, elem := range src.Elems {
			inner.Bind(x.Binder, elem)
			keep := true
			for _, cond := range x.Conds {
				cv, err := ev.Eval(cond, inner)
				if err != nil {
					return nil, err
				}
				cb, ok := cv.(object.Bool)
				if !ok {
					return nil, errf(cond.Pos(), "filter evaluated to %s, want Bool", cv.TypeName())
				}
				if !cb {
					keep = false
					break
				}
			}
			if !keep {
				continue
			}
			v, err := ev.Eval(x.Value, inner)
			if err != nil {
				return nil, err
			}
			values = append(values, v)
		}
	}

	if x.Kind == ast.AggCount {
		return object.Int(int64(len(values))), nil
	}

	if len(values) == 0 {
		if x.Kind == ast.AggSum {
			if t, ok := ev.world.Types[x]; ok && sem.Identical(t, sem.IntType) {
				return object.Int(0), nil
			}
			return object.Float(0), nil
		}
		return nil, errf(x.Pos(), "%s over empty selection", x.Kind)
	}

	sum := 0.0
	best := 0.0
	allInt := true
	for i, v := range values {
		f, ok := object.AsFloat(v)
		if !ok {
			return nil, errf(x.Value.Pos(), "%s element evaluated to %s, want numeric", x.Kind, v.TypeName())
		}
		if _, isInt := v.(object.Int); !isInt {
			allInt = false
		}
		sum += f
		if i == 0 || (x.Kind == ast.AggMax && f > best) || (x.Kind == ast.AggMin && f < best) {
			best = f
		}
	}
	switch x.Kind {
	case ast.AggSum:
		if allInt {
			return object.Int(int64(sum)), nil
		}
		return object.Float(sum), nil
	case ast.AggAvg:
		return object.Float(sum / float64(len(values))), nil
	case ast.AggMax, ast.AggMin:
		if allInt {
			return object.Int(int64(best)), nil
		}
		return object.Float(best), nil
	}
	return nil, errf(x.Pos(), "internal: unhandled aggregate %s", x.Kind)
}

func (ev *Evaluator) evalBinary(x *ast.Binary, env *Env) (object.Value, error) {
	// AND/OR short-circuit.
	if x.Op == token.AND || x.Op == token.OR {
		lv, err := ev.Eval(x.L, env)
		if err != nil {
			return nil, err
		}
		lb, ok := lv.(object.Bool)
		if !ok {
			return nil, errf(x.L.Pos(), "operator %s on %s value", x.Op, lv.TypeName())
		}
		if x.Op == token.AND && !lb {
			return object.Bool(false), nil
		}
		if x.Op == token.OR && bool(lb) {
			return object.Bool(true), nil
		}
		rv, err := ev.Eval(x.R, env)
		if err != nil {
			return nil, err
		}
		rb, ok := rv.(object.Bool)
		if !ok {
			return nil, errf(x.R.Pos(), "operator %s on %s value", x.Op, rv.TypeName())
		}
		return rb, nil
	}

	lv, err := ev.Eval(x.L, env)
	if err != nil {
		return nil, err
	}
	rv, err := ev.Eval(x.R, env)
	if err != nil {
		return nil, err
	}

	switch x.Op {
	case token.EQ:
		return object.Bool(object.Equal(lv, rv)), nil
	case token.NEQ:
		return object.Bool(!object.Equal(lv, rv)), nil
	case token.LT, token.LEQ, token.GT, token.GEQ:
		cmp, err := compare(x, lv, rv)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case token.LT:
			return object.Bool(cmp < 0), nil
		case token.LEQ:
			return object.Bool(cmp <= 0), nil
		case token.GT:
			return object.Bool(cmp > 0), nil
		default:
			return object.Bool(cmp >= 0), nil
		}
	case token.PLUS:
		if ls, ok := lv.(object.Str); ok {
			rs, ok := rv.(object.Str)
			if !ok {
				return nil, errf(x.Pos(), "operator + on String and %s", rv.TypeName())
			}
			return ls + rs, nil
		}
		fallthrough
	case token.MINUS, token.STAR, token.SLASH, token.PERCENT:
		return arith(x, lv, rv)
	}
	return nil, errf(x.Pos(), "internal: unhandled binary operator %s", x.Op)
}

// compare returns -1, 0, or +1 for ordered values.
func compare(x *ast.Binary, lv, rv object.Value) (int, error) {
	if lf, ok := object.AsFloat(lv); ok {
		rf, ok := object.AsFloat(rv)
		if !ok {
			return 0, errf(x.Pos(), "operator %s on %s and %s", x.Op, lv.TypeName(), rv.TypeName())
		}
		switch {
		case lf < rf:
			return -1, nil
		case lf > rf:
			return 1, nil
		}
		return 0, nil
	}
	switch l := lv.(type) {
	case object.Str:
		r, ok := rv.(object.Str)
		if !ok {
			break
		}
		switch {
		case l < r:
			return -1, nil
		case l > r:
			return 1, nil
		}
		return 0, nil
	case object.DateTime:
		r, ok := rv.(object.DateTime)
		if !ok {
			break
		}
		switch {
		case l < r:
			return -1, nil
		case l > r:
			return 1, nil
		}
		return 0, nil
	}
	return 0, errf(x.Pos(), "operator %s on %s and %s", x.Op, lv.TypeName(), rv.TypeName())
}

func arith(x *ast.Binary, lv, rv object.Value) (object.Value, error) {
	li, lIsInt := lv.(object.Int)
	ri, rIsInt := rv.(object.Int)

	if x.Op == token.PERCENT {
		if !lIsInt || !rIsInt {
			return nil, errf(x.Pos(), "operator %% on %s and %s", lv.TypeName(), rv.TypeName())
		}
		if ri == 0 {
			return nil, errf(x.Pos(), "modulo by zero")
		}
		return li % ri, nil
	}

	lf, lok := object.AsFloat(lv)
	rf, rok := object.AsFloat(rv)
	if !lok || !rok {
		return nil, errf(x.Pos(), "operator %s on %s and %s", x.Op, lv.TypeName(), rv.TypeName())
	}

	if lIsInt && rIsInt && x.Op != token.SLASH {
		switch x.Op {
		case token.PLUS:
			return li + ri, nil
		case token.MINUS:
			return li - ri, nil
		case token.STAR:
			return li * ri, nil
		}
	}
	var f float64
	switch x.Op {
	case token.PLUS:
		f = lf + rf
	case token.MINUS:
		f = lf - rf
	case token.STAR:
		f = lf * rf
	case token.SLASH:
		if rf == 0 {
			return nil, errf(x.Pos(), "division by zero")
		}
		f = lf / rf
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, errf(x.Pos(), "arithmetic overflow in operator %s", x.Op)
	}
	return object.Float(f), nil
}
