package ast_test

import (
	"strings"
	"testing"

	"repro/internal/asl/ast"
	"repro/internal/asl/parser"
	"repro/internal/asl/token"
	"repro/internal/model"
)

// TestPrintRoundTripsCanonicalSpec is the printer's core contract: Print
// renders re-lexable, re-parsable source, and printing the re-parse
// reproduces the first rendering exactly (a fixed point after one pass).
func TestPrintRoundTripsCanonicalSpec(t *testing.T) {
	spec, err := parser.Parse(model.SpecSource)
	if err != nil {
		t.Fatal(err)
	}
	first := ast.Print(spec)
	respec, err := parser.Parse(first)
	if err != nil {
		t.Fatalf("printed canonical spec does not re-parse: %v\n%s", err, first)
	}
	second := ast.Print(respec)
	if first != second {
		t.Errorf("Print is not a fixed point:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if len(respec.Decls) != len(spec.Decls) {
		t.Errorf("re-parse has %d decls, want %d", len(respec.Decls), len(spec.Decls))
	}
}

func TestPrintRendersEveryDeclKind(t *testing.T) {
	const src = `
class Region extends Node {
  String Name;
  setof Timing TotTimes;
}
enum RegionKind { PROGRAM, LOOP, SUBROUTINE }
float half(float x) = x / 2;
float ImbalanceThreshold = 0.25;
property SyncCost(Region r, TestRun t, Region Basis) {
  LET
    float cost = half(r.Duration);
  IN
  CONDITION: (hasSync) cost > 0;
  CONFIDENCE: 1;
  SEVERITY: (hasSync) -> cost / Basis.Duration;
}
`
	spec, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := ast.Print(spec)
	for _, want := range []string{
		"class Region extends Node {",
		"setof Timing TotTimes;",
		"enum RegionKind { PROGRAM, LOOP, SUBROUTINE }",
		"float half(float x) = (x / 2);",
		"float ImbalanceThreshold = 0.25;",
		"property SyncCost(Region r, TestRun t, Region Basis) {",
		"LET",
		"CONDITION: (hasSync) (cost > 0);",
		"SEVERITY: (hasSync) -> (cost / Basis.Duration);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed spec missing %q:\n%s", want, out)
		}
	}
	reparsed, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("printed spec does not re-parse: %v\n%s", err, out)
	}
	if ast.Print(reparsed) != out {
		t.Error("Print is not a fixed point for the mixed-decl spec")
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		expr ast.Expr
		want string
	}{
		{&ast.Ident{Name: "r"}, "r"},
		{&ast.IntLit{Value: 42}, "42"},
		{&ast.FloatLit{Value: 3.14}, "3.14"},
		{&ast.StringLit{Value: "sweep3d"}, `"sweep3d"`},
		{&ast.BoolLit{Value: true}, "true"},
		{&ast.BoolLit{}, "false"},
		{&ast.NullLit{}, "null"},
		{
			&ast.Binary{Op: token.PLUS, L: &ast.Ident{Name: "a"}, R: &ast.IntLit{Value: 1}},
			"(a + 1)",
		},
		{
			&ast.Binary{Op: token.AND, L: &ast.BoolLit{Value: true}, R: &ast.BoolLit{}},
			"(true AND false)",
		},
		{&ast.Unary{Op: token.MINUS, X: &ast.Ident{Name: "x"}}, "(-x)"},
		{&ast.Unary{Op: token.NOTKW, X: &ast.Ident{Name: "b"}}, "(NOT b)"},
		{&ast.Member{X: &ast.Ident{Name: "r"}, Name: "Duration"}, "r.Duration"},
		{
			&ast.Call{Name: "half", Args: []ast.Expr{&ast.Ident{Name: "x"}}},
			"half(x)",
		},
		{nil, "<nil>"},
	}
	for _, tc := range cases {
		if got := ast.ExprString(tc.expr); got != tc.want {
			t.Errorf("ExprString = %q, want %q", got, tc.want)
		}
	}
}

// Expressions printed by ExprString must parse back to the same rendering.
func TestExprStringReparses(t *testing.T) {
	exprs := []string{
		"((r.Duration + 1) * 2)",
		"(NOT (a AND (b OR c)))",
		"(AVG(p.Excl WHERE p IN r.TotTimes) / Basis.Duration)",
		"UNIQUE({v IN t.Values WITH (v > 0)})",
	}
	for _, src := range exprs {
		spec, err := parser.Parse("float f(Region r, TestRun t, Region Basis) = " + src + ";")
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		fd, ok := spec.Decls[0].(*ast.FuncDecl)
		if !ok {
			t.Errorf("%s: parsed to %T", src, spec.Decls[0])
			continue
		}
		if got := ast.ExprString(fd.Body); got != src {
			t.Errorf("round trip changed %q to %q", src, got)
		}
	}
}
