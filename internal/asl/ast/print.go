package ast

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asl/token"
)

// Print renders a specification back to canonical ASL source. The output
// round-trips through the parser (used by the golden grammar tests).
func Print(s *Spec) string {
	var b strings.Builder
	for i, d := range s.Decls {
		if i > 0 {
			b.WriteString("\n")
		}
		printDecl(&b, d)
	}
	return b.String()
}

func printDecl(b *strings.Builder, d Decl) {
	switch x := d.(type) {
	case *ClassDecl:
		fmt.Fprintf(b, "class %s", x.Name)
		if x.Extends != "" {
			fmt.Fprintf(b, " extends %s", x.Extends)
		}
		b.WriteString(" {\n")
		for _, a := range x.Attrs {
			fmt.Fprintf(b, "  %s %s;\n", a.Type, a.Name)
		}
		b.WriteString("}\n")
	case *EnumDecl:
		fmt.Fprintf(b, "enum %s { %s }\n", x.Name, strings.Join(x.Members, ", "))
	case *FuncDecl:
		fmt.Fprintf(b, "%s %s(%s) = %s;\n", x.RetType, x.Name, printParams(x.Params), ExprString(x.Body))
	case *ConstDecl:
		fmt.Fprintf(b, "%s %s = %s;\n", x.Type, x.Name, ExprString(x.Value))
	case *PropertyDecl:
		fmt.Fprintf(b, "property %s(%s) {\n", x.Name, printParams(x.Params))
		if len(x.Lets) > 0 {
			b.WriteString("  LET\n")
			for _, l := range x.Lets {
				fmt.Fprintf(b, "    %s %s = %s;\n", l.Type, l.Name, ExprString(l.Value))
			}
			b.WriteString("  IN\n")
		}
		b.WriteString("  CONDITION: ")
		for i, c := range x.Conditions {
			if i > 0 {
				b.WriteString(" OR ")
			}
			if c.Label != "" {
				fmt.Fprintf(b, "(%s) ", c.Label)
			}
			b.WriteString(ExprString(c.Expr))
		}
		b.WriteString(";\n")
		printGuardedClause(b, "CONFIDENCE", x.Confidence, x.ConfidenceMax)
		printGuardedClause(b, "SEVERITY", x.Severity, x.SeverityMax)
		b.WriteString("}\n")
	}
}

func printGuardedClause(b *strings.Builder, kw string, gs []Guarded, isMax bool) {
	fmt.Fprintf(b, "  %s: ", kw)
	if isMax {
		b.WriteString("MAX(")
	}
	for i, g := range gs {
		if i > 0 {
			b.WriteString(", ")
		}
		if g.Guard != "" {
			fmt.Fprintf(b, "(%s) -> ", g.Guard)
		}
		b.WriteString(ExprString(g.Expr))
	}
	if isMax {
		b.WriteString(")")
	}
	b.WriteString(";\n")
}

func printParams(ps []Param) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%s %s", p.Type, p.Name)
	}
	return strings.Join(parts, ", ")
}

// ExprString renders an expression in canonical source form with minimal
// parentheses (fully parenthesized binary operations, which keeps the
// renderer trivially correct for round-trip tests).
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return "<nil>"
	case *Ident:
		return x.Name
	case *IntLit:
		return strconv.FormatInt(x.Value, 10)
	case *FloatLit:
		return strconv.FormatFloat(x.Value, 'g', -1, 64)
	case *StringLit:
		return strconv.Quote(x.Value)
	case *BoolLit:
		if x.Value {
			return "true"
		}
		return "false"
	case *NullLit:
		return "null"
	case *DateTimeLit:
		return "@" + x.Raw + "@"
	case *Binary:
		return "(" + ExprString(x.L) + " " + binOpString(x.Op) + " " + ExprString(x.R) + ")"
	case *Unary:
		if x.Op == token.MINUS {
			return "(-" + ExprString(x.X) + ")"
		}
		return "(NOT " + ExprString(x.X) + ")"
	case *Member:
		return ExprString(x.X) + "." + x.Name
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *Agg:
		s := x.Kind.String() + "(" + ExprString(x.Value)
		if x.Binder != "" {
			s += " WHERE " + x.Binder + " IN " + ExprString(x.Source)
			for _, c := range x.Conds {
				s += " AND " + ExprString(c)
			}
		}
		return s + ")"
	case *NAry:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return x.Kind.String() + "(" + strings.Join(args, ", ") + ")"
	case *Unique:
		return "UNIQUE(" + ExprString(x.Set) + ")"
	case *SetCompr:
		s := "{" + x.Var + " IN " + ExprString(x.Source)
		if x.Cond != nil {
			s += " WITH " + ExprString(x.Cond)
		}
		return s + "}"
	}
	return fmt.Sprintf("<unknown expr %T>", e)
}

func binOpString(k token.Kind) string {
	switch k {
	case token.AND:
		return "AND"
	case token.OR:
		return "OR"
	default:
		return k.String()
	}
}
