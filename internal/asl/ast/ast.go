// Package ast defines the abstract syntax tree for the APART Specification
// Language: the object-oriented data-model declarations of Section 4.1 of the
// paper and the property-specification grammar of Figure 1.
package ast

import (
	"fmt"
	"strings"

	"repro/internal/asl/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

// TypeRef is a syntactic type reference: a named type optionally wrapped in
// one or more "setof" constructors ("setof TotalTiming" has SetDepth 1).
type TypeRef struct {
	NamePos  token.Pos
	Name     string // int, float, String, Bool, DateTime, or a class/enum name
	SetDepth int    // number of "setof" wrappers
}

// Pos returns the position of the type name.
func (t TypeRef) Pos() token.Pos { return t.NamePos }

// String renders the type reference in source form.
func (t TypeRef) String() string {
	return strings.Repeat("setof ", t.SetDepth) + t.Name
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

// Spec is a complete ASL specification document: a data-model section and a
// property section, in source order.
type Spec struct {
	Decls []Decl
}

// Classes returns the class declarations in source order.
func (s *Spec) Classes() []*ClassDecl {
	var out []*ClassDecl
	for _, d := range s.Decls {
		if c, ok := d.(*ClassDecl); ok {
			out = append(out, c)
		}
	}
	return out
}

// Enums returns the enum declarations in source order.
func (s *Spec) Enums() []*EnumDecl {
	var out []*EnumDecl
	for _, d := range s.Decls {
		if e, ok := d.(*EnumDecl); ok {
			out = append(out, e)
		}
	}
	return out
}

// Funcs returns the function declarations in source order.
func (s *Spec) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range s.Decls {
		if f, ok := d.(*FuncDecl); ok {
			out = append(out, f)
		}
	}
	return out
}

// Properties returns the property declarations in source order.
func (s *Spec) Properties() []*PropertyDecl {
	var out []*PropertyDecl
	for _, d := range s.Decls {
		if p, ok := d.(*PropertyDecl); ok {
			out = append(out, p)
		}
	}
	return out
}

// Consts returns the constant declarations in source order.
func (s *Spec) Consts() []*ConstDecl {
	var out []*ConstDecl
	for _, d := range s.Decls {
		if c, ok := d.(*ConstDecl); ok {
			out = append(out, c)
		}
	}
	return out
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	decl()
	// DeclName returns the declared name.
	DeclName() string
}

// Attr is an attribute inside a class declaration.
type Attr struct {
	Type TypeRef
	Name string
}

// ClassDecl is "class Name [extends Base] { attrs }".
type ClassDecl struct {
	ClassPos token.Pos
	Name     string
	Extends  string // empty if no base class
	Attrs    []Attr
}

func (d *ClassDecl) decl()            {}
func (d *ClassDecl) Pos() token.Pos   { return d.ClassPos }
func (d *ClassDecl) DeclName() string { return d.Name }

// Attr returns the attribute with the given name declared directly on this
// class, or nil.
func (d *ClassDecl) Attr(name string) *Attr {
	for i := range d.Attrs {
		if d.Attrs[i].Name == name {
			return &d.Attrs[i]
		}
	}
	return nil
}

// EnumDecl is "enum Name { A, B, C }".
type EnumDecl struct {
	EnumPos token.Pos
	Name    string
	Members []string
}

func (d *EnumDecl) decl()            {}
func (d *EnumDecl) Pos() token.Pos   { return d.EnumPos }
func (d *EnumDecl) DeclName() string { return d.Name }

// Param is a formal parameter of a function or property.
type Param struct {
	Type TypeRef
	Name string
}

// FuncDecl is "RetType Name(params) = expr;" — the ASL auxiliary-function
// form used by the paper's Summary and Duration helpers.
type FuncDecl struct {
	RetType TypeRef
	Name    string
	Params  []Param
	Body    Expr
}

func (d *FuncDecl) decl()            {}
func (d *FuncDecl) Pos() token.Pos   { return d.RetType.Pos() }
func (d *FuncDecl) DeclName() string { return d.Name }

// ConstDecl is "Type Name = expr;" at top level with no parameter list, e.g.
// the ImbalanceThreshold the LoadImbalance property refers to.
type ConstDecl struct {
	Type  TypeRef
	Name  string
	Value Expr
}

func (d *ConstDecl) decl()            {}
func (d *ConstDecl) Pos() token.Pos   { return d.Type.Pos() }
func (d *ConstDecl) DeclName() string { return d.Name }

// LetDef is one "Type Name = expr;" binding inside a LET ... IN block.
type LetDef struct {
	Type  TypeRef
	Name  string
	Value Expr
}

// Condition is one alternative of the CONDITION clause, optionally labeled
// with a condition identifier: "(cid) bool-expr".
type Condition struct {
	Label string // empty if unlabeled
	Expr  Expr
}

// Guarded is one entry of a CONFIDENCE or SEVERITY list, optionally guarded
// by a condition identifier: "(cid) -> arith-expr".
type Guarded struct {
	Guard string // empty if unguarded
	Expr  Expr
}

// PropertyDecl is the Figure-1 property production.
type PropertyDecl struct {
	PropPos    token.Pos
	Name       string
	Params     []Param
	Lets       []LetDef
	Conditions []Condition
	// Confidence and Severity hold the (possibly singleton) lists; IsMax
	// records whether the source used the MAX(...) form.
	Confidence    []Guarded
	ConfidenceMax bool
	Severity      []Guarded
	SeverityMax   bool
}

func (d *PropertyDecl) decl()            {}
func (d *PropertyDecl) Pos() token.Pos   { return d.PropPos }
func (d *PropertyDecl) DeclName() string { return d.Name }

// ConditionByLabel returns the labeled condition, or nil.
func (d *PropertyDecl) ConditionByLabel(label string) *Condition {
	for i := range d.Conditions {
		if d.Conditions[i].Label == label {
			return &d.Conditions[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is an ASL expression.
type Expr interface {
	Node
	expr()
}

// Ident is a variable, parameter, constant, or enum-member reference.
type Ident struct {
	IdentPos token.Pos
	Name     string
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos token.Pos
	Value  int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	LitPos token.Pos
	Value  float64
}

// StringLit is a string literal.
type StringLit struct {
	LitPos token.Pos
	Value  string
}

// BoolLit is true or false.
type BoolLit struct {
	LitPos token.Pos
	Value  bool
}

// NullLit is the null object reference.
type NullLit struct {
	LitPos token.Pos
}

// DateTimeLit is an @...@ timestamp literal; Value is seconds since epoch.
type DateTimeLit struct {
	LitPos token.Pos
	Raw    string
	Value  int64
}

// Binary is a binary operation; Op is one of the arithmetic, comparison, or
// logical operator kinds.
type Binary struct {
	Op   token.Kind
	L, R Expr
}

// Unary is unary minus or logical NOT.
type Unary struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

// Member is attribute access "X.Name".
type Member struct {
	X    Expr
	Name string
}

// Call is a call of a user-declared ASL function.
type Call struct {
	CallPos token.Pos
	Name    string
	Args    []Expr
}

// AggKind distinguishes the built-in aggregate operators.
type AggKind int

// Aggregate operators.
const (
	AggSum AggKind = iota
	AggMin
	AggMax
	AggAvg
	AggCount
)

// String returns the source spelling of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	case AggCount:
		return "COUNT"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// Agg is a quantified aggregate in the paper's WHERE-binder form:
//
//	SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t AND tt.Type==Barrier)
//	MIN(s.Run.NoPe WHERE s IN r.TotTimes)
//
// Value is evaluated once per element bound to Binder drawn from Source, with
// the conjunction Conds filtering elements. If Binder is empty the aggregate
// ranges directly over the (numeric or object) set denoted by Value, e.g.
// MAX(someSet).
type Agg struct {
	AggPos token.Pos
	Kind   AggKind
	Value  Expr
	Binder string
	Source Expr
	Conds  []Expr
}

// NAry is MAX/MIN over an explicit scalar argument list: MAX(a, b, c).
type NAry struct {
	AggPos token.Pos
	Kind   AggKind
	Args   []Expr
}

// Unique is UNIQUE(setExpr): the sole member of a singleton set.
type Unique struct {
	UPos token.Pos
	Set  Expr
}

// SetCompr is the set comprehension "{x IN source WITH cond}".
type SetCompr struct {
	LBracePos token.Pos
	Var       string
	Source    Expr
	Cond      Expr // nil means no WITH clause (copy of the source set)
}

func (e *Ident) expr()       {}
func (e *IntLit) expr()      {}
func (e *FloatLit) expr()    {}
func (e *StringLit) expr()   {}
func (e *BoolLit) expr()     {}
func (e *NullLit) expr()     {}
func (e *DateTimeLit) expr() {}
func (e *Binary) expr()      {}
func (e *Unary) expr()       {}
func (e *Member) expr()      {}
func (e *Call) expr()        {}
func (e *Agg) expr()         {}
func (e *NAry) expr()        {}
func (e *Unique) expr()      {}
func (e *SetCompr) expr()    {}

// Pos implementations.
func (e *Ident) Pos() token.Pos       { return e.IdentPos }
func (e *IntLit) Pos() token.Pos      { return e.LitPos }
func (e *FloatLit) Pos() token.Pos    { return e.LitPos }
func (e *StringLit) Pos() token.Pos   { return e.LitPos }
func (e *BoolLit) Pos() token.Pos     { return e.LitPos }
func (e *NullLit) Pos() token.Pos     { return e.LitPos }
func (e *DateTimeLit) Pos() token.Pos { return e.LitPos }
func (e *Binary) Pos() token.Pos      { return e.L.Pos() }
func (e *Unary) Pos() token.Pos       { return e.OpPos }
func (e *Member) Pos() token.Pos      { return e.X.Pos() }
func (e *Call) Pos() token.Pos        { return e.CallPos }
func (e *Agg) Pos() token.Pos         { return e.AggPos }
func (e *NAry) Pos() token.Pos        { return e.AggPos }
func (e *Unique) Pos() token.Pos      { return e.UPos }
func (e *SetCompr) Pos() token.Pos    { return e.LBracePos }

// Walk calls fn for node and every expression reachable from it, pre-order.
// It descends only through expressions; declarations are walked by WalkDecl.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Unary:
		Walk(x.X, fn)
	case *Member:
		Walk(x.X, fn)
	case *Call:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *Agg:
		Walk(x.Value, fn)
		Walk(x.Source, fn)
		for _, c := range x.Conds {
			Walk(c, fn)
		}
	case *NAry:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *Unique:
		Walk(x.Set, fn)
	case *SetCompr:
		Walk(x.Source, fn)
		Walk(x.Cond, fn)
	}
}
