package metrics

import (
	"encoding/json"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestNewHistogramValidatesBounds(t *testing.T) {
	if _, err := NewHistogram(0); err == nil {
		t.Error("zero bound accepted")
	}
	if _, err := NewHistogram(-time.Millisecond); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := NewHistogram(time.Second, time.Millisecond); err == nil {
		t.Error("descending bounds accepted")
	}
	if _, err := NewHistogram(time.Second, time.Second); err == nil {
		t.Error("duplicate bounds accepted")
	}
	if _, err := NewHistogram(); err != nil {
		t.Errorf("default bounds rejected: %v", err)
	}
}

// TestBucketBoundaries: an observation exactly on a bound lands in that
// bound's bucket (bounds are inclusive upper bounds); one nanosecond above
// lands in the next; observations beyond the last bound land in overflow.
func TestBucketBoundaries(t *testing.T) {
	h := MustHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{-time.Second, 0}, // negative clamps to zero
		{time.Millisecond, 0},
		{time.Millisecond + time.Nanosecond, 1},
		{10 * time.Millisecond, 1},
		{10*time.Millisecond + time.Nanosecond, 2},
		{100 * time.Millisecond, 2},
		{100*time.Millisecond + time.Nanosecond, 3},
		{time.Hour, 3},
	}
	for _, c := range cases {
		before := h.Snapshot()
		h.Observe(c.d)
		after := h.Snapshot()
		for i := range after.Counts {
			want := before.Counts[i]
			if i == c.bucket {
				want++
			}
			if after.Counts[i] != want {
				t.Errorf("Observe(%v): bucket %d count %d, want %d", c.d, i, after.Counts[i], want)
			}
		}
	}
	s := h.Snapshot()
	if s.Count != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
	if got := time.Duration(s.MaxNanos); got != time.Hour {
		t.Errorf("Max = %v, want %v", got, time.Hour)
	}
}

// TestQuantileErrorBounds: for a known distribution, every quantile estimate
// must land inside the bucket that holds the true rank — the histogram's
// documented error bound.
func TestQuantileErrorBounds(t *testing.T) {
	h := MustHistogram(DefaultLatencyBounds()...)
	rng := rand.New(rand.NewSource(7))
	var obs []time.Duration
	for i := 0; i < 5000; i++ {
		// Log-uniform over 120µs..4s, the regime of real analysis latencies.
		// Everything sits above the first bound (100µs): below it the bucket
		// spans down to zero and no relative error bound holds.
		d := time.Duration(float64(120*time.Microsecond) * float64(int64(1)<<uint(rng.Intn(15))) * (1 + rng.Float64()))
		obs = append(obs, d)
		h.Observe(d)
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i] < obs[j] })
	s := h.Snapshot()
	bucketOf := func(d time.Duration) int {
		for i, b := range s.BoundsNanos {
			if int64(d) <= b {
				return i
			}
		}
		return len(s.BoundsNanos)
	}
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		rank := int(q*float64(len(obs)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		if rank > len(obs) {
			rank = len(obs)
		}
		truth := obs[rank-1]
		est := s.Quantile(q)
		if bucketOf(est) != bucketOf(truth) {
			t.Errorf("q=%.2f: estimate %v in bucket %d, true value %v in bucket %d",
				q, est, bucketOf(est), truth, bucketOf(truth))
		}
		// Factor-2 buckets: the estimate is within 2x either way.
		if est > 2*truth || truth > 2*est {
			t.Errorf("q=%.2f: estimate %v is beyond 2x of true %v", q, est, truth)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := MustHistogram(time.Millisecond, time.Second)
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(2 * time.Second) // overflow bucket only
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 2*time.Second {
		t.Errorf("overflow-only p99 = %v, want the max %v", got, 2*time.Second)
	}
	h2 := MustHistogram(time.Millisecond, time.Second)
	h2.Observe(2 * time.Microsecond)
	h2.Observe(3 * time.Microsecond)
	s2 := h2.Snapshot()
	// Both observations share the first bucket; estimates must not report
	// beyond the observed max.
	if got := s2.Quantile(1.0); got > 3*time.Microsecond {
		t.Errorf("p100 = %v beyond the observed max %v", got, 3*time.Microsecond)
	}
}

// TestConcurrentObserveConsistency hammers one histogram from many goroutines
// while snapshotting concurrently: every snapshot must be internally
// consistent (Count == sum of bucket counts, quantiles defined), and the
// final snapshot must account for every observation exactly once.
func TestConcurrentObserveConsistency(t *testing.T) {
	h := MustHistogram(DefaultLatencyBounds()...)
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	for i := 0; i < 2; i++ {
		snaps.Add(1)
		go func() {
			defer snaps.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				var sum int64
				for _, c := range s.Counts {
					sum += c
				}
				if sum != s.Count {
					t.Errorf("snapshot inconsistent: Count %d != bucket sum %d", s.Count, sum)
					return
				}
				if s.Count > 0 && s.Quantile(0.5) < 0 {
					t.Error("negative quantile")
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Errorf("final Count = %d, want %d", s.Count, writers*perWriter)
	}
}

func TestObserveDoesNotAllocate(t *testing.T) {
	h := MustHistogram(DefaultLatencyBounds()...)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Millisecond) }); n != 0 {
		t.Errorf("Observe allocates %.1f objects per call, want 0", n)
	}
}

// TestSnapshotJSONRoundTrip: scrapers (loadgen -scrape, cosytop, the CI soak
// gate) decode snapshots from JSON; quantile math must survive the trip.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	h := MustHistogram(DefaultLatencyBounds()...)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != s.Count || back.Quantile(0.9) != s.Quantile(0.9) {
		t.Errorf("round trip changed the snapshot: %+v vs %+v", back, s)
	}
	if time.Duration(back.P99Nanos) != s.Quantile(0.99) {
		t.Errorf("precomputed p99 %v != recomputed %v", time.Duration(back.P99Nanos), s.Quantile(0.99))
	}
}

func TestMean(t *testing.T) {
	h := MustHistogram(time.Second)
	if h.Snapshot().Mean() != 0 {
		t.Error("empty mean not zero")
	}
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	if got := h.Snapshot().Mean(); got != 2*time.Millisecond {
		t.Errorf("mean = %v, want 2ms", got)
	}
}
