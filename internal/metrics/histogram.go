package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds is the standard latency bucket layout: factor-2
// exponential upper bounds from 100µs to ~105s, 21 finite buckets plus the
// implicit overflow bucket. Factor-2 spacing bounds any quantile estimate to
// within 2x of the true value (the estimate and the truth share a bucket),
// which is tight enough to tell "admission is queueing" from "the analysis
// got slower" — the operational question the histograms exist to answer.
func DefaultLatencyBounds() []time.Duration {
	bounds := make([]time.Duration, 21)
	b := 100 * time.Microsecond
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// Histogram is a fixed-bucket latency histogram. Recording is a binary
// search plus two atomic adds — no locks, no allocation — so it can sit on
// the per-request hot path of the service. The zero value is not usable; use
// NewHistogram.
type Histogram struct {
	// bounds holds the inclusive upper bound of each finite bucket in
	// nanoseconds, ascending; counts has one extra slot for the overflow
	// bucket. Both are immutable after construction.
	bounds []int64
	counts []atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns a histogram over the given finite bucket upper bounds
// (ascending, positive); an empty argument list selects
// DefaultLatencyBounds. Observations above the last bound land in an
// implicit overflow bucket.
func NewHistogram(bounds ...time.Duration) (*Histogram, error) {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	h := &Histogram{bounds: make([]int64, len(bounds)), counts: make([]atomic.Int64, len(bounds)+1)}
	for i, b := range bounds {
		if b <= 0 {
			return nil, fmt.Errorf("metrics: bucket bound %v is not positive", b)
		}
		if i > 0 && int64(b) <= h.bounds[i-1] {
			return nil, fmt.Errorf("metrics: bucket bounds not ascending at %v", b)
		}
		h.bounds[i] = int64(b)
	}
	return h, nil
}

// MustHistogram is NewHistogram for static bucket layouts.
func MustHistogram(bounds ...time.Duration) *Histogram {
	h, err := NewHistogram(bounds...)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// First bucket whose upper bound fits the observation; len(bounds) is
	// the overflow bucket. Hand-rolled binary search: sort.Search's closure
	// may escape, and this path must not allocate.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < ns {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	h.counts[i].Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot captures the histogram for reading. The per-bucket counts are read
// once each, and Count is their sum, so a snapshot is always internally
// consistent (quantiles never see a rank beyond the buckets); Sum and Max may
// trail concurrent observations by a few records, which is the documented
// price of never blocking the writers.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		BoundsNanos: h.bounds,
		Counts:      make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumNanos = h.sum.Load()
	s.MaxNanos = h.max.Load()
	s.P50Nanos = int64(s.Quantile(0.50))
	s.P90Nanos = int64(s.Quantile(0.90))
	s.P99Nanos = int64(s.Quantile(0.99))
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram, shaped for JSON:
// the /metrics endpoint serializes it, and loadgen, cosytop, and the CI soak
// gate decode it back. BoundsNanos are the finite bucket upper bounds;
// Counts has one extra trailing slot for observations above the last bound.
// P50/P90/P99 are precomputed by Snapshot so scrapers need no histogram math.
type HistogramSnapshot struct {
	Count       int64   `json:"count"`
	SumNanos    int64   `json:"sum_ns"`
	MaxNanos    int64   `json:"max_ns"`
	P50Nanos    int64   `json:"p50_ns"`
	P90Nanos    int64   `json:"p90_ns"`
	P99Nanos    int64   `json:"p99_ns"`
	BoundsNanos []int64 `json:"bounds_ns"`
	Counts      []int64 `json:"counts"`
}

// Mean returns the average observation, zero when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Merge combines snapshots into one, bucket-wise — the all-tenants view a
// scraper wants from per-tenant histograms. Snapshots whose bucket layout
// differs from the first non-empty one are skipped rather than corrupting the
// merge; in practice every layout is DefaultLatencyBounds. Percentiles are
// recomputed over the merged counts.
func Merge(snaps ...HistogramSnapshot) HistogramSnapshot {
	var out HistogramSnapshot
	for _, s := range snaps {
		if len(s.Counts) == 0 {
			continue
		}
		if out.Counts == nil {
			out.BoundsNanos = append([]int64(nil), s.BoundsNanos...)
			out.Counts = make([]int64, len(s.Counts))
		}
		if len(s.Counts) != len(out.Counts) {
			continue
		}
		for i, c := range s.Counts {
			out.Counts[i] += c
			out.Count += c
		}
		out.SumNanos += s.SumNanos
		if s.MaxNanos > out.MaxNanos {
			out.MaxNanos = s.MaxNanos
		}
	}
	out.P50Nanos = int64(out.Quantile(0.50))
	out.P90Nanos = int64(out.Quantile(0.90))
	out.P99Nanos = int64(out.Quantile(0.99))
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket holding the rank. The estimate is always within the
// rank's bucket, so its error is bounded by the bucket width; the overflow
// bucket reports the maximum observation. An empty snapshot reports zero.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Counts {
		if cum+c < rank {
			cum += c
			continue
		}
		if i >= len(s.BoundsNanos) {
			// Overflow bucket: the max is the only bound we have.
			return time.Duration(s.MaxNanos)
		}
		var lower int64
		if i > 0 {
			lower = s.BoundsNanos[i-1]
		}
		upper := s.BoundsNanos[i]
		if upper > s.MaxNanos && s.MaxNanos > lower {
			// Never report beyond the largest observation; it tightens the
			// common case where all observations share one bucket.
			upper = s.MaxNanos
		}
		return time.Duration(lower + (upper-lower)*(rank-cum)/c)
	}
	return time.Duration(s.MaxNanos)
}
