package metrics

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Error("zero value not zero")
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Value = %d, want 42", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 80000 {
		t.Errorf("counter = %d, want 80000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}
