// Package metrics provides the lock-cheap instrumentation primitives behind
// cosyd's live observability: counters, gauges, and fixed-bucket latency
// histograms whose hot paths are a handful of atomic operations and allocate
// nothing. Reading is snapshot-on-read — an Observe never waits for a scrape
// and a scrape never blocks an Observe.
//
// The paper's premise is that performance properties should be measured, not
// guessed; this package applies that discipline to the analyzer itself. The
// service records per-tenant admission outcomes and latencies into these
// primitives, the driver records pool checkout waits, and the /metrics
// endpoint serializes snapshots for operators, load generators, and the CI
// soak gate.
package metrics

import "sync/atomic"

// Counter is a monotonically increasing count. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers keep counters monotone; Add never checks).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways — in-flight
// requests, checked-out connections. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
