package service_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/testutil"
)

func TestAdmissionImmediateGrant(t *testing.T) {
	a := service.NewAdmission(2, 0)
	r1, err := a.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.InFlight != 2 || st.Queued != 0 {
		t.Fatalf("stats: %+v", st)
	}
	r1()
	r2()
	if st := a.Stats(); st.InFlight != 0 || st.Admitted != 2 {
		t.Fatalf("stats after release: %+v", st)
	}
}

func TestAdmissionQueuesAtCapacity(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := service.NewAdmission(1, 0)
	release, err := a.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan func(), 1)
	go func() {
		r, err := a.Acquire(context.Background(), "b")
		if err != nil {
			t.Error(err)
			r = func() {}
		}
		got <- r
	}()
	waitFor(t, func() bool { return a.Stats().Waiting == 1 })
	select {
	case <-got:
		t.Fatal("second acquire granted beyond capacity")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case r := <-got:
		r()
	case <-time.After(5 * time.Second):
		t.Fatal("queued acquire not granted after release")
	}
	if st := a.Stats(); st.Queued != 1 || st.Admitted != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAdmissionRejectsFullQueue(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := service.NewAdmission(1, 1)
	release, err := a.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := a.Acquire(ctx, "b"); !errors.Is(err, ctx.Err()) {
			t.Errorf("queued acquire: %v", err)
		}
	}()
	waitFor(t, func() bool { return a.Stats().Waiting == 1 })
	if _, err := a.Acquire(context.Background(), "c"); !errors.Is(err, service.ErrRejected) {
		t.Fatalf("acquire on full queue: %v, want ErrRejected", err)
	}
	cancel()
	<-done
	if st := a.Stats(); st.Rejected != 1 || st.Shed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAdmissionPerTenantCap(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := service.NewAdmission(4, 0)
	a.SetTenant("capped", service.TenantConfig{MaxInFlight: 1})
	release, err := a.Acquire(context.Background(), "capped")
	if err != nil {
		t.Fatal(err)
	}
	// Global capacity is free, but the tenant's cap holds its second request.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx, "capped"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second capped acquire: %v, want deadline", err)
	}
	// Another tenant is unaffected.
	r2, err := a.Acquire(context.Background(), "other")
	if err != nil {
		t.Fatal(err)
	}
	r2()
	release()
}

// TestAdmissionWeightedFairness: two tenants saturate a capacity-4 controller
// with weights 3:1; under contention the heavy tenant sustains three slots to
// the light tenant's one.
func TestAdmissionWeightedFairness(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := service.NewAdmission(4, 0)
	a.SetTenant("heavy", service.TenantConfig{Weight: 3})
	a.SetTenant("light", service.TenantConfig{Weight: 1})

	var heavy, light atomic.Int64 // peak concurrency samples
	var wg sync.WaitGroup
	stop := make(chan struct{})
	worker := func(tenant string, n *atomic.Int64) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			release, err := a.Acquire(context.Background(), tenant)
			if err != nil {
				t.Error(err)
				return
			}
			n.Add(1)
			time.Sleep(time.Millisecond)
			release()
		}
	}
	for i := 0; i < 6; i++ {
		wg.Add(2)
		go worker("heavy", &heavy)
		go worker("light", &light)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	h, l := heavy.Load(), light.Load()
	if l == 0 {
		t.Fatal("light tenant starved: zero completions")
	}
	ratio := float64(h) / float64(l)
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("heavy/light completion ratio = %.2f (h=%d l=%d), want ~3", ratio, h, l)
	}
}

// TestAdmissionNoStarvationAsymmetricLoad: an aggressive tenant offering far
// more load than a meek one must not lock the meek tenant out — equal
// weights mean roughly equal service under saturation, and strictly no
// starvation.
func TestAdmissionNoStarvationAsymmetricLoad(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := service.NewAdmission(2, 0)

	var aggro, meek atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	worker := func(tenant string, n *atomic.Int64) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			release, err := a.Acquire(context.Background(), tenant)
			if err != nil {
				t.Error(err)
				return
			}
			n.Add(1)
			time.Sleep(time.Millisecond)
			release()
		}
	}
	// 8 aggressive workers vs 1 meek worker: 8x offered load.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go worker("aggro", &aggro)
	}
	wg.Add(1)
	go worker("meek", &meek)

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	m, g := meek.Load(), aggro.Load()
	if m == 0 {
		t.Fatal("meek tenant starved under asymmetric load")
	}
	// Fair sharing gives the meek tenant one of the two slots whenever it
	// wants one; with a single worker it can at most use one. It must get a
	// substantial fraction of the aggressive tenant's throughput, not scraps.
	if float64(m) < 0.25*float64(g) {
		t.Errorf("meek/aggro = %d/%d — fair share not enforced", m, g)
	}
}

// TestAdmissionFIFOWithinTenant: a tenant's own requests are served in
// arrival order — later arrivals cannot overtake earlier ones.
func TestAdmissionFIFOWithinTenant(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := service.NewAdmission(1, 0)
	release, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}

	const n = 5
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		// Enqueue strictly one at a time so arrival order is defined.
		waitFor(t, func() bool { return a.Stats().Waiting == i })
		go func() {
			defer wg.Done()
			r, err := a.Acquire(context.Background(), "t")
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}()
	}
	waitFor(t, func() bool { return a.Stats().Waiting == n })
	release()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("service order %v, want FIFO", order)
		}
	}
}
