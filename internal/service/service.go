package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// Config shapes a Service.
type Config struct {
	// Capacity bounds the concurrent analyses (below 1 means 1). This caps
	// the real parallelism of the whole service: every admitted analysis
	// additionally fans out over Workers evaluation workers.
	Capacity int
	// MaxQueue bounds the admission queue (non-positive: unbounded).
	MaxQueue int
	// Workers and BatchSize configure every analysis as in core.WithWorkers
	// and core.WithBatchSize.
	Workers   int
	BatchSize int
	// Threshold is the performance-problem threshold (0 keeps the default).
	Threshold float64
	// Tenants holds the per-tenant admission policies.
	Tenants map[string]TenantConfig
}

// Service is the resident analyzer: one loaded database and model graph,
// shared by every request, behind admission control. It is safe for
// concurrent use — the executor must be too (a godbc.Pool, godbc.MuxConn,
// godbc.ShardedDB, or godbc.Embedded; a plain Conn serializes).
type Service struct {
	graph *model.Graph
	q     core.QueryExec
	adm   *Admission
	cfg   Config
	met   *Metrics
}

// New assembles a service over a loaded executor. The database behind q must
// already hold the graph's dataset.
func New(g *model.Graph, q core.QueryExec, cfg Config) *Service {
	s := &Service{graph: g, q: q, adm: NewAdmission(cfg.Capacity, cfg.MaxQueue), cfg: cfg, met: NewMetrics()}
	for tenant, tc := range cfg.Tenants {
		s.adm.SetTenant(tenant, tc)
	}
	return s
}

// Admission exposes the service's admission controller (for stats and tests).
func (s *Service) Admission() *Admission { return s.adm }

// Run resolves a test run by processor count; nope 0 selects the largest.
func (s *Service) Run(nope int) (*model.TestRun, error) {
	var best *model.TestRun
	for _, v := range s.graph.Dataset.Versions {
		for _, r := range v.Runs {
			if nope > 0 {
				if r.NoPe == nope {
					return r, nil
				}
				continue
			}
			if best == nil || r.NoPe > best.NoPe {
				best = r
			}
		}
	}
	if nope > 0 {
		return nil, fmt.Errorf("service: no test run with %d PEs", nope)
	}
	if best == nil {
		return nil, fmt.Errorf("service: dataset has no test runs")
	}
	return best, nil
}

// Analyze evaluates one run on behalf of a tenant: admission first (the
// request queues or is shed here under load), then a fresh analyzer over the
// shared graph and executor, with ctx observed at every layer below. The
// report is byte-identical to what a standalone cosy run over the same data
// would print — the service changes where analyses run, never what they say.
func (s *Service) Analyze(ctx context.Context, tenant string, nope int) (*core.Report, error) {
	run, err := s.Run(nope)
	if err != nil {
		return nil, err
	}
	// Per-tenant recording happens here, inside the request's own goroutine
	// and before it signals completion to anyone: every counter and histogram
	// touch is therefore ordered before the server's drain barrier, which is
	// what lets a post-drain snapshot reconcile exactly (see Server.Shutdown
	// and cmd/cosyd).
	tm := s.met.Tenant(tenant)
	start := time.Now()
	release, queued, err := s.adm.AcquireTracked(ctx, tenant)
	if err != nil {
		if errors.Is(err, ErrRejected) {
			tm.Rejected.Inc()
		} else {
			tm.Shed.Inc()
		}
		return nil, err
	}
	defer release()
	tm.Admitted.Inc()
	if queued {
		tm.Queued.Inc()
	}
	tm.QueueWait.Observe(time.Since(start))
	tm.InFlight.Inc()
	defer tm.InFlight.Dec()

	opts := []core.Option{core.WithWorkers(s.cfg.Workers), core.WithBatchSize(s.cfg.BatchSize)}
	if s.cfg.Threshold > 0 {
		opts = append(opts, core.WithThreshold(s.cfg.Threshold))
	}
	rep, err := core.New(s.graph, opts...).AnalyzeSQLCtx(ctx, run, s.q)
	switch {
	case err == nil:
		// End-to-end latency, queue wait included: what the tenant waited.
		tm.Latency.Observe(time.Since(start))
		tm.Completed.Inc()
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		tm.Canceled.Inc()
	default:
		tm.Failed.Inc()
	}
	return rep, err
}
