package service

// The cosyd protocol: gob messages over TCP, multiplexed from the start.
// Unlike the sqldb wire protocol (which grew multiplexing as a compatible
// extension), both ends of this protocol are current, so every request
// carries a nonzero ID and the server always executes requests concurrently
// and echoes the ID on the response. Cancellation follows the wire layer's
// shape: ReqCancel names an in-flight ID, the target's context is canceled,
// and the target still answers exactly once so the reply stream stays
// balanced.

import (
	"encoding/gob"
	"io"
)

// ReqKind selects the operation of a service request.
type ReqKind int

// Service request kinds.
const (
	// ReqAnalyze evaluates one test run and returns the rendered report.
	ReqAnalyze ReqKind = iota
	// ReqCancel cancels the in-flight request named by CancelID.
	ReqCancel
	// ReqPing is a round-trip probe.
	ReqPing
	// ReqStats returns the admission-controller counters.
	ReqStats
)

// Request is a client message.
type Request struct {
	Kind ReqKind
	// ID tags the request; the response echoes it. Must be nonzero and
	// unique among the connection's in-flight requests.
	ID int64
	// CancelID names the target of a ReqCancel.
	CancelID int64
	// Tenant identifies the requesting tenant for admission control; empty
	// means the anonymous default tenant.
	Tenant string
	// NoPe selects the analyzed test run by processor count; 0 selects the
	// largest run.
	NoPe int
	// DeadlineMillis bounds the server-side work of a ReqAnalyze, measured
	// from receipt; 0 means no server-imposed deadline. Clients derive it
	// from their context so the server stops working when nobody is waiting,
	// even if the cancel message is lost.
	DeadlineMillis int64
}

// Response is a server message.
type Response struct {
	// ID echoes the request's ID.
	ID  int64
	Err string
	// Report is the rendered analysis report of a ReqAnalyze.
	Report string
	// Stats answers a ReqStats.
	Stats *AdmissionStats
}

// ErrCanceled is the Response.Err of a request stopped by cancellation or
// deadline.
const ErrCanceled = "service: request canceled"

// Codec frames gob messages on a stream.
type Codec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewCodec wraps a bidirectional stream.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// WriteRequest sends a request.
func (c *Codec) WriteRequest(r *Request) error { return c.enc.Encode(r) }

// ReadRequest receives a request.
func (c *Codec) ReadRequest() (*Request, error) {
	var r Request
	if err := c.dec.Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteResponse sends a response.
func (c *Codec) WriteResponse(r *Response) error { return c.enc.Encode(r) }

// ReadResponse receives a response.
func (c *Codec) ReadResponse() (*Response, error) {
	var r Response
	if err := c.dec.Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}
