package service_test

// Tests for the observability endpoint: the /metrics document must reconcile
// with what clients measured, /healthz must flip on drain, and a snapshot
// taken after Shutdown returns must account for every admitted analysis —
// the drain-barrier guarantee cmd/cosyd's final report depends on.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sqldb/wire"
	"repro/internal/testutil"
)

// startMetricsService is startService also serving the observability endpoint,
// returning the server and both addresses.
func startMetricsService(t testing.TB, profile wire.Profile, cfg service.Config) (*service.Server, string, string) {
	t.Helper()
	g := buildGraph(t)
	conns := cfg.Capacity * 2
	if conns < 4 {
		conns = 4
	}
	pool := startWirePool(t, g, profile, conns)
	svc := service.New(g, pool, cfg)
	srv := service.NewServer(svc, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	hs, maddr, err := srv.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hs.Close() })
	return srv, srv.Addr(), maddr
}

// scrapeJSON fetches and decodes GET /metrics.
func scrapeJSON(t testing.TB, maddr string) service.MetricsSnapshot {
	t.Helper()
	resp, err := http.Get("http://" + maddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	var snap service.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	return snap
}

// TestMetricsReconcileWithClientCounts drives concurrent tenants through a
// live server, scrapes /metrics while requests are in flight, and checks the
// settled endpoint counters against the client-side outcome counts.
func TestMetricsReconcileWithClientCounts(t *testing.T) {
	testutil.CheckGoroutines(t)
	const tenants, perTenant = 3, 4
	_, addr, maddr := startMetricsService(t, wire.ProfileFast, service.Config{Capacity: 2})

	var (
		mu        sync.Mutex
		completed = make(map[string]int)
	)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		c := dialClient(t, addr)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perTenant; j++ {
				if _, err := c.Analyze(context.Background(), tenant, 0); err != nil {
					t.Errorf("%s: analyze: %v", tenant, err)
					return
				}
				mu.Lock()
				completed[tenant]++
				mu.Unlock()
			}
		}()
	}

	// A scrape against live load must answer, and what it reports must never
	// exceed what has been admitted so far.
	live := scrapeJSON(t, maddr)
	if live.Goroutines <= 0 {
		t.Errorf("live scrape reports %d goroutines", live.Goroutines)
	}
	for name, ts := range live.Tenants {
		if ts.Completed+ts.Canceled+ts.Failed+ts.InFlight > ts.Admitted+1 {
			t.Errorf("live scrape: tenant %s outcomes exceed admissions: %+v", name, ts)
		}
	}

	wg.Wait()
	snap := scrapeJSON(t, maddr)
	if got := len(snap.Tenants); got != tenants {
		t.Fatalf("got %d tenants in snapshot, want %d", got, tenants)
	}
	var total int64
	for name, want := range completed {
		ts, ok := snap.Tenants[name]
		if !ok {
			t.Fatalf("tenant %s missing from snapshot", name)
		}
		if ts.Completed != int64(want) || ts.Admitted != int64(want) {
			t.Errorf("tenant %s: admitted %d completed %d, client counted %d", name, ts.Admitted, ts.Completed, want)
		}
		if ts.InFlight != 0 || ts.Canceled != 0 || ts.Failed != 0 || ts.Rejected != 0 {
			t.Errorf("tenant %s: unexpected non-completed outcomes: %+v", name, ts)
		}
		if ts.Latency.Count != int64(want) {
			t.Errorf("tenant %s: latency histogram holds %d observations, want %d", name, ts.Latency.Count, want)
		}
		if ts.Latency.P50Nanos <= 0 || ts.Latency.P99Nanos < ts.Latency.P50Nanos {
			t.Errorf("tenant %s: implausible percentiles p50=%d p99=%d", name, ts.Latency.P50Nanos, ts.Latency.P99Nanos)
		}
		if ts.QueueWait.Count != ts.Admitted {
			t.Errorf("tenant %s: queue-wait histogram holds %d observations, want %d", name, ts.QueueWait.Count, ts.Admitted)
		}
		total += ts.Admitted
	}
	if snap.Admission.Admitted != total {
		t.Errorf("admission total %d != per-tenant sum %d", snap.Admission.Admitted, total)
	}
	if snap.Admission.InFlight != 0 || snap.Admission.Waiting != 0 {
		t.Errorf("settled snapshot still reports occupancy: %+v", snap.Admission)
	}
	// The wire-backed executor contributes the pool and backend sections.
	if len(snap.Pools) != 1 {
		t.Fatalf("got %d pool sections, want 1", len(snap.Pools))
	}
	if p := snap.Pools[0]; p.Checkouts == 0 || p.CheckoutWait.Count != p.Checkouts {
		t.Errorf("pool section does not reconcile: %+v", p)
	}
	if snap.Backend == nil {
		t.Fatal("backend section missing from a wire-backed service")
	}
	if snap.Backend.Requests == 0 || snap.Backend.Engine == "" {
		t.Errorf("backend section is empty: %+v", snap.Backend)
	}
	if snap.Cache == nil {
		t.Error("cache section missing from a wire-backed service")
	}
}

// TestHealthzDrainTransition checks that /healthz flips from 200 to 503 the
// moment shutdown begins, and that the observability endpoint keeps answering
// after the analysis listener closed.
func TestHealthzDrainTransition(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, _, maddr := startMetricsService(t, wire.ProfileFast, service.Config{Capacity: 1})

	status := func() (int, string) {
		resp, err := http.Get("http://" + maddr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Status
	}

	if code, s := status(); code != http.StatusOK || s != "ok" {
		t.Fatalf("before shutdown: got %d %q, want 200 ok", code, s)
	}
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if code, s := status(); code != http.StatusServiceUnavailable || s != "draining" {
		t.Fatalf("after shutdown: got %d %q, want 503 draining", code, s)
	}
	if snap := scrapeJSON(t, maddr); !snap.Draining {
		t.Error("post-shutdown snapshot does not report draining")
	}
}

// TestShutdownSnapshotAfterDrainBarrier is the regression test for the final
// report's ordering: a snapshot taken after Shutdown returns must account for
// every admitted analysis, even when shutdown raced in-flight requests.
func TestShutdownSnapshotAfterDrainBarrier(t *testing.T) {
	testutil.CheckGoroutines(t)
	const tenants, perTenant = 2, 3
	srv, addr, _ := startMetricsService(t, wire.ProfileFast, service.Config{Capacity: 1})

	clients := make([]*service.Client, tenants)
	var wg sync.WaitGroup
	started := make(chan struct{}, tenants*perTenant)
	for i := 0; i < tenants; i++ {
		c := dialClient(t, addr)
		clients[i] = c
		// Ping so the server has accepted this connection: Shutdown closes
		// the listener, and a connection still in the accept backlog would be
		// cut off rather than drained.
		if err := c.Ping(context.Background()); err != nil {
			t.Fatal(err)
		}
		tenant := fmt.Sprintf("tenant-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perTenant; j++ {
				started <- struct{}{}
				if _, err := c.Analyze(context.Background(), tenant, 0); err != nil {
					t.Errorf("%s: analyze: %v", tenant, err)
					return
				}
			}
		}()
	}
	// Begin the drain while requests are demonstrably in flight: the closed
	// listener must not cut them off, and the snapshot below must still see
	// all of them.
	<-started
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()
	wg.Wait()
	for _, c := range clients {
		c.Close() // drain completes when the clients disconnect
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	snap := srv.MetricsSnapshot()
	if !snap.Draining {
		t.Error("post-drain snapshot does not report draining")
	}
	if snap.Conns != 0 {
		t.Errorf("post-drain snapshot reports %d connections, want 0", snap.Conns)
	}
	if snap.Admission.InFlight != 0 || snap.Admission.Waiting != 0 {
		t.Errorf("post-drain snapshot reports occupancy: %+v", snap.Admission)
	}
	var admitted, classified int64
	for name, ts := range snap.Tenants {
		if ts.InFlight != 0 {
			t.Errorf("tenant %s still in flight after the drain barrier", name)
		}
		if got := ts.Completed + ts.Canceled + ts.Failed; got != ts.Admitted {
			t.Errorf("tenant %s: %d admitted but %d classified", name, ts.Admitted, got)
		}
		admitted += ts.Admitted
		classified += ts.Completed + ts.Canceled + ts.Failed
	}
	if admitted != tenants*perTenant {
		t.Errorf("admitted %d analyses, want %d", admitted, tenants*perTenant)
	}
	if snap.Admission.Admitted != admitted {
		t.Errorf("admission controller admitted %d, tenant metrics admitted %d", snap.Admission.Admitted, admitted)
	}
}
