package service

import (
	"context"
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"time"
)

// Server exposes a Service over TCP — the network face of cosyd. Every
// connection may carry many concurrent requests; each ReqAnalyze runs in its
// own goroutine under a cancelable context that is the root of the request's
// whole cancellation chain (admission queue, analyzer chunks, driver round
// trips, engine bindings). The context is canceled by a ReqCancel naming the
// request, by the request's own DeadlineMillis, or by the client
// disconnecting — whichever comes first.
type Server struct {
	svc    *Service
	lis    net.Listener
	logger *log.Logger

	mu sync.Mutex
	// draining is set the moment a graceful Shutdown (or Close) begins and
	// never cleared: /healthz flips to 503 so load balancers stop sending
	// work while in-flight analyses finish.
	draining bool
	closed   bool
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// NewServer wraps a Service for network serving. If logger is nil, logging is
// disabled.
func NewServer(svc *Service, logger *log.Logger) *Server {
	return &Server{svc: svc, logger: logger, conns: make(map[net.Conn]struct{})}
}

// Listen binds the server to addr ("127.0.0.1:0" picks a free port) and
// starts accepting connections in the background.
func (s *Server) Listen(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address; valid after Listen.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops the listener and all connections and waits for the handler and
// request goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.draining = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.lis != nil && !wasClosed {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown closes the listener, then waits up to timeout for connected
// clients to finish their in-flight requests and disconnect on their own;
// lingering connections are then closed forcibly.
//
// Shutdown returning is the drain barrier: every request goroutine has
// finished — including its admission release and metrics recording — so a
// snapshot taken afterwards reconciles exactly (nothing in flight, every
// admitted analysis classified). cmd/cosyd prints its final stats only after
// this barrier.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	s.draining = true
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var lerr error
	if s.lis != nil {
		lerr = s.lis.Close()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return lerr
	case <-time.After(timeout):
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	return lerr
}

// Draining reports whether shutdown has begun. It never reverts to false.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ConnCount is the number of currently connected clients — one of the two
// drift signals (with the goroutine count) the CI soak gate watches across a
// drained load run.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// connState is the per-connection request bookkeeping: in-flight cancel
// functions for ReqCancel, serialized writes on the shared gob encoder (also
// the slow-reader backpressure path — a client that stops reading blocks its
// own connection's request goroutines, nobody else's), and a WaitGroup so
// teardown drains the request goroutines.
type connState struct {
	writeMu sync.Mutex

	inflMu   sync.Mutex
	inflight map[int64]context.CancelFunc

	wg sync.WaitGroup
}

func (st *connState) cancel(id int64) {
	st.inflMu.Lock()
	cancel := st.inflight[id]
	st.inflMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (st *connState) register(id int64, cancel context.CancelFunc) {
	st.inflMu.Lock()
	st.inflight[id] = cancel
	st.inflMu.Unlock()
}

func (st *connState) unregister(id int64, cancel context.CancelFunc) {
	st.inflMu.Lock()
	delete(st.inflight, id)
	st.inflMu.Unlock()
	cancel()
}

func (st *connState) write(s *Server, codec *Codec, resp *Response) bool {
	st.writeMu.Lock()
	err := codec.WriteResponse(resp)
	st.writeMu.Unlock()
	if err != nil {
		s.logf("service: write: %v", err)
		return false
	}
	return true
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	st := &connState{inflight: make(map[int64]context.CancelFunc)}
	connCtx, cancelConn := context.WithCancel(context.Background())
	defer func() {
		// Client gone: cancel every in-flight analysis of this connection and
		// wait for the request goroutines to observe it. Abandoned work must
		// release its admission slot before the connection is forgotten.
		cancelConn()
		st.wg.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	codec := NewCodec(conn)
	for {
		req, err := codec.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("service: read: %v", err)
			}
			return
		}
		if req.Kind == ReqCancel {
			st.cancel(req.CancelID)
			if !st.write(s, codec, &Response{ID: req.ID}) {
				return
			}
			continue
		}
		reqCtx, cancel := context.WithCancel(connCtx)
		if req.Kind == ReqAnalyze && req.DeadlineMillis > 0 {
			reqCtx, cancel = context.WithTimeout(connCtx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		}
		st.register(req.ID, cancel)
		st.wg.Add(1)
		go func(req *Request) {
			defer st.wg.Done()
			resp := s.serve(reqCtx, req)
			resp.ID = req.ID
			st.unregister(req.ID, cancel)
			st.write(s, codec, resp)
		}(req)
	}
}

func (s *Server) serve(ctx context.Context, req *Request) *Response {
	switch req.Kind {
	case ReqPing:
		return &Response{}
	case ReqStats:
		stats := s.svc.Admission().Stats()
		return &Response{Stats: &stats}
	case ReqAnalyze:
		rep, err := s.svc.Analyze(ctx, req.Tenant, req.NoPe)
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return &Response{Err: ErrCanceled}
		case err != nil:
			return &Response{Err: err.Error()}
		}
		return &Response{Report: rep.Render()}
	}
	return &Response{Err: "service: unknown request kind"}
}
