package service_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/core"
	"repro/internal/godbc"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
	"repro/internal/testutil"
)

// buildGraph simulates a small workload and materializes its model graph.
func buildGraph(t testing.TB) *model.Graph {
	t.Helper()
	ds, err := apprentice.Simulate(apprentice.Particles(), apprentice.PartitionSweep(2, 8, 32), 42)
	if err != nil {
		t.Fatal(err)
	}
	g, err := model.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// loadEmbedded loads the graph into a fresh embedded database.
func loadEmbedded(t testing.TB, g *model.Graph) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	exec := sqlgen.ExecutorFunc(func(q string, p *sqldb.Params) (int, error) {
		res, err := db.Exec(q, p)
		if err != nil {
			return 0, err
		}
		return res.Affected, nil
	})
	if err := sqlgen.CreateSchema(g.World, exec); err != nil {
		t.Fatal(err)
	}
	if _, err := sqlgen.Load(g.Store, exec); err != nil {
		t.Fatal(err)
	}
	return db
}

// startWirePool starts a wire server over a loaded database and returns a
// connection pool dialed at it.
func startWirePool(t testing.TB, g *model.Graph, profile wire.Profile, conns int) *godbc.Pool {
	t.Helper()
	db := loadEmbedded(t, g)
	srv, err := wire.NewServer(db, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	pool, err := godbc.NewPool(srv.Addr(), conns)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	return pool
}

// startService assembles a full service over a wire-backed pool and serves it
// on a loopback listener, returning the service and its address.
func startService(t testing.TB, profile wire.Profile, cfg service.Config) (*service.Service, string) {
	t.Helper()
	g := buildGraph(t)
	conns := cfg.Capacity * 2
	if conns < 4 {
		conns = 4
	}
	pool := startWirePool(t, g, profile, conns)
	svc := service.New(g, pool, cfg)
	srv := service.NewServer(svc, nil)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return svc, srv.Addr()
}

func dialClient(t testing.TB, addr string) *service.Client {
	t.Helper()
	c, err := service.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServiceAnalyzeOverWire(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, addr := startService(t, wire.ProfileFast, service.Config{Capacity: 2})
	c := dialClient(t, addr)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Analyze(context.Background(), "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "particles") {
		t.Fatalf("report does not mention the workload:\n%s", rep)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 1 || st.InFlight != 0 {
		t.Fatalf("stats after one analysis: %+v", st)
	}
}

// TestServiceReportMatchesDirectAnalyzer: the resident service must be
// invisible in the output — its rendered report is byte-identical to a direct
// core analysis of the same run, across worker counts and shard counts.
func TestServiceReportMatchesDirectAnalyzer(t *testing.T) {
	g := buildGraph(t)
	db := loadEmbedded(t, g)
	runs := g.Dataset.Versions[0].Runs
	run := runs[len(runs)-1]

	ref := core.New(g)
	want, err := ref.AnalyzeSQL(run, godbc.Embedded{DB: db})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		for _, shards := range []int{1, 2} {
			svc := newShardedService(t, g, shards, service.Config{Capacity: 2, Workers: workers})
			rep, err := svc.Analyze(context.Background(), "tenant", 0)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			if got := rep.Render(); got != want.Render() {
				t.Errorf("workers=%d shards=%d: service report differs from direct analyzer:\n--- direct ---\n%s--- service ---\n%s",
					workers, shards, want.Render(), got)
			}
		}
	}
}

// newShardedService builds a service over n wire shards (n=1 uses a plain
// pool), each at ProfileFast.
func newShardedService(t testing.TB, g *model.Graph, n int, cfg service.Config) *service.Service {
	t.Helper()
	if n == 1 {
		return service.New(g, startWirePool(t, g, wire.ProfileFast, 8), cfg)
	}
	addrs := make([]string, n)
	dbs := make([]*sqldb.DB, n)
	for i := range addrs {
		dbs[i] = sqldb.NewDB()
		srv, err := wire.NewServer(dbs[i], wire.ProfileFast, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	sdb, err := godbc.DialSharded(addrs, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	execs := make([]sqlgen.Executor, n)
	for i, db := range dbs {
		db := db
		execs[i] = sqlgen.ExecutorFunc(func(q string, p *sqldb.Params) (int, error) {
			res, err := db.Exec(q, p)
			if err != nil {
				return 0, err
			}
			return res.Affected, nil
		})
		if err := sqlgen.CreateSchema(g.World, execs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sqlgen.LoadSharded(g.Store, model.RunPartitioned(), sdb.ShardFor, execs...); err != nil {
		t.Fatal(err)
	}
	return service.New(g, sdb, cfg)
}

// TestServiceDeadlineSheds: a request whose DeadlineMillis has no chance
// comes back as canceled, not as a partial report.
func TestServiceDeadlineSheds(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, addr := startService(t, wire.ProfileOracleRemote, service.Config{Capacity: 2})
	c := dialClient(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := c.Analyze(ctx, "alice", 0)
	if err == nil {
		t.Fatal("analysis under a 5ms deadline on a 2ms-RTT profile succeeded")
	}
	// The connection survives an abandoned request.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping after canceled analysis: %v", err)
	}
}

// TestServiceConcurrentTenants: many tenants at once, all served, stats add
// up, capacity respected.
func TestServiceConcurrentTenants(t *testing.T) {
	testutil.CheckGoroutines(t)
	svc, addr := startService(t, wire.ProfileFast, service.Config{Capacity: 2})
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		c := dialClient(t, addr)
		wg.Add(1)
		go func(i int, c *service.Client) {
			defer wg.Done()
			_, errs[i] = c.Analyze(context.Background(), string(rune('a'+i)), 0)
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("tenant %d: %v", i, err)
		}
	}
	st := svc.Admission().Stats()
	if st.Admitted != n {
		t.Errorf("admitted = %d, want %d", st.Admitted, n)
	}
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Errorf("occupancy after drain: %+v", st)
	}
}
