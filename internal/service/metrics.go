package service

// Live observability for the resident service. The admission controller has
// counted outcomes since PR 6, but only surfaced them at shutdown — useless
// for operating a resident process. This file gives the service a metrics
// registry in the spirit of the paper: per-tenant admission outcomes, queue
// waits, and end-to-end analysis latencies recorded into lock-cheap
// histograms on the request path, snapshot on demand by the /metrics endpoint
// (http.go), loadgen -scrape, cosytop, and the CI soak gate.

import (
	"sync"
	"time"

	"repro/internal/godbc"
	"repro/internal/metrics"
)

// Metrics is the service's instrumentation registry: one TenantMetrics per
// tenant name ever seen, created on first use. Safe for concurrent use; the
// per-request path after the first request of a tenant is an RLock and a map
// lookup.
type Metrics struct {
	start time.Time

	mu      sync.RWMutex
	tenants map[string]*TenantMetrics
}

// NewMetrics returns an empty registry; the uptime clock starts now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), tenants: make(map[string]*TenantMetrics)}
}

// TenantMetrics holds one tenant's counters and histograms. Fields are
// recorded by Service.Analyze and read via Snapshot.
type TenantMetrics struct {
	// Admission outcomes, mirroring AdmissionStats per tenant: Admitted got
	// capacity (Queued counts the subset that waited first), Shed lost its
	// context while waiting, Rejected bounced off the full queue.
	Admitted metrics.Counter
	Queued   metrics.Counter
	Shed     metrics.Counter
	Rejected metrics.Counter
	// Completed/Canceled/Failed classify admitted analyses by how they ended:
	// a report, a canceled context, or an analysis error.
	Completed metrics.Counter
	Canceled  metrics.Counter
	Failed    metrics.Counter
	// InFlight is the tenant's currently admitted analyses.
	InFlight metrics.Gauge
	// QueueWait observes time from arrival to admission (tiny when capacity
	// was free); Latency observes end-to-end time of completed analyses,
	// queue wait included — the latency the tenant's user experienced.
	QueueWait *metrics.Histogram
	Latency   *metrics.Histogram
}

// Tenant returns the tenant's metrics, creating them on first use.
func (m *Metrics) Tenant(name string) *TenantMetrics {
	m.mu.RLock()
	tm := m.tenants[name]
	m.mu.RUnlock()
	if tm != nil {
		return tm
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if tm := m.tenants[name]; tm != nil {
		return tm
	}
	tm = &TenantMetrics{
		QueueWait: metrics.MustHistogram(),
		Latency:   metrics.MustHistogram(),
	}
	m.tenants[name] = tm
	return tm
}

// TenantSnapshot is the JSON shape of one tenant's metrics.
type TenantSnapshot struct {
	Admitted  int64                     `json:"admitted"`
	Queued    int64                     `json:"queued"`
	Shed      int64                     `json:"shed"`
	Rejected  int64                     `json:"rejected"`
	Completed int64                     `json:"completed"`
	Canceled  int64                     `json:"canceled"`
	Failed    int64                     `json:"failed"`
	InFlight  int64                     `json:"in_flight"`
	QueueWait metrics.HistogramSnapshot `json:"queue_wait"`
	Latency   metrics.HistogramSnapshot `json:"latency"`
}

// Snapshot captures every tenant's metrics.
func (m *Metrics) Snapshot() map[string]TenantSnapshot {
	m.mu.RLock()
	names := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		names = append(names, name)
	}
	m.mu.RUnlock()
	out := make(map[string]TenantSnapshot, len(names))
	for _, name := range names {
		tm := m.Tenant(name)
		out[name] = TenantSnapshot{
			Admitted:  tm.Admitted.Value(),
			Queued:    tm.Queued.Value(),
			Shed:      tm.Shed.Value(),
			Rejected:  tm.Rejected.Value(),
			Completed: tm.Completed.Value(),
			Canceled:  tm.Canceled.Value(),
			Failed:    tm.Failed.Value(),
			InFlight:  tm.InFlight.Value(),
			QueueWait: tm.QueueWait.Snapshot(),
			Latency:   tm.Latency.Snapshot(),
		}
	}
	return out
}

// Uptime reports how long the registry (and so the service) has been up.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// MetricsSnapshot is the complete observable state of a cosyd process — the
// JSON document GET /metrics returns. Sections that do not apply to the
// deployment (no pool when embedded, no backend stats when the kojakdb
// server predates the extension) are omitted rather than zeroed.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Draining is true once shutdown began; /healthz turns 503 with it.
	Draining bool `json:"draining"`
	// Goroutines and Conns are the drift signals the CI soak gate watches:
	// after a drained load run they must return to their pre-load level.
	Goroutines int `json:"goroutines"`
	Conns      int `json:"conns"`

	Admission AdmissionStats            `json:"admission"`
	Tenants   map[string]TenantSnapshot `json:"tenants"`

	// Pools reports connection-pool stats, one entry per backend shard (a
	// single-backend service has one). Mux reports multiplexed-connection
	// stats when the executor is a MuxConn.
	Pools []godbc.PoolStats `json:"pools,omitempty"`
	Mux   *godbc.MuxStats   `json:"mux,omitempty"`

	// Backend carries the database engine's own counters (vectorized
	// selects and fallbacks, plan cache, cumulative vendor cost) and Cache
	// the result-cache counters, when the executor can report them.
	Backend *godbc.ServerStats `json:"backend,omitempty"`
	Cache   *godbc.CacheStats  `json:"cache,omitempty"`
}

// MetricsSnapshot assembles the service-level sections of the snapshot:
// uptime, admission counters, per-tenant metrics, and whatever the executor
// can report about pools, multiplexing, the engine, and the result cache.
// The server-level fields (Draining, Conns, Goroutines) are filled by
// Server.MetricsSnapshot.
func (s *Service) MetricsSnapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: s.met.Uptime().Seconds(),
		Admission:     s.adm.Stats(),
		Tenants:       s.met.Snapshot(),
	}
	switch q := s.q.(type) {
	case interface{ Metrics() godbc.PoolStats }:
		snap.Pools = []godbc.PoolStats{q.Metrics()}
	case interface{ PoolMetrics() []godbc.PoolStats }:
		snap.Pools = q.PoolMetrics()
	}
	if mx, ok := s.q.(interface{ Metrics() godbc.MuxStats }); ok {
		ms := mx.Metrics()
		snap.Mux = &ms
	}
	if bs, ok := s.q.(interface {
		ServerStats() (godbc.ServerStats, bool, error)
	}); ok {
		if st, supported, err := bs.ServerStats(); err == nil && supported {
			snap.Backend = &st
		}
	}
	if cs, ok := s.q.(interface {
		CacheStats() (godbc.CacheStats, bool, error)
	}); ok {
		if st, supported, err := cs.CacheStats(); err == nil && supported {
			snap.Cache = &st
		}
	}
	return snap
}

// Metrics exposes the service's registry (for tests and benchmarks).
func (s *Service) Metrics() *Metrics { return s.met }
