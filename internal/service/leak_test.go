package service_test

// The cancellation paths promised by the resident service, each run under the
// goroutine-leak check: abandoning an analysis — by deadline, by explicit
// cancel, or by yanking the whole connection — must wind down every goroutine
// it started and return every pool connection it held.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sqldb/wire"
	"repro/internal/testutil"
)

// TestCancelWhileQueuedNoLeak: capacity 1, one analysis occupying it, a
// second waiting in the admission queue. Canceling the queued one returns its
// context error promptly, sheds the waiter, and leaks nothing; the occupant
// finishes untouched.
func TestCancelWhileQueuedNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	svc, addr := startService(t, wire.ProfileOracleRemote, service.Config{Capacity: 1})
	occupant := dialClient(t, addr)
	queued := dialClient(t, addr)

	occErr := make(chan error, 1)
	go func() {
		_, err := occupant.Analyze(context.Background(), "occupant", 0)
		occErr <- err
	}()
	// Wait until the occupant actually holds the slot.
	waitFor(t, func() bool { return svc.Admission().Stats().InFlight == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	qErr := make(chan error, 1)
	go func() {
		_, err := queued.Analyze(ctx, "queued", 0)
		qErr <- err
	}()
	waitFor(t, func() bool { return svc.Admission().Stats().Waiting == 1 })

	cancel()
	select {
	case err := <-qErr:
		if err == nil {
			t.Fatal("queued analysis succeeded despite cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled queued analysis did not return")
	}
	if err := <-occErr; err != nil {
		t.Fatalf("occupant analysis: %v", err)
	}
	waitFor(t, func() bool {
		st := svc.Admission().Stats()
		return st.InFlight == 0 && st.Waiting == 0
	})
	if st := svc.Admission().Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1 (stats: %+v)", st.Shed, st)
	}
}

// TestCancelMidAnalysisNoLeak: cancel an analysis while its batches are in
// flight on the wire. The call returns the context error, the connection
// stays usable, and a follow-up analysis on the same service still succeeds —
// the pool got its connections back.
func TestCancelMidAnalysisNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, addr := startService(t, wire.ProfileOracleRemote, service.Config{Capacity: 2})
	c := dialClient(t, addr)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Analyze(ctx, "alice", 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let some batches hit the wire
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled analysis succeeded")
		}
		if !errors.Is(err, context.Canceled) && err.Error() != service.ErrCanceled {
			t.Fatalf("canceled analysis returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled analysis did not return")
	}

	// The service must still have its full pool: an uncanceled analysis
	// completes. (A leaked pool slot would hang it until this test times out.)
	if _, err := c.Analyze(context.Background(), "alice", 0); err != nil {
		t.Fatalf("analysis after a canceled one: %v", err)
	}
}

// TestClientDisconnectMidAnalysisNoLeak: the client vanishes with an analysis
// in flight. The server cancels the orphaned work, releases its admission
// slot, and the service keeps serving other clients.
func TestClientDisconnectMidAnalysisNoLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	svc, addr := startService(t, wire.ProfileOracleRemote, service.Config{Capacity: 2})

	doomed := dialClient(t, addr)
	errc := make(chan error, 1)
	go func() {
		_, err := doomed.Analyze(context.Background(), "doomed", 0)
		errc <- err
	}()
	waitFor(t, func() bool { return svc.Admission().Stats().InFlight == 1 })
	doomed.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("analysis on a closed connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("analysis on a closed connection did not return")
	}
	// The orphaned analysis must release its slot server-side.
	waitFor(t, func() bool { return svc.Admission().Stats().InFlight == 0 })

	survivor := dialClient(t, addr)
	if _, err := survivor.Analyze(context.Background(), "survivor", 0); err != nil {
		t.Fatalf("analysis after another client's disconnect: %v", err)
	}
}

// TestExplicitCancelStopsServerWork: a ReqCancel (sent by abandoning the
// client call) cancels the named server-side request — observable as the
// admission slot freeing long before the analysis could have finished.
func TestExplicitCancelStopsServerWork(t *testing.T) {
	testutil.CheckGoroutines(t)
	svc, addr := startService(t, wire.ProfileOracleRemote, service.Config{Capacity: 1})
	c := dialClient(t, addr)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Analyze(ctx, "alice", 0)
		errc <- err
	}()
	waitFor(t, func() bool { return svc.Admission().Stats().InFlight == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned call returned %v, want context.Canceled", err)
	}
	// The server must observe the ReqCancel and free the capacity without the
	// client disconnecting.
	waitFor(t, func() bool { return svc.Admission().Stats().InFlight == 0 })
	if _, err := c.Analyze(context.Background(), "alice", 0); err != nil {
		t.Fatalf("analysis after an explicit cancel: %v", err)
	}
}

// waitFor polls cond for up to five seconds.
func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
