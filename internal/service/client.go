package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a multiplexed cosyd client: one socket shared by any number of
// concurrent Analyze calls, demultiplexed by request ID. It is safe for
// concurrent use. A canceled call sends a best-effort ReqCancel so the
// server stops the abandoned analysis; the connection survives.
type Client struct {
	nc    net.Conn
	codec *Codec

	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  int64
	pending map[int64]chan *Response
	err     error
	closed  bool
}

// Dial connects to a cosyd server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("service: dial %s: %w", addr, err)
	}
	c := &Client{nc: nc, codec: NewCodec(nc), pending: make(map[int64]chan *Response)}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		resp, err := c.codec.ReadResponse()
		if err != nil {
			c.fail(fmt.Errorf("service: receive: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[int64]chan *Response)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Close terminates the connection; in-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.nc.Close()
	c.fail(fmt.Errorf("service: connection closed"))
	return err
}

func (c *Client) register() (int64, chan *Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	if c.closed {
		return 0, nil, fmt.Errorf("service: connection closed")
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *Response, 1)
	c.pending[id] = ch
	return id, ch, nil
}

// abandon stops waiting for a request and tells the server to cancel it. The
// cancel's own ack uses a fresh unregistered ID, so the demultiplexer drops
// it silently.
func (c *Client) abandon(id int64) {
	c.mu.Lock()
	if _, ok := c.pending[id]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.pending, id)
	c.nextID++
	cancelID := c.nextID
	c.mu.Unlock()
	c.writeMu.Lock()
	c.codec.WriteRequest(&Request{Kind: ReqCancel, ID: cancelID, CancelID: id})
	c.writeMu.Unlock()
}

func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	id, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	req.ID = id
	c.writeMu.Lock()
	werr := c.codec.WriteRequest(req)
	c.writeMu.Unlock()
	if werr != nil {
		werr = fmt.Errorf("service: send: %w", werr)
		c.fail(werr)
		return nil, werr
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		return resp, nil
	case <-ctx.Done():
		c.abandon(id)
		return nil, ctx.Err()
	}
}

// Ping performs a protocol round trip.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.roundTrip(ctx, &Request{Kind: ReqPing})
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Stats fetches the server's admission counters.
func (c *Client) Stats(ctx context.Context) (AdmissionStats, error) {
	resp, err := c.roundTrip(ctx, &Request{Kind: ReqStats})
	if err != nil {
		return AdmissionStats{}, err
	}
	if resp.Err != "" {
		return AdmissionStats{}, errors.New(resp.Err)
	}
	if resp.Stats == nil {
		return AdmissionStats{}, fmt.Errorf("service: stats response without stats")
	}
	return *resp.Stats, nil
}

// Analyze requests one analysis and returns the rendered report. The
// context's deadline (if any) is shipped as the request's DeadlineMillis, so
// the server sheds the work by itself even if the client's cancel message
// never arrives.
func (c *Client) Analyze(ctx context.Context, tenant string, nope int) (string, error) {
	req := &Request{Kind: ReqAnalyze, Tenant: tenant, NoPe: nope}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.DeadlineMillis = ms
	}
	resp, err := c.roundTrip(ctx, req)
	if err != nil {
		return "", err
	}
	if resp.Err != "" {
		return "", errors.New(resp.Err)
	}
	return resp.Report, nil
}
