// Package service turns the COSY analyzer into a resident multi-tenant
// analysis server: a long-lived process owning one loaded database that
// serves analyze-run requests from many clients over a small multiplexed
// protocol, with per-tenant admission control and cancellation propagated
// down every layer (core → godbc → wire → sqldb).
//
// The paper's workflow runs COSY once per question: start the tool, load the
// snapshot, evaluate, exit. A measurement group shares one COSY database
// across its members, and the repeated start-up cost — and the free-for-all
// of uncoordinated concurrent analyses — is what a resident service removes:
// admission control bounds the concurrent analyses, weighted fairness keeps
// one tenant's sweep from starving another's interactive question, and
// request deadlines shed work nobody is waiting for anymore.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrRejected is returned by Acquire when the admission queue is full: the
// caller should retry later rather than wait. Load shedding at the door keeps
// queue time bounded when offered load exceeds capacity.
var ErrRejected = errors.New("service: admission queue full")

// DefaultWeight is the fair-share weight of tenants without explicit
// configuration.
const DefaultWeight = 1.0

// TenantConfig is one tenant's admission policy.
type TenantConfig struct {
	// Weight is the tenant's fair share: capacity freed by a finishing
	// analysis goes to the queued tenant with the lowest inflight/weight
	// ratio, so a weight-2 tenant sustains twice the concurrency of a
	// weight-1 tenant under contention. Non-positive means DefaultWeight.
	Weight float64
	// MaxInFlight caps the tenant's concurrent analyses regardless of free
	// capacity, bounding the damage of one runaway client. Non-positive
	// means no per-tenant cap (the global capacity still applies).
	MaxInFlight int
}

// AdmissionStats is a snapshot of the admission counters. The JSON tags are
// the field names of the /metrics endpoint's "admission" section.
type AdmissionStats struct {
	// Admitted counts acquisitions that got capacity (immediately or after
	// queueing); Queued counts the subset that had to wait.
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	// Shed counts queued waiters whose context fired before capacity came.
	Shed int64 `json:"shed"`
	// Rejected counts acquisitions refused because the queue was full.
	Rejected int64 `json:"rejected"`
	// InFlight and Waiting are current occupancy, not cumulative counters.
	InFlight int `json:"in_flight"`
	Waiting  int `json:"waiting"`
}

// waiter is one queued acquisition. The admission lock guards all fields;
// ready is closed exactly once, under the lock, when the waiter is granted.
type waiter struct {
	ctx     context.Context
	ready   chan struct{}
	granted bool
	// removed marks a waiter the dispatcher already took off the queue (shed
	// as dead), so the waiter's own cleanup must not account for it again.
	removed bool
}

// Admission is the service's admission controller: a capacity-bounded,
// per-tenant-limited, weighted-fair queue. The zero value is not usable; use
// NewAdmission.
type Admission struct {
	mu       sync.Mutex
	capacity int
	maxQueue int
	tenants  map[string]TenantConfig
	inflight map[string]int
	total    int
	queues   map[string][]*waiter
	waiting  int
	stats    AdmissionStats
}

// NewAdmission returns a controller admitting at most capacity concurrent
// acquisitions (values below 1 are treated as 1) and queueing at most
// maxQueue waiters (non-positive means an unbounded queue).
func NewAdmission(capacity, maxQueue int) *Admission {
	if capacity < 1 {
		capacity = 1
	}
	return &Admission{
		capacity: capacity,
		maxQueue: maxQueue,
		tenants:  make(map[string]TenantConfig),
		inflight: make(map[string]int),
		queues:   make(map[string][]*waiter),
	}
}

// SetTenant installs a tenant's admission policy. Tenants never configured
// get DefaultWeight and no per-tenant cap.
func (a *Admission) SetTenant(tenant string, cfg TenantConfig) {
	a.mu.Lock()
	a.tenants[tenant] = cfg
	a.mu.Unlock()
}

// Capacity returns the concurrent-acquisition bound.
func (a *Admission) Capacity() int { return a.capacity }

// Stats returns a snapshot of the admission counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.InFlight = a.total
	s.Waiting = a.waiting
	return s
}

// config returns the effective policy of a tenant.
func (a *Admission) config(tenant string) TenantConfig {
	cfg := a.tenants[tenant]
	if cfg.Weight <= 0 {
		cfg.Weight = DefaultWeight
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = a.capacity
	}
	return cfg
}

// admissible reports whether one more acquisition by tenant fits both bounds.
// Callers hold a.mu.
func (a *Admission) admissible(tenant string) bool {
	return a.total < a.capacity && a.inflight[tenant] < a.config(tenant).MaxInFlight
}

// Acquire claims one admission slot for tenant, waiting in the tenant's FIFO
// queue when none is free. It returns the release function that must be
// called exactly once when the analysis finishes. A context canceled while
// waiting sheds the waiter and returns the context's error; a full queue
// returns ErrRejected immediately.
func (a *Admission) Acquire(ctx context.Context, tenant string) (release func(), err error) {
	release, _, err = a.AcquireTracked(ctx, tenant)
	return release, err
}

// AcquireTracked is Acquire reporting whether the acquisition had to queue —
// the distinction the per-tenant metrics record (an immediate grant and a
// queued one both count as admitted, only the latter as queued).
func (a *Admission) AcquireTracked(ctx context.Context, tenant string) (release func(), queued bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	a.mu.Lock()
	// Grant immediately only when nobody of the same tenant is already
	// waiting — arrivals must not overtake their own tenant's FIFO queue.
	if len(a.queues[tenant]) == 0 && a.admissible(tenant) {
		a.grantLocked(tenant)
		a.mu.Unlock()
		return func() { a.release(tenant) }, false, nil
	}
	if a.maxQueue > 0 && a.waiting >= a.maxQueue {
		a.stats.Rejected++
		a.mu.Unlock()
		return nil, false, ErrRejected
	}
	w := &waiter{ctx: ctx, ready: make(chan struct{})}
	a.queues[tenant] = append(a.queues[tenant], w)
	a.waiting++
	a.stats.Queued++
	a.mu.Unlock()

	select {
	case <-w.ready:
		return func() { a.release(tenant) }, true, nil
	case <-ctx.Done():
	}
	// The context fired — but the grant may have raced it. The lock decides:
	// granted waiters were already removed from the queue and hold capacity,
	// so a caller that reports failure must give the slot back.
	a.mu.Lock()
	if w.granted {
		a.mu.Unlock()
		a.release(tenant)
		return nil, true, ctx.Err()
	}
	if !w.removed {
		q := a.queues[tenant]
		for i, qw := range q {
			if qw == w {
				a.queues[tenant] = append(q[:i], q[i+1:]...)
				if len(a.queues[tenant]) == 0 {
					delete(a.queues, tenant)
				}
				break
			}
		}
		a.waiting--
		a.stats.Shed++
	}
	a.mu.Unlock()
	return nil, true, ctx.Err()
}

// grantLocked books one acquisition. Callers hold a.mu.
func (a *Admission) grantLocked(tenant string) {
	a.total++
	a.inflight[tenant]++
	a.stats.Admitted++
}

// release returns tenant's slot and hands the freed capacity to the most
// deserving waiter.
func (a *Admission) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total--
	if a.inflight[tenant]--; a.inflight[tenant] == 0 {
		delete(a.inflight, tenant)
	}
	a.dispatchLocked()
}

// dispatchLocked grants freed capacity to queued waiters: repeatedly pick the
// admissible tenant with the lowest inflight/weight ratio (ties broken by
// tenant name, so scheduling is deterministic), shed queue heads whose
// context already fired, and grant the first live one. The loop ends when
// capacity is exhausted or no queued tenant is admissible.
func (a *Admission) dispatchLocked() {
	for {
		best := ""
		bestRatio := 0.0
		for tenant, q := range a.queues {
			if len(q) == 0 || !a.admissible(tenant) {
				continue
			}
			ratio := float64(a.inflight[tenant]) / a.config(tenant).Weight
			if best == "" || ratio < bestRatio || (ratio == bestRatio && tenant < best) {
				best, bestRatio = tenant, ratio
			}
		}
		if best == "" {
			return
		}
		q := a.queues[best]
		w := q[0]
		a.queues[best] = q[1:]
		if len(a.queues[best]) == 0 {
			delete(a.queues, best)
		}
		a.waiting--
		if w.ctx.Err() != nil {
			// Dead waiter: its Acquire is about to (or already did) observe
			// the context; marking it granted here would leak the slot.
			w.removed = true
			a.stats.Shed++
			continue
		}
		w.granted = true
		a.grantLocked(best)
		close(w.ready)
	}
}

// String renders the controller's configuration for logs.
func (a *Admission) String() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.tenants))
	for t := range a.tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	return fmt.Sprintf("admission{capacity: %d, maxQueue: %d, tenants: %v}", a.capacity, a.maxQueue, names)
}
