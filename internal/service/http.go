package service

// The observability endpoint: a small HTTP server beside the analysis
// protocol, so operators, load generators, and CI scrape state with curl and
// jq instead of speaking gob. Two routes:
//
//	GET /metrics — the full MetricsSnapshot as pretty-printed JSON
//	GET /healthz — 200 {"status":"ok"} while serving, 503
//	               {"status":"draining"} once shutdown began
//
// The endpoint is read-only and allocation-light: a scrape snapshots atomics,
// it never blocks a request. It listens on its own address (cosyd
// -metrics-addr) so the operational plane survives the analysis listener
// closing during drain — the CI soak gate scrapes after drain to check for
// goroutine and connection drift.

import (
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"time"
)

// MetricsSnapshot captures the whole process: the service sections from
// Service.MetricsSnapshot plus the server's drain state, connection count,
// and the process goroutine count.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	snap := s.svc.MetricsSnapshot()
	snap.Draining = s.Draining()
	snap.Conns = s.ConnCount()
	snap.Goroutines = runtime.NumGoroutine()
	return snap
}

// MetricsMux returns the HTTP handler serving /metrics and /healthz.
func (s *Server) MetricsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.MetricsSnapshot()); err != nil {
			s.logf("service: metrics encode: %v", err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		status, code := "ok", http.StatusOK
		if s.Draining() {
			status, code = "draining", http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]string{"status": status})
	})
	return mux
}

// ServeMetrics binds the observability endpoint to addr ("127.0.0.1:0" picks
// a free port) and serves it in the background. The returned http.Server is
// shut down by the caller (cosyd closes it after printing the final
// snapshot); the returned address is the bound one.
func (s *Server) ServeMetrics(addr string) (*http.Server, string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{
		Handler: s.MetricsMux(),
		// Scrapes are tiny; generous ceilings just bound a stuck peer.
		ReadHeaderTimeout: 5 * time.Second,
	}
	go hs.Serve(lis)
	return hs, lis.Addr().String(), nil
}
