package earl

import (
	"math"
	"testing"

	"repro/internal/apprentice"
	"repro/internal/model"
)

func machine(p int) apprentice.Machine { return apprentice.Machine{NoPe: p, ClockMHz: 450} }

func TestGenerateValidTraces(t *testing.T) {
	for name, w := range apprentice.Library() {
		t.Run(name, func(t *testing.T) {
			tr, err := Generate(w, machine(8), 42)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() == 0 || tr.NumPE() != 8 {
				t.Fatalf("trace: %d events, %d PEs", tr.Len(), tr.NumPE())
			}
			// Events are globally time ordered.
			for i := 1; i < tr.Len(); i++ {
				if tr.Event(i).Time < tr.Event(i-1).Time {
					t.Fatalf("event %d out of order", i)
				}
				if tr.Event(i).ID != i {
					t.Fatalf("event %d has ID %d", i, tr.Event(i).ID)
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(apprentice.Particles(), machine(8), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(apprentice.Particles(), machine(8), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Events() {
		if a.Event(i) != b.Event(i) {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestBarrierWaitsFindImbalance(t *testing.T) {
	tr, err := Generate(apprentice.Particles(), machine(16), 42)
	if err != nil {
		t.Fatal(err)
	}
	findings := BarrierWaits(tr)
	if len(findings) == 0 {
		t.Fatal("no barrier instances found")
	}
	top := findings[0]
	if top.Region != "forces" {
		t.Fatalf("top barrier wait at %s, want forces", top.Region)
	}
	// Under the linear ramp PE 0 has the least work (arrives first and
	// waits longest); PE 15 arrives last.
	if top.FirstPE != 0 || top.LastPE != 15 {
		t.Fatalf("extremal PEs: first %d last %d", top.FirstPE, top.LastPE)
	}
	if top.TotalWait <= 0 || top.Spread <= 0 {
		t.Fatalf("degenerate finding: %+v", top)
	}
}

func TestLateSendersAfterImbalancedCompute(t *testing.T) {
	// Imbalanced work with NO barrier before the exchange: the ring
	// neighbour of a more-loaded processor posts its receive early and
	// blocks until the late sender is ready.
	w := &apprentice.Workload{
		Name: "latesender",
		Funcs: []*apprentice.FuncSpec{{
			Name: "main",
			Regions: []*apprentice.RegionSpec{{
				Name: "main", Kind: model.KindProgram,
				Children: []*apprentice.RegionSpec{
					{Name: "work", Kind: model.KindLoop, ParallelWork: 8, Imbalance: 0.4},
					{Name: "exchange", Kind: model.KindBasicBlock,
						Calls: []apprentice.CallSpec{{Callee: "mpi_send", CallsPerPe: 100, TimePerCall: 1e-5}}},
				},
			}},
		}},
	}
	tr, err := Generate(w, machine(8), 42)
	if err != nil {
		t.Fatal(err)
	}
	findings := LateSenders(tr, 0)
	if len(findings) == 0 {
		t.Fatal("no late senders in an imbalanced exchange")
	}
	for _, f := range findings {
		if f.WaitTime <= 0 {
			t.Fatalf("non-positive wait: %+v", f)
		}
		if f.RecvPE == f.SendPE {
			t.Fatalf("self message: %+v", f)
		}
	}
}

// TestTraceAgreesWithSummary is the A4 ablation: folding the event trace
// back into per-region summed exclusive times must reproduce the summary
// simulator's compute times for the same workload (noise disabled so both
// paths are exactly analytic), and the trace's barrier wait must match the
// Barrier TypedTiming.
func TestTraceAgreesWithSummary(t *testing.T) {
	w := apprentice.Particles()
	w.Noise = 0 // identical analytic times on both paths

	tr, err := Generate(w, machine(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := apprentice.Simulate(w, []apprentice.Machine{machine(8)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := ds.Versions[0]
	run := v.Runs[0]

	regionTimes, err := RegionTimes(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range v.AllRegions() {
		tot := r.TotalFor(run)
		if tot == nil {
			continue
		}
		traceTime, ok := regionTimes[r.Name]
		if !ok {
			t.Errorf("region %s missing from trace", r.Name)
			continue
		}
		// The trace's exclusive time includes waiting at barriers/messages
		// (wall clock); the summary's Excl equals compute + overheads. They
		// must agree within the barrier base latency.
		if math.Abs(traceTime-tot.Excl) > 0.05*tot.Excl+1e-3 {
			t.Errorf("region %s: trace %.4f vs summary excl %.4f", r.Name, traceTime, tot.Excl)
		}
	}

	// Barrier wait comparison on the forces region.
	var forces *model.Region
	for _, r := range v.AllRegions() {
		if r.Name == "forces" {
			forces = r
		}
	}
	summaryBarrier := forces.TypedFor(run, model.Barrier)
	if summaryBarrier == nil {
		t.Fatal("summary lacks Barrier timing for forces")
	}
	traceWait := 0.0
	for _, f := range BarrierWaits(tr) {
		if f.Region == "forces" {
			traceWait += f.TotalWait
		}
	}
	if math.Abs(traceWait-summaryBarrier.Time) > 0.02*summaryBarrier.Time+1e-3 {
		t.Fatalf("forces barrier wait: trace %.4f vs summary %.4f", traceWait, summaryBarrier.Time)
	}
}

// TestTraceVolume quantifies the classic trade-off the paper's design
// avoids: event traces grow with processors and call volume, summary data
// does not.
func TestTraceVolume(t *testing.T) {
	small, err := Generate(apprentice.Stencil(), machine(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(apprentice.Stencil(), machine(64), 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.Len() < 10*small.Len() {
		t.Fatalf("trace volume did not scale with PEs: %d vs %d", small.Len(), big.Len())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func(events []Event, npe int) error { return New(events, npe).Validate() }
	if err := mk([]Event{{PE: 0, Kind: Exit, Region: "r"}}, 1); err == nil {
		t.Error("exit without enter accepted")
	}
	if err := mk([]Event{
		{PE: 0, Kind: Enter, Region: "a", Time: 0},
		{PE: 0, Kind: Exit, Region: "b", Time: 1},
	}, 1); err == nil {
		t.Error("mismatched exit accepted")
	}
	if err := mk([]Event{
		{PE: 0, Kind: Enter, Region: "a", Time: 0},
	}, 1); err == nil {
		t.Error("unclosed region accepted")
	}
	if err := mk([]Event{
		{PE: 0, Kind: Send, Partner: 1, Tag: 5, Time: 0},
	}, 2); err == nil {
		t.Error("unmatched send accepted")
	}
	if err := mk([]Event{
		{PE: 0, Kind: Recv, Partner: 1, Tag: 5, Time: 0},
	}, 2); err == nil {
		t.Error("unmatched recv accepted")
	}
	if err := mk([]Event{
		{PE: 0, Kind: Send, Partner: 1, Tag: 5, Time: 0},
		{PE: 0, Kind: Recv, Partner: 1, Tag: 5, Time: 1},
	}, 2); err == nil {
		t.Error("non-mirrored endpoints accepted")
	}
	if err := mk([]Event{
		{PE: 0, Kind: BarrierEnter, Tag: 1, Time: 0},
		{PE: 0, Kind: BarrierExit, Tag: 1, Time: 1},
	}, 2); err == nil {
		t.Error("partial barrier accepted")
	}
	// A complete well-formed fragment passes.
	if err := mk([]Event{
		{PE: 0, Kind: Enter, Region: "a", Time: 0},
		{PE: 1, Kind: Enter, Region: "a", Time: 0},
		{PE: 0, Kind: Send, Partner: 1, Tag: 1, Time: 1},
		{PE: 1, Kind: Recv, Partner: 0, Tag: 1, Time: 0.5},
		{PE: 0, Kind: BarrierEnter, Region: "a", Tag: 2, Time: 2},
		{PE: 1, Kind: BarrierEnter, Region: "a", Tag: 2, Time: 2.5},
		{PE: 0, Kind: BarrierExit, Region: "a", Tag: 2, Time: 2.5},
		{PE: 1, Kind: BarrierExit, Region: "a", Tag: 2, Time: 2.5},
		{PE: 0, Kind: Exit, Region: "a", Time: 3},
		{PE: 1, Kind: Exit, Region: "a", Time: 3},
	}, 2); err != nil {
		t.Errorf("well-formed trace rejected: %v", err)
	}
}

func TestRegionTimesNesting(t *testing.T) {
	tr := New([]Event{
		{PE: 0, Kind: Enter, Region: "outer", Time: 0},
		{PE: 0, Kind: Enter, Region: "inner", Time: 1},
		{PE: 0, Kind: Exit, Region: "inner", Time: 3},
		{PE: 0, Kind: Exit, Region: "outer", Time: 10},
	}, 1)
	times, err := RegionTimes(tr)
	if err != nil {
		t.Fatal(err)
	}
	if times["inner"] != 2 {
		t.Errorf("inner = %g", times["inner"])
	}
	if times["outer"] != 8 {
		t.Errorf("outer = %g (exclusive of inner)", times["outer"])
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(apprentice.Stencil(), apprentice.Machine{NoPe: 0}, 1); err == nil {
		t.Fatal("zero PEs accepted")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := Enter; k <= BarrierExit; k++ {
		if len(k.String()) == 0 || k.String()[0] == 'E' && k != Enter && k != Exit {
			_ = k
		}
	}
	if EventKind(99).String() == "" {
		t.Fatal("empty stringer")
	}
}
