// Package earl implements the event-trace alternative the paper contrasts
// with in Section 2: "Another approach is to define a performance
// bottleneck as an event pattern in program traces ... EARL describes event
// patterns in a more procedural fashion as scripts in a high-level event
// trace analysis language."
//
// The package provides the EARL-like primitives — a totally ordered event
// trace with per-processor streams, region-stack and message-queue state
// queries — plus the two classic pattern detectors (late sender, barrier
// wait imbalance), and a generator that derives traces from the same
// Apprentice workload specifications the summary simulator uses, so the
// trace-based and summary-based analyses can be compared on identical
// program behaviour (the A4 ablation in EXPERIMENTS.md).
package earl

import (
	"fmt"
	"sort"
)

// EventKind classifies trace events.
type EventKind int

// Event kinds.
const (
	Enter EventKind = iota
	Exit
	Send
	Recv
	BarrierEnter
	BarrierExit
)

// String returns the record spelling of the kind.
func (k EventKind) String() string {
	switch k {
	case Enter:
		return "ENTER"
	case Exit:
		return "EXIT"
	case Send:
		return "SEND"
	case Recv:
		return "RECV"
	case BarrierEnter:
		return "BENTER"
	case BarrierExit:
		return "BEXIT"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one trace record.
type Event struct {
	// ID is the position in the global time-ordered trace.
	ID int
	// PE is the processor the event occurred on.
	PE int
	// Time is seconds from program start.
	Time float64
	Kind EventKind
	// Region names the entered/exited region (Enter/Exit) or the barrier
	// instance's region (BarrierEnter/BarrierExit).
	Region string
	// Partner is the peer processor for Send/Recv.
	Partner int
	// Tag matches a Send with its Recv, and groups the BarrierEnter/Exit
	// events of one barrier instance.
	Tag int
}

// Trace is a complete event trace, globally ordered by time. Ties are
// broken by processor; equal-time events of one processor keep the order
// they were recorded in, which is that processor's program order.
type Trace struct {
	events []Event
	npe    int
}

// New assembles a trace from per-event records; the constructor sorts them
// into canonical global order and assigns IDs.
func New(events []Event, npe int) *Trace {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].PE < sorted[j].PE
	})
	for i := range sorted {
		sorted[i].ID = i
	}
	return &Trace{events: sorted, npe: npe}
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.events) }

// NumPE returns the number of processors.
func (t *Trace) NumPE() int { return t.npe }

// Event returns the i-th event of the global order (EARL's positional
// access).
func (t *Trace) Event(i int) Event { return t.events[i] }

// Events returns the full ordered slice (read-only by convention).
func (t *Trace) Events() []Event { return t.events }

// Validate checks trace well-formedness: per-PE region stacks balance,
// every Recv has a matching earlier-or-later Send with the same tag and
// mirrored endpoints, and barrier instances are complete (every PE enters
// and exits each barrier tag).
func (t *Trace) Validate() error {
	stacks := make(map[int][]string)
	sends := make(map[int]Event) // tag -> send
	recvs := make(map[int]Event)
	benter := make(map[int]int)
	bexit := make(map[int]int)
	for _, e := range t.events {
		switch e.Kind {
		case Enter:
			stacks[e.PE] = append(stacks[e.PE], e.Region)
		case Exit:
			st := stacks[e.PE]
			if len(st) == 0 {
				return fmt.Errorf("earl: PE %d exits %s with empty region stack", e.PE, e.Region)
			}
			if st[len(st)-1] != e.Region {
				return fmt.Errorf("earl: PE %d exits %s but innermost region is %s", e.PE, e.Region, st[len(st)-1])
			}
			stacks[e.PE] = st[:len(st)-1]
		case Send:
			if _, dup := sends[e.Tag]; dup {
				return fmt.Errorf("earl: duplicate send tag %d", e.Tag)
			}
			sends[e.Tag] = e
		case Recv:
			if _, dup := recvs[e.Tag]; dup {
				return fmt.Errorf("earl: duplicate recv tag %d", e.Tag)
			}
			recvs[e.Tag] = e
		case BarrierEnter:
			benter[e.Tag]++
		case BarrierExit:
			bexit[e.Tag]++
		}
	}
	for pe, st := range stacks {
		if len(st) != 0 {
			return fmt.Errorf("earl: PE %d ends with %d open regions", pe, len(st))
		}
	}
	for tag, s := range sends {
		r, ok := recvs[tag]
		if !ok {
			return fmt.Errorf("earl: send tag %d has no receive", tag)
		}
		if r.Partner != s.PE || s.Partner != r.PE {
			return fmt.Errorf("earl: message tag %d endpoints do not mirror", tag)
		}
	}
	for tag, r := range recvs {
		if _, ok := sends[tag]; !ok {
			return fmt.Errorf("earl: receive tag %d has no send", tag)
		}
		_ = r
	}
	for tag, n := range benter {
		if n != t.npe || bexit[tag] != t.npe {
			return fmt.Errorf("earl: barrier %d entered by %d and exited by %d of %d PEs", tag, n, bexit[tag], t.npe)
		}
	}
	return nil
}

// LateSenderFinding is the classic message pattern: the receiver posted its
// receive before the matching send happened, so WaitTime = send.Time -
// recv.Time was lost blocking.
type LateSenderFinding struct {
	RecvPE   int
	SendPE   int
	Tag      int
	WaitTime float64
}

// LateSenders scans the trace for the late-sender pattern, in the
// procedural style of the EARL scripts. minWait filters noise.
func LateSenders(t *Trace, minWait float64) []LateSenderFinding {
	sends := make(map[int]Event)
	var pending []Event
	var out []LateSenderFinding
	for _, e := range t.events {
		switch e.Kind {
		case Send:
			sends[e.Tag] = e
		case Recv:
			pending = append(pending, e)
		}
	}
	for _, r := range pending {
		s, ok := sends[r.Tag]
		if !ok {
			continue
		}
		if wait := s.Time - r.Time; wait > minWait {
			out = append(out, LateSenderFinding{RecvPE: r.PE, SendPE: s.PE, Tag: r.Tag, WaitTime: wait})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].WaitTime != out[j].WaitTime {
			return out[i].WaitTime > out[j].WaitTime
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// BarrierFinding summarizes one barrier instance: the spread between first
// and last arrival is the waiting the imbalanced processors caused.
type BarrierFinding struct {
	Region string
	Tag    int
	// FirstPE arrived earliest (waited longest); LastPE arrived last.
	FirstPE, LastPE int
	// TotalWait is the summed waiting of all processors.
	TotalWait float64
	// Spread is lastArrival - firstArrival.
	Spread float64
}

// BarrierWaits reconstructs per-instance barrier waiting from the
// BarrierEnter/BarrierExit events — the trace-level view of what the
// summary data aggregates into the Barrier TypedTiming and the barrier
// CallTiming records.
func BarrierWaits(t *Trace) []BarrierFinding {
	type inst struct {
		region          string
		enters          map[int]float64
		first, last     float64
		firstPE, lastPE int
		n               int
	}
	instances := make(map[int]*inst)
	var order []int
	for _, e := range t.events {
		if e.Kind != BarrierEnter {
			continue
		}
		in, ok := instances[e.Tag]
		if !ok {
			in = &inst{region: e.Region, enters: make(map[int]float64), first: e.Time, last: e.Time, firstPE: e.PE, lastPE: e.PE}
			instances[e.Tag] = in
			order = append(order, e.Tag)
		}
		in.enters[e.PE] = e.Time
		in.n++
		if e.Time < in.first {
			in.first, in.firstPE = e.Time, e.PE
		}
		if e.Time > in.last {
			in.last, in.lastPE = e.Time, e.PE
		}
	}
	var out []BarrierFinding
	for _, tag := range order {
		in := instances[tag]
		total := 0.0
		for _, at := range in.enters {
			total += in.last - at
		}
		out = append(out, BarrierFinding{
			Region: in.region, Tag: tag,
			FirstPE: in.firstPE, LastPE: in.lastPE,
			TotalWait: total, Spread: in.last - in.first,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TotalWait != out[j].TotalWait {
			return out[i].TotalWait > out[j].TotalWait
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// RegionTimes folds the trace back into per-region summed exclusive times —
// the bridge from the trace world to the summary world. It returns
// region -> summed-over-PEs exclusive seconds.
func RegionTimes(t *Trace) (map[string]float64, error) {
	type open struct {
		region string
		start  float64
		inner  float64 // time spent in nested regions
	}
	stacks := make(map[int][]*open)
	out := make(map[string]float64)
	for _, e := range t.events {
		switch e.Kind {
		case Enter:
			stacks[e.PE] = append(stacks[e.PE], &open{region: e.Region, start: e.Time})
		case Exit:
			st := stacks[e.PE]
			if len(st) == 0 || st[len(st)-1].region != e.Region {
				return nil, fmt.Errorf("earl: unbalanced exit of %s on PE %d", e.Region, e.PE)
			}
			top := st[len(st)-1]
			stacks[e.PE] = st[:len(st)-1]
			total := e.Time - top.start
			out[e.Region] += total - top.inner
			if len(stacks[e.PE]) > 0 {
				stacks[e.PE][len(stacks[e.PE])-1].inner += total
			}
		}
	}
	for pe, st := range stacks {
		if len(st) != 0 {
			return nil, fmt.Errorf("earl: PE %d ends with open regions", pe)
		}
	}
	return out, nil
}
