package earl

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/apprentice"
)

// Generate derives an event trace from an Apprentice workload specification
// for one machine configuration. The per-processor compute times follow the
// same analytic model as the summary simulator (parallel share with a
// linear imbalance ramp plus seeded jitter), so the trace-level patterns
// and the summary-level properties describe the same execution.
//
// Every region becomes Enter/Exit events per processor; regions with
// SyncAfter produce one barrier instance per processor; explicit call sites
// with a message-passing callee generate ring-neighbour Send/Recv pairs.
func Generate(w *apprentice.Workload, machine apprentice.Machine, seed int64) (*Trace, error) {
	if machine.NoPe <= 0 {
		return nil, fmt.Errorf("earl: machine with %d PEs", machine.NoPe)
	}
	g := &generator{
		npe:   machine.NoPe,
		clock: 450.0 / float64(machine.ClockMHz),
		rng:   rand.New(rand.NewSource(seed)),
		now:   make([]float64, machine.NoPe),
		noise: w.Noise,
	}
	for _, f := range w.Funcs {
		for _, r := range f.Regions {
			g.emitRegion(r)
		}
	}
	tr := New(g.events, machine.NoPe)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("earl: generated trace invalid: %w", err)
	}
	return tr, nil
}

type generator struct {
	npe    int
	clock  float64
	rng    *rand.Rand
	now    []float64 // per-PE clocks
	noise  float64
	events []Event
	tag    int
}

func (g *generator) jitter() float64 {
	if g.noise <= 0 {
		return 1
	}
	return 1 + g.noise*(2*g.rng.Float64()-1)
}

func ramp(pe, p int) float64 {
	if p <= 1 {
		return 0
	}
	return (2*float64(pe) - float64(p-1)) / float64(p-1)
}

func (g *generator) emit(e Event) { g.events = append(g.events, e) }

// emitRegion generates the events of one region on all processors.
func (g *generator) emitRegion(rs *apprentice.RegionSpec) {
	for pe := 0; pe < g.npe; pe++ {
		g.emit(Event{PE: pe, Time: g.now[pe], Kind: Enter, Region: rs.Name})
	}

	// Compute phase: advance each processor by its share plus the region's
	// typed overheads (matching the summary simulator's accounting).
	for pe := 0; pe < g.npe; pe++ {
		work := rs.SerialWork + rs.ParallelWork/float64(g.npe)*(1+rs.Imbalance*ramp(pe, g.npe))
		g.now[pe] += work * g.clock * g.jitter()
		for _, spec := range rs.Overheads {
			g.now[pe] += spec.PerProcessor(g.npe) * g.jitter()
		}
	}

	// Message phase: each messaging call site exchanges with the ring
	// neighbour. The send leaves when the sender is ready; the receive is
	// posted immediately, so imbalance shows up as the late-sender pattern.
	for _, cs := range rs.Calls {
		if !isMessaging(cs.Callee) || g.npe < 2 {
			continue
		}
		base := g.tag
		g.tag += g.npe
		for pe := 0; pe < g.npe; pe++ {
			dst := (pe + 1) % g.npe
			g.emit(Event{PE: pe, Time: g.now[pe], Kind: Send, Partner: dst, Tag: base + pe})
		}
		for pe := 0; pe < g.npe; pe++ {
			src := (pe - 1 + g.npe) % g.npe
			g.emit(Event{PE: pe, Time: g.now[pe], Kind: Recv, Partner: src, Tag: base + src})
		}
		// Message completion: the receiver proceeds when the sender's data
		// arrived.
		transfer := cs.TimePerCall * cs.CallsPerPe * g.clock
		newNow := make([]float64, g.npe)
		for pe := 0; pe < g.npe; pe++ {
			src := (pe - 1 + g.npe) % g.npe
			arrive := g.now[src] + transfer
			newNow[pe] = math.Max(g.now[pe], arrive)
		}
		copy(g.now, newNow)
	}

	// Nested regions.
	for _, child := range rs.Children {
		g.emitRegion(child)
	}

	// Barrier at region exit: everyone advances to the latest arrival.
	if rs.SyncAfter && g.npe > 1 {
		tag := g.tag
		g.tag++
		last := 0.0
		for pe := 0; pe < g.npe; pe++ {
			g.emit(Event{PE: pe, Time: g.now[pe], Kind: BarrierEnter, Region: rs.Name, Tag: tag})
			if g.now[pe] > last {
				last = g.now[pe]
			}
		}
		for pe := 0; pe < g.npe; pe++ {
			g.now[pe] = last
			g.emit(Event{PE: pe, Time: g.now[pe], Kind: BarrierExit, Region: rs.Name, Tag: tag})
		}
	}

	for pe := 0; pe < g.npe; pe++ {
		g.emit(Event{PE: pe, Time: g.now[pe], Kind: Exit, Region: rs.Name})
	}
}

func isMessaging(callee string) bool {
	switch callee {
	case "mpi_send", "mpi_recv", "send", "recv", "exchange":
		return true
	}
	return false
}
