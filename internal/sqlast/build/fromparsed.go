package build

import (
	"fmt"

	"repro/internal/sqldb"
)

// FromParsedSelect converts a SELECT parsed by sqldb into a build tree. It
// exists for the render→reparse round-trip fuzzer: any SELECT the engine
// parser accepts becomes a tree whose kojakdb rendering must parse and
// execute identically. Every binary, unary, IS NULL, and IN node is wrapped
// in Paren so the rendering never depends on parser precedence.
func FromParsedSelect(s *sqldb.SelectStmt) (*Select, error) {
	c := &fromParsed{}
	out := c.sel(s)
	if c.err != nil {
		return nil, c.err
	}
	return out, nil
}

type fromParsed struct{ err error }

func (c *fromParsed) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("sqlast: %s", fmt.Sprintf(format, args...))
	}
}

func (c *fromParsed) sel(s *sqldb.SelectStmt) *Select {
	if s == nil {
		return nil
	}
	out := &Select{}
	for _, it := range s.Items {
		out.Items = append(out.Items, Item{Star: it.Star, Expr: c.expr(it.Expr), As: it.Alias})
	}
	if s.From != nil {
		out.From = &Table{Name: s.From.Table, Alias: s.From.Alias}
	}
	for _, j := range s.Joins {
		out.Joins = append(out.Joins, Join{
			Table: Table{Name: j.Table.Table, Alias: j.Table.Alias},
			On:    c.expr(j.On),
		})
	}
	if s.Where != nil {
		out.Where = []Expr{c.expr(s.Where)}
	}
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, c.expr(g))
	}
	if s.Having != nil {
		out.Having = c.expr(s.Having)
	}
	for _, k := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderKey{Expr: c.expr(k.Expr), Desc: k.Desc, NullsFirst: k.NullsFirst})
	}
	if s.Limit != nil {
		out.Limit = c.expr(s.Limit)
	}
	return out
}

func (c *fromParsed) expr(e sqldb.Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqldb.EColumn:
		return &Col{Table: x.Qual, Name: x.Name}
	case *sqldb.ELit:
		return c.lit(x.Value)
	case *sqldb.EParam:
		if x.Name != "" {
			return &Param{Name: x.Name, Kind: KindAny}
		}
		return &Ordinal{N: x.Ordinal}
	case *sqldb.EBinary:
		return &Paren{X: &Bin{Op: binOpOf(x.Op), L: c.expr(x.L), R: c.expr(x.R)}}
	case *sqldb.EUnary:
		op := OpNot
		if x.Neg {
			op = OpNeg
		}
		return &Paren{X: &Un{Op: op, X: c.expr(x.X)}}
	case *sqldb.ECall:
		out := &Call{Name: x.Name, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, c.expr(a))
		}
		return out
	case *sqldb.ESubquery:
		return &Subquery{Sel: c.sel(x.Select)}
	case *sqldb.EIsNull:
		return &Paren{X: &IsNull{X: c.expr(x.X), Not: x.Not}}
	case *sqldb.EIn:
		out := &In{X: c.expr(x.X), Not: x.Not, Sub: c.sel(x.Sub)}
		for _, a := range x.List {
			out.List = append(out.List, c.expr(a))
		}
		return &Paren{X: out}
	case *sqldb.EExists:
		return &Exists{Sel: c.sel(x.Select)}
	}
	c.fail("unhandled parsed expression %T", e)
	return nil
}

func (c *fromParsed) lit(v sqldb.Value) Expr {
	switch {
	case v.IsNull():
		return &Null{}
	case v.IsInt():
		return &Int{V: v.Int()}
	case v.IsNumeric():
		return &Float{V: v.Float()}
	case v.IsBool():
		return &Bool{V: v.Bool()}
	default:
		return &Str{V: v.Text()}
	}
}

func binOpOf(op sqldb.BinOp) BinOp {
	switch op {
	case sqldb.OpAdd:
		return OpAdd
	case sqldb.OpSub:
		return OpSub
	case sqldb.OpMul:
		return OpMul
	case sqldb.OpDiv:
		return OpDiv
	case sqldb.OpMod:
		return OpMod
	case sqldb.OpEq:
		return OpEq
	case sqldb.OpNeq:
		return OpNeq
	case sqldb.OpLt:
		return OpLt
	case sqldb.OpLeq:
		return OpLeq
	case sqldb.OpGt:
		return OpGt
	case sqldb.OpGeq:
		return OpGeq
	case sqldb.OpAnd:
		return OpAnd
	case sqldb.OpOr:
		return OpOr
	}
	return OpConcat
}
