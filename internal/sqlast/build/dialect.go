package build

import "sort"

// ParamStyle selects how a dialect spells statement parameters.
type ParamStyle int

// Parameter marker styles.
const (
	// ParamDollar spells named parameters "$name" (kojakdb).
	ParamDollar ParamStyle = iota
	// ParamColon spells named parameters ":name" (Oracle OCI).
	ParamColon
	// ParamQuestion spells every parameter as a positional "?" (SQL-92
	// dynamic SQL); the renderer reports the marker-order parameter names in
	// Rendered.ParamOrder so callers can bind by position.
	ParamQuestion
)

// LimitStyle selects how a dialect spells a row limit.
type LimitStyle int

// Row-limit spellings.
const (
	// LimitKeyword is "LIMIT n".
	LimitKeyword LimitStyle = iota
	// LimitFetchFirst is "FETCH FIRST n ROWS ONLY" (SQL:2008 / DB2).
	LimitFetchFirst
	// LimitUnsupported makes rendering a Select with a Limit an error: the
	// dialect has no semantics-preserving spelling (Oracle 7 ROWNUM
	// predicates filter before ORDER BY).
	LimitUnsupported
)

// Dialect describes how to spell a statement for one database family. All
// divergence is declarative — the renderer is shared — so the dialect matrix
// in docs/SQL.md is read straight off these fields.
type Dialect struct {
	Name string

	// IdentQuote wraps identifiers in the given quote byte; zero renders
	// them bare. Identifiers are validated either way.
	IdentQuote byte
	// UpperIdents folds identifiers to upper case (the historic Oracle
	// data-dictionary convention).
	UpperIdents bool

	ParamStyle ParamStyle
	LimitStyle LimitStyle

	// ExplicitNullOrder renders NULLS FIRST/LAST on every ORDER BY key.
	// The engine default (and the ASL contract) is NULLs-last regardless of
	// direction; dialects whose vendor default differs must spell it out.
	ExplicitNullOrder bool

	// BoolAsInt renders TRUE/FALSE as 1/0 for dialects without boolean
	// literals.
	BoolAsInt bool

	// Types spells the abstract column types, indexed by ColType.
	Types [4]string
}

// Kojakdb is the canonical dialect: the exact strings the pre-AST sqlgen
// compiler concatenated, byte for byte, so plan-cache and result-cache keys
// survive the refactor.
var Kojakdb = &Dialect{
	Name:       "kojakdb",
	ParamStyle: ParamDollar,
	LimitStyle: LimitKeyword,
	Types:      [4]string{"INTEGER", "REAL", "TEXT", "BOOLEAN"},
}

// ANSI targets the standard: quoted identifiers, positional "?" markers
// (SQL-92 dynamic SQL), FETCH FIRST, and explicit NULL ordering.
var ANSI = &Dialect{
	Name:              "ansi",
	IdentQuote:        '"',
	ParamStyle:        ParamQuestion,
	LimitStyle:        LimitFetchFirst,
	ExplicitNullOrder: true,
	Types:             [4]string{"INTEGER", "DOUBLE PRECISION", "VARCHAR(255)", "BOOLEAN"},
}

// Oracle7 targets the oldest vendor of the paper's Section 5 comparison:
// upper-cased bare identifiers, ":name" markers, no boolean type (NUMBER(1)
// with 1/0 literals), no LIMIT spelling at all, and explicit NULL ordering
// (the vendor default is NULLs-high — last ascending but first descending,
// unlike the engine contract).
var Oracle7 = &Dialect{
	Name:              "oracle7",
	UpperIdents:       true,
	ParamStyle:        ParamColon,
	LimitStyle:        LimitUnsupported,
	ExplicitNullOrder: true,
	BoolAsInt:         true,
	Types:             [4]string{"NUMBER(19)", "NUMBER", "VARCHAR2(255)", "NUMBER(1)"},
}

var dialects = map[string]*Dialect{
	Kojakdb.Name: Kojakdb,
	ANSI.Name:    ANSI,
	Oracle7.Name: Oracle7,
}

// Lookup returns the named dialect.
func Lookup(name string) (*Dialect, bool) {
	d, ok := dialects[name]
	return d, ok
}

// Names returns the registered dialect names, sorted.
func Names() []string {
	out := make([]string, 0, len(dialects))
	for n := range dialects {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
