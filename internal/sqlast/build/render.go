package build

import (
	"fmt"
	"strconv"
	"strings"
)

// Rendered is the output of a Render pass.
type Rendered struct {
	// SQL is the statement text in the dialect's spelling.
	SQL string
	// ParamOrder lists named-parameter names in marker-occurrence order
	// (duplicates included) for positional-marker dialects; nil for dialects
	// with named markers. Bind position i with the value of ParamOrder[i].
	ParamOrder []string
}

// Render spells the statement for the dialect. Every identifier and
// parameter name is validated; an invalid one fails the whole render — no
// partially-escaped statement is ever returned.
func Render(s Stmt, d *Dialect) (Rendered, error) {
	r := &renderer{d: d}
	r.stmt(s)
	if r.err != nil {
		return Rendered{}, r.err
	}
	if d.ParamStyle == ParamQuestion && r.sawNamed && r.sawOrdinal {
		return Rendered{}, fmt.Errorf("sqlast: dialect %s: statement mixes named and ordinal parameters; marker order would be ambiguous", d.Name)
	}
	return Rendered{SQL: r.b.String(), ParamOrder: r.order}, nil
}

// Render spells the statement for the receiver dialect.
func (d *Dialect) Render(s Stmt) (Rendered, error) { return Render(s, d) }

type renderer struct {
	d          *Dialect
	b          strings.Builder
	order      []string
	sawNamed   bool
	sawOrdinal bool
	err        error
}

func (r *renderer) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("sqlast: "+format, args...)
	}
}

func (r *renderer) ident(s string) {
	if !ValidIdent(s) {
		r.fail("invalid identifier %q", s)
		return
	}
	if r.d.UpperIdents {
		s = strings.ToUpper(s)
	}
	if q := r.d.IdentQuote; q != 0 {
		r.b.WriteByte(q)
		r.b.WriteString(s)
		r.b.WriteByte(q)
		return
	}
	r.b.WriteString(s)
}

func (r *renderer) stmt(s Stmt) {
	switch x := s.(type) {
	case *Select:
		r.sel(x)
	case *Insert:
		r.insert(x)
	case *CreateTable:
		r.createTable(x)
	case *CreateIndex:
		r.createIndex(x)
	default:
		r.fail("unhandled statement %T", s)
	}
}

func (r *renderer) table(t Table) {
	r.ident(t.Name)
	if t.Alias != "" {
		r.b.WriteString(" ")
		r.ident(t.Alias)
	}
}

func (r *renderer) sel(s *Select) {
	if s == nil {
		r.fail("nil SELECT")
		return
	}
	if len(s.Items) == 0 {
		r.fail("SELECT with no items")
		return
	}
	r.b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			r.b.WriteString(", ")
		}
		if it.Star {
			r.b.WriteString("*")
		} else if it.Expr == nil {
			r.fail("SELECT item with neither * nor an expression")
		} else {
			r.expr(it.Expr)
		}
		if it.As != "" {
			r.b.WriteString(" AS ")
			r.ident(it.As)
		}
	}
	if s.From != nil {
		r.b.WriteString(" FROM ")
		r.table(*s.From)
		for _, j := range s.Joins {
			r.b.WriteString(" JOIN ")
			r.table(j.Table)
			r.b.WriteString(" ON ")
			r.expr(j.On)
		}
	} else if len(s.Joins) > 0 {
		r.fail("JOIN without FROM")
	}
	if len(s.Where) > 0 {
		r.b.WriteString(" WHERE ")
		for i, w := range s.Where {
			if i > 0 {
				r.b.WriteString(" AND ")
			}
			r.expr(w)
		}
	}
	if len(s.GroupBy) > 0 {
		r.b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				r.b.WriteString(", ")
			}
			r.expr(g)
		}
	}
	if s.Having != nil {
		r.b.WriteString(" HAVING ")
		r.expr(s.Having)
	}
	if len(s.OrderBy) > 0 {
		r.b.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				r.b.WriteString(", ")
			}
			r.expr(k.Expr)
			if k.Desc {
				r.b.WriteString(" DESC")
			}
			switch {
			case r.d.ExplicitNullOrder && k.NullsFirst:
				r.b.WriteString(" NULLS FIRST")
			case r.d.ExplicitNullOrder:
				r.b.WriteString(" NULLS LAST")
			case k.NullsFirst:
				r.b.WriteString(" NULLS FIRST")
			}
		}
	}
	if s.Limit != nil {
		switch r.d.LimitStyle {
		case LimitKeyword:
			r.b.WriteString(" LIMIT ")
			r.expr(s.Limit)
		case LimitFetchFirst:
			r.b.WriteString(" FETCH FIRST ")
			r.expr(s.Limit)
			r.b.WriteString(" ROWS ONLY")
		case LimitUnsupported:
			r.fail("dialect %s has no semantics-preserving LIMIT spelling", r.d.Name)
		}
	}
}

func (r *renderer) insert(s *Insert) {
	if len(s.Cols) != len(s.Values) {
		r.fail("INSERT INTO %s: %d columns but %d values", s.Table, len(s.Cols), len(s.Values))
		return
	}
	r.b.WriteString("INSERT INTO ")
	r.ident(s.Table)
	r.b.WriteString(" (")
	for i, c := range s.Cols {
		if i > 0 {
			r.b.WriteString(", ")
		}
		r.ident(c)
	}
	r.b.WriteString(") VALUES (")
	for i, v := range s.Values {
		if i > 0 {
			r.b.WriteString(", ")
		}
		r.expr(v)
	}
	r.b.WriteString(")")
}

func (r *renderer) createTable(s *CreateTable) {
	if len(s.Cols) == 0 {
		r.fail("CREATE TABLE %s with no columns", s.Name)
		return
	}
	r.b.WriteString("CREATE TABLE ")
	r.ident(s.Name)
	r.b.WriteString(" (")
	for i, c := range s.Cols {
		if i > 0 {
			r.b.WriteString(", ")
		}
		r.ident(c.Name)
		if c.Type < 0 || int(c.Type) >= len(r.d.Types) {
			r.fail("CREATE TABLE %s: column %s has unknown type %d", s.Name, c.Name, c.Type)
			return
		}
		r.b.WriteString(" ")
		r.b.WriteString(r.d.Types[c.Type])
		if c.PrimaryKey {
			r.b.WriteString(" PRIMARY KEY")
		}
		if c.NotNull {
			r.b.WriteString(" NOT NULL")
		}
	}
	r.b.WriteString(")")
}

func (r *renderer) createIndex(s *CreateIndex) {
	if len(s.Cols) == 0 {
		r.fail("CREATE INDEX %s with no columns", s.Name)
		return
	}
	r.b.WriteString("CREATE INDEX ")
	r.ident(s.Name)
	r.b.WriteString(" ON ")
	r.ident(s.Table)
	r.b.WriteString(" (")
	for i, c := range s.Cols {
		if i > 0 {
			r.b.WriteString(", ")
		}
		r.ident(c)
	}
	r.b.WriteString(")")
}

func (r *renderer) expr(e Expr) {
	switch x := e.(type) {
	case *Int:
		r.b.WriteString(strconv.FormatInt(x.V, 10))
	case *Float:
		r.b.WriteString(strconv.FormatFloat(x.V, 'g', -1, 64))
	case *Str:
		r.b.WriteString("'")
		r.b.WriteString(strings.ReplaceAll(x.V, "'", "''"))
		r.b.WriteString("'")
	case *Bool:
		switch {
		case r.d.BoolAsInt && x.V:
			r.b.WriteString("1")
		case r.d.BoolAsInt:
			r.b.WriteString("0")
		case x.V:
			r.b.WriteString("TRUE")
		default:
			r.b.WriteString("FALSE")
		}
	case *Null:
		r.b.WriteString("NULL")
	case *Param:
		if !ValidIdent(x.Name) {
			r.fail("invalid parameter name %q", x.Name)
			return
		}
		r.sawNamed = true
		switch r.d.ParamStyle {
		case ParamDollar:
			r.b.WriteString("$")
			r.b.WriteString(x.Name)
		case ParamColon:
			r.b.WriteString(":")
			r.b.WriteString(x.Name)
		case ParamQuestion:
			r.b.WriteString("?")
			r.order = append(r.order, x.Name)
		}
	case *Ordinal:
		r.sawOrdinal = true
		r.b.WriteString("?")
	case *Col:
		if x.Table != "" {
			r.ident(x.Table)
			r.b.WriteString(".")
		}
		r.ident(x.Name)
	case *Bin:
		r.expr(x.L)
		r.b.WriteString(" ")
		r.b.WriteString(x.Op.String())
		r.b.WriteString(" ")
		r.expr(x.R)
	case *Un:
		if x.Op == OpNeg {
			r.b.WriteString("-")
		} else {
			r.b.WriteString("NOT ")
		}
		r.expr(x.X)
	case *Paren:
		r.b.WriteString("(")
		r.expr(x.X)
		r.b.WriteString(")")
	case *IsNull:
		r.expr(x.X)
		if x.Not {
			r.b.WriteString(" IS NOT NULL")
		} else {
			r.b.WriteString(" IS NULL")
		}
	case *Call:
		// Function names share the identifier alphabet but are never
		// quoted or case-folded: they name engine builtins, not schema
		// objects.
		if !ValidIdent(x.Name) {
			r.fail("invalid function name %q", x.Name)
			return
		}
		r.b.WriteString(x.Name)
		r.b.WriteString("(")
		if x.Star {
			r.b.WriteString("*")
		}
		for i, a := range x.Args {
			if i > 0 {
				r.b.WriteString(", ")
			}
			r.expr(a)
		}
		r.b.WriteString(")")
	case *Subquery:
		r.b.WriteString("(")
		r.sel(x.Sel)
		r.b.WriteString(")")
	case *In:
		r.expr(x.X)
		if x.Not {
			r.b.WriteString(" NOT IN (")
		} else {
			r.b.WriteString(" IN (")
		}
		if x.Sub != nil {
			r.sel(x.Sub)
		} else {
			for i, a := range x.List {
				if i > 0 {
					r.b.WriteString(", ")
				}
				r.expr(a)
			}
		}
		r.b.WriteString(")")
	case *Exists:
		r.b.WriteString("EXISTS (")
		r.sel(x.Sel)
		r.b.WriteString(")")
	case nil:
		r.fail("nil expression")
	default:
		r.fail("unhandled expression %T", e)
	}
}
