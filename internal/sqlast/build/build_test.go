package build

import (
	"strings"
	"testing"
)

// propertyShapedSelect builds a tree shaped like a compiled ASL property:
// a scalar aggregate subquery over a junction join, with named parameters.
func propertyShapedSelect() *Select {
	inner := &Select{
		Items: []Item{{Expr: &Call{Name: "SUM", Args: []Expr{&Col{Table: "a1", Name: "Time"}}}}},
		From:  &Table{Name: "Region_TypTimes", Alias: "j2"},
		Joins: []Join{{
			Table: Table{Name: "TypedTiming", Alias: "a1"},
			On:    &Bin{Op: OpEq, L: &Col{Table: "a1", Name: "id"}, R: &Col{Table: "j2", Name: "elem_id"}},
		}},
		Where: []Expr{
			&Bin{Op: OpEq, L: &Col{Table: "j2", Name: "owner_id"}, R: &Param{Name: "r", Kind: KindInt}},
			&Paren{X: &Bin{Op: OpEq, L: &Col{Table: "a1", Name: "Run_id"}, R: &Param{Name: "t", Kind: KindInt}}},
		},
	}
	return &Select{Items: []Item{
		{Expr: &Paren{X: &Bin{Op: OpGt,
			L: &Call{Name: "COALESCE", Args: []Expr{&Subquery{Sel: inner}, &Int{V: 0}}},
			R: &Int{V: 0}}}, As: "c0"},
		{Expr: &Int{V: 1}, As: "f0"},
	}}
}

func TestKojakdbCanonicalSpelling(t *testing.T) {
	r, err := Kojakdb.Render(propertyShapedSelect())
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT (COALESCE((SELECT SUM(a1.Time) FROM Region_TypTimes j2 JOIN TypedTiming a1 " +
		"ON a1.id = j2.elem_id WHERE j2.owner_id = $r AND (a1.Run_id = $t)), 0) > 0) AS c0, 1 AS f0"
	if r.SQL != want {
		t.Errorf("kojakdb spelling:\n got: %s\nwant: %s", r.SQL, want)
	}
	if r.ParamOrder != nil {
		t.Errorf("named-marker dialect returned ParamOrder %v", r.ParamOrder)
	}
}

func TestANSISpelling(t *testing.T) {
	r, err := ANSI.Render(propertyShapedSelect())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Region_TypTimes" "j2"`, `"a1"."Run_id"`, `owner_id" = ?`} {
		if !strings.Contains(r.SQL, want) {
			t.Errorf("ansi spelling lacks %q:\n%s", want, r.SQL)
		}
	}
	if strings.Contains(r.SQL, "$") {
		t.Errorf("ansi spelling leaked a $ marker:\n%s", r.SQL)
	}
	if len(r.ParamOrder) != 2 || r.ParamOrder[0] != "r" || r.ParamOrder[1] != "t" {
		t.Errorf("ParamOrder = %v, want [r t]", r.ParamOrder)
	}
}

func TestOracle7Spelling(t *testing.T) {
	r, err := Oracle7.Render(propertyShapedSelect())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"REGION_TYPTIMES J2", "A1.RUN_ID = :t", "J2.OWNER_ID = :r"} {
		if !strings.Contains(r.SQL, want) {
			t.Errorf("oracle7 spelling lacks %q:\n%s", want, r.SQL)
		}
	}
	// Function names are builtins, not schema objects: never case-folded.
	if !strings.Contains(r.SQL, "SUM(") || !strings.Contains(r.SQL, "COALESCE(") {
		t.Errorf("oracle7 spelling mangled function names:\n%s", r.SQL)
	}
	if r.ParamOrder != nil {
		t.Errorf("named-marker dialect returned ParamOrder %v", r.ParamOrder)
	}
}

func TestDialectDivergenceMatrix(t *testing.T) {
	sel := &Select{
		Items:   []Item{{Expr: &Col{Name: "x"}}, {Expr: &Bool{V: true}, As: "b"}},
		From:    &Table{Name: "T"},
		OrderBy: []OrderKey{{Expr: &Col{Name: "x"}, Desc: true}},
		Limit:   &Int{V: 5},
	}
	kj, err := Kojakdb.Render(sel)
	if err != nil {
		t.Fatal(err)
	}
	if want := "SELECT x, TRUE AS b FROM T ORDER BY x DESC LIMIT 5"; kj.SQL != want {
		t.Errorf("kojakdb:\n got: %s\nwant: %s", kj.SQL, want)
	}
	an, err := ANSI.Render(sel)
	if err != nil {
		t.Fatal(err)
	}
	if want := `SELECT "x", TRUE AS "b" FROM "T" ORDER BY "x" DESC NULLS LAST FETCH FIRST 5 ROWS ONLY`; an.SQL != want {
		t.Errorf("ansi:\n got: %s\nwant: %s", an.SQL, want)
	}
	// Oracle 7 has no LIMIT spelling at all.
	if _, err := Oracle7.Render(sel); err == nil {
		t.Error("oracle7 rendered a LIMIT without error")
	}
	sel.Limit = nil
	or, err := Oracle7.Render(sel)
	if err != nil {
		t.Fatal(err)
	}
	if want := "SELECT X, 1 AS B FROM T ORDER BY X DESC NULLS LAST"; or.SQL != want {
		t.Errorf("oracle7:\n got: %s\nwant: %s", or.SQL, want)
	}
	// NULLS FIRST spells out in every dialect (the engine default is last).
	sel.OrderBy[0].NullsFirst = true
	kj2, err := Kojakdb.Render(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(kj2.SQL, "ORDER BY x DESC NULLS FIRST") {
		t.Errorf("kojakdb NULLS FIRST missing: %s", kj2.SQL)
	}
}

// TestInjectionRejected is the astql-style suite: hostile identifiers and
// parameter names must fail the render, in every dialect — quoting is not an
// escape hatch.
func TestInjectionRejected(t *testing.T) {
	hostile := []string{
		"", "1abc", "a b", "a;DROP TABLE T", `a"b`, "a'b", "a--", "a.b", "Schüler", "a\x00b",
	}
	for _, name := range Names() {
		d, _ := Lookup(name)
		for _, h := range hostile {
			cases := []Stmt{
				&Select{Items: []Item{{Expr: &Col{Name: h}}}},
				&Select{Items: []Item{{Star: true}}, From: &Table{Name: h}},
				&Select{Items: []Item{{Expr: &Param{Name: h}}}},
				&Select{Items: []Item{{Expr: &Call{Name: h, Star: true}}}},
				&Insert{Table: h, Cols: []string{"c"}, Values: []Expr{&Int{V: 1}}},
				&Insert{Table: "T", Cols: []string{h}, Values: []Expr{&Int{V: 1}}},
				&CreateTable{Name: h, Cols: []ColDef{{Name: "id", Type: TInt}}},
				&CreateTable{Name: "T", Cols: []ColDef{{Name: h, Type: TInt}}},
				&CreateIndex{Name: h, Table: "T", Cols: []string{"c"}},
			}
			// Table qualifier, item alias, and table alias are optional:
			// empty means absent there, so only non-empty hostiles apply.
			if h != "" {
				cases = append(cases,
					&Select{Items: []Item{{Expr: &Col{Table: h, Name: "ok"}}}},
					&Select{Items: []Item{{Expr: &Int{V: 1}, As: h}}},
					&Select{Items: []Item{{Star: true}}, From: &Table{Name: "T", Alias: h}})
			}
			for i, s := range cases {
				if _, err := d.Render(s); err == nil {
					t.Errorf("dialect %s case %d: hostile identifier %q rendered without error", name, i, h)
				}
			}
		}
	}
	// Hostile string *values* are fine — they are escaped, not rejected.
	r, err := Kojakdb.Render(&Select{Items: []Item{{Expr: &Str{V: "'; DROP TABLE T; --"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if want := "SELECT '''; DROP TABLE T; --'"; r.SQL != want {
		t.Errorf("string escaping:\n got: %s\nwant: %s", r.SQL, want)
	}
}

func TestMixedMarkersRejectedWhenPositional(t *testing.T) {
	sel := &Select{Items: []Item{
		{Expr: &Param{Name: "p"}},
		{Expr: &Ordinal{N: 0}},
	}}
	if _, err := ANSI.Render(sel); err == nil {
		t.Error("ansi rendered mixed named+ordinal markers without error")
	}
	if _, err := Kojakdb.Render(sel); err != nil {
		t.Errorf("kojakdb rejects mixed markers: %v", err)
	}
}

func TestNamedParams(t *testing.T) {
	sel := propertyShapedSelect()
	ps, err := NamedParams(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].Name != "r" || ps[1].Name != "t" {
		t.Errorf("NamedParams = %v", ps)
	}
	if ps[0].Kind != KindInt {
		t.Errorf("param r kind = %v, want int", ps[0].Kind)
	}
	conflicted := &Select{Items: []Item{
		{Expr: &Param{Name: "p", Kind: KindInt}},
		{Expr: &Param{Name: "p", Kind: KindText}},
	}}
	if _, err := NamedParams(conflicted); err == nil {
		t.Error("conflicting kinds for one name accepted")
	}
}

func TestFloatAndStringLiterals(t *testing.T) {
	r, err := Kojakdb.Render(&Select{Items: []Item{
		{Expr: &Float{V: 0.25}},
		{Expr: &Float{V: 1e21}},
		{Expr: &Str{V: "it's"}},
		{Expr: &Null{}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if want := "SELECT 0.25, 1e+21, 'it''s', NULL"; r.SQL != want {
		t.Errorf("literals:\n got: %s\nwant: %s", r.SQL, want)
	}
}
