// Package build is a typed, validated SQL query AST with per-dialect
// renderers. It replaces the string concatenation sqlgen used to assemble
// statements with: construction of explicit nodes, identifier validation at
// render time (the injection kill — no identifier with quotes, spaces, or
// punctuation ever reaches a statement), typed named parameters, and a
// Render pass that spells the same tree for different database dialects
// (quoting, parameter markers, LIMIT, NULL ordering, column types).
//
// The kojakdb dialect is canonical: for every statement sqlgen generates, the
// kojakdb rendering is byte-identical to the strings the old concatenating
// compiler produced, so plan-cache and result-cache keys are unaffected by
// the refactor. See docs/SQL.md for the generated subset grammar and the
// dialect divergence matrix.
package build

import "fmt"

// Stmt is a renderable SQL statement.
type Stmt interface{ stmt() }

// Expr is a renderable SQL expression.
type Expr interface{ expr() }

// Int is an integer literal.
type Int struct{ V int64 }

// Float is a floating-point literal, rendered with strconv 'g' formatting.
type Float struct{ V float64 }

// Str is a string literal; the renderer quotes it and doubles embedded
// quotes.
type Str struct{ V string }

// Bool is a boolean literal (TRUE/FALSE, or 1/0 in dialects without boolean
// literals).
type Bool struct{ V bool }

// Null is the NULL literal.
type Null struct{}

// ParamKind is the declared value type of a named parameter; bindings are
// checked against it.
type ParamKind int

// Parameter kinds. KindAny accepts every value (used by the fuzzer's
// converter, where no declaration exists to check against).
const (
	KindAny ParamKind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

// String returns a human-readable kind name.
func (k ParamKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindText:
		return "text"
	case KindBool:
		return "bool"
	}
	return "any"
}

// Param is a named statement parameter. The marker spelling is per dialect
// ($name, :name, or a positional ? recorded in Rendered.ParamOrder).
type Param struct {
	Name string
	Kind ParamKind
}

// Ordinal is a positional "?" parameter, bound by position. Load plans use
// these; a positional-marker dialect rejects statements mixing Ordinal with
// named parameters (the marker order would be ambiguous).
type Ordinal struct{ N int }

// Col is a column reference, optionally qualified by a table name or alias.
type Col struct {
	Table string // empty if unqualified
	Name  string
}

// BinOp is a binary SQL operator.
type BinOp int

// Binary operators, in the spelling of the generated subset.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
	OpAnd
	OpOr
	OpConcat
)

// String returns the SQL spelling of the operator.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNeq:
		return "<>"
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	}
	return "?"
}

// Bin is a binary operation. It renders bare ("l op r"); wrap it in Paren
// when the surrounding precedence requires grouping. The ASL compiler
// parenthesizes every operation it emits, so its trees are Paren{Bin{...}}.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	OpNeg UnOp = iota // -x
	OpNot             // NOT x
)

// Un is a unary operation; like Bin it renders bare.
type Un struct {
	Op UnOp
	X  Expr
}

// Paren is explicit grouping: "(x)". Parenthesization is part of the node
// tree, not renderer policy, so the canonical dialect reproduces the old
// compiler's output byte for byte.
type Paren struct{ X Expr }

// IsNull is "x IS [NOT] NULL"; renders bare.
type IsNull struct {
	X   Expr
	Not bool
}

// Call is a function or aggregate call; Star marks COUNT(*).
type Call struct {
	Name string
	Args []Expr
	Star bool
}

// Subquery is a scalar subquery; renders with its own parentheses.
type Subquery struct{ Sel *Select }

// In is "x [NOT] IN (SELECT ...)" or "x [NOT] IN (e1, e2, ...)"; renders
// bare. Exactly one of Sub and List is set.
type In struct {
	X    Expr
	Sub  *Select // nil when List is set
	List []Expr
	Not  bool
}

// Exists is "EXISTS (SELECT ...)".
type Exists struct{ Sel *Select }

func (*Int) expr()      {}
func (*Float) expr()    {}
func (*Str) expr()      {}
func (*Bool) expr()     {}
func (*Null) expr()     {}
func (*Param) expr()    {}
func (*Ordinal) expr()  {}
func (*Col) expr()      {}
func (*Bin) expr()      {}
func (*Un) expr()       {}
func (*Paren) expr()    {}
func (*IsNull) expr()   {}
func (*Call) expr()     {}
func (*Subquery) expr() {}
func (*In) expr()       {}
func (*Exists) expr()   {}

// Item is one projection of a SELECT list.
type Item struct {
	Star bool   // SELECT *
	Expr Expr   // nil when Star
	As   string // optional AS alias
}

// Table names a table with an optional alias.
type Table struct {
	Name  string
	Alias string
}

// Join is one JOIN clause.
type Join struct {
	Table Table
	On    Expr
}

// OrderKey is one ORDER BY key. The engine contract (and the canonical
// dialect default) is NULLs-last regardless of direction; NullsFirst asks
// for the opposite. Dialects whose vendor default differs render the
// placement explicitly.
type OrderKey struct {
	Expr       Expr
	Desc       bool
	NullsFirst bool
}

// Select is a SELECT statement. Where predicates are joined with AND.
type Select struct {
	Items   []Item
	From    *Table // nil for table-less SELECT
	Joins   []Join
	Where   []Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderKey
	Limit   Expr // nil if absent
}

// Insert is "INSERT INTO table (cols) VALUES (values)".
type Insert struct {
	Table  string
	Cols   []string
	Values []Expr
}

// ColType is an abstract column type; each dialect spells it differently.
type ColType int

// Column types of the generated schema.
const (
	TInt ColType = iota
	TFloat
	TText
	TBool
)

// ColDef is one column of a CREATE TABLE.
type ColDef struct {
	Name       string
	Type       ColType
	PrimaryKey bool
	NotNull    bool
}

// CreateTable is "CREATE TABLE name (cols)".
type CreateTable struct {
	Name string
	Cols []ColDef
}

// CreateIndex is "CREATE INDEX name ON table (cols)".
type CreateIndex struct {
	Name  string
	Table string
	Cols  []string
}

func (*Select) stmt()      {}
func (*Insert) stmt()      {}
func (*CreateTable) stmt() {}
func (*CreateIndex) stmt() {}

// ValidIdent reports whether s is a safe SQL identifier: a letter or
// underscore followed by letters, digits, or underscores. The renderer
// rejects everything else, in every dialect — quoting is a spelling choice,
// never an escape hatch for hostile names.
func ValidIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// NamedParams returns the named parameters referenced by the statement,
// unique, in first-occurrence order. A name referenced with two different
// declared kinds is an error.
func NamedParams(s Stmt) ([]Param, error) {
	c := &paramCollector{seen: make(map[string]ParamKind)}
	c.stmt(s)
	return c.out, c.err
}

type paramCollector struct {
	seen map[string]ParamKind
	out  []Param
	err  error
}

func (c *paramCollector) add(p *Param) {
	if k, ok := c.seen[p.Name]; ok {
		if k != p.Kind && c.err == nil {
			c.err = fmt.Errorf("sqlast: parameter $%s referenced as both %s and %s", p.Name, k, p.Kind)
		}
		return
	}
	c.seen[p.Name] = p.Kind
	c.out = append(c.out, *p)
}

func (c *paramCollector) stmt(s Stmt) {
	switch x := s.(type) {
	case *Select:
		c.sel(x)
	case *Insert:
		for _, v := range x.Values {
			c.expr(v)
		}
	}
}

func (c *paramCollector) sel(s *Select) {
	if s == nil {
		return
	}
	for _, it := range s.Items {
		c.expr(it.Expr)
	}
	for _, j := range s.Joins {
		c.expr(j.On)
	}
	for _, w := range s.Where {
		c.expr(w)
	}
	for _, g := range s.GroupBy {
		c.expr(g)
	}
	c.expr(s.Having)
	for _, k := range s.OrderBy {
		c.expr(k.Expr)
	}
	c.expr(s.Limit)
}

func (c *paramCollector) expr(e Expr) {
	switch x := e.(type) {
	case nil:
	case *Param:
		c.add(x)
	case *Bin:
		c.expr(x.L)
		c.expr(x.R)
	case *Un:
		c.expr(x.X)
	case *Paren:
		c.expr(x.X)
	case *IsNull:
		c.expr(x.X)
	case *Call:
		for _, a := range x.Args {
			c.expr(a)
		}
	case *Subquery:
		c.sel(x.Sel)
	case *In:
		c.expr(x.X)
		c.sel(x.Sub)
		for _, a := range x.List {
			c.expr(a)
		}
	case *Exists:
		c.sel(x.Sel)
	}
}
