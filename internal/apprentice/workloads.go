package apprentice

import "repro/internal/model"

// The workload library: the synthetic applications used by the benchmark
// harness and examples. Each seeds a different dominant bottleneck so the
// COSY properties have distinct, predictable rankings.

// Stencil returns a well-balanced 5-point stencil sweep: dominant cost is
// nearest-neighbour communication, with a light barrier per iteration.
// Expected ranking: CommunicationCost > SyncCost.
func Stencil() *Workload {
	return &Workload{
		Name:  "stencil2d",
		Noise: 0.01,
		Funcs: []*FuncSpec{
			{
				Name: "main",
				Regions: []*RegionSpec{{
					Name: "main", Kind: model.KindProgram,
					SerialWork: 0.05,
					Children: []*RegionSpec{
						{
							Name: "init", Kind: model.KindLoop,
							ParallelWork: 2.0,
							Overheads: map[model.TimingType]OverheadSpec{
								model.Startup: {PerPe: 0.002},
							},
						},
						{
							Name: "iterate", Kind: model.KindLoop,
							Children: []*RegionSpec{
								{
									Name: "sweep", Kind: model.KindLoop,
									ParallelWork: 24.0, Imbalance: 0.03, SyncAfter: true,
								},
								{
									Name: "exchange", Kind: model.KindBasicBlock,
									Overheads: map[model.TimingType]OverheadSpec{
										model.Send:       {PerPe: 0.010, Log2Pe: 0.004},
										model.Receive:    {PerPe: 0.010, Log2Pe: 0.004},
										model.PackUnpack: {PerPe: 0.002},
									},
									Calls: []CallSpec{
										{Callee: "mpi_send", CallsPerPe: 400, TimePerCall: 2.5e-5},
										{Callee: "mpi_recv", CallsPerPe: 400, TimePerCall: 2.5e-5},
									},
								},
								{
									Name: "residual", Kind: model.KindBasicBlock,
									ParallelWork: 2.0,
									Overheads: map[model.TimingType]OverheadSpec{
										model.Reduce: {Log2Pe: 0.006},
									},
									SyncAfter: true,
								},
							},
						},
					},
				}},
			},
		},
	}
}

// Particles returns a strongly load-imbalanced particle simulation: the
// spatial decomposition concentrates particles on low-numbered processors.
// Expected ranking: SyncCost and LoadImbalance dominate.
func Particles() *Workload {
	return &Workload{
		Name:  "particles",
		Noise: 0.01,
		Funcs: []*FuncSpec{
			{
				Name: "main",
				Regions: []*RegionSpec{{
					Name: "main", Kind: model.KindProgram,
					SerialWork: 0.05,
					Children: []*RegionSpec{
						{
							Name: "decompose", Kind: model.KindSubprogram,
							SerialWork: 0.4,
						},
						{
							Name: "step", Kind: model.KindLoop,
							Children: []*RegionSpec{
								{
									Name: "forces", Kind: model.KindLoop,
									ParallelWork: 30.0, Imbalance: 0.45, SyncAfter: true,
								},
								{
									Name: "migrate", Kind: model.KindBasicBlock,
									Overheads: map[model.TimingType]OverheadSpec{
										model.Send:    {PerPe: 0.004},
										model.Receive: {PerPe: 0.004},
									},
								},
							},
						},
					},
				}},
			},
		},
	}
}

// IOBound returns a checkpoint-heavy workload where every processor funnels
// output through the I/O subsystem. Expected ranking: IOCost dominates.
func IOBound() *Workload {
	return &Workload{
		Name:  "checkpointer",
		Noise: 0.01,
		Funcs: []*FuncSpec{
			{
				Name: "main",
				Regions: []*RegionSpec{{
					Name: "main", Kind: model.KindProgram,
					Children: []*RegionSpec{
						{
							Name: "compute", Kind: model.KindLoop,
							ParallelWork: 12.0, Imbalance: 0.02, SyncAfter: true,
						},
						{
							Name: "checkpoint", Kind: model.KindSubprogram,
							Overheads: map[model.TimingType]OverheadSpec{
								model.IOOpen:  {PerPe: 0.003},
								model.IOWrite: {PerPe: 0.050, LinearPe: 0.002},
								model.IOWait:  {LinearPe: 0.004},
								model.IOClose: {PerPe: 0.002},
							},
							Calls: []CallSpec{
								{Callee: "write_restart", CallsPerPe: 12, TimePerCall: 6e-3},
							},
						},
					},
				}},
			},
		},
	}
}

// AllToAll returns a transpose-style workload with quadratic communication
// volume. Expected ranking: CommunicationCost dominates and grows with the
// partition size.
func AllToAll() *Workload {
	return &Workload{
		Name:  "fft3d",
		Noise: 0.01,
		Funcs: []*FuncSpec{
			{
				Name: "main",
				Regions: []*RegionSpec{{
					Name: "main", Kind: model.KindProgram,
					Children: []*RegionSpec{
						{
							Name: "fftpass", Kind: model.KindLoop,
							ParallelWork: 16.0, SyncAfter: true,
						},
						{
							Name: "transpose", Kind: model.KindBasicBlock,
							Overheads: map[model.TimingType]OverheadSpec{
								model.AllToAll:   {LinearPe: 0.012},
								model.BufferCopy: {PerPe: 0.008},
							},
						},
					},
				}},
			},
		},
	}
}

// Amdahl returns a workload with a large replicated serial section, the
// classic sublinear-speedup shape: total cost grows linearly with the
// partition while measured overhead stays small (UnmeasuredCost dominates).
func Amdahl() *Workload {
	return &Workload{
		Name:  "amdahl",
		Noise: 0.01,
		Funcs: []*FuncSpec{
			{
				Name: "main",
				Regions: []*RegionSpec{{
					Name: "main", Kind: model.KindProgram,
					Children: []*RegionSpec{
						{
							Name: "serial_setup", Kind: model.KindSubprogram,
							SerialWork: 6.0,
						},
						{
							Name: "parallel_core", Kind: model.KindLoop,
							ParallelWork: 20.0, Imbalance: 0.02, SyncAfter: true,
						},
					},
				}},
			},
		},
	}
}

// FineGrained returns a workload dominated by very frequent tiny calls, the
// signal for the FrequentFineGrainedCalls property (and Paradyn's
// TooManySmallIOOps analogue).
func FineGrained() *Workload {
	return &Workload{
		Name:  "finegrained",
		Noise: 0.01,
		Funcs: []*FuncSpec{
			{
				Name: "main",
				Regions: []*RegionSpec{{
					Name: "main", Kind: model.KindProgram,
					Children: []*RegionSpec{
						{
							Name: "work", Kind: model.KindLoop,
							ParallelWork: 4.0, SyncAfter: true,
							Overheads: map[model.TimingType]OverheadSpec{
								model.RuntimeSystem: {PerPe: 0.100},
							},
							Calls: []CallSpec{
								{Callee: "get_cell", CallsPerPe: 300000, TimePerCall: 3e-6},
								{Callee: "put_cell", CallsPerPe: 300000, TimePerCall: 3e-6},
							},
						},
					},
				}},
			},
		},
	}
}

// Library returns all standard workloads keyed by name.
func Library() map[string]*Workload {
	lib := make(map[string]*Workload)
	for _, w := range []*Workload{Stencil(), Particles(), IOBound(), AllToAll(), Amdahl(), FineGrained()} {
		lib[w.Name] = w
	}
	return lib
}

// ScaledStencil returns a stencil workload whose region tree is widened to
// produce datasets of controllable size: nfuncs functions, each with nloops
// instrumented loops. It is used by the database benchmarks, where dataset
// volume (not bottleneck structure) is the variable.
func ScaledStencil(nfuncs, nloops int) *Workload {
	w := &Workload{Name: "scaled", Noise: 0.01}
	main := &FuncSpec{Name: "main", Regions: []*RegionSpec{{
		Name: "main", Kind: model.KindProgram, SerialWork: 0.01,
	}}}
	w.Funcs = append(w.Funcs, main)
	for f := 0; f < nfuncs; f++ {
		fs := &FuncSpec{Name: fname(f)}
		root := &RegionSpec{Name: fname(f) + "_body", Kind: model.KindSubprogram}
		for l := 0; l < nloops; l++ {
			root.Children = append(root.Children, &RegionSpec{
				Name: fname(f) + "_loop" + itoa(l), Kind: model.KindLoop,
				ParallelWork: 0.5, Imbalance: 0.05, SyncAfter: l%2 == 0,
				Overheads: map[model.TimingType]OverheadSpec{
					model.Send:    {PerPe: 0.001},
					model.Receive: {PerPe: 0.001},
				},
				Calls: []CallSpec{
					{Callee: "kernel" + itoa(l%4), CallsPerPe: 100, TimePerCall: 1e-5},
				},
			})
		}
		fs.Regions = append(fs.Regions, root)
		w.Funcs = append(w.Funcs, fs)
	}
	return w
}

func fname(i int) string { return "sub" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
