package apprentice

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
)

// The Apprentice summary-file format. The real MPP Apprentice wrote its
// post-processed summary information to a file which was then transferred
// into the COSY database; this package defines an equivalent line-oriented
// text format:
//
//	APPRENTICE 1
//	program <name>
//	version <compile-unix-time>
//	run <start-unix-time> <nope> <clockMHz>            (one per test run)
//	function <name>
//	region <id> <parent-id|-> <kind> <name>            (pre-order, per function)
//	tot <run-index> <excl> <incl> <ovhd>               (within current region)
//	typ <run-index> <TimingType> <time>
//	call <callee> <caller-function> <region-id>
//	sum <run-index> <12 call-timing fields>
//	end
//
// Identifiers with spaces are not supported; the simulator never generates
// them. Numbers use Go's shortest round-trip float formatting, so a
// write/read cycle is lossless.

// WriteSummary writes a single-version dataset in summary format.
func WriteSummary(w io.Writer, d *model.Dataset) error {
	if len(d.Versions) != 1 {
		return fmt.Errorf("apprentice: summary files hold exactly one program version, dataset has %d", len(d.Versions))
	}
	if err := d.Validate(); err != nil {
		return err
	}
	v := d.Versions[0]
	bw := bufio.NewWriter(w)

	runIdx := make(map[*model.TestRun]int)
	regionID := make(map[*model.Region]int)
	nextRegion := 0

	fmt.Fprintln(bw, "APPRENTICE 1")
	fmt.Fprintf(bw, "program %s\n", d.Program)
	fmt.Fprintf(bw, "version %d\n", v.Compilation.Unix())
	for i, run := range v.Runs {
		runIdx[run] = i
		fmt.Fprintf(bw, "run %d %d %d\n", run.Start.Unix(), run.NoPe, run.Clockspeed)
	}
	for _, f := range v.Functions {
		fmt.Fprintf(bw, "function %s\n", f.Name)
		for _, root := range f.Regions {
			root.Walk(func(r *model.Region) {
				id := nextRegion
				nextRegion++
				regionID[r] = id
				parent := "-"
				if r.Parent != nil {
					parent = strconv.Itoa(regionID[r.Parent])
				}
				fmt.Fprintf(bw, "region %d %s %s %s\n", id, parent, r.Kind, r.Name)
				for _, tt := range r.TotTimes {
					fmt.Fprintf(bw, "tot %d %s %s %s\n", runIdx[tt.Run], ftoa(tt.Excl), ftoa(tt.Incl), ftoa(tt.Ovhd))
				}
				for _, tt := range r.TypTimes {
					fmt.Fprintf(bw, "typ %d %s %s\n", runIdx[tt.Run], tt.Type, ftoa(tt.Time))
				}
			})
		}
	}
	for _, f := range v.Functions {
		for _, call := range f.Calls {
			caller := "-"
			if call.Caller != nil {
				caller = call.Caller.Name
			}
			reg := -1
			if call.CallingReg != nil {
				reg = regionID[call.CallingReg]
			}
			fmt.Fprintf(bw, "call %s %s %d\n", call.Callee, caller, reg)
			for _, ct := range call.Sums {
				fmt.Fprintf(bw, "sum %d %s %s %s %s %d %d %s %s %s %s %d %d\n",
					runIdx[ct.Run],
					ftoa(ct.MinCalls), ftoa(ct.MaxCalls), ftoa(ct.MeanCalls), ftoa(ct.StdevCalls),
					ct.PeMinCalls, ct.PeMaxCalls,
					ftoa(ct.MinTime), ftoa(ct.MaxTime), ftoa(ct.MeanTime), ftoa(ct.StdevTime),
					ct.PeMinTime, ct.PeMaxTime)
			}
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ReadSummary parses a summary file back into a dataset.
func ReadSummary(r io.Reader) (*model.Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	readLine := func() ([]string, error) {
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			return strings.Fields(text), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("apprentice: line %d: %s", line, fmt.Sprintf(format, args...))
	}

	fields, err := readLine()
	if err != nil || len(fields) != 2 || fields[0] != "APPRENTICE" || fields[1] != "1" {
		return nil, fail("missing APPRENTICE 1 header")
	}

	d := &model.Dataset{}
	v := &model.Version{}
	d.Versions = []*model.Version{v}

	var runs []*model.TestRun
	regions := make(map[int]*model.Region)
	funcs := make(map[string]*model.Function)
	var curFunc *model.Function
	var curRegion *model.Region
	var curCall *model.FunctionCall
	sawEnd := false

	for {
		fields, err = readLine()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch fields[0] {
		case "program":
			if len(fields) != 2 {
				return nil, fail("program wants 1 argument")
			}
			d.Program = fields[1]
		case "version":
			ts, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fail("bad version timestamp: %v", err)
			}
			v.Compilation = time.Unix(ts, 0).UTC()
		case "run":
			if len(fields) != 4 {
				return nil, fail("run wants 3 arguments")
			}
			ts, err1 := strconv.ParseInt(fields[1], 10, 64)
			nope, err2 := strconv.Atoi(fields[2])
			clock, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fail("bad run record")
			}
			run := &model.TestRun{Start: time.Unix(ts, 0).UTC(), NoPe: nope, Clockspeed: clock}
			runs = append(runs, run)
			v.Runs = append(v.Runs, run)
		case "function":
			if len(fields) != 2 {
				return nil, fail("function wants 1 argument")
			}
			curFunc = &model.Function{Name: fields[1]}
			funcs[curFunc.Name] = curFunc
			v.Functions = append(v.Functions, curFunc)
			curRegion, curCall = nil, nil
		case "region":
			if curFunc == nil {
				return nil, fail("region outside function")
			}
			if len(fields) != 5 {
				return nil, fail("region wants 4 arguments")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad region id: %v", err)
			}
			// fields: region <id> <parent> <kind> <name>
			reg := &model.Region{Name: fields[4], Kind: model.RegionKind(fields[3])}
			if fields[2] != "-" {
				pid, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fail("bad parent id: %v", err)
				}
				parent, ok := regions[pid]
				if !ok {
					return nil, fail("region %d references unknown parent %d", id, pid)
				}
				reg.Parent = parent
				parent.Children = append(parent.Children, reg)
			} else {
				curFunc.Regions = append(curFunc.Regions, reg)
			}
			if _, dup := regions[id]; dup {
				return nil, fail("duplicate region id %d", id)
			}
			regions[id] = reg
			curRegion = reg
		case "tot":
			if curRegion == nil {
				return nil, fail("tot outside region")
			}
			if len(fields) != 5 {
				return nil, fail("tot wants 4 arguments")
			}
			ri, err := strconv.Atoi(fields[1])
			if err != nil || ri < 0 || ri >= len(runs) {
				return nil, fail("bad run index %s", fields[1])
			}
			excl, e1 := strconv.ParseFloat(fields[2], 64)
			incl, e2 := strconv.ParseFloat(fields[3], 64)
			ovhd, e3 := strconv.ParseFloat(fields[4], 64)
			if e1 != nil || e2 != nil || e3 != nil {
				return nil, fail("bad tot record")
			}
			curRegion.TotTimes = append(curRegion.TotTimes, &model.TotalTiming{Run: runs[ri], Excl: excl, Incl: incl, Ovhd: ovhd})
		case "typ":
			if curRegion == nil {
				return nil, fail("typ outside region")
			}
			if len(fields) != 4 {
				return nil, fail("typ wants 3 arguments")
			}
			ri, err := strconv.Atoi(fields[1])
			if err != nil || ri < 0 || ri >= len(runs) {
				return nil, fail("bad run index %s", fields[1])
			}
			tt, err := model.ParseTimingType(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			t, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fail("bad typ time: %v", err)
			}
			curRegion.TypTimes = append(curRegion.TypTimes, &model.TypedTiming{Run: runs[ri], Type: tt, Time: t})
		case "call":
			if len(fields) != 4 {
				return nil, fail("call wants 3 arguments")
			}
			callee, ok := funcs[fields[1]]
			if !ok {
				return nil, fail("call references unknown callee %s", fields[1])
			}
			call := &model.FunctionCall{Callee: fields[1]}
			if fields[2] != "-" {
				caller, ok := funcs[fields[2]]
				if !ok {
					return nil, fail("call references unknown caller %s", fields[2])
				}
				call.Caller = caller
			}
			rid, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fail("bad call region id: %v", err)
			}
			if rid >= 0 {
				reg, ok := regions[rid]
				if !ok {
					return nil, fail("call references unknown region %d", rid)
				}
				call.CallingReg = reg
			}
			callee.Calls = append(callee.Calls, call)
			curCall = call
		case "sum":
			if curCall == nil {
				return nil, fail("sum outside call")
			}
			if len(fields) != 14 {
				return nil, fail("sum wants 13 arguments")
			}
			ri, err := strconv.Atoi(fields[1])
			if err != nil || ri < 0 || ri >= len(runs) {
				return nil, fail("bad run index %s", fields[1])
			}
			fs := make([]float64, 8)
			is := make([]int, 4)
			order := []int{2, 3, 4, 5, 8, 9, 10, 11}
			for i, fi := range order {
				if fs[i], err = strconv.ParseFloat(fields[fi], 64); err != nil {
					return nil, fail("bad sum field %d: %v", fi, err)
				}
			}
			for i, fi := range []int{6, 7, 12, 13} {
				if is[i], err = strconv.Atoi(fields[fi]); err != nil {
					return nil, fail("bad sum field %d: %v", fi, err)
				}
			}
			curCall.Sums = append(curCall.Sums, &model.CallTiming{
				Run:      runs[ri],
				MinCalls: fs[0], MaxCalls: fs[1], MeanCalls: fs[2], StdevCalls: fs[3],
				PeMinCalls: is[0], PeMaxCalls: is[1],
				MinTime: fs[4], MaxTime: fs[5], MeanTime: fs[6], StdevTime: fs[7],
				PeMinTime: is[2], PeMaxTime: is[3],
			})
		case "end":
			sawEnd = true
		default:
			return nil, fail("unknown record %q", fields[0])
		}
	}
	if !sawEnd {
		return nil, fmt.Errorf("apprentice: truncated summary file (no end record)")
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("apprentice: summary file invalid: %w", err)
	}
	return d, nil
}
