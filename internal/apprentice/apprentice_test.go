package apprentice

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
)

func simulate(t *testing.T, w *Workload, pes ...int) *model.Dataset {
	t.Helper()
	if len(pes) == 0 {
		pes = []int{2, 8, 32}
	}
	ds, err := Simulate(w, PartitionSweep(pes...), 42)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSimulateProducesValidDatasets(t *testing.T) {
	for name, w := range Library() {
		t.Run(name, func(t *testing.T) {
			ds := simulate(t, w)
			if err := ds.Validate(); err != nil {
				t.Fatal(err)
			}
			st := ds.Stats()
			if st.Runs != 3 || st.Regions == 0 || st.TotalTimings != st.Regions*3 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a := simulate(t, Particles())
	b := simulate(t, Particles())
	var bufA, bufB bytes.Buffer
	if err := WriteSummary(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummary(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same seed must produce identical datasets")
	}
	c, err := Simulate(Particles(), PartitionSweep(2, 8, 32), 43)
	if err != nil {
		t.Fatal(err)
	}
	var bufC bytes.Buffer
	if err := WriteSummary(&bufC, c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA.Bytes(), bufC.Bytes()) {
		t.Fatal("different seeds must differ")
	}
}

func TestWorkConservation(t *testing.T) {
	// With zero noise and no overheads, the summed exclusive time of a
	// purely parallel region must be independent of the partition size.
	w := &Workload{
		Name: "conserve",
		Funcs: []*FuncSpec{{
			Name: "main",
			Regions: []*RegionSpec{{
				Name: "main", Kind: model.KindProgram,
				Children: []*RegionSpec{{
					Name: "par", Kind: model.KindLoop,
					ParallelWork: 10.0, Imbalance: 0.4,
				}},
			}},
		}},
	}
	ds := simulate(t, w, 2, 16, 64)
	v := ds.Versions[0]
	var par *model.Region
	for _, r := range v.AllRegions() {
		if r.Name == "par" {
			par = r
		}
	}
	for _, run := range v.Runs {
		tot := par.TotalFor(run)
		if math.Abs(tot.Excl-10.0) > 1e-9 {
			t.Errorf("NoPe=%d: summed exclusive %.12f, want 10 (imbalance ramp must conserve work)", run.NoPe, tot.Excl)
		}
	}
}

func TestBarrierWaitMatchesImbalance(t *testing.T) {
	w := &Workload{
		Name: "bar",
		Funcs: []*FuncSpec{{
			Name: "main",
			Regions: []*RegionSpec{{
				Name: "main", Kind: model.KindProgram,
				Children: []*RegionSpec{{
					Name: "work", Kind: model.KindLoop,
					ParallelWork: 8.0, Imbalance: 0.5, SyncAfter: true,
				}},
			}},
		}},
	}
	ds := simulate(t, w, 4)
	v := ds.Versions[0]
	run := v.Runs[0]
	var work *model.Region
	for _, r := range v.AllRegions() {
		if r.Name == "work" {
			work = r
		}
	}
	barrier := work.TypedFor(run, model.Barrier)
	if barrier == nil {
		t.Fatal("no barrier timing recorded")
	}
	// Work per PE = 2.0*(1 + 0.5*ramp); slowest has 3.0. Total wait =
	// sum(3.0 - w_p) = 4*3 - 8 = 4 (plus tiny base latency).
	if math.Abs(barrier.Time-4.0) > 0.01 {
		t.Fatalf("barrier wait %.4f, want ≈4.0", barrier.Time)
	}
	// The barrier call site records the extremal processors: the most
	// loaded PE (last under the ramp) waits least.
	fn := v.FunctionByName(model.BarrierFunction)
	if fn == nil || len(fn.Calls) == 0 {
		t.Fatal("no barrier call site")
	}
	ct := fn.Calls[0].Sums[0]
	if ct.PeMinTime != 3 || ct.PeMaxTime != 0 {
		t.Fatalf("extremal PEs: min@%d max@%d, want min@3 max@0", ct.PeMinTime, ct.PeMaxTime)
	}
}

func TestOverheadScaling(t *testing.T) {
	spec := OverheadSpec{PerPe: 1, Log2Pe: 2, LinearPe: 0.5}
	if got := spec.PerProcessor(1); got != 1.5 {
		t.Errorf("PerProcessor(1) = %g", got)
	}
	if got := spec.PerProcessor(8); got != 1+2*3+0.5*8 {
		t.Errorf("PerProcessor(8) = %g", got)
	}
	neg := OverheadSpec{PerPe: -5}
	if neg.PerProcessor(2) != 0 {
		t.Error("negative overhead must clamp to zero")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(Stencil(), nil, 1); err == nil {
		t.Fatal("no machines must fail")
	}
	if _, err := Simulate(Stencil(), []Machine{{NoPe: 0, ClockMHz: 450}}, 1); err == nil {
		t.Fatal("zero PEs must fail")
	}
	if _, err := Simulate(Stencil(), []Machine{{NoPe: 4, ClockMHz: 450}, {NoPe: 4, ClockMHz: 450}}, 1); err == nil {
		t.Fatal("duplicate partition sizes must fail")
	}
}

func TestClockspeedScaling(t *testing.T) {
	w := Amdahl()
	fast, err := Simulate(w, []Machine{{NoPe: 4, ClockMHz: 450}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Simulate(w, []Machine{{NoPe: 4, ClockMHz: 300}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr := fast.Versions[0].RootRegion().TotalFor(fast.Versions[0].Runs[0])
	sr := slow.Versions[0].RootRegion().TotalFor(slow.Versions[0].Runs[0])
	ratio := sr.Incl / fr.Incl
	if math.Abs(ratio-1.5) > 0.05 {
		t.Fatalf("300MHz/450MHz time ratio = %.3f, want ≈1.5", ratio)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	for name, w := range Library() {
		t.Run(name, func(t *testing.T) {
			ds := simulate(t, w)
			var buf bytes.Buffer
			if err := WriteSummary(&buf, ds); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSummary(&buf)
			if err != nil {
				t.Fatal(err)
			}
			// Write again: byte-identical means the round trip is lossless.
			var buf2 bytes.Buffer
			if err := WriteSummary(&buf2, got); err != nil {
				t.Fatal(err)
			}
			var buf3 bytes.Buffer
			if err := WriteSummary(&buf3, ds); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
				t.Fatal("summary round trip is lossy")
			}
			if !reflect.DeepEqual(ds.Stats(), got.Stats()) {
				t.Fatalf("stats differ: %+v vs %+v", ds.Stats(), got.Stats())
			}
		})
	}
}

func TestReadSummaryErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"badheader", "NOPE 1\nend\n"},
		{"truncated", "APPRENTICE 1\nprogram x\nversion 0\nrun 0 2 450\n"},
		{"regionOutsideFunction", "APPRENTICE 1\nprogram x\nversion 0\nrun 0 2 450\nregion 0 - loop l\nend\n"},
		{"unknownParent", "APPRENTICE 1\nprogram x\nversion 0\nrun 0 2 450\nfunction f\nregion 0 7 loop l\nend\n"},
		{"badRunIndex", "APPRENTICE 1\nprogram x\nversion 0\nrun 0 2 450\nfunction f\nregion 0 - loop l\ntot 5 1 1 0\nend\n"},
		{"badTimingType", "APPRENTICE 1\nprogram x\nversion 0\nrun 0 2 450\nfunction f\nregion 0 - loop l\ntyp 0 Bogus 1\nend\n"},
		{"sumOutsideCall", "APPRENTICE 1\nprogram x\nversion 0\nrun 0 2 450\nsum 0 1 1 1 0 0 0 1 1 1 0 0 0\nend\n"},
		{"unknownCallee", "APPRENTICE 1\nprogram x\nversion 0\nrun 0 2 450\ncall g - -1\nend\n"},
		{"unknownRecord", "APPRENTICE 1\nprogram x\nversion 0\nwhat 1 2\nend\n"},
		{"duplicateRegionID", "APPRENTICE 1\nprogram x\nversion 0\nrun 0 2 450\nfunction f\nregion 0 - loop a\nregion 0 - loop b\nend\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadSummary(strings.NewReader(c.src)); err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
		})
	}
}

func TestWriteSummaryRejectsMultiVersion(t *testing.T) {
	ds := simulate(t, Stencil())
	ds.Versions = append(ds.Versions, ds.Versions[0])
	var buf bytes.Buffer
	if err := WriteSummary(&buf, ds); err == nil {
		t.Fatal("multi-version summary must fail")
	}
}

func TestScaledStencilSize(t *testing.T) {
	small, err := Simulate(ScaledStencil(2, 2), PartitionSweep(2, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(ScaledStencil(8, 6), PartitionSweep(2, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.Stats().Regions <= small.Stats().Regions*4 {
		t.Fatalf("scaling too weak: %d vs %d regions", big.Stats().Regions, small.Stats().Regions)
	}
}

func TestRampProperties(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 33} {
		sum := 0.0
		for pe := 0; pe < p; pe++ {
			r := ramp(pe, p)
			if r < -1-1e-12 || r > 1+1e-12 {
				t.Fatalf("ramp(%d,%d) = %g out of range", pe, p, r)
			}
			sum += r
		}
		if math.Abs(sum) > 1e-9 {
			t.Fatalf("ramp sum for p=%d is %g, want 0", p, sum)
		}
	}
}

func TestStatsHelper(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5}
	min, max, mean, stdev, peMin, peMax := stats(vals)
	if min != 1 || max != 5 || mean != 2.8 {
		t.Fatalf("min=%g max=%g mean=%g", min, max, mean)
	}
	if peMin != 1 || peMax != 4 {
		t.Fatalf("peMin=%d peMax=%d", peMin, peMax)
	}
	if stdev <= 0 {
		t.Fatal("stdev must be positive")
	}
	if _, _, _, _, _, _ = stats(nil); false {
		t.Fatal("unreachable")
	}
}
