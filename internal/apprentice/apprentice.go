// Package apprentice is the stand-in for the Cray T3E and the MPP
// Apprentice performance tool of the paper: a deterministic simulator that
// executes analytically-specified parallel workloads on a machine model and
// emits exactly the summary records COSY stores — per-region exclusive,
// inclusive, and overhead times, the 25 typed overheads, and per-call-site
// min/max/mean/stddev statistics across processors with the extremal
// processors memorized.
//
// The simulator is the substitution documented in DESIGN.md: COSY only ever
// consumes Apprentice summary data, so a generator that produces the same
// record shapes with controllable bottleneck structure exercises every
// analysis path of the paper.
package apprentice

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/model"
)

// Machine describes the simulated MPP partition.
type Machine struct {
	NoPe     int // number of processing elements
	ClockMHz int // 300 or 450 on the T3E family
}

// OverheadSpec describes how one typed overhead of a region scales with the
// partition size. For a run on P processors, each processor spends
//
//	PerPe + Log2Pe*log2(P) + LinearPe*P
//
// seconds in this overhead class: PerPe models fixed per-process cost,
// Log2Pe tree-structured collectives, and LinearPe all-to-all patterns.
type OverheadSpec struct {
	PerPe    float64
	Log2Pe   float64
	LinearPe float64
}

// PerProcessor evaluates the overhead one processor of a partition of p
// incurs.
func (o OverheadSpec) PerProcessor(p int) float64 {
	v := o.PerPe
	if o.Log2Pe != 0 && p > 1 {
		v += o.Log2Pe * math.Log2(float64(p))
	}
	v += o.LinearPe * float64(p)
	if v < 0 {
		return 0
	}
	return v
}

// CallSpec describes a call site placed in a region.
type CallSpec struct {
	// Callee names the called function (created on demand).
	Callee string
	// CallsPerPe is the number of calls each processor issues.
	CallsPerPe float64
	// TimePerCall is the time spent per call, per processor.
	TimePerCall float64
	// Imbalance skews per-processor call time with a deterministic ramp
	// (0 balanced, 0.5 = ±50%).
	Imbalance float64
}

// RegionSpec is the analytic behaviour of one program region.
type RegionSpec struct {
	Name string
	Kind model.RegionKind
	// SerialWork is replicated on every processor (the Amdahl term).
	SerialWork float64
	// ParallelWork is divided across the partition.
	ParallelWork float64
	// Imbalance skews the parallel share with a deterministic ramp.
	Imbalance float64
	// SyncAfter places a barrier at region exit: every processor waits for
	// the slowest, producing Barrier overhead and a call site of the
	// "barrier" routine whose per-processor times reflect the waiting.
	SyncAfter bool
	// Overheads are the typed overheads charged inside this region.
	Overheads map[model.TimingType]OverheadSpec
	// Calls are the call sites textually inside this region.
	Calls    []CallSpec
	Children []*RegionSpec
}

// FuncSpec is one source function with its top-level regions.
type FuncSpec struct {
	Name    string
	Regions []*RegionSpec
}

// Workload is a complete synthetic application.
type Workload struct {
	Name string
	// Noise adds deterministic pseudo-random per-processor jitter as a
	// fraction of computed times (e.g. 0.01 = ±1%), so that statistics are
	// non-degenerate even for balanced codes.
	Noise float64
	Funcs []*FuncSpec
}

// BarrierFunction is the name of the synthetic barrier routine; the paper's
// LoadImbalance property is evaluated only for calls to it.
const BarrierFunction = model.BarrierFunction

// Simulate runs the workload on each machine configuration and assembles
// the COSY dataset: one program version with one test run per machine.
func Simulate(w *Workload, machines []Machine, seed int64) (*model.Dataset, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("apprentice: no machine configurations")
	}
	seen := make(map[int]bool)
	for _, m := range machines {
		if m.NoPe <= 0 {
			return nil, fmt.Errorf("apprentice: machine with %d PEs", m.NoPe)
		}
		if seen[m.NoPe] {
			return nil, fmt.Errorf("apprentice: duplicate partition size %d (COSY needs a unique minimal-PE run)", m.NoPe)
		}
		seen[m.NoPe] = true
	}

	version := &model.Version{
		Compilation: time.Date(1999, 12, 17, 10, 0, 0, 0, time.UTC),
		Code:        fmt.Sprintf("! synthetic Fortran source of %s\n", w.Name),
	}
	ds := &model.Dataset{Program: w.Name, Versions: []*model.Version{version}}

	for i, m := range machines {
		version.Runs = append(version.Runs, &model.TestRun{
			Start:      time.Date(1999, 12, 17, 12, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Hour),
			NoPe:       m.NoPe,
			Clockspeed: m.ClockMHz,
		})
	}

	sim := &simulator{workload: w, version: version, seed: seed, funcs: make(map[string]*model.Function)}
	for _, fs := range w.Funcs {
		sim.fn(fs.Name)
	}
	for _, fs := range w.Funcs {
		f := sim.fn(fs.Name)
		for _, rs := range fs.Regions {
			region, err := sim.buildRegion(f, rs, nil)
			if err != nil {
				return nil, err
			}
			f.Regions = append(f.Regions, region)
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("apprentice: generated dataset invalid: %w", err)
	}
	return ds, nil
}

type simulator struct {
	workload *Workload
	version  *model.Version
	seed     int64
	funcs    map[string]*model.Function
}

// fn returns (creating on demand) the named function.
func (s *simulator) fn(name string) *model.Function {
	if f, ok := s.funcs[name]; ok {
		return f
	}
	f := &model.Function{Name: name}
	s.funcs[name] = f
	s.version.Functions = append(s.version.Functions, f)
	return f
}

// noise returns a deterministic jitter factor in [1-n, 1+n] keyed by the
// identifiers, so re-simulation is bit-identical.
func (s *simulator) noise(key string, pe int) float64 {
	n := s.workload.Noise
	if n <= 0 {
		return 1
	}
	h := int64(1469598103934665603)
	for _, b := range []byte(key) {
		h = (h ^ int64(b)) * 1099511628211
	}
	rng := rand.New(rand.NewSource(s.seed ^ h ^ int64(pe)*2654435761))
	return 1 + n*(2*rng.Float64()-1)
}

// ramp is the deterministic imbalance pattern: a linear skew over the
// partition summing to zero, so total work is conserved.
func ramp(pe, p int) float64 {
	if p <= 1 {
		return 0
	}
	return (2*float64(pe) - float64(p-1)) / float64(p-1)
}

// buildRegion simulates one region for every run and returns its model node
// (children included).
func (s *simulator) buildRegion(owner *model.Function, rs *RegionSpec, parent *model.Region) (*model.Region, error) {
	r := &model.Region{Name: rs.Name, Kind: rs.Kind, Parent: parent}
	for _, cs := range rs.Children {
		child, err := s.buildRegion(owner, cs, r)
		if err != nil {
			return nil, err
		}
		r.Children = append(r.Children, child)
	}

	for _, run := range s.version.Runs {
		p := run.NoPe
		clockScale := 450.0 / float64(run.Clockspeed) // 450 MHz = 1.0, 300 MHz = 1.5

		// Per-processor compute time.
		compute := make([]float64, p)
		for pe := 0; pe < p; pe++ {
			work := rs.SerialWork + rs.ParallelWork/float64(p)*(1+rs.Imbalance*ramp(pe, p))
			compute[pe] = work * clockScale * s.noise(rs.Name+"/w", pe)
		}

		// Typed overheads.
		typed := make(map[model.TimingType]float64)
		overheadPerPe := make([]float64, p)
		for tt, spec := range rs.Overheads {
			for pe := 0; pe < p; pe++ {
				v := spec.PerProcessor(p) * s.noise(rs.Name+"/"+tt.String(), pe)
				typed[tt] += v
				overheadPerPe[pe] += v
			}
		}

		// Barrier at region exit: everyone waits for the slowest processor.
		var barrierWait []float64
		if rs.SyncAfter && p > 1 {
			slowest := 0.0
			for pe := 0; pe < p; pe++ {
				if t := compute[pe]; t > slowest {
					slowest = t
				}
			}
			barrierWait = make([]float64, p)
			base := 2e-6 * math.Log2(float64(p)) // hardware barrier latency
			for pe := 0; pe < p; pe++ {
				barrierWait[pe] = slowest - compute[pe] + base
				typed[model.Barrier] += barrierWait[pe]
				overheadPerPe[pe] += barrierWait[pe]
			}
		}

		// Summed-over-processes region times.
		excl, ovhd := 0.0, 0.0
		for pe := 0; pe < p; pe++ {
			excl += compute[pe] + overheadPerPe[pe]
			ovhd += overheadPerPe[pe]
		}
		incl := excl
		for _, child := range r.Children {
			ct := child.TotalFor(run)
			if ct != nil {
				incl += ct.Incl
			}
		}
		r.TotTimes = append(r.TotTimes, &model.TotalTiming{Run: run, Excl: excl, Incl: incl, Ovhd: ovhd})

		types := make([]model.TimingType, 0, len(typed))
		for tt := range typed {
			types = append(types, tt)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, tt := range types {
			if typed[tt] > 0 {
				r.TypTimes = append(r.TypTimes, &model.TypedTiming{Run: run, Type: tt, Time: typed[tt]})
			}
		}

		// Explicit call sites.
		for ci := range rs.Calls {
			s.recordCall(owner, r, &rs.Calls[ci], run, ci)
		}
		// The implicit barrier call site.
		if rs.SyncAfter && p > 1 && barrierWait != nil {
			counts := make([]float64, p)
			for pe := range counts {
				counts[pe] = 1
			}
			s.recordCallStats(BarrierFunction, owner, r, run, counts, barrierWait)
		}
	}
	return r, nil
}

// recordCall simulates one explicit call site for one run.
func (s *simulator) recordCall(owner *model.Function, r *model.Region, cs *CallSpec, run *model.TestRun, idx int) {
	p := run.NoPe
	counts := make([]float64, p)
	times := make([]float64, p)
	for pe := 0; pe < p; pe++ {
		key := fmt.Sprintf("%s/call%d", r.Name, idx)
		counts[pe] = cs.CallsPerPe * s.noise(key+"/n", pe)
		times[pe] = counts[pe] * cs.TimePerCall * (1 + cs.Imbalance*ramp(pe, p)) * s.noise(key+"/t", pe)
	}
	s.recordCallStats(cs.Callee, owner, r, run, counts, times)
}

// recordCallStats folds per-processor counts and times into the CallTiming
// statistics of the (callee, caller, region) call site, creating it on
// first use.
func (s *simulator) recordCallStats(callee string, caller *model.Function, r *model.Region, run *model.TestRun, counts, times []float64) {
	calleeFn := s.fn(callee)
	var site *model.FunctionCall
	for _, c := range calleeFn.Calls {
		if c.Caller == caller && c.CallingReg == r {
			site = c
			break
		}
	}
	if site == nil {
		site = &model.FunctionCall{Callee: callee, Caller: caller, CallingReg: r}
		calleeFn.Calls = append(calleeFn.Calls, site)
	}
	ct := &model.CallTiming{Run: run}
	ct.MinCalls, ct.MaxCalls, ct.MeanCalls, ct.StdevCalls, ct.PeMinCalls, ct.PeMaxCalls = stats(counts)
	ct.MinTime, ct.MaxTime, ct.MeanTime, ct.StdevTime, ct.PeMinTime, ct.PeMaxTime = stats(times)
	site.Sums = append(site.Sums, ct)
}

// stats returns min, max, mean, stddev and the processors attaining the
// extrema.
func stats(xs []float64) (min, max, mean, stdev float64, peMin, peMax int) {
	if len(xs) == 0 {
		return 0, 0, 0, 0, 0, 0
	}
	min, max = xs[0], xs[0]
	sum := 0.0
	for pe, x := range xs {
		sum += x
		if x < min {
			min, peMin = x, pe
		}
		if x > max {
			max, peMax = x, pe
		}
	}
	mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	stdev = math.Sqrt(ss / float64(len(xs)))
	return min, max, mean, stdev, peMin, peMax
}

// PartitionSweep returns machine configurations for the given processor
// counts at the standard 450 MHz clock.
func PartitionSweep(pes ...int) []Machine {
	ms := make([]Machine, len(pes))
	for i, p := range pes {
		ms[i] = Machine{NoPe: p, ClockMHz: 450}
	}
	return ms
}
