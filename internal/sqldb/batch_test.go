package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func batchDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL, tag TEXT)", nil)
	for i := 0; i < 10; i++ {
		db.MustExec("INSERT INTO t (id, v, tag) VALUES (?, ?, ?)", &Params{Positional: []Value{
			NewInt(int64(i)), NewFloat(float64(i) * 1.5), NewText(fmt.Sprintf("tag%d", i%3)),
		}})
	}
	return db
}

func TestExecuteBatchSelect(t *testing.T) {
	db := batchDB(t)
	ps, err := db.Prepare("SELECT v FROM t WHERE id = $id")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	var bindings []*Params
	for i := 0; i < 10; i++ {
		bindings = append(bindings, &Params{Named: map[string]Value{"id": NewInt(int64(i))}})
	}
	results, err := ps.ExecuteBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("binding %d: %v", i, r.Err)
		}
		if len(r.Res.Set.Rows) != 1 || r.Res.Set.Rows[0][0].Float() != float64(i)*1.5 {
			t.Fatalf("binding %d: rows %v", i, r.Res.Set.Rows)
		}
	}
	st := db.Stats()
	if st.BatchExecs != 1 || st.BatchBindings != 10 {
		t.Fatalf("batch stats: %d execs, %d bindings", st.BatchExecs, st.BatchBindings)
	}
}

func TestExecuteBatchMatchesExecutePerBinding(t *testing.T) {
	db := batchDB(t)
	ps, err := db.Prepare("SELECT COUNT(*), tag FROM t WHERE v > $lo GROUP BY tag ORDER BY tag")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	var bindings []*Params
	for i := 0; i < 6; i++ {
		bindings = append(bindings, &Params{Named: map[string]Value{"lo": NewFloat(float64(i))}})
	}
	batched, err := ps.ExecuteBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range bindings {
		res, err := ps.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		if batched[i].Err != nil {
			t.Fatalf("binding %d: %v", i, batched[i].Err)
		}
		want := fmt.Sprintf("%v", res.Set.Rows)
		got := fmt.Sprintf("%v", batched[i].Res.Set.Rows)
		if got != want {
			t.Fatalf("binding %d: batched %s, per-exec %s", i, got, want)
		}
	}
}

func TestExecuteBatchInsertSingleLock(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)", nil)
	ps, err := db.Prepare("INSERT INTO t (id, v) VALUES ($id, $v)")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	var bindings []*Params
	for i := 0; i < 50; i++ {
		bindings = append(bindings, &Params{Named: map[string]Value{
			"id": NewInt(int64(i)), "v": NewFloat(float64(i)),
		}})
	}
	results, err := ps.ExecuteBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Res.Affected != 1 {
			t.Fatalf("binding %d: %+v", i, r)
		}
	}
	res := db.MustExec("SELECT COUNT(*) FROM t", nil)
	if res.Set.Rows[0][0].Int() != 50 {
		t.Fatalf("count: %v", res.Set.Rows[0][0])
	}
}

func TestExecuteBatchPartialFailure(t *testing.T) {
	db := batchDB(t)
	ps, err := db.Prepare("SELECT v FROM t WHERE id = $id")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	// Bindings 1 and 3 lack the named parameter; the others must still run,
	// and outcomes must line up with binding order.
	bindings := []*Params{
		{Named: map[string]Value{"id": NewInt(0)}},
		{Named: map[string]Value{"nope": NewInt(0)}},
		{Named: map[string]Value{"id": NewInt(2)}},
		nil,
		{Named: map[string]Value{"id": NewInt(4)}},
	}
	results, err := ps.ExecuteBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 3} {
		if results[i].Err == nil || !strings.Contains(results[i].Err.Error(), "parameter") {
			t.Fatalf("binding %d: expected parameter error, got %+v", i, results[i])
		}
		if results[i].Res != nil {
			t.Fatalf("binding %d: result alongside error", i)
		}
	}
	for _, i := range []int{0, 2, 4} {
		if results[i].Err != nil {
			t.Fatalf("binding %d: %v", i, results[i].Err)
		}
		if got := results[i].Res.Set.Rows[0][0].Float(); got != float64(i)*1.5 {
			t.Fatalf("binding %d: v = %v", i, got)
		}
	}
}

func TestExecuteBatchReplansAfterDDL(t *testing.T) {
	db := batchDB(t)
	ps, err := db.Prepare("SELECT v FROM t WHERE id = $id")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	// DDL between prepare and the batch: the stale plan must be rebuilt, and
	// the batch must then run to completion.
	db.MustExec("CREATE INDEX idx_t_id ON t (id)", nil)
	results, err := ps.ExecuteBatch([]*Params{
		{Named: map[string]Value{"id": NewInt(3)}},
		{Named: map[string]Value{"id": NewInt(7)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Res.Set.Rows[0][0].Float() != 4.5 {
		t.Fatalf("binding 0: %+v", results[0])
	}
	if results[1].Err != nil || results[1].Res.Set.Rows[0][0].Float() != 10.5 {
		t.Fatalf("binding 1: %+v", results[1])
	}
	if db.Stats().Replans == 0 {
		t.Fatal("expected a replan after DDL")
	}
}

func TestExecuteBatchRejectsDDLAndClosed(t *testing.T) {
	db := batchDB(t)
	ps, err := db.Prepare("CREATE INDEX idx_v ON t (v)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.ExecuteBatch([]*Params{nil}); err == nil {
		t.Fatal("batched DDL must be rejected")
	}
	ps.Close()

	sel, err := db.Prepare("SELECT v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	sel.Close()
	if _, err := sel.ExecuteBatch([]*Params{nil}); err == nil {
		t.Fatal("batch on closed statement must fail")
	}

	open, err := db.Prepare("SELECT v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	results, err := open.ExecuteBatch(nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v %v", results, err)
	}
}

func TestExecuteBatchConcurrentWithDDL(t *testing.T) {
	db := batchDB(t)
	ps, err := db.Prepare("SELECT v FROM t WHERE id = $id")
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	var bindings []*Params
	for i := 0; i < 10; i++ {
		bindings = append(bindings, &Params{Named: map[string]Value{"id": NewInt(int64(i))}})
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				results, err := ps.ExecuteBatch(bindings)
				if err != nil {
					t.Error(err)
					return
				}
				for i, r := range results {
					if r.Err != nil || r.Res.Set.Rows[0][0].Float() != float64(i)*1.5 {
						t.Errorf("binding %d: %+v", i, r)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rep := 0; rep < 10; rep++ {
			db.MustExec(fmt.Sprintf("CREATE INDEX idx_ddl_%d ON t (tag)", rep), nil)
		}
	}()
	wg.Wait()
}
