package sqldb

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The result cache. Property outcomes in the COSY tuning cycle are pure
// functions of (query text, parameter bindings, data version): the analyzer
// re-evaluates the same ASL property queries against an immutable run history
// while the user inspects hypotheses, so a repeated (statement × binding) can
// be answered from its previous result as long as no referenced table changed.
//
// Mutation visibility is tracked per table: every DML statement that changes
// a table's rows stamps the table with a fresh value of the database's global
// DML counter (bumpData), the same way DDL bumps the schema version. Because
// the stamps come from one monotonically increasing counter, the maximum
// stamp over a plan's referenced tables changes whenever ANY of those tables
// is mutated — so one int64 per cache entry captures the freshness of an
// arbitrary join. DML to one table invalidates only the entries whose plans
// reference it; entries over other tables keep their stamps and keep hitting.
//
// Cache keys combine the canonical statement text (the parser's own
// rendering, so spelling differences share an entry), a type-tagged parameter
// fingerprint, and the schema version the plan was built against. Entries
// store the version stamps they were computed at; a lookup that finds an
// entry with stale stamps removes it and counts an invalidation. Only SELECT
// statements executed through a plan are cached — DML is never cached, and
// the dynamic (unplannable) path bypasses the cache entirely.
//
// Cached ResultSets are shared between the cache and every caller that hits
// it; like the row snapshots returned by scan, they must be treated as
// read-only.

// DefaultResultCacheSize is the capacity of the per-DB result cache. An
// analysis produces one entry per property instance (a few thousand on a
// large region tree), and entries are small (property queries return one
// row), so the default is sized to hold a whole tuning-cycle working set; a
// capacity below the instance count would thrash the LRU and hit nothing on
// the repeat analysis.
const DefaultResultCacheSize = 4096

// resultCacheEntry is one LRU slot: the result and the versions it was
// computed at.
type resultCacheEntry struct {
	key       string
	schemaVer int64 // schema version of the plan that produced the result
	dataVer   int64 // max data-version stamp of the plan's referenced tables
	set       *ResultSet
}

// cacheFields groups the DB's result-cache state; embedded in DB.
type cacheFields struct {
	// dml is the global DML counter: every mutating statement stamps its
	// table with dml.Add(1), making per-table data versions comparable.
	dml atomic.Int64

	resMu  sync.Mutex
	resCap int
	resLRU *list.List
	resIdx map[string]*list.Element
	// resOn mirrors resCap > 0 for a lock-free disabled-path check.
	resOn atomic.Bool

	resHits    atomic.Int64
	resMisses  atomic.Int64
	resInvalid atomic.Int64
	resEvicts  atomic.Int64

	// canonMu guards the canonical-text intern table. Property queries run to
	// many kilobytes of SQL; hashing that per lookup (under resMu, on every
	// binding of every batch) would serialize the cache, so each distinct
	// canonical text is interned to a small integer once, at plan time, and
	// cache keys carry the integer. nextCanon is the id source; it never
	// resets, so an id never names two different texts even across table
	// resets (see canonicalID).
	canonMu   sync.Mutex
	canonIDs  map[string]int64
	nextCanon int64
}

// canonInternCap bounds the intern table. Ad-hoc SELECTs with inline
// literals produce unboundedly many distinct texts on a long-running server;
// when the table fills, it is reset rather than grown. Plans built earlier
// keep their already-derived keys, and a re-planned text re-interning to a
// fresh id merely orphans its old cache entries for the LRU to evict.
const canonInternCap = 8192

// initResultCache sets up the cache containers; called from NewDB.
func (db *DB) initResultCache() {
	db.resCap = DefaultResultCacheSize
	db.resOn.Store(true)
	db.resLRU = list.New()
	db.resIdx = make(map[string]*list.Element)
	db.canonIDs = make(map[string]int64)
}

// canonicalID interns a canonical statement text, returning its stable
// small-integer identity. Exact string match in the table guarantees two
// distinct texts never share an id, and the monotone id source guarantees an
// id never names two different texts, so compact keys stay collision-free.
// Called once per plan build.
func (db *DB) canonicalID(text string) int64 {
	db.canonMu.Lock()
	defer db.canonMu.Unlock()
	if id, ok := db.canonIDs[text]; ok {
		return id
	}
	if len(db.canonIDs) >= canonInternCap {
		clear(db.canonIDs)
	}
	db.nextCanon++
	db.canonIDs[text] = db.nextCanon
	return db.nextCanon
}

// SetResultCacheSize bounds the result cache; n <= 0 disables caching and
// clears it (every SELECT then executes from scratch, the cache-off baseline
// configuration the E11 benchmarks compare against).
func (db *DB) SetResultCacheSize(n int) {
	db.resMu.Lock()
	defer db.resMu.Unlock()
	db.resCap = n
	db.resOn.Store(n > 0)
	for db.resLRU.Len() > max(db.resCap, 0) {
		last := db.resLRU.Back()
		entry := last.Value.(*resultCacheEntry)
		db.resLRU.Remove(last)
		delete(db.resIdx, entry.key)
		db.resEvicts.Add(1)
	}
}

// clearResultCache drops every cached result. Called on DDL: entries built
// against the old schema could never hit again (the schema version is part of
// every freshness check), so reclaiming their memory at once beats letting
// them age out of the LRU one stale lookup at a time.
func (db *DB) clearResultCache() {
	db.resMu.Lock()
	defer db.resMu.Unlock()
	db.resLRU.Init()
	clear(db.resIdx)
}

// bumpData stamps a table with a fresh data version. Called by every DML
// statement that changed the table's rows, under the exclusive statement
// lock, so readers holding the shared lock always see stamps consistent with
// the data.
func (db *DB) bumpData(t *Table) {
	t.dataVer.Store(db.dml.Add(1))
}

// cacheKeyFor derives the result-cache key and the current data-version
// stamp of a planned SELECT, or ok=false when the statement is not cacheable
// (no plan, not a SELECT, or the cache is disabled). Must be called with
// db.mu held at least shared, so the stamps read here are consistent with
// the rows the execution will see.
func (db *DB) cacheKeyFor(plan *stmtPlan, params *Params) (key string, dataVer int64, ok bool) {
	if plan == nil || plan.canonKey == "" || !db.resOn.Load() {
		return "", 0, false
	}
	for _, t := range plan.tables {
		if v := t.dataVer.Load(); v > dataVer {
			dataVer = v
		}
	}
	return plan.canonKey + fingerprintParams(params), dataVer, true
}

// lookupResult returns the cached result for the key if its versions are
// still current. A present-but-stale entry is removed and counted as an
// invalidation (and a miss); an absent entry is just a miss.
func (db *DB) lookupResult(key string, schemaVer, dataVer int64) (*ResultSet, bool) {
	db.resMu.Lock()
	defer db.resMu.Unlock()
	el, found := db.resIdx[key]
	if found {
		entry := el.Value.(*resultCacheEntry)
		if entry.schemaVer == schemaVer && entry.dataVer == dataVer {
			db.resLRU.MoveToFront(el)
			db.resHits.Add(1)
			return entry.set, true
		}
		db.resLRU.Remove(el)
		delete(db.resIdx, key)
		db.resInvalid.Add(1)
	}
	db.resMisses.Add(1)
	return nil, false
}

// storeResult inserts a freshly computed result. The versions must be the
// ones read by cacheKeyFor before the execution ran (under the same shared
// statement lock), so a result never gets stamped newer than the data it was
// computed from.
func (db *DB) storeResult(key string, schemaVer, dataVer int64, set *ResultSet) {
	db.resMu.Lock()
	defer db.resMu.Unlock()
	if db.resCap <= 0 {
		return
	}
	if el, ok := db.resIdx[key]; ok {
		// A concurrent execution of the same (statement × binding) stored
		// first; adopt its entry.
		el.Value.(*resultCacheEntry).set = set
		el.Value.(*resultCacheEntry).schemaVer = schemaVer
		el.Value.(*resultCacheEntry).dataVer = dataVer
		db.resLRU.MoveToFront(el)
		return
	}
	db.resIdx[key] = db.resLRU.PushFront(&resultCacheEntry{key: key, schemaVer: schemaVer, dataVer: dataVer, set: set})
	for db.resLRU.Len() > db.resCap {
		last := db.resLRU.Back()
		entry := last.Value.(*resultCacheEntry)
		db.resLRU.Remove(last)
		delete(db.resIdx, entry.key)
		db.resEvicts.Add(1)
	}
}

// fingerprintParams renders a parameter set to a deterministic, type-tagged
// key fragment. Unlike Value.Key (which folds 1 and 1.0 together to match
// comparison semantics), the fingerprint keeps types distinct: an INTEGER and
// an integral REAL binding can behave differently in type-sensitive
// expressions (%, ||), so they must not share a cache slot.
func fingerprintParams(p *Params) string {
	if p == nil || (len(p.Positional) == 0 && len(p.Named) == 0) {
		return ""
	}
	var b strings.Builder
	for _, v := range p.Positional {
		fingerprintValue(&b, v)
	}
	if len(p.Named) > 0 {
		names := make([]string, 0, len(p.Named))
		for name := range p.Named {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteByte('$')
		for _, name := range names {
			b.WriteString(name)
			b.WriteByte('=')
			fingerprintValue(&b, p.Named[name])
		}
	}
	return b.String()
}

func fingerprintValue(b *strings.Builder, v Value) {
	switch {
	case v.IsNull():
		b.WriteByte('n')
	case v.IsInt():
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(v.Int(), 10))
	case v.IsNumeric():
		b.WriteByte('f')
		b.WriteString(strconv.FormatFloat(v.Float(), 'b', -1, 64))
	case v.IsText():
		// Length-prefixed: text may contain any byte, including the value
		// terminator, and must not be able to impersonate a value sequence.
		b.WriteByte('t')
		b.WriteString(strconv.Itoa(len(v.Text())))
		b.WriteByte(':')
		b.WriteString(v.Text())
	default:
		b.WriteByte('b')
		if v.Bool() {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte(0)
}
