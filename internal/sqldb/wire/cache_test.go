package wire_test

import (
	"net"
	"strings"
	"testing"

	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// startCacheServer launches a server over a small loaded database and returns
// a raw protocol codec, so the tests can observe the cache fields of the
// responses themselves.
func startCacheServer(t *testing.T) (*sqldb.DB, *wire.Server, *wire.Codec) {
	t.Helper()
	db := sqldb.NewDB()
	db.MustExec(`CREATE TABLE typed (id INTEGER PRIMARY KEY, run_id INTEGER, time REAL)`, nil)
	db.MustExec(`INSERT INTO typed (id, run_id, time) VALUES (1, 1, 1.0), (2, 1, 2.0), (3, 2, 4.0)`, nil)
	srv, err := wire.NewServer(db, wire.ProfileFast, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		nc.Close()
		srv.Close()
	})
	return db, srv, wire.NewCodec(nc)
}

func roundTrip(t *testing.T, codec *wire.Codec, req *wire.Request) *wire.Response {
	t.Helper()
	if err := codec.WriteRequest(req); err != nil {
		t.Fatal(err)
	}
	resp, err := codec.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestExecRepliesReportCacheHits: a repeated text execution is answered from
// the server's result cache and says so in the reply.
func TestExecRepliesReportCacheHits(t *testing.T) {
	_, _, codec := startCacheServer(t)
	req := &wire.Request{Kind: wire.ReqExec, SQL: `SELECT SUM(time) FROM typed`}
	first := roundTrip(t, codec, req)
	if first.Err != "" || first.CacheHits != 0 {
		t.Fatalf("first exec: err=%q hits=%d", first.Err, first.CacheHits)
	}
	second := roundTrip(t, codec, req)
	if second.Err != "" || second.CacheHits != 1 {
		t.Fatalf("second exec: err=%q hits=%d", second.Err, second.CacheHits)
	}
	if len(second.Rows) != 1 || second.Rows[0][0].FromWire().Float() != 7.0 {
		t.Fatalf("cached rows: %v", second.Rows)
	}
}

// TestBatchRepliesMarkCachedItems: batch items answered from the cache carry
// the per-item Cached flag and are counted in the reply's CacheHits.
func TestBatchRepliesMarkCachedItems(t *testing.T) {
	_, _, codec := startCacheServer(t)
	prep := roundTrip(t, codec, &wire.Request{Kind: wire.ReqPrepare, SQL: `SELECT SUM(time) FROM typed WHERE run_id = $r`})
	if prep.Err != "" {
		t.Fatal(prep.Err)
	}
	batch := func(runs ...int64) *wire.Request {
		req := &wire.Request{Kind: wire.ReqExecBatch, StmtID: prep.StmtID}
		for _, r := range runs {
			req.Batch = append(req.Batch, wire.BatchBinding{
				Named: map[string]wire.WireValue{"r": wire.ToWire(sqldb.NewInt(r))},
			})
		}
		return req
	}
	first := roundTrip(t, codec, batch(1, 2))
	if first.Err != "" || first.CacheHits != 0 {
		t.Fatalf("first batch: err=%q hits=%d", first.Err, first.CacheHits)
	}
	second := roundTrip(t, codec, batch(1, 2, 1))
	if second.Err != "" {
		t.Fatal(second.Err)
	}
	if second.CacheHits != 3 {
		t.Fatalf("second batch hits = %d, want 3", second.CacheHits)
	}
	for i, item := range second.Items {
		if !item.Cached {
			t.Fatalf("item %d not marked cached", i)
		}
	}
}

// TestCacheStatsRequest: ReqCacheStats returns the engine's counters.
func TestCacheStatsRequest(t *testing.T) {
	_, _, codec := startCacheServer(t)
	req := &wire.Request{Kind: wire.ReqExec, SQL: `SELECT COUNT(*) FROM typed`}
	roundTrip(t, codec, req)
	roundTrip(t, codec, req)
	resp := roundTrip(t, codec, &wire.Request{Kind: wire.ReqCacheStats})
	if resp.Err != "" || resp.Cache == nil {
		t.Fatalf("cache stats: err=%q cache=%v", resp.Err, resp.Cache)
	}
	if resp.Cache.Hits != 1 || resp.Cache.Misses != 1 || resp.Cache.Entries != 1 {
		t.Fatalf("stats = %+v", resp.Cache)
	}
}

// TestCacheStatsUnsupported: a server with the extension disabled answers
// like a pre-cache server — the unknown-request-kind error the client's
// fallback keys on.
func TestCacheStatsUnsupported(t *testing.T) {
	_, srv, codec := startCacheServer(t)
	srv.DisableCacheStats()
	resp := roundTrip(t, codec, &wire.Request{Kind: wire.ReqCacheStats})
	if !strings.Contains(resp.Err, "unknown request kind") {
		t.Fatalf("err = %q, want unknown request kind", resp.Err)
	}
}
