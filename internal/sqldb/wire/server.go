package wire

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
)

// Server serves a sqldb.DB over TCP.
type Server struct {
	db      *sqldb.DB
	profile Profile
	lis     net.Listener
	logger  *log.Logger

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	nextCursor int64
	nextStmt   int64

	// noBatch makes the server answer ReqExecBatch like a pre-batch server
	// (an unknown-request-kind error), for exercising client fallback.
	noBatch atomic.Bool
	// noCacheStats does the same for ReqCacheStats, for exercising the
	// pre-cache fallback of godbc's CacheStats.
	noCacheStats atomic.Bool

	// sem, when non-nil, bounds how many statements the server executes
	// simultaneously (see SetMaxConcurrent).
	sem chan struct{}
}

// NewServer returns a server for db with the given vendor profile. If logger
// is nil, logging is disabled.
func NewServer(db *sqldb.DB, profile Profile, logger *log.Logger) (*Server, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Server{db: db, profile: profile, logger: logger, conns: make(map[net.Conn]struct{})}, nil
}

// Listen binds the server to addr ("127.0.0.1:0" picks a free port) and
// starts accepting connections in the background.
func (s *Server) Listen(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address; valid after Listen.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops the listener and all connections and waits for the handler
// goroutines to finish. Calling Close while a Shutdown drain is in progress
// force-closes the lingering connections immediately.
func (s *Server) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.lis != nil && !wasClosed {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown closes the listener, then waits up to timeout for the connected
// clients to finish their in-flight requests and disconnect on their own.
// Connections still open when the timeout expires are closed forcibly, as
// Close does immediately. Shutdown is what a signal handler should call: a
// draining server never cuts a response off mid-write.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var lerr error
	if s.lis != nil {
		lerr = s.lis.Close()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return lerr
	case <-time.After(timeout):
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	return lerr
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// cursor is a server-side materialized result with a read offset.
type cursor struct {
	set *sqldb.ResultSet
	off int
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	// stmts holds this connection's prepared statements; like JDBC
	// PreparedStatements, handles are scoped to the connection and released
	// when it closes.
	stmts := make(map[int64]*sqldb.PreparedStmt)
	defer func() {
		for _, ps := range stmts {
			ps.Close()
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	codec := NewCodec(conn)
	cursors := make(map[int64]*cursor)
	for {
		req, err := codec.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("wire: read: %v", err)
			}
			return
		}
		resp := s.serve(req, cursors, stmts)
		if err := codec.WriteResponse(resp); err != nil {
			s.logf("wire: write: %v", err)
			return
		}
	}
}

// SetMaxConcurrent bounds the number of statements the server executes
// simultaneously; n <= 0 removes the bound (the default). The vendor
// profiles model per-statement cost but not server capacity — as if the
// server scaled to any number of concurrent clients. A real 1999 database
// host did not, and a capacity bound is what makes one saturated server
// observable: requests beyond the bound queue, which is exactly the regime
// the client-side sharding layer exists to relieve. The bound gates
// statement execution only; the round-trip (network) delay is charged
// outside it. Call before Listen.
func (s *Server) SetMaxConcurrent(n int) {
	if n <= 0 {
		s.sem = nil
		return
	}
	s.sem = make(chan struct{}, n)
}

func (s *Server) serve(req *Request, cursors map[int64]*cursor, stmts map[int64]*sqldb.PreparedStmt) *Response {
	s.sleep(s.profile.RoundTrip)
	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	switch req.Kind {
	case ReqPing:
		s.sleep(s.profile.PerStatement)
		return &Response{}
	case ReqExec:
		return s.serveExec(req)
	case ReqQueryCursor:
		return s.serveQueryCursor(req, cursors)
	case ReqFetch:
		return s.serveFetch(req, cursors)
	case ReqCloseCursor:
		delete(cursors, req.CursorID)
		return &Response{}
	case ReqPrepare:
		return s.servePrepare(req, stmts)
	case ReqExecPrepared:
		return s.serveExecPrepared(req, stmts)
	case ReqClosePrepared:
		if ps, ok := stmts[req.StmtID]; ok {
			ps.Close()
			delete(stmts, req.StmtID)
		}
		return &Response{}
	case ReqExecBatch:
		if s.noBatch.Load() {
			break // answer as a server without the batch extension would
		}
		return s.serveExecBatch(req, stmts)
	case ReqCacheStats:
		if s.noCacheStats.Load() {
			break // answer as a server without the cache extension would
		}
		st := s.db.Stats()
		return &Response{Cache: &CacheStats{
			Hits:          st.ResultCacheHits,
			Misses:        st.ResultCacheMisses,
			Invalidations: st.ResultCacheInvalidations,
			Evictions:     st.ResultCacheEvictions,
			Entries:       st.ResultCacheEntries,
		}}
	}
	return &Response{Err: fmt.Sprintf("wire: unknown request kind %d", req.Kind)}
}

// DisableBatch makes the server reject ReqExecBatch with the same error a
// pre-batch server produces for an unknown request kind; clients then fall
// back to per-execution round trips. Used to test that fallback.
func (s *Server) DisableBatch() { s.noBatch.Store(true) }

// DisableCacheStats makes the server reject ReqCacheStats like a server that
// predates the result cache; godbc's CacheStats then reports the counters as
// unavailable. Used to test that fallback.
func (s *Server) DisableCacheStats() { s.noCacheStats.Store(true) }

func toParams(req *Request) *sqldb.Params {
	return bindParams(req.Pos, req.Named)
}

func bindParams(pos []WireValue, named map[string]WireValue) *sqldb.Params {
	if len(pos) == 0 && len(named) == 0 {
		return nil
	}
	p := &sqldb.Params{Named: make(map[string]sqldb.Value, len(named))}
	for _, v := range pos {
		p.Positional = append(p.Positional, v.FromWire())
	}
	for k, v := range named {
		p.Named[k] = v.FromWire()
	}
	return p
}

func (s *Server) serveExec(req *Request) *Response {
	res, err := s.db.Exec(req.SQL, toParams(req))
	if err != nil {
		return &Response{Err: err.Error()}
	}
	resp := &Response{Affected: res.Affected, Done: true}
	if res.Cached {
		// The result cache answered before the vendor's compiler or executor
		// ran: only the round trip (already charged in serve) applies.
		resp.CacheHits = 1
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		return resp
	}
	// A text-protocol execution compiles the statement anew every time, so
	// it is charged the prepare cost on top of the per-statement overhead.
	s.sleep(s.profile.PerPrepare + s.profile.PerStatement + time.Duration(res.Affected)*s.profile.PerRowWrite)
	if res.Set != nil {
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		s.sleep(time.Duration(len(resp.Rows)) * s.profile.PerRowRead)
	}
	return resp
}

func (s *Server) servePrepare(req *Request, stmts map[int64]*sqldb.PreparedStmt) *Response {
	ps, err := s.db.Prepare(req.SQL)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	s.sleep(s.profile.PerPrepare + s.profile.PerStatement)
	id := atomic.AddInt64(&s.nextStmt, 1)
	stmts[id] = ps
	return &Response{StmtID: id}
}

func (s *Server) serveExecPrepared(req *Request, stmts map[int64]*sqldb.PreparedStmt) *Response {
	ps, ok := stmts[req.StmtID]
	if !ok {
		return &Response{Err: fmt.Sprintf("wire: no prepared statement %d", req.StmtID)}
	}
	res, err := ps.Execute(toParams(req))
	if err != nil {
		return &Response{Err: err.Error()}
	}
	resp := &Response{Affected: res.Affected, Done: true}
	if res.Cached {
		// Served from the result cache: no statement or row work happened in
		// the modeled vendor server, so no delay beyond the round trip.
		resp.CacheHits = 1
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		return resp
	}
	// Executing a prepared handle skips the compile cost; only the fixed
	// per-statement overhead and the row costs apply.
	s.sleep(s.profile.PerStatement + time.Duration(res.Affected)*s.profile.PerRowWrite)
	if res.Set != nil {
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		s.sleep(time.Duration(len(resp.Rows)) * s.profile.PerRowRead)
	}
	return resp
}

// serveExecBatch executes a prepared handle once per binding. The whole batch
// was carried by one request, so the profile's round-trip latency was charged
// once (in serve); what accumulates per binding is only the per-statement and
// per-row work the vendor server would really do — the array-binding
// economics that make batches worthwhile on high-latency links.
func (s *Server) serveExecBatch(req *Request, stmts map[int64]*sqldb.PreparedStmt) *Response {
	if len(req.Batch) > MaxBatch {
		return &Response{Err: fmt.Sprintf("wire: batch of %d bindings exceeds the limit of %d", len(req.Batch), MaxBatch)}
	}
	ps, ok := stmts[req.StmtID]
	if !ok {
		return &Response{Err: fmt.Sprintf("wire: no prepared statement %d", req.StmtID)}
	}
	bindings := make([]*sqldb.Params, len(req.Batch))
	for i, b := range req.Batch {
		bindings[i] = bindParams(b.Pos, b.Named)
	}
	results, err := ps.ExecuteBatch(bindings)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	resp := &Response{Items: make([]BatchItem, len(results)), Done: true}
	var delay time.Duration
	for i, r := range results {
		if r.Err != nil {
			resp.Items[i] = BatchItem{Err: r.Err.Error()}
			delay += s.profile.PerStatement
			continue
		}
		item := BatchItem{Affected: r.Res.Affected}
		if r.Res.Cached {
			// A binding the result cache answered costs the vendor server
			// nothing beyond the (already charged, batch-wide) round trip.
			item.Cached = true
			item.Columns = r.Res.Set.Columns
			item.Rows = encodeRows(r.Res.Set.Rows)
			resp.Items[i] = item
			resp.CacheHits++
			continue
		}
		delay += s.profile.PerStatement + time.Duration(r.Res.Affected)*s.profile.PerRowWrite
		if r.Res.Set != nil {
			item.Columns = r.Res.Set.Columns
			item.Rows = encodeRows(r.Res.Set.Rows)
			delay += time.Duration(len(item.Rows)) * s.profile.PerRowRead
		}
		resp.Items[i] = item
	}
	s.sleep(delay)
	return resp
}

func (s *Server) serveQueryCursor(req *Request, cursors map[int64]*cursor) *Response {
	res, err := s.db.Exec(req.SQL, toParams(req))
	if err != nil {
		return &Response{Err: err.Error()}
	}
	if res.Set == nil {
		return &Response{Err: "wire: statement produced no result set"}
	}
	if !res.Cached {
		s.sleep(s.profile.PerPrepare + s.profile.PerStatement)
	}
	id := atomic.AddInt64(&s.nextCursor, 1)
	cursors[id] = &cursor{set: res.Set}
	resp := &Response{CursorID: id, Columns: res.Set.Columns}
	if res.Cached {
		resp.CacheHits = 1
	}
	return resp
}

func (s *Server) serveFetch(req *Request, cursors map[int64]*cursor) *Response {
	cur, ok := cursors[req.CursorID]
	if !ok {
		return &Response{Err: fmt.Sprintf("wire: no cursor %d", req.CursorID)}
	}
	n := req.FetchN
	if n <= 0 {
		n = 1
	}
	end := cur.off + n
	if end > len(cur.set.Rows) {
		end = len(cur.set.Rows)
	}
	rows := cur.set.Rows[cur.off:end]
	cur.off = end
	s.sleep(time.Duration(len(rows)) * s.profile.PerRowRead)
	resp := &Response{Rows: encodeRows(rows), Done: cur.off >= len(cur.set.Rows)}
	if resp.Done {
		delete(cursors, req.CursorID)
	}
	return resp
}

func encodeRows(rows []sqldb.Row) [][]WireValue {
	out := make([][]WireValue, len(rows))
	for i, r := range rows {
		wr := make([]WireValue, len(r))
		for j, v := range r {
			wr[j] = ToWire(v)
		}
		out[i] = wr
	}
	return out
}

// sleep injects the profile's simulated processing delay. Sub-millisecond
// delays are spun rather than slept: the OS timer granularity (≈1 ms) would
// otherwise flatten the differences between vendor profiles that the
// insertion benchmarks measure.
func (s *Server) sleep(d time.Duration) {
	Delay(d)
}

// Delay blocks for d with microsecond precision.
func Delay(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 2*time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
