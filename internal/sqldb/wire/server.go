package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
)

// Server serves a sqldb.DB over TCP.
type Server struct {
	db      *sqldb.DB
	profile Profile
	lis     net.Listener
	logger  *log.Logger

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	nextCursor int64
	nextStmt   int64

	// noBatch makes the server answer ReqExecBatch like a pre-batch server
	// (an unknown-request-kind error), for exercising client fallback.
	noBatch atomic.Bool
	// noCacheStats does the same for ReqCacheStats, for exercising the
	// pre-cache fallback of godbc's CacheStats.
	noCacheStats atomic.Bool
	// noMux makes the server behave like a pre-multiplex peer: every request
	// is served serially in arrival order, responses carry no ID, and
	// ReqCancel is an unknown request kind. Used to test client fallback.
	noMux atomic.Bool
	// noServerStats does the same for ReqServerStats, for exercising the
	// fallback of godbc's ServerStats against an older server.
	noServerStats atomic.Bool

	// requests counts protocol requests served; vendorNanos accumulates the
	// simulated vendor delay charged by sleep. Both feed ReqServerStats.
	requests    atomic.Int64
	vendorNanos atomic.Int64

	// sem, when non-nil, bounds how many statements the server executes
	// simultaneously (see SetMaxConcurrent).
	sem chan struct{}
}

// NewServer returns a server for db with the given vendor profile. If logger
// is nil, logging is disabled.
func NewServer(db *sqldb.DB, profile Profile, logger *log.Logger) (*Server, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Server{db: db, profile: profile, logger: logger, conns: make(map[net.Conn]struct{})}, nil
}

// Listen binds the server to addr ("127.0.0.1:0" picks a free port) and
// starts accepting connections in the background.
func (s *Server) Listen(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address; valid after Listen.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops the listener and all connections and waits for the handler
// goroutines to finish. Calling Close while a Shutdown drain is in progress
// force-closes the lingering connections immediately.
func (s *Server) Close() error {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.lis != nil && !wasClosed {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown closes the listener, then waits up to timeout for the connected
// clients to finish their in-flight requests and disconnect on their own.
// Connections still open when the timeout expires are closed forcibly, as
// Close does immediately. Shutdown is what a signal handler should call: a
// draining server never cuts a response off mid-write.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var lerr error
	if s.lis != nil {
		lerr = s.lis.Close()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return lerr
	case <-time.After(timeout):
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	return lerr
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// cursor is a server-side materialized result with a read offset.
type cursor struct {
	set *sqldb.ResultSet
	off int
}

// connState is the per-connection server state. Pre-mux connections touch it
// from the one handler goroutine only; multiplexed requests run concurrently,
// so the cursor and statement tables are guarded by mu and response writes by
// writeMu (a gob encoder is not safe for concurrent use — and serialized
// writes are also the backpressure path: a client that stops reading blocks
// its own connection's writers without affecting any other connection).
type connState struct {
	mu      sync.Mutex
	cursors map[int64]*cursor
	// stmts holds this connection's prepared statements; like JDBC
	// PreparedStatements, handles are scoped to the connection and released
	// when it closes.
	stmts map[int64]*sqldb.PreparedStmt

	writeMu sync.Mutex

	// inflight maps the ID of each multiplexed request being served to the
	// cancel function of its context; ReqCancel fires it.
	inflMu   sync.Mutex
	inflight map[int64]context.CancelFunc

	// wg counts the goroutines serving multiplexed requests, so connection
	// teardown (and server drain) waits for them.
	wg sync.WaitGroup
}

// cancel aborts the in-flight request with the given ID, if any.
func (st *connState) cancel(id int64) {
	st.inflMu.Lock()
	cancel := st.inflight[id]
	st.inflMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// register records a request's cancel function under its ID.
func (st *connState) register(id int64, cancel context.CancelFunc) {
	st.inflMu.Lock()
	st.inflight[id] = cancel
	st.inflMu.Unlock()
}

// unregister removes a completed request and releases its context.
func (st *connState) unregister(id int64, cancel context.CancelFunc) {
	st.inflMu.Lock()
	delete(st.inflight, id)
	st.inflMu.Unlock()
	cancel()
}

// write sends one response on the shared codec, serialized across the
// connection's request goroutines.
func (st *connState) write(s *Server, codec *Codec, resp *Response) bool {
	st.writeMu.Lock()
	err := codec.WriteResponse(resp)
	st.writeMu.Unlock()
	if err != nil {
		s.logf("wire: write: %v", err)
		return false
	}
	return true
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	st := &connState{
		cursors:  make(map[int64]*cursor),
		stmts:    make(map[int64]*sqldb.PreparedStmt),
		inflight: make(map[int64]context.CancelFunc),
	}
	// connCtx is the parent of every request context on this connection.
	// When the client disconnects, the read loop returns and the deferred
	// cancel stops all of the connection's in-flight server-side work —
	// an abandoned analysis does not keep burning server capacity.
	connCtx, cancelConn := context.WithCancel(context.Background())
	defer func() {
		cancelConn()
		st.wg.Wait()
		for _, ps := range st.stmts {
			ps.Close()
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	codec := NewCodec(conn)
	for {
		req, err := codec.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("wire: read: %v", err)
			}
			return
		}
		if s.noMux.Load() {
			// A pre-multiplex peer: gob would have dropped the unknown ID
			// field on decode, requests are served strictly in order, and
			// ReqCancel falls through serve's switch as an unknown kind.
			req.ID, req.CancelID = 0, 0
			if !st.write(s, codec, s.serve(connCtx, req, st)) {
				return
			}
			continue
		}
		if req.Kind == ReqCancel {
			st.cancel(req.CancelID)
			if !st.write(s, codec, &Response{ID: req.ID}) {
				return
			}
			continue
		}
		if req.ID == 0 {
			// Pre-mux client: one request in flight at a time, in order.
			if !st.write(s, codec, s.serve(connCtx, req, st)) {
				return
			}
			continue
		}
		// Multiplexed request: serve concurrently under its own cancelable
		// context and tag the response with the request's ID.
		reqCtx, cancel := context.WithCancel(connCtx)
		st.register(req.ID, cancel)
		st.wg.Add(1)
		go func(req *Request) {
			defer st.wg.Done()
			resp := s.serve(reqCtx, req, st)
			resp.ID = req.ID
			st.unregister(req.ID, cancel)
			st.write(s, codec, resp)
		}(req)
	}
}

// DisableMux makes the server behave like a peer that predates request
// multiplexing: IDs are ignored, requests serve in order, and ReqCancel is
// answered as an unknown request kind. Used to test the client-side fallback.
func (s *Server) DisableMux() { s.noMux.Store(true) }

// SetMaxConcurrent bounds the number of statements the server executes
// simultaneously; n <= 0 removes the bound (the default). The vendor
// profiles model per-statement cost but not server capacity — as if the
// server scaled to any number of concurrent clients. A real 1999 database
// host did not, and a capacity bound is what makes one saturated server
// observable: requests beyond the bound queue, which is exactly the regime
// the client-side sharding layer exists to relieve. The bound gates
// statement execution only; the round-trip (network) delay is charged
// outside it. Call before Listen.
func (s *Server) SetMaxConcurrent(n int) {
	if n <= 0 {
		s.sem = nil
		return
	}
	s.sem = make(chan struct{}, n)
}

// canceled is the response of a request whose context fired mid-service.
func canceled() *Response { return &Response{Err: ErrCanceled} }

func (s *Server) serve(ctx context.Context, req *Request, st *connState) *Response {
	s.requests.Add(1)
	if s.sleep(ctx, s.profile.RoundTrip) != nil {
		return canceled()
	}
	if s.sem != nil {
		// The capacity queue is a blocking point: a canceled request must
		// leave the queue instead of executing work nobody will read.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			return canceled()
		}
	}
	switch req.Kind {
	case ReqPing:
		s.sleep(ctx, s.profile.PerStatement)
		return &Response{}
	case ReqExec:
		return s.serveExec(ctx, req)
	case ReqQueryCursor:
		return s.serveQueryCursor(ctx, req, st)
	case ReqFetch:
		return s.serveFetch(ctx, req, st)
	case ReqCloseCursor:
		st.mu.Lock()
		delete(st.cursors, req.CursorID)
		st.mu.Unlock()
		return &Response{}
	case ReqPrepare:
		return s.servePrepare(ctx, req, st)
	case ReqExecPrepared:
		return s.serveExecPrepared(ctx, req, st)
	case ReqClosePrepared:
		st.mu.Lock()
		ps, ok := st.stmts[req.StmtID]
		if ok {
			delete(st.stmts, req.StmtID)
		}
		st.mu.Unlock()
		if ok {
			ps.Close()
		}
		return &Response{}
	case ReqExecBatch:
		if s.noBatch.Load() {
			break // answer as a server without the batch extension would
		}
		return s.serveExecBatch(ctx, req, st)
	case ReqCacheStats:
		if s.noCacheStats.Load() {
			break // answer as a server without the cache extension would
		}
		st := s.db.Stats()
		return &Response{Cache: &CacheStats{
			Hits:          st.ResultCacheHits,
			Misses:        st.ResultCacheMisses,
			Invalidations: st.ResultCacheInvalidations,
			Evictions:     st.ResultCacheEvictions,
			Entries:       st.ResultCacheEntries,
		}}
	case ReqServerStats:
		if s.noServerStats.Load() {
			break // answer as a server without the stats extension would
		}
		st := s.db.Stats()
		return &Response{Server: &ServerStats{
			Engine:          st.Engine,
			VecSelects:      st.VecSelects,
			VecFallbacks:    st.VecFallbacks,
			FbJoinShape:     st.VecFallbackReasons.JoinShape,
			FbStar:          st.VecFallbackReasons.Star,
			FbOrderExpr:     st.VecFallbackReasons.OrderExpr,
			FbSubquery:      st.VecFallbackReasons.Subquery,
			FbOther:         st.VecFallbackReasons.Other,
			PlanCacheHits:   st.PlanCacheHits,
			PlanCacheMisses: st.PlanCacheMisses,
			Requests:        s.requests.Load(),
			VendorNanos:     s.vendorNanos.Load(),
		}}
	}
	return &Response{Err: fmt.Sprintf("wire: unknown request kind %d", req.Kind)}
}

// DisableBatch makes the server reject ReqExecBatch with the same error a
// pre-batch server produces for an unknown request kind; clients then fall
// back to per-execution round trips. Used to test that fallback.
func (s *Server) DisableBatch() { s.noBatch.Store(true) }

// DisableCacheStats makes the server reject ReqCacheStats like a server that
// predates the result cache; godbc's CacheStats then reports the counters as
// unavailable. Used to test that fallback.
func (s *Server) DisableCacheStats() { s.noCacheStats.Store(true) }

// DisableServerStats makes the server reject ReqServerStats like a server
// that predates the observability extension; godbc's ServerStats then reports
// the counters as unavailable. Used to test that fallback.
func (s *Server) DisableServerStats() { s.noServerStats.Store(true) }

func toParams(req *Request) *sqldb.Params {
	return bindParams(req.Pos, req.Named)
}

func bindParams(pos []WireValue, named map[string]WireValue) *sqldb.Params {
	if len(pos) == 0 && len(named) == 0 {
		return nil
	}
	p := &sqldb.Params{Named: make(map[string]sqldb.Value, len(named))}
	for _, v := range pos {
		p.Positional = append(p.Positional, v.FromWire())
	}
	for k, v := range named {
		p.Named[k] = v.FromWire()
	}
	return p
}

func (s *Server) serveExec(ctx context.Context, req *Request) *Response {
	res, err := s.db.Exec(req.SQL, toParams(req))
	if err != nil {
		return &Response{Err: err.Error()}
	}
	resp := &Response{Affected: res.Affected, Done: true}
	if res.Cached {
		// The result cache answered before the vendor's compiler or executor
		// ran: only the round trip (already charged in serve) applies.
		resp.CacheHits = 1
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		return resp
	}
	// A text-protocol execution compiles the statement anew every time, so
	// it is charged the prepare cost on top of the per-statement overhead.
	if s.sleep(ctx, s.profile.PerPrepare+s.profile.PerStatement+time.Duration(res.Affected)*s.profile.PerRowWrite) != nil {
		return canceled()
	}
	if res.Set != nil {
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		if s.sleep(ctx, time.Duration(len(resp.Rows))*s.profile.PerRowRead) != nil {
			return canceled()
		}
	}
	return resp
}

func (s *Server) servePrepare(ctx context.Context, req *Request, st *connState) *Response {
	ps, err := s.db.Prepare(req.SQL)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	if s.sleep(ctx, s.profile.PerPrepare+s.profile.PerStatement) != nil {
		ps.Close()
		return canceled()
	}
	id := atomic.AddInt64(&s.nextStmt, 1)
	st.mu.Lock()
	st.stmts[id] = ps
	st.mu.Unlock()
	return &Response{StmtID: id}
}

// stmt looks up a connection-scoped prepared statement.
func (st *connState) stmt(id int64) (*sqldb.PreparedStmt, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ps, ok := st.stmts[id]
	return ps, ok
}

func (s *Server) serveExecPrepared(ctx context.Context, req *Request, st *connState) *Response {
	ps, ok := st.stmt(req.StmtID)
	if !ok {
		return &Response{Err: fmt.Sprintf("wire: no prepared statement %d", req.StmtID)}
	}
	res, err := ps.Execute(toParams(req))
	if err != nil {
		return &Response{Err: err.Error()}
	}
	resp := &Response{Affected: res.Affected, Done: true}
	if res.Cached {
		// Served from the result cache: no statement or row work happened in
		// the modeled vendor server, so no delay beyond the round trip.
		resp.CacheHits = 1
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		return resp
	}
	// Executing a prepared handle skips the compile cost; only the fixed
	// per-statement overhead and the row costs apply.
	if s.sleep(ctx, s.profile.PerStatement+time.Duration(res.Affected)*s.profile.PerRowWrite) != nil {
		return canceled()
	}
	if res.Set != nil {
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		if s.sleep(ctx, time.Duration(len(resp.Rows))*s.profile.PerRowRead) != nil {
			return canceled()
		}
	}
	return resp
}

// serveExecBatch executes a prepared handle once per binding. The whole batch
// was carried by one request, so the profile's round-trip latency was charged
// once (in serve); what accumulates per binding is only the per-statement and
// per-row work the vendor server would really do — the array-binding
// economics that make batches worthwhile on high-latency links.
func (s *Server) serveExecBatch(ctx context.Context, req *Request, st *connState) *Response {
	if len(req.Batch) > MaxBatch {
		return &Response{Err: fmt.Sprintf("wire: batch of %d bindings exceeds the limit of %d", len(req.Batch), MaxBatch)}
	}
	ps, ok := st.stmt(req.StmtID)
	if !ok {
		return &Response{Err: fmt.Sprintf("wire: no prepared statement %d", req.StmtID)}
	}
	bindings := make([]*sqldb.Params, len(req.Batch))
	for i, b := range req.Batch {
		bindings[i] = bindParams(b.Pos, b.Named)
	}
	// The engine observes ctx between bindings, so canceling a multiplexed
	// batch stops the scan work itself, not just the simulated delays.
	results, err := ps.ExecuteBatchContext(ctx, bindings)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return canceled()
	}
	if err != nil {
		return &Response{Err: err.Error()}
	}
	resp := &Response{Items: make([]BatchItem, len(results)), Done: true}
	var delay time.Duration
	for i, r := range results {
		if r.Err != nil {
			resp.Items[i] = BatchItem{Err: r.Err.Error()}
			delay += s.profile.PerStatement
			continue
		}
		item := BatchItem{Affected: r.Res.Affected}
		if r.Res.Cached {
			// A binding the result cache answered costs the vendor server
			// nothing beyond the (already charged, batch-wide) round trip.
			item.Cached = true
			item.Columns = r.Res.Set.Columns
			item.Rows = encodeRows(r.Res.Set.Rows)
			resp.Items[i] = item
			resp.CacheHits++
			continue
		}
		delay += s.profile.PerStatement + time.Duration(r.Res.Affected)*s.profile.PerRowWrite
		if r.Res.Set != nil {
			item.Columns = r.Res.Set.Columns
			item.Rows = encodeRows(r.Res.Set.Rows)
			delay += time.Duration(len(item.Rows)) * s.profile.PerRowRead
		}
		resp.Items[i] = item
	}
	if s.sleep(ctx, delay) != nil {
		return canceled()
	}
	return resp
}

func (s *Server) serveQueryCursor(ctx context.Context, req *Request, st *connState) *Response {
	res, err := s.db.Exec(req.SQL, toParams(req))
	if err != nil {
		return &Response{Err: err.Error()}
	}
	if res.Set == nil {
		return &Response{Err: "wire: statement produced no result set"}
	}
	if !res.Cached {
		if s.sleep(ctx, s.profile.PerPrepare+s.profile.PerStatement) != nil {
			return canceled()
		}
	}
	id := atomic.AddInt64(&s.nextCursor, 1)
	st.mu.Lock()
	st.cursors[id] = &cursor{set: res.Set}
	st.mu.Unlock()
	resp := &Response{CursorID: id, Columns: res.Set.Columns}
	if res.Cached {
		resp.CacheHits = 1
	}
	return resp
}

func (s *Server) serveFetch(ctx context.Context, req *Request, st *connState) *Response {
	// The cursor offset advances under the state lock: two multiplexed
	// fetches on one cursor each get a distinct, disjoint slice.
	st.mu.Lock()
	cur, ok := st.cursors[req.CursorID]
	if !ok {
		st.mu.Unlock()
		return &Response{Err: fmt.Sprintf("wire: no cursor %d", req.CursorID)}
	}
	n := req.FetchN
	if n <= 0 {
		n = 1
	}
	end := cur.off + n
	if end > len(cur.set.Rows) {
		end = len(cur.set.Rows)
	}
	rows := cur.set.Rows[cur.off:end]
	cur.off = end
	done := cur.off >= len(cur.set.Rows)
	if done {
		delete(st.cursors, req.CursorID)
	}
	st.mu.Unlock()
	if s.sleep(ctx, time.Duration(len(rows))*s.profile.PerRowRead) != nil {
		return canceled()
	}
	return &Response{Rows: encodeRows(rows), Done: done}
}

func encodeRows(rows []sqldb.Row) [][]WireValue {
	out := make([][]WireValue, len(rows))
	for i, r := range rows {
		wr := make([]WireValue, len(r))
		for j, v := range r {
			wr[j] = ToWire(v)
		}
		out[i] = wr
	}
	return out
}

// sleep injects the profile's simulated processing delay, observing the
// request's context. Sub-millisecond delays are spun rather than slept: the
// OS timer granularity (≈1 ms) would otherwise flatten the differences
// between vendor profiles that the insertion benchmarks measure.
func (s *Server) sleep(ctx context.Context, d time.Duration) error {
	if d > 0 {
		// Count the full charge even when a cancellation cuts the delay
		// short: VendorNanos reports what the workload cost at the simulated
		// vendor's prices, not how long this process happened to block.
		s.vendorNanos.Add(int64(d))
	}
	return DelayCtx(ctx, d)
}

// Delay blocks for d with microsecond precision.
func Delay(d time.Duration) {
	DelayCtx(context.Background(), d)
}

// DelayCtx blocks for d with microsecond precision, returning early with the
// context's error when it is canceled. Long delays (the sleepable remote
// round trips a canceled analysis would otherwise sit out in full) select on
// the context; the sub-2ms spin path checks it once at the end, which bounds
// the overshoot of a cancellation to less than the OS timer granularity.
func DelayCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if d >= 2*time.Millisecond {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return ctx.Err()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
	return ctx.Err()
}
