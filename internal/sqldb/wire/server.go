package wire

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
)

// Server serves a sqldb.DB over TCP.
type Server struct {
	db      *sqldb.DB
	profile Profile
	lis     net.Listener
	logger  *log.Logger

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	nextCursor int64
	nextStmt   int64
}

// NewServer returns a server for db with the given vendor profile. If logger
// is nil, logging is disabled.
func NewServer(db *sqldb.DB, profile Profile, logger *log.Logger) (*Server, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	return &Server{db: db, profile: profile, logger: logger, conns: make(map[net.Conn]struct{})}, nil
}

// Listen binds the server to addr ("127.0.0.1:0" picks a free port) and
// starts accepting connections in the background.
func (s *Server) Listen(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address; valid after Listen.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops the listener and all connections and waits for the handler
// goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// cursor is a server-side materialized result with a read offset.
type cursor struct {
	set *sqldb.ResultSet
	off int
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	// stmts holds this connection's prepared statements; like JDBC
	// PreparedStatements, handles are scoped to the connection and released
	// when it closes.
	stmts := make(map[int64]*sqldb.PreparedStmt)
	defer func() {
		for _, ps := range stmts {
			ps.Close()
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	codec := NewCodec(conn)
	cursors := make(map[int64]*cursor)
	for {
		req, err := codec.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("wire: read: %v", err)
			}
			return
		}
		resp := s.serve(req, cursors, stmts)
		if err := codec.WriteResponse(resp); err != nil {
			s.logf("wire: write: %v", err)
			return
		}
	}
}

func (s *Server) serve(req *Request, cursors map[int64]*cursor, stmts map[int64]*sqldb.PreparedStmt) *Response {
	s.sleep(s.profile.RoundTrip)
	switch req.Kind {
	case ReqPing:
		s.sleep(s.profile.PerStatement)
		return &Response{}
	case ReqExec:
		return s.serveExec(req)
	case ReqQueryCursor:
		return s.serveQueryCursor(req, cursors)
	case ReqFetch:
		return s.serveFetch(req, cursors)
	case ReqCloseCursor:
		delete(cursors, req.CursorID)
		return &Response{}
	case ReqPrepare:
		return s.servePrepare(req, stmts)
	case ReqExecPrepared:
		return s.serveExecPrepared(req, stmts)
	case ReqClosePrepared:
		if ps, ok := stmts[req.StmtID]; ok {
			ps.Close()
			delete(stmts, req.StmtID)
		}
		return &Response{}
	}
	return &Response{Err: fmt.Sprintf("wire: unknown request kind %d", req.Kind)}
}

func toParams(req *Request) *sqldb.Params {
	if len(req.Pos) == 0 && len(req.Named) == 0 {
		return nil
	}
	p := &sqldb.Params{Named: make(map[string]sqldb.Value, len(req.Named))}
	for _, v := range req.Pos {
		p.Positional = append(p.Positional, v.FromWire())
	}
	for k, v := range req.Named {
		p.Named[k] = v.FromWire()
	}
	return p
}

func (s *Server) serveExec(req *Request) *Response {
	res, err := s.db.Exec(req.SQL, toParams(req))
	if err != nil {
		return &Response{Err: err.Error()}
	}
	// A text-protocol execution compiles the statement anew every time, so
	// it is charged the prepare cost on top of the per-statement overhead.
	s.sleep(s.profile.PerPrepare + s.profile.PerStatement + time.Duration(res.Affected)*s.profile.PerRowWrite)
	resp := &Response{Affected: res.Affected, Done: true}
	if res.Set != nil {
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		s.sleep(time.Duration(len(resp.Rows)) * s.profile.PerRowRead)
	}
	return resp
}

func (s *Server) servePrepare(req *Request, stmts map[int64]*sqldb.PreparedStmt) *Response {
	ps, err := s.db.Prepare(req.SQL)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	s.sleep(s.profile.PerPrepare + s.profile.PerStatement)
	id := atomic.AddInt64(&s.nextStmt, 1)
	stmts[id] = ps
	return &Response{StmtID: id}
}

func (s *Server) serveExecPrepared(req *Request, stmts map[int64]*sqldb.PreparedStmt) *Response {
	ps, ok := stmts[req.StmtID]
	if !ok {
		return &Response{Err: fmt.Sprintf("wire: no prepared statement %d", req.StmtID)}
	}
	res, err := ps.Execute(toParams(req))
	if err != nil {
		return &Response{Err: err.Error()}
	}
	// Executing a prepared handle skips the compile cost; only the fixed
	// per-statement overhead and the row costs apply.
	s.sleep(s.profile.PerStatement + time.Duration(res.Affected)*s.profile.PerRowWrite)
	resp := &Response{Affected: res.Affected, Done: true}
	if res.Set != nil {
		resp.Columns = res.Set.Columns
		resp.Rows = encodeRows(res.Set.Rows)
		s.sleep(time.Duration(len(resp.Rows)) * s.profile.PerRowRead)
	}
	return resp
}

func (s *Server) serveQueryCursor(req *Request, cursors map[int64]*cursor) *Response {
	res, err := s.db.Exec(req.SQL, toParams(req))
	if err != nil {
		return &Response{Err: err.Error()}
	}
	if res.Set == nil {
		return &Response{Err: "wire: statement produced no result set"}
	}
	s.sleep(s.profile.PerPrepare + s.profile.PerStatement)
	id := atomic.AddInt64(&s.nextCursor, 1)
	cursors[id] = &cursor{set: res.Set}
	return &Response{CursorID: id, Columns: res.Set.Columns}
}

func (s *Server) serveFetch(req *Request, cursors map[int64]*cursor) *Response {
	cur, ok := cursors[req.CursorID]
	if !ok {
		return &Response{Err: fmt.Sprintf("wire: no cursor %d", req.CursorID)}
	}
	n := req.FetchN
	if n <= 0 {
		n = 1
	}
	end := cur.off + n
	if end > len(cur.set.Rows) {
		end = len(cur.set.Rows)
	}
	rows := cur.set.Rows[cur.off:end]
	cur.off = end
	s.sleep(time.Duration(len(rows)) * s.profile.PerRowRead)
	resp := &Response{Rows: encodeRows(rows), Done: cur.off >= len(cur.set.Rows)}
	if resp.Done {
		delete(cursors, req.CursorID)
	}
	return resp
}

func encodeRows(rows []sqldb.Row) [][]WireValue {
	out := make([][]WireValue, len(rows))
	for i, r := range rows {
		wr := make([]WireValue, len(r))
		for j, v := range r {
			wr[j] = ToWire(v)
		}
		out[i] = wr
	}
	return out
}

// sleep injects the profile's simulated processing delay. Sub-millisecond
// delays are spun rather than slept: the OS timer granularity (≈1 ms) would
// otherwise flatten the differences between vendor profiles that the
// insertion benchmarks measure.
func (s *Server) sleep(d time.Duration) {
	Delay(d)
}

// Delay blocks for d with microsecond precision.
func Delay(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 2*time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
