package wire_test

// Fuzzing the wire frame decoder: whatever bytes arrive on the socket, the
// codec must fail cleanly — an error, never a panic. The seed corpus covers
// every request kind, the multiplex tag, and a cancel frame, so mutations
// explore the gob encoding's neighborhood rather than pure noise.

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/sqldb/wire"
)

// encodeRequests gob-encodes a request stream to raw bytes.
func encodeRequests(t testing.TB, reqs ...*wire.Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	codec := wire.NewCodec(struct {
		io.Reader
		io.Writer
	}{nil, &buf})
	for _, r := range reqs {
		if err := codec.WriteRequest(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func FuzzReadRequest(f *testing.F) {
	seeds := [][]byte{
		encodeRequests(f, &wire.Request{Kind: wire.ReqPing}),
		encodeRequests(f, &wire.Request{Kind: wire.ReqExec, SQL: "CREATE TABLE t (id INTEGER PRIMARY KEY)"}),
		encodeRequests(f, &wire.Request{
			Kind: wire.ReqQueryCursor,
			SQL:  "SELECT * FROM t WHERE id = ? AND v = :v",
			Pos:  []wire.WireValue{{Kind: 1, I: 42}},
			Named: map[string]wire.WireValue{
				"v": {Kind: 3, S: "hello"},
			},
			FetchN: 8,
			ID:     7,
		}),
		encodeRequests(f, &wire.Request{
			Kind:   wire.ReqExecBatch,
			StmtID: 3,
			Batch: []wire.BatchBinding{
				{Pos: []wire.WireValue{{Kind: 2, F: 1.5}}},
				{Pos: []wire.WireValue{{Kind: 0}}},
			},
			ID: 9,
		}),
		encodeRequests(f, &wire.Request{Kind: wire.ReqCancel, ID: 11, CancelID: 9}),
		// A pipelined stream: two frames back to back.
		encodeRequests(f,
			&wire.Request{Kind: wire.ReqPrepare, SQL: "SELECT 1", ID: 1},
			&wire.Request{Kind: wire.ReqExecPrepared, StmtID: 1, ID: 2},
		),
		[]byte{},
		[]byte{0xff, 0xfe, 0x00, 0x01},
	}
	// Torn variants of the first real frame: every prefix of a valid
	// encoding is a frame the server may see when a client dies mid-write.
	whole := encodeRequests(f, &wire.Request{Kind: wire.ReqExec, SQL: "SELECT 1", ID: 5})
	for i := 0; i < len(whole); i += 3 {
		seeds = append(seeds, whole[:i])
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		codec := wire.NewCodec(struct {
			io.Reader
			io.Writer
		}{bytes.NewReader(data), io.Discard})
		// Decode the stream as the server's read loop would: frame by frame
		// until the first error. Must never panic; decoded frames must
		// re-encode cleanly (nothing unrepresentable sneaks through).
		for i := 0; i < 64; i++ {
			req, err := codec.ReadRequest()
			if err != nil {
				return
			}
			if len(req.Batch) > 10*wire.MaxBatch {
				// Decoding is tolerant; the server's own request handling
				// enforces semantic limits. Re-encoding a pathological batch
				// is pointless work for the fuzzer.
				return
			}
			if err := wire.NewCodec(struct {
				io.Reader
				io.Writer
			}{nil, io.Discard}).WriteRequest(req); err != nil {
				t.Fatalf("decoded request does not re-encode: %v", err)
			}
		}
	})
}
