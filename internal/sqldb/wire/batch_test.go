package wire_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/godbc"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// rawClient opens a codec straight onto the server socket, bypassing godbc,
// so tests can send protocol-level requests godbc would never emit.
func rawClient(t *testing.T, addr string) *wire.Codec {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return wire.NewCodec(nc)
}

func startBatchServer(t *testing.T, profile wire.Profile) (*sqldb.DB, *wire.Server) {
	t.Helper()
	db := sqldb.NewDB()
	srv, err := wire.NewServer(db, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return db, srv
}

func TestBatchUnknownHandle(t *testing.T) {
	_, srv := startBatchServer(t, wire.ProfileFast)
	codec := rawClient(t, srv.Addr())
	if err := codec.WriteRequest(&wire.Request{
		Kind:   wire.ReqExecBatch,
		StmtID: 12345,
		Batch:  []wire.BatchBinding{{}},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := codec.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "no prepared statement") {
		t.Fatalf("Err = %q", resp.Err)
	}
	// The connection must remain usable after the batch-level error.
	if err := codec.WriteRequest(&wire.Request{Kind: wire.ReqPing}); err != nil {
		t.Fatal(err)
	}
	if resp, err = codec.ReadResponse(); err != nil || resp.Err != "" {
		t.Fatalf("ping after batch error: %v %q", err, resp.Err)
	}
}

func TestBatchOversizedRejectedAtProtocolLevel(t *testing.T) {
	db, srv := startBatchServer(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER)", nil)
	// A raw request over the limit must be rejected whole: the server cannot
	// truncate without breaking binding-to-result ordering.
	codec := rawClient(t, srv.Addr())
	over := make([]wire.BatchBinding, wire.MaxBatch+1)
	if err := codec.WriteRequest(&wire.Request{Kind: wire.ReqExecBatch, StmtID: 1, Batch: over}); err != nil {
		t.Fatal(err)
	}
	resp, err := codec.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "exceeds the limit") {
		t.Fatalf("Err = %q", resp.Err)
	}
}

func TestBatchClientSplitsOversizedBatches(t *testing.T) {
	db, srv := startBatchServer(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)", nil)
	n := wire.MaxBatch*2 + 17
	for i := 0; i < n; i++ {
		db.MustExec("INSERT INTO t (id, v) VALUES (?, ?)", &sqldb.Params{Positional: []sqldb.Value{
			sqldb.NewInt(int64(i)), sqldb.NewInt(int64(i * i)),
		}})
	}
	conn, err := godbc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	st, err := conn.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var bindings []*sqldb.Params
	for i := 0; i < n; i++ {
		bindings = append(bindings, &sqldb.Params{Positional: []sqldb.Value{sqldb.NewInt(int64(i))}})
	}
	results, err := st.ExecBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results for %d bindings", len(results), n)
	}
	// Result ordering must survive the chunk split.
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("binding %d: %v", i, r.Err)
		}
		if got := r.Set.Rows[0][0].Int(); got != int64(i*i) {
			t.Fatalf("binding %d: v = %d, want %d", i, got, i*i)
		}
	}
	if st := db.Stats(); st.BatchExecs != 3 || st.BatchBindings != int64(n) {
		t.Fatalf("server saw %d batches with %d bindings, want 3 with %d", st.BatchExecs, st.BatchBindings, n)
	}
}

func TestBatchPartialFailureOrderingOverWire(t *testing.T) {
	db, srv := startBatchServer(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)", nil)
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)", nil)
	conn, err := godbc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	st, err := conn.Prepare("SELECT v FROM t WHERE id = $id")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.AddBatch(&sqldb.Params{Named: map[string]sqldb.Value{"id": sqldb.NewInt(1)}})
	st.AddBatch(&sqldb.Params{Named: map[string]sqldb.Value{"wrong": sqldb.NewInt(2)}})
	st.AddBatch(&sqldb.Params{Named: map[string]sqldb.Value{"id": sqldb.NewInt(3)}})
	results, err := st.ExecuteBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[0].Set.Rows[0][0].Int() != 10 {
		t.Fatalf("binding 0: %+v", results[0])
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "parameter") {
		t.Fatalf("binding 1: %+v", results[1])
	}
	if results[2].Err != nil || results[2].Set.Rows[0][0].Int() != 30 {
		t.Fatalf("binding 2: %+v", results[2])
	}
	// ExecuteBatch must have cleared the queue.
	if again, err := st.ExecuteBatch(); err != nil || len(again) != 0 {
		t.Fatalf("queue not cleared: %v %v", again, err)
	}
}

func TestBatchStaleSchemaMidFlight(t *testing.T) {
	db, srv := startBatchServer(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)", nil)
	for i := 0; i < 8; i++ {
		db.MustExec("INSERT INTO t (id, v) VALUES (?, ?)", &sqldb.Params{Positional: []sqldb.Value{
			sqldb.NewInt(int64(i)), sqldb.NewInt(int64(100 + i)),
		}})
	}
	conn, err := godbc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	st, err := conn.Prepare("SELECT v FROM t WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// DDL between the prepare and the batch bumps the schema version; the
	// server-side handle must replan and the batch must still succeed.
	db.MustExec("CREATE INDEX idx_t_id ON t (id)", nil)
	var bindings []*sqldb.Params
	for i := 0; i < 8; i++ {
		bindings = append(bindings, &sqldb.Params{Positional: []sqldb.Value{sqldb.NewInt(int64(i))}})
	}
	results, err := st.ExecBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Set.Rows[0][0].Int() != int64(100+i) {
			t.Fatalf("binding %d after DDL: %+v", i, r)
		}
	}
	if db.Stats().Replans == 0 {
		t.Fatal("expected the server to replan the stale handle")
	}
	// A table dropped under the handle must fail the whole batch cleanly and
	// leave the connection usable.
	db.MustExec("DROP TABLE t", nil)
	if _, err := st.ExecBatch(bindings[:2]); err == nil {
		t.Fatal("batch against a dropped table must fail")
	}
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchFallbackAgainstPreBatchServer(t *testing.T) {
	db, srv := startBatchServer(t, wire.ProfileFast)
	srv.DisableBatch()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)", nil)
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)", nil)
	conn, err := godbc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	st, err := conn.Prepare("SELECT v FROM t WHERE id = $id")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mk := func(id int64) *sqldb.Params {
		return &sqldb.Params{Named: map[string]sqldb.Value{"id": sqldb.NewInt(id)}}
	}
	// Both rounds must succeed: the first discovers the missing extension and
	// falls back, the second goes straight to the per-exec loop.
	for round := 0; round < 2; round++ {
		results, err := st.ExecBatch([]*sqldb.Params{mk(1), mk(2), mk(3)})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, r := range results {
			if r.Err != nil || r.Set.Rows[0][0].Int() != int64(10*(i+1)) {
				t.Fatalf("round %d binding %d: %+v", round, i, r)
			}
		}
	}
	if st := db.Stats(); st.BatchExecs != 0 {
		t.Fatalf("pre-batch server executed %d batches", st.BatchExecs)
	}
}

func TestServerShutdownDrains(t *testing.T) {
	db, srv := startBatchServer(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER)", nil)
	// No clients: shutdown returns promptly.
	start := time.Now()
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("idle shutdown took %v", elapsed)
	}

	// A lingering client: shutdown waits, then force-closes at the deadline.
	db2, srv2 := startBatchServer(t, wire.ProfileFast)
	db2.MustExec("CREATE TABLE t (id INTEGER)", nil)
	conn, err := godbc.Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Shutdown(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := conn.Ping(); err == nil {
		t.Fatal("ping after forced shutdown must fail")
	}
	// New connections are refused after shutdown.
	if _, err := godbc.Dial(srv2.Addr()); err == nil {
		// Dial may succeed before the OS notices; the first round trip must fail.
		c2, _ := godbc.Dial(srv2.Addr())
		if c2 != nil {
			if err := c2.Ping(); err == nil {
				t.Fatal("server accepted traffic after shutdown")
			}
			c2.Close()
		}
	}
	// Shutdown after shutdown is a no-op.
	if err := srv2.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
}
