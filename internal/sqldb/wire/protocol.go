// Package wire implements a client/server protocol for the sqldb engine:
// length-prefixed gob messages over TCP, server-side cursors with
// configurable fetch granularity, and per-vendor performance profiles that
// model the database configurations of the paper's Section 5 (local MS
// Access versus networked Oracle 7, MS SQL Server, and Postgres).
package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/sqldb"
)

// RequestKind selects the operation of a request.
type RequestKind int

// Request kinds.
const (
	ReqExec          RequestKind = iota // execute statement, inline result
	ReqQueryCursor                      // execute SELECT, open a cursor
	ReqFetch                            // fetch next batch from a cursor
	ReqCloseCursor                      // discard a cursor
	ReqPing                             // round-trip probe
	ReqPrepare                          // parse and plan, return a statement handle
	ReqExecPrepared                     // execute a prepared handle, inline result
	ReqClosePrepared                    // discard a statement handle
	ReqExecBatch                        // execute a prepared handle once per binding, inline results
	ReqCacheStats                       // fetch the server's result-cache counters
	ReqCancel                           // cancel the in-flight multiplexed request named by CancelID
	ReqServerStats                      // fetch the server's engine and vendor-cost counters
)

// MaxBatch is the largest number of parameter bindings one ReqExecBatch may
// carry. The limit bounds the server-side memory of a single request (every
// binding's result set is materialized before the response is written);
// clients split larger batches transparently (see godbc.Stmt.ExecuteBatch).
const MaxBatch = 256

// WireValue is the on-wire representation of a sqldb.Value.
type WireValue struct {
	Kind byte // 0 null, 1 int, 2 float, 3 text, 4 bool
	I    int64
	F    float64
	S    string
}

// ToWire converts an engine value.
func ToWire(v sqldb.Value) WireValue {
	switch {
	case v.IsNull():
		return WireValue{Kind: 0}
	case v.IsInt():
		return WireValue{Kind: 1, I: v.Int()}
	case v.IsNumeric():
		return WireValue{Kind: 2, F: v.Float()}
	case v.IsText():
		return WireValue{Kind: 3, S: v.Text()}
	default:
		b := int64(0)
		if v.Bool() {
			b = 1
		}
		return WireValue{Kind: 4, I: b}
	}
}

// FromWire converts back to an engine value.
func (w WireValue) FromWire() sqldb.Value {
	switch w.Kind {
	case 1:
		return sqldb.NewInt(w.I)
	case 2:
		return sqldb.NewFloat(w.F)
	case 3:
		return sqldb.NewText(w.S)
	case 4:
		return sqldb.NewBool(w.I != 0)
	}
	return sqldb.Null
}

// Request is a client message.
type Request struct {
	Kind     RequestKind
	SQL      string
	Pos      []WireValue
	Named    map[string]WireValue
	CursorID int64
	FetchN   int
	// StmtID addresses a server-side prepared statement for ReqExecPrepared,
	// ReqClosePrepared, and ReqExecBatch; prepared requests ship no SQL text.
	StmtID int64
	// Batch carries the parameter bindings of a ReqExecBatch: one entry per
	// execution of the prepared handle, at most MaxBatch of them.
	Batch []BatchBinding
	// ID tags a multiplexed request. A nonzero ID tells the server this
	// connection may have several requests in flight: the server executes
	// tagged requests concurrently and echoes the ID on the matching
	// Response, so the client can demultiplex replies that arrive out of
	// order. ID 0 is the pre-multiplex protocol — requests are served
	// one at a time, in order, exactly as every peer behaved before the
	// extension existed. Gob drops unknown fields, so a pre-mux server
	// never sees the tag and a pre-mux client never sends one.
	ID int64
	// CancelID names the in-flight request a ReqCancel aborts. Cancellation
	// is cooperative: the server cancels the target's context, the target's
	// blocking points (capacity queue, profiled vendor delays, per-binding
	// batch progress) observe it, and the target still produces exactly one
	// Response (an error) so the reply stream stays balanced. Canceling an
	// unknown or already-completed ID is a harmless no-op.
	CancelID int64
}

// BatchBinding is one parameter set of a batched execution.
type BatchBinding struct {
	Pos   []WireValue
	Named map[string]WireValue
}

// BatchItem is the per-binding outcome of a ReqExecBatch: either Err or a
// result. Items are ordered exactly as the request's bindings, so partial
// failures map back to their parameter sets.
type BatchItem struct {
	Err      string
	Columns  []string
	Rows     [][]WireValue
	Affected int
	// Cached marks a binding answered from the server's result cache. Gob
	// drops fields the receiver does not know, so pre-cache clients decode
	// these items unchanged.
	Cached bool
}

// CacheStats is the result-cache counter snapshot a ReqCacheStats returns.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Invalidations int64
	Evictions     int64
	Entries       int
}

// ServerStats is the engine and cost counter snapshot a ReqServerStats
// returns: the backend's SELECT engine counters plus the server's own
// request count and the cumulative simulated vendor delay it has charged.
// Like every protocol extension, a server predating it answers the request
// as an unknown kind and clients degrade gracefully (see godbc.ServerStats).
type ServerStats struct {
	// Engine names the backend's SELECT execution engine ("vector" or "row").
	Engine string
	// VecSelects / VecFallbacks count planned SELECTs executed on the
	// vectorized operators versus the row interpreter.
	VecSelects   int64
	VecFallbacks int64
	// FbJoinShape..FbOther break VecFallbacks down by refused plan shape.
	// Gob drops unknown fields, so pre-breakdown peers interoperate.
	FbJoinShape int64
	FbStar      int64
	FbOrderExpr int64
	FbSubquery  int64
	FbOther     int64
	// PlanCacheHits / Misses count ad-hoc statement traffic through the
	// server's plan cache.
	PlanCacheHits   int64
	PlanCacheMisses int64
	// Requests counts protocol requests this server has served.
	Requests int64
	// VendorNanos is the cumulative simulated vendor delay (round trips,
	// statement and prepare costs, per-row charges) the server has injected,
	// in nanoseconds — the profiled "money spent at the database vendor".
	VendorNanos int64
}

// Response is a server message.
type Response struct {
	Err      string
	Columns  []string
	Rows     [][]WireValue
	Affected int
	CursorID int64
	// StmtID is the handle returned by ReqPrepare.
	StmtID int64
	// Done marks cursor exhaustion.
	Done bool
	// Items holds the per-binding outcomes of a ReqExecBatch.
	Items []BatchItem
	// CacheHits counts how many of this reply's results were served from the
	// server's result cache (0 or 1 for single executions, up to the binding
	// count for a batch). Pre-cache servers never set it; pre-cache clients
	// ignore it — gob tolerates the field being absent on either side.
	CacheHits int
	// Cache is the counter snapshot answering a ReqCacheStats.
	Cache *CacheStats
	// Server is the counter snapshot answering a ReqServerStats.
	Server *ServerStats
	// ID echoes the Request.ID of a multiplexed request so the client can
	// route the reply. Pre-mux servers never set it (gob tolerates the
	// absence); a mux client that reads back ID 0 knows it is talking to a
	// pre-mux peer and falls back to one-request-at-a-time pairing.
	ID int64
}

// ErrCanceled is the Response.Err text of a request whose server-side work
// was stopped by a ReqCancel or a client disconnect. Clients that canceled
// deliberately have usually stopped waiting already; the text exists so a
// late reply is self-describing.
const ErrCanceled = "wire: request canceled"

// Codec frames gob messages on a stream.
type Codec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewCodec wraps a bidirectional stream.
func NewCodec(rw io.ReadWriter) *Codec {
	return &Codec{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// WriteRequest sends a request.
func (c *Codec) WriteRequest(r *Request) error { return c.enc.Encode(r) }

// ReadRequest receives a request.
func (c *Codec) ReadRequest() (*Request, error) {
	var r Request
	if err := c.dec.Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteResponse sends a response.
func (c *Codec) WriteResponse(r *Response) error { return c.enc.Encode(r) }

// ReadResponse receives a response.
func (c *Codec) ReadResponse() (*Response, error) {
	var r Response
	if err := c.dec.Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Profile models the performance character of a database deployment. The
// engine is identical in all configurations; what differed between the
// paper's four DBMS setups was deployment (local file database versus
// networked server) and per-statement server cost. The delays below are
// injected server side, on top of the real cost of TCP transport and gob
// marshalling.
type Profile struct {
	// Name identifies the vendor configuration in reports.
	Name string
	// RoundTrip is network and request-dispatch latency charged once per
	// protocol request (the distributed setups of the paper transferred
	// data over the network to the database server).
	RoundTrip time.Duration
	// PerStatement is fixed statement-processing overhead (dispatch,
	// logging, transaction bookkeeping) charged on every execution, text or
	// prepared.
	PerStatement time.Duration
	// PerPrepare is statement-compilation overhead (lexing, parsing, query
	// planning in the vendor server). A text-protocol execution compiles the
	// statement anew and is charged PerPrepare every time; a prepared
	// statement pays it once, on ReqPrepare, and executions of the handle
	// skip it — the PreparedStatement economics of the paper's JDBC
	// deployments.
	PerPrepare time.Duration
	// PerRowWrite is added per inserted/updated/deleted row; it models
	// per-row commit cost, the dominant term of the paper's insertion
	// comparison.
	PerRowWrite time.Duration
	// PerRowRead is added per row shipped to the client.
	PerRowRead time.Duration
}

// The vendor profiles. The constants are calibrated so that the *ratios*
// reproduce Section 5: Oracle insertion ≈ 20× slower than the local
// embedded engine ("MS Access"), MS SQL Server / Postgres ≈ 2× faster than
// Oracle, and row-at-a-time cursor fetch ≈ 2–4× slower than bulk ("C-based")
// access. Absolute values are scaled down roughly 5–15× from the 1999
// hardware so the benchmark suite stays fast; EXPERIMENTS.md records the
// mapping.
var (
	// ProfileAccess models the local MS Access configuration: in-process,
	// no network, only driver dispatch overhead. Apply it with
	// godbc.ProfiledEmbedded.
	ProfileAccess = Profile{Name: "access", PerStatement: 12 * time.Microsecond, PerPrepare: 6 * time.Microsecond}
	// ProfileOracle models the networked Oracle 7 server of the paper. Its
	// statement compiler ("hard parse") is the most expensive of the four
	// vendors, which is exactly what PreparedStatement was amortizing in the
	// measured deployment.
	ProfileOracle = Profile{Name: "oracle7", RoundTrip: 150 * time.Microsecond, PerStatement: 20 * time.Microsecond, PerPrepare: 60 * time.Microsecond, PerRowWrite: 130 * time.Microsecond, PerRowRead: 60 * time.Microsecond}
	// ProfileMSSQL models the MS SQL Server configuration.
	ProfileMSSQL = Profile{Name: "mssql", RoundTrip: 100 * time.Microsecond, PerStatement: 10 * time.Microsecond, PerPrepare: 25 * time.Microsecond, PerRowWrite: 40 * time.Microsecond, PerRowRead: 30 * time.Microsecond}
	// ProfilePostgres models the Postgres configuration.
	ProfilePostgres = Profile{Name: "postgres", RoundTrip: 100 * time.Microsecond, PerStatement: 12 * time.Microsecond, PerPrepare: 25 * time.Microsecond, PerRowWrite: 42 * time.Microsecond, PerRowRead: 30 * time.Microsecond}
	// ProfileOracleRemote models the paper's measured deployment at full
	// scale: the COSY prototype talked to the Oracle server across the
	// department network through JDBC and paid about 1 ms per fetched record,
	// latency the analyzer spends idle on the wire. Unlike the scaled-down
	// LAN profiles above, this round trip is long enough that Delay sleeps
	// instead of spinning, so concurrent requests from a connection pool
	// genuinely overlap — the configuration the parallel evaluation pipeline
	// is built for.
	ProfileOracleRemote = Profile{Name: "oracle-remote", RoundTrip: 2 * time.Millisecond, PerStatement: 20 * time.Microsecond, PerPrepare: 60 * time.Microsecond, PerRowWrite: 130 * time.Microsecond, PerRowRead: 60 * time.Microsecond}
	// ProfileFast is a zero-overhead server profile used to isolate pure
	// protocol cost in tests and benchmarks.
	ProfileFast = Profile{Name: "fast"}
)

// String renders the profile name.
func (p Profile) String() string { return p.Name }

// Validate rejects nonsensical profiles.
func (p Profile) Validate() error {
	if p.RoundTrip < 0 || p.PerStatement < 0 || p.PerPrepare < 0 || p.PerRowWrite < 0 || p.PerRowRead < 0 {
		return fmt.Errorf("wire: profile %s has negative delays", p.Name)
	}
	return nil
}

// ByName returns the named built-in profile.
func ByName(name string) (Profile, bool) {
	for _, p := range []Profile{ProfileAccess, ProfileOracle, ProfileMSSQL, ProfilePostgres, ProfileOracleRemote, ProfileFast} {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
