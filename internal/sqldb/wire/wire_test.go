package wire_test

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/godbc"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// startPair launches a server over a fresh database and returns a connected
// client.
func startPair(t *testing.T, profile wire.Profile) (*sqldb.DB, *godbc.Conn) {
	t.Helper()
	db := sqldb.NewDB()
	srv, err := wire.NewServer(db, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := godbc.Dial(srv.Addr())
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		conn.Close()
		srv.Close()
	})
	return db, conn
}

func TestPingAndExec(t *testing.T) {
	_, conn := startPair(t, wire.ProfileFast)
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)", nil); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Exec("INSERT INTO t (id, v) VALUES (?, ?), (?, ?)",
		&sqldb.Params{Positional: []sqldb.Value{
			sqldb.NewInt(1), sqldb.NewFloat(1.5),
			sqldb.NewInt(2), sqldb.NewFloat(2.5),
		}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	set, err := conn.ExecQuery("SELECT v FROM t ORDER BY id", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 2 || set.Rows[0][0].Float() != 1.5 {
		t.Fatalf("rows: %v", set.Rows)
	}
}

func TestErrorPropagation(t *testing.T) {
	_, conn := startPair(t, wire.ProfileFast)
	if _, err := conn.Exec("SELECT * FROM nosuch", nil); err == nil {
		t.Fatal("expected server error")
	}
	// The connection must remain usable after an error.
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Query("BOGUS SQL", nil); err == nil {
		t.Fatal("expected query error")
	}
}

func TestCursorFetchSizes(t *testing.T) {
	db, conn := startPair(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY)", nil)
	for i := 0; i < 57; i++ {
		db.MustExec("INSERT INTO t (id) VALUES (?)", &sqldb.Params{Positional: []sqldb.Value{sqldb.NewInt(int64(i))}})
	}
	for _, size := range []int{1, 2, 10, 57, 100} {
		conn.SetFetchSize(size)
		rows, err := conn.Query("SELECT id FROM t ORDER BY id", nil)
		if err != nil {
			t.Fatal(err)
		}
		n := int64(0)
		for rows.Next() {
			if rows.Row()[0].Int() != n {
				t.Fatalf("fetch size %d: row %d = %v", size, n, rows.Row())
			}
			n++
		}
		if rows.Err() != nil {
			t.Fatal(rows.Err())
		}
		if n != 57 {
			t.Fatalf("fetch size %d: fetched %d rows", size, n)
		}
	}
	if conn.FetchSize() != 100 {
		t.Fatalf("FetchSize = %d", conn.FetchSize())
	}
	conn.SetFetchSize(0)
	if conn.FetchSize() != 1 {
		t.Fatal("SetFetchSize must clamp to 1")
	}
}

func TestCursorCloseEarly(t *testing.T) {
	db, conn := startPair(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER)", nil)
	for i := 0; i < 10; i++ {
		db.MustExec("INSERT INTO t (id) VALUES (?)", &sqldb.Params{Positional: []sqldb.Value{sqldb.NewInt(int64(i))}})
	}
	rows, err := conn.Query("SELECT id FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh query on the same connection must still work.
	set, err := conn.ExecQuery("SELECT COUNT(*) FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 10 {
		t.Fatalf("count: %v", set.Rows[0][0])
	}
}

func TestNamedParamsOverWire(t *testing.T) {
	db, conn := startPair(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER, tag TEXT)", nil)
	db.MustExec("INSERT INTO t (id, tag) VALUES (1, 'a'), (2, 'b')", nil)
	set, err := conn.ExecQuery("SELECT id FROM t WHERE tag = $tag",
		&sqldb.Params{Named: map[string]sqldb.Value{"tag": sqldb.NewText("b")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 1 || set.Rows[0][0].Int() != 2 {
		t.Fatalf("rows: %v", set.Rows)
	}
}

func TestNullsSurviveTheWire(t *testing.T) {
	db, conn := startPair(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER, v REAL)", nil)
	db.MustExec("INSERT INTO t (id, v) VALUES (1, NULL)", nil)
	set, err := conn.ExecQuery("SELECT v FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Rows[0][0].IsNull() {
		t.Fatalf("NULL lost: %v", set.Rows[0][0])
	}
}

func TestConcurrentConnections(t *testing.T) {
	db, _ := startPair(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)", nil)
	srv, err := wire.NewServer(db, wire.ProfileFast, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := godbc.Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for i := 0; i < 25; i++ {
				id := int64(w*1000 + i)
				if _, err := conn.Exec("INSERT INTO t (id, v) VALUES (?, ?)",
					&sqldb.Params{Positional: []sqldb.Value{sqldb.NewInt(id), sqldb.NewInt(id)}}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := db.MustExec("SELECT COUNT(*) FROM t", nil)
	if got := res.Set.Rows[0][0].Int(); got != workers*25 {
		t.Fatalf("rows = %d, want %d", got, workers*25)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	db := sqldb.NewDB()
	srv, err := wire.NewServer(db, wire.ProfileFast, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := godbc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Ping(); err == nil {
		t.Fatal("ping after server close must fail")
	}
	conn.Close()
	if err := conn.Ping(); err == nil {
		t.Fatal("ping on closed connection must fail")
	}
	// Double close is fine.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := wire.Profile{Name: "bad", PerRowWrite: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative profile must fail validation")
	}
	if _, err := wire.NewServer(sqldb.NewDB(), bad, nil); err == nil {
		t.Fatal("server must reject invalid profile")
	}
	for _, name := range []string{"access", "oracle7", "mssql", "postgres", "fast"} {
		p, ok := wire.ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%s) = %v %v", name, p, ok)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %s invalid: %v", name, err)
		}
	}
	if _, ok := wire.ByName("db2"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestProfileRatiosPreserveThePaperOrdering(t *testing.T) {
	// Per-record insertion cost ordering: access < mssql ≈ postgres < oracle,
	// with oracle roughly 2× the mssql cost (Section 5). Text-protocol
	// insertion compiles every statement, so PerPrepare is part of the cost.
	cost := func(p wire.Profile) time.Duration {
		return p.RoundTrip + p.PerPrepare + p.PerStatement + p.PerRowWrite
	}
	a, o, m, pg := cost(wire.ProfileAccess), cost(wire.ProfileOracle), cost(wire.ProfileMSSQL), cost(wire.ProfilePostgres)
	if !(a < m && m <= pg && pg < o) {
		t.Fatalf("ordering violated: access=%v mssql=%v postgres=%v oracle=%v", a, m, pg, o)
	}
	ratio := float64(o) / float64(m)
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("oracle/mssql = %.2f, want ≈2", ratio)
	}
}

func TestWireValueRoundTrip(t *testing.T) {
	f := func(i int64, fv float64, s string, b bool) bool {
		vals := []sqldb.Value{
			sqldb.NewInt(i), sqldb.NewFloat(fv), sqldb.NewText(s), sqldb.NewBool(b), sqldb.Null,
		}
		for _, v := range vals {
			got := wire.ToWire(v).FromWire()
			if v.IsNull() != got.IsNull() {
				return false
			}
			if v.IsNull() {
				continue
			}
			switch {
			case v.IsInt():
				if !got.IsInt() || got.Int() != v.Int() {
					return false
				}
			case v.IsNumeric():
				if got.Float() != v.Float() && !(v.Float() != v.Float() && got.Float() != got.Float()) {
					return false
				}
			case v.IsText():
				if got.Text() != v.Text() {
					return false
				}
			case v.IsBool():
				if got.Bool() != v.Bool() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayPrecision(t *testing.T) {
	start := time.Now()
	wire.Delay(300 * time.Microsecond)
	elapsed := time.Since(start)
	if elapsed < 300*time.Microsecond {
		t.Fatalf("Delay returned early: %v", elapsed)
	}
	if elapsed > 5*time.Millisecond {
		t.Fatalf("Delay wildly overshot: %v", elapsed)
	}
	wire.Delay(0) // must not block
}

func TestProfiledEmbedded(t *testing.T) {
	db := sqldb.NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER)", nil)
	pe := godbc.ProfiledEmbedded{DB: db, Profile: wire.ProfileAccess}
	res, err := pe.Exec("INSERT INTO t (id) VALUES (1), (2)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected: %d", res.Affected)
	}
	set, err := pe.ExecQuery("SELECT COUNT(*) FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if set.Rows[0][0].Int() != 2 {
		t.Fatalf("count: %v", set.Rows[0][0])
	}
	if _, err := pe.ExecQuery("INSERT INTO t (id) VALUES (3)", nil); err == nil {
		t.Fatal("ExecQuery of a non-query must fail")
	}
}

func TestCursorQueryAdapter(t *testing.T) {
	db, conn := startPair(t, wire.ProfileFast)
	db.MustExec("CREATE TABLE t (id INTEGER)", nil)
	db.MustExec("INSERT INTO t (id) VALUES (1), (2), (3)", nil)
	cq := godbc.CursorQuery{Conn: conn}
	set, err := cq.ExecQuery("SELECT id FROM t ORDER BY id", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 3 || set.Rows[2][0].Int() != 3 {
		t.Fatalf("rows: %v", set.Rows)
	}
}
