package wire_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/godbc"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// startCapped launches a server with a statement-execution capacity bound.
func startCapped(t *testing.T, profile wire.Profile, maxConcurrent int) *wire.Server {
	t.Helper()
	srv, err := wire.NewServer(sqldb.NewDB(), profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetMaxConcurrent(maxConcurrent)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestMaxConcurrentSerializes: with capacity 1, two concurrent requests
// cannot overlap their statement processing, so the pair takes at least two
// per-statement delays end to end. (Only the lower bound is asserted; upper
// bounds are scheduler noise.)
func TestMaxConcurrentSerializes(t *testing.T) {
	const perStatement = 20 * time.Millisecond
	srv := startCapped(t, wire.Profile{Name: "slow", PerStatement: perStatement}, 1)

	conns := make([]*godbc.Conn, 2)
	for i := range conns {
		c, err := godbc.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range conns {
		wg.Add(1)
		go func(c *godbc.Conn) {
			defer wg.Done()
			if err := c.Ping(); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 2*perStatement-5*time.Millisecond {
		t.Errorf("capacity 1 overlapped: two %v statements finished in %v", perStatement, elapsed)
	}
}

// TestMaxConcurrentCorrectUnderLoad: a bounded server must still answer
// every request correctly — the gate queues work, it never drops or
// corrupts it.
func TestMaxConcurrentCorrectUnderLoad(t *testing.T) {
	srv := startCapped(t, wire.ProfileFast, 2)
	pool, err := godbc.NewPool(srv.Addr(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Exec("INSERT INTO t (id, v) VALUES (?, ?)", &sqldb.Params{
		Positional: []sqldb.Value{sqldb.NewInt(1), sqldb.NewInt(42)}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			set, err := pool.ExecQuery("SELECT v FROM t WHERE id = ?", &sqldb.Params{
				Positional: []sqldb.Value{sqldb.NewInt(1)}})
			if err != nil {
				t.Error(err)
				return
			}
			if len(set.Rows) != 1 || set.Rows[0][0].Int() != 42 {
				t.Errorf("rows: %v", set.Rows)
			}
		}()
	}
	wg.Wait()
}
