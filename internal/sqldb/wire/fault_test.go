package wire_test

// Fault injection for the multiplexed wire layer: the protocol's failure
// modes are torn byte streams, dying peers, and readers that stop reading.
// None of them may take down the server, wedge unrelated connections, or
// leak the in-flight requests' goroutines.

import (
	"bytes"
	"context"
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/godbc"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
	"repro/internal/testutil"
)

// startServer launches a wire server over a fresh database.
func startServer(t *testing.T, profile wire.Profile) (*sqldb.DB, *wire.Server) {
	t.Helper()
	db := sqldb.NewDB()
	srv, err := wire.NewServer(db, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return db, srv
}

// TestTornFrameClientToServer: a client that dies mid-frame (partial gob
// bytes, then EOF) must cost the server nothing but that one connection —
// concurrent and subsequent clients are unaffected.
func TestTornFrameClientToServer(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, srv := startServer(t, wire.ProfileFast)

	// A healthy connection established before the fault.
	healthy, err := godbc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	// Encode a valid request, then send only half of it.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wire.Request{Kind: wire.ReqPing}); err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(buf.Bytes()[:buf.Len()/2]); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	// And one that sends outright garbage.
	raw2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw2.Write([]byte("\xff\xfe\xfd this is not gob \x00\x01")); err != nil {
		t.Fatal(err)
	}
	raw2.Close()

	// The server survives both: the pre-existing connection still works, and
	// new connections are accepted.
	if err := healthy.Ping(); err != nil {
		t.Fatalf("healthy connection after torn frames: %v", err)
	}
	fresh, err := godbc.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial after torn frames: %v", err)
	}
	defer fresh.Close()
	if err := fresh.Ping(); err != nil {
		t.Fatalf("fresh connection after torn frames: %v", err)
	}
}

// TestTornFrameServerToClient: garbage on the reply stream must surface as a
// transport error on every in-flight call and mark the connection broken —
// never hang, never mis-deliver.
func TestTornFrameServerToClient(t *testing.T) {
	testutil.CheckGoroutines(t)
	// A fake "server" that reads one request and answers with garbage.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		conn.Read(buf)
		conn.Write([]byte("\x07garbage that is not a gob Response"))
	}()

	m, err := godbc.DialMux(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Ping(); err == nil {
		t.Fatal("ping over a garbage reply stream succeeded")
	}
	// The connection is poisoned: later calls fail fast instead of hanging.
	errc := make(chan error, 1)
	go func() { errc <- m.Ping() }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("second ping on a poisoned connection succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second ping on a poisoned connection hung")
	}
}

// TestServerDeathMidMuxStream: the server dies with several multiplexed
// requests in flight. Every pending call fails with a transport error; none
// hang, nothing leaks.
func TestServerDeathMidMuxStream(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, srv := startServer(t, wire.ProfileOracleRemote) // slow: requests stay in flight
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}

	m, err := godbc.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Ping(); err != nil { // confirm mux mode before the kill
		t.Fatal(err)
	}

	const inflight = 8
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m.ExecQuery("SELECT id FROM t", nil)
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the requests reach the server
	srv.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight requests did not fail after server death")
	}
	// Whether a given request completed before the shutdown or died with it
	// is timing; what is guaranteed is that none hung and the connection now
	// reports a transport error.
	if err := m.Ping(); err == nil {
		t.Fatal("ping succeeded after server death")
	}
}

// TestSlowReaderBackpressure: a client that floods requests and never reads
// replies only backs up its own connection. A second client on the same
// server stays responsive — per-connection writes must not share a lock.
func TestSlowReaderBackpressure(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, srv := startServer(t, wire.ProfileFast)
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)", nil); err != nil {
		t.Fatal(err)
	}
	// Bulk rows so replies are big enough to fill kernel buffers eventually.
	for i := 0; i < 64; i++ {
		if _, err := db.Exec("INSERT INTO t (id, v) VALUES (?, ?)", &sqldb.Params{
			Positional: []sqldb.Value{sqldb.NewInt(int64(i)), sqldb.NewText("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// The slow reader: raw codec, writes mux-tagged requests, reads nothing.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	codec := wire.NewCodec(raw)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := codec.WriteRequest(&wire.Request{Kind: wire.ReqQueryCursor, SQL: "SELECT id, v FROM t", ID: i}); err != nil {
				return // write blocked until teardown closed the socket
			}
		}
	}()

	// Meanwhile a well-behaved client must see ordinary latency.
	c, err := godbc.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := c.ExecQueryContext(ctx, "SELECT id FROM t", nil)
		cancel()
		if err != nil {
			t.Fatalf("well-behaved client starved beside a slow reader: %v", err)
		}
	}
}

// TestMuxClientAgainstPreMuxServer: DisableMux makes the server behave like a
// pre-extension peer (echoes no IDs, serves serially). A MuxConn must detect
// that from the first reply and fall back to ordered pairing — including
// concurrent callers and abandoned requests.
func TestMuxClientAgainstPreMuxServer(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, srv := startServer(t, wire.ProfileFast)
	srv.DisableMux()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id) VALUES (?)", &sqldb.Params{Positional: []sqldb.Value{sqldb.NewInt(7)}}); err != nil {
		t.Fatal(err)
	}

	m, err := godbc.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Concurrent queries still work (serialized under the covers).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			set, err := m.ExecQuery("SELECT id FROM t", nil)
			if err != nil {
				t.Error(err)
				return
			}
			if len(set.Rows) != 1 || set.Rows[0][0].Int() != 7 {
				t.Errorf("rows: %v", set.Rows)
			}
		}()
	}
	wg.Wait()

	// An abandoned request must not desynchronize the ordered pairing: the
	// tombstone swallows its late reply and the next call gets its own.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.ExecQueryContext(ctx, "SELECT id FROM t", nil); err == nil {
		t.Fatal("canceled query succeeded")
	}
	set, err := m.ExecQuery("SELECT id FROM t", nil)
	if err != nil {
		t.Fatalf("query after an abandoned one on a serial peer: %v", err)
	}
	if len(set.Rows) != 1 || set.Rows[0][0].Int() != 7 {
		t.Fatalf("reply pairing desynchronized: %v", set.Rows)
	}
}

// TestPreMuxClientAgainstMuxServer: a plain Conn (never sends IDs) against
// the current server — the server must serve it serially and echo no IDs,
// exactly as before the extension (gob tolerance both ways).
func TestPreMuxClientAgainstMuxServer(t *testing.T) {
	testutil.CheckGoroutines(t)
	db, srv := startServer(t, wire.ProfileFast)
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)", nil); err != nil {
		t.Fatal(err)
	}

	conn, err := godbc.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO t (id) VALUES (?)", &sqldb.Params{Positional: []sqldb.Value{sqldb.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	set, err := conn.ExecQuery("SELECT id FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 1 {
		t.Fatalf("rows: %v", set.Rows)
	}
}
