package sqldb

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// mustQuery runs a SELECT and fails the test on error.
func mustQuery(t *testing.T, db *DB, q string, params *Params) *ResultSet {
	t.Helper()
	res, err := db.Exec(q, params)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	if res.Set == nil {
		t.Fatalf("query %q: no result set", q)
	}
	return res.Set
}

func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	stmts := []string{
		`CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT NOT NULL, dept INTEGER, salary REAL)`,
		`CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT)`,
		`INSERT INTO dept (id, name) VALUES (1, 'eng'), (2, 'ops'), (3, 'empty')`,
		`INSERT INTO emp (id, name, dept, salary) VALUES
			(1, 'ada', 1, 100.0),
			(2, 'bob', 1, 80.0),
			(3, 'cyd', 2, 90.0),
			(4, 'dee', 2, 90.0),
			(5, 'eve', NULL, NULL)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s, nil); err != nil {
			t.Fatalf("setup %q: %v", s, err)
		}
	}
	return db
}

func TestCreateTableDuplicate(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`CREATE TABLE emp (id INTEGER)`, nil); err == nil {
		t.Fatal("duplicate CREATE TABLE succeeded")
	}
}

func TestInsertTypeCoercion(t *testing.T) {
	db := testDB(t)
	// Integer into REAL column and float-with-integral-value into INTEGER.
	if _, err := db.Exec(`INSERT INTO emp (id, name, dept, salary) VALUES (6, 'fay', 1, 70)`, nil); err != nil {
		t.Fatalf("int into REAL: %v", err)
	}
	set := mustQuery(t, db, `SELECT salary FROM emp WHERE id = 6`, nil)
	if got := set.Rows[0][0]; !got.IsNumeric() || got.Float() != 70 {
		t.Fatalf("salary = %v, want 70", got)
	}
}

func TestInsertErrors(t *testing.T) {
	db := testDB(t)
	cases := []string{
		`INSERT INTO emp (id, name) VALUES (1, 'dup')`,          // duplicate PK
		`INSERT INTO emp (id, name) VALUES (9, NULL)`,           // NOT NULL
		`INSERT INTO emp (id, name) VALUES (9, 'x'), (9, 'y')`,  // dup within batch
		`INSERT INTO emp (id, name, bogus) VALUES (9, 'x', 1)`,  // unknown column
		`INSERT INTO nosuch (id) VALUES (1)`,                    // unknown table
		`INSERT INTO emp (id, name, dept) VALUES (9, 'x')`,      // arity
		`INSERT INTO emp (id, name) VALUES (9, 'x'), (10, 3.5)`, // type error
	}
	for _, q := range cases {
		if _, err := db.Exec(q, nil); err == nil {
			t.Errorf("%q: expected error", q)
		}
	}
}

func TestSelectWhere(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `SELECT name FROM emp WHERE salary > 85 ORDER BY name`, nil)
	var names []string
	for _, r := range set.Rows {
		names = append(names, r[0].Text())
	}
	if got := strings.Join(names, ","); got != "ada,cyd,dee" {
		t.Fatalf("names = %s, want ada,cyd,dee", got)
	}
}

func TestSelectNullComparisonExcluded(t *testing.T) {
	db := testDB(t)
	// eve has NULL salary: neither > nor <= matches under 3VL.
	a := mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE salary > 0`, nil)
	b := mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE salary <= 0`, nil)
	if a.Rows[0][0].Int()+b.Rows[0][0].Int() != 4 {
		t.Fatalf("3VL violated: %v + %v != 4", a.Rows[0][0], b.Rows[0][0])
	}
	c := mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE salary IS NULL`, nil)
	if c.Rows[0][0].Int() != 1 {
		t.Fatalf("IS NULL count = %v, want 1", c.Rows[0][0])
	}
}

func TestJoin(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `
		SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept = d.id
		ORDER BY e.name`, nil)
	if len(set.Rows) != 4 {
		t.Fatalf("join rows = %d, want 4 (NULL dept must not match)", len(set.Rows))
	}
	if set.Rows[0][0].Text() != "ada" || set.Rows[0][1].Text() != "eng" {
		t.Fatalf("row0 = %v", set.Rows[0])
	}
}

func TestJoinNestedLoopFallback(t *testing.T) {
	db := testDB(t)
	// Non-equi join exercises the nested-loop path.
	set := mustQuery(t, db, `
		SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept < d.id`, nil)
	// dept 1 matches d.id 2,3 (2 emps * 2) ; dept 2 matches 3 (2 emps * 1).
	if got := set.Rows[0][0].Int(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
}

func TestGroupBy(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `
		SELECT d.name, COUNT(*), AVG(e.salary), SUM(e.salary), MIN(e.salary), MAX(e.salary)
		FROM emp e JOIN dept d ON e.dept = d.id
		GROUP BY d.name ORDER BY d.name`, nil)
	if len(set.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(set.Rows))
	}
	eng := set.Rows[0]
	if eng[0].Text() != "eng" || eng[1].Int() != 2 || eng[2].Float() != 90 || eng[3].Float() != 180 {
		t.Fatalf("eng = %v", eng)
	}
	ops := set.Rows[1]
	if ops[0].Text() != "ops" || ops[4].Float() != 90 || ops[5].Float() != 90 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestHaving(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `
		SELECT dept, COUNT(*) AS n FROM emp WHERE dept IS NOT NULL
		GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY dept`, nil)
	if len(set.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(set.Rows))
	}
}

func TestAggregatesOverEmptyInput(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `SELECT COUNT(*), SUM(salary), MIN(salary), AVG(salary) FROM emp WHERE id > 100`, nil)
	r := set.Rows[0]
	if r[0].Int() != 0 {
		t.Fatalf("COUNT = %v, want 0", r[0])
	}
	for i := 1; i < 4; i++ {
		if !r[i].IsNull() {
			t.Fatalf("aggregate %d = %v, want NULL", i, r[i])
		}
	}
}

func TestCountIgnoresNulls(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `SELECT COUNT(salary), COUNT(*) FROM emp`, nil)
	if set.Rows[0][0].Int() != 4 || set.Rows[0][1].Int() != 5 {
		t.Fatalf("counts = %v", set.Rows[0])
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `SELECT name, salary FROM emp WHERE salary IS NOT NULL ORDER BY salary DESC, name LIMIT 2`, nil)
	if len(set.Rows) != 2 || set.Rows[0][0].Text() != "ada" || set.Rows[1][0].Text() != "cyd" {
		t.Fatalf("rows = %v", set.Rows)
	}
}

func TestOrderByAlias(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `SELECT name, salary * 2 AS double FROM emp WHERE salary IS NOT NULL ORDER BY double DESC LIMIT 1`, nil)
	if set.Rows[0][0].Text() != "ada" {
		t.Fatalf("row = %v", set.Rows[0])
	}
}

func TestOrderByNullsLast(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `SELECT name FROM emp ORDER BY salary ASC`, nil)
	if got := set.Rows[len(set.Rows)-1][0].Text(); got != "eve" {
		t.Fatalf("last = %s, want eve (NULLS LAST)", got)
	}
	set = mustQuery(t, db, `SELECT name FROM emp ORDER BY salary DESC`, nil)
	if got := set.Rows[len(set.Rows)-1][0].Text(); got != "eve" {
		t.Fatalf("last = %s, want eve (NULLS LAST)", got)
	}
}

func TestPositionalAndNamedParams(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `SELECT name FROM emp WHERE dept = ? AND salary >= ?`,
		&Params{Positional: []Value{NewInt(1), NewFloat(90)}})
	if len(set.Rows) != 1 || set.Rows[0][0].Text() != "ada" {
		t.Fatalf("rows = %v", set.Rows)
	}
	set = mustQuery(t, db, `SELECT name FROM emp WHERE dept = $d ORDER BY name`,
		&Params{Named: map[string]Value{"d": NewInt(2)}})
	if len(set.Rows) != 2 {
		t.Fatalf("rows = %v", set.Rows)
	}
	if _, err := db.Exec(`SELECT name FROM emp WHERE dept = $missing`, &Params{Named: map[string]Value{}}); err == nil {
		t.Fatal("missing named param: expected error")
	}
}

func TestScalarSubquery(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `
		SELECT name FROM emp
		WHERE salary = (SELECT MAX(salary) FROM emp)`, nil)
	if len(set.Rows) != 1 || set.Rows[0][0].Text() != "ada" {
		t.Fatalf("rows = %v", set.Rows)
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `
		SELECT d.name, (SELECT COUNT(*) FROM emp e WHERE e.dept = d.id) AS n
		FROM dept d ORDER BY d.name`, nil)
	want := map[string]int64{"empty": 0, "eng": 2, "ops": 2}
	for _, r := range set.Rows {
		if r[1].Int() != want[r[0].Text()] {
			t.Fatalf("%s -> %v, want %d", r[0].Text(), r[1], want[r[0].Text()])
		}
	}
}

func TestScalarSubqueryCardinality(t *testing.T) {
	db := testDB(t)
	// Zero rows -> NULL.
	set := mustQuery(t, db, `SELECT (SELECT salary FROM emp WHERE id = 999)`, nil)
	if !set.Rows[0][0].IsNull() {
		t.Fatalf("empty scalar subquery = %v, want NULL", set.Rows[0][0])
	}
	// More than one row -> error.
	if _, err := db.Exec(`SELECT (SELECT salary FROM emp WHERE dept = 1)`, nil); err == nil {
		t.Fatal("multi-row scalar subquery: expected error")
	}
}

func TestInListAndSubquery(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE dept IN (1, 2)`, nil)
	if set.Rows[0][0].Int() != 4 {
		t.Fatalf("IN list = %v", set.Rows[0][0])
	}
	set = mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE dept IN (SELECT id FROM dept WHERE name = 'eng')`, nil)
	if set.Rows[0][0].Int() != 2 {
		t.Fatalf("IN subquery = %v", set.Rows[0][0])
	}
	set = mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE dept NOT IN (1)`, nil)
	if set.Rows[0][0].Int() != 2 { // eve's NULL dept is neither in nor not-in
		t.Fatalf("NOT IN = %v", set.Rows[0][0])
	}
}

func TestExists(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `
		SELECT d.name FROM dept d
		WHERE EXISTS (SELECT 1 FROM emp e WHERE e.dept = d.id)
		ORDER BY d.name`, nil)
	if len(set.Rows) != 2 {
		t.Fatalf("rows = %v", set.Rows)
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec(`UPDATE emp SET salary = salary + 10 WHERE dept = 1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	set := mustQuery(t, db, `SELECT SUM(salary) FROM emp WHERE dept = 1`, nil)
	if set.Rows[0][0].Float() != 200 {
		t.Fatalf("sum = %v, want 200", set.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	res, err := db.Exec(`DELETE FROM emp WHERE dept = 2`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	set := mustQuery(t, db, `SELECT COUNT(*) FROM emp`, nil)
	if set.Rows[0][0].Int() != 3 {
		t.Fatalf("count = %v, want 3", set.Rows[0][0])
	}
	// The primary-key index must be consistent after the rebuild.
	set = mustQuery(t, db, `SELECT name FROM emp WHERE id = 5`, nil)
	if len(set.Rows) != 1 || set.Rows[0][0].Text() != "eve" {
		t.Fatalf("index lookup after delete = %v", set.Rows)
	}
}

func TestIndexLookupMatchesScan(t *testing.T) {
	db := testDB(t)
	db.MustExec(`CREATE INDEX idx_dept ON emp (dept)`, nil)
	a := mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE dept = 1`, nil)
	if a.Rows[0][0].Int() != 2 {
		t.Fatalf("indexed count = %v", a.Rows[0][0])
	}
}

func TestScalarFunctions(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		q    string
		want string
	}{
		{`SELECT ABS(-3)`, "3"},
		{`SELECT ABS(-3.5)`, "3.5"},
		{`SELECT SQRT(9.0)`, "3"},
		{`SELECT COALESCE(NULL, NULL, 7)`, "7"},
		{`SELECT NULLIF(3, 3)`, "NULL"},
		{`SELECT NULLIF(3, 4)`, "3"},
		{`SELECT LENGTH('abc')`, "3"},
		{`SELECT UPPER('abc')`, "'ABC'"},
		{`SELECT LOWER('ABC')`, "'abc'"},
		{`SELECT 'a' || 'b'`, "'ab'"},
		{`SELECT 7 % 3`, "1"},
		{`SELECT 1 + 2 * 3`, "7"},
		{`SELECT (1 + 2) * 3`, "9"},
		{`SELECT 10 / 4`, "2.5"},
		{`SELECT -(-5)`, "5"},
		{`SELECT NOT TRUE`, "FALSE"},
		{`SELECT TRUE AND NULL IS NULL`, "TRUE"},
	}
	for _, c := range cases {
		set := mustQuery(t, db, c.q, nil)
		if got := set.Rows[0][0].String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.q, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`SELECT 1 / 0`, nil); err == nil {
		t.Fatal("division by zero: expected error")
	}
	if _, err := db.Exec(`SELECT 1 % 0`, nil); err == nil {
		t.Fatal("modulo by zero: expected error")
	}
}

func TestParseErrors(t *testing.T) {
	db := testDB(t)
	cases := []string{
		`SELEC 1`,
		`SELECT FROM emp`,
		`SELECT * FROM`,
		`SELECT * FROM emp WHERE`,
		`INSERT INTO emp VALUES`,
		`CREATE TABLE t (x NOPETYPE)`,
		`SELECT 'unterminated`,
		`SELECT $`,
		`SELECT * FROM emp GROUP`,
		`UPDATE emp SET`,
	}
	for _, q := range cases {
		if _, err := db.Exec(q, nil); err == nil {
			t.Errorf("%q: expected parse error", q)
		}
	}
}

func TestUnknownColumnAndAmbiguity(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`SELECT bogus FROM emp`, nil); err == nil {
		t.Fatal("unknown column: expected error")
	}
	if _, err := db.Exec(`SELECT id FROM emp e JOIN dept d ON e.dept = d.id`, nil); err == nil {
		t.Fatal("ambiguous column: expected error")
	}
}

func TestTableLessSelect(t *testing.T) {
	db := NewDB()
	set := mustQuery(t, db, `SELECT 2 + 3 AS five`, nil)
	if set.Columns[0] != "five" || set.Rows[0][0].Int() != 5 {
		t.Fatalf("got %v %v", set.Columns, set.Rows)
	}
}

func TestStarExpansion(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db, `SELECT * FROM dept ORDER BY id`, nil)
	if len(set.Columns) != 2 || len(set.Rows) != 3 {
		t.Fatalf("star: %v %d rows", set.Columns, len(set.Rows))
	}
}

func TestDropTable(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`DROP TABLE dept`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT * FROM dept`, nil); err == nil {
		t.Fatal("select from dropped table: expected error")
	}
	if _, err := db.Exec(`DROP TABLE dept`, nil); err == nil {
		t.Fatal("double drop: expected error")
	}
}

func TestGroupByExpressionKeyUnifiesIntAndFloat(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (x REAL)`, nil)
	db.MustExec(`INSERT INTO t (x) VALUES (1.0), (1.0), (2.0)`, nil)
	set := mustQuery(t, db, `SELECT x, COUNT(*) FROM t GROUP BY x ORDER BY x`, nil)
	if len(set.Rows) != 2 || set.Rows[0][1].Int() != 2 {
		t.Fatalf("rows = %v", set.Rows)
	}
}

// TestQuickSumMatchesManual is a property test: for random datasets, SQL SUM
// and a manual Go summation agree, and indexed equality lookups agree with
// full scans.
func TestQuickSumMatchesManual(t *testing.T) {
	f := func(vals []int16, filter uint8) bool {
		db := NewDB()
		db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, k INTEGER)`, nil)
		var want int64
		k := int64(filter % 4)
		for i, v := range vals {
			key := int64(i % 4)
			db.MustExec(`INSERT INTO t (id, v, k) VALUES (?, ?, ?)`,
				&Params{Positional: []Value{NewInt(int64(i)), NewInt(int64(v)), NewInt(key)}})
			if key == k {
				want += int64(v)
			}
		}
		res, err := db.Exec(`SELECT COALESCE(SUM(v), 0) FROM t WHERE k = ?`, &Params{Positional: []Value{NewInt(k)}})
		if err != nil {
			t.Log(err)
			return false
		}
		if res.Set.Rows[0][0].Int() != want {
			return false
		}
		// Same with an index on the filter column.
		db.MustExec(`CREATE INDEX idx ON t (k)`, nil)
		res2, err := db.Exec(`SELECT COALESCE(SUM(v), 0) FROM t WHERE k = ?`, &Params{Positional: []Value{NewInt(k)}})
		if err != nil {
			return false
		}
		return res2.Set.Rows[0][0].Int() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOrderBySorted checks that ORDER BY output is sorted for random
// inputs.
func TestQuickOrderBySorted(t *testing.T) {
	f := func(vals []int8) bool {
		db := NewDB()
		db.MustExec(`CREATE TABLE t (v INTEGER)`, nil)
		for _, v := range vals {
			db.MustExec(`INSERT INTO t (v) VALUES (?)`, &Params{Positional: []Value{NewInt(int64(v))}})
		}
		res, err := db.Exec(`SELECT v FROM t ORDER BY v`, nil)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Set.Rows); i++ {
			if res.Set.Rows[i-1][0].Int() > res.Set.Rows[i][0].Int() {
				return false
			}
		}
		return len(res.Set.Rows) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValueKeyIntFloatUnification(t *testing.T) {
	if NewInt(3).Key() != NewFloat(3.0).Key() {
		t.Fatal("3 and 3.0 must share a grouping key")
	}
	if NewFloat(3.5).Key() == NewInt(3).Key() {
		t.Fatal("3.5 must not collide with 3")
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(NewInt(1), NewText("a")); err == nil {
		t.Fatal("comparing int and text must fail")
	}
	if _, err := Compare(NewBool(true), NewBool(false)); err != nil {
		t.Fatal("bool comparison should work")
	}
}

func ExampleDB_Exec() {
	db := NewDB()
	db.MustExec(`CREATE TABLE runs (id INTEGER PRIMARY KEY, nope INTEGER)`, nil)
	db.MustExec(`INSERT INTO runs (id, nope) VALUES (1, 2), (2, 16)`, nil)
	res, _ := db.Exec(`SELECT MIN(nope) FROM runs`, nil)
	fmt.Println(res.Set.Rows[0][0])
	// Output: 2
}
