package sqldb

import (
	"fmt"
	"testing"
)

// benchDB builds a 1e6-row table for the engine microbenchmarks. Built once
// and shared: the benchmarks only read.
func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := NewDB()
	db.SetResultCacheSize(0) // measure execution, not the result cache
	if _, err := db.Exec(`CREATE TABLE m (id INTEGER PRIMARY KEY, grp INTEGER, val REAL, tag TEXT)`, nil); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO m (id, grp, val, tag) VALUES (?, ?, ?, ?)`)
	if err != nil {
		b.Fatal(err)
	}
	defer ins.Close()
	tags := []string{"red", "green", "blue", "cyan"}
	const chunk = 4096
	bindings := make([]*Params, 0, chunk)
	for i := 0; i < rows; i++ {
		val := NewFloat(float64(i%1000) / 8)
		if i%97 == 0 {
			val = Null
		}
		bindings = append(bindings, &Params{Positional: []Value{
			NewInt(int64(i)), NewInt(int64(i % 64)), val, NewText(tags[i%4]),
		}})
		if len(bindings) == chunk || i == rows-1 {
			if _, err := ins.ExecuteBatch(bindings); err != nil {
				b.Fatal(err)
			}
			bindings = bindings[:0]
		}
	}
	return db
}

// benchEngines runs one prepared SELECT on both engines at b.N iterations
// each, as sub-benchmarks.
func benchEngines(b *testing.B, rows int, sql string) {
	db := benchDB(b, rows)
	ps, err := db.Prepare(sql)
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	for _, engine := range []string{EngineVector, EngineRow} {
		b.Run(engine, func(b *testing.B) {
			if err := db.SetEngine(engine); err != nil {
				b.Fatal(err)
			}
			// Warm lazy structures (row view, join indexes) outside the timer.
			if _, err := ps.Execute(nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ps.Execute(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineFilter(b *testing.B) {
	benchEngines(b, 1_000_000, `SELECT COUNT(*) FROM m WHERE val > 100 AND grp < 32`)
}

func BenchmarkEngineProject(b *testing.B) {
	benchEngines(b, 1_000_000, `SELECT id, val * 2 + 1 FROM m WHERE grp = 7 AND val > 110`)
}

func BenchmarkEngineAggregate(b *testing.B) {
	benchEngines(b, 1_000_000, `SELECT SUM(val), AVG(val), MIN(val), MAX(val), COUNT(val) FROM m`)
}

func BenchmarkEngineGroup(b *testing.B) {
	benchEngines(b, 1_000_000, `SELECT grp, COUNT(*), SUM(val) FROM m GROUP BY grp`)
}

func BenchmarkEngineJoin(b *testing.B) {
	db := benchDB(b, 250_000)
	if _, err := db.Exec(`CREATE TABLE g (id INTEGER PRIMARY KEY, name TEXT)`, nil); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO g (id, name) VALUES (%d, 'g%d')`, i, i), nil); err != nil {
			b.Fatal(err)
		}
	}
	ps, err := db.Prepare(`SELECT COUNT(*) FROM m JOIN g ON m.grp = g.id WHERE m.val > 60`)
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	for _, engine := range []string{EngineVector, EngineRow} {
		b.Run(engine, func(b *testing.B) {
			if err := db.SetEngine(engine); err != nil {
				b.Fatal(err)
			}
			if _, err := ps.Execute(nil); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ps.Execute(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSeek measures the indexed point-lookup shape the ASL
// property compiler emits: small candidate sets where batch setup overhead,
// not per-tuple interpretation, dominates.
func BenchmarkEngineSeek(b *testing.B) {
	db := benchDB(b, 1_000_000)
	ps, err := db.Prepare(`SELECT val FROM m WHERE id = ?`)
	if err != nil {
		b.Fatal(err)
	}
	defer ps.Close()
	params := &Params{Positional: []Value{NewInt(777_777)}}
	for _, engine := range []string{EngineVector, EngineRow} {
		b.Run(engine, func(b *testing.B) {
			if err := db.SetEngine(engine); err != nil {
				b.Fatal(err)
			}
			if _, err := ps.Execute(params); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ps.Execute(params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
