package sqldb

import (
	"context"
	"fmt"
)

// Batched execution: the array-binding analogue of classic database drivers.
// A statement that runs many times with only its parameters changing (the ASL
// property queries run once per property × context instance) can ship all its
// parameter sets at once; the engine then runs every binding against one
// immutable plan under a single statement-lock acquisition, instead of paying
// one acquisition — and, over the wire protocol, one client/server round
// trip — per binding.
//
// Partial failure does not abort a batch: each binding gets its own result or
// error, in binding order, so callers can map outcomes back to their inputs.
// Only statement-level failures (a closed handle, a plan that cannot be
// rebuilt after DDL, a non-DML statement) fail the batch as a whole.

// BatchResult is the outcome of one binding of a batched execution: exactly
// one of Res and Err is non-nil.
type BatchResult struct {
	Res *Result
	Err error
}

// ExecuteBatch runs the prepared statement once per binding, in order,
// holding the statement lock once for the whole batch (shared for SELECT,
// exclusive for writes). Per-binding failures are reported in the returned
// slice and do not stop later bindings. Batches are restricted to DML — DDL
// has no parameters to bind and moves the schema under the batch's own plan.
func (ps *PreparedStmt) ExecuteBatch(bindings []*Params) ([]BatchResult, error) {
	return ps.ExecuteBatchContext(context.Background(), bindings)
}

// ExecuteBatchContext is ExecuteBatch observing a context: cancellation is
// checked between bindings (the per-binding work itself is uninterruptible,
// so a cancel overshoots by at most one binding), and a canceled batch
// returns the context's error with no results — partial batches are never
// reported as success, so callers cannot mistake them for complete ones.
func (ps *PreparedStmt) ExecuteBatchContext(ctx context.Context, bindings []*Params) ([]BatchResult, error) {
	if ps.closed.Load() {
		return nil, fmt.Errorf("sqldb: prepared statement is closed")
	}
	out := make([]BatchResult, len(bindings))
	if len(bindings) == 0 {
		return out, nil
	}
	for attempt := 0; attempt < 8; attempt++ {
		plan := ps.plan.Load()
		if plan.version != ps.db.ddl.Load() {
			var err error
			if plan, err = ps.replan(); err != nil {
				return nil, err
			}
		}
		err := ps.db.execBatch(ctx, plan, bindings, out)
		if err == errPlanStale {
			continue
		}
		if err != nil {
			return nil, err
		}
		ps.db.batchExecs.Add(1)
		ps.db.batchBindings.Add(int64(len(bindings)))
		return out, nil
	}
	return nil, fmt.Errorf("sqldb: statement kept replanning during concurrent DDL")
}

// execBatch runs every binding against the plan under one lock acquisition.
// The plan version is re-validated under the lock, exactly as execStmt does
// per execution, so DDL racing the batch forces a replan rather than running
// against stale table storage; once the batch holds the lock no DDL can move
// the schema mid-batch.
func (db *DB) execBatch(ctx context.Context, plan *stmtPlan, bindings []*Params, out []BatchResult) error {
	switch st := plan.stmt.(type) {
	case *SelectStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		if err := db.planFresh(plan); err != nil {
			return err
		}
		// The batch is the natural cache unit: each binding is looked up in
		// the result cache individually, and only the misses execute. All
		// bindings share one data-version snapshot — the shared statement
		// lock is held for the whole batch, so no DML can move the versions
		// between the first lookup and the last store.
		for i, params := range bindings {
			if err := ctx.Err(); err != nil {
				return err
			}
			key, dataVer, cacheable := db.cacheKeyFor(plan, params)
			if cacheable {
				if set, hit := db.lookupResult(key, plan.version, dataVer); hit {
					out[i] = BatchResult{Res: &Result{Set: set, Cached: true}}
					continue
				}
			}
			ec := &execCtx{db: db, params: params, plan: plan}
			set, err := ec.execSelect(st, nil)
			if err != nil {
				out[i] = BatchResult{Err: err}
				continue
			}
			if cacheable {
				db.storeResult(key, plan.version, dataVer, set)
			}
			out[i] = BatchResult{Res: &Result{Set: set}}
		}
		return nil
	case *InsertStmt, *UpdateStmt, *DeleteStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		if err := db.planFresh(plan); err != nil {
			return err
		}
		for i, params := range bindings {
			if err := ctx.Err(); err != nil {
				return err
			}
			var res *Result
			var err error
			switch s := st.(type) {
			case *InsertStmt:
				res, err = db.execInsertLocked(s, params, plan)
			case *UpdateStmt:
				res, err = db.execUpdateLocked(s, params, plan)
			case *DeleteStmt:
				res, err = db.execDeleteLocked(s, params, plan)
			}
			out[i] = BatchResult{Res: res, Err: err}
			if err != nil {
				out[i].Res = nil
			}
		}
		return nil
	}
	return fmt.Errorf("sqldb: batch execution supports DML statements only, not %T", plan.stmt)
}
