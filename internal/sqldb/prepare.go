package sqldb

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The prepared-statement pipeline: parsing and planning are split from
// execution so that a statement which runs many times with only its
// parameters changing (the ASL property queries run once per property ×
// context instance) pays its front-end cost once.
//
// A plan captures everything about a statement that does not depend on
// parameter values or row data: the parsed AST, the resolved tables, the
// chosen access paths and join strategies, the free-column analysis of every
// subquery, and the canonical cache keys of invariant subqueries. Plans are
// immutable after construction, so one PreparedStmt may be executed from many
// goroutines concurrently; per-execution state (current rows, the invariant
// subquery result cache) lives in the execCtx created per Execute.
//
// Plans are invalidated by DDL: every CREATE TABLE, DROP TABLE, and CREATE
// INDEX bumps the database's schema version, and a PreparedStmt whose plan
// was built against an older version transparently replans on its next
// Execute. A handle whose table was dropped fails cleanly at that point.

// DefaultPlanCacheSize is the capacity of the per-DB plan cache that backs
// ad-hoc Exec calls.
const DefaultPlanCacheSize = 128

// stmtPlan is one immutable execution plan.
type stmtPlan struct {
	stmt    Stmt
	version int64 // schema version the plan was built against
	// free and keys memoize the free-column analysis and the canonical text
	// of subquery nodes, read-only after planning.
	free map[Expr]*freeInfo
	keys map[Expr]string
	// selects holds the per-SELECT plans, keyed by AST node (the statement
	// tree may nest SELECTs in subqueries and IN clauses).
	selects map[*SelectStmt]*selectPlan
	// canonKey is the interned identity of the statement's canonical text,
	// rendered as a result-cache key prefix; empty for statements the result
	// cache does not serve (DML). Interning keeps keys compact — property
	// queries run to kilobytes of SQL (see DB.canonicalID).
	canonKey string
	// dml is the compiled columnar UPDATE/DELETE pipeline, nil when the
	// statement is not DML or its shape is not vectorized (see vecdml.go).
	dml *vecDMLPlan
	// tables lists every table the plan references (FROM and JOIN clauses of
	// the statement and all its subqueries, deduplicated); the result cache
	// derives an entry's freshness from their data versions.
	tables []*Table
}

// addTable records a referenced table, deduplicating by identity.
func (p *stmtPlan) addTable(t *Table) {
	for _, have := range p.tables {
		if have == t {
			return
		}
	}
	p.tables = append(p.tables, t)
}

// accessPath is a candidate index lookup for the first table of a SELECT:
// a top-level "col = expr" conjunct whose right-hand side is independent of
// the scanned table.
type accessPath struct {
	col int
	val Expr
}

// joinPlan is the precomputed strategy for one JOIN clause.
type joinPlan struct {
	table   *Table
	binding string
	// eqCol/outer describe the hash-join condition "table.col = outer"; eqCol
	// is -1 when no equi-join conjunct was found and the join nests loops.
	eqCol int
	outer Expr
	// rest holds the conjuncts checked per candidate row: the non-equi-join
	// residue for a hash join, or every conjunct when eqCol is -1 and the
	// nested-loop fallback runs.
	rest []Expr
}

// selectPlan is the precomputed execution strategy of one SELECT node: the
// logical plan (resolved tables, access paths, join strategies, shape) plus,
// when the node's shape is covered, the compiled physical operator pipeline
// of the vectorized engine.
type selectPlan struct {
	from        *Table // nil for table-less SELECT
	fromBinding string
	access      []accessPath
	joins       []joinPlan
	grouped     bool
	aliases     map[string]int // select alias -> output column (read-only)
	// vec is the compiled vectorized form, nil when the node falls back to
	// the row interpreter (see the criteria in vec.go). Compiled once per
	// plan, immutable, shared across concurrent executions. vecReason names
	// the refused shape when vec is nil (the fb* constants in vec.go).
	vec       *vecSelectPlan
	vecReason string
}

// PreparedStmt is a reusable handle for one statement. It is safe for
// concurrent use; executions bind fresh parameters each call.
type PreparedStmt struct {
	db  *DB
	sql string

	mu      sync.Mutex // serializes replanning
	plan    atomic.Pointer[stmtPlan]
	closed  atomic.Bool
	counted bool // whether this handle is counted in DB.Stats
}

// Prepare parses and plans a statement for repeated execution. Unlike
// ad-hoc Exec, preparing validates every referenced table eagerly.
func (db *DB) Prepare(sql string) (*PreparedStmt, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	plan, err := db.buildPlan(stmt)
	if err != nil {
		return nil, err
	}
	ps := &PreparedStmt{db: db, sql: sql, counted: true}
	ps.plan.Store(plan)
	db.preparedLive.Add(1)
	return ps, nil
}

// SQL returns the statement text the handle was prepared from.
func (ps *PreparedStmt) SQL() string { return ps.sql }

// Close releases the handle. Closing is idempotent; executing a closed
// handle fails.
func (ps *PreparedStmt) Close() error {
	if ps.closed.Swap(true) {
		return nil
	}
	if ps.counted {
		ps.db.preparedLive.Add(-1)
	}
	return nil
}

// Execute runs the prepared statement with fresh parameters. If the schema
// changed since the plan was built, the statement is replanned first; a
// statement whose table no longer exists fails cleanly. The version is
// re-validated under the statement lock (see execStmt), so a DDL statement
// racing between the check and the lock acquisition forces a replan rather
// than silently executing against stale table storage.
func (ps *PreparedStmt) Execute(params *Params) (*Result, error) {
	if ps.closed.Load() {
		return nil, fmt.Errorf("sqldb: prepared statement is closed")
	}
	for attempt := 0; attempt < 8; attempt++ {
		plan := ps.plan.Load()
		if plan.version != ps.db.ddl.Load() {
			var err error
			if plan, err = ps.replan(); err != nil {
				return nil, err
			}
		}
		res, err := ps.db.execStmt(plan.stmt, params, plan)
		if err == errPlanStale {
			continue
		}
		return res, err
	}
	return nil, fmt.Errorf("sqldb: statement kept replanning during concurrent DDL")
}

// errPlanStale signals that the schema changed between planning and lock
// acquisition; Execute replans and retries.
var errPlanStale = fmt.Errorf("sqldb: plan is stale")

// planFresh verifies, with the statement lock held (DDL holds it
// exclusively, so the version cannot move under us), that the plan still
// matches the schema.
func (db *DB) planFresh(plan *stmtPlan) error {
	if plan != nil && plan.version != db.ddl.Load() {
		return errPlanStale
	}
	return nil
}

// replan rebuilds the plan after a schema change. The parsed AST is reused;
// only table resolution and the derived strategies are redone.
func (ps *PreparedStmt) replan() (*stmtPlan, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	plan := ps.plan.Load()
	if plan.version == ps.db.ddl.Load() {
		return plan, nil // another goroutine replanned first
	}
	fresh, err := ps.db.buildPlan(plan.stmt)
	if err != nil {
		return nil, err
	}
	ps.db.replans.Add(1)
	ps.plan.Store(fresh)
	return fresh, nil
}

// buildPlan computes the immutable plan of a parsed statement against the
// current schema.
func (db *DB) buildPlan(stmt Stmt) (*stmtPlan, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p := &stmtPlan{
		stmt:    stmt,
		version: db.ddl.Load(),
		free:    make(map[Expr]*freeInfo),
		keys:    make(map[Expr]string),
		selects: make(map[*SelectStmt]*selectPlan),
	}
	switch st := stmt.(type) {
	case *SelectStmt:
		if err := p.planSelect(db, st); err != nil {
			return nil, err
		}
		p.canonKey = strconv.FormatInt(db.canonicalID(FormatSelect(st)), 10) + "\x1f"
	case *InsertStmt:
		if db.tables[strings.ToLower(st.Table)] == nil {
			return nil, fmt.Errorf("sqldb: no table %s", st.Table)
		}
		for _, row := range st.Rows {
			for _, e := range row {
				if err := p.planExpr(db, e); err != nil {
					return nil, err
				}
			}
		}
	case *UpdateStmt:
		if db.tables[strings.ToLower(st.Table)] == nil {
			return nil, fmt.Errorf("sqldb: no table %s", st.Table)
		}
		for _, set := range st.Sets {
			if err := p.planExpr(db, set.Value); err != nil {
				return nil, err
			}
		}
		if err := p.planExpr(db, st.Where); err != nil {
			return nil, err
		}
	case *DeleteStmt:
		if db.tables[strings.ToLower(st.Table)] == nil {
			return nil, fmt.Errorf("sqldb: no table %s", st.Table)
		}
		if err := p.planExpr(db, st.Where); err != nil {
			return nil, err
		}
	case *CreateTableStmt, *DropTableStmt, *CreateIndexStmt:
		// DDL has nothing to precompute; Execute runs the dynamic path.
	}
	// Second pass: compile the physical operator pipeline of every SELECT
	// node the vectorized engine covers, and the columnar DML pipeline of
	// UPDATE/DELETE statements. This runs after the logical pass so the
	// free-column analyses of all subqueries are available.
	for st, sp := range p.selects {
		sp.vec, sp.vecReason = compileVecSelect(p, st, sp)
	}
	switch st := stmt.(type) {
	case *UpdateStmt:
		p.dml = compileVecUpdate(p, st, db.tables[strings.ToLower(st.Table)])
	case *DeleteStmt:
		p.dml = compileVecDelete(p, st, db.tables[strings.ToLower(st.Table)])
	}
	return p, nil
}

// planSelect builds the strategy of one SELECT node and recurses into its
// nested subqueries. Called with db.mu read-held.
func (p *stmtPlan) planSelect(db *DB, st *SelectStmt) error {
	if _, done := p.selects[st]; done {
		return nil
	}
	sp := &selectPlan{}
	if st.From != nil {
		t := db.tables[strings.ToLower(st.From.Table)]
		if t == nil {
			return fmt.Errorf("sqldb: no table %s", st.From.Table)
		}
		sp.from = t
		sp.fromBinding = strings.ToLower(st.From.Binding())
		p.addTable(t)
		// Access paths: index-lookup candidates among the WHERE conjuncts.
		// Whether the column is actually indexed is checked at execution,
		// so plans stay valid when the join planner builds indexes lazily.
		bt := &boundTable{binding: sp.fromBinding, table: t}
		if st.Where != nil {
			for _, conj := range conjuncts(st.Where) {
				if bin, ok := conj.(*EBinary); ok && bin.Op == OpEq {
					if col, val := matchColConst(bin, bt); col >= 0 {
						sp.access = append(sp.access, accessPath{col: col, val: val})
					}
				}
			}
		}
		for _, j := range st.Joins {
			jt := db.tables[strings.ToLower(j.Table.Table)]
			if jt == nil {
				return fmt.Errorf("sqldb: no table %s", j.Table.Table)
			}
			jp := joinPlan{table: jt, binding: strings.ToLower(j.Table.Binding())}
			p.addTable(jt)
			jbt := &boundTable{binding: jp.binding, table: jt}
			jp.eqCol, jp.outer, jp.rest = joinStrategy(j.On, jbt)
			sp.joins = append(sp.joins, jp)
		}
	}
	var tables []*Table
	if sp.from != nil {
		tables = append(tables, sp.from)
		for _, jp := range sp.joins {
			tables = append(tables, jp.table)
		}
	}
	sp.grouped, sp.aliases = selectShape(st, tables)
	p.selects[st] = sp

	for _, item := range st.Items {
		if !item.Star {
			if err := p.planExpr(db, item.Expr); err != nil {
				return err
			}
		}
	}
	for _, j := range st.Joins {
		if err := p.planExpr(db, j.On); err != nil {
			return err
		}
	}
	for _, e := range []Expr{st.Where, st.Having, st.Limit} {
		if err := p.planExpr(db, e); err != nil {
			return err
		}
	}
	for _, g := range st.GroupBy {
		if err := p.planExpr(db, g); err != nil {
			return err
		}
	}
	for _, o := range st.OrderBy {
		if err := p.planExpr(db, o.Expr); err != nil {
			return err
		}
	}
	return nil
}

// planExpr walks an expression, planning nested SELECTs and precomputing the
// free-column analysis and cache key of every subquery node.
func (p *stmtPlan) planExpr(db *DB, e Expr) error {
	switch x := e.(type) {
	case nil, *ELit, *EParam, *EColumn:
	case *EBinary:
		if err := p.planExpr(db, x.L); err != nil {
			return err
		}
		return p.planExpr(db, x.R)
	case *EUnary:
		return p.planExpr(db, x.X)
	case *ECall:
		for _, a := range x.Args {
			if err := p.planExpr(db, a); err != nil {
				return err
			}
		}
	case *EIsNull:
		return p.planExpr(db, x.X)
	case *ESubquery:
		p.analyzeSub(x)
		return p.planSelect(db, x.Select)
	case *EExists:
		p.analyzeSub(x)
		return p.planSelect(db, x.Select)
	case *EIn:
		if err := p.planExpr(db, x.X); err != nil {
			return err
		}
		for _, a := range x.List {
			if err := p.planExpr(db, a); err != nil {
				return err
			}
		}
		if x.Sub != nil {
			return p.planSelect(db, x.Sub)
		}
	}
	return nil
}

// analyzeSub precomputes what the executor would otherwise derive per
// execution: the free-column summary (which decides invariant-subquery
// caching) and the canonical text used as the cache key.
func (p *stmtPlan) analyzeSub(e Expr) {
	if _, done := p.free[e]; done {
		return
	}
	fi := &freeInfo{}
	collectFree(e, nil, fi, make(map[string]bool))
	p.free[e] = fi
	p.keys[e] = FormatExpr(e)
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

// planCacheEntry is one LRU slot.
type planCacheEntry struct {
	sql string
	ps  *PreparedStmt
}

// cachedStmt returns a shared prepared statement for the SQL text, preparing
// and caching it on a miss. Returns (nil, stmt, nil) when the statement
// parsed but cannot be planned (a table referenced only by a never-evaluated
// subquery may not exist; the caller runs the returned AST on the dynamic
// path, preserving lazy semantics — such statements are not counted as
// cache misses). Returns (nil, nil, nil) when caching is disabled — checked
// on an atomic flag first, so the disabled path (the text-protocol baseline
// configuration) does not serialize concurrent Execs on planMu.
func (db *DB) cachedStmt(sql string) (*PreparedStmt, Stmt, error) {
	if !db.planOn.Load() {
		return nil, nil, nil
	}
	db.planMu.Lock()
	if db.planCap <= 0 {
		db.planMu.Unlock()
		return nil, nil, nil
	}
	if el, ok := db.planIdx[sql]; ok {
		db.planLRU.MoveToFront(el)
		ps := el.Value.(*planCacheEntry).ps
		db.planHits.Add(1)
		db.planMu.Unlock()
		return ps, nil, nil
	}
	db.planMu.Unlock()

	// Parse and plan outside the cache lock; concurrent misses on the same
	// text may both prepare, and the first insert wins the slot (later ones
	// adopt it and discard their own work).
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, nil, err
	}
	plan, err := db.buildPlan(stmt)
	if err != nil {
		return nil, stmt, nil
	}
	ps := &PreparedStmt{db: db, sql: sql}
	ps.plan.Store(plan)
	db.planMisses.Add(1)
	db.planMu.Lock()
	defer db.planMu.Unlock()
	if db.planCap <= 0 {
		return ps, nil, nil
	}
	if el, ok := db.planIdx[sql]; ok {
		return el.Value.(*planCacheEntry).ps, nil, nil
	}
	if plan.version != db.ddl.Load() {
		// DDL (and clearPlanCache) ran while we were planning: don't insert
		// the stale plan, or its resolved tables could pin dropped storage
		// in the cache indefinitely. The statement itself still executes
		// (Execute replans).
		return ps, nil, nil
	}
	db.planIdx[sql] = db.planLRU.PushFront(&planCacheEntry{sql: sql, ps: ps})
	for db.planLRU.Len() > db.planCap {
		last := db.planLRU.Back()
		entry := last.Value.(*planCacheEntry)
		db.planLRU.Remove(last)
		delete(db.planIdx, entry.sql)
		// The evicted statement is NOT closed: a concurrent Exec may have
		// fetched it just before the eviction and still be executing it.
		// Cache-internal statements are uncounted, so dropping the
		// reference is the whole cleanup.
		db.planEvicts.Add(1)
	}
	return ps, nil, nil
}

// SetPlanCacheSize bounds the ad-hoc plan cache; n <= 0 disables caching and
// clears it (every Exec then parses and plans from scratch, the behaviour
// the text-protocol benchmarks compare against).
func (db *DB) SetPlanCacheSize(n int) {
	db.planMu.Lock()
	defer db.planMu.Unlock()
	db.planCap = n
	db.planOn.Store(n > 0)
	for db.planLRU.Len() > max(db.planCap, 0) {
		last := db.planLRU.Back()
		entry := last.Value.(*planCacheEntry)
		db.planLRU.Remove(last)
		delete(db.planIdx, entry.sql)
		db.planEvicts.Add(1)
	}
}

// clearPlanCache drops every cached plan. Called on DDL: stale plans would
// replan lazily anyway, but their resolved *Table pointers would otherwise
// pin a dropped table's row storage until eviction. DDL is rare, replanning
// is cheap, and reclaiming the storage matters more than the warm cache.
func (db *DB) clearPlanCache() {
	db.planMu.Lock()
	defer db.planMu.Unlock()
	db.planLRU.Init()
	clear(db.planIdx)
}

// Stats is a snapshot of the prepared-statement machinery.
type Stats struct {
	// PlanCacheHits / Misses / Evictions count ad-hoc Exec traffic through
	// the LRU plan cache; PlanCacheEntries is the current cache population.
	PlanCacheHits      int64
	PlanCacheMisses    int64
	PlanCacheEvictions int64
	PlanCacheEntries   int
	// PreparedLive counts Prepare handles not yet closed.
	PreparedLive int64
	// Replans counts plans rebuilt after DDL invalidated them.
	Replans int64
	// BatchExecs counts ExecuteBatch calls; BatchBindings the parameter sets
	// they carried (bindings/execs is the achieved amortization factor).
	BatchExecs    int64
	BatchBindings int64
	// ResultCacheHits / Misses count SELECT executions answered from (or
	// stored into) the result cache; ResultCacheInvalidations counts entries
	// found stale at lookup because a referenced table's data version moved
	// (every invalidation is also counted as a miss); ResultCacheEvictions
	// counts LRU capacity evictions. ResultCacheEntries is the current cache
	// population (see resultcache.go).
	ResultCacheHits          int64
	ResultCacheMisses        int64
	ResultCacheInvalidations int64
	ResultCacheEvictions     int64
	ResultCacheEntries       int
	// Engine is the selected SELECT execution engine ("vector" or "row").
	// VecSelects counts planned SELECT nodes executed on the vectorized
	// operators; VecFallbacks counts planned SELECT nodes that ran on the row
	// interpreter because their shape is not vectorized, while the vectorized
	// engine was selected (see vec.go). VecFallbackReasons breaks the
	// fallback count down by refused shape.
	Engine             string
	VecSelects         int64
	VecFallbacks       int64
	VecFallbackReasons FallbackReasons
}

// FallbackReasons is the per-shape breakdown of Stats.VecFallbacks (the fb*
// refusal reasons in vec.go).
type FallbackReasons struct {
	JoinShape int64 // equi-join outer key reads the joined table
	Star      int64 // grouped SELECT *
	OrderExpr int64 // ORDER BY expression key outside the compiled forms
	Subquery  int64 // correlated subquery outside the mirrored scopes
	Other     int64
}

// Stats returns current prepared-statement and plan-cache counters.
func (db *DB) Stats() Stats {
	db.planMu.Lock()
	entries := 0
	if db.planLRU != nil {
		entries = db.planLRU.Len()
	}
	db.planMu.Unlock()
	db.resMu.Lock()
	resEntries := 0
	if db.resLRU != nil {
		resEntries = db.resLRU.Len()
	}
	db.resMu.Unlock()
	return Stats{
		PlanCacheHits:      db.planHits.Load(),
		PlanCacheMisses:    db.planMisses.Load(),
		PlanCacheEvictions: db.planEvicts.Load(),
		PlanCacheEntries:   entries,
		PreparedLive:       db.preparedLive.Load(),
		Replans:            db.replans.Load(),
		BatchExecs:         db.batchExecs.Load(),
		BatchBindings:      db.batchBindings.Load(),

		ResultCacheHits:          db.resHits.Load(),
		ResultCacheMisses:        db.resMisses.Load(),
		ResultCacheInvalidations: db.resInvalid.Load(),
		ResultCacheEvictions:     db.resEvicts.Load(),
		ResultCacheEntries:       resEntries,

		Engine:       db.Engine(),
		VecSelects:   db.vecSelects.Load(),
		VecFallbacks: db.vecFallbacks.Load(),
		VecFallbackReasons: FallbackReasons{
			JoinShape: db.vecFbJoin.Load(),
			Star:      db.vecFbStar.Load(),
			OrderExpr: db.vecFbOrder.Load(),
			Subquery:  db.vecFbSub.Load(),
			Other:     db.vecFbOther.Load(),
		},
	}
}

// initPlanCache sets up the cache containers; called from NewDB.
func (db *DB) initPlanCache() {
	db.planCap = DefaultPlanCacheSize
	db.planOn.Store(true)
	db.planLRU = list.New()
	db.planIdx = make(map[string]*list.Element)
}

// planFields groups the DB's prepared-statement state; embedded in DB.
type planFields struct {
	ddl atomic.Int64 // schema version, bumped by DDL

	planMu  sync.Mutex
	planCap int
	planLRU *list.List
	planIdx map[string]*list.Element
	// planOn mirrors planCap > 0 for a lock-free disabled-path check.
	planOn atomic.Bool

	planHits      atomic.Int64
	planMisses    atomic.Int64
	planEvicts    atomic.Int64
	preparedLive  atomic.Int64
	replans       atomic.Int64
	batchExecs    atomic.Int64
	batchBindings atomic.Int64
}
