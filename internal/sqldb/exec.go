package sqldb

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Params carries the actual parameters of a statement: positional values for
// "?" markers and named values for "$name" markers.
type Params struct {
	Positional []Value
	Named      map[string]Value
}

// ResultSet is the outcome of a SELECT.
type ResultSet struct {
	Columns []string
	Rows    []Row
}

// Result is the outcome of executing any statement.
type Result struct {
	// Set is non-nil for SELECT statements.
	Set *ResultSet
	// Affected counts inserted, updated, or deleted rows.
	Affected int
	// Cached reports that Set was served from the result cache instead of
	// being executed (see resultcache.go). Cached sets are shared; treat
	// them as read-only.
	Cached bool
}

// Exec executes one SQL statement. Statement plans are cached by query text
// (see prepare.go), so repeated ad-hoc executions of the same SQL skip the
// parse and plan phases; with the cache disabled every call parses from
// scratch. A statement that cannot be planned (planning validates every
// referenced table eagerly, which explicit Prepare is meant to surface) is
// executed on the dynamic path instead, preserving lazy-evaluation
// semantics for ad-hoc SQL — a subquery over a missing table only errors if
// it is actually evaluated.
func (db *DB) Exec(query string, params *Params) (*Result, error) {
	ps, stmt, err := db.cachedStmt(query)
	if err != nil {
		return nil, err
	}
	if ps != nil {
		return ps.Execute(params)
	}
	if stmt == nil { // caching disabled
		if stmt, err = ParseSQL(query); err != nil {
			return nil, err
		}
	}
	return db.ExecStmt(stmt, params)
}

// MustExec executes a statement and panics on error; intended for schema
// setup in tests and loaders where failure is a programming error.
func (db *DB) MustExec(query string, params *Params) *Result {
	res, err := db.Exec(query, params)
	if err != nil {
		panic(err)
	}
	return res
}

// ExecStmt executes a parsed statement without a precomputed plan.
func (db *DB) ExecStmt(stmt Stmt, params *Params) (*Result, error) {
	return db.execStmt(stmt, params, nil)
}

// execStmt executes a statement, consulting the plan (when non-nil) for
// precomputed table resolutions and strategies.
func (db *DB) execStmt(stmt Stmt, params *Params, plan *stmtPlan) (*Result, error) {
	switch st := stmt.(type) {
	case *CreateTableStmt:
		if err := db.createTable(st.Name, st.Cols); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *DropTableStmt:
		if err := db.dropTable(st.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndexStmt:
		t := db.Table(st.Table)
		if t == nil {
			return nil, fmt.Errorf("sqldb: no table %s", st.Table)
		}
		col := t.ColumnIndex(st.Column)
		if col < 0 {
			return nil, fmt.Errorf("sqldb: table %s has no column %s", st.Table, st.Column)
		}
		db.mu.Lock()
		t.createIndex(col)
		db.ddl.Add(1)
		db.mu.Unlock()
		db.clearPlanCache()
		db.clearResultCache()
		return &Result{}, nil
	case *InsertStmt:
		return db.execInsert(st, params, plan)
	case *UpdateStmt:
		return db.execUpdate(st, params, plan)
	case *DeleteStmt:
		return db.execDelete(st, params, plan)
	case *SelectStmt:
		ec := &execCtx{db: db, params: params, plan: plan}
		db.mu.RLock()
		defer db.mu.RUnlock()
		if err := db.planFresh(plan); err != nil {
			return nil, err
		}
		// The result cache: the data-version stamps are read under the same
		// shared lock the execution runs under, so a stored result is never
		// stamped newer than the rows it was computed from.
		key, dataVer, cacheable := db.cacheKeyFor(plan, params)
		if cacheable {
			if set, hit := db.lookupResult(key, plan.version, dataVer); hit {
				return &Result{Set: set, Cached: true}, nil
			}
		}
		set, err := ec.execSelect(st, nil)
		if err != nil {
			return nil, err
		}
		if cacheable {
			db.storeResult(key, plan.version, dataVer, set)
		}
		return &Result{Set: set}, nil
	}
	return nil, fmt.Errorf("sqldb: unhandled statement %T", stmt)
}

func (db *DB) execInsert(st *InsertStmt, params *Params, plan *stmtPlan) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.planFresh(plan); err != nil {
		return nil, err
	}
	return db.execInsertLocked(st, params, plan)
}

// execInsertLocked is the INSERT core; db.mu must be held exclusively.
func (db *DB) execInsertLocked(st *InsertStmt, params *Params, plan *stmtPlan) (*Result, error) {
	t := db.tables[strings.ToLower(st.Table)]
	if t == nil {
		return nil, fmt.Errorf("sqldb: no table %s", st.Table)
	}
	// Column mapping: listed columns or all columns in order.
	var colPos []int
	if len(st.Cols) > 0 {
		colPos = make([]int, len(st.Cols))
		for i, c := range st.Cols {
			pos := t.ColumnIndex(c)
			if pos < 0 {
				return nil, fmt.Errorf("sqldb: table %s has no column %s", st.Table, c)
			}
			colPos[i] = pos
		}
	} else {
		colPos = make([]int, len(t.Columns))
		for i := range t.Columns {
			colPos[i] = i
		}
	}
	ec := &execCtx{db: db, params: params, plan: plan}
	n := 0
	// A multi-row INSERT that fails midway leaves its earlier rows inserted,
	// so the data version must move whenever anything landed — error or not.
	defer func() {
		if n > 0 {
			db.bumpData(t)
		}
	}()
	for _, exprs := range st.Rows {
		if len(exprs) != len(colPos) {
			return nil, fmt.Errorf("sqldb: INSERT has %d values for %d columns", len(exprs), len(colPos))
		}
		row := make(Row, len(t.Columns))
		for i, e := range exprs {
			v, err := ec.eval(e, nil)
			if err != nil {
				return nil, err
			}
			row[colPos[i]] = v
		}
		if err := t.insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

func (db *DB) execUpdate(st *UpdateStmt, params *Params, plan *stmtPlan) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.planFresh(plan); err != nil {
		return nil, err
	}
	return db.execUpdateLocked(st, params, plan)
}

// execUpdateLocked is the UPDATE core; db.mu must be held exclusively.
func (db *DB) execUpdateLocked(st *UpdateStmt, params *Params, plan *stmtPlan) (*Result, error) {
	t := db.tables[strings.ToLower(st.Table)]
	if t == nil {
		return nil, fmt.Errorf("sqldb: no table %s", st.Table)
	}
	// Columnar path: a compiled DML plan evaluates WHERE/SET batch-at-a-time
	// over the column vectors, skipping the rowView rebuild (vecdml.go).
	if plan != nil && plan.dml != nil && plan.dml.table == t && db.vecOn.Load() {
		return db.vecExecUpdateLocked(params, plan, t)
	}
	ec := &execCtx{db: db, params: params, plan: plan}
	// Phase 1 (read): evaluate WHERE and the SET expressions against the
	// pre-update state, without holding the table write lock, so that
	// subqueries over the updated table itself can take read locks freely.
	fr := &frame{tables: []*boundTable{{binding: strings.ToLower(st.Table), table: t}}}
	rows := t.scan()
	type patch struct {
		pos    int
		values Row // one value per SET, in declaration order
	}
	cols := make([]int, len(st.Sets))
	for i, set := range st.Sets {
		cols[i] = t.ColumnIndex(set.Column)
		if cols[i] < 0 {
			return nil, fmt.Errorf("sqldb: table %s has no column %s", st.Table, set.Column)
		}
	}
	var patches []patch
	for i := range rows {
		fr.tables[0].row = rows[i]
		if st.Where != nil {
			ok, err := ec.evalBool(st.Where, fr)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		p := patch{pos: i, values: make(Row, len(st.Sets))}
		for j, set := range st.Sets {
			v, err := ec.eval(set.Value, fr)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, t.Columns[cols[j]].Type)
			if err != nil {
				return nil, err
			}
			p.values[j] = cv
		}
		patches = append(patches, p)
	}
	// Phase 2 (write): apply the patches to the column vectors under the
	// table write lock, dropping the cached row view (it holds pre-update
	// values; the next scan rebuilds it).
	if len(patches) > 0 {
		t.mu.Lock()
		for _, p := range patches {
			for j, cv := range p.values {
				t.cols[cols[j]].setVal(p.pos, cv)
			}
		}
		t.rowView = nil
		t.mu.Unlock()
		t.rebuildIndexes()
		db.bumpData(t)
	}
	return &Result{Affected: len(patches)}, nil
}

func (db *DB) execDelete(st *DeleteStmt, params *Params, plan *stmtPlan) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.planFresh(plan); err != nil {
		return nil, err
	}
	return db.execDeleteLocked(st, params, plan)
}

// execDeleteLocked is the DELETE core; db.mu must be held exclusively.
func (db *DB) execDeleteLocked(st *DeleteStmt, params *Params, plan *stmtPlan) (*Result, error) {
	t := db.tables[strings.ToLower(st.Table)]
	if t == nil {
		return nil, fmt.Errorf("sqldb: no table %s", st.Table)
	}
	// Columnar path: see vecdml.go.
	if plan != nil && plan.dml != nil && plan.dml.table == t && db.vecOn.Load() {
		return db.vecExecDeleteLocked(params, plan, t)
	}
	ec := &execCtx{db: db, params: params, plan: plan}
	// Phase 1 (read): decide which rows survive without the write lock held.
	fr := &frame{tables: []*boundTable{{binding: strings.ToLower(st.Table), table: t}}}
	rows := t.scan()
	keep := make([]bool, len(rows))
	n := 0
	for i := range rows {
		fr.tables[0].row = rows[i]
		del := true
		if st.Where != nil {
			ok, err := ec.evalBool(st.Where, fr)
			if err != nil {
				return nil, err
			}
			del = ok
		}
		if del {
			n++
		} else {
			keep[i] = true
		}
	}
	// Phase 2 (write): compact the column vectors under the table write
	// lock, dropping the cached row view.
	if n > 0 {
		t.mu.Lock()
		for _, c := range t.cols {
			c.compact(keep)
		}
		t.nrows -= n
		t.rowView = nil
		t.mu.Unlock()
		t.rebuildIndexes()
		db.bumpData(t)
	}
	return &Result{Affected: n}, nil
}

// ---------------------------------------------------------------------------
// SELECT execution
// ---------------------------------------------------------------------------

// boundTable is one table bound into the current query scope.
type boundTable struct {
	binding string // lower-cased alias or table name
	table   *Table
	row     Row // current row while iterating
}

// frame is a lexical scope of bound tables; parent scopes make correlated
// subqueries work.
type frame struct {
	parent *frame
	tables []*boundTable
}

// resolve finds the bound table and column position for a column reference.
func (fr *frame) resolve(ref *EColumn) (*boundTable, int, error) {
	lqual, lname := ref.keys()
	for scope := fr; scope != nil; scope = scope.parent {
		var foundBT *boundTable
		foundCol := -1
		for _, bt := range scope.tables {
			if lqual != "" && bt.binding != lqual {
				continue
			}
			col, ok := bt.table.colIdx[lname]
			if !ok {
				continue
			}
			if foundBT != nil {
				return nil, 0, fmt.Errorf("sqldb: ambiguous column %s", ref.Name)
			}
			foundBT, foundCol = bt, col
		}
		if foundBT != nil {
			return foundBT, foundCol, nil
		}
	}
	if ref.Qual != "" {
		return nil, 0, fmt.Errorf("sqldb: unknown column %s.%s", ref.Qual, ref.Name)
	}
	return nil, 0, fmt.Errorf("sqldb: unknown column %s", ref.Name)
}

// tuple is one joined row: one Row per bound table.
type tuple []Row

// execCtx carries the execution state of one statement.
type execCtx struct {
	db     *DB
	params *Params
	// plan, when non-nil, is the immutable prepared plan of the statement:
	// resolved tables, access paths, join strategies, and the memoized
	// subquery analyses. Shared across concurrent executions, never written.
	plan *stmtPlan
	// group is non-nil while evaluating expressions of a grouped query; it
	// holds the tuples of the current group.
	group *groupCtx
	// free memoizes the free-column analysis of subqueries and subCache
	// holds the results of subqueries that are invariant for the whole
	// statement (no free columns; parameters only). The ASL property
	// compiler emits the same parameter-correlated subquery many times, so
	// this cache is the difference between linear and multiplicative cost.
	free     map[Expr]*freeInfo
	subCache map[string]Value
	keyCache map[Expr]string
	// aggPre, when non-nil, maps aggregate call nodes to precomputed values:
	// the vectorized engine accumulates aggregates batch-at-a-time and then
	// evaluates the grouped projection/HAVING scalar parts through the row
	// evaluator with the aggregates already folded (see vecexec.go).
	aggPre map[*ECall]Value
}

// cacheKey returns (memoized) the canonical text of an invariant subquery,
// so textually identical subqueries share one cache slot even when they are
// distinct AST nodes.
func (ec *execCtx) cacheKey(e Expr) string {
	if ec.plan != nil {
		if k, ok := ec.plan.keys[e]; ok {
			return k
		}
	}
	if k, ok := ec.keyCache[e]; ok {
		return k
	}
	k := FormatExpr(e)
	if ec.keyCache == nil {
		ec.keyCache = make(map[Expr]string)
	}
	ec.keyCache[e] = k
	return k
}

// freeInfo summarizes which outer bindings an expression may reference.
type freeInfo struct {
	// unqual is set when the expression contains an unqualified column (or
	// a star), which could resolve to any binding.
	unqual bool
	// quals holds the lower-cased table qualifiers referenced.
	quals []string
}

// freeOf returns (computing and memoizing) the free-column analysis of e.
func (ec *execCtx) freeOf(e Expr) *freeInfo {
	if ec.plan != nil {
		if fi, ok := ec.plan.free[e]; ok {
			return fi
		}
	}
	if fi, ok := ec.free[e]; ok {
		return fi
	}
	fi := &freeInfo{}
	seen := make(map[string]bool)
	collectFree(e, nil, fi, seen)
	if ec.free == nil {
		ec.free = make(map[Expr]*freeInfo)
	}
	ec.free[e] = fi
	return fi
}

func collectFree(e Expr, shadow map[string]bool, fi *freeInfo, seen map[string]bool) {
	switch x := e.(type) {
	case nil, *ELit, *EParam:
	case *EColumn:
		lq, _ := x.keys()
		if lq == "" {
			fi.unqual = true
			return
		}
		if !shadow[lq] && !seen[lq] {
			seen[lq] = true
			fi.quals = append(fi.quals, lq)
		}
	case *EBinary:
		collectFree(x.L, shadow, fi, seen)
		collectFree(x.R, shadow, fi, seen)
	case *EUnary:
		collectFree(x.X, shadow, fi, seen)
	case *ECall:
		for _, a := range x.Args {
			collectFree(a, shadow, fi, seen)
		}
	case *EIsNull:
		collectFree(x.X, shadow, fi, seen)
	case *ESubquery:
		collectFreeSelect(x.Select, shadow, fi, seen)
	case *EExists:
		collectFreeSelect(x.Select, shadow, fi, seen)
	case *EIn:
		collectFree(x.X, shadow, fi, seen)
		if x.Sub != nil {
			collectFreeSelect(x.Sub, shadow, fi, seen)
		}
		for _, a := range x.List {
			collectFree(a, shadow, fi, seen)
		}
	default:
		fi.unqual = true // unknown node: be conservative
	}
}

func collectFreeSelect(st *SelectStmt, shadow map[string]bool, fi *freeInfo, seen map[string]bool) {
	inner := make(map[string]bool, len(shadow)+1+len(st.Joins))
	for k := range shadow {
		inner[k] = true
	}
	if st.From != nil {
		inner[strings.ToLower(st.From.Binding())] = true
	}
	for _, j := range st.Joins {
		inner[strings.ToLower(j.Table.Binding())] = true
	}
	for _, item := range st.Items {
		if item.Star {
			continue // expands only the subquery's own tables
		}
		collectFree(item.Expr, inner, fi, seen)
	}
	for _, j := range st.Joins {
		collectFree(j.On, inner, fi, seen)
	}
	collectFree(st.Where, inner, fi, seen)
	collectFree(st.Having, inner, fi, seen)
	collectFree(st.Limit, inner, fi, seen)
	for _, g := range st.GroupBy {
		collectFree(g, inner, fi, seen)
	}
	for _, o := range st.OrderBy {
		collectFree(o.Expr, inner, fi, seen)
	}
}

// invariant reports whether e cannot observe any binding of the frame
// chain, making its value constant for the whole statement execution.
func (ec *execCtx) invariant(e Expr, fr *frame) bool {
	fi := ec.freeOf(e)
	if fi.unqual && fr != nil {
		for scope := fr; scope != nil; scope = scope.parent {
			if len(scope.tables) > 0 {
				return false
			}
		}
	}
	for _, q := range fi.quals {
		for scope := fr; scope != nil; scope = scope.parent {
			for _, bt := range scope.tables {
				if bt.binding == q {
					return false
				}
			}
		}
	}
	return true
}

type groupCtx struct {
	fr     *frame
	tuples []tuple
}

// vecPlanFor returns the select's plan when the vectorized engine will run
// it: planned, compiled, and the engine selected. Callers on scalar-position
// paths use it to skip ResultSet materialization (vecExecScalar et al.).
func (ec *execCtx) vecPlanFor(st *SelectStmt) *selectPlan {
	if ec.plan == nil || !ec.db.vecOn.Load() {
		return nil
	}
	sp := ec.plan.selects[st]
	if sp == nil || sp.vec == nil {
		return nil
	}
	return sp
}

func (ec *execCtx) execSelect(st *SelectStmt, parent *frame) (*ResultSet, error) {
	// sp is the precomputed strategy of this SELECT node, nil on the
	// unprepared path.
	var sp *selectPlan
	if ec.plan != nil {
		sp = ec.plan.selects[st]
	}
	// Engine dispatch: a planned SELECT with a compiled vectorized form runs
	// batch-at-a-time when the vectorized engine is selected; everything else
	// (unplanned statements, shapes the compiler refused) stays on the row
	// interpreter below.
	if sp != nil && ec.db.vecOn.Load() {
		if sp.vec != nil {
			ec.db.vecSelects.Add(1)
			return ec.vecExecSelect(st, sp, parent)
		}
		ec.db.countFallback(sp.vecReason)
	}
	fr := &frame{parent: parent}
	var tuples []tuple

	if st.From == nil {
		tuples = []tuple{{}}
	} else {
		var bt *boundTable
		if sp != nil {
			bt = &boundTable{binding: sp.fromBinding, table: sp.from}
		} else {
			var err error
			if bt, err = ec.bind(*st.From); err != nil {
				return nil, err
			}
		}
		fr.tables = append(fr.tables, bt)
		// Seed tuples from the first table, using an index if the WHERE
		// clause pins an indexed column of this table to a constant.
		rows, err := ec.seedRows(st, sp, fr, bt)
		if err != nil {
			return nil, err
		}
		tuples = make([]tuple, 0, len(rows))
		for _, r := range rows {
			tuples = append(tuples, tuple{r})
		}
		for ji, j := range st.Joins {
			var jbt *boundTable
			var jp *joinPlan
			if sp != nil {
				jp = &sp.joins[ji]
				jbt = &boundTable{binding: jp.binding, table: jp.table}
			} else if jbt, err = ec.bind(j.Table); err != nil {
				return nil, err
			}
			fr.tables = append(fr.tables, jbt)
			tuples, err = ec.join(fr, tuples, jbt, j.On, jp)
			if err != nil {
				return nil, err
			}
		}
	}

	// WHERE filter.
	if st.Where != nil {
		kept := tuples[:0]
		for _, tp := range tuples {
			setTuple(fr, tp)
			ok, err := ec.evalBool(st.Where, fr)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, tp)
			}
		}
		tuples = kept
	}

	var grouped bool
	var aliases map[string]int // select alias -> output column
	if sp != nil {
		grouped = sp.grouped
		aliases = sp.aliases // read-only: shared across concurrent executions
	} else {
		tables := make([]*Table, len(fr.tables))
		for i, bt := range fr.tables {
			tables[i] = bt.table
		}
		grouped, aliases = selectShape(st, tables)
	}

	set := &ResultSet{}
	{
		tables := make([]*Table, len(fr.tables))
		for i, bt := range fr.tables {
			tables[i] = bt.table
		}
		set.Columns = selectColumns(st, tables)
	}

	project := func(tp tuple) (Row, error) {
		setTuple(fr, tp)
		var out Row
		for _, item := range st.Items {
			if item.Star {
				for _, bt := range fr.tables {
					if bt.row == nil {
						out = append(out, make(Row, len(bt.table.Columns))...)
					} else {
						out = append(out, bt.row...)
					}
				}
				continue
			}
			v, err := ec.eval(item.Expr, fr)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}

	var rows []sortableRow

	orderKeys := func(tp tuple, out Row) ([]Value, error) {
		if len(st.OrderBy) == 0 {
			return nil, nil
		}
		setTuple(fr, tp)
		keys := make([]Value, len(st.OrderBy))
		for i, item := range st.OrderBy {
			// ORDER BY may name a select alias or a 1-based column ordinal.
			if col, ok := item.Expr.(*EColumn); ok && col.Qual == "" {
				if idx, ok := aliases[strings.ToLower(col.Name)]; ok {
					keys[i] = out[idx]
					continue
				}
			}
			if lit, ok := item.Expr.(*ELit); ok && lit.Value.IsInt() {
				n := int(lit.Value.Int())
				if n >= 1 && n <= len(out) {
					keys[i] = out[n-1]
					continue
				}
			}
			v, err := ec.eval(item.Expr, fr)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		return keys, nil
	}

	if grouped {
		groups, order, err := ec.groupTuples(st, fr, tuples)
		if err != nil {
			return nil, err
		}
		for _, key := range order {
			g := groups[key]
			saved := ec.group
			ec.group = &groupCtx{fr: fr, tuples: g}
			rep := tuple(nil)
			if len(g) > 0 {
				rep = g[0]
			} else {
				rep = make(tuple, len(fr.tables))
			}
			if st.Having != nil {
				setTuple(fr, rep)
				ok, err := ec.evalBool(st.Having, fr)
				if err != nil {
					ec.group = saved
					return nil, err
				}
				if !ok {
					ec.group = saved
					continue
				}
			}
			out, err := project(rep)
			if err != nil {
				ec.group = saved
				return nil, err
			}
			keys, err := orderKeys(rep, out)
			if err != nil {
				ec.group = saved
				return nil, err
			}
			rows = append(rows, sortableRow{row: out, keys: keys})
			ec.group = saved
		}
	} else {
		for _, tp := range tuples {
			out, err := project(tp)
			if err != nil {
				return nil, err
			}
			keys, err := orderKeys(tp, out)
			if err != nil {
				return nil, err
			}
			rows = append(rows, sortableRow{row: out, keys: keys})
		}
	}

	if err := sortRows(rows, st.OrderBy); err != nil {
		return nil, err
	}

	if st.Limit != nil {
		lv, err := ec.eval(st.Limit, fr)
		if err != nil {
			return nil, err
		}
		if !lv.IsNumeric() {
			return nil, fmt.Errorf("sqldb: LIMIT is not numeric")
		}
		n := int(lv.Float())
		if n < 0 {
			n = 0
		}
		if n < len(rows) {
			rows = rows[:n]
		}
	}

	set.Rows = make([]Row, len(rows))
	for i := range rows {
		set.Rows[i] = rows[i].row
	}
	return set, nil
}

// groupTuples partitions tuples by the GROUP BY keys. Without GROUP BY all
// tuples form one group (which exists even when empty). Returns the groups
// and the deterministic iteration order of their keys.
func (ec *execCtx) groupTuples(st *SelectStmt, fr *frame, tuples []tuple) (map[string][]tuple, []string, error) {
	groups := make(map[string][]tuple)
	var order []string
	if len(st.GroupBy) == 0 {
		groups[""] = tuples
		return groups, []string{""}, nil
	}
	for _, tp := range tuples {
		setTuple(fr, tp)
		var key strings.Builder
		for _, e := range st.GroupBy {
			v, err := ec.eval(e, fr)
			if err != nil {
				return nil, nil, err
			}
			key.WriteString(v.Key())
			key.WriteByte(0)
		}
		k := key.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], tp)
	}
	return groups, order, nil
}

func (ec *execCtx) bind(ref TableRef) (*boundTable, error) {
	t := ec.db.tables[strings.ToLower(ref.Table)]
	if t == nil {
		return nil, fmt.Errorf("sqldb: no table %s", ref.Table)
	}
	return &boundTable{binding: strings.ToLower(ref.Binding()), table: t}, nil
}

func setTuple(fr *frame, tp tuple) {
	for i, bt := range fr.tables {
		if i < len(tp) {
			bt.row = tp[i]
		} else {
			bt.row = nil
		}
	}
}

// seedRows returns the candidate rows of the first table, using a hash index
// when the WHERE clause contains a top-level "col = expr" conjunct on an
// indexed column of this table whose right-hand side is independent of the
// scanned table (literals, parameters, outer-scope correlations, and
// uncorrelated subqueries all qualify). This turns the nested dereference
// subqueries emitted by the ASL property compiler from full scans into O(1)
// point lookups. With a plan the candidate conjuncts were matched at prepare
// time; whether a column is indexed is still checked here so lazily built
// join indexes are picked up.
func (ec *execCtx) seedRows(st *SelectStmt, sp *selectPlan, fr *frame, bt *boundTable) ([]Row, error) {
	tryLookup := func(col int, val Expr) ([]Row, bool) {
		if !bt.table.hasIndex(col) {
			return nil, false
		}
		v, err := ec.eval(val, fr)
		if err != nil {
			return nil, false // not evaluable up front; fall back to a scan
		}
		positions, _ := bt.table.lookup(col, v)
		all := bt.table.scan()
		rows := make([]Row, len(positions))
		for i, pos := range positions {
			rows[i] = all[pos]
		}
		return rows, true
	}
	if sp != nil {
		for _, ap := range sp.access {
			if rows, ok := tryLookup(ap.col, ap.val); ok {
				return rows, nil
			}
		}
		return bt.table.scan(), nil
	}
	if st.Where != nil {
		for _, conj := range conjuncts(st.Where) {
			bin, ok := conj.(*EBinary)
			if !ok || bin.Op != OpEq {
				continue
			}
			col, val := matchColConst(bin, bt)
			if col < 0 {
				continue
			}
			if rows, ok := tryLookup(col, val); ok {
				return rows, nil
			}
		}
	}
	return bt.table.scan(), nil
}

// conjuncts flattens a top-level AND tree.
func conjuncts(e Expr) []Expr {
	if bin, ok := e.(*EBinary); ok && bin.Op == OpAnd {
		return append(conjuncts(bin.L), conjuncts(bin.R)...)
	}
	return []Expr{e}
}

// matchColConst matches "bt.col = expr" (either orientation) where expr does
// not reference the scanned table; returns (-1, nil) if no match.
func matchColConst(bin *EBinary, bt *boundTable) (int, Expr) {
	try := func(colE, constE Expr) (int, Expr) {
		col, ok := colE.(*EColumn)
		if !ok {
			return -1, nil
		}
		if col.Qual != "" && strings.ToLower(col.Qual) != bt.binding {
			return -1, nil
		}
		pos := bt.table.ColumnIndex(col.Name)
		if pos < 0 || exprRefsBinding(constE, bt.binding) {
			return -1, nil
		}
		return pos, constE
	}
	if col, c := try(bin.L, bin.R); col >= 0 {
		return col, c
	}
	return try(bin.R, bin.L)
}

// exprRefsBinding reports whether the expression might reference columns of
// the table bound under the given (lower-cased) name. Unqualified columns
// are treated as possible references. Subqueries are analyzed recursively;
// a subquery that rebinds the same name shadows the outer table, so its
// interior cannot reference it.
func exprRefsBinding(e Expr, binding string) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *ELit, *EParam:
		return false
	case *EColumn:
		return x.Qual == "" || strings.ToLower(x.Qual) == binding
	case *EBinary:
		return exprRefsBinding(x.L, binding) || exprRefsBinding(x.R, binding)
	case *EUnary:
		return exprRefsBinding(x.X, binding)
	case *ECall:
		for _, a := range x.Args {
			if exprRefsBinding(a, binding) {
				return true
			}
		}
		return false
	case *EIsNull:
		return exprRefsBinding(x.X, binding)
	case *ESubquery:
		return selectRefsBinding(x.Select, binding)
	case *EExists:
		return selectRefsBinding(x.Select, binding)
	case *EIn:
		if exprRefsBinding(x.X, binding) {
			return true
		}
		if x.Sub != nil && selectRefsBinding(x.Sub, binding) {
			return true
		}
		for _, a := range x.List {
			if exprRefsBinding(a, binding) {
				return true
			}
		}
		return false
	}
	return true // unknown node: be conservative
}

func selectRefsBinding(st *SelectStmt, binding string) bool {
	// If the subquery rebinds the name, outer references are shadowed.
	if st.From != nil && strings.ToLower(st.From.Binding()) == binding {
		return false
	}
	for _, j := range st.Joins {
		if strings.ToLower(j.Table.Binding()) == binding {
			return false
		}
	}
	for _, item := range st.Items {
		if item.Star {
			return true // star could expand the outer binding's columns
		}
		if exprRefsBinding(item.Expr, binding) {
			return true
		}
	}
	for _, j := range st.Joins {
		if exprRefsBinding(j.On, binding) {
			return true
		}
	}
	if exprRefsBinding(st.Where, binding) || exprRefsBinding(st.Having, binding) || exprRefsBinding(st.Limit, binding) {
		return true
	}
	for _, g := range st.GroupBy {
		if exprRefsBinding(g, binding) {
			return true
		}
	}
	for _, o := range st.OrderBy {
		if exprRefsBinding(o.Expr, binding) {
			return true
		}
	}
	return false
}

// join extends each tuple with matching rows of the newly bound table,
// using a hash join for equi-join conditions and a nested loop otherwise.
// With a plan the strategy (equi-join column, residual conjuncts) was chosen
// at prepare time.
func (ec *execCtx) join(fr *frame, tuples []tuple, jbt *boundTable, on Expr, jp *joinPlan) ([]tuple, error) {
	// Detect "jbt.col = outerExpr" among the ON conjuncts.
	var eqCol = -1
	var outerExpr Expr
	var rest []Expr
	if jp != nil {
		eqCol, outerExpr, rest = jp.eqCol, jp.outer, jp.rest
	} else {
		eqCol, outerExpr, rest = joinStrategy(on, jbt)
	}

	var out []tuple
	if eqCol >= 0 {
		jbt.table.createIndex(eqCol)
		jrows := jbt.table.scan()
		for _, tp := range tuples {
			setTuple(fr, tp)
			jbt.row = nil
			key, err := ec.eval(outerExpr, fr)
			if err != nil {
				return nil, err
			}
			if key.IsNull() {
				continue
			}
			positions, _ := jbt.table.lookup(eqCol, key)
			for _, pos := range positions {
				r := jrows[pos]
				ok, err := ec.checkConjuncts(rest, fr, tp, jbt, r)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, append(append(tuple{}, tp...), r))
				}
			}
		}
		return out, nil
	}

	// Nested-loop fallback: eqCol < 0 here, so rest holds every conjunct on
	// both the planned and the dynamic path.
	for _, tp := range tuples {
		for _, r := range jbt.table.scan() {
			ok, err := ec.checkConjuncts(rest, fr, tp, jbt, r)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, append(append(tuple{}, tp...), r))
			}
		}
	}
	return out, nil
}

func (ec *execCtx) checkConjuncts(conds []Expr, fr *frame, tp tuple, jbt *boundTable, r Row) (bool, error) {
	setTuple(fr, tp)
	jbt.row = r
	for _, c := range conds {
		ok, err := ec.evalBool(c, fr)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// joinStrategy chooses how to execute one JOIN: it scans the ON conjuncts
// for a "jbt.col = outerExpr" condition usable as a hash join. eqCol is -1
// when none exists; rest holds the conjuncts still checked per candidate row
// (all of them in the nested-loop case). Shared by the planner and the
// dynamic execution path, so both choose identically.
func joinStrategy(on Expr, jbt *boundTable) (eqCol int, outer Expr, rest []Expr) {
	eqCol = -1
	for _, conj := range conjuncts(on) {
		if eqCol < 0 {
			if bin, ok := conj.(*EBinary); ok && bin.Op == OpEq {
				if col, other := matchJoinCol(bin, jbt); col >= 0 {
					eqCol, outer = col, other
					continue
				}
			}
		}
		rest = append(rest, conj)
	}
	return eqCol, outer, rest
}

// selectShape derives the projection shape of a SELECT over its bound
// tables: whether the query is grouped, and the alias → output-column map
// used by ORDER BY. Shared by the planner and the dynamic execution path.
func selectShape(st *SelectStmt, tables []*Table) (grouped bool, aliases map[string]int) {
	grouped = len(st.GroupBy) > 0 || st.Having != nil
	aliases = map[string]int{}
	col := 0
	for _, item := range st.Items {
		if item.Star {
			for _, t := range tables {
				col += len(t.Columns)
			}
			continue
		}
		if !grouped && hasAggregate(item.Expr) {
			grouped = true
		}
		if item.Alias != "" {
			aliases[strings.ToLower(item.Alias)] = col
		}
		col++
	}
	return grouped, aliases
}

// selectColumns derives the output column names of a SELECT over its bound
// tables. Shared by both engines so result shapes match exactly.
func selectColumns(st *SelectStmt, tables []*Table) []string {
	var cols []string
	for _, item := range st.Items {
		if item.Star {
			for _, t := range tables {
				for _, c := range t.Columns {
					cols = append(cols, c.Name)
				}
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if col, ok := item.Expr.(*EColumn); ok {
				name = col.Name
			} else {
				name = fmt.Sprintf("col%d", len(cols)+1)
			}
		}
		cols = append(cols, name)
	}
	return cols
}

// sortableRow pairs an output row with its precomputed ORDER BY keys.
type sortableRow struct {
	row  Row
	keys []Value
}

// sortRows stable-sorts output rows on their ORDER BY keys, NULLs last
// regardless of direction unless a key asks for NULLS FIRST. Shared by both
// engines so tie-breaking and incomparable-type errors match exactly.
func sortRows(rows []sortableRow, order []OrderItem) error {
	if len(order) == 0 {
		return nil
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for k, item := range order {
			a, b := rows[i].keys[k], rows[j].keys[k]
			// NULLs sort last regardless of direction, first on NULLS FIRST.
			if a.IsNull() || b.IsNull() {
				if a.IsNull() && b.IsNull() {
					continue
				}
				if item.NullsFirst {
					return a.IsNull()
				}
				return b.IsNull()
			}
			cmp, err := Compare(a, b)
			if err != nil {
				sortErr = err
				return false
			}
			if cmp == 0 {
				continue
			}
			if item.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	return sortErr
}

// matchJoinCol matches "jbt.col = expr" where expr does not reference jbt.
func matchJoinCol(bin *EBinary, jbt *boundTable) (int, Expr) {
	try := func(colE, otherE Expr) (int, Expr) {
		col, ok := colE.(*EColumn)
		if !ok {
			return -1, nil
		}
		if strings.ToLower(col.Qual) != jbt.binding {
			return -1, nil
		}
		pos := jbt.table.ColumnIndex(col.Name)
		if pos < 0 || exprRefsBinding(otherE, jbt.binding) {
			return -1, nil
		}
		return pos, otherE
	}
	if col, other := try(bin.L, bin.R); col >= 0 {
		return col, other
	}
	return try(bin.R, bin.L)
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

// evalBool evaluates a predicate under three-valued logic; NULL counts as
// false for filtering.
func (ec *execCtx) evalBool(e Expr, fr *frame) (bool, error) {
	v, err := ec.eval(e, fr)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if !v.IsBool() {
		return false, fmt.Errorf("sqldb: predicate evaluated to %s, want boolean", v)
	}
	return v.Bool(), nil
}

func (ec *execCtx) eval(e Expr, fr *frame) (Value, error) {
	switch x := e.(type) {
	case *ELit:
		return x.Value, nil
	case *EParam:
		if ec.params == nil {
			return Null, fmt.Errorf("sqldb: statement has parameters but none were supplied")
		}
		if x.Name != "" {
			v, ok := ec.params.Named[x.Name]
			if !ok {
				return Null, fmt.Errorf("sqldb: missing named parameter $%s", x.Name)
			}
			return v, nil
		}
		if x.Ordinal >= len(ec.params.Positional) {
			return Null, fmt.Errorf("sqldb: missing positional parameter %d", x.Ordinal+1)
		}
		return ec.params.Positional[x.Ordinal], nil
	case *EColumn:
		bt, col, err := fr.resolve(x)
		if err != nil {
			return Null, err
		}
		if bt.row == nil {
			return Null, nil
		}
		return bt.row[col], nil
	case *EUnary:
		v, err := ec.eval(x.X, fr)
		if err != nil {
			return Null, err
		}
		return applyUnary(x.Neg, v)
	case *EBinary:
		return ec.evalBinary(x, fr)
	case *ECall:
		return ec.evalCall(x, fr)
	case *EIsNull:
		v, err := ec.eval(x.X, fr)
		if err != nil {
			return Null, err
		}
		return NewBool(v.IsNull() != x.Not), nil
	case *ESubquery:
		cacheable := ec.invariant(x, fr)
		var key string
		if cacheable {
			key = ec.cacheKey(x)
			if v, ok := ec.subCache[key]; ok {
				return v, nil
			}
		}
		var v Value
		if sp := ec.vecPlanFor(x.Select); sp != nil {
			ec.db.vecSelects.Add(1)
			if n := len(sp.vec.columns); n != 1 {
				return Null, fmt.Errorf("sqldb: scalar subquery returns %d columns", n)
			}
			sv, err := ec.vecExecScalar(x.Select, sp, fr)
			if err != nil {
				return Null, err
			}
			v = sv
		} else {
			set, err := ec.execSelect(x.Select, fr)
			if err != nil {
				return Null, err
			}
			if len(set.Columns) != 1 {
				return Null, fmt.Errorf("sqldb: scalar subquery returns %d columns", len(set.Columns))
			}
			switch len(set.Rows) {
			case 0:
				v = Null
			case 1:
				v = set.Rows[0][0]
			default:
				return Null, fmt.Errorf("sqldb: scalar subquery returned %d rows", len(set.Rows))
			}
		}
		if cacheable {
			if ec.subCache == nil {
				ec.subCache = make(map[string]Value)
			}
			ec.subCache[key] = v
		}
		return v, nil
	case *EExists:
		cacheable := ec.invariant(x, fr)
		var key string
		if cacheable {
			key = ec.cacheKey(x)
			if v, ok := ec.subCache[key]; ok {
				return v, nil
			}
		}
		var v Value
		if sp := ec.vecPlanFor(x.Select); sp != nil {
			ec.db.vecSelects.Add(1)
			ev, err := ec.vecExecExists(x.Select, sp, fr)
			if err != nil {
				return Null, err
			}
			v = ev
		} else {
			set, err := ec.execSelect(x.Select, fr)
			if err != nil {
				return Null, err
			}
			v = NewBool(len(set.Rows) > 0)
		}
		if cacheable {
			if ec.subCache == nil {
				ec.subCache = make(map[string]Value)
			}
			ec.subCache[key] = v
		}
		return v, nil
	case *EIn:
		return ec.evalIn(x, fr)
	}
	return Null, fmt.Errorf("sqldb: unhandled expression %T", e)
}

func (ec *execCtx) evalIn(x *EIn, fr *frame) (Value, error) {
	lv, err := ec.eval(x.X, fr)
	if err != nil {
		return Null, err
	}
	var candidates []Value
	if x.Sub != nil {
		set, err := ec.execSelect(x.Sub, fr)
		if err != nil {
			return Null, err
		}
		if len(set.Columns) != 1 {
			return Null, fmt.Errorf("sqldb: IN subquery returns %d columns", len(set.Columns))
		}
		for _, r := range set.Rows {
			candidates = append(candidates, r[0])
		}
	} else {
		for _, e := range x.List {
			v, err := ec.eval(e, fr)
			if err != nil {
				return Null, err
			}
			candidates = append(candidates, v)
		}
	}
	return applyInList(lv, candidates, x.Not)
}

func (ec *execCtx) evalBinary(x *EBinary, fr *frame) (Value, error) {
	if x.Op == OpAnd || x.Op == OpOr {
		lv, err := ec.eval(x.L, fr)
		if err != nil {
			return Null, err
		}
		// Kleene three-valued logic with short-circuiting.
		if decided, v := logicalShortCircuit(x.Op, lv); decided {
			return v, nil
		}
		rv, err := ec.eval(x.R, fr)
		if err != nil {
			return Null, err
		}
		return combineAndOr(x.Op, lv, rv)
	}

	lv, err := ec.eval(x.L, fr)
	if err != nil {
		return Null, err
	}
	rv, err := ec.eval(x.R, fr)
	if err != nil {
		return Null, err
	}
	return applyBinary(x.Op, lv, rv)
}

// logicalShortCircuit reports whether the left operand alone decides an
// AND/OR, and the decided value. Shared by both engines so they skip the
// right operand (and any error it would raise) for exactly the same rows.
func logicalShortCircuit(op BinOp, lv Value) (bool, Value) {
	if !lv.IsNull() && lv.IsBool() {
		if op == OpAnd && !lv.Bool() {
			return true, NewBool(false)
		}
		if op == OpOr && lv.Bool() {
			return true, NewBool(true)
		}
	}
	return false, Null
}

// combineAndOr applies three-valued AND/OR to two evaluated operands.
func combineAndOr(op BinOp, lv, rv Value) (Value, error) {
	lb, lok := boolOrNull(lv)
	rb, rok := boolOrNull(rv)
	if (lv.IsNull() || lok) && (rv.IsNull() || rok) {
		switch op {
		case OpAnd:
			if lok && rok {
				return NewBool(lb && rb), nil
			}
			if (lok && !lb) || (rok && !rb) {
				return NewBool(false), nil
			}
			return Null, nil
		case OpOr:
			if lok && rok {
				return NewBool(lb || rb), nil
			}
			if (lok && lb) || (rok && rb) {
				return NewBool(true), nil
			}
			return Null, nil
		}
	}
	return Null, fmt.Errorf("sqldb: %s on non-boolean operands", op)
}

// applyBinary applies a non-logical binary operator to two evaluated
// operands, including the NULL propagation. Both engines evaluate binary
// expressions through this single kernel, so semantics — and error texts —
// cannot drift between them.
func applyBinary(op BinOp, lv, rv Value) (Value, error) {
	if lv.IsNull() || rv.IsNull() {
		return Null, nil
	}
	switch op {
	case OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq:
		cmp, err := Compare(lv, rv)
		if err != nil {
			return Null, err
		}
		var b bool
		switch op {
		case OpEq:
			b = cmp == 0
		case OpNeq:
			b = cmp != 0
		case OpLt:
			b = cmp < 0
		case OpLeq:
			b = cmp <= 0
		case OpGt:
			b = cmp > 0
		case OpGeq:
			b = cmp >= 0
		}
		return NewBool(b), nil
	case OpConcat:
		if !lv.IsText() || !rv.IsText() {
			return Null, fmt.Errorf("sqldb: || on %s and %s", lv, rv)
		}
		return NewText(lv.Text() + rv.Text()), nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		if !lv.IsNumeric() || !rv.IsNumeric() {
			return Null, fmt.Errorf("sqldb: %s on %s and %s", op, lv, rv)
		}
		if op == OpMod {
			if !lv.IsInt() || !rv.IsInt() {
				return Null, fmt.Errorf("sqldb: %% on non-integers")
			}
			if rv.Int() == 0 {
				return Null, fmt.Errorf("sqldb: modulo by zero")
			}
			return NewInt(lv.Int() % rv.Int()), nil
		}
		if op == OpDiv {
			if rv.Float() == 0 {
				return Null, fmt.Errorf("sqldb: division by zero")
			}
			return NewFloat(lv.Float() / rv.Float()), nil
		}
		if lv.IsInt() && rv.IsInt() {
			switch op {
			case OpAdd:
				return NewInt(lv.Int() + rv.Int()), nil
			case OpSub:
				return NewInt(lv.Int() - rv.Int()), nil
			case OpMul:
				return NewInt(lv.Int() * rv.Int()), nil
			}
		}
		var f float64
		switch op {
		case OpAdd:
			f = lv.Float() + rv.Float()
		case OpSub:
			f = lv.Float() - rv.Float()
		case OpMul:
			f = lv.Float() * rv.Float()
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return Null, fmt.Errorf("sqldb: arithmetic overflow")
		}
		return NewFloat(f), nil
	}
	return Null, fmt.Errorf("sqldb: unhandled operator %s", op)
}

func boolOrNull(v Value) (bool, bool) {
	if v.IsBool() {
		return v.Bool(), true
	}
	return false, false
}

// applyUnary applies unary minus (neg) or NOT to an evaluated operand.
// Shared by both engines.
func applyUnary(neg bool, v Value) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	if neg {
		switch {
		case v.IsInt():
			return NewInt(-v.Int()), nil
		case v.IsNumeric():
			return NewFloat(-v.Float()), nil
		}
		return Null, fmt.Errorf("sqldb: unary - on %s", v)
	}
	if !v.IsBool() {
		return Null, fmt.Errorf("sqldb: NOT on %s", v)
	}
	return NewBool(!v.Bool()), nil
}

// applyInList applies IN/NOT IN membership to an evaluated needle and an
// evaluated candidate list, with SQL NULL semantics. Shared by both engines.
func applyInList(lv Value, candidates []Value, not bool) (Value, error) {
	if lv.IsNull() {
		return Null, nil
	}
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		cmp, err := Compare(lv, c)
		if err != nil {
			continue // incomparable values never match
		}
		if cmp == 0 {
			return NewBool(!not), nil
		}
	}
	if sawNull {
		return Null, nil
	}
	return NewBool(not), nil
}

func (ec *execCtx) evalCall(x *ECall, fr *frame) (Value, error) {
	if x.IsAggregate() {
		if ec.aggPre != nil {
			if v, ok := ec.aggPre[x]; ok {
				return v, nil
			}
		}
		return ec.evalAggregate(x, fr)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ec.eval(a, fr)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	return applyScalarFunc(x.Name, args)
}

// applyScalarFunc applies a scalar SQL function to evaluated arguments.
// Shared by both engines, so function semantics and error texts match.
func applyScalarFunc(rawName string, args []Value) (Value, error) {
	name := strings.ToUpper(rawName)
	switch name {
	case "ABS":
		if len(args) != 1 {
			return Null, fmt.Errorf("sqldb: ABS takes 1 argument")
		}
		v := args[0]
		if v.IsNull() {
			return Null, nil
		}
		if v.IsInt() {
			if v.Int() < 0 {
				return NewInt(-v.Int()), nil
			}
			return v, nil
		}
		if v.IsNumeric() {
			return NewFloat(math.Abs(v.Float())), nil
		}
		return Null, fmt.Errorf("sqldb: ABS on %s", v)
	case "SQRT":
		if len(args) != 1 {
			return Null, fmt.Errorf("sqldb: SQRT takes 1 argument")
		}
		v := args[0]
		if v.IsNull() {
			return Null, nil
		}
		if !v.IsNumeric() || v.Float() < 0 {
			return Null, fmt.Errorf("sqldb: SQRT on %s", v)
		}
		return NewFloat(math.Sqrt(v.Float())), nil
	case "COALESCE":
		for _, v := range args {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null, nil
	case "NULLIF":
		if len(args) != 2 {
			return Null, fmt.Errorf("sqldb: NULLIF takes 2 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return args[0], nil
		}
		if cmp, err := Compare(args[0], args[1]); err == nil && cmp == 0 {
			return Null, nil
		}
		return args[0], nil
	case "LENGTH":
		if len(args) != 1 {
			return Null, fmt.Errorf("sqldb: LENGTH takes 1 argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		if !args[0].IsText() {
			return Null, fmt.Errorf("sqldb: LENGTH on %s", args[0])
		}
		return NewInt(int64(len(args[0].Text()))), nil
	case "UPPER", "LOWER":
		if len(args) != 1 {
			return Null, fmt.Errorf("sqldb: %s takes 1 argument", name)
		}
		if args[0].IsNull() {
			return Null, nil
		}
		if !args[0].IsText() {
			return Null, fmt.Errorf("sqldb: %s on %s", name, args[0])
		}
		if name == "UPPER" {
			return NewText(strings.ToUpper(args[0].Text())), nil
		}
		return NewText(strings.ToLower(args[0].Text())), nil
	}
	return Null, fmt.Errorf("sqldb: unknown function %s", rawName)
}

func (ec *execCtx) evalAggregate(x *ECall, fr *frame) (Value, error) {
	if ec.group == nil {
		return Null, fmt.Errorf("sqldb: aggregate %s outside grouped query", x.Name)
	}
	g := ec.group
	// Disable aggregate context while evaluating the argument per tuple so
	// that nested aggregates are rejected.
	ec.group = nil
	defer func() { ec.group = g }()

	name := strings.ToUpper(x.Name)
	if x.Star {
		if name != "COUNT" {
			return Null, fmt.Errorf("sqldb: %s(*) is not valid", x.Name)
		}
		return NewInt(int64(len(g.tuples))), nil
	}
	if len(x.Args) != 1 {
		return Null, fmt.Errorf("sqldb: aggregate %s takes 1 argument", x.Name)
	}

	acc := newAggAcc()
	for _, tp := range g.tuples {
		setTuple(g.fr, tp)
		v, err := ec.eval(x.Args[0], g.fr)
		if err != nil {
			return Null, err
		}
		if err := acc.add(name, v); err != nil {
			return Null, err
		}
	}
	return acc.final(name, x.Name)
}

// aggAcc accumulates one aggregate over non-NULL inputs. Both engines feed
// values through add in storage (row) order, so float summation — and with it
// SUM/AVG results — is bit-identical across them.
type aggAcc struct {
	count  int64
	sum    float64
	allInt bool
	best   Value
}

func newAggAcc() aggAcc { return aggAcc{allInt: true} }

// add folds one input value into the accumulator for the (upper-cased)
// aggregate name. NULL inputs are skipped, per SQL.
func (a *aggAcc) add(name string, v Value) error {
	if v.IsNull() {
		return nil
	}
	a.count++
	switch name {
	case "SUM", "AVG":
		if !v.IsNumeric() {
			return fmt.Errorf("sqldb: %s over non-numeric %s", name, v)
		}
		if !v.IsInt() {
			a.allInt = false
		}
		a.sum += v.Float()
	case "MIN", "MAX":
		if a.best.IsNull() {
			a.best = v
			return nil
		}
		cmp, err := Compare(v, a.best)
		if err != nil {
			return err
		}
		if (name == "MIN" && cmp < 0) || (name == "MAX" && cmp > 0) {
			a.best = v
		}
	}
	return nil
}

// final produces the aggregate result. name is upper-cased; rawName is the
// source spelling, used in error texts.
func (a *aggAcc) final(name, rawName string) (Value, error) {
	switch name {
	case "COUNT":
		return NewInt(a.count), nil
	case "SUM":
		if a.count == 0 {
			return Null, nil
		}
		if a.allInt {
			return NewInt(int64(a.sum)), nil
		}
		return NewFloat(a.sum), nil
	case "AVG":
		if a.count == 0 {
			return Null, nil
		}
		return NewFloat(a.sum / float64(a.count)), nil
	case "MIN", "MAX":
		return a.best, nil
	}
	return Null, fmt.Errorf("sqldb: unhandled aggregate %s", rawName)
}
