package sqldb

import "strings"

// Columnar DML. UPDATE and DELETE evaluate their WHERE clause as a vectorized
// predicate over the column vectors — fused kernels when the clause is all
// plain comparisons, the compiled vexpr tree otherwise — and mutate or
// compact the columns in place under the exclusive statement lock. The row
// engine's path materializes the row-major view (Table.scan) just to iterate
// it; this path never touches the view, only drops it, so a DML statement on
// a cold table costs no rowView rebuild.
//
// Semantics mirror execUpdateLocked/execDeleteLocked: the WHERE and SET
// expressions read the pre-mutation state (phase 1), mutation happens only
// after every expression evaluated without error (phase 2), the cached
// rowView is dropped, indexes rebuild, and the table's data version bumps.
// Error presence matches the row engine; which of several simultaneous errors
// surfaces may differ (the documented engines-agree caveat), because the
// columnar path evaluates chunk-at-a-time and column-major where the row
// engine interleaves per row.

// vecDMLPlan is the compiled columnar pipeline of one UPDATE or DELETE.
type vecDMLPlan struct {
	table   *Table
	binding string
	where   vexpr   // nil when the statement has no WHERE
	fused   []vpred // fused WHERE kernels, nil unless every conjunct fused
	sets    []vexpr // UPDATE: one per SET clause, in declaration order
	cols    []int   // UPDATE: target column of each SET
}

// compileVecUpdate compiles an UPDATE's WHERE and SET expressions against its
// table. Any refusal returns nil: the row path runs (and raises resolution
// errors like a missing SET column itself).
func compileVecUpdate(p *stmtPlan, st *UpdateStmt, t *Table) *vecDMLPlan {
	if t == nil {
		return nil
	}
	dp := &vecDMLPlan{table: t, binding: strings.ToLower(st.Table)}
	cp := &vecCompiler{p: p, tabs: []*Table{t}, binds: []string{dp.binding}}
	if st.Where != nil {
		f, ok := cp.compile(st.Where, 1)
		if !ok {
			return nil
		}
		dp.where = f
		dp.fused = cp.fuseFilter(st.Where, 1)
	}
	for _, set := range st.Sets {
		c := t.ColumnIndex(set.Column)
		if c < 0 {
			return nil
		}
		sx, ok := cp.compile(set.Value, 1)
		if !ok {
			return nil
		}
		dp.sets = append(dp.sets, sx)
		dp.cols = append(dp.cols, c)
	}
	return dp
}

// compileVecDelete compiles a DELETE's WHERE against its table.
func compileVecDelete(p *stmtPlan, st *DeleteStmt, t *Table) *vecDMLPlan {
	if t == nil {
		return nil
	}
	dp := &vecDMLPlan{table: t, binding: strings.ToLower(st.Table)}
	cp := &vecCompiler{p: p, tabs: []*Table{t}, binds: []string{dp.binding}}
	if st.Where != nil {
		f, ok := cp.compile(st.Where, 1)
		if !ok {
			return nil
		}
		dp.where = f
		dp.fused = cp.fuseFilter(st.Where, 1)
	}
	return dp
}

// vecExecUpdateLocked is the columnar UPDATE core; db.mu must be held
// exclusively and plan.dml must be compiled against t.
func (db *DB) vecExecUpdateLocked(params *Params, plan *stmtPlan, t *Table) (*Result, error) {
	dp := plan.dml
	ec := &execCtx{db: db, params: params, plan: plan}
	vc := acquireVecCtx(ec, 1)
	defer vc.release()
	vc.btStore[0] = boundTable{binding: dp.binding, table: t}
	vc.tabs[0] = t
	vc.fr = frame{tables: vc.bts[:1]} // no parent, like the row DML frame
	fused := dp.fused
	if fused != nil && !vc.fuseReady(fused) {
		fused = nil
	}

	type patch struct {
		pos    int32
		values Row
	}
	var patches []patch
	b, nb := &vc.b, &vc.nb
	setCol := vc.getCol()
	defer vc.putCol(setCol)
	nrows := t.nrows // stable: we hold the exclusive statement lock
	for start := 0; start < nrows; start += vecBatchSize {
		end := start + vecBatchSize
		if end > nrows {
			end = nrows
		}
		b.n = end - start
		if cap(vc.chunkBuf) < b.n {
			vc.chunkBuf = make([]int32, vecBatchSize)
		}
		vc.chunkBuf = vc.chunkBuf[:b.n]
		for i := range vc.chunkBuf {
			vc.chunkBuf[i] = int32(start + i)
		}
		b.pos[0] = vc.chunkBuf

		cur := b
		if dp.where != nil {
			if fused != nil {
				cur = vc.narrowFused(b, nb, fused)
			} else {
				out, err := vc.narrow(b, nb, dp.where)
				if err != nil {
					return nil, err
				}
				cur = out
			}
			if cur.n == 0 {
				continue
			}
		}

		// Evaluate the SET expressions column-major over the survivors,
		// coercing to the target column types; errors surface before any
		// mutation.
		base := len(patches)
		for i := 0; i < cur.n; i++ {
			patches = append(patches, patch{pos: cur.pos[0][i], values: make(Row, len(dp.sets))})
		}
		for j, sx := range dp.sets {
			if err := sx(vc, cur, setCol); err != nil {
				return nil, err
			}
			ct := t.Columns[dp.cols[j]].Type
			for i := 0; i < cur.n; i++ {
				cv, err := coerce(setCol.at(i), ct)
				if err != nil {
					return nil, err
				}
				patches[base+i].values[j] = cv
			}
		}
	}

	// Phase 2 (write): identical to the row path — patch the column vectors,
	// drop the cached row view, rebuild indexes, bump the data version.
	if len(patches) > 0 {
		t.mu.Lock()
		for _, p := range patches {
			for j, cv := range p.values {
				t.cols[dp.cols[j]].setVal(int(p.pos), cv)
			}
		}
		t.rowView = nil
		t.mu.Unlock()
		t.rebuildIndexes()
		db.bumpData(t)
	}
	return &Result{Affected: len(patches)}, nil
}

// vecExecDeleteLocked is the columnar DELETE core; db.mu must be held
// exclusively and plan.dml must be compiled against t.
func (db *DB) vecExecDeleteLocked(params *Params, plan *stmtPlan, t *Table) (*Result, error) {
	dp := plan.dml
	ec := &execCtx{db: db, params: params, plan: plan}
	vc := acquireVecCtx(ec, 1)
	defer vc.release()
	vc.btStore[0] = boundTable{binding: dp.binding, table: t}
	vc.tabs[0] = t
	vc.fr = frame{tables: vc.bts[:1]}
	fused := dp.fused
	if fused != nil && !vc.fuseReady(fused) {
		fused = nil
	}

	nrows := t.nrows
	var keep []bool
	n := 0
	if dp.where == nil {
		// No WHERE: every row goes; the selection bitmap stays all-false.
		keep = make([]bool, nrows)
		n = nrows
	} else {
		keep = make([]bool, nrows)
		for i := range keep {
			keep[i] = true
		}
		b, nb := &vc.b, &vc.nb
		for start := 0; start < nrows; start += vecBatchSize {
			end := start + vecBatchSize
			if end > nrows {
				end = nrows
			}
			b.n = end - start
			if cap(vc.chunkBuf) < b.n {
				vc.chunkBuf = make([]int32, vecBatchSize)
			}
			vc.chunkBuf = vc.chunkBuf[:b.n]
			for i := range vc.chunkBuf {
				vc.chunkBuf[i] = int32(start + i)
			}
			b.pos[0] = vc.chunkBuf

			cur := b
			if fused != nil {
				cur = vc.narrowFused(b, nb, fused)
			} else {
				out, err := vc.narrow(b, nb, dp.where)
				if err != nil {
					return nil, err
				}
				cur = out
			}
			for i := 0; i < cur.n; i++ {
				keep[cur.pos[0][i]] = false
				n++
			}
		}
	}

	// Phase 2 (write): identical to the row path — compact every column,
	// drop the cached row view, rebuild indexes, bump the data version.
	if n > 0 {
		t.mu.Lock()
		for _, c := range t.cols {
			c.compact(keep)
		}
		t.nrows -= n
		t.rowView = nil
		t.mu.Unlock()
		t.rebuildIndexes()
		db.bumpData(t)
	}
	return &Result{Affected: n}, nil
}
