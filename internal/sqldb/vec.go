package sqldb

// The vectorized expression layer: planned SELECT expressions compile, at
// prepare time, into vexpr closures that evaluate a whole batch of rows per
// call, reading the columnar storage (column.go) directly by position instead
// of materializing rows and walking the AST per tuple.
//
// Semantics are shared with the row interpreter by construction: every scalar
// operation funnels through the same kernels (applyBinary, combineAndOr,
// applyUnary, applyScalarFunc, applyInList, aggAcc in exec.go), and the
// compiler refuses — falling the whole SELECT node back to the row engine —
// any shape where batch evaluation could diverge from tuple-at-a-time
// evaluation, in results or in whether an error is raised. The covered set
// includes table-less SELECTs (one empty seed tuple), SELECT * in non-grouped
// projections (expanded to per-column gathers at compile time), joins without
// an equi-join column (block-wise cross products narrowed by the compiled
// conjuncts, in the row engine's emission order), grouped ORDER BY
// expressions (evaluated per surviving group through the hybrid row
// evaluator, aggregates pre-folded), and correlated subqueries — including
// unqualified free references, resolved through a compile-time mirror of the
// frame chain's scope walk (corrLocals). What remains refused, with the
// fallback reason it is counted under (Stats.VecFallbackReasons):
//
//   - equi-join outer keys that read the joined table itself (the row engine
//     evaluates them with that row unset, which the compiled form cannot
//     represent) — "join-shape";
//   - SELECT * in grouped queries (the representative row may be absent;
//     the row engine pads it per group) — "star";
//   - grouped ORDER BY expressions whose aggregate arguments are not
//     error-free when HAVING could reject the group, and non-grouped ORDER BY
//     expressions that do not compile — "order-by-expr";
//   - correlated subqueries whose free references reach a local table not yet
//     bound at the pipeline stage, resolve into more than two local tables
//     (the memo key packs two positions), or traverse an inner scope the
//     compile-time walk cannot mirror — "subquery";
//   - columns that do not resolve, or resolve ambiguously, within the
//     SELECT's own tables; aggregates outside grouped projections/HAVING,
//     nested aggregates, and malformed calls; non-closed LIMIT expressions;
//     aggregates in lazily-evaluated positions — behind a short-circuited
//     AND/OR right side, or in the projection of a query with HAVING (the
//     row engine skips items of rejected groups) — unless the argument is
//     trivially error-free (the row engine raises the matching errors in
//     every case) — "other".
//
// Within a compiled node, AND/OR evaluate their right operand through
// selection narrowing that mirrors the row engine's short-circuit exactly:
// the right side runs only for batch rows whose left side was not a decisive
// boolean, so both engines evaluate — and raise errors for — the same set of
// (row, subexpression) pairs.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Engine names accepted by DB.SetEngine.
const (
	EngineVector = "vector"
	EngineRow    = "row"
)

// SetEngine selects the SELECT execution engine: EngineVector runs planned
// SELECTs batch-at-a-time over the columnar storage, EngineRow forces the
// tuple-at-a-time interpreter. The engines produce identical results; the
// row engine remains as the verified fallback and A/B baseline. Safe for
// concurrent use; statements already executing finish on the engine they
// started with.
func (db *DB) SetEngine(name string) error {
	switch name {
	case EngineVector:
		db.vecOn.Store(true)
	case EngineRow:
		db.vecOn.Store(false)
	default:
		return fmt.Errorf("sqldb: unknown engine %q (want %q or %q)", name, EngineVector, EngineRow)
	}
	return nil
}

// Engine returns the selected SELECT execution engine.
func (db *DB) Engine() string {
	if db.vecOn.Load() {
		return EngineVector
	}
	return EngineRow
}

// vecBatchSize is the number of seed rows processed per pipeline chunk.
const vecBatchSize = 1024

// Fallback reason labels (Stats.VecFallbackReasons): which refusal criterion
// sent a planned SELECT node back to the row interpreter.
const (
	fbJoinShape = "join-shape"
	fbStar      = "star"
	fbOrderExpr = "order-by-expr"
	fbSubquery  = "subquery"
	fbOther     = "other"
)

// vbatch is one batch of joined row positions: pos[t][i] is the storage
// position, in bound table t, of batch row i. Only the tables bound by the
// pipeline stage being run have position arrays.
type vbatch struct {
	n   int
	pos [][]int32
}

// vcol is the value vector an expression produces over a batch: either one
// constant for every row, or one boxed Value per row. Column loads fill vals
// straight from the typed storage vectors, so the boxes never allocate.
type vcol struct {
	isConst bool
	cval    Value
	vals    []Value
}

func (c *vcol) at(i int) Value {
	if c.isConst {
		return c.cval
	}
	return c.vals[i]
}

func (c *vcol) setConst(v Value) {
	c.isConst = true
	c.cval = v
	c.vals = c.vals[:0]
}

// alloc readies the per-row buffer for n rows, reusing capacity.
func (c *vcol) alloc(n int) []Value {
	c.isConst = false
	if cap(c.vals) < n {
		c.vals = make([]Value, n)
	} else {
		c.vals = c.vals[:n]
	}
	return c.vals
}

// vexpr evaluates one compiled expression over a batch into out. It is only
// called with b.n > 0, so a lazily evaluated constant (a closed subquery, a
// parameter) is touched exactly when the row engine would touch it: when at
// least one row reaches the expression.
type vexpr func(vc *vecCtx, b *vbatch, out *vcol) error

// vecCtx is the per-execution state of one vectorized SELECT: the bound
// tables, a frame mirroring the row engine's (for lazy closed-subquery and
// access-path evaluation through ec.eval — bindings identical, rows nil), and
// scratch buffers reused across chunks.
//
// Contexts are pooled across executions (acquireVecCtx/release): the property
// queries the analyzer emits are mostly point seeks over a handful of rows,
// where per-execution allocation, not per-tuple interpretation, is the cost.
// Nothing in a ResultSet aliases pooled memory — projection copies into fresh
// cell arrays — so releasing on return is safe.
type vecCtx struct {
	ec   *execCtx
	fr   frame
	bts  []*boundTable
	tabs []*Table
	// btStore backs bts so bound tables need no per-execution allocations.
	btStore []boundTable
	// subVals memoizes lazily evaluated closed subexpressions for this
	// execution; inSubs memoizes IN-subquery candidate lists; corrMemo
	// memoizes correlated subexpressions per (expression, local row
	// positions) — see corrSub.
	subVals  map[Expr]Value
	inSubs   map[*EIn][]Value
	corrMemo map[corrKey]Value
	// colPool is a free list of scratch vcols; selBuf is the reusable
	// selection vector of the filter operators; seed and keyBuf are the
	// reusable seed-position and group-key buffers.
	colPool  []*vcol
	selBuf   []int32
	seed     []int32
	chunkBuf []int32
	keyBuf   []byte
	// b and nb are the double-buffered position batches; batchPool is a free
	// list of sub-batches for narrowed AND/OR right-hand sides.
	b, nb     vbatch
	batchPool []*vbatch
	// sg, groupSeq, pre, and argBuf back the grouped tail: the lone group of
	// a scalar aggregation, the finalization order, the aggregate prefold
	// map, and the aggregate-argument column list. idxBuf holds the
	// join-probe indexes for the execution.
	sg       vecGroup
	groupSeq []*vecGroup
	pre      map[*ECall]Value
	argBuf   []*vcol
	idxBuf   []map[string][]int
	// probeBuf is the scratch key buffer of hash-index probes (AppendKey +
	// zero-alloc string(buf) map access); idxPool is a free list of selection
	// index slices for the AND/OR narrowing.
	probeBuf []byte
	idxPool  [][]int32
	// fuseVals holds the per-execution comparand values of the fused filter
	// kernels, one slot per kernel (see vecfuse.go).
	fuseVals []Value
}

var vecCtxPool = sync.Pool{New: func() any { return new(vecCtx) }}

// acquireVecCtx readies a pooled context for an execution over nTab tables.
func acquireVecCtx(ec *execCtx, nTab int) *vecCtx {
	vc := vecCtxPool.Get().(*vecCtx)
	vc.ec = ec
	if cap(vc.btStore) < nTab {
		vc.btStore = make([]boundTable, nTab)
		vc.bts = make([]*boundTable, nTab)
		vc.tabs = make([]*Table, nTab)
		vc.b.pos = make([][]int32, nTab)
		vc.nb.pos = make([][]int32, nTab)
	}
	vc.btStore = vc.btStore[:nTab]
	vc.bts = vc.bts[:nTab]
	vc.tabs = vc.tabs[:nTab]
	vc.b.pos = vc.b.pos[:nTab]
	vc.nb.pos = vc.nb.pos[:nTab]
	for i := range vc.btStore {
		vc.bts[i] = &vc.btStore[i]
	}
	return vc
}

// release clears every pointer that could retain table or statement state and
// returns the context to the pool. Buffer capacities (position batches,
// scratch columns, seed and key buffers) survive for the next execution.
func (vc *vecCtx) release() {
	for i := range vc.btStore {
		vc.btStore[i] = boundTable{}
	}
	for i := range vc.tabs {
		vc.tabs[i] = nil
	}
	vc.ec = nil
	vc.fr = frame{}
	clear(vc.subVals)
	clear(vc.inSubs)
	clear(vc.corrMemo)
	clear(vc.pre)
	for i := range vc.sg.accs {
		vc.sg.accs[i] = aggAcc{}
	}
	vc.sg.hasRep, vc.sg.n = false, 0
	for i := range vc.groupSeq {
		vc.groupSeq[i] = nil
	}
	vc.groupSeq = vc.groupSeq[:0]
	for i := range vc.argBuf {
		vc.argBuf[i] = nil
	}
	vc.argBuf = vc.argBuf[:0]
	for i := range vc.idxBuf {
		vc.idxBuf[i] = nil
	}
	vc.idxBuf = vc.idxBuf[:0]
	for i := range vc.fuseVals {
		vc.fuseVals[i] = Value{}
	}
	vc.fuseVals = vc.fuseVals[:0]
	vc.b.n, vc.nb.n = 0, 0
	vecCtxPool.Put(vc)
}

// corrKey identifies one memoized evaluation of a correlated subexpression:
// the expression node plus the packed storage positions of the local tables
// it reads. Positions are a perfect proxy for row contents — DML never runs
// concurrently with a SELECT (exclusive statement lock).
type corrKey struct {
	e   Expr
	pos uint64
}

func (vc *vecCtx) getCol() *vcol {
	if n := len(vc.colPool); n > 0 {
		c := vc.colPool[n-1]
		vc.colPool = vc.colPool[:n-1]
		return c
	}
	return &vcol{}
}

func (vc *vecCtx) putCol(c *vcol) { vc.colPool = append(vc.colPool, c) }

func (vc *vecCtx) getBatch(ntab int) *vbatch {
	var b *vbatch
	if n := len(vc.batchPool); n > 0 {
		b = vc.batchPool[n-1]
		vc.batchPool = vc.batchPool[:n-1]
	} else {
		b = &vbatch{}
	}
	if cap(b.pos) < ntab {
		b.pos = make([][]int32, ntab)
	}
	b.pos = b.pos[:ntab]
	return b
}

func (vc *vecCtx) putBatch(b *vbatch) {
	b.n = 0
	vc.batchPool = append(vc.batchPool, b)
}

func (vc *vecCtx) getIdx() []int32 {
	if n := len(vc.idxPool); n > 0 {
		s := vc.idxPool[n-1]
		vc.idxPool = vc.idxPool[:n-1]
		return s[:0]
	}
	return nil
}

func (vc *vecCtx) putIdx(s []int32) { vc.idxPool = append(vc.idxPool, s) }

// lazyEval evaluates a closed subexpression once per execution through the
// row engine (sharing its invariant-subquery cache) and memoizes the value.
func (vc *vecCtx) lazyEval(e Expr) (Value, error) {
	if v, ok := vc.subVals[e]; ok {
		return v, nil
	}
	v, err := vc.ec.eval(e, &vc.fr)
	if err != nil {
		return Null, err
	}
	if vc.subVals == nil {
		vc.subVals = make(map[Expr]Value)
	}
	vc.subVals[e] = v
	return v, nil
}

// inCandidates executes a closed IN-subquery once per execution and memoizes
// the candidate list. The row engine re-executes the subquery per tuple; for
// a closed subquery every execution returns the same rows (and the same
// error, if any), so evaluating once is observationally identical.
func (vc *vecCtx) inCandidates(x *EIn) ([]Value, error) {
	if c, ok := vc.inSubs[x]; ok {
		return c, nil
	}
	set, err := vc.ec.execSelect(x.Sub, &vc.fr)
	if err != nil {
		return nil, err
	}
	if len(set.Columns) != 1 {
		return nil, fmt.Errorf("sqldb: IN subquery returns %d columns", len(set.Columns))
	}
	cands := make([]Value, 0, len(set.Rows))
	for _, r := range set.Rows {
		cands = append(cands, r[0])
	}
	if vc.inSubs == nil {
		vc.inSubs = make(map[*EIn][]Value)
	}
	vc.inSubs[x] = cands
	return cands, nil
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

// vecJoin is the compiled form of one join: probe the hash index of the
// joined table with the outer key (eqCol >= 0), or expand the block-wise
// cross product (eqCol < 0, the nested-loop shape), then narrow by the
// residual conjuncts — for a cross product, rest holds every conjunct, and
// narrowing them in order reproduces the row engine's checkConjuncts early
// exit: conjunct k+1 is evaluated exactly for the candidates conjunct k
// passed.
type vecJoin struct {
	eqCol int
	outer vexpr
	rest  []vexpr
}

// vecAgg is one aggregate call site of a grouped SELECT.
type vecAgg struct {
	call *ECall
	name string // upper-cased
	star bool   // COUNT(*)
	arg  vexpr  // nil for COUNT(*)
}

// vecOrderKey is one compiled ORDER BY key: an output-column reference
// (select alias or in-range ordinal), a constant, a compiled expression over
// the final batch (non-grouped), or — in grouped queries — a raw expression
// evaluated per surviving group through the hybrid row evaluator with the
// aggregates pre-folded, exactly where the row engine evaluates it.
type vecOrderKey struct {
	outCol int // >= 0: key is output column outCol
	cval   Value
	ex     vexpr // non-nil: evaluated over the batch
	gx     Expr  // non-nil: evaluated per group (grouped queries)
}

// vecSelectPlan is the compiled physical pipeline of one SELECT node:
// seed (access paths) → join probes → filter → project or group/aggregate.
type vecSelectPlan struct {
	nTab   int
	joins  []vecJoin
	filter vexpr
	// fused is the fused compare-and-select form of the WHERE clause when it
	// is a pure AND-chain of fusable typed comparisons (vecfuse.go); the
	// filter stage runs it instead of the closure chain, falling back to
	// filter when a kernel's comparand does not fit its type class at
	// execution time.
	fused   []vpred
	grouped bool
	// items is the compiled projection (non-grouped only; grouped queries
	// project per group through the hybrid row evaluator with aggPre).
	items []vexpr
	// groupBy and aggs drive the grouped accumulation.
	groupBy []vexpr
	aggs    []vecAgg
	order   []vecOrderKey
	columns []string
}

// vecCompiler carries the compile-time scope of one SELECT node.
type vecCompiler struct {
	p     *stmtPlan
	sp    *selectPlan
	tabs  []*Table
	binds []string
	// reason records the first — most specific — refusal criterion hit while
	// compiling this node (the fb* labels above); consulted when compilation
	// fails, "other" when no site recorded anything sharper.
	reason string
}

// fail records a refusal reason (first one wins) and returns false for use
// in refusal sites.
func (cp *vecCompiler) fail(r string) bool {
	if cp.reason == "" {
		cp.reason = r
	}
	return false
}

// failReason is the reason to report for a failed compilation.
func (cp *vecCompiler) failReason() string {
	if cp.reason == "" {
		return fbOther
	}
	return cp.reason
}

// compileVecSelect builds the vectorized pipeline of one planned SELECT
// node, or returns nil plus the fallback reason when the node's shape is not
// covered (the criteria at the top of this file) and execution stays on the
// row interpreter.
func compileVecSelect(p *stmtPlan, st *SelectStmt, sp *selectPlan) (*vecSelectPlan, string) {
	cp := &vecCompiler{p: p, sp: sp}
	if sp.from != nil {
		cp.tabs = append(cp.tabs, sp.from)
		cp.binds = append(cp.binds, sp.fromBinding)
		for i := range sp.joins {
			cp.tabs = append(cp.tabs, sp.joins[i].table)
			cp.binds = append(cp.binds, sp.joins[i].binding)
		}
	}
	vp := &vecSelectPlan{nTab: len(cp.tabs), grouped: sp.grouped}

	// Joins: an equi-join probes the hash index; without an equi-join column
	// the pipeline expands the block-wise cross product and narrows by every
	// conjunct in order (crossJoin). An equi-join outer key that touches the
	// joined table itself refuses: it is evaluated before the probe, and the
	// row engine evaluates it with the joined row unset, which the compiled
	// form cannot represent.
	for k := range sp.joins {
		jp := &sp.joins[k]
		scope := k + 2 // tables bound while this join runs, joined table included
		vj := vecJoin{eqCol: jp.eqCol}
		if jp.eqCol >= 0 {
			if refsTable(jp.outer, cp, scope, k+1) {
				cp.fail(fbJoinShape)
				return nil, cp.failReason()
			}
			outer, ok := cp.compile(jp.outer, scope)
			if !ok {
				return nil, cp.failReason()
			}
			vj.outer = outer
		}
		for _, c := range jp.rest {
			ce, ok := cp.compile(c, scope)
			if !ok {
				return nil, cp.failReason()
			}
			vj.rest = append(vj.rest, ce)
		}
		vp.joins = append(vp.joins, vj)
	}

	if st.Where != nil {
		f, ok := cp.compile(st.Where, vp.nTab)
		if !ok {
			return nil, cp.failReason()
		}
		vp.filter = f
		vp.fused = cp.fuseFilter(st.Where, vp.nTab)
	}

	if sp.grouped {
		// SELECT * in a grouped query projects the representative row, which
		// may be absent (the row engine pads it per group) — refuse.
		for _, item := range st.Items {
			if item.Star {
				cp.fail(fbStar)
				return nil, cp.failReason()
			}
		}
		if !cp.compileGrouped(st, vp) {
			return nil, cp.failReason()
		}
	} else {
		for _, item := range st.Items {
			if item.Star {
				// Projection-order column gather: one typed load per column
				// of every bound table, in binding order — exactly the row
				// engine's bt.row expansion.
				for t := range cp.tabs {
					for c := range cp.tabs[t].Columns {
						vp.items = append(vp.items, vecColumn(t, c))
					}
				}
				continue
			}
			ex, ok := cp.compile(item.Expr, vp.nTab)
			if !ok {
				return nil, cp.failReason()
			}
			vp.items = append(vp.items, ex)
		}
	}

	// ORDER BY: select aliases and in-range ordinals read the output row
	// (the ordinal range is the *expanded* output width, as the row engine
	// checks it against the projected row); other literals are constant
	// keys; any other expression is compiled over the final batch
	// (non-grouped) or kept raw for per-group evaluation through the hybrid
	// row evaluator (grouped).
	outWidth := len(st.Items)
	if !sp.grouped {
		outWidth = len(vp.items)
	}
	for _, o := range st.OrderBy {
		key, ok := cp.compileOrderKey(o.Expr, st, sp, vp, outWidth)
		if !ok {
			cp.fail(fbOrderExpr)
			return nil, cp.failReason()
		}
		vp.order = append(vp.order, key)
	}

	// LIMIT is evaluated once through the row engine; it must be closed (the
	// row engine evaluates it against whatever frame state the tuple loop
	// left behind — only a closed expression is deterministic there).
	if st.Limit != nil && !cp.closed(st.Limit) {
		return nil, cp.failReason()
	}

	vp.columns = selectColumns(st, cp.tabs)
	return vp, ""
}

// compileGrouped collects the aggregate call sites of the projection and
// HAVING and compiles their arguments and the GROUP BY keys.
func (cp *vecCompiler) compileGrouped(st *SelectStmt, vp *vecSelectPlan) bool {
	for _, g := range st.GroupBy {
		if hasAggregate(g) {
			return false // the row engine raises the error
		}
		ex, ok := cp.compile(g, vp.nTab)
		if !ok {
			return false
		}
		vp.groupBy = append(vp.groupBy, ex)
	}
	// An aggregate in an "eager" position — one the row engine evaluates
	// unconditionally for every group it reaches — may take any compilable
	// argument: both engines then evaluate the argument for the same tuples
	// and raise an error on the same inputs (only which of several
	// simultaneous errors is reported can differ, since accumulation is
	// streamed batch-wise rather than aggregate-by-aggregate). Eagerness is
	// broken by the right side of AND/OR (short-circuit) and, for projection
	// items, by a HAVING clause: groups HAVING rejects never evaluate their
	// items in the row engine, while the pipeline accumulates all aggregates
	// streaming — there the argument must be incapable of erroring.
	for _, item := range st.Items {
		if !cp.collectAggs(item.Expr, vp, st.Having == nil) {
			return false
		}
	}
	if st.Having != nil {
		if !cp.collectAggs(st.Having, vp, true) {
			return false
		}
	}
	return true
}

// collectAggs walks an expression, compiling every aggregate call site into
// vp.aggs. Subqueries are not entered: their aggregates belong to the inner
// SELECT (mirroring hasAggregate). eager tracks whether the row engine
// evaluates this position unconditionally (see compileGrouped). Returns
// false on any shape the grouped pipeline cannot run with
// row-engine-identical behavior.
func (cp *vecCompiler) collectAggs(e Expr, vp *vecSelectPlan, eager bool) bool {
	switch x := e.(type) {
	case nil, *ELit, *EParam, *EColumn, *ESubquery, *EExists:
		return true
	case *EBinary:
		if x.Op == OpAnd || x.Op == OpOr {
			// The left side is always evaluated; the right only when the
			// left is not decisive.
			return cp.collectAggs(x.L, vp, eager) && cp.collectAggs(x.R, vp, false)
		}
		return cp.collectAggs(x.L, vp, eager) && cp.collectAggs(x.R, vp, eager)
	case *EUnary:
		return cp.collectAggs(x.X, vp, eager)
	case *EIsNull:
		return cp.collectAggs(x.X, vp, eager)
	case *EIn:
		// evalIn evaluates the needle and every list element eagerly.
		if !cp.collectAggs(x.X, vp, eager) {
			return false
		}
		for _, a := range x.List {
			if !cp.collectAggs(a, vp, eager) {
				return false
			}
		}
		return true
	case *ECall:
		if !x.IsAggregate() {
			// Scalar functions evaluate all arguments eagerly (evalCall).
			for _, a := range x.Args {
				if !cp.collectAggs(a, vp, eager) {
					return false
				}
			}
			return true
		}
		name := strings.ToUpper(x.Name)
		ag := vecAgg{call: x, name: name}
		if x.Star {
			if name != "COUNT" {
				return false // row engine raises "%s(*) is not valid"
			}
			ag.star = true
			vp.aggs = append(vp.aggs, ag)
			return true
		}
		if len(x.Args) != 1 {
			return false // row engine raises the arity error
		}
		if hasAggregate(x.Args[0]) {
			return false // nested aggregate: row engine rejects it
		}
		if !eager && !cp.aggArgSafe(name, x.Args[0]) {
			return false
		}
		arg, ok := cp.compile(x.Args[0], vp.nTab)
		if !ok {
			return false
		}
		ag.arg = arg
		vp.aggs = append(vp.aggs, ag)
		return true
	}
	return false
}

// aggArgSafe reports whether an aggregate argument can never raise an
// evaluation or accumulation error: a bare column whose declared type fits
// the aggregate (storage is homogeneous by construction), or a literal.
func (cp *vecCompiler) aggArgSafe(name string, e Expr) bool {
	switch x := e.(type) {
	case *ELit:
		if x.Value.IsNull() {
			return true
		}
		if name == "SUM" || name == "AVG" {
			return x.Value.IsNumeric()
		}
		return true
	case *EColumn:
		tab, col, ok := cp.resolveCol(x, len(cp.tabs))
		if !ok {
			return false
		}
		typ := cp.tabs[tab].Columns[col].Type
		if name == "SUM" || name == "AVG" {
			return typ == TInt || typ == TFloat
		}
		return true // MIN/MAX/COUNT over a homogeneous column cannot error
	}
	return false
}

// compileOrderKey compiles one ORDER BY key, mirroring the row engine's
// resolution order: select alias first, then integer ordinal within the
// expanded output width, then plain evaluation (constant for literals).
// Grouped queries keep the raw expression (gx): finalizeGroups evaluates it
// per surviving group through the row evaluator with the aggregates
// pre-folded and the representative row bound — the row engine's exact group
// context — after collecting its aggregate call sites with the same
// eagerness rule as projection items (the row engine evaluates order keys
// only for groups HAVING passes).
func (cp *vecCompiler) compileOrderKey(e Expr, st *SelectStmt, sp *selectPlan, vp *vecSelectPlan, outWidth int) (vecOrderKey, bool) {
	if col, ok := e.(*EColumn); ok && col.Qual == "" {
		if idx, ok := sp.aliases[strings.ToLower(col.Name)]; ok {
			return vecOrderKey{outCol: idx}, true
		}
	}
	if lit, ok := e.(*ELit); ok {
		if lit.Value.IsInt() {
			n := int(lit.Value.Int())
			if n >= 1 && n <= outWidth {
				return vecOrderKey{outCol: n - 1}, true
			}
		}
		return vecOrderKey{outCol: -1, cval: lit.Value}, true
	}
	if vp.grouped {
		if !cp.collectAggs(e, vp, st.Having == nil) {
			return vecOrderKey{}, false
		}
		return vecOrderKey{outCol: -1, gx: e}, true
	}
	ex, ok := cp.compile(e, vp.nTab)
	if !ok {
		return vecOrderKey{}, false
	}
	return vecOrderKey{outCol: -1, ex: ex}, true
}

// resolveCol resolves a column reference against the first ntab bound
// tables, exactly as frame.resolve would within the local scope: qualifier
// filter, ambiguity is a refusal (the row engine raises the error).
func (cp *vecCompiler) resolveCol(x *EColumn, ntab int) (int, int, bool) {
	lqual, lname := x.keys()
	tab, col := -1, -1
	for t := 0; t < ntab; t++ {
		if lqual != "" && cp.binds[t] != lqual {
			continue
		}
		c, ok := cp.tabs[t].colIdx[lname]
		if !ok {
			continue
		}
		if tab >= 0 {
			return 0, 0, false // ambiguous: row engine raises the error
		}
		tab, col = t, c
	}
	if tab < 0 {
		return 0, 0, false // outer reference or unknown: row engine decides
	}
	return tab, col, true
}

// closed reports whether an expression cannot reference any table binding,
// inner or outer — its value is fixed for a whole statement execution.
func (cp *vecCompiler) closed(e Expr) bool {
	fi, ok := cp.p.free[e]
	if !ok {
		fi = &freeInfo{}
		collectFree(e, nil, fi, make(map[string]bool))
	}
	return !fi.unqual && len(fi.quals) == 0
}

// closedSelect is the closed test for a bare SELECT node (IN subqueries).
func closedSelect(st *SelectStmt) bool {
	fi := &freeInfo{}
	collectFreeSelect(st, nil, fi, make(map[string]bool))
	return !fi.unqual && len(fi.quals) == 0
}

// freeOf returns the free-variable analysis of e, reusing the plan's memo
// when available.
func (cp *vecCompiler) freeOf(e Expr) *freeInfo {
	if fi, ok := cp.p.free[e]; ok {
		return fi
	}
	fi := &freeInfo{}
	collectFree(e, nil, fi, make(map[string]bool))
	return fi
}

// corrScope is one inner SELECT's scope during corrLocals's walk: its planned
// tables, visible up to limit — the number of tables the row engine has bound
// at the clause being walked (join-On clauses and access-path seeds run with
// partial frames).
type corrScope struct {
	sp    *selectPlan
	limit int
}

func (sc *corrScope) at(t int) (string, *Table) {
	if t == 0 {
		return sc.sp.fromBinding, sc.sp.from
	}
	jp := &sc.sp.joins[t-1]
	return jp.binding, jp.table
}

// matches counts the visible tables of the scope a reference resolves into,
// mirroring frame.resolve within one scope: qualifier filter plus column
// membership.
func (sc *corrScope) matches(lqual, lname string) int {
	n := 0
	for t := 0; t < sc.limit; t++ {
		bind, tab := sc.at(t)
		if lqual != "" && bind != lqual {
			continue
		}
		if _, has := tab.colIdx[lname]; has {
			n++
		}
	}
	return n
}

// corrLocals computes which local tables (ordinals into cp.tabs) a correlated
// subexpression depends on, by mirroring at compile time the scope walk
// frame.resolve performs at runtime: a reference is tried against each inner
// SELECT scope it is nested under, innermost first — at the partial frame
// width of the clause it appears in — then against the compiling SELECT's own
// tables, and a reference resolving past all of those reaches outer frames,
// which are fixed for a whole execution and carry no dependency. A reference
// that resolves (even ambiguously — delegation raises the row engine's error)
// in an inner scope is not a local dependency. Refuses (ok=false) when a
// local resolution reaches a table not yet bound at pipeline stage ntab, or
// when a nested SELECT has no plan to mirror.
func (cp *vecCompiler) corrLocals(e Expr, ntab int) ([]int, bool) {
	var locals []int
	ok := true
	var scopes []*corrScope

	addLocal := func(t int) {
		for _, have := range locals {
			if have == t {
				return
			}
		}
		locals = append(locals, t)
	}

	resolve := func(x *EColumn) {
		lqual, lname := x.keys()
		for i := len(scopes) - 1; i >= 0; i-- {
			if scopes[i].matches(lqual, lname) > 0 {
				return // resolved within an inner scope
			}
		}
		for t := range cp.tabs {
			if lqual != "" && cp.binds[t] != lqual {
				continue
			}
			if _, has := cp.tabs[t].colIdx[lname]; !has {
				continue
			}
			if t >= ntab {
				ok = false // local table not yet bound at this stage
				return
			}
			addLocal(t)
		}
		// No local match either: the reference reaches an outer frame (or is
		// unknown — the delegated evaluation raises the row engine's error).
	}

	var walk func(e Expr)
	var walkSel func(st *SelectStmt)
	walk = func(e Expr) {
		if !ok || e == nil {
			return
		}
		switch x := e.(type) {
		case *ELit, *EParam:
		case *EColumn:
			resolve(x)
		case *EBinary:
			walk(x.L)
			walk(x.R)
		case *EUnary:
			walk(x.X)
		case *EIsNull:
			walk(x.X)
		case *ECall:
			for _, a := range x.Args {
				walk(a)
			}
		case *ESubquery:
			walkSel(x.Select)
		case *EExists:
			walkSel(x.Select)
		case *EIn:
			walk(x.X)
			for _, a := range x.List {
				walk(a)
			}
			if x.Sub != nil {
				walkSel(x.Sub)
			}
		default:
			ok = false
		}
	}
	walkSel = func(st *SelectStmt) {
		sp := cp.p.selects[st]
		if sp == nil || (st.From != nil && sp.from == nil) {
			ok = false // no plan to mirror resolution against
			return
		}
		full := 0
		if sp.from != nil {
			full = 1 + len(sp.joins)
		}
		sc := &corrScope{sp: sp}
		scopes = append(scopes, sc)
		if sp.from != nil {
			// Access-path seed keys are evaluated with only the first table
			// bound (seedRows); resolve them at that frame width too.
			sc.limit = 1
			for _, ap := range sp.access {
				walk(ap.val)
			}
		}
		for k := range st.Joins {
			sc.limit = k + 2
			walk(st.Joins[k].On)
		}
		sc.limit = full
		for _, item := range st.Items {
			if !item.Star {
				walk(item.Expr)
			}
		}
		walk(st.Where)
		for _, g := range st.GroupBy {
			walk(g)
		}
		walk(st.Having)
		for _, o := range st.OrderBy {
			// A bare name matching a select alias resolves to the output
			// column, not through the frame chain (orderKeys).
			if col, isCol := o.Expr.(*EColumn); isCol && col.Qual == "" {
				if _, alias := sp.aliases[strings.ToLower(col.Name)]; alias {
					continue
				}
			}
			walk(o.Expr)
		}
		walk(st.Limit)
		scopes = scopes[:len(scopes)-1]
	}

	walk(e)
	if !ok {
		return nil, false
	}
	sort.Ints(locals)
	return locals, true
}

// corrSub compiles a correlated subexpression (a subquery, EXISTS, or IN)
// into a vexpr that binds the local rows it depends on and delegates to the
// row evaluator — so semantics, including every error, are the row engine's
// by construction — memoized per distinct combination of local row
// positions. The dependency set comes from corrLocals, a compile-time mirror
// of the frame chain's scope walk, so unqualified references resolve exactly
// as they would at runtime. Free references beyond the local tables resolve
// in *outer* frames, which are fixed for the whole execution, so they do not
// enter the memo key; a reference reaching a local table beyond ntab (not
// yet bound at this pipeline stage) refuses.
//
// The row engine re-evaluates the subexpression per tuple; it is
// deterministic and side-effect free, so per-distinct-row evaluation returns
// the same values and raises an error for the same batches of rows. When
// duplicates exist the evaluation *count* differs, never the outcome.
func (cp *vecCompiler) corrSub(e Expr, ntab int) (vexpr, bool) {
	locals, ok := cp.corrLocals(e, ntab)
	if !ok {
		return nil, cp.fail(fbSubquery)
	}
	if len(locals) > 2 {
		return nil, cp.fail(fbSubquery) // memo key packs at most two positions
	}
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		vals := out.alloc(b.n)
		var views [2][]Row
		for k, t := range locals {
			views[k] = vc.tabs[t].scan()
		}
		for i := 0; i < b.n; i++ {
			key := corrKey{e: e}
			for _, t := range locals {
				key.pos = key.pos<<32 | uint64(uint32(b.pos[t][i]))
			}
			if v, ok := vc.corrMemo[key]; ok {
				vals[i] = v
				continue
			}
			for k, t := range locals {
				vc.bts[t].row = views[k][b.pos[t][i]]
			}
			v, err := vc.ec.eval(e, &vc.fr)
			for _, t := range locals {
				vc.bts[t].row = nil
			}
			if err != nil {
				return err
			}
			if vc.corrMemo == nil {
				vc.corrMemo = make(map[corrKey]Value)
			}
			vc.corrMemo[key] = v
			vals[i] = v
		}
		return nil
	}, true
}

// corrLookup vectorizes the correlated point-lookup shape the ASL property
// compiler emits for attribute dereference:
//
//	(SELECT d.attr FROM Class d WHERE d.id = <expr over local tables>)
//
// a single-table, single-column scalar subquery whose WHERE is exactly one
// equality pinning a column of the inner table to an expression over the
// local batch tables. The row engine runs the full execSelect machinery per
// outer tuple — frames, seeding, a ResultSet — for what is one hash-index
// probe. Here the key side is evaluated batch-at-a-time, then each row does
// the probe plus the same equality recheck the row engine applies after
// index seeding (shared applyBinary kernel, same operand order), so NULL
// keys, duplicate matches, and comparison errors behave identically:
// 0 matches → NULL, n>1 matches → the row engine's cardinality error.
//
// Two nuances route to the generic delegation path (corrSub) at runtime
// rather than diverge: a missing index on the pinned column (the row engine
// would scan), and a key evaluation error (the row engine surfaces it only
// through the per-row recheck, which it never reaches when the inner table
// is empty).
func (cp *vecCompiler) corrLookup(x *ESubquery, ntab int) (vexpr, bool) {
	st := x.Select
	if st.From == nil || len(st.Joins) != 0 || st.Where == nil ||
		len(st.GroupBy) != 0 || st.Having != nil || len(st.OrderBy) != 0 ||
		st.Limit != nil || len(st.Items) != 1 || st.Items[0].Star {
		return nil, false
	}
	sub := cp.p.selects[st]
	if sub == nil || sub.from == nil {
		return nil, false
	}
	t, binding := sub.from, sub.fromBinding
	itemCol, ok := subTableCol(st.Items[0].Expr, binding, t)
	if !ok {
		return nil, false
	}
	eq, ok := st.Where.(*EBinary)
	if !ok || eq.Op != OpEq {
		return nil, false
	}
	keyCol, keyExpr, colIsLeft := -1, Expr(nil), false
	if c, ok := subTableCol(eq.L, binding, t); ok {
		keyCol, keyExpr, colIsLeft = c, eq.R, true
	} else if c, ok := subTableCol(eq.R, binding, t); ok {
		keyCol, keyExpr, colIsLeft = c, eq.L, false
	}
	if keyCol < 0 {
		return nil, false
	}
	// The key must vectorize over the local tables alone; references into
	// the inner scope (or unqualified names, which the inner scope could
	// shadow) would compile against the wrong tables.
	fi := cp.freeOf(keyExpr)
	if fi.unqual {
		return nil, false
	}
	for _, q := range fi.quals {
		if q == binding {
			return nil, false
		}
	}
	kx, ok := cp.compile(keyExpr, ntab)
	if !ok {
		return nil, false
	}
	slow, ok := cp.corrSub(x, ntab)
	if !ok {
		return nil, false
	}
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		// Grab the probe index once per batch: index mutations happen only
		// under the exclusive DB statement lock, which excludes SELECTs.
		t.mu.RLock()
		idx := t.indexes[keyCol]
		t.mu.RUnlock()
		if idx == nil {
			return slow(vc, b, out)
		}
		kc := vc.getCol()
		defer vc.putCol(kc)
		if err := kx(vc, b, kc); err != nil {
			return slow(vc, b, out)
		}
		vals := out.alloc(b.n)
		for i := 0; i < b.n; i++ {
			kv := kc.at(i)
			vc.probeBuf = kv.AppendKey(vc.probeBuf[:0])
			positions := idx[string(vc.probeBuf)]
			nmatch, matched := 0, -1
			for _, p := range positions {
				sv := t.cols[keyCol].value(p)
				var eqv Value
				var err error
				if colIsLeft {
					eqv, err = applyBinary(OpEq, sv, kv)
				} else {
					eqv, err = applyBinary(OpEq, kv, sv)
				}
				if err != nil {
					return err
				}
				if !eqv.IsNull() && eqv.Bool() {
					nmatch++
					matched = p
				}
			}
			switch nmatch {
			case 0:
				vals[i] = Null
			case 1:
				vals[i] = t.cols[itemCol].value(matched)
			default:
				return fmt.Errorf("sqldb: scalar subquery returned %d rows", nmatch)
			}
		}
		return nil
	}, true
}

// subTableCol resolves an expression as a plain column of the subquery's own
// table: qualified by its binding, or unqualified with the name present in
// the table (the inner scope wins resolution in both engines).
func subTableCol(e Expr, binding string, t *Table) (int, bool) {
	x, ok := e.(*EColumn)
	if !ok {
		return 0, false
	}
	lqual, lname := x.keys()
	if lqual != "" && lqual != binding {
		return 0, false
	}
	c, ok := t.colIdx[lname]
	return c, ok
}

// refsTable reports whether the expression references the bound table with
// ordinal tab (used to refuse outer keys that read the joined table).
func refsTable(e Expr, cp *vecCompiler, ntab, tab int) bool {
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		if found {
			return
		}
		switch x := e.(type) {
		case *EColumn:
			if t, _, ok := cp.resolveCol(x, ntab); ok && t == tab {
				found = true
			}
		case *EBinary:
			walk(x.L)
			walk(x.R)
		case *EUnary:
			walk(x.X)
		case *ECall:
			for _, a := range x.Args {
				walk(a)
			}
		case *EIsNull:
			walk(x.X)
		case *EIn:
			walk(x.X)
			for _, a := range x.List {
				walk(a)
			}
		}
	}
	walk(e)
	return found
}

// compile builds the vexpr of one expression over the first ntab bound
// tables, or reports that the shape is not covered.
func (cp *vecCompiler) compile(e Expr, ntab int) (vexpr, bool) {
	switch x := e.(type) {
	case *ELit:
		v := x.Value
		return func(vc *vecCtx, b *vbatch, out *vcol) error {
			out.setConst(v)
			return nil
		}, true
	case *EParam:
		return func(vc *vecCtx, b *vbatch, out *vcol) error {
			v, err := vc.ec.eval(x, &vc.fr)
			if err != nil {
				return err
			}
			out.setConst(v)
			return nil
		}, true
	case *EColumn:
		tab, col, ok := cp.resolveCol(x, ntab)
		if !ok {
			return nil, false
		}
		return vecColumn(tab, col), true
	case *EUnary:
		child, ok := cp.compile(x.X, ntab)
		if !ok {
			return nil, false
		}
		return vecUnary(x.Neg, child), true
	case *EBinary:
		l, ok := cp.compile(x.L, ntab)
		if !ok {
			return nil, false
		}
		r, ok := cp.compile(x.R, ntab)
		if !ok {
			return nil, false
		}
		if x.Op == OpAnd || x.Op == OpOr {
			return vecAndOr(x.Op, l, r), true
		}
		return vecBinary(x.Op, l, r), true
	case *EIsNull:
		child, ok := cp.compile(x.X, ntab)
		if !ok {
			return nil, false
		}
		not := x.Not
		return func(vc *vecCtx, b *vbatch, out *vcol) error {
			c := vc.getCol()
			defer vc.putCol(c)
			if err := child(vc, b, c); err != nil {
				return err
			}
			if c.isConst {
				out.setConst(NewBool(c.cval.IsNull() != not))
				return nil
			}
			vals := out.alloc(b.n)
			for i := 0; i < b.n; i++ {
				vals[i] = NewBool(c.vals[i].IsNull() != not)
			}
			return nil
		}, true
	case *ECall:
		if x.IsAggregate() {
			// Aggregates are handled by the grouped pipeline (collectAggs);
			// anywhere else the row engine raises the matching error.
			return nil, false
		}
		args := make([]vexpr, len(x.Args))
		for i, a := range x.Args {
			ae, ok := cp.compile(a, ntab)
			if !ok {
				return nil, false
			}
			args[i] = ae
		}
		return vecCall(x.Name, args), true
	case *ESubquery:
		if cp.closed(x) {
			return vecLazy(x), true
		}
		if ve, ok := cp.corrLookup(x, ntab); ok {
			return ve, true
		}
		return cp.corrSub(x, ntab)
	case *EExists:
		if cp.closed(x) {
			return vecLazy(x), true
		}
		return cp.corrSub(x, ntab)
	case *EIn:
		if x.Sub != nil && !closedSelect(x.Sub) {
			// Correlated IN subquery: delegate the whole node per distinct
			// local row (the needle is re-evaluated with it).
			return cp.corrSub(x, ntab)
		}
		xe, ok := cp.compile(x.X, ntab)
		if !ok {
			return nil, false
		}
		if x.Sub != nil {
			return vecInSub(x, xe), true
		}
		list := make([]vexpr, len(x.List))
		for i, a := range x.List {
			ae, ok := cp.compile(a, ntab)
			if !ok {
				return nil, false
			}
			list[i] = ae
		}
		return vecInList(xe, list, x.Not), true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Compiled operators
// ---------------------------------------------------------------------------

// vecColumn loads a column of bound table tab for every batch row, straight
// from the typed storage vectors.
func vecColumn(tab, col int) vexpr {
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		cv := vc.tabs[tab].cols[col]
		pos := b.pos[tab]
		vals := out.alloc(b.n)
		switch cv.typ {
		case TInt:
			for i, p := range pos {
				if cv.nulls.get(int(p)) {
					vals[i] = Value{}
				} else {
					vals[i] = Value{kind: kindInt, i: cv.ints[p]}
				}
			}
		case TBool:
			for i, p := range pos {
				if cv.nulls.get(int(p)) {
					vals[i] = Value{}
				} else {
					vals[i] = Value{kind: kindBool, i: cv.ints[p]}
				}
			}
		case TFloat:
			for i, p := range pos {
				if cv.nulls.get(int(p)) {
					vals[i] = Value{}
				} else {
					vals[i] = Value{kind: kindFloat, f: cv.flts[p]}
				}
			}
		case TText:
			for i, p := range pos {
				if cv.nulls.get(int(p)) {
					vals[i] = Value{}
				} else {
					vals[i] = Value{kind: kindText, s: cv.strs[p]}
				}
			}
		}
		return nil
	}
}

func vecUnary(neg bool, child vexpr) vexpr {
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		c := vc.getCol()
		defer vc.putCol(c)
		if err := child(vc, b, c); err != nil {
			return err
		}
		if c.isConst {
			v, err := applyUnary(neg, c.cval)
			if err != nil {
				return err
			}
			out.setConst(v)
			return nil
		}
		vals := out.alloc(b.n)
		for i := 0; i < b.n; i++ {
			v, err := applyUnary(neg, c.vals[i])
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return nil
	}
}

// vecBinary evaluates a non-logical binary operator: both sides fully, then
// the shared kernel per row — the same evaluation set as the row engine,
// which has no short-circuit for these operators. Comparisons against a
// constant take a typed fast path that bypasses the kernel's double dispatch
// while reproducing Compare exactly.
func vecBinary(op BinOp, l, r vexpr) vexpr {
	cmp := op == OpEq || op == OpNeq || op == OpLt || op == OpLeq || op == OpGt || op == OpGeq
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		lc := vc.getCol()
		defer vc.putCol(lc)
		if err := l(vc, b, lc); err != nil {
			return err
		}
		rc := vc.getCol()
		defer vc.putCol(rc)
		if err := r(vc, b, rc); err != nil {
			return err
		}
		if lc.isConst && rc.isConst {
			v, err := applyBinary(op, lc.cval, rc.cval)
			if err != nil {
				return err
			}
			out.setConst(v)
			return nil
		}
		vals := out.alloc(b.n)
		if cmp && rc.isConst && !rc.cval.IsNull() {
			if done, err := cmpColConst(op, lc.vals, rc.cval, vals); done {
				return err
			}
		}
		for i := 0; i < b.n; i++ {
			v, err := applyBinary(op, lc.at(i), rc.at(i))
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return nil
	}
}

// cmpColConst compares a value vector against a non-NULL constant without
// per-row kernel dispatch. It handles the homogeneous cases — numeric vs
// numeric and text vs text (modulo NULLs) — and reports done=false when a
// row needs the full kernel (mixed types, error cases), which then re-runs
// the whole batch through applyBinary.
func cmpColConst(op BinOp, lv []Value, rv Value, out []Value) (bool, error) {
	sign := func(cmp int) bool {
		switch op {
		case OpEq:
			return cmp == 0
		case OpNeq:
			return cmp != 0
		case OpLt:
			return cmp < 0
		case OpLeq:
			return cmp <= 0
		case OpGt:
			return cmp > 0
		}
		return cmp >= 0
	}
	switch {
	case rv.IsNumeric():
		rf := rv.Float()
		for i, v := range lv {
			switch v.kind {
			case kindNull:
				out[i] = Value{}
			case kindInt:
				lf := float64(v.i)
				out[i] = NewBool(sign(b2i(lf > rf) - b2i(lf < rf)))
			case kindFloat:
				out[i] = NewBool(sign(b2i(v.f > rf) - b2i(v.f < rf)))
			default:
				return false, nil
			}
		}
		return true, nil
	case rv.IsText():
		rs := rv.Text()
		for i, v := range lv {
			switch v.kind {
			case kindNull:
				out[i] = Value{}
			case kindText:
				out[i] = NewBool(sign(strings.Compare(v.s, rs)))
			default:
				return false, nil
			}
		}
		return true, nil
	}
	return false, nil
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// vecAndOr evaluates AND/OR with selection narrowing that mirrors the row
// engine's short-circuit exactly: the right operand runs only over the batch
// rows whose left value did not decide the result (a decisive boolean —
// false for AND, true for OR), so both engines evaluate the same set of
// (row, subexpression) pairs and surface the same errors.
func vecAndOr(op BinOp, l, r vexpr) vexpr {
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		lc := vc.getCol()
		defer vc.putCol(lc)
		if err := l(vc, b, lc); err != nil {
			return err
		}
		if lc.isConst {
			if decided, v := logicalShortCircuit(op, lc.cval); decided {
				out.setConst(v)
				return nil
			}
			// Undecided for every row: evaluate R over the whole batch.
			rc := vc.getCol()
			defer vc.putCol(rc)
			if err := r(vc, b, rc); err != nil {
				return err
			}
			if rc.isConst {
				v, err := combineAndOr(op, lc.cval, rc.cval)
				if err != nil {
					return err
				}
				out.setConst(v)
				return nil
			}
			vals := out.alloc(b.n)
			for i := 0; i < b.n; i++ {
				v, err := combineAndOr(op, lc.cval, rc.vals[i])
				if err != nil {
					return err
				}
				vals[i] = v
			}
			return nil
		}

		vals := out.alloc(b.n)
		// First pass: decide what the left side alone decides.
		sub := vc.getBatch(len(b.pos))
		defer vc.putBatch(sub)
		subIdx := vc.getIdx()
		defer func() { vc.putIdx(subIdx) }()
		for i := 0; i < b.n; i++ {
			if decided, v := logicalShortCircuit(op, lc.vals[i]); decided {
				vals[i] = v
				continue
			}
			subIdx = append(subIdx, int32(i))
		}
		if len(subIdx) == 0 {
			return nil
		}
		rc := vc.getCol()
		defer vc.putCol(rc)
		if len(subIdx) == b.n {
			// No row decided by the left side alone — the common case after
			// an index seed. Evaluate R over the batch as-is, skipping the
			// sub-batch gather.
			if err := r(vc, b, rc); err != nil {
				return err
			}
			for i := 0; i < b.n; i++ {
				v, err := combineAndOr(op, lc.vals[i], rc.at(i))
				if err != nil {
					return err
				}
				vals[i] = v
			}
			return nil
		}
		gatherBatch(sub, b, subIdx)
		if err := r(vc, sub, rc); err != nil {
			return err
		}
		for k, i := range subIdx {
			v, err := combineAndOr(op, lc.vals[i], rc.at(k))
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return nil
	}
}

func vecCall(name string, args []vexpr) vexpr {
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		cols := make([]*vcol, len(args))
		for i, a := range args {
			c := vc.getCol()
			cols[i] = c
			if err := a(vc, b, c); err != nil {
				for _, cc := range cols[:i+1] {
					vc.putCol(cc)
				}
				return err
			}
		}
		defer func() {
			for _, c := range cols {
				vc.putCol(c)
			}
		}()
		argBuf := make([]Value, len(args))
		vals := out.alloc(b.n)
		for i := 0; i < b.n; i++ {
			for j, c := range cols {
				argBuf[j] = c.at(i)
			}
			v, err := applyScalarFunc(name, argBuf)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return nil
	}
}

// vecLazy evaluates a closed subexpression (scalar subquery, EXISTS) lazily:
// once per execution, on the first batch that reaches it, through the row
// engine — sharing the statement-wide invariant-subquery cache.
func vecLazy(e Expr) vexpr {
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		v, err := vc.lazyEval(e)
		if err != nil {
			return err
		}
		out.setConst(v)
		return nil
	}
}

func vecInSub(x *EIn, xe vexpr) vexpr {
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		lc := vc.getCol()
		defer vc.putCol(lc)
		if err := xe(vc, b, lc); err != nil {
			return err
		}
		cands, err := vc.inCandidates(x)
		if err != nil {
			return err
		}
		if lc.isConst {
			v, err := applyInList(lc.cval, cands, x.Not)
			if err != nil {
				return err
			}
			out.setConst(v)
			return nil
		}
		vals := out.alloc(b.n)
		for i := 0; i < b.n; i++ {
			v, err := applyInList(lc.vals[i], cands, x.Not)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return nil
	}
}

func vecInList(xe vexpr, list []vexpr, not bool) vexpr {
	return func(vc *vecCtx, b *vbatch, out *vcol) error {
		lc := vc.getCol()
		defer vc.putCol(lc)
		if err := xe(vc, b, lc); err != nil {
			return err
		}
		cols := make([]*vcol, len(list))
		for i, a := range list {
			c := vc.getCol()
			cols[i] = c
			if err := a(vc, b, c); err != nil {
				for _, cc := range cols[:i+1] {
					vc.putCol(cc)
				}
				return err
			}
		}
		defer func() {
			for _, c := range cols {
				vc.putCol(c)
			}
		}()
		cands := make([]Value, len(list))
		vals := out.alloc(b.n)
		for i := 0; i < b.n; i++ {
			for j, c := range cols {
				cands[j] = c.at(i)
			}
			v, err := applyInList(lc.at(i), cands, not)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return nil
	}
}

// gatherBatch fills dst with the rows of src selected by idx.
func gatherBatch(dst *vbatch, src *vbatch, idx []int32) {
	dst.n = len(idx)
	for t := range src.pos {
		if src.pos[t] == nil {
			dst.pos[t] = nil
			continue
		}
		col := dst.pos[t][:0]
		if cap(col) < len(idx) {
			col = make([]int32, 0, len(idx))
		}
		for _, i := range idx {
			col = append(col, src.pos[t][i])
		}
		dst.pos[t] = col
	}
}
