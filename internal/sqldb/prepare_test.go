package sqldb

import (
	"fmt"
	"sync"
	"testing"
)

func prepDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE runs (id INTEGER PRIMARY KEY, nope INTEGER)`, nil)
	db.MustExec(`CREATE TABLE times (id INTEGER PRIMARY KEY, run_id INTEGER, v REAL)`, nil)
	db.MustExec(`INSERT INTO runs (id, nope) VALUES (1, 2), (2, 8), (3, 32)`, nil)
	db.MustExec(`INSERT INTO times (id, run_id, v) VALUES
		(10, 1, 1.0), (11, 2, 2.0), (12, 3, 4.0)`, nil)
	return db
}

func TestPreparedSelectMatchesExec(t *testing.T) {
	db := prepDB(t)
	q := `SELECT r.nope, (SELECT t.v FROM times t WHERE t.run_id = r.id) AS v
		FROM runs r WHERE r.id >= $min ORDER BY r.nope DESC`
	params := &Params{Named: map[string]Value{"min": NewInt(2)}}
	want, err := db.Exec(q, params)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	got, err := ps.Execute(params)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Set) != fmt.Sprint(want.Set) {
		t.Fatalf("prepared result differs:\n%v\n%v", got.Set, want.Set)
	}
}

func TestPreparedRebindsFreshParams(t *testing.T) {
	db := prepDB(t)
	ps, err := db.Prepare(`SELECT v FROM times WHERE run_id = $r`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	for r, want := range map[int64]float64{1: 1.0, 2: 2.0, 3: 4.0} {
		res, err := ps.Execute(&Params{Named: map[string]Value{"r": NewInt(r)}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Set.Rows[0][0].Float() != want {
			t.Fatalf("run %d: got %v, want %g", r, res.Set.Rows[0][0], want)
		}
	}
}

func TestPreparedInvariantSubqueryNotSharedAcrossExecutions(t *testing.T) {
	db := prepDB(t)
	// The invariant-subquery result cache must be per execution: the same
	// prepared handle with different parameters must not reuse values.
	ps, err := db.Prepare(`SELECT (SELECT v FROM times WHERE run_id = $r) AS v`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	first, err := ps.Execute(&Params{Named: map[string]Value{"r": NewInt(2)}})
	if err != nil {
		t.Fatal(err)
	}
	second, err := ps.Execute(&Params{Named: map[string]Value{"r": NewInt(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if first.Set.Rows[0][0].Float() != 2.0 || second.Set.Rows[0][0].Float() != 4.0 {
		t.Fatalf("stale subquery cache: %v then %v", first.Set.Rows[0][0], second.Set.Rows[0][0])
	}
}

func TestPreparedWriteStatements(t *testing.T) {
	db := prepDB(t)
	ins, err := db.Prepare(`INSERT INTO runs (id, nope) VALUES ($id, $n)`)
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	for i := int64(4); i <= 6; i++ {
		res, err := ins.Execute(&Params{Named: map[string]Value{"id": NewInt(i), "n": NewInt(i * 10)}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Affected != 1 {
			t.Fatalf("insert affected %d", res.Affected)
		}
	}
	upd, err := db.Prepare(`UPDATE runs SET nope = nope + 1 WHERE id = $id`)
	if err != nil {
		t.Fatal(err)
	}
	defer upd.Close()
	if _, err := upd.Execute(&Params{Named: map[string]Value{"id": NewInt(4)}}); err != nil {
		t.Fatal(err)
	}
	del, err := db.Prepare(`DELETE FROM runs WHERE id = $id`)
	if err != nil {
		t.Fatal(err)
	}
	defer del.Close()
	if res, _ := del.Execute(&Params{Named: map[string]Value{"id": NewInt(6)}}); res.Affected != 1 {
		t.Fatal("delete missed")
	}
	res := db.MustExec(`SELECT nope FROM runs WHERE id >= 4 ORDER BY id`, nil)
	if len(res.Set.Rows) != 2 || res.Set.Rows[0][0].Int() != 41 || res.Set.Rows[1][0].Int() != 50 {
		t.Fatalf("rows after prepared writes: %v", res.Set.Rows)
	}
}

func TestPrepareUnknownTableFails(t *testing.T) {
	db := prepDB(t)
	if _, err := db.Prepare(`SELECT * FROM missing`); err == nil {
		t.Fatal("prepare against missing table succeeded")
	}
	if _, err := db.Prepare(`INSERT INTO missing (x) VALUES (1)`); err == nil {
		t.Fatal("prepare INSERT against missing table succeeded")
	}
}

func TestPreparedClosedHandleFails(t *testing.T) {
	db := prepDB(t)
	ps, err := db.Prepare(`SELECT COUNT(*) FROM runs`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := ps.Execute(nil); err == nil {
		t.Fatal("execute after close succeeded")
	}
}

// TestPreparedPlanRebuiltAfterCreateIndex: a plan built before CREATE INDEX
// must be rebuilt so it can use the new index, and keep returning correct
// rows either way.
func TestPreparedPlanRebuiltAfterCreateIndex(t *testing.T) {
	db := prepDB(t)
	ps, err := db.Prepare(`SELECT v FROM times WHERE run_id = $r`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	exec := func(r int64) float64 {
		res, err := ps.Execute(&Params{Named: map[string]Value{"r": NewInt(r)}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Set.Rows[0][0].Float()
	}
	if exec(2) != 2.0 {
		t.Fatal("pre-index result wrong")
	}
	before := db.Stats().Replans
	db.MustExec(`CREATE INDEX idx_times_run ON times (run_id)`, nil)
	if exec(3) != 4.0 {
		t.Fatal("post-index result wrong")
	}
	if db.Stats().Replans <= before {
		t.Fatal("CREATE INDEX did not invalidate the plan")
	}
	// The rebuilt plan must actually use the index for the point lookup.
	plan := ps.plan.Load()
	sp := plan.selects[plan.stmt.(*SelectStmt)]
	if len(sp.access) == 0 {
		t.Fatal("rebuilt plan has no access path")
	}
	tbl := db.Table("times")
	if !tbl.hasIndex(sp.access[0].col) {
		t.Fatal("access-path column is not indexed after CREATE INDEX")
	}
}

// TestPreparedPlanAfterDropAndRecreate: a prepared handle must fail cleanly
// while its table is dropped and bind to the new table after re-creation;
// cached SELECT plans must never serve rows of the dropped table.
func TestPreparedPlanAfterDropAndRecreate(t *testing.T) {
	db := prepDB(t)
	ps, err := db.Prepare(`SELECT nope FROM runs ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if res, err := ps.Execute(nil); err != nil || len(res.Set.Rows) != 3 {
		t.Fatalf("pre-drop: %v, %v", res, err)
	}
	db.MustExec(`DROP TABLE runs`, nil)
	if _, err := ps.Execute(nil); err == nil {
		t.Fatal("execute against dropped table succeeded")
	}
	db.MustExec(`CREATE TABLE runs (id INTEGER PRIMARY KEY, nope INTEGER)`, nil)
	db.MustExec(`INSERT INTO runs (id, nope) VALUES (9, 900)`, nil)
	res, err := ps.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) != 1 || res.Set.Rows[0][0].Int() != 900 {
		t.Fatalf("stale rows after re-create: %v", res.Set.Rows)
	}
}

// TestExecPlanCacheInvalidation covers the ad-hoc path: Exec's cached plan
// must be rebuilt, not reused, across DDL.
func TestExecPlanCacheInvalidation(t *testing.T) {
	db := prepDB(t)
	q := `SELECT COUNT(*) FROM runs`
	if db.MustExec(q, nil).Set.Rows[0][0].Int() != 3 {
		t.Fatal("seed count wrong")
	}
	db.MustExec(`DROP TABLE runs`, nil)
	if _, err := db.Exec(q, nil); err == nil {
		t.Fatal("cached plan served a dropped table")
	}
	db.MustExec(`CREATE TABLE runs (id INTEGER PRIMARY KEY, nope INTEGER)`, nil)
	if db.MustExec(q, nil).Set.Rows[0][0].Int() != 0 {
		t.Fatal("cached plan shows stale rows after re-create")
	}
}

func TestPlanCacheHitsAndEvictions(t *testing.T) {
	db := prepDB(t)
	db.SetPlanCacheSize(2)
	base := db.Stats()
	db.MustExec(`SELECT 1`, nil)
	db.MustExec(`SELECT 1`, nil)
	db.MustExec(`SELECT 1`, nil)
	st := db.Stats()
	if hits := st.PlanCacheHits - base.PlanCacheHits; hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	db.MustExec(`SELECT 2`, nil)
	db.MustExec(`SELECT 3`, nil) // evicts SELECT 1
	st = db.Stats()
	if st.PlanCacheEntries != 2 {
		t.Fatalf("entries = %d, want 2", st.PlanCacheEntries)
	}
	if st.PlanCacheEvictions-base.PlanCacheEvictions == 0 {
		t.Fatal("no eviction recorded")
	}
	db.MustExec(`SELECT 1`, nil) // miss again after eviction
	if db.Stats().PlanCacheMisses == st.PlanCacheMisses {
		t.Fatal("re-execution of evicted statement did not miss")
	}
}

// TestExecKeepsLazySubquerySemantics: ad-hoc Exec must behave identically
// with and without the plan cache. Planning validates every referenced table
// eagerly, but a subquery over a missing table that is never evaluated (the
// outer table is empty) succeeded before the cache existed — Exec falls back
// to the dynamic path when planning fails. Explicit Prepare stays strict.
func TestExecKeepsLazySubquerySemantics(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INTEGER)`, nil)
	q := `SELECT a FROM t WHERE a = (SELECT a FROM missing)`
	if _, err := db.Exec(q, nil); err != nil {
		t.Fatalf("cached path: %v", err)
	}
	db.SetPlanCacheSize(0)
	if _, err := db.Exec(q, nil); err != nil {
		t.Fatalf("dynamic path: %v", err)
	}
	if _, err := db.Prepare(q); err == nil {
		t.Fatal("Prepare must validate referenced tables eagerly")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := prepDB(t)
	db.SetPlanCacheSize(0)
	base := db.Stats()
	db.MustExec(`SELECT 1`, nil)
	db.MustExec(`SELECT 1`, nil)
	st := db.Stats()
	if st.PlanCacheHits != base.PlanCacheHits || st.PlanCacheEntries != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", st)
	}
}

func TestPreparedLiveCount(t *testing.T) {
	db := prepDB(t)
	if n := db.Stats().PreparedLive; n != 0 {
		t.Fatalf("initial live = %d", n)
	}
	a, _ := db.Prepare(`SELECT 1`)
	b, _ := db.Prepare(`SELECT 2`)
	if n := db.Stats().PreparedLive; n != 2 {
		t.Fatalf("live = %d, want 2", n)
	}
	a.Close()
	b.Close()
	b.Close() // double close must not double-decrement
	if n := db.Stats().PreparedLive; n != 0 {
		t.Fatalf("live after close = %d, want 0", n)
	}
}

// TestPlanCacheEvictionDoesNotBreakInFlightExec: with a tiny cache and many
// distinct statements, an Exec whose cached plan is evicted mid-flight by
// another goroutine must still succeed (evicted plans are dropped, never
// closed). Run with -race.
func TestPlanCacheEvictionDoesNotBreakInFlightExec(t *testing.T) {
	db := prepDB(t)
	db.SetPlanCacheSize(1)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				// Alternate between a shared hot statement and per-iteration
				// distinct texts that churn the one-slot cache.
				q := `SELECT COUNT(*) FROM runs`
				if i%2 == w%2 {
					q = fmt.Sprintf(`SELECT COUNT(*) + %d - %d FROM runs`, w, i)
				}
				if _, err := db.Exec(q, nil); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := db.Stats(); st.PlanCacheEvictions == 0 {
		t.Fatal("test exercised no evictions")
	}
}

// TestPreparedConcurrentExecution hammers one handle from many goroutines;
// run with -race. Results must be correct on every goroutine.
func TestPreparedConcurrentExecution(t *testing.T) {
	db := prepDB(t)
	ps, err := db.Prepare(`SELECT r.nope, (SELECT t.v FROM times t WHERE t.run_id = r.id) AS v
		FROM runs r WHERE r.id = $r`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r := int64(1 + (w+i)%3)
				res, err := ps.Execute(&Params{Named: map[string]Value{"r": NewInt(r)}})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Set.Rows) != 1 {
					errs <- fmt.Errorf("run %d: %d rows", r, len(res.Set.Rows))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPreparedConcurrentWithDDL interleaves executions with index creation;
// executions may see the plan before or after, but must never fail or race.
func TestPreparedConcurrentWithDDL(t *testing.T) {
	db := prepDB(t)
	ps, err := db.Prepare(`SELECT v FROM times WHERE run_id = $r`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		db.MustExec(`CREATE INDEX idx_ddl_race ON times (run_id)`, nil)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := ps.Execute(&Params{Named: map[string]Value{"r": NewInt(int64(1 + i%3))}}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
