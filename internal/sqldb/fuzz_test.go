package sqldb

// Fuzzing the result-cache parameter fingerprint. The cache keys an entry by
// plan + fingerprintParams(params); a collision between two semantically
// different parameter sets would serve one request's cached rows to another —
// cross-request data bleed. The fingerprint must therefore be deterministic
// and injective over every parameter set the engine can see (named parameters
// are SQL identifiers: the parser only produces [A-Za-z0-9_] names).
//
// The fuzzer decodes two parameter sets from raw bytes and checks both
// directions: equal sets fingerprint equally, different sets differently.

import (
	"math"
	"sort"
	"testing"
)

// paramReader deterministically decodes fuzz bytes into parameter sets.
type paramReader struct {
	data []byte
	pos  int
}

func (r *paramReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *paramReader) uint64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(r.byte())
	}
	return v
}

func (r *paramReader) value() Value {
	switch r.byte() % 5 {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.uint64()))
	case 2:
		f := math.Float64frombits(r.uint64())
		if math.IsNaN(f) {
			// NaN payloads all render as "NaN"; the engine never produces
			// NaN bindings, so fold them out instead of "finding" them.
			f = 0
		}
		return NewFloat(f)
	case 3:
		n := int(r.byte() % 16)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = r.byte()
		}
		return NewText(string(buf))
	default:
		return NewBool(r.byte()%2 == 1)
	}
}

const identChars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"

func (r *paramReader) ident() string {
	n := int(r.byte()%6) + 1
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = identChars[int(r.byte())%len(identChars)]
	}
	return string(buf)
}

func (r *paramReader) params() *Params {
	if r.byte()%8 == 0 {
		return nil
	}
	p := &Params{}
	for i := int(r.byte() % 5); i > 0; i-- {
		p.Positional = append(p.Positional, r.value())
	}
	if n := int(r.byte() % 4); n > 0 {
		p.Named = make(map[string]Value)
		for i := 0; i < n; i++ {
			p.Named[r.ident()] = r.value()
		}
	}
	return p
}

// sameValue is identity under the fingerprint's contract: types distinct
// (int 1 ≠ float 1.0), floats by bit pattern (0.0 ≠ -0.0).
func sameValue(a, b Value) bool {
	switch {
	case a.IsNull():
		return b.IsNull()
	case a.IsInt():
		return b.IsInt() && a.Int() == b.Int()
	case a.IsNumeric():
		return !b.IsNull() && !b.IsInt() && b.IsNumeric() &&
			math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case a.IsText():
		return b.IsText() && a.Text() == b.Text()
	default:
		return !b.IsNull() && !b.IsInt() && !b.IsNumeric() && !b.IsText() && a.Bool() == b.Bool()
	}
}

func sameParams(a, b *Params) bool {
	aEmpty := a == nil || (len(a.Positional) == 0 && len(a.Named) == 0)
	bEmpty := b == nil || (len(b.Positional) == 0 && len(b.Named) == 0)
	if aEmpty || bEmpty {
		return aEmpty == bEmpty
	}
	if len(a.Positional) != len(b.Positional) || len(a.Named) != len(b.Named) {
		return false
	}
	for i := range a.Positional {
		if !sameValue(a.Positional[i], b.Positional[i]) {
			return false
		}
	}
	for name, av := range a.Named {
		bv, ok := b.Named[name]
		if !ok || !sameValue(av, bv) {
			return false
		}
	}
	return true
}

func describeParams(p *Params) string {
	if p == nil {
		return "<nil>"
	}
	var out string
	for _, v := range p.Positional {
		out += v.Key() + "|"
	}
	names := make([]string, 0, len(p.Named))
	for n := range p.Named {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out += n + "=" + p.Named[n].Key() + "|"
	}
	return out
}

func FuzzFingerprintParams(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 1, 0, 0, 0, 0, 0, 0, 0, 42, 0}, []byte{1, 2, 2, 0, 0, 0, 0, 0, 0, 0, 42, 0})
	f.Add([]byte{1, 1, 3, 5, 104, 101, 108, 108, 111, 0}, []byte{1, 1, 3, 5, 104, 101, 108, 108, 111, 1})
	f.Add([]byte{1, 0, 2, 3, 97, 1, 9, 3, 98, 4, 1}, []byte{1, 0, 2, 3, 98, 1, 9, 3, 97, 4, 1})
	f.Add([]byte{1, 3, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8, 4, 1, 0}, []byte{1, 3, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8, 4, 0, 0})

	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		pa := (&paramReader{data: rawA}).params()
		pb := (&paramReader{data: rawB}).params()

		fa, fb := fingerprintParams(pa), fingerprintParams(pb)
		if again := fingerprintParams(pa); again != fa {
			t.Fatalf("fingerprint not deterministic: %q then %q", fa, again)
		}
		if sameParams(pa, pb) {
			if fa != fb {
				t.Fatalf("equal parameter sets fingerprint differently:\n a=%s → %q\n b=%s → %q",
					describeParams(pa), fa, describeParams(pb), fb)
			}
		} else if fa == fb {
			t.Fatalf("different parameter sets share fingerprint %q (cache would bleed results):\n a=%s\n b=%s",
				fa, describeParams(pa), describeParams(pb))
		}
	})
}
