package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// sqlToken kinds.
type sqlTokKind int

const (
	sqlEOF sqlTokKind = iota
	sqlIdent
	sqlQIdent // "quoted identifier": never a keyword or literal
	sqlNumber
	sqlString
	sqlParam  // ?, $name, or :name
	sqlSymbol // punctuation / operators, Text holds spelling
)

type sqlTok struct {
	kind sqlTokKind
	text string
	off  int
}

// sqlLex tokenizes a SQL statement.
func sqlLex(src string) ([]sqlTok, error) {
	var toks []sqlTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isSQLLetter(c):
			start := i
			for i < len(src) && (isSQLLetter(src[i]) || isSQLDigit(src[i])) {
				i++
			}
			toks = append(toks, sqlTok{sqlIdent, src[start:i], start})
		case isSQLDigit(c):
			start := i
			for i < len(src) && (isSQLDigit(src[i]) || src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '+' || src[i] == '-') && i > start && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, sqlTok{sqlNumber, src[start:i], start})
		case c == '\'':
			i++
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqldb: unterminated string literal at offset %d", i)
			}
			toks = append(toks, sqlTok{sqlString, b.String(), i})
		case c == '"':
			start := i
			i++
			for i < len(src) && src[i] != '"' {
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("sqldb: unterminated quoted identifier at offset %d", start)
			}
			if i == start+1 {
				return nil, fmt.Errorf("sqldb: empty quoted identifier at offset %d", start)
			}
			toks = append(toks, sqlTok{sqlQIdent, src[start+1 : i], start})
			i++
		case c == '?':
			toks = append(toks, sqlTok{sqlParam, "?", i})
			i++
		case c == '$' || c == ':':
			start := i
			i++
			for i < len(src) && (isSQLLetter(src[i]) || isSQLDigit(src[i])) {
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("sqldb: bare %c at offset %d", c, start)
			}
			toks = append(toks, sqlTok{sqlParam, src[start:i], start})
		default:
			// Two-character operators first.
			if i+1 < len(src) {
				two := src[i : i+2]
				switch two {
				case "<=", ">=", "<>", "!=", "||", "==":
					toks = append(toks, sqlTok{sqlSymbol, two, i})
					i += 2
					continue
				}
			}
			switch c {
			case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', ';', '.':
				toks = append(toks, sqlTok{sqlSymbol, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("sqldb: illegal character %q at offset %d", string(c), i)
			}
		}
	}
	toks = append(toks, sqlTok{sqlEOF, "", len(src)})
	return toks, nil
}

func isSQLLetter(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || c == '_'
}

func isSQLDigit(c byte) bool { return '0' <= c && c <= '9' }

// sqlParser parses one SQL statement.
type sqlParser struct {
	toks    []sqlTok
	pos     int
	nparams int // positional parameter counter
}

// ParseSQL parses a single SQL statement.
func ParseSQL(src string) (Stmt, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.acceptSym(";")
	if p.cur().kind != sqlEOF {
		return nil, fmt.Errorf("sqldb: unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

func (p *sqlParser) cur() sqlTok { return p.toks[p.pos] }

func (p *sqlParser) next() sqlTok {
	t := p.toks[p.pos]
	if t.kind != sqlEOF {
		p.pos++
	}
	return t
}

// isKw reports whether the current token is the given keyword
// (case-insensitive).
func (p *sqlParser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == sqlIdent && strings.EqualFold(t.text, kw)
}

func (p *sqlParser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("sqldb: expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *sqlParser) acceptSym(s string) bool {
	t := p.cur()
	if t.kind == sqlSymbol && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return fmt.Errorf("sqldb: expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *sqlParser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != sqlIdent && t.kind != sqlQIdent {
		return "", fmt.Errorf("sqldb: expected identifier, found %q", t.text)
	}
	p.next()
	return t.text, nil
}

// curIsIdent reports whether the current token is a bare or quoted
// identifier.
func (p *sqlParser) curIsIdent() bool {
	k := p.cur().kind
	return k == sqlIdent || k == sqlQIdent
}

func (p *sqlParser) parseStmt() (Stmt, error) {
	switch {
	case p.isKw("CREATE"):
		p.next()
		switch {
		case p.acceptKw("TABLE"):
			return p.parseCreateTable()
		case p.acceptKw("INDEX"):
			return p.parseCreateIndex()
		}
		return nil, fmt.Errorf("sqldb: expected TABLE or INDEX after CREATE")
	case p.isKw("DROP"):
		p.next()
		if err := p.expectKw("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name}, nil
	case p.isKw("INSERT"):
		return p.parseInsert()
	case p.isKw("SELECT"):
		return p.parseSelect()
	case p.isKw("UPDATE"):
		return p.parseUpdate()
	case p.isKw("DELETE"):
		return p.parseDelete()
	}
	return nil, fmt.Errorf("sqldb: expected statement, found %q", p.cur().text)
}

func (p *sqlParser) parseCreateTable() (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var col Column
		col.Name = cname
		switch strings.ToUpper(tname) {
		case "INTEGER", "INT", "BIGINT", "TIMESTAMP":
			col.Type = TInt
		case "REAL", "FLOAT", "DOUBLE":
			col.Type = TFloat
		case "TEXT", "VARCHAR", "CHAR", "STRING":
			col.Type = TText
			// Optional length, e.g. VARCHAR(64): parsed and ignored.
			if p.acceptSym("(") {
				if _, err := p.expectIdentOrNumber(); err != nil {
					return nil, err
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
			}
		case "BOOLEAN", "BOOL":
			col.Type = TBool
		default:
			return nil, fmt.Errorf("sqldb: unknown column type %s", tname)
		}
		for {
			if p.acceptKw("NOT") {
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
				col.NotNull = true
				continue
			}
			if p.acceptKw("PRIMARY") {
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
				col.Primary = true
				continue
			}
			break
		}
		cols = append(cols, col)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Name: name, Cols: cols}, nil
}

func (p *sqlParser) expectIdentOrNumber() (string, error) {
	t := p.cur()
	if t.kind != sqlIdent && t.kind != sqlNumber {
		return "", fmt.Errorf("sqldb: expected identifier or number, found %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *sqlParser) parseCreateIndex() (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Column: col}, nil
}

func (p *sqlParser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.acceptSym("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptSym(",") {
			break
		}
	}
	return st, nil
}

func (p *sqlParser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Column: col, Value: e})
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *sqlParser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.acceptKw("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *sqlParser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{}
	for {
		if p.acceptSym("*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKw("AS") {
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.curIsIdent() && !p.isSelectTerminator() {
				item.Alias = p.next().text
			}
			st.Items = append(st.Items, item)
		}
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.From = &ref
		for {
			inner := p.acceptKw("INNER")
			if !p.acceptKw("JOIN") {
				if inner {
					return nil, fmt.Errorf("sqldb: expected JOIN after INNER")
				}
				break
			}
			jref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Joins = append(st.Joins, Join{Table: jref, On: on})
		}
	}
	var err error
	if p.acceptKw("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		if st.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			if p.acceptKw("NULLS") {
				if p.acceptKw("FIRST") {
					item.NullsFirst = true
				} else if err := p.expectKw("LAST"); err != nil {
					return nil, err
				}
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	switch {
	case p.acceptKw("LIMIT"):
		if st.Limit, err = p.parseExpr(); err != nil {
			return nil, err
		}
	case p.acceptKw("FETCH"):
		// SQL:2008 "FETCH FIRST n ROWS ONLY", equivalent to LIMIT n.
		if err := p.expectKw("FIRST"); err != nil {
			return nil, err
		}
		if st.Limit, err = p.parseExpr(); err != nil {
			return nil, err
		}
		if !p.acceptKw("ROWS") {
			if err := p.expectKw("ROW"); err != nil {
				return nil, err
			}
		}
		if err := p.expectKw("ONLY"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// isSelectTerminator reports whether the current identifier token is a
// clause keyword rather than an implicit column alias.
func (p *sqlParser) isSelectTerminator() bool {
	for _, kw := range [...]string{"FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "FETCH", "JOIN", "INNER", "ON", "AS"} {
		if p.isKw(kw) {
			return true
		}
	}
	return false
}

func (p *sqlParser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKw("AS") {
		if ref.Alias, err = p.expectIdent(); err != nil {
			return TableRef{}, err
		}
	} else if p.curIsIdent() && !p.isSelectTerminator() {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression parsing, precedence climbing: OR < AND < NOT < comparison < IS
// < additive < multiplicative < unary.

func (p *sqlParser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &EUnary{Neg: false, X: x}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKw("IS") {
		not := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &EIsNull{X: l, Not: not}, nil
	}
	// [NOT] IN
	not := false
	if p.isKw("NOT") && p.toks[p.pos+1].kind == sqlIdent && strings.EqualFold(p.toks[p.pos+1].text, "IN") {
		p.next()
		not = true
	}
	if p.acceptKw("IN") {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		if p.isKw("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &EIn{X: l, Sub: sub, Not: not}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &EIn{X: l, List: list, Not: not}, nil
	}
	t := p.cur()
	if t.kind == sqlSymbol {
		var op BinOp
		ok := true
		switch t.text {
		case "=", "==":
			op = OpEq
		case "<>", "!=":
			op = OpNeq
		case "<":
			op = OpLt
		case "<=":
			op = OpLeq
		case ">":
			op = OpGt
		case ">=":
			op = OpGeq
		default:
			ok = false
		}
		if ok {
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &EBinary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sqlParser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != sqlSymbol {
			return l, nil
		}
		var op BinOp
		switch t.text {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		case "||":
			op = OpConcat
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Op: op, L: l, R: r}
	}
}

func (p *sqlParser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != sqlSymbol {
			return l, nil
		}
		var op BinOp
		switch t.text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &EBinary{Op: op, L: l, R: r}
	}
}

func (p *sqlParser) parseUnary() (Expr, error) {
	if p.acceptSym("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &EUnary{Neg: true, X: x}, nil
	}
	if p.acceptSym("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *sqlParser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case sqlNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqldb: bad number %q", t.text)
			}
			return &ELit{Value: NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqldb: bad number %q", t.text)
		}
		return &ELit{Value: NewInt(i)}, nil
	case sqlString:
		p.next()
		return &ELit{Value: NewText(t.text)}, nil
	case sqlParam:
		p.next()
		if t.text == "?" {
			e := &EParam{Ordinal: p.nparams}
			p.nparams++
			return e, nil
		}
		return &EParam{Ordinal: -1, Name: t.text[1:]}, nil
	case sqlSymbol:
		if t.text == "(" {
			p.next()
			if p.isKw("SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return &ESubquery{Select: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case sqlIdent:
		switch {
		case strings.EqualFold(t.text, "NULL"):
			p.next()
			return &ELit{Value: Null}, nil
		case strings.EqualFold(t.text, "TRUE"):
			p.next()
			return &ELit{Value: NewBool(true)}, nil
		case strings.EqualFold(t.text, "FALSE"):
			p.next()
			return &ELit{Value: NewBool(false)}, nil
		case strings.EqualFold(t.text, "EXISTS"):
			p.next()
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &EExists{Select: sub}, nil
		}
		p.next()
		return p.identTail(t)
	case sqlQIdent:
		// A quoted identifier is never a keyword or literal: it heads a
		// column reference (or a function call, which the engine will
		// reject by name).
		p.next()
		return p.identTail(t)
	}
	return nil, fmt.Errorf("sqldb: expected expression, found %q", t.text)
}

// identTail parses what may follow an identifier heading an expression: a
// function-call argument list, a qualified column, or nothing (a bare
// column).
func (p *sqlParser) identTail(t sqlTok) (Expr, error) {
	// Function call?
	if p.acceptSym("(") {
		call := &ECall{Name: t.text}
		if p.acceptSym("*") {
			call.Star = true
		} else if !p.acceptSym(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptSym(",") {
					break
				}
			}
			return call, p.expectSym(")")
		} else {
			return call, nil
		}
		return call, p.expectSym(")")
	}
	// Qualified column?
	if p.acceptSym(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return NewEColumn(t.text, col), nil
	}
	return NewEColumn("", t.text), nil
}
