package sqldb

import (
	"reflect"
	"strings"
	"testing"
)

// parityDB builds a dataset with enough shape variety (NULLs, duplicate
// groups, text, floats, an indexed junction) to exercise every vectorized
// operator, sized past one batch so the chunked pipeline is covered.
func parityDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	db.SetResultCacheSize(0)
	stmts := []string{
		`CREATE TABLE item (id INTEGER PRIMARY KEY, grp INTEGER, val REAL, tag TEXT)`,
		`CREATE TABLE grp (id INTEGER PRIMARY KEY, name TEXT, boss INTEGER)`,
		`INSERT INTO grp (id, name, boss) VALUES
			(0, 'zero', 4), (1, 'one', 3), (2, 'two', NULL), (3, 'three', 1)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s, nil); err != nil {
			t.Fatalf("setup %q: %v", s, err)
		}
	}
	ins, err := db.Prepare(`INSERT INTO item (id, grp, val, tag) VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatalf("prepare insert: %v", err)
	}
	defer ins.Close()
	for i := 0; i < 3000; i++ {
		grp := NewInt(int64(i % 4))
		val := NewFloat(float64(i%17) / 4)
		tag := NewText([]string{"red", "green", "blue"}[i%3])
		if i%13 == 0 {
			grp = Null
		}
		if i%11 == 0 {
			val = Null
		}
		if _, err := ins.Execute(&Params{Positional: []Value{NewInt(int64(i)), grp, val, tag}}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return db
}

// parityQueries is the battery both engines must agree on, byte for byte.
var parityQueries = []struct {
	name   string
	sql    string
	params *Params
}{
	{"scan", `SELECT id, grp, val, tag FROM item`, nil},
	{"filter-cmp", `SELECT id FROM item WHERE val > 2.5`, nil},
	{"filter-and-or", `SELECT id FROM item WHERE (grp = 1 OR grp = 3) AND val <= 3`, nil},
	{"filter-null-3vl", `SELECT id FROM item WHERE NOT (val > 1)`, nil},
	{"is-null", `SELECT id FROM item WHERE grp IS NULL`, nil},
	{"is-not-null", `SELECT COUNT(*) FROM item WHERE val IS NOT NULL`, nil},
	{"arith", `SELECT id, val * 2 + 1, -val FROM item WHERE id < 50`, nil},
	{"text-fn", `SELECT id, UPPER(tag), LENGTH(tag) FROM item WHERE id < 40`, nil},
	{"coalesce", `SELECT id, COALESCE(val, -1) FROM item WHERE id < 100`, nil},
	{"nullif", `SELECT id, NULLIF(tag, 'red') FROM item WHERE id < 30`, nil},
	{"in-list", `SELECT id FROM item WHERE grp IN (1, 3)`, nil},
	{"not-in-list", `SELECT id FROM item WHERE tag NOT IN ('red', 'blue') AND id < 200`, nil},
	{"in-sub", `SELECT id FROM item WHERE grp IN (SELECT id FROM grp WHERE boss IS NOT NULL)`, nil},
	{"exists", `SELECT COUNT(*) FROM item WHERE EXISTS (SELECT 1 FROM grp WHERE grp.id = 2)`, nil},
	{"scalar-sub", `SELECT id, (SELECT MAX(boss) FROM grp) FROM item WHERE id < 20`, nil},
	{"pk-seek", `SELECT id, val FROM item WHERE id = 1234`, nil},
	{"pk-seek-param", `SELECT id, val FROM item WHERE id = ?`, &Params{Positional: []Value{NewInt(77)}}},
	{"named-param", `SELECT COUNT(*) FROM item WHERE grp = $g`, &Params{Named: map[string]Value{"g": NewInt(2)}}},
	{"join", `SELECT i.id, g.name FROM item i JOIN grp g ON i.grp = g.id WHERE i.id < 300`, nil},
	{"join-residual", `SELECT i.id, g.name FROM item i JOIN grp g ON i.grp = g.id AND g.boss > 1`, nil},
	{"join-chain", `SELECT i.id, b.name FROM item i JOIN grp g ON i.grp = g.id JOIN grp b ON g.boss = b.id WHERE i.id < 500`, nil},
	{"agg-scalar", `SELECT COUNT(*), COUNT(val), SUM(val), AVG(val), MIN(val), MAX(val) FROM item`, nil},
	{"agg-empty", `SELECT COUNT(*), SUM(val), MIN(tag) FROM item WHERE id < 0`, nil},
	{"group-by", `SELECT grp, COUNT(*), SUM(val) FROM item GROUP BY grp`, nil},
	{"group-order-alias", `SELECT grp, COUNT(*) AS n FROM item GROUP BY grp ORDER BY n DESC, grp`, nil},
	{"group-order-ordinal", `SELECT tag, AVG(val) FROM item GROUP BY tag ORDER BY 2, 1`, nil},
	{"having", `SELECT grp, COUNT(*) FROM item GROUP BY grp HAVING COUNT(*) > 700`, nil},
	{"having-sum", `SELECT tag, SUM(val) FROM item GROUP BY tag HAVING SUM(val) > 900 ORDER BY 1`, nil},
	{"group-expr-key", `SELECT grp + 0, MIN(id) FROM item GROUP BY grp + 0 ORDER BY 2`, nil},
	{"order-expr", `SELECT id, val FROM item WHERE id < 100 ORDER BY val DESC, id`, nil},
	{"order-nulls-last", `SELECT id, val FROM item WHERE id < 60 ORDER BY val`, nil},
	{"limit", `SELECT id FROM item ORDER BY id DESC LIMIT 7`, nil},
	{"limit-zero", `SELECT id FROM item LIMIT 0`, nil},
	{"star", `SELECT * FROM grp`, nil},
	{"star-join", `SELECT * FROM item i JOIN grp g ON i.grp = g.id WHERE i.id < 25`, nil},
	{"star-order-ordinal", `SELECT * FROM grp ORDER BY 3, 1`, nil},
	{"star-grouped", `SELECT * FROM grp GROUP BY id`, nil}, // row-path shape: grouped star
	{"tableless", `SELECT 1 + 2, 'x'`, nil},
	{"tableless-sub", `SELECT (SELECT COUNT(*) FROM grp), 'x'`, nil},
	{"correlated", `SELECT g.id, (SELECT COUNT(*) FROM item i WHERE i.grp = g.id) FROM grp g`, nil},
	{"correlated-unqual", `SELECT g.id, (SELECT COUNT(*) FROM item i WHERE i.grp = boss) FROM grp g`, nil},
	{"grouped-order-expr", `SELECT grp, COUNT(*) FROM item GROUP BY grp ORDER BY grp + 0`, nil},
	{"grouped-order-agg", `SELECT grp, COUNT(*) FROM item GROUP BY grp ORDER BY COUNT(*) DESC, grp + 1`, nil},
	{"join-nonequi", `SELECT i.id, g.id FROM item i JOIN grp g ON i.val > g.id AND g.boss IS NOT NULL WHERE i.id < 80`, nil},
	{"join-nonequi-chain", `SELECT i.id, b.name FROM item i JOIN grp g ON i.grp = g.id JOIN grp b ON b.id > g.boss WHERE i.id < 40`, nil},
}

// runEngine executes one query on the given engine against db.
func runEngine(t testing.TB, db *DB, engine, sql string, params *Params) (*ResultSet, error) {
	t.Helper()
	if err := db.SetEngine(engine); err != nil {
		t.Fatalf("SetEngine(%s): %v", engine, err)
	}
	res, err := db.Exec(sql, params)
	if err != nil {
		return nil, err
	}
	return res.Set, nil
}

func TestVecEngineParity(t *testing.T) {
	db := parityDB(t)
	for _, q := range parityQueries {
		t.Run(q.name, func(t *testing.T) {
			vecSet, vecErr := runEngine(t, db, EngineVector, q.sql, q.params)
			rowSet, rowErr := runEngine(t, db, EngineRow, q.sql, q.params)
			if (vecErr == nil) != (rowErr == nil) {
				t.Fatalf("error divergence: vector=%v row=%v", vecErr, rowErr)
			}
			if vecErr != nil {
				return
			}
			if !reflect.DeepEqual(vecSet, rowSet) {
				t.Fatalf("result divergence:\nvector: %+v\nrow:    %+v", vecSet, rowSet)
			}
		})
	}
}

// TestVecEngineParityErrors pins down queries that must fail identically on
// both engines (same error presence; the row engine's message).
func TestVecEngineParityErrors(t *testing.T) {
	db := parityDB(t)
	cases := []string{
		`SELECT id FROM item WHERE val`,                               // non-boolean predicate
		`SELECT id FROM item WHERE nosuch = 1`,                        // unknown column
		`SELECT val + tag FROM item`,                                  // type error in projection
		`SELECT id FROM item WHERE tag > 5`,                           // incomparable types
		`SELECT SUM(tag) FROM item`,                                   // SUM over text
		`SELECT id FROM item LIMIT 'x'`,                               // non-numeric LIMIT
		`SELECT (SELECT id FROM grp) FROM item`,                       // scalar subquery, many rows
		`SELECT id FROM item WHERE grp IN (SELECT id, name FROM grp)`, // IN arity
	}
	for _, sql := range cases {
		_, vecErr := runEngine(t, db, EngineVector, sql, nil)
		_, rowErr := runEngine(t, db, EngineRow, sql, nil)
		if vecErr == nil || rowErr == nil {
			t.Errorf("%q: expected both engines to fail, vector=%v row=%v", sql, vecErr, rowErr)
		}
	}
}

// TestVecEngineSelection checks the engine API and that the vectorized path
// actually executes covered shapes (and falls back on uncovered ones).
func TestVecEngineSelection(t *testing.T) {
	db := parityDB(t)
	if err := db.SetEngine("turbo"); err == nil {
		t.Fatal("SetEngine(turbo) succeeded")
	}
	if err := db.SetEngine(EngineVector); err != nil {
		t.Fatal(err)
	}
	if got := db.Engine(); got != EngineVector {
		t.Fatalf("Engine() = %s, want %s", got, EngineVector)
	}

	before := db.Stats()
	if _, err := db.Exec(`SELECT grp, SUM(val) FROM item WHERE id < 100 GROUP BY grp`, nil); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	if after.VecSelects <= before.VecSelects {
		t.Fatalf("covered query did not run vectorized: %+v -> %+v", before.VecSelects, after.VecSelects)
	}

	before = after
	if _, err := db.Exec(`SELECT * FROM grp`, nil); err != nil {
		t.Fatal(err)
	}
	after = db.Stats()
	if after.VecFallbacks != before.VecFallbacks {
		t.Fatalf("non-grouped star query fell back: %+v -> %+v", before.VecFallbacks, after.VecFallbacks)
	}

	before = after
	if _, err := db.Exec(`SELECT * FROM grp GROUP BY id`, nil); err != nil {
		t.Fatal(err)
	}
	after = db.Stats()
	if after.VecFallbacks <= before.VecFallbacks {
		t.Fatalf("grouped star query did not fall back: %+v -> %+v", before.VecFallbacks, after.VecFallbacks)
	}
	if after.VecFallbackReasons.Star <= before.VecFallbackReasons.Star {
		t.Fatalf("fallback not attributed to star: %+v -> %+v", before.VecFallbackReasons, after.VecFallbackReasons)
	}
	if after.Engine != EngineVector {
		t.Fatalf("Stats.Engine = %s, want %s", after.Engine, EngineVector)
	}

	if err := db.SetEngine(EngineRow); err != nil {
		t.Fatal(err)
	}
	before = db.Stats()
	if _, err := db.Exec(`SELECT COUNT(*) FROM item`, nil); err != nil {
		t.Fatal(err)
	}
	after = db.Stats()
	if after.VecSelects != before.VecSelects {
		t.Fatal("row engine incremented VecSelects")
	}
	if after.Engine != EngineRow {
		t.Fatalf("Stats.Engine = %s, want %s", after.Engine, EngineRow)
	}
}

// TestVecPropertyShapeVectorizes pins the tentpole target: the closed
// COALESCE-wrapped dereference subqueries the ASL property compiler emits
// must run on the vectorized path, not fall back.
func TestVecPropertyShapeVectorizes(t *testing.T) {
	db := parityDB(t)
	if err := db.SetEngine(EngineVector); err != nil {
		t.Fatal(err)
	}
	before := db.Stats()
	sql := `SELECT COALESCE((SELECT SUM(i.val) FROM item i WHERE i.grp = 1), 0.0),
	               COALESCE((SELECT COUNT(*) FROM item i WHERE i.grp = 2), 0)`
	vecSet, err := db.Exec(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	// The table-less top level and both closed dereference subqueries must
	// all vectorize — the property shape runs with zero fallbacks.
	if after.VecSelects < before.VecSelects+3 {
		t.Fatalf("property shape did not fully vectorize: VecSelects %d -> %d", before.VecSelects, after.VecSelects)
	}
	if after.VecFallbacks != before.VecFallbacks {
		t.Fatalf("property shape fell back: VecFallbacks %d -> %d", before.VecFallbacks, after.VecFallbacks)
	}
	if err := db.SetEngine(EngineRow); err != nil {
		t.Fatal(err)
	}
	rowSet, err := db.Exec(sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vecSet.Set, rowSet.Set) {
		t.Fatalf("property shape diverged:\nvector: %+v\nrow:    %+v", vecSet.Set, rowSet.Set)
	}
}

// TestScanNoPerRowAlloc pins the cached row view: after the first
// materialization, repeat scans must not allocate per row.
func TestScanNoPerRowAlloc(t *testing.T) {
	db := parityDB(t)
	tbl := db.Table("item")
	if tbl == nil {
		t.Fatal("no item table")
	}
	tbl.scan() // materialize
	allocs := testing.AllocsPerRun(100, func() {
		rows := tbl.scan()
		if len(rows) != 3000 {
			t.Fatalf("scan rows = %d", len(rows))
		}
	})
	if allocs > 0 {
		t.Fatalf("repeat scan allocates %.1f per run, want 0", allocs)
	}
}

// TestVecFusedFilterAllocs pins the allocation budget of the fused filter
// path: a prepared aggregation whose WHERE runs on the fused kernels must
// cost a small constant number of allocations per execution, independent of
// row count (the per-row work reads the typed vectors directly).
func TestVecFusedFilterAllocs(t *testing.T) {
	db := parityDB(t)
	db.SetResultCacheSize(0)
	if err := db.SetEngine(EngineVector); err != nil {
		t.Fatal(err)
	}
	ps, err := db.Prepare(`SELECT COUNT(*) FROM item WHERE val > 1.5 AND grp = 1 AND tag <> 'red'`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if _, err := ps.Execute(nil); err != nil {
		t.Fatal(err) // warm the pools
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ps.Execute(nil); err != nil {
			t.Fatal(err)
		}
	})
	// The budget covers the per-execution fixed costs (execCtx, Result,
	// ResultSet, the output row) — nothing proportional to the 3000 rows.
	if allocs > 32 {
		t.Fatalf("fused filter allocates %.1f per run, want <= 32", allocs)
	}
}

// TestVecDMLParity runs the same UPDATE/DELETE battery on both engines
// against identical databases and checks the mutated tables match row for
// row — including WHERE shapes that bail from the fused kernels.
func TestVecDMLParity(t *testing.T) {
	stmts := []struct {
		name   string
		sql    string
		params *Params
	}{
		{"update-const", `UPDATE item SET tag = 'x' WHERE grp = 2`, nil},
		{"update-expr", `UPDATE item SET val = val * 2 + 1 WHERE val > 2`, nil},
		{"update-null", `UPDATE item SET grp = NULL WHERE id % 7 = 0`, nil},
		{"update-no-where", `UPDATE item SET tag = 'all'`, nil},
		{"update-param", `UPDATE item SET val = 0.5 WHERE grp = ?`, &Params{Positional: []Value{NewInt(3)}}},
		{"update-sub", `UPDATE item SET grp = (SELECT MIN(id) FROM grp) WHERE grp IS NULL`, nil},
		{"delete-cmp", `DELETE FROM item WHERE val < 1`, nil},
		{"delete-and", `DELETE FROM item WHERE grp = 1 AND tag = 'green'`, nil},
		{"delete-in-sub", `DELETE FROM item WHERE grp IN (SELECT id FROM grp WHERE boss IS NULL)`, nil},
		{"delete-null-where", `DELETE FROM item WHERE NULL`, nil},
	}
	vecDB, rowDB := parityDB(t), parityDB(t)
	if err := vecDB.SetEngine(EngineVector); err != nil {
		t.Fatal(err)
	}
	if err := rowDB.SetEngine(EngineRow); err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		vres, verr := vecDB.Exec(s.sql, s.params)
		rres, rerr := rowDB.Exec(s.sql, s.params)
		if (verr == nil) != (rerr == nil) {
			t.Fatalf("%s: error divergence: vector=%v row=%v", s.name, verr, rerr)
		}
		if verr != nil {
			continue
		}
		if vres.Affected != rres.Affected {
			t.Fatalf("%s: affected %d (vector) != %d (row)", s.name, vres.Affected, rres.Affected)
		}
		vset, err := vecDB.Exec(`SELECT id, grp, val, tag FROM item ORDER BY id`, nil)
		if err != nil {
			t.Fatal(err)
		}
		rset, err := rowDB.Exec(`SELECT id, grp, val, tag FROM item ORDER BY id`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(vset.Set, rset.Set) {
			t.Fatalf("%s: table state diverged after statement", s.name)
		}
	}
}

// TestVecDMLVisibility checks that the vectorized read path sees DML
// immediately: updates, deletes, and inserts between SELECTs.
func TestVecDMLVisibility(t *testing.T) {
	db := parityDB(t)
	if err := db.SetEngine(EngineVector); err != nil {
		t.Fatal(err)
	}
	count := func() int64 {
		set := mustQuery(t, db, `SELECT COUNT(*) FROM item WHERE tag = 'purple'`, nil)
		return set.Rows[0][0].Int()
	}
	if n := count(); n != 0 {
		t.Fatalf("purple = %d, want 0", n)
	}
	if _, err := db.Exec(`UPDATE item SET tag = 'purple' WHERE grp = 1`, nil); err != nil {
		t.Fatal(err)
	}
	want := mustQuery(t, db, `SELECT COUNT(*) FROM item WHERE grp = 1`, nil).Rows[0][0].Int()
	if n := count(); n != want {
		t.Fatalf("purple after update = %d, want %d", n, want)
	}
	if _, err := db.Exec(`DELETE FROM item WHERE tag = 'purple'`, nil); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 0 {
		t.Fatalf("purple after delete = %d, want 0", n)
	}
	if _, err := db.Exec(`INSERT INTO item (id, grp, val, tag) VALUES (90001, 1, 1.5, 'purple')`, nil); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 1 {
		t.Fatalf("purple after insert = %d, want 1", n)
	}
}

// TestVecBatchBoundary exercises predicates whose selectivity straddles the
// batch size, on a table slightly larger than two batches.
func TestVecBatchBoundary(t *testing.T) {
	db := NewDB()
	db.SetResultCacheSize(0)
	if _, err := db.Exec(`CREATE TABLE n (id INTEGER PRIMARY KEY, v INTEGER)`, nil); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO n (id, v) VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	total := 2*vecBatchSize + 100
	for i := 0; i < total; i++ {
		if _, err := ins.Execute(&Params{Positional: []Value{NewInt(int64(i)), NewInt(int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range []string{
		`SELECT COUNT(*) FROM n WHERE v >= 1024`,
		`SELECT SUM(v) FROM n WHERE v < 1025`,
		`SELECT id FROM n WHERE v = 1023 OR v = 1024 OR v = 2047 OR v = 2048 ORDER BY id`,
	} {
		vecSet, vecErr := runEngine(t, db, EngineVector, sql, nil)
		rowSet, rowErr := runEngine(t, db, EngineRow, sql, nil)
		if vecErr != nil || rowErr != nil {
			t.Fatalf("%q: vector=%v row=%v", sql, vecErr, rowErr)
		}
		if !reflect.DeepEqual(vecSet, rowSet) {
			t.Fatalf("%q diverged:\nvector: %+v\nrow:    %+v", sql, vecSet, rowSet)
		}
	}
}

// TestVecSumOrderStable pins bit-identical float aggregation: both engines
// must fold SUM in storage order, so even order-sensitive float sums match
// exactly (string formatting included).
func TestVecSumOrderStable(t *testing.T) {
	db := parityDB(t)
	vecSet, err := runEngine(t, db, EngineVector, `SELECT SUM(val), AVG(val) FROM item`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rowSet, err := runEngine(t, db, EngineRow, `SELECT SUM(val), AVG(val) FROM item`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vecSet.Rows[0] {
		v, r := vecSet.Rows[0][i], rowSet.Rows[0][i]
		if v.String() != r.String() || v.Float() != r.Float() {
			t.Fatalf("col %d: vector %s (%b) != row %s (%b)", i, v, v.Float(), r, r.Float())
		}
	}
	if !strings.Contains(vecSet.Columns[0], "col") && vecSet.Columns[0] != rowSet.Columns[0] {
		t.Fatalf("column names diverge: %v vs %v", vecSet.Columns, rowSet.Columns)
	}
}
