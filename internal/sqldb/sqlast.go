package sqldb

import "strings"

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col type [NOT NULL] [PRIMARY KEY], ...).
type CreateTableStmt struct {
	Name string
	Cols []Column
}

// CreateIndexStmt is CREATE INDEX name ON table (column).
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct{ Name string }

// InsertStmt is INSERT INTO table (cols) VALUES (...), (...).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// UpdateStmt is UPDATE table SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one "col = expr" assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Binding returns the name the table is referenced by in expressions.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Join is one JOIN clause.
type Join struct {
	Table TableRef
	On    Expr
}

// SelectItem is one projection of a SELECT list.
type SelectItem struct {
	Star  bool   // SELECT *
	Expr  Expr   // nil when Star
	Alias string // optional AS alias
}

// OrderItem is one ORDER BY key. NULLs sort last by default regardless of
// direction; NULLS FIRST asks for the opposite (NULLS LAST spells out the
// default and parses to the zero value).
type OrderItem struct {
	Expr       Expr
	Desc       bool
	NullsFirst bool
}

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    *TableRef // nil for table-less SELECT (e.g. SELECT 1+1)
	Joins   []Join
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   Expr // nil if absent
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// Expr is a SQL expression.
type Expr interface{ sqlExpr() }

// EColumn is a (possibly qualified) column reference. The lower-cased
// spellings are precomputed at parse time; resolution is case-insensitive
// and hot.
type EColumn struct {
	Qual string // table or alias; empty if unqualified
	Name string

	lowQual string
	lowName string
}

// NewEColumn builds a column reference with its lower-cased lookup keys.
func NewEColumn(qual, name string) *EColumn {
	return &EColumn{Qual: qual, Name: name, lowQual: strings.ToLower(qual), lowName: strings.ToLower(name)}
}

// keys returns the lower-cased qualifier and name, computing them if the
// literal was constructed directly.
func (c *EColumn) keys() (string, string) {
	if c.lowName == "" && c.Name != "" {
		c.lowQual, c.lowName = strings.ToLower(c.Qual), strings.ToLower(c.Name)
	}
	return c.lowQual, c.lowName
}

// ELit is a literal value.
type ELit struct{ Value Value }

// EParam is a statement parameter: positional "?" (Ordinal >= 0, Name empty)
// or named "$name".
type EParam struct {
	Ordinal int
	Name    string
}

// BinOp is a binary SQL operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
	OpAnd
	OpOr
	OpConcat
)

// String returns the SQL spelling.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNeq:
		return "<>"
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	}
	return "?"
}

// EBinary is a binary operation.
type EBinary struct {
	Op   BinOp
	L, R Expr
}

// EUnary is unary minus or NOT.
type EUnary struct {
	Neg bool // true: -x, false: NOT x
	X   Expr
}

// ECall is a function or aggregate call; Star marks COUNT(*).
type ECall struct {
	Name string
	Args []Expr
	Star bool
}

// IsAggregate reports whether the call is one of the built-in aggregates.
func (c *ECall) IsAggregate() bool {
	switch strings.ToUpper(c.Name) {
	case "SUM", "MIN", "MAX", "AVG", "COUNT":
		return true
	}
	return false
}

// ESubquery is a scalar subquery "(SELECT ...)".
type ESubquery struct{ Select *SelectStmt }

// EIsNull is "x IS [NOT] NULL".
type EIsNull struct {
	X   Expr
	Not bool
}

// EIn is "x IN (SELECT ...)" or "x IN (e1, e2, ...)".
type EIn struct {
	X    Expr
	Sub  *SelectStmt // nil when List is set
	List []Expr
	Not  bool
}

// EExists is "EXISTS (SELECT ...)".
type EExists struct{ Select *SelectStmt }

func (*EColumn) sqlExpr()   {}
func (*ELit) sqlExpr()      {}
func (*EParam) sqlExpr()    {}
func (*EBinary) sqlExpr()   {}
func (*EUnary) sqlExpr()    {}
func (*ECall) sqlExpr()     {}
func (*ESubquery) sqlExpr() {}
func (*EIsNull) sqlExpr()   {}
func (*EIn) sqlExpr()       {}
func (*EExists) sqlExpr()   {}

// hasAggregate reports whether the expression contains an aggregate call not
// nested inside a subquery.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *EBinary:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *EUnary:
		return hasAggregate(x.X)
	case *ECall:
		if x.IsAggregate() {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	case *EIsNull:
		return hasAggregate(x.X)
	case *EIn:
		if hasAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	}
	return false
}
