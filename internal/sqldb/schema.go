package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    ColType
	NotNull bool
	Primary bool
}

// Row is a tuple of values, one per column.
type Row []Value

// Table is the storage for one relation. Data is stored column-major: one
// typed vector per column (see column.go). The vectorized operators read the
// vectors directly; the row interpreter and the DML read paths go through
// scan, which materializes (and caches) a row view of the same data.
//
// Every table carries its own RWMutex so that readers of different tables
// never contend and concurrent readers of the same table only serialize
// against writers. Lock ordering: the DB statement lock (DB.mu) is always
// acquired before any table lock; table locks are never held while acquiring
// another table's lock.
type Table struct {
	Name    string
	Columns []Column
	colIdx  map[string]int // lower-cased column name -> position
	// mu guards the derived read structures (indexes and the cached row
	// view). The column vectors themselves mutate only under the exclusive
	// DB statement lock, which excludes all SELECT readers, so batch reads
	// off cols need no table lock; mu makes the lazily built join indexes
	// and the lazily built row view safe under concurrent SELECTs.
	mu sync.RWMutex
	// cols holds one typed vector per column; nrows is the row count.
	cols  []*colVec
	nrows int
	// rowView is the cached row-major view served by scan. Inserts extend it
	// in place while it is live; updates and deletes drop it, and the next
	// scan rebuilds it. nil means stale/never built.
	rowView []Row
	// indexes maps column position to a hash index from value key to row
	// positions. Indexes are maintained incrementally on insert and rebuilt
	// on update/delete.
	indexes map[int]map[string][]int
	// primary is the position of the primary-key column, or -1.
	primary int
	// dataVer is the table's data version: every DML statement that changed
	// this table's rows stamps it with a fresh value of the database's global
	// DML counter (see DB.bumpData and resultcache.go). Index builds do not
	// touch it — they change access paths, not results.
	dataVer atomic.Int64
}

func newTable(name string, cols []Column) (*Table, error) {
	t := &Table{
		Name:    name,
		Columns: cols,
		colIdx:  make(map[string]int, len(cols)),
		indexes: make(map[int]map[string][]int),
		primary: -1,
	}
	for _, c := range cols {
		t.cols = append(t.cols, newColVec(c.Type))
	}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := t.colIdx[key]; dup {
			return nil, fmt.Errorf("sqldb: table %s: duplicate column %s", name, c.Name)
		}
		t.colIdx[key] = i
		if c.Primary {
			if t.primary >= 0 {
				return nil, fmt.Errorf("sqldb: table %s: multiple primary keys", name)
			}
			t.primary = i
		}
	}
	if t.primary >= 0 {
		t.indexes[t.primary] = make(map[string][]int)
	}
	return t, nil
}

// ColumnIndex returns the position of a column (case-insensitive), or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// NumRows returns the number of stored rows.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nrows
}

// scan returns a row-major view of the table for the row interpreter. The
// view is materialized from the column vectors once and cached: repeat scans
// return the cached slice with no per-row allocation, inserts extend the live
// view in place, and updates/deletes invalidate it. The returned slice header
// is a snapshot — the rows visible through it never change under a reader's
// feet, because all storage mutation happens under the exclusive DB statement
// lock, which excludes every SELECT reader.
func (t *Table) scan() []Row {
	t.mu.RLock()
	view := t.rowView
	t.mu.RUnlock()
	if view != nil || t.nrows == 0 {
		return view
	}
	// Build under the write lock; concurrent SELECTs racing here serialize
	// and the losers return the winner's view (same double-checked pattern
	// as createIndex).
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rowView == nil {
		t.rowView = t.materializeRows()
	}
	return t.rowView
}

// materializeRows builds the row-major view of the column vectors. Caller
// holds t.mu exclusively (or the exclusive DB statement lock).
func (t *Table) materializeRows() []Row {
	rows := make([]Row, t.nrows)
	cells := make(Row, t.nrows*len(t.cols)) // one backing array for all rows
	for i := range rows {
		row := cells[i*len(t.cols) : (i+1)*len(t.cols) : (i+1)*len(t.cols)]
		for j, c := range t.cols {
			row[j] = c.value(i)
		}
		rows[i] = row
	}
	return rows
}

// row materializes one stored row. Intended for read paths that hold the DB
// statement lock.
func (t *Table) row(pos int) Row {
	out := make(Row, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.value(pos)
	}
	return out
}

func (t *Table) insert(r Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(r) != len(t.Columns) {
		return fmt.Errorf("sqldb: table %s: row has %d values, want %d", t.Name, len(r), len(t.Columns))
	}
	for i := range r {
		v, err := coerce(r[i], t.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("sqldb: table %s, column %s: %v", t.Name, t.Columns[i].Name, err)
		}
		if v.IsNull() && (t.Columns[i].NotNull || t.Columns[i].Primary) {
			return fmt.Errorf("sqldb: table %s: NULL in NOT NULL column %s", t.Name, t.Columns[i].Name)
		}
		r[i] = v
	}
	if t.primary >= 0 {
		key := r[t.primary].Key()
		if len(t.indexes[t.primary][key]) > 0 {
			return fmt.Errorf("sqldb: table %s: duplicate primary key %s", t.Name, r[t.primary])
		}
	}
	pos := t.nrows
	for i, c := range t.cols {
		c.appendVal(r[i])
	}
	t.nrows++
	if t.rowView != nil {
		t.rowView = append(t.rowView, r)
	}
	for col, idx := range t.indexes {
		key := r[col].Key()
		idx[key] = append(idx[key], pos)
	}
	return nil
}

// createIndex builds a hash index over a column if one does not exist yet.
// It is called lazily from the join planner, so it must be safe under
// concurrent SELECTs: the double-checked write lock serializes builders.
func (t *Table) createIndex(col int) {
	t.mu.RLock()
	_, ok := t.indexes[col]
	t.mu.RUnlock()
	if ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[col]; ok {
		return
	}
	t.indexes[col] = t.buildIndex(col)
}

// buildIndex computes a hash index over one column from the column vector.
// Caller holds t.mu exclusively (or the exclusive DB statement lock).
func (t *Table) buildIndex(col int) map[string][]int {
	idx := make(map[string][]int)
	cv := t.cols[col]
	for pos := 0; pos < t.nrows; pos++ {
		key := cv.key(pos)
		idx[key] = append(idx[key], pos)
	}
	return idx
}

// rebuildIndexes recomputes all indexes after bulk mutation.
func (t *Table) rebuildIndexes() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for col := range t.indexes {
		t.indexes[col] = t.buildIndex(col)
	}
}

// hasIndex reports whether the column is indexed.
func (t *Table) hasIndex(col int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[col]
	return ok
}

// lookup returns the positions of rows whose indexed column equals v, or
// (nil, false) if the column is not indexed. The returned slice aliases the
// index; it is safe to read because index mutations happen only under the
// exclusive DB statement lock, which excludes all SELECT readers. Positions
// index into the snapshot returned by scan.
func (t *Table) lookup(col int, v Value) ([]int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[col]
	if !ok {
		return nil, false
	}
	return idx[v.Key()], true
}

// DB is a database: a set of named tables. All public methods are safe for
// concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// planFields carries the prepared-statement machinery: the schema
	// version, the ad-hoc plan cache, and its counters (see prepare.go).
	planFields
	// cacheFields carries the result cache: the global DML counter behind
	// the per-table data versions, the LRU of cached SELECT results, and its
	// counters (see resultcache.go).
	cacheFields
	// vecOn selects the SELECT execution engine: true runs planned SELECTs
	// through the vectorized operators (vecexec.go), false forces the row
	// interpreter. vecSelects/vecFallbacks count executions of planned SELECT
	// nodes on each path while the vectorized engine is selected.
	vecOn        atomic.Bool
	vecSelects   atomic.Int64
	vecFallbacks atomic.Int64
	// Per-reason fallback counters (the fb* constants in vec.go).
	vecFbJoin  atomic.Int64
	vecFbStar  atomic.Int64
	vecFbOrder atomic.Int64
	vecFbSub   atomic.Int64
	vecFbOther atomic.Int64
}

// countFallback records one row-interpreter fallback under its refusal
// reason.
func (db *DB) countFallback(reason string) {
	db.vecFallbacks.Add(1)
	switch reason {
	case fbJoinShape:
		db.vecFbJoin.Add(1)
	case fbStar:
		db.vecFbStar.Add(1)
	case fbOrderExpr:
		db.vecFbOrder.Add(1)
	case fbSubquery:
		db.vecFbSub.Add(1)
	default:
		db.vecFbOther.Add(1)
	}
}

// NewDB returns an empty database.
func NewDB() *DB {
	db := &DB{tables: make(map[string]*Table)}
	db.initPlanCache()
	db.initResultCache()
	db.vecOn.Store(true)
	return db
}

// Table returns the named table (case-insensitive), or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames returns the table names in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

func (db *DB) createTable(name string, cols []Column) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := db.tables[key]; dup {
		return fmt.Errorf("sqldb: table %s already exists", name)
	}
	t, err := newTable(name, cols)
	if err != nil {
		return err
	}
	db.tables[key] = t
	db.ddl.Add(1)
	db.clearPlanCache()
	db.clearResultCache()
	return nil
}

func (db *DB) dropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("sqldb: no table %s", name)
	}
	delete(db.tables, key)
	db.ddl.Add(1)
	db.clearPlanCache()
	db.clearResultCache()
	return nil
}
