package sqldb

import (
	"testing"
)

// cacheDB builds a small two-table database for subquery tests.
func cacheDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE runs (id INTEGER PRIMARY KEY, nope INTEGER)`, nil)
	db.MustExec(`CREATE TABLE times (id INTEGER PRIMARY KEY, run_id INTEGER, v REAL)`, nil)
	db.MustExec(`INSERT INTO runs (id, nope) VALUES (1, 2), (2, 8), (3, 32)`, nil)
	db.MustExec(`INSERT INTO times (id, run_id, v) VALUES
		(10, 1, 1.0), (11, 2, 2.0), (12, 3, 4.0)`, nil)
	return db
}

func TestInvariantSubqueryCachingCorrectness(t *testing.T) {
	db := cacheDB(t)
	// The same textual subquery appears twice (as the ASL compiler emits
	// it); the cached value must match the uncached semantics.
	q := `SELECT
		(SELECT MIN(nope) FROM runs) + (SELECT MIN(nope) FROM runs) AS s,
		(SELECT v FROM times WHERE run_id = (SELECT MIN(id) FROM runs)) AS first`
	res, err := db.Exec(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Rows[0][0].Int() != 4 {
		t.Fatalf("sum: %v", res.Set.Rows[0][0])
	}
	if res.Set.Rows[0][1].Float() != 1.0 {
		t.Fatalf("first: %v", res.Set.Rows[0][1])
	}
}

func TestCorrelatedSubqueryNotCached(t *testing.T) {
	db := cacheDB(t)
	// The subquery is correlated with the outer row; each row must get its
	// own value, so the invariant cache must not fire.
	res, err := db.Exec(`
		SELECT r.nope, (SELECT t.v FROM times t WHERE t.run_id = r.id) AS v
		FROM runs r ORDER BY r.nope`, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0, 2.0, 4.0}
	for i, row := range res.Set.Rows {
		if row[1].Float() != want[i] {
			t.Fatalf("row %d: %v, want %g", i, row[1], want[i])
		}
	}
}

func TestShadowedAliasIsNotCorrelated(t *testing.T) {
	db := cacheDB(t)
	// The inner query rebinds alias r; the inner r.id must refer to the
	// inner table even though an outer r exists.
	res, err := db.Exec(`
		SELECT r.nope, (SELECT MAX(r.id) FROM runs r) AS m
		FROM runs r ORDER BY r.nope`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Set.Rows {
		if row[1].Int() != 3 {
			t.Fatalf("shadowed max: %v", row[1])
		}
	}
}

func TestParamsFeedInvariantSubqueries(t *testing.T) {
	db := cacheDB(t)
	res, err := db.Exec(`
		SELECT (SELECT v FROM times WHERE run_id = $r) AS v`,
		&Params{Named: map[string]Value{"r": NewInt(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Rows[0][0].Float() != 2.0 {
		t.Fatalf("param-correlated: %v", res.Set.Rows[0][0])
	}
	// Same statement text, different parameter: a fresh execution context
	// must not reuse the old cache.
	res, err = db.Exec(`
		SELECT (SELECT v FROM times WHERE run_id = $r) AS v`,
		&Params{Named: map[string]Value{"r": NewInt(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Rows[0][0].Float() != 4.0 {
		t.Fatalf("second param: %v", res.Set.Rows[0][0])
	}
}

func TestIndexedLookupThroughSubqueryRHS(t *testing.T) {
	db := cacheDB(t)
	// "id = (subquery)" must use the primary-key index; correctness check
	// (the performance effect is covered by the benchmarks).
	res, err := db.Exec(`SELECT nope FROM runs WHERE id = (SELECT MAX(run_id) FROM times)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) != 1 || res.Set.Rows[0][0].Int() != 32 {
		t.Fatalf("rows: %v", res.Set.Rows)
	}
}

func TestFormatExprRoundTrip(t *testing.T) {
	// FormatExpr output must re-parse to an expression that formats
	// identically (it is the cache key, so stability matters).
	exprs := []string{
		`1 + 2 * 3`,
		`a.b = 'x''y'`,
		`(SELECT MAX(v) FROM times t WHERE t.run_id = $r)`,
		`x IS NOT NULL AND NOT (y < 3)`,
		`v IN (1, 2, 3)`,
		`v NOT IN (SELECT id FROM runs)`,
		`EXISTS (SELECT 1 FROM runs WHERE nope > 2)`,
		`COALESCE(NULL, -4.5) || ''`,
		`COUNT(*)`,
	}
	for _, src := range exprs {
		stmt, err := ParseSQL("SELECT " + src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		e := stmt.(*SelectStmt).Items[0].Expr
		text := FormatExpr(e)
		stmt2, err := ParseSQL("SELECT " + text)
		if err != nil {
			t.Fatalf("re-parse %q: %v", text, err)
		}
		text2 := FormatExpr(stmt2.(*SelectStmt).Items[0].Expr)
		if text != text2 {
			t.Fatalf("format not stable: %q vs %q", text, text2)
		}
	}
}

func TestExprRefsBinding(t *testing.T) {
	parse := func(src string) Expr {
		stmt, err := ParseSQL("SELECT " + src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		return stmt.(*SelectStmt).Items[0].Expr
	}
	cases := []struct {
		src     string
		binding string
		want    bool
	}{
		{"1 + 2", "t", false},
		{"$p", "t", false},
		{"t.x", "t", true},
		{"u.x", "t", false},
		{"x", "t", true}, // unqualified: conservative
		{"(SELECT a.v FROM times a WHERE a.run_id = t.id)", "t", true},
		{"(SELECT a.v FROM times a WHERE a.run_id = 1)", "t", false},
		{"(SELECT t.v FROM times t)", "t", false}, // shadowed
		{"EXISTS (SELECT 1 FROM runs r WHERE r.id = t.id)", "t", true},
		{"v IN (SELECT t.id FROM runs t)", "t", true}, // v unqualified
	}
	for _, c := range cases {
		if got := exprRefsBinding(parse(c.src), c.binding); got != c.want {
			t.Errorf("exprRefsBinding(%q, %q) = %v, want %v", c.src, c.binding, got, c.want)
		}
	}
}

func TestDeepNestedSubqueries(t *testing.T) {
	db := cacheDB(t)
	// Triple nesting with correlation at each level.
	res, err := db.Exec(`
		SELECT (SELECT t.v FROM times t WHERE t.run_id =
			(SELECT r.id FROM runs r WHERE r.nope =
				(SELECT MAX(r2.nope) FROM runs r2)))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Rows[0][0].Float() != 4.0 {
		t.Fatalf("nested: %v", res.Set.Rows[0][0])
	}
}

func TestAggregateInsideSubqueryOfGroupedQuery(t *testing.T) {
	db := cacheDB(t)
	res, err := db.Exec(`
		SELECT r.nope, COUNT(*) FROM runs r JOIN times t ON t.run_id = r.id
		GROUP BY r.nope
		HAVING COUNT(*) >= (SELECT MIN(id) FROM runs)
		ORDER BY r.nope`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set.Rows) != 3 {
		t.Fatalf("rows: %v", res.Set.Rows)
	}
}

func TestStringQuotingInFormat(t *testing.T) {
	// Embedded quotes must render SQL-escaped so the text re-parses.
	if got := FormatExpr(&ELit{Value: NewText("a'b")}); got != "'a''b'" {
		t.Fatalf("format: %q, want %q", got, "'a''b'")
	}
}
