package sqldb

// Columnar table storage. A table holds one typed vector per column — int64,
// float64, or string payloads plus a null bitmap — instead of a []Row of
// boxed Values. The layout serves both execution engines from one format:
// the vectorized operators (vecexec.go) read the typed slices directly,
// batch-at-a-time, while the row interpreter and the DML read paths see rows
// through a lazily materialized, cached row view (Table.scan).
//
// Storage is homogeneous by construction: Table.insert coerces every value to
// the declared column type before it is appended, so a colVec cell is either
// NULL (bit set in the bitmap) or exactly the column's type. That invariant
// is what lets the vectorized kernels dispatch per batch instead of per row.

// nullBitmap tracks NULL cells, one bit per row.
type nullBitmap []uint64

func (b nullBitmap) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b *nullBitmap) set(i int, null bool) {
	if null {
		(*b)[i>>6] |= 1 << (uint(i) & 63)
	} else {
		(*b)[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// grow extends the bitmap to cover n rows.
func (b *nullBitmap) grow(n int) {
	words := (n + 63) >> 6
	for len(*b) < words {
		*b = append(*b, 0)
	}
}

// colVec is the storage of one column: a typed payload vector and the null
// bitmap. Exactly one payload slice is in use, chosen by typ:
//
//	TInt, TBool → ints (booleans store 0/1, as Value does)
//	TFloat      → floats
//	TText       → strs
//
// NULL cells keep a zero payload with the null bit set.
type colVec struct {
	typ   ColType
	n     int
	nulls nullBitmap
	ints  []int64
	flts  []float64
	strs  []string
}

func newColVec(t ColType) *colVec { return &colVec{typ: t} }

// appendVal appends a value that has already been coerced to the column type.
func (c *colVec) appendVal(v Value) {
	i := c.n
	c.n++
	c.nulls.grow(c.n)
	c.nulls.set(i, v.IsNull())
	switch c.typ {
	case TInt, TBool:
		c.ints = append(c.ints, v.i)
	case TFloat:
		c.flts = append(c.flts, v.f)
	case TText:
		c.strs = append(c.strs, v.s)
	}
}

// value materializes cell i as a Value. It allocates nothing: string payloads
// share the stored backing array.
func (c *colVec) value(i int) Value {
	if c.nulls.get(i) {
		return Null
	}
	switch c.typ {
	case TInt:
		return Value{kind: kindInt, i: c.ints[i]}
	case TBool:
		return Value{kind: kindBool, i: c.ints[i]}
	case TFloat:
		return Value{kind: kindFloat, f: c.flts[i]}
	case TText:
		return Value{kind: kindText, s: c.strs[i]}
	}
	return Null
}

// setVal overwrites cell i with a value already coerced to the column type.
func (c *colVec) setVal(i int, v Value) {
	c.nulls.set(i, v.IsNull())
	switch c.typ {
	case TInt, TBool:
		c.ints[i] = v.i
	case TFloat:
		c.flts[i] = v.f
	case TText:
		c.strs[i] = v.s
	}
}

// compact drops every row whose keep bit is false, preserving order.
func (c *colVec) compact(keep []bool) {
	out := 0
	for i := 0; i < c.n; i++ {
		if !keep[i] {
			continue
		}
		if out != i {
			c.nulls.set(out, c.nulls.get(i))
			switch c.typ {
			case TInt, TBool:
				c.ints[out] = c.ints[i]
			case TFloat:
				c.flts[out] = c.flts[i]
			case TText:
				c.strs[out] = c.strs[i]
			}
		}
		out++
	}
	for i := out; i < c.n; i++ {
		c.nulls.set(i, false) // scrub the tail so grown bitmaps stay clean
	}
	switch c.typ {
	case TInt, TBool:
		c.ints = c.ints[:out]
	case TFloat:
		c.flts = c.flts[:out]
	case TText:
		c.strs = c.strs[:out]
	}
	c.n = out
}

// key returns the grouping/index key of cell i (see Value.Key).
func (c *colVec) key(i int) string { return c.value(i).Key() }
