// Differential fuzzing of the two SELECT execution engines: any query the
// parser accepts must produce the same outcome on the vectorized engine and
// the row interpreter — the same ResultSet when both succeed, and an error on
// both when either fails. The seed corpus is the full canonical property set
// (the queries the analyzer actually runs) plus handcrafted shapes covering
// joins, grouping, subqueries, and three-valued logic over NULLs.
package sqldb_test

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/model"
	"repro/internal/sqldb"
)

// diffState is the shared database the fuzzer queries: the canonical COSY
// schema loaded with a small simulated history, plus an auxiliary table whose
// rows carry NULLs in every column type. Built once per process — the fuzz
// body only ever executes SELECTs against it.
var diffState struct {
	sync.Once
	db  *sqldb.DB
	err error
}

func diffDB(tb testing.TB) *sqldb.DB {
	tb.Helper()
	s := &diffState
	s.Do(func() {
		db := sqldb.NewDB()
		// Cache off: a cached result would be replayed to the second engine
		// and hide any divergence.
		db.SetResultCacheSize(0)
		exec := sqlgen.ExecutorFunc(func(q string, p *sqldb.Params) (int, error) {
			res, err := db.Exec(q, p)
			if err != nil {
				return 0, err
			}
			return res.Affected, nil
		})
		// A deliberately small history: fuzz mutants routinely degrade equi-
		// joins into cartesian products, so worst-case cost must stay bounded.
		ds, err := apprentice.Simulate(apprentice.Stencil(), apprentice.PartitionSweep(2, 4), 42)
		if err != nil {
			s.err = err
			return
		}
		g, err := model.Build(ds)
		if err != nil {
			s.err = err
			return
		}
		if err := sqlgen.CreateSchema(g.World, exec); err != nil {
			s.err = err
			return
		}
		if _, err := sqlgen.Load(g.Store, exec); err != nil {
			s.err = err
			return
		}
		for _, q := range []string{
			`CREATE TABLE fuzz_aux (id INTEGER PRIMARY KEY, v INTEGER, w REAL, s TEXT, b BOOLEAN)`,
			`INSERT INTO fuzz_aux (id, v, w, s, b) VALUES (1, 10, 1.5, 'alpha', TRUE)`,
			`INSERT INTO fuzz_aux (id, v, w, s, b) VALUES (2, NULL, 2.5, 'beta', FALSE)`,
			`INSERT INTO fuzz_aux (id, v, w, s, b) VALUES (3, 30, NULL, NULL, TRUE)`,
			`INSERT INTO fuzz_aux (id, v, w, s, b) VALUES (4, 10, 4.0, 'alpha', NULL)`,
			`INSERT INTO fuzz_aux (id, v, w, s, b) VALUES (5, NULL, NULL, 'gamma', NULL)`,
		} {
			if _, err := db.Exec(q, nil); err != nil {
				s.err = err
				return
			}
		}
		s.db = db
	})
	if s.err != nil {
		tb.Fatal(s.err)
	}
	return s.db
}

// bindParams builds actual parameters for a query from three fuzz-controlled
// integers: every distinct $name marker in the text gets one of the values in
// scan order, and positional markers draw from the same pool. Over-binding is
// harmless; under-binding errors identically on both engines.
func bindParams(sql string, p1, p2, p3 int64) *sqldb.Params {
	vals := []int64{p1, p2, p3}
	params := &sqldb.Params{Positional: []sqldb.Value{
		sqldb.NewInt(p1), sqldb.NewInt(p2), sqldb.NewInt(p3),
	}}
	next := 0
	for i := 0; i < len(sql); i++ {
		if sql[i] != '$' {
			continue
		}
		j := i + 1
		for j < len(sql) && (isIdentByte(sql[j])) {
			j++
		}
		if j == i+1 {
			continue
		}
		name := sql[i+1 : j]
		if params.Named == nil {
			params.Named = make(map[string]sqldb.Value)
		}
		if _, ok := params.Named[name]; !ok {
			params.Named[name] = sqldb.NewInt(vals[next%len(vals)])
			next++
		}
		i = j - 1
	}
	return params
}

func isIdentByte(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// FuzzEngineDifferential cross-checks the engines on arbitrary SELECT text.
// Non-SELECT statements are skipped (the database is shared across
// executions), as is text the parser rejects — the parse happens before
// engine dispatch, so rejection cannot diverge.
func FuzzEngineDifferential(f *testing.F) {
	w := model.MustCompileSpec()
	compiled, errs := sqlgen.CompileAll(w)
	if len(errs) > 0 {
		f.Fatalf("canonical properties failed to compile: %v", errs)
	}
	names := make([]string, 0, len(compiled))
	for name := range compiled {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f.Add(compiled[name].SQL, int64(1), int64(2), int64(3))
	}
	for _, sql := range []string{
		`SELECT v, COUNT(id), SUM(w) FROM fuzz_aux GROUP BY v ORDER BY v`,
		`SELECT a.id, b.s FROM fuzz_aux a JOIN fuzz_aux b ON a.v = b.v ORDER BY a.id, b.id`,
		`SELECT s FROM fuzz_aux WHERE v > ? OR w IS NULL ORDER BY id LIMIT 3`,
		`SELECT id FROM fuzz_aux x WHERE EXISTS (SELECT id FROM fuzz_aux y WHERE y.v = x.v AND y.id <> x.id)`,
		`SELECT id, (SELECT MAX(w) FROM fuzz_aux y WHERE y.v = x.v) FROM fuzz_aux x ORDER BY id`,
		`SELECT COUNT(id) FROM fuzz_aux WHERE b AND s IN ('alpha', 'gamma')`,
		`SELECT v, AVG(w) FROM fuzz_aux GROUP BY v HAVING COUNT(id) > 1`,
		`SELECT MIN(v), MAX(w), COUNT(s) FROM fuzz_aux WHERE id <> $k`,
	} {
		f.Add(sql, int64(10), int64(2), int64(30))
	}

	f.Fuzz(func(t *testing.T, sql string, p1, p2, p3 int64) {
		stmt, err := sqldb.ParseSQL(sql)
		if err != nil {
			return
		}
		if _, ok := stmt.(*sqldb.SelectStmt); !ok {
			return
		}
		db := diffDB(t)
		params := bindParams(sql, p1, p2, p3)
		run := func(engine string) (*sqldb.ResultSet, error) {
			if err := db.SetEngine(engine); err != nil {
				t.Fatal(err)
			}
			res, err := db.Exec(sql, params)
			if err != nil {
				return nil, err
			}
			return res.Set, nil
		}
		vecSet, vecErr := run(sqldb.EngineVector)
		rowSet, rowErr := run(sqldb.EngineRow)
		if (vecErr == nil) != (rowErr == nil) {
			t.Fatalf("engine divergence on %q: vector err=%v, row err=%v", sql, vecErr, rowErr)
		}
		if vecErr != nil {
			return // both failed: agreement
		}
		if !reflect.DeepEqual(vecSet, rowSet) {
			t.Fatalf("engine divergence on %q:\nvector: %+v\nrow:    %+v", sql, vecSet, rowSet)
		}
	})
}
