package sqldb

import (
	"strings"
)

// FormatExpr renders an expression back to canonical SQL text. The renderer
// is used for diagnostics and as the structural cache key for invariant
// subqueries: the ASL property compiler expands LET bindings textually, so
// identical subqueries appear as distinct AST nodes that render identically.
func FormatExpr(e Expr) string {
	var b strings.Builder
	formatExpr(&b, e)
	return b.String()
}

// FormatSelect renders a SELECT statement to canonical SQL text. The planner
// uses it as the statement component of result-cache keys, so two spellings
// of the same query share one cache slot.
func FormatSelect(st *SelectStmt) string {
	var b strings.Builder
	formatSelect(&b, st)
	return b.String()
}

func formatExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		b.WriteString("NULL")
	case *ELit:
		b.WriteString(x.Value.String())
	case *EParam:
		if x.Name != "" {
			b.WriteByte('$')
			b.WriteString(x.Name)
		} else {
			b.WriteByte('?')
		}
	case *EColumn:
		if x.Qual != "" {
			b.WriteString(x.Qual)
			b.WriteByte('.')
		}
		b.WriteString(x.Name)
	case *EBinary:
		b.WriteByte('(')
		formatExpr(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		formatExpr(b, x.R)
		b.WriteByte(')')
	case *EUnary:
		if x.Neg {
			b.WriteString("(-")
		} else {
			b.WriteString("(NOT ")
		}
		formatExpr(b, x.X)
		b.WriteByte(')')
	case *ECall:
		b.WriteString(strings.ToUpper(x.Name))
		b.WriteByte('(')
		if x.Star {
			b.WriteByte('*')
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, a)
		}
		b.WriteByte(')')
	case *EIsNull:
		b.WriteByte('(')
		formatExpr(b, x.X)
		if x.Not {
			b.WriteString(" IS NOT NULL)")
		} else {
			b.WriteString(" IS NULL)")
		}
	case *ESubquery:
		b.WriteByte('(')
		formatSelect(b, x.Select)
		b.WriteByte(')')
	case *EExists:
		b.WriteString("EXISTS (")
		formatSelect(b, x.Select)
		b.WriteByte(')')
	case *EIn:
		b.WriteByte('(')
		formatExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		if x.Sub != nil {
			formatSelect(b, x.Sub)
		}
		for i, a := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, a)
		}
		b.WriteString("))")
	default:
		b.WriteString("<?expr>")
	}
}

func formatSelect(b *strings.Builder, st *SelectStmt) {
	b.WriteString("SELECT ")
	for i, item := range st.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if item.Star {
			b.WriteByte('*')
			continue
		}
		formatExpr(b, item.Expr)
		if item.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(item.Alias)
		}
	}
	if st.From != nil {
		b.WriteString(" FROM ")
		b.WriteString(st.From.Table)
		if st.From.Alias != "" {
			b.WriteByte(' ')
			b.WriteString(st.From.Alias)
		}
		for _, j := range st.Joins {
			b.WriteString(" JOIN ")
			b.WriteString(j.Table.Table)
			if j.Table.Alias != "" {
				b.WriteByte(' ')
				b.WriteString(j.Table.Alias)
			}
			b.WriteString(" ON ")
			formatExpr(b, j.On)
		}
	}
	if st.Where != nil {
		b.WriteString(" WHERE ")
		formatExpr(b, st.Where)
	}
	if len(st.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range st.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, g)
		}
	}
	if st.Having != nil {
		b.WriteString(" HAVING ")
		formatExpr(b, st.Having)
	}
	if len(st.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range st.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
			// NULLS LAST is the default and canonicalizes away.
			if o.NullsFirst {
				b.WriteString(" NULLS FIRST")
			}
		}
	}
	if st.Limit != nil {
		b.WriteString(" LIMIT ")
		formatExpr(b, st.Limit)
	}
}
