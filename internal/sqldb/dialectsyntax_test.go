package sqldb

import (
	"strings"
	"testing"
)

// These tests cover the syntax extensions that make the ansi and oracle7
// renderings of internal/sqlast/build executable on the embedded engine:
// double-quoted identifiers, :name parameter markers, explicit NULLS
// FIRST/LAST ordering, and FETCH FIRST n ROWS ONLY.

func TestQuotedIdentifiers(t *testing.T) {
	db := testDB(t)
	set := mustQuery(t, db,
		`SELECT "e"."name" AS "who" FROM "emp" "e" WHERE "e"."id" = 1`, nil)
	if len(set.Rows) != 1 || set.Rows[0][0].Text() != "ada" {
		t.Fatalf("quoted-identifier query returned %v", set.Rows)
	}
	if set.Columns[0] != "who" {
		t.Fatalf("quoted alias = %q, want who", set.Columns[0])
	}
	// A quoted identifier is never a keyword or literal.
	if _, err := db.Exec(`SELECT "SELECT" FROM emp`, nil); err == nil ||
		!strings.Contains(err.Error(), "SELECT") {
		t.Fatalf(`"SELECT" should resolve (and fail) as a column name, got %v`, err)
	}
	for _, bad := range []string{`SELECT "unterminated FROM emp`, `SELECT "" FROM emp`} {
		if _, err := ParseSQL(bad); err == nil {
			t.Errorf("parse accepted %q", bad)
		}
	}
}

func TestColonParamMarkers(t *testing.T) {
	db := testDB(t)
	p := &Params{Named: map[string]Value{"d": NewInt(1)}}
	set := mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE dept = :d`, p)
	if set.Rows[0][0].Int() != 2 {
		t.Fatalf("colon-marker count = %v, want 2", set.Rows[0][0])
	}
	// $d and :d address the same binding.
	set2 := mustQuery(t, db, `SELECT COUNT(*) FROM emp WHERE dept = $d`, p)
	if set2.Rows[0][0].Int() != set.Rows[0][0].Int() {
		t.Fatal("$name and :name resolved differently")
	}
	if _, err := ParseSQL(`SELECT : FROM emp`); err == nil {
		t.Error("bare : accepted")
	}
}

func TestOrderByNullsFirst(t *testing.T) {
	db := testDB(t)
	first := mustQuery(t, db, `SELECT id FROM emp ORDER BY salary NULLS FIRST, id`, nil)
	if first.Rows[0][0].Int() != 5 {
		t.Fatalf("NULLS FIRST put id %v first, want 5 (the NULL salary)", first.Rows[0][0])
	}
	// NULLS LAST spells out the engine default: same rows, same order.
	last := mustQuery(t, db, `SELECT id FROM emp ORDER BY salary NULLS LAST, id`, nil)
	plain := mustQuery(t, db, `SELECT id FROM emp ORDER BY salary, id`, nil)
	for i := range plain.Rows {
		if last.Rows[i][0].Int() != plain.Rows[i][0].Int() {
			t.Fatalf("NULLS LAST diverged from default at row %d", i)
		}
	}
	// DESC still keeps NULLs where the modifier says, not where DESC would.
	descFirst := mustQuery(t, db, `SELECT id FROM emp ORDER BY salary DESC NULLS FIRST, id`, nil)
	if descFirst.Rows[0][0].Int() != 5 {
		t.Fatalf("DESC NULLS FIRST put id %v first, want 5", descFirst.Rows[0][0])
	}
	if _, err := ParseSQL(`SELECT id FROM emp ORDER BY salary NULLS SOMETIMES`); err == nil {
		t.Error("NULLS SOMETIMES accepted")
	}
}

func TestFetchFirstEquivalentToLimit(t *testing.T) {
	db := testDB(t)
	fetch := mustQuery(t, db, `SELECT id FROM emp ORDER BY id FETCH FIRST 2 ROWS ONLY`, nil)
	limit := mustQuery(t, db, `SELECT id FROM emp ORDER BY id LIMIT 2`, nil)
	if len(fetch.Rows) != 2 || len(limit.Rows) != 2 {
		t.Fatalf("row counts: fetch=%d limit=%d, want 2", len(fetch.Rows), len(limit.Rows))
	}
	for i := range fetch.Rows {
		if fetch.Rows[i][0].Int() != limit.Rows[i][0].Int() {
			t.Fatalf("FETCH FIRST diverged from LIMIT at row %d", i)
		}
	}
	one := mustQuery(t, db, `SELECT id FROM emp ORDER BY id FETCH FIRST 1 ROW ONLY`, nil)
	if len(one.Rows) != 1 {
		t.Fatalf("FETCH FIRST 1 ROW ONLY returned %d rows", len(one.Rows))
	}
	for _, bad := range []string{
		`SELECT id FROM emp FETCH 2 ROWS ONLY`,
		`SELECT id FROM emp FETCH FIRST 2 ROWS`,
		`SELECT id FROM emp FETCH FIRST 2 COLUMNS ONLY`,
	} {
		if _, err := ParseSQL(bad); err == nil {
			t.Errorf("parse accepted %q", bad)
		}
	}
}

// TestNullsFirstCanonicalization pins the cache-key behavior: NULLS LAST is
// the default and canonicalizes away (sharing plan/result-cache entries with
// the unmodified spelling), NULLS FIRST survives.
func TestNullsFirstCanonicalization(t *testing.T) {
	cases := []struct{ in, want string }{
		{`SELECT id FROM emp ORDER BY salary NULLS LAST`, `SELECT id FROM emp ORDER BY salary`},
		{`SELECT id FROM emp ORDER BY salary NULLS FIRST`, `SELECT id FROM emp ORDER BY salary NULLS FIRST`},
		{`SELECT id FROM emp ORDER BY salary DESC NULLS FIRST`, `SELECT id FROM emp ORDER BY salary DESC NULLS FIRST`},
		{`SELECT id FROM emp FETCH FIRST 2 ROWS ONLY`, `SELECT id FROM emp LIMIT 2`},
	}
	for _, c := range cases {
		stmt, err := ParseSQL(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		sel, ok := stmt.(*SelectStmt)
		if !ok {
			t.Fatalf("parse %q: not a SELECT", c.in)
		}
		if got := FormatSelect(sel); got != c.want {
			t.Errorf("canonical(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
