package sqldb

// The vectorized SELECT pipeline. A compiled plan (vec.go) runs here as a
// chain of physical operators over batches of row positions:
//
//	seed (access paths / full scan, as positions)
//	  → hash-join probes (equi-column index, built lazily like the row engine)
//	  → residual-conjunct and WHERE filters (selection-vector narrowing)
//	  → projection, or streaming grouped aggregation
//	  → shared ORDER BY / LIMIT tail (exec.go)
//
// The pipeline mirrors the row interpreter's observable behavior exactly:
// same seed strategy (including falling back to a scan when an access path's
// key errors), same join expansion order (index position order), same
// conjunct narrowing order, same first-seen group order, same accumulation
// order (so float sums are bit-identical), and the same shared sort/LIMIT
// code. Grouped finalization is hybrid: aggregates are accumulated here,
// batch-at-a-time, then the scalar parts of the projection and HAVING run
// through the row evaluator with the aggregate call sites pre-folded
// (execCtx.aggPre), against the group's representative row.

import "fmt"

// vecGroup is the streaming state of one group: the representative row
// positions (the group's first row, mirroring the row engine's rep tuple),
// one accumulator per aggregate call site, and the tuple count.
type vecGroup struct {
	rep    []int32
	hasRep bool
	accs   []aggAcc
	n      int64
}

func (ec *execCtx) vecExecSelect(st *SelectStmt, sp *selectPlan, parent *frame) (*ResultSet, error) {
	rows, err := ec.vecExecRows(st, sp, parent)
	if err != nil {
		return nil, err
	}
	set := &ResultSet{Columns: sp.vec.columns}
	set.Rows = make([]Row, len(rows))
	for i := range rows {
		set.Rows[i] = rows[i].row
	}
	return set, nil
}

// vecExecScalar evaluates a planned single-column SELECT in scalar-subquery
// position without materializing a ResultSet — the shape the property
// queries hit once per attribute dereference. Cardinality semantics are the
// row engine's: 0 rows → NULL, one row → its value, more → the error.
func (ec *execCtx) vecExecScalar(st *SelectStmt, sp *selectPlan, parent *frame) (Value, error) {
	rows, err := ec.vecExecRows(st, sp, parent)
	if err != nil {
		return Null, err
	}
	switch len(rows) {
	case 0:
		return Null, nil
	case 1:
		return rows[0].row[0], nil
	}
	return Null, fmt.Errorf("sqldb: scalar subquery returned %d rows", len(rows))
}

// vecExecExists evaluates a planned SELECT in EXISTS position without
// materializing a ResultSet.
func (ec *execCtx) vecExecExists(st *SelectStmt, sp *selectPlan, parent *frame) (Value, error) {
	rows, err := ec.vecExecRows(st, sp, parent)
	if err != nil {
		return Null, err
	}
	return NewBool(len(rows) > 0), nil
}

// vecExecRows runs the compiled pipeline of one planned SELECT and returns
// the ordered, limited output rows. Row cells are freshly allocated —
// nothing aliases the pooled context, which is released on return.
func (ec *execCtx) vecExecRows(st *SelectStmt, sp *selectPlan, parent *frame) ([]sortableRow, error) {
	vp := sp.vec

	// Bind the tables. Rows stay nil — positions replace them — except
	// during grouped finalization, which materializes representative rows.
	// A table-less SELECT binds nothing and runs one batch of one empty
	// tuple, mirroring the row engine's single seed tuple.
	vc := acquireVecCtx(ec, vp.nTab)
	defer vc.release()
	vc.fr = frame{parent: parent}
	bts, tabs := vc.bts, vc.tabs
	fr := &vc.fr
	var seed []int32
	var err error
	if vp.nTab > 0 {
		vc.btStore[0] = boundTable{binding: sp.fromBinding, table: sp.from}
		vc.tabs[0] = sp.from
		for i := range sp.joins {
			vc.btStore[i+1] = boundTable{binding: sp.joins[i].binding, table: sp.joins[i].table}
			vc.tabs[i+1] = sp.joins[i].table
		}
		fr.tables = bts[:1]

		// Seed positions while the frame holds only the first table —
		// access-path keys resolve exactly as they would in the row engine's
		// seed phase.
		seed, err = ec.vecSeed(sp, fr, bts[0], vc.seed[:0])
		if err != nil {
			return nil, err
		}
		vc.seed = seed
		fr.tables = bts
	}

	// Grab each equi-join's probe index once: indexes mutate only under the
	// exclusive DB statement lock, so probes need no further locking.
	// Nested-loop joins (eqCol < 0) have no index.
	idxs := vc.idxBuf[:0]
	for k := range vp.joins {
		if vp.joins[k].eqCol < 0 {
			idxs = append(idxs, nil)
			continue
		}
		t := tabs[k+1]
		t.createIndex(vp.joins[k].eqCol)
		t.mu.RLock()
		idxs = append(idxs, t.indexes[vp.joins[k].eqCol])
		t.mu.RUnlock()
	}
	vc.idxBuf = idxs

	// Decide the filter strategy for the whole execution: fused kernels when
	// every comparand binds and class-checks, the compiled filter tree
	// otherwise (which also reproduces comparand errors).
	fused := vp.fused
	if fused != nil && !vc.fuseReady(fused) {
		fused = nil
	}

	var rows []sortableRow

	// Grouped state, shared across batches: first-seen key order, as in
	// groupTuples. Without GROUP BY the single group exists even when empty —
	// and lives on the pooled context (the scalar-aggregation shape of the
	// property queries), skipping the key/map machinery entirely.
	var groups map[string]*vecGroup
	var groupOrder []string
	var single *vecGroup
	newGroup := func() *vecGroup {
		g := &vecGroup{}
		if len(vp.aggs) > 0 {
			g.accs = make([]aggAcc, len(vp.aggs))
			for i := range g.accs {
				g.accs[i] = newAggAcc()
			}
		}
		return g
	}
	if vp.grouped {
		if len(vp.groupBy) == 0 {
			single = vc.singleGroup(vp)
		} else {
			groups = make(map[string]*vecGroup)
		}
	}

	b, nb := &vc.b, &vc.nb
	keyBuf := vc.keyBuf

	for start := 0; ; start += vecBatchSize {
		if vp.nTab == 0 {
			// One batch of one empty tuple, like the row engine's seed.
			if start > 0 {
				break
			}
			b.n = 1
		} else {
			if start >= len(seed) {
				break
			}
			end := start + vecBatchSize
			if end > len(seed) {
				end = len(seed)
			}
			b.n = end - start
			// Copy the chunk out of the seed buffer: the position batches are
			// pooled, and a gather reusing one of them in place must never
			// write into unconsumed seed positions.
			if cap(vc.chunkBuf) < b.n {
				vc.chunkBuf = make([]int32, vecBatchSize)
			}
			vc.chunkBuf = vc.chunkBuf[:b.n]
			copy(vc.chunkBuf, seed[start:end])
			b.pos[0] = vc.chunkBuf
			for t := 1; t < vp.nTab; t++ {
				b.pos[t] = nil
			}
		}

		// Join expansions, narrowing by the residual conjuncts after each.
		for k := range vp.joins {
			if b.n == 0 {
				break
			}
			if vp.joins[k].eqCol < 0 {
				vc.crossJoin(b, nb, k)
			} else if err := vc.probeJoin(b, nb, &vp.joins[k], k, idxs[k]); err != nil {
				return nil, err
			}
			b, nb = nb, b
			for _, rest := range vp.joins[k].rest {
				if b.n == 0 {
					break
				}
				out, err := vc.narrow(b, nb, rest)
				if err != nil {
					return nil, err
				}
				if out != b {
					b, nb = nb, b
				}
			}
		}
		if b.n == 0 {
			continue
		}

		// WHERE.
		if vp.filter != nil {
			if fused != nil {
				out := vc.narrowFused(b, nb, fused)
				if out != b {
					b, nb = nb, b
				}
			} else {
				out, err := vc.narrow(b, nb, vp.filter)
				if err != nil {
					return nil, err
				}
				if out != b {
					b, nb = nb, b
				}
			}
			if b.n == 0 {
				continue
			}
		}

		if vp.grouped {
			if single != nil {
				if err := vc.accumulateSingle(b, vp, single); err != nil {
					return nil, err
				}
				continue
			}
			keyBuf, err = vc.accumulate(b, vp, groups, &groupOrder, newGroup, keyBuf)
			if err != nil {
				return nil, err
			}
			continue
		}

		out, err := vc.project(b, vp)
		if err != nil {
			return nil, err
		}
		rows = append(rows, out...)
	}

	vc.keyBuf = keyBuf

	if vp.grouped {
		seq := vc.groupSeq[:0]
		if single != nil {
			seq = append(seq, single)
		} else {
			for _, k := range groupOrder {
				seq = append(seq, groups[k])
			}
		}
		vc.groupSeq = seq
		rows, err = vc.finalizeGroups(st, vp, seq)
		if err != nil {
			return nil, err
		}
	}

	if err := sortRows(rows, st.OrderBy); err != nil {
		return nil, err
	}

	if st.Limit != nil {
		lv, err := ec.eval(st.Limit, fr)
		if err != nil {
			return nil, err
		}
		if !lv.IsNumeric() {
			return nil, fmt.Errorf("sqldb: LIMIT is not numeric")
		}
		n := int(lv.Float())
		if n < 0 {
			n = 0
		}
		if n < len(rows) {
			rows = rows[:n]
		}
	}

	return rows, nil
}

// vecSeed returns the seed row positions of the first table: an index point
// lookup when one of the planned access paths applies (the positions are
// copied — downstream narrowing must not alias the index), a full scan
// otherwise. Mirrors seedRows, including swallowing key-evaluation errors to
// fall back to the scan.
func (ec *execCtx) vecSeed(sp *selectPlan, fr *frame, bt *boundTable, buf []int32) ([]int32, error) {
	for _, ap := range sp.access {
		if !bt.table.hasIndex(ap.col) {
			continue
		}
		v, err := ec.eval(ap.val, fr)
		if err != nil {
			continue // not evaluable up front; fall back to a scan
		}
		positions, _ := bt.table.lookup(ap.col, v)
		for _, p := range positions {
			buf = append(buf, int32(p))
		}
		return buf, nil
	}
	n := bt.table.nrows // stable: DML runs under the exclusive statement lock
	for i := 0; i < n; i++ {
		buf = append(buf, int32(i))
	}
	return buf, nil
}

// probeJoin expands the batch through one equi-join: evaluate the outer key,
// skip NULL keys, and emit one output row per index hit, in index position
// order — the same candidate order as the row engine's lookup loop.
func (vc *vecCtx) probeJoin(b, nb *vbatch, vj *vecJoin, k int, idx map[string][]int) error {
	keys := vc.getCol()
	defer vc.putCol(keys)
	if err := vj.outer(vc, b, keys); err != nil {
		return err
	}
	nb.n = 0
	for t := 0; t <= k+1; t++ {
		nb.pos[t] = nb.pos[t][:0]
	}
	for i := 0; i < b.n; i++ {
		key := keys.at(i)
		if key.IsNull() {
			continue
		}
		vc.probeBuf = key.AppendKey(vc.probeBuf[:0])
		positions := idx[string(vc.probeBuf)]
		for _, p := range positions {
			for t := 0; t <= k; t++ {
				nb.pos[t] = append(nb.pos[t], b.pos[t][i])
			}
			nb.pos[k+1] = append(nb.pos[k+1], int32(p))
		}
	}
	nb.n = len(nb.pos[k+1])
	for t := k + 2; t < len(nb.pos); t++ {
		nb.pos[t] = nil
	}
	return nil
}

// crossJoin expands the batch through a nested-loop join: every batch row
// pairs with every storage row of the joined table, outer-major in storage
// order — the row engine's iteration order. The ON conjuncts all live in the
// join's rest list and narrow the product immediately after, reproducing
// checkConjuncts's early exit block-wise.
func (vc *vecCtx) crossJoin(b, nb *vbatch, k int) {
	inner := vc.tabs[k+1].nrows // stable under the statement lock
	nb.n = 0
	for t := 0; t <= k+1; t++ {
		nb.pos[t] = nb.pos[t][:0]
	}
	for i := 0; i < b.n; i++ {
		for p := 0; p < inner; p++ {
			for t := 0; t <= k; t++ {
				nb.pos[t] = append(nb.pos[t], b.pos[t][i])
			}
			nb.pos[k+1] = append(nb.pos[k+1], int32(p))
		}
	}
	nb.n = len(nb.pos[k+1])
	for t := k + 2; t < len(nb.pos); t++ {
		nb.pos[t] = nil
	}
}

// narrow filters the batch by one predicate, with the row engine's evalBool
// semantics: NULL and false drop the row, a non-NULL non-boolean raises. It
// returns the surviving batch: b itself when no row was dropped (skipping the
// gather), nb otherwise.
func (vc *vecCtx) narrow(b, nb *vbatch, pred vexpr) (*vbatch, error) {
	c := vc.getCol()
	defer vc.putCol(c)
	if err := pred(vc, b, c); err != nil {
		return nil, err
	}
	sel := vc.selBuf[:0]
	for i := 0; i < b.n; i++ {
		v := c.at(i)
		if v.IsNull() {
			continue
		}
		if !v.IsBool() {
			return nil, fmt.Errorf("sqldb: predicate evaluated to %s, want boolean", v)
		}
		if v.Bool() {
			sel = append(sel, int32(i))
		}
	}
	vc.selBuf = sel
	if len(sel) == b.n {
		return b, nil
	}
	gatherBatch(nb, b, sel)
	return nb, nil
}

// project evaluates the projection and ORDER BY keys over a batch, emitting
// one output row per batch row with a single backing allocation per batch.
func (vc *vecCtx) project(b *vbatch, vp *vecSelectPlan) ([]sortableRow, error) {
	ncol := len(vp.items)
	cells := make(Row, b.n*ncol)
	rows := make([]sortableRow, b.n)
	for i := range rows {
		rows[i].row = cells[i*ncol : (i+1)*ncol : (i+1)*ncol]
	}
	c := vc.getCol()
	defer vc.putCol(c)
	for j, item := range vp.items {
		if err := item(vc, b, c); err != nil {
			return nil, err
		}
		for i := 0; i < b.n; i++ {
			rows[i].row[j] = c.at(i)
		}
	}
	if len(vp.order) > 0 {
		kcells := make([]Value, b.n*len(vp.order))
		for i := range rows {
			rows[i].keys = kcells[i*len(vp.order) : (i+1)*len(vp.order) : (i+1)*len(vp.order)]
		}
		for j := range vp.order {
			key := &vp.order[j]
			switch {
			case key.outCol >= 0:
				for i := range rows {
					rows[i].keys[j] = rows[i].row[key.outCol]
				}
			case key.ex != nil:
				if err := key.ex(vc, b, c); err != nil {
					return nil, err
				}
				for i := 0; i < b.n; i++ {
					rows[i].keys[j] = c.at(i)
				}
			default:
				for i := range rows {
					rows[i].keys[j] = key.cval
				}
			}
		}
	}
	return rows, nil
}

// accumulate folds one batch into the grouped state: evaluate the GROUP BY
// keys and aggregate arguments batch-wise, then route each row to its group
// in first-seen order. Accumulation order equals the row engine's tuple
// order, so float sums stay bit-identical.
func (vc *vecCtx) accumulate(b *vbatch, vp *vecSelectPlan, groups map[string]*vecGroup, order *[]string, newGroup func() *vecGroup, keyBuf []byte) ([]byte, error) {
	keyCols := make([]*vcol, len(vp.groupBy))
	for j, g := range vp.groupBy {
		c := vc.getCol()
		keyCols[j] = c
		if err := g(vc, b, c); err != nil {
			for _, cc := range keyCols[:j+1] {
				vc.putCol(cc)
			}
			return keyBuf, err
		}
	}
	argCols := make([]*vcol, len(vp.aggs))
	for j := range vp.aggs {
		if vp.aggs[j].arg == nil {
			continue
		}
		c := vc.getCol()
		argCols[j] = c
		if err := vp.aggs[j].arg(vc, b, c); err != nil {
			for _, cc := range keyCols {
				vc.putCol(cc)
			}
			for _, cc := range argCols[:j+1] {
				if cc != nil {
					vc.putCol(cc)
				}
			}
			return keyBuf, err
		}
	}
	defer func() {
		for _, c := range keyCols {
			vc.putCol(c)
		}
		for _, c := range argCols {
			if c != nil {
				vc.putCol(c)
			}
		}
	}()

	for i := 0; i < b.n; i++ {
		keyBuf = keyBuf[:0]
		for _, c := range keyCols {
			keyBuf = c.at(i).AppendKey(keyBuf)
			keyBuf = append(keyBuf, 0)
		}
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = newGroup()
			k := string(keyBuf)
			groups[k] = g
			*order = append(*order, k)
		}
		if !g.hasRep {
			g.hasRep = true
			if cap(g.rep) < len(b.pos) {
				g.rep = make([]int32, len(b.pos))
			}
			g.rep = g.rep[:len(b.pos)]
			for t := range b.pos {
				g.rep[t] = b.pos[t][i]
			}
		}
		g.n++
		for j := range vp.aggs {
			if argCols[j] == nil {
				continue
			}
			if err := g.accs[j].add(vp.aggs[j].name, argCols[j].at(i)); err != nil {
				return keyBuf, err
			}
		}
	}
	return keyBuf, nil
}

// singleGroup readies the pooled lone-group state of a scalar aggregation
// (GROUP BY absent): the accumulators and representative-position buffer are
// reused across executions.
func (vc *vecCtx) singleGroup(vp *vecSelectPlan) *vecGroup {
	g := &vc.sg
	g.hasRep = false
	g.n = 0
	g.rep = g.rep[:0]
	if cap(g.accs) < len(vp.aggs) {
		g.accs = make([]aggAcc, len(vp.aggs))
	}
	g.accs = g.accs[:len(vp.aggs)]
	for i := range g.accs {
		g.accs[i] = newAggAcc()
	}
	return g
}

// accumulateSingle folds one batch into the lone group of a scalar
// aggregation: no key building, no map routing. The tuple-then-aggregate
// iteration order matches the row engine exactly, so float accumulation and
// error surfacing are identical.
func (vc *vecCtx) accumulateSingle(b *vbatch, vp *vecSelectPlan, g *vecGroup) error {
	args := vc.argBuf[:0]
	defer func() {
		for _, c := range args {
			if c != nil {
				vc.putCol(c)
			}
		}
	}()
	for j := range vp.aggs {
		if vp.aggs[j].arg == nil {
			args = append(args, nil)
			continue
		}
		c := vc.getCol()
		args = append(args, c)
		if err := vp.aggs[j].arg(vc, b, c); err != nil {
			vc.argBuf = args
			return err
		}
	}
	vc.argBuf = args

	if !g.hasRep && b.n > 0 {
		g.hasRep = true
		if cap(g.rep) < len(b.pos) {
			g.rep = make([]int32, len(b.pos))
		}
		g.rep = g.rep[:len(b.pos)]
		for t := range b.pos {
			g.rep[t] = b.pos[t][0]
		}
	}
	for i := 0; i < b.n; i++ {
		g.n++
		for j := range vp.aggs {
			if args[j] == nil {
				continue
			}
			if err := g.accs[j].add(vp.aggs[j].name, args[j].at(i)); err != nil {
				return err
			}
		}
	}
	return nil
}

// finalizeGroups emits one output row per surviving group, in first-seen
// order: fold the accumulated aggregates into execCtx.aggPre, bind the
// group's representative row, and run HAVING and the projection through the
// row evaluator — the hybrid path that keeps scalar semantics (subqueries,
// aliases, functions) byte-identical to the row engine's grouped output.
func (vc *vecCtx) finalizeGroups(st *SelectStmt, vp *vecSelectPlan, seq []*vecGroup) ([]sortableRow, error) {
	ec := vc.ec
	pre := vc.pre
	if pre == nil {
		pre = make(map[*ECall]Value, len(vp.aggs))
		vc.pre = pre
	}
	clear(pre)
	saved := ec.aggPre
	defer func() { ec.aggPre = saved }()

	var rows []sortableRow
	for _, g := range seq {
		if g.hasRep {
			for t, bt := range vc.bts {
				bt.row = vc.tabs[t].scan()[g.rep[t]]
			}
		} else {
			for _, bt := range vc.bts {
				bt.row = nil
			}
		}
		for j := range vp.aggs {
			ag := &vp.aggs[j]
			if ag.star {
				pre[ag.call] = NewInt(g.n)
				continue
			}
			v, err := g.accs[j].final(ag.name, ag.call.Name)
			if err != nil {
				return nil, err
			}
			pre[ag.call] = v
		}
		ec.aggPre = pre

		if st.Having != nil {
			ok, err := ec.evalBool(st.Having, &vc.fr)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out := make(Row, 0, len(st.Items))
		for _, item := range st.Items {
			v, err := ec.eval(item.Expr, &vc.fr)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		var keys []Value
		if len(vp.order) > 0 {
			keys = make([]Value, len(vp.order))
			for j := range vp.order {
				switch {
				case vp.order[j].outCol >= 0:
					keys[j] = out[vp.order[j].outCol]
				case vp.order[j].gx != nil:
					// Evaluate the key through the row evaluator while the
					// representative row is bound and the aggregates are
					// pre-folded — exactly the row engine's orderKeys timing.
					v, err := ec.eval(vp.order[j].gx, &vc.fr)
					if err != nil {
						return nil, err
					}
					keys[j] = v
				default:
					keys[j] = vp.order[j].cval
				}
			}
		}
		rows = append(rows, sortableRow{row: out, keys: keys})
	}
	// Leave the frame rows clear: later lazy evaluations (LIMIT) must not
	// see a stale representative row.
	for _, bt := range vc.bts {
		bt.row = nil
	}
	return rows, nil
}
