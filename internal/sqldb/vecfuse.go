package sqldb

import "strings"

// Fused compare-and-select kernels for the vectorized filter stage.
//
// A WHERE clause whose every conjunct is a plain typed comparison — column vs
// literal/parameter, or column vs column — skips the compiled vexpr closure
// tree entirely: each conjunct becomes a vpred that reads the typed column
// payloads directly (no Value boxing, no per-row closure dispatch) and writes
// a packed selection vector with a branch-free accept mask. The kernels
// allocate nothing per batch; the selection buffer and comparand slots live
// on the pooled vecCtx.
//
// Correctness rests on one precondition: a fused kernel can never raise an
// error. The row engine evaluates WHERE with full three-valued logic, where a
// NULL left operand does NOT short-circuit AND — an error in the right
// operand must still surface. Sequential narrowing (drop rows conjunct by
// conjunct) is only observationally identical when no conjunct can error, so
// fuseFilter fuses a clause either completely or not at all, and every shape
// that could error at runtime — mixed-type literal comparisons at compile
// time, mismatched parameter classes and parameter-binding failures at
// ready() time — bails the whole execution back to the compiled filter tree,
// which reproduces the row engine's errors exactly.
//
// Comparison semantics mirror Value.Compare: numerics promote to float64
// (including int vs int — the row engine compares through float64, and so
// must we, precision loss and all), text compares byte-wise, booleans by
// payload; NULL on either side drops the row.

// vpred is one fused conjunct of a WHERE clause.
type vpred struct {
	// ready prepares the kernel for one execution: it evaluates the
	// comparand expression into vc.fuseVals[slot] and reports whether the
	// kernel's runtime preconditions hold. A false return bails the whole
	// execution to the compiled filter tree. nil means always ready
	// (column-vs-column kernels have no comparand).
	ready func(vc *vecCtx, slot int) bool
	// apply scans batch rows 0..b.n-1 and packs the indexes of surviving
	// rows into sel (len >= b.n), returning the shortened slice.
	apply func(vc *vecCtx, b *vbatch, slot int, sel []int32) []int32
}

// cmpAccept maps a comparison operator to its acceptance table, indexed by
// Compare's sign + 1: {accept if <, accept if ==, accept if >}.
func cmpAccept(op BinOp) ([3]int32, bool) {
	switch op {
	case OpEq:
		return [3]int32{0, 1, 0}, true
	case OpNeq:
		return [3]int32{1, 0, 1}, true
	case OpLt:
		return [3]int32{1, 0, 0}, true
	case OpLeq:
		return [3]int32{1, 1, 0}, true
	case OpGt:
		return [3]int32{0, 0, 1}, true
	case OpGeq:
		return [3]int32{0, 1, 1}, true
	}
	return [3]int32{}, false
}

// flipAcc reverses an acceptance table for a swapped operand order:
// sign(Compare(a, b)) == -sign(Compare(b, a)).
func flipAcc(acc [3]int32) [3]int32 { return [3]int32{acc[2], acc[1], acc[0]} }

func b2i32(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// nullBit extracts row p's null bit as 0 or 1 without branching.
func nullBit(nulls nullBitmap, p int32) int32 {
	return int32(nulls[p>>6]>>(uint(p)&63)) & 1
}

// classOK reports whether a non-NULL comparand value is comparable with a
// column of declared type ct (Compare would not error).
func classOK(ct ColType, v Value) bool {
	switch ct {
	case TInt, TFloat:
		return v.IsNumeric()
	case TText:
		return v.IsText()
	case TBool:
		return v.IsBool()
	}
	return false
}

// fuseFilter compiles a WHERE clause into fused kernels, one per conjunct.
// It returns nil unless every conjunct fuses — partial fusing would reorder
// error surfacing (see the package comment above).
func (cp *vecCompiler) fuseFilter(where Expr, ntab int) []vpred {
	if where == nil || ntab == 0 {
		return nil
	}
	cj := conjuncts(where)
	preds := make([]vpred, 0, len(cj))
	for _, c := range cj {
		p, ok := cp.fuseCmp(c, ntab)
		if !ok {
			return nil
		}
		preds = append(preds, p)
	}
	return preds
}

// fuseCmp fuses one conjunct of the form "col op comparand" or
// "col op col" where op is a comparison operator.
func (cp *vecCompiler) fuseCmp(e Expr, ntab int) (vpred, bool) {
	bin, ok := e.(*EBinary)
	if !ok {
		return vpred{}, false
	}
	acc, ok := cmpAccept(bin.Op)
	if !ok {
		return vpred{}, false
	}
	lc, lok := bin.L.(*EColumn)
	rc, rok := bin.R.(*EColumn)
	if lok && rok {
		lt, lcol, ok1 := cp.resolveCol(lc, ntab)
		rt, rcol, ok2 := cp.resolveCol(rc, ntab)
		if !ok1 || !ok2 {
			return vpred{}, false
		}
		return cp.fuseColCol(acc, lt, lcol, rt, rcol)
	}
	var colRef *EColumn
	var cmp Expr
	switch {
	case lok:
		colRef, cmp = lc, bin.R
	case rok:
		colRef, cmp = rc, bin.L
		acc = flipAcc(acc)
	default:
		return vpred{}, false
	}
	switch cmp.(type) {
	case *ELit, *EParam:
	default:
		return vpred{}, false
	}
	tab, col, ok := cp.resolveCol(colRef, ntab)
	if !ok {
		return vpred{}, false
	}
	ct := cp.tabs[tab].Columns[col].Type
	if lit, isLit := cmp.(*ELit); isLit && !lit.Value.IsNull() && !classOK(ct, lit.Value) {
		return vpred{}, false // mixed-type comparison: the row engine errors
	}
	ready := func(vc *vecCtx, slot int) bool {
		v, err := vc.ec.eval(cmp, &vc.fr)
		if err != nil {
			return false // parameter errors surface through the filter tree
		}
		if !v.IsNull() && !classOK(ct, v) {
			return false
		}
		vc.fuseVals[slot] = v
		return true
	}
	switch ct {
	case TInt:
		return vpred{ready: ready, apply: func(vc *vecCtx, b *vbatch, slot int, sel []int32) []int32 {
			rv := vc.fuseVals[slot]
			if rv.IsNull() {
				return sel[:0] // NULL comparand: every comparison is NULL
			}
			rf := rv.Float()
			cv := vc.tabs[tab].cols[col]
			pos := b.pos[tab]
			nulls, ints := cv.nulls, cv.ints
			n := 0
			for i := 0; i < b.n; i++ {
				p := pos[i]
				lf := float64(ints[p])
				c := b2i32(lf > rf) - b2i32(lf < rf)
				sel[n] = int32(i)
				n += int(acc[c+1] &^ nullBit(nulls, p))
			}
			return sel[:n]
		}}, true
	case TFloat:
		return vpred{ready: ready, apply: func(vc *vecCtx, b *vbatch, slot int, sel []int32) []int32 {
			rv := vc.fuseVals[slot]
			if rv.IsNull() {
				return sel[:0]
			}
			rf := rv.Float()
			cv := vc.tabs[tab].cols[col]
			pos := b.pos[tab]
			nulls, flts := cv.nulls, cv.flts
			n := 0
			for i := 0; i < b.n; i++ {
				p := pos[i]
				lf := flts[p]
				c := b2i32(lf > rf) - b2i32(lf < rf)
				sel[n] = int32(i)
				n += int(acc[c+1] &^ nullBit(nulls, p))
			}
			return sel[:n]
		}}, true
	case TText:
		return vpred{ready: ready, apply: func(vc *vecCtx, b *vbatch, slot int, sel []int32) []int32 {
			rv := vc.fuseVals[slot]
			if rv.IsNull() {
				return sel[:0]
			}
			rs := rv.Text()
			cv := vc.tabs[tab].cols[col]
			pos := b.pos[tab]
			nulls, strs := cv.nulls, cv.strs
			n := 0
			for i := 0; i < b.n; i++ {
				p := pos[i]
				c := int32(strings.Compare(strs[p], rs))
				sel[n] = int32(i)
				n += int(acc[c+1] &^ nullBit(nulls, p))
			}
			return sel[:n]
		}}, true
	case TBool:
		return vpred{ready: ready, apply: func(vc *vecCtx, b *vbatch, slot int, sel []int32) []int32 {
			rv := vc.fuseVals[slot]
			if rv.IsNull() {
				return sel[:0]
			}
			ri := rv.i
			cv := vc.tabs[tab].cols[col]
			pos := b.pos[tab]
			nulls, ints := cv.nulls, cv.ints
			n := 0
			for i := 0; i < b.n; i++ {
				p := pos[i]
				li := ints[p]
				c := b2i32(li > ri) - b2i32(li < ri)
				sel[n] = int32(i)
				n += int(acc[c+1] &^ nullBit(nulls, p))
			}
			return sel[:n]
		}}, true
	}
	return vpred{}, false
}

// fuseColCol fuses "col op col". Both sides must be of one comparison class
// (numeric, text, or boolean); a class mismatch means the row engine errors
// on every non-NULL pair, so it is not fusable. The payload-type branch
// inside the numeric loop is loop-invariant; the selection write stays
// branch-free.
func (cp *vecCompiler) fuseColCol(acc [3]int32, lt, lcol, rt, rcol int) (vpred, bool) {
	lty := cp.tabs[lt].Columns[lcol].Type
	rty := cp.tabs[rt].Columns[rcol].Type
	lNum := lty == TInt || lty == TFloat
	rNum := rty == TInt || rty == TFloat
	switch {
	case lNum && rNum:
		lInt, rInt := lty == TInt, rty == TInt
		return vpred{apply: func(vc *vecCtx, b *vbatch, slot int, sel []int32) []int32 {
			lcv := vc.tabs[lt].cols[lcol]
			rcv := vc.tabs[rt].cols[rcol]
			lpos, rpos := b.pos[lt], b.pos[rt]
			n := 0
			for i := 0; i < b.n; i++ {
				lp, rp := lpos[i], rpos[i]
				var lf, rf float64
				if lInt {
					lf = float64(lcv.ints[lp])
				} else {
					lf = lcv.flts[lp]
				}
				if rInt {
					rf = float64(rcv.ints[rp])
				} else {
					rf = rcv.flts[rp]
				}
				null := nullBit(lcv.nulls, lp) | nullBit(rcv.nulls, rp)
				c := b2i32(lf > rf) - b2i32(lf < rf)
				sel[n] = int32(i)
				n += int(acc[c+1] &^ null)
			}
			return sel[:n]
		}}, true
	case lty == TText && rty == TText:
		return vpred{apply: func(vc *vecCtx, b *vbatch, slot int, sel []int32) []int32 {
			lcv := vc.tabs[lt].cols[lcol]
			rcv := vc.tabs[rt].cols[rcol]
			lpos, rpos := b.pos[lt], b.pos[rt]
			n := 0
			for i := 0; i < b.n; i++ {
				lp, rp := lpos[i], rpos[i]
				null := nullBit(lcv.nulls, lp) | nullBit(rcv.nulls, rp)
				c := int32(strings.Compare(lcv.strs[lp], rcv.strs[rp]))
				sel[n] = int32(i)
				n += int(acc[c+1] &^ null)
			}
			return sel[:n]
		}}, true
	case lty == TBool && rty == TBool:
		return vpred{apply: func(vc *vecCtx, b *vbatch, slot int, sel []int32) []int32 {
			lcv := vc.tabs[lt].cols[lcol]
			rcv := vc.tabs[rt].cols[rcol]
			lpos, rpos := b.pos[lt], b.pos[rt]
			n := 0
			for i := 0; i < b.n; i++ {
				lp, rp := lpos[i], rpos[i]
				null := nullBit(lcv.nulls, lp) | nullBit(rcv.nulls, rp)
				li, ri := lcv.ints[lp], rcv.ints[rp]
				c := b2i32(li > ri) - b2i32(li < ri)
				sel[n] = int32(i)
				n += int(acc[c+1] &^ null)
			}
			return sel[:n]
		}}, true
	}
	return vpred{}, false
}

// fuseReady runs every kernel's ready hook for one execution, sizing the
// comparand slots. A false return means the execution must use the compiled
// filter tree instead.
func (vc *vecCtx) fuseReady(preds []vpred) bool {
	for len(vc.fuseVals) < len(preds) {
		vc.fuseVals = append(vc.fuseVals, Value{})
	}
	for slot := range preds {
		if preds[slot].ready != nil && !preds[slot].ready(vc, slot) {
			return false
		}
	}
	return true
}

// narrowFused applies the fused kernels to a batch, narrowing it conjunct by
// conjunct. Like narrow, it returns b untouched when nothing is dropped, or
// gathers the survivors into nb.
func (vc *vecCtx) narrowFused(b, nb *vbatch, preds []vpred) *vbatch {
	cur := b
	for slot := range preds {
		if cap(vc.selBuf) < cur.n {
			vc.selBuf = make([]int32, cur.n)
		}
		sel := preds[slot].apply(vc, cur, slot, vc.selBuf[:cur.n])
		vc.selBuf = sel[:cap(sel)]
		if len(sel) == cur.n {
			continue
		}
		dst := nb
		if cur == nb {
			dst = b
		}
		gatherBatch(dst, cur, sel)
		cur = dst
		if cur.n == 0 {
			break
		}
	}
	return cur
}
