// Package sqldb implements a small relational database engine from scratch:
// typed tables, hash indexes, an SQL subset (CREATE TABLE/INDEX, INSERT,
// SELECT with joins, grouping, ordering, scalar subqueries and parameters,
// UPDATE, DELETE), and standard NULL semantics.
//
// The engine stands in for the four DBMSes of the paper's Section 5 (Oracle
// 7, MS Access, MS SQL Server, Postgres). It can be used embedded
// (in-process, the "MS Access" configuration) or behind the TCP server in
// sqldb/wire (the distributed configurations).
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ColType is a column type.
type ColType int

// Column types.
const (
	TInt ColType = iota
	TFloat
	TText
	TBool
)

// String returns the SQL spelling of the column type.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TFloat:
		return "REAL"
	case TText:
		return "TEXT"
	case TBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind valueKind
	i    int64
	f    float64
	s    string
}

type valueKind uint8

const (
	kindNull valueKind = iota
	kindInt
	kindFloat
	kindText
	kindBool
)

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{kind: kindInt, i: v} }

// NewFloat returns a REAL value.
func NewFloat(v float64) Value { return Value{kind: kindFloat, f: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{kind: kindText, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: kindBool, i: i}
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == kindNull }

// Int returns the integer payload (0 unless the value is an INTEGER).
func (v Value) Int() int64 { return v.i }

// Float returns the value as float64 for INTEGER and REAL values.
func (v Value) Float() float64 {
	if v.kind == kindInt {
		return float64(v.i)
	}
	return v.f
}

// Text returns the string payload.
func (v Value) Text() string { return v.s }

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.i != 0 }

// IsNumeric reports whether the value is INTEGER or REAL.
func (v Value) IsNumeric() bool { return v.kind == kindInt || v.kind == kindFloat }

// IsText reports whether the value is TEXT.
func (v Value) IsText() bool { return v.kind == kindText }

// IsBool reports whether the value is BOOLEAN.
func (v Value) IsBool() bool { return v.kind == kindBool }

// IsInt reports whether the value is INTEGER.
func (v Value) IsInt() bool { return v.kind == kindInt }

// String renders the value as SQL literal text.
func (v Value) String() string {
	switch v.kind {
	case kindNull:
		return "NULL"
	case kindInt:
		return strconv.FormatInt(v.i, 10)
	case kindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case kindText:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case kindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// Key returns a map key identifying the value for grouping and hash joins.
// Integer-valued REALs hash equal to INTEGERs so that 1 and 1.0 group
// together, matching comparison semantics.
func (v Value) Key() string {
	return string(v.AppendKey(nil))
}

// AppendKey appends the value's Key bytes to buf and returns the extended
// slice. Probe-heavy paths pair it with a pooled buffer and a string(buf)
// map access, which the compiler performs without allocating — one index
// probe then costs no per-value key string.
func (v Value) AppendKey(buf []byte) []byte {
	switch v.kind {
	case kindNull:
		return append(buf, 'n')
	case kindInt:
		return strconv.AppendInt(append(buf, 'i'), v.i, 10)
	case kindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
			return strconv.AppendInt(append(buf, 'i'), int64(v.f), 10)
		}
		return strconv.AppendFloat(append(buf, 'f'), v.f, 'b', -1, 64)
	case kindText:
		return append(append(buf, 't'), v.s...)
	case kindBool:
		return strconv.AppendInt(append(buf, 'b'), v.i, 10)
	}
	return append(buf, '?')
}

// Compare orders two non-NULL values. It returns an error for incomparable
// types. NULL handling is the caller's responsibility (three-valued logic in
// predicates, NULLS LAST in ORDER BY).
func Compare(a, b Value) (int, error) {
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	if a.kind == kindText && b.kind == kindText {
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		}
		return 0, nil
	}
	if a.kind == kindBool && b.kind == kindBool {
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("sqldb: cannot compare %s and %s", a, b)
}

// coerce converts a value for storage into a column of type t.
func coerce(v Value, t ColType) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case TInt:
		switch v.kind {
		case kindInt:
			return v, nil
		case kindFloat:
			if v.f == math.Trunc(v.f) {
				return NewInt(int64(v.f)), nil
			}
		case kindBool:
			return NewInt(v.i), nil
		}
	case TFloat:
		switch v.kind {
		case kindInt:
			return NewFloat(float64(v.i)), nil
		case kindFloat:
			return v, nil
		}
	case TText:
		if v.kind == kindText {
			return v, nil
		}
	case TBool:
		switch v.kind {
		case kindBool:
			return v, nil
		case kindInt:
			return NewBool(v.i != 0), nil
		}
	}
	return Null, fmt.Errorf("sqldb: cannot store %s in %s column", v, t)
}
