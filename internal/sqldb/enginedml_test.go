// Differential fuzzing of DML under the two execution engines: an UPDATE and
// a DELETE the parser accepts are interleaved with SELECT snapshots on two
// identically-loaded databases, one running the vectorized engine and one the
// row interpreter. After every statement the engines must agree on error
// presence, affected-row counts, and the full table contents. Unlike
// FuzzEngineDifferential the databases are rebuilt per execution (DML mutates
// state) and the result cache stays ON — invalidation under columnar DML is
// part of what is being tested.
package sqldb_test

import (
	"reflect"
	"testing"

	"repro/internal/sqldb"
)

// dmlFuzzDB builds a small single-table database on the given engine. The
// table mixes all four column types and salts every nullable column with
// NULLs so three-valued WHERE evaluation is always in play.
func dmlFuzzDB(tb testing.TB, engine string) *sqldb.DB {
	tb.Helper()
	db := sqldb.NewDB()
	if err := db.SetEngine(engine); err != nil {
		tb.Fatal(err)
	}
	mustExec := func(q string, p *sqldb.Params) {
		tb.Helper()
		if _, err := db.Exec(q, p); err != nil {
			tb.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE TABLE fuzz_dml (id INTEGER PRIMARY KEY, v INTEGER, w REAL, s TEXT, b BOOLEAN)`, nil)
	tags := []string{"alpha", "beta", "gamma"}
	for i := 0; i < 24; i++ {
		p := &sqldb.Params{Named: map[string]sqldb.Value{
			"id": sqldb.NewInt(int64(i)),
			"v":  sqldb.NewInt(int64(i % 7)),
			"w":  sqldb.NewFloat(float64(i) * 1.25),
			"s":  sqldb.NewText(tags[i%len(tags)]),
			"b":  sqldb.NewBool(i%2 == 0),
		}}
		if i%5 == 0 {
			p.Named["v"] = sqldb.Value{}
		}
		if i%4 == 0 {
			p.Named["w"] = sqldb.Value{}
		}
		if i%6 == 0 {
			p.Named["s"] = sqldb.Value{}
		}
		if i%9 == 0 {
			p.Named["b"] = sqldb.Value{}
		}
		mustExec(`INSERT INTO fuzz_dml (id, v, w, s, b) VALUES ($id, $v, $w, $s, $b)`, p)
	}
	return db
}

// FuzzEngineDMLDifferential cross-checks the engines on arbitrary UPDATE and
// DELETE text, interleaved SELECT/UPDATE/SELECT/DELETE/SELECT. Text the
// parser rejects, or that parses to the wrong statement kind, is skipped —
// both happen before engine dispatch, so they cannot diverge.
func FuzzEngineDMLDifferential(f *testing.F) {
	for _, seed := range [][2]string{
		{`UPDATE fuzz_dml SET v = v * 2 + 1 WHERE v > $k`,
			`DELETE FROM fuzz_dml WHERE w IS NULL`},
		{`UPDATE fuzz_dml SET s = 'patched', b = FALSE WHERE id % 3 = 0`,
			`DELETE FROM fuzz_dml WHERE s = 'alpha' OR v IS NULL`},
		{`UPDATE fuzz_dml SET w = NULL WHERE s = 'beta' AND b`,
			`DELETE FROM fuzz_dml WHERE id IN (SELECT id FROM fuzz_dml WHERE v = $k)`},
		{`UPDATE fuzz_dml SET v = $k WHERE id > ?`,
			`DELETE FROM fuzz_dml WHERE NULL`},
		{`UPDATE fuzz_dml SET v = v + 1`,
			`DELETE FROM fuzz_dml WHERE w > (SELECT AVG(w) FROM fuzz_dml)`},
	} {
		f.Add(seed[0], seed[1], int64(3), int64(7), int64(12))
	}

	f.Fuzz(func(t *testing.T, upd, del string, p1, p2, p3 int64) {
		if st, err := sqldb.ParseSQL(upd); err != nil {
			return
		} else if _, ok := st.(*sqldb.UpdateStmt); !ok {
			return
		}
		if st, err := sqldb.ParseSQL(del); err != nil {
			return
		} else if _, ok := st.(*sqldb.DeleteStmt); !ok {
			return
		}
		vec := dmlFuzzDB(t, sqldb.EngineVector)
		row := dmlFuzzDB(t, sqldb.EngineRow)

		// step runs one statement on both databases and checks that the
		// engines agree on error presence (not error identity — the columnar
		// path may surface a different row's error first) and affected rows.
		step := func(sql string, params *sqldb.Params) {
			t.Helper()
			vr, verr := vec.Exec(sql, params)
			rr, rerr := row.Exec(sql, params)
			if (verr == nil) != (rerr == nil) {
				t.Fatalf("engine divergence on %q: vector err=%v, row err=%v", sql, verr, rerr)
			}
			if verr != nil {
				return // both failed: state unchanged on both sides
			}
			if vr.Affected != rr.Affected {
				t.Fatalf("affected divergence on %q: vector %d, row %d", sql, vr.Affected, rr.Affected)
			}
		}
		// snapshot compares the full table contents through each database's
		// own SELECT engine (so a stale result cache or rowView would show).
		const snapSQL = `SELECT id, v, w, s, b FROM fuzz_dml ORDER BY id`
		snapshot := func(when string) {
			t.Helper()
			vr, verr := vec.Exec(snapSQL, nil)
			rr, rerr := row.Exec(snapSQL, nil)
			if verr != nil || rerr != nil {
				t.Fatalf("snapshot %s: vector err=%v, row err=%v", when, verr, rerr)
			}
			if !reflect.DeepEqual(vr.Set, rr.Set) {
				t.Fatalf("engine divergence %s:\nvector: %+v\nrow:    %+v", when, vr.Set, rr.Set)
			}
		}

		snapshot("before DML")
		step(upd, bindParams(upd, p1, p2, p3))
		snapshot("after UPDATE")
		step(del, bindParams(del, p1, p2, p3))
		snapshot("after DELETE")
	})
}
