package sqldb

import (
	"fmt"
	"sync"
	"testing"
)

// resultCacheDB builds a two-table database standing in for one partitioned
// and one replicated COSY table.
func resultCacheDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE typed (id INTEGER PRIMARY KEY, run_id INTEGER, time REAL)`, nil)
	db.MustExec(`CREATE TABLE total (id INTEGER PRIMARY KEY, run_id INTEGER, excl REAL)`, nil)
	db.MustExec(`INSERT INTO typed (id, run_id, time) VALUES (1, 1, 1.0), (2, 1, 2.0), (3, 2, 4.0)`, nil)
	db.MustExec(`INSERT INTO total (id, run_id, excl) VALUES (1, 1, 10.0), (2, 2, 20.0)`, nil)
	return db
}

func resultCacheStats(db *DB) (hits, misses, invalidations int64) {
	st := db.Stats()
	return st.ResultCacheHits, st.ResultCacheMisses, st.ResultCacheInvalidations
}

func TestResultCacheHitsRepeatedExec(t *testing.T) {
	db := resultCacheDB(t)
	const q = `SELECT SUM(time) FROM typed WHERE run_id = $r`
	params := &Params{Named: map[string]Value{"r": NewInt(1)}}
	first := db.MustExec(q, params)
	if first.Cached {
		t.Fatal("first execution reported as cached")
	}
	second := db.MustExec(q, params)
	if !second.Cached {
		t.Fatal("second execution missed the cache")
	}
	if got, want := second.Set.Rows[0][0].Float(), 3.0; got != want {
		t.Fatalf("cached sum = %g, want %g", got, want)
	}
	if hits, _, _ := resultCacheStats(db); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

func TestResultCachePreparedAndAdHocShareEntries(t *testing.T) {
	db := resultCacheDB(t)
	const q = `SELECT SUM(time) FROM typed WHERE run_id = $r`
	params := &Params{Named: map[string]Value{"r": NewInt(2)}}
	ps, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if res, err := ps.Execute(params); err != nil || res.Cached {
		t.Fatalf("prepared warm-up: cached=%v err=%v", res != nil && res.Cached, err)
	}
	// The ad-hoc execution of the same text and binding must hit the entry
	// the prepared execution stored: the key is the canonical statement, not
	// the handle.
	if res := db.MustExec(q, params); !res.Cached {
		t.Fatal("ad-hoc execution after prepared execution missed the cache")
	}
}

// TestDMLInvalidatesOnlyMutatedTable is the per-table granularity contract:
// DML to one table invalidates that table's cached results while entries over
// other tables keep hitting.
func TestDMLInvalidatesOnlyMutatedTable(t *testing.T) {
	for _, dml := range []string{
		`INSERT INTO typed (id, run_id, time) VALUES (9, 2, 8.0)`,
		`UPDATE typed SET time = time * 2 WHERE run_id = 1`,
		`DELETE FROM typed WHERE id = 3`,
	} {
		t.Run(dml[:6], func(t *testing.T) {
			db := resultCacheDB(t)
			const qTyped = `SELECT SUM(time) FROM typed`
			const qTotal = `SELECT SUM(excl) FROM total`
			before := db.MustExec(qTyped, nil).Set.Rows[0][0].Float()
			db.MustExec(qTotal, nil)

			db.MustExec(dml, nil)

			typed := db.MustExec(qTyped, nil)
			if typed.Cached {
				t.Fatalf("%s: stale typed result served from cache", dml)
			}
			if typed.Set.Rows[0][0].Float() == before {
				t.Fatalf("%s: DML did not change the observed sum; the test is vacuous", dml)
			}
			total := db.MustExec(qTotal, nil)
			if !total.Cached {
				t.Fatalf("%s: the untouched table's entry did not survive", dml)
			}
			if _, _, inv := resultCacheStats(db); inv != 1 {
				t.Fatalf("%s: invalidations = %d, want 1", dml, inv)
			}
		})
	}
}

func TestJoinInvalidatedByEitherTable(t *testing.T) {
	db := resultCacheDB(t)
	const q = `SELECT COUNT(*) FROM typed ty JOIN total to2 ON to2.run_id = ty.run_id`
	db.MustExec(q, nil)
	if !db.MustExec(q, nil).Cached {
		t.Fatal("join did not cache")
	}
	db.MustExec(`INSERT INTO total (id, run_id, excl) VALUES (3, 1, 5.0)`, nil)
	res := db.MustExec(q, nil)
	if res.Cached {
		t.Fatal("join served stale result after mutating the second table")
	}
	if got := res.Set.Rows[0][0].Int(); got != 5 {
		t.Fatalf("post-DML join count = %d, want 5", got)
	}
}

func TestDDLClearsResultCache(t *testing.T) {
	db := resultCacheDB(t)
	const q = `SELECT COUNT(*) FROM typed`
	db.MustExec(q, nil)
	db.MustExec(`CREATE TABLE other (id INTEGER)`, nil)
	if st := db.Stats(); st.ResultCacheEntries != 0 {
		t.Fatalf("entries after DDL = %d, want 0", st.ResultCacheEntries)
	}
	if db.MustExec(q, nil).Cached {
		t.Fatal("cache hit straight after DDL cleared it")
	}
	if !db.MustExec(q, nil).Cached {
		t.Fatal("cache did not repopulate after DDL")
	}
}

func TestResultCacheParamTypeSensitivity(t *testing.T) {
	db := resultCacheDB(t)
	// 1 and 1.0 compare equal, but type-sensitive expressions can tell them
	// apart, so the fingerprints must differ.
	const q = `SELECT COUNT(*) FROM typed WHERE run_id = $r`
	db.MustExec(q, &Params{Named: map[string]Value{"r": NewInt(1)}})
	res := db.MustExec(q, &Params{Named: map[string]Value{"r": NewFloat(1.0)}})
	if res.Cached {
		t.Fatal("REAL binding hit the INTEGER binding's entry")
	}
	if res := db.MustExec(q, &Params{Named: map[string]Value{"r": NewInt(1)}}); !res.Cached {
		t.Fatal("INTEGER binding's own entry was lost")
	}
}

func TestResultCacheDisabled(t *testing.T) {
	db := resultCacheDB(t)
	db.SetResultCacheSize(0)
	const q = `SELECT COUNT(*) FROM typed`
	db.MustExec(q, nil)
	if db.MustExec(q, nil).Cached {
		t.Fatal("disabled cache served a result")
	}
	if hits, misses, _ := resultCacheStats(db); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache counted traffic: hits=%d misses=%d", hits, misses)
	}
}

func TestResultCacheEviction(t *testing.T) {
	db := resultCacheDB(t)
	db.SetResultCacheSize(2)
	for i := 0; i < 3; i++ {
		q := fmt.Sprintf(`SELECT COUNT(*) FROM typed WHERE run_id = %d`, i)
		db.MustExec(q, nil)
	}
	st := db.Stats()
	if st.ResultCacheEntries != 2 {
		t.Fatalf("entries = %d, want 2", st.ResultCacheEntries)
	}
	if st.ResultCacheEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.ResultCacheEvictions)
	}
	// The oldest entry (run_id = 0) was evicted; the newest still hits.
	if !db.MustExec(`SELECT COUNT(*) FROM typed WHERE run_id = 2`, nil).Cached {
		t.Fatal("newest entry evicted")
	}
	if db.MustExec(`SELECT COUNT(*) FROM typed WHERE run_id = 0`, nil).Cached {
		t.Fatal("evicted entry still present")
	}
}

func TestExecuteBatchCachesPerBinding(t *testing.T) {
	db := resultCacheDB(t)
	ps, err := db.Prepare(`SELECT SUM(time) FROM typed WHERE run_id = $r`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	bindings := []*Params{
		{Named: map[string]Value{"r": NewInt(1)}},
		{Named: map[string]Value{"r": NewInt(2)}},
		{Named: map[string]Value{"r": NewInt(1)}}, // repeat within the batch
	}
	first, err := ps.ExecuteBatch(bindings)
	if err != nil {
		t.Fatal(err)
	}
	// The repeated binding hits within its own batch; the distinct ones miss.
	if first[0].Res.Cached || first[1].Res.Cached || !first[2].Res.Cached {
		t.Fatalf("first batch cached flags: %v %v %v", first[0].Res.Cached, first[1].Res.Cached, first[2].Res.Cached)
	}
	second, err := ps.ExecuteBatch(bindings[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if r.Err != nil || !r.Res.Cached {
			t.Fatalf("second batch binding %d not cached: %+v", i, r)
		}
	}
	if second[0].Res.Set.Rows[0][0].Float() != 3.0 || second[1].Res.Set.Rows[0][0].Float() != 4.0 {
		t.Fatalf("cached batch values wrong: %v", second)
	}
}

func TestCanonicalInternTableBounded(t *testing.T) {
	db := NewDB()
	first := db.canonicalID("SELECT 1")
	for i := 0; i < canonInternCap; i++ {
		db.canonicalID(fmt.Sprintf("SELECT %d FROM x", i))
	}
	if len(db.canonIDs) > canonInternCap {
		t.Fatalf("intern table grew to %d entries, cap is %d", len(db.canonIDs), canonInternCap)
	}
	// The reset dropped "SELECT 1"; re-interning must yield a fresh id, never
	// reuse one — an id naming two texts would alias cache entries.
	if again := db.canonicalID("SELECT 1"); again <= first {
		t.Fatalf("id %d reused or reissued after reset (first was %d)", again, first)
	}
}

func TestResultCacheConcurrentReadersAndWriters(t *testing.T) {
	db := resultCacheDB(t)
	ps, err := db.Prepare(`SELECT SUM(time) FROM typed`)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := ps.Execute(nil)
				if err != nil {
					t.Error(err)
					return
				}
				// Whether cached or not, the sum must be one the table
				// actually held at some point: monotone under inserts.
				if res.Set.Rows[0][0].Float() < 7.0 {
					t.Errorf("sum went backwards: %v", res.Set.Rows[0][0])
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO typed (id, run_id, time) VALUES (%d, 3, 1.0)`, 100+i), nil)
		}
	}()
	wg.Wait()
	res, err := ps.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Set.Rows[0][0].Float(), 7.0+20.0; got != want {
		t.Fatalf("final sum = %g, want %g", got, want)
	}
}
