package model

import (
	"fmt"
	"time"
)

// TimingType enumerates the 25 Apprentice overhead types. The order matches
// the TimingType enum of the ASL specification.
type TimingType int

// Overhead types.
const (
	Barrier TimingType = iota
	LockWait
	Send
	Receive
	Broadcast
	Reduce
	Gather
	Scatter
	AllToAll
	SharedGet
	SharedPut
	RemoteRead
	RemoteWrite
	IORead
	IOWrite
	IOOpen
	IOClose
	IOWait
	BufferCopy
	PackUnpack
	Startup
	Shutdown
	RuntimeSystem
	Instrumentation
	UncountedOverhead
	NumTimingTypes = iota
)

var timingTypeNames = [NumTimingTypes]string{
	"Barrier", "LockWait", "Send", "Receive", "Broadcast", "Reduce",
	"Gather", "Scatter", "AllToAll", "SharedGet", "SharedPut",
	"RemoteRead", "RemoteWrite", "IORead", "IOWrite", "IOOpen", "IOClose",
	"IOWait", "BufferCopy", "PackUnpack", "Startup", "Shutdown",
	"RuntimeSystem", "Instrumentation", "UncountedOverhead",
}

// String returns the enum member name.
func (t TimingType) String() string {
	if t < 0 || int(t) >= NumTimingTypes {
		return fmt.Sprintf("TimingType(%d)", int(t))
	}
	return timingTypeNames[t]
}

// ParseTimingType resolves a member name.
func ParseTimingType(name string) (TimingType, error) {
	for i, n := range timingTypeNames {
		if n == name {
			return TimingType(i), nil
		}
	}
	return 0, fmt.Errorf("model: unknown timing type %q", name)
}

// CommTypes are the message-passing and remote-memory overhead types grouped
// by the CommunicationCost property.
var CommTypes = []TimingType{Send, Receive, Broadcast, Reduce, Gather, Scatter, AllToAll, SharedGet, SharedPut, RemoteRead, RemoteWrite}

// IOTypes are the I/O overhead types grouped by the IOCost property.
var IOTypes = []TimingType{IORead, IOWrite, IOOpen, IOClose, IOWait}

// BarrierFunction is the conventional name of the barrier routine; the
// paper's LoadImbalance property "is evaluated only for calls to the
// barrier routine".
const BarrierFunction = "barrier"

// RegionKind classifies program regions, per the paper's Section 3 list.
type RegionKind string

// Region kinds.
const (
	KindProgram    RegionKind = "program"
	KindSubprogram RegionKind = "subprogram"
	KindLoop       RegionKind = "loop"
	KindIfBlock    RegionKind = "if"
	KindCallSite   RegionKind = "call"
	KindBasicBlock RegionKind = "block"
)

// Dataset mirrors the ASL Program class: one application with its versions.
type Dataset struct {
	Program  string
	Versions []*Version
}

// Version mirrors ProgVersion.
type Version struct {
	Compilation time.Time
	Code        string
	Functions   []*Function
	Runs        []*TestRun
}

// TestRun mirrors the ASL TestRun class.
type TestRun struct {
	Start      time.Time
	NoPe       int
	Clockspeed int // MHz, 300 or 450 on the T3E family
}

// Function mirrors the ASL Function class.
type Function struct {
	Name    string
	Regions []*Region
	// Calls are the call sites *of this function* (who calls it), per the
	// paper: "A Function object specifies the function name, the call
	// sites, and the program regions in this function."
	Calls []*FunctionCall
}

// Region mirrors the ASL Region class, extended with Name and Kind for
// reporting.
type Region struct {
	Name     string
	Kind     RegionKind
	Parent   *Region
	Children []*Region // derived, not part of the ASL model
	TotTimes []*TotalTiming
	TypTimes []*TypedTiming
}

// TotalTiming mirrors the ASL TotalTiming class. All times are process-summed
// seconds, as stored by Apprentice.
type TotalTiming struct {
	Run  *TestRun
	Excl float64
	Incl float64
	Ovhd float64
}

// TypedTiming mirrors the ASL TypedTiming class.
type TypedTiming struct {
	Run  *TestRun
	Type TimingType
	Time float64
}

// FunctionCall mirrors the ASL FunctionCall class (one call site).
type FunctionCall struct {
	Callee     string // name of the called function; owner of this call site
	Caller     *Function
	CallingReg *Region
	Sums       []*CallTiming
}

// CallTiming mirrors the ASL CallTiming class: per-run statistics of one
// call site across processes, with the extremal processors memorized.
type CallTiming struct {
	Run        *TestRun
	MinCalls   float64
	MaxCalls   float64
	MeanCalls  float64
	StdevCalls float64
	PeMinCalls int
	PeMaxCalls int
	MinTime    float64
	MaxTime    float64
	MeanTime   float64
	StdevTime  float64
	PeMinTime  int
	PeMaxTime  int
}

// Walk visits r and all its descendants pre-order.
func (r *Region) Walk(fn func(*Region)) {
	fn(r)
	for _, c := range r.Children {
		c.Walk(fn)
	}
}

// TotalFor returns the TotalTiming of the given run, or nil.
func (r *Region) TotalFor(run *TestRun) *TotalTiming {
	for _, t := range r.TotTimes {
		if t.Run == run {
			return t
		}
	}
	return nil
}

// TypedFor returns the TypedTiming of the given run and type, or nil.
func (r *Region) TypedFor(run *TestRun, tt TimingType) *TypedTiming {
	for _, t := range r.TypTimes {
		if t.Run == run && t.Type == tt {
			return t
		}
	}
	return nil
}

// Validate checks the structural invariants the analysis relies on:
// for every region at most one TotalTiming and at most one TypedTiming per
// (run, type); distinct NoPe across the runs of a version (so the minimal-PE
// reference run is unique); parent links acyclic and consistent with
// children; call-site statistics ordered Min <= Mean <= Max.
func (d *Dataset) Validate() error {
	if d.Program == "" {
		return fmt.Errorf("model: dataset has no program name")
	}
	for vi, v := range d.Versions {
		seenPe := make(map[int]bool)
		for _, run := range v.Runs {
			if run.NoPe <= 0 {
				return fmt.Errorf("model: version %d: run with NoPe %d", vi, run.NoPe)
			}
			if seenPe[run.NoPe] {
				return fmt.Errorf("model: version %d: duplicate NoPe %d (minimal reference run would be ambiguous)", vi, run.NoPe)
			}
			seenPe[run.NoPe] = true
		}
		for _, f := range v.Functions {
			for _, root := range f.Regions {
				var err error
				root.Walk(func(r *Region) {
					if err != nil {
						return
					}
					err = validateRegion(v, r)
				})
				if err != nil {
					return fmt.Errorf("model: version %d, function %s: %w", vi, f.Name, err)
				}
			}
			for ci, call := range f.Calls {
				if call.Callee != f.Name {
					return fmt.Errorf("model: version %d: call site %d of %s has callee %q", vi, ci, f.Name, call.Callee)
				}
				seenRun := make(map[*TestRun]bool)
				for _, ct := range call.Sums {
					if seenRun[ct.Run] {
						return fmt.Errorf("model: version %d: call site %d of %s has duplicate CallTiming for a run", vi, ci, f.Name)
					}
					seenRun[ct.Run] = true
					if !(ct.MinCalls <= ct.MeanCalls && ct.MeanCalls <= ct.MaxCalls) {
						return fmt.Errorf("model: call site of %s: calls min/mean/max out of order", f.Name)
					}
					if !(ct.MinTime <= ct.MeanTime && ct.MeanTime <= ct.MaxTime) {
						return fmt.Errorf("model: call site of %s: time min/mean/max out of order", f.Name)
					}
					if ct.StdevCalls < 0 || ct.StdevTime < 0 {
						return fmt.Errorf("model: call site of %s: negative standard deviation", f.Name)
					}
				}
			}
		}
	}
	return nil
}

func validateRegion(v *Version, r *Region) error {
	seenRun := make(map[*TestRun]bool)
	for _, tt := range r.TotTimes {
		if seenRun[tt.Run] {
			return fmt.Errorf("region %s: duplicate TotalTiming for a run", r.Name)
		}
		seenRun[tt.Run] = true
		if tt.Incl < tt.Excl {
			return fmt.Errorf("region %s: inclusive time %g below exclusive %g", r.Name, tt.Incl, tt.Excl)
		}
		if tt.Ovhd < 0 {
			return fmt.Errorf("region %s: negative overhead", r.Name)
		}
	}
	seenTyped := make(map[*TestRun]map[TimingType]bool)
	for _, tt := range r.TypTimes {
		m := seenTyped[tt.Run]
		if m == nil {
			m = make(map[TimingType]bool)
			seenTyped[tt.Run] = m
		}
		if m[tt.Type] {
			return fmt.Errorf("region %s: duplicate TypedTiming %s for a run", r.Name, tt.Type)
		}
		m[tt.Type] = true
		if tt.Time < 0 {
			return fmt.Errorf("region %s: negative %s time", r.Name, tt.Type)
		}
	}
	for _, c := range r.Children {
		if c.Parent != r {
			return fmt.Errorf("region %s: child %s has wrong parent link", r.Name, c.Name)
		}
	}
	return nil
}

// Regions returns all regions of the version, pre-order per function.
func (v *Version) AllRegions() []*Region {
	var out []*Region
	for _, f := range v.Functions {
		for _, root := range f.Regions {
			root.Walk(func(r *Region) { out = append(out, r) })
		}
	}
	return out
}

// RootRegion returns the whole-program region: the unique region of kind
// KindProgram, or nil if absent.
func (v *Version) RootRegion() *Region {
	for _, f := range v.Functions {
		for _, root := range f.Regions {
			if root.Kind == KindProgram {
				return root
			}
		}
	}
	return nil
}

// MinPeRun returns the run with the smallest processor count, the paper's
// reference for total-cost computation, or nil if the version has no runs.
func (v *Version) MinPeRun() *TestRun {
	var best *TestRun
	for _, r := range v.Runs {
		if best == nil || r.NoPe < best.NoPe {
			best = r
		}
	}
	return best
}

// FunctionByName returns the named function, or nil.
func (v *Version) FunctionByName(name string) *Function {
	for _, f := range v.Functions {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Stats summarizes dataset size for reports and benchmarks.
type Stats struct {
	Versions     int
	Runs         int
	Functions    int
	Regions      int
	TotalTimings int
	TypedTimings int
	CallSites    int
	CallTimings  int
}

// Stats computes dataset size counters.
func (d *Dataset) Stats() Stats {
	var s Stats
	s.Versions = len(d.Versions)
	for _, v := range d.Versions {
		s.Runs += len(v.Runs)
		s.Functions += len(v.Functions)
		for _, f := range v.Functions {
			s.CallSites += len(f.Calls)
			for _, c := range f.Calls {
				s.CallTimings += len(c.Sums)
			}
		}
		for _, r := range v.AllRegions() {
			s.Regions++
			s.TotalTimings += len(r.TotTimes)
			s.TypedTimings += len(r.TypTimes)
		}
	}
	return s
}
