// Package model defines the COSY performance-data model: the canonical ASL
// specification (Section 4 of the paper), Go mirror structures used by the
// Apprentice simulator, and the builder that materializes a dataset as an
// ASL object graph.
package model

import (
	"fmt"
	"sync"

	"repro/internal/asl/parser"
	"repro/internal/asl/sem"
)

// SpecSource is the canonical ASL specification shipped with COSY. It is the
// paper's data model (Section 4.1) and properties (Section 4.2) with three
// documented adjustments:
//
//   - Region carries Name and Kind attributes so reports can identify
//     regions (the paper identifies them positionally via Apprentice).
//   - The paper's "LET TotTimes MinPeSum" types the binding with the
//     attribute name; the class is TotalTiming, which is what we write.
//   - Properties beyond the paper's four (UnmeasuredCost,
//     CommunicationCost, IOCost, FrequentFineGrainedCalls) follow the same
//     shape and cover the remaining Apprentice overhead groups.
const SpecSource = `
// ------------------------------------------------------------------
// COSY performance data model (ASL), after Gerndt & Esser 1999, 4.1.
// ------------------------------------------------------------------

class SourceCode {
  String Text;
}

class Program {
  String Name;
  setof ProgVersion Versions;
}

class ProgVersion {
  DateTime Compilation;
  setof Function Functions;
  setof TestRun Runs;
  SourceCode Code;
}

class TestRun {
  DateTime Start;
  int NoPe;
  int Clockspeed;
}

class Function {
  String Name;
  setof FunctionCall Calls;
  setof Region Regions;
}

class Region {
  String Name;
  String Kind;
  Region ParentRegion;
  setof TotalTiming TotTimes;
  setof TypedTiming TypTimes;
}

class TotalTiming {
  TestRun Run;
  float Excl;
  float Incl;
  float Ovhd;
}

// The 25 Apprentice overhead types.
enum TimingType {
  Barrier, LockWait, Send, Receive, Broadcast, Reduce, Gather, Scatter,
  AllToAll, SharedGet, SharedPut, RemoteRead, RemoteWrite,
  IORead, IOWrite, IOOpen, IOClose, IOWait,
  BufferCopy, PackUnpack, Startup, Shutdown,
  RuntimeSystem, Instrumentation, UncountedOverhead
}

class TypedTiming {
  TestRun Run;
  TimingType Type;
  float Time;
}

class FunctionCall {
  String Callee;
  Function Caller;
  Region CallingReg;
  setof CallTiming Sums;
}

class CallTiming {
  TestRun Run;
  float MinCalls;
  float MaxCalls;
  float MeanCalls;
  float StdevCalls;
  int PeMinCalls;
  int PeMaxCalls;
  float MinTime;
  float MaxTime;
  float MeanTime;
  float StdevTime;
  int PeMinTime;
  int PeMaxTime;
}

// ------------------------------------------------------------------
// Analysis thresholds (tool defined, user overridable).
// ------------------------------------------------------------------

float ImbalanceThreshold = 0.25;
float GranularityCallRate = 1000.0;
float GranularityMeanTime = 0.0001;

// ------------------------------------------------------------------
// Auxiliary functions (Section 4.2).
// ------------------------------------------------------------------

TotalTiming Summary(Region r, TestRun t) = UNIQUE({s IN r.TotTimes WITH s.Run == t});
float Duration(Region r, TestRun t) = Summary(r, t).Incl;

// ------------------------------------------------------------------
// Performance properties (Section 4.2).
// ------------------------------------------------------------------

property SublinearSpeedup(Region r, TestRun t, Region Basis) {
  LET
    TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes
        WITH sum.Run.NoPe == MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
    float TotalCost = Duration(r, t) - Duration(r, MinPeSum.Run);
  IN
  CONDITION: TotalCost > 0;
  CONFIDENCE: 1;
  SEVERITY: TotalCost / Duration(Basis, t);
}

property MeasuredCost(Region r, TestRun t, Region Basis) {
  LET
    float Cost = Summary(r, t).Ovhd;
  IN
  CONDITION: Cost > 0;
  CONFIDENCE: 1;
  SEVERITY: Cost / Duration(Basis, t);
}

property UnmeasuredCost(Region r, TestRun t, Region Basis) {
  LET
    TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes
        WITH sum.Run.NoPe == MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
    float Unmeasured = (Duration(r, t) - Duration(r, MinPeSum.Run)) - Summary(r, t).Ovhd;
  IN
  CONDITION: Unmeasured > 0;
  CONFIDENCE: 1;
  SEVERITY: Unmeasured / Duration(Basis, t);
}

property SyncCost(Region r, TestRun t, Region Basis) {
  LET
    float Barrier = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
        AND tt.Type == Barrier);
  IN
  CONDITION: Barrier > 0;
  CONFIDENCE: 1;
  SEVERITY: Barrier / Duration(Basis, t);
}

property CommunicationCost(Region r, TestRun t, Region Basis) {
  LET
    float Comm = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
        AND (tt.Type == Send OR tt.Type == Receive OR tt.Type == Broadcast
          OR tt.Type == Reduce OR tt.Type == Gather OR tt.Type == Scatter
          OR tt.Type == AllToAll OR tt.Type == SharedGet OR tt.Type == SharedPut
          OR tt.Type == RemoteRead OR tt.Type == RemoteWrite));
  IN
  CONDITION: Comm > 0;
  CONFIDENCE: 1;
  SEVERITY: Comm / Duration(Basis, t);
}

property IOCost(Region r, TestRun t, Region Basis) {
  LET
    float Io = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run == t
        AND (tt.Type == IORead OR tt.Type == IOWrite OR tt.Type == IOOpen
          OR tt.Type == IOClose OR tt.Type == IOWait));
  IN
  CONDITION: Io > 0;
  CONFIDENCE: 1;
  SEVERITY: Io / Duration(Basis, t);
}

property LoadImbalance(FunctionCall Call, TestRun t, Region Basis) {
  LET
    CallTiming ct = UNIQUE({c IN Call.Sums WITH c.Run == t});
    float Dev = ct.StdevTime;
    float Mean = ct.MeanTime;
  IN
  CONDITION: Dev > ImbalanceThreshold * Mean;
  CONFIDENCE: 1;
  SEVERITY: Mean / Duration(Basis, t);
}

property FrequentFineGrainedCalls(FunctionCall Call, TestRun t, Region Basis) {
  LET
    CallTiming ct = UNIQUE({c IN Call.Sums WITH c.Run == t});
  IN
  CONDITION: ct.MeanCalls > GranularityCallRate
    AND ct.MeanTime / ct.MeanCalls < GranularityMeanTime;
  CONFIDENCE: 1;
  SEVERITY: ct.MeanTime / Duration(Basis, t);
}
`

// RunPartitioned returns the classes of the canonical specification whose
// instances belong wholly to one test run and may therefore be partitioned
// run-wise across database shards (sqlgen.RoutedLoadPlan). Every canonical
// property touches TypedTiming and CallTiming rows only through a
// "Run == t" filter, so a shard holding just its own runs' rows answers
// their queries exactly. TotalTiming is NOT partitionable: SublinearSpeedup
// and UnmeasuredCost compare a run's summary against the minimum-PE run's
// (MIN(s.Run.NoPe WHERE s IN r.TotTimes)), so every shard needs the full
// TotTimes sets; TotalTiming and all structural classes replicate.
func RunPartitioned() map[string]bool {
	return map[string]bool{"TypedTiming": true, "CallTiming": true}
}

// PaperProperties lists the property names given explicitly in the paper.
var PaperProperties = []string{"SublinearSpeedup", "MeasuredCost", "SyncCost", "LoadImbalance"}

// AllProperties lists every property in the canonical specification, in
// evaluation order.
var AllProperties = []string{
	"SublinearSpeedup", "MeasuredCost", "UnmeasuredCost", "SyncCost",
	"CommunicationCost", "IOCost", "LoadImbalance", "FrequentFineGrainedCalls",
}

var (
	specOnce  sync.Once
	specWorld *sem.World
	specErr   error
)

// CompileSpec parses and type-checks the canonical specification. The result
// is cached; the returned World must be treated as read-only.
func CompileSpec() (*sem.World, error) {
	specOnce.Do(func() {
		spec, err := parser.Parse(SpecSource)
		if err != nil {
			specErr = fmt.Errorf("model: parsing canonical spec: %w", err)
			return
		}
		specWorld, specErr = sem.Check(spec)
		if specErr != nil {
			specErr = fmt.Errorf("model: checking canonical spec: %w", specErr)
		}
	})
	return specWorld, specErr
}

// MustCompileSpec is CompileSpec for contexts where the canonical spec is
// guaranteed valid (it is covered by tests).
func MustCompileSpec() *sem.World {
	w, err := CompileSpec()
	if err != nil {
		panic(err)
	}
	return w
}
