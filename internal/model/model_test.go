package model

import (
	"strings"
	"testing"
	"time"

	"repro/internal/asl/ast"
	"repro/internal/asl/object"
	"repro/internal/asl/parser"
	"repro/internal/asl/sem"
)

func TestCanonicalSpecCompiles(t *testing.T) {
	w, err := CompileSpec()
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range []string{"Program", "ProgVersion", "TestRun", "Function", "Region", "TotalTiming", "TypedTiming", "FunctionCall", "CallTiming", "SourceCode"} {
		if _, ok := w.Classes[cls]; !ok {
			t.Errorf("class %s missing", cls)
		}
	}
	tt, ok := w.Enums["TimingType"]
	if !ok {
		t.Fatal("TimingType enum missing")
	}
	if len(tt.Members) != 25 {
		t.Fatalf("TimingType has %d members, Apprentice knows 25", len(tt.Members))
	}
	for _, p := range AllProperties {
		if _, ok := w.Props[p]; !ok {
			t.Errorf("property %s missing", p)
		}
	}
	for _, p := range PaperProperties {
		found := false
		for _, q := range AllProperties {
			if p == q {
				found = true
			}
		}
		if !found {
			t.Errorf("paper property %s not in AllProperties", p)
		}
	}
	for _, fn := range []string{"Summary", "Duration"} {
		if _, ok := w.Funcs[fn]; !ok {
			t.Errorf("function %s missing", fn)
		}
	}
	if _, ok := w.Consts["ImbalanceThreshold"]; !ok {
		t.Error("ImbalanceThreshold missing")
	}
}

func TestTimingTypeNames(t *testing.T) {
	w := MustCompileSpec()
	enum := w.Enums["TimingType"]
	for i := 0; i < NumTimingTypes; i++ {
		tt := TimingType(i)
		if _, ok := enum.Ordinal[tt.String()]; !ok {
			t.Errorf("Go TimingType %s not in the ASL enum", tt)
		}
		parsed, err := ParseTimingType(tt.String())
		if err != nil || parsed != tt {
			t.Errorf("ParseTimingType(%s) = %v, %v", tt, parsed, err)
		}
	}
	if _, err := ParseTimingType("Bogus"); err == nil {
		t.Error("unknown timing type parsed")
	}
	if !strings.Contains(TimingType(99).String(), "99") {
		t.Error("out-of-range stringer")
	}
	if len(CommTypes)+len(IOTypes) >= NumTimingTypes {
		t.Error("type groups overlap suspiciously")
	}
}

// tinyDataset builds a minimal valid dataset by hand.
func tinyDataset() *Dataset {
	run2 := &TestRun{Start: time.Unix(0, 0), NoPe: 2, Clockspeed: 450}
	run4 := &TestRun{Start: time.Unix(1, 0), NoPe: 4, Clockspeed: 450}
	root := &Region{Name: "main", Kind: KindProgram}
	child := &Region{Name: "loop", Kind: KindLoop, Parent: root}
	root.Children = []*Region{child}
	for _, r := range []*Region{root, child} {
		for _, run := range []*TestRun{run2, run4} {
			r.TotTimes = append(r.TotTimes, &TotalTiming{Run: run, Excl: 1, Incl: 2, Ovhd: 0.5})
		}
	}
	child.TypTimes = append(child.TypTimes, &TypedTiming{Run: run4, Type: Barrier, Time: 0.25})
	mainFn := &Function{Name: "main", Regions: []*Region{root}}
	barrier := &Function{Name: BarrierFunction}
	site := &FunctionCall{Callee: BarrierFunction, Caller: mainFn, CallingReg: child}
	site.Sums = append(site.Sums, &CallTiming{
		Run: run4, MinCalls: 1, MaxCalls: 1, MeanCalls: 1,
		MinTime: 0.1, MaxTime: 0.3, MeanTime: 0.2, StdevTime: 0.08,
	})
	barrier.Calls = append(barrier.Calls, site)
	return &Dataset{
		Program: "tiny",
		Versions: []*Version{{
			Compilation: time.Unix(100, 0),
			Functions:   []*Function{mainFn, barrier},
			Runs:        []*TestRun{run2, run4},
		}},
	}
}

func TestValidateAcceptsTiny(t *testing.T) {
	if err := tinyDataset().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Dataset)
		frag   string
	}{
		{"noName", func(d *Dataset) { d.Program = "" }, "no program name"},
		{"dupNoPe", func(d *Dataset) { d.Versions[0].Runs[1].NoPe = 2 }, "duplicate NoPe"},
		{"zeroPe", func(d *Dataset) { d.Versions[0].Runs[0].NoPe = 0 }, "NoPe"},
		{"dupTotal", func(d *Dataset) {
			r := d.Versions[0].Functions[0].Regions[0]
			r.TotTimes = append(r.TotTimes, r.TotTimes[0])
		}, "duplicate TotalTiming"},
		{"inclBelowExcl", func(d *Dataset) {
			d.Versions[0].Functions[0].Regions[0].TotTimes[0].Incl = 0.1
		}, "inclusive"},
		{"negativeOvhd", func(d *Dataset) {
			d.Versions[0].Functions[0].Regions[0].TotTimes[0].Ovhd = -1
		}, "negative overhead"},
		{"dupTyped", func(d *Dataset) {
			c := d.Versions[0].Functions[0].Regions[0].Children[0]
			c.TypTimes = append(c.TypTimes, c.TypTimes[0])
		}, "duplicate TypedTiming"},
		{"negTyped", func(d *Dataset) {
			d.Versions[0].Functions[0].Regions[0].Children[0].TypTimes[0].Time = -2
		}, "negative"},
		{"wrongParent", func(d *Dataset) {
			d.Versions[0].Functions[0].Regions[0].Children[0].Parent = nil
		}, "wrong parent"},
		{"calleeMismatch", func(d *Dataset) {
			d.Versions[0].Functions[1].Calls[0].Callee = "other"
		}, "callee"},
		{"statsOrder", func(d *Dataset) {
			d.Versions[0].Functions[1].Calls[0].Sums[0].MinTime = 9
		}, "out of order"},
		{"negStdev", func(d *Dataset) {
			d.Versions[0].Functions[1].Calls[0].Sums[0].StdevTime = -1
		}, "negative standard deviation"},
		{"dupCallTiming", func(d *Dataset) {
			c := d.Versions[0].Functions[1].Calls[0]
			c.Sums = append(c.Sums, c.Sums[0])
		}, "duplicate CallTiming"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := tinyDataset()
			c.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q lacks %q", err, c.frag)
			}
		})
	}
}

func TestAccessors(t *testing.T) {
	d := tinyDataset()
	v := d.Versions[0]
	if v.MinPeRun().NoPe != 2 {
		t.Error("MinPeRun")
	}
	if v.RootRegion() == nil || v.RootRegion().Name != "main" {
		t.Error("RootRegion")
	}
	if v.FunctionByName("barrier") == nil || v.FunctionByName("nope") != nil {
		t.Error("FunctionByName")
	}
	if len(v.AllRegions()) != 2 {
		t.Errorf("AllRegions = %d", len(v.AllRegions()))
	}
	root := v.RootRegion()
	if root.TotalFor(v.Runs[0]) == nil || root.TotalFor(&TestRun{}) != nil {
		t.Error("TotalFor")
	}
	child := root.Children[0]
	if child.TypedFor(v.Runs[1], Barrier) == nil || child.TypedFor(v.Runs[0], Barrier) != nil {
		t.Error("TypedFor")
	}
	st := d.Stats()
	if st.Regions != 2 || st.TotalTimings != 4 || st.TypedTimings != 1 || st.CallSites != 1 || st.CallTimings != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestBuildGraph(t *testing.T) {
	d := tinyDataset()
	g, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	// Counts: 1 program + 1 version + 1 code + 2 runs + 2 functions +
	// 2 regions + 4 total timings + 1 typed + 1 call + 1 call timing = 16.
	if g.Store.Len() != 16 {
		t.Fatalf("store size %d, want 16", g.Store.Len())
	}
	// The program's Versions set links to the version object.
	versions := g.Program.Get("Versions").(*object.Set)
	if len(versions.Elems) != 1 {
		t.Fatalf("versions: %v", versions)
	}
	// Parent link.
	child := d.Versions[0].Functions[0].Regions[0].Children[0]
	childObj := g.Regions[child]
	parent := childObj.Get("ParentRegion").(*object.Object)
	if parent != g.Regions[d.Versions[0].RootRegion()] {
		t.Fatal("parent link wrong")
	}
	// Enum member stored for typed timings.
	typObjs := g.Store.OfClass("TypedTiming")
	if len(typObjs) != 1 {
		t.Fatalf("typed timings: %d", len(typObjs))
	}
	if e := typObjs[0].Get("Type").(object.Enum); e.Member != "Barrier" {
		t.Fatalf("enum member: %s", e.Member)
	}
	// CallTiming extremal processor attributes present.
	ct := g.Store.OfClass("CallTiming")[0]
	if v := ct.Get("PeMaxTime"); !object.Equal(v, object.Int(0)) {
		t.Fatalf("PeMaxTime: %s", v)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	d := tinyDataset()
	d.Program = ""
	if _, err := Build(d); err == nil {
		t.Fatal("Build must validate")
	}
}

func TestRegionWalkOrder(t *testing.T) {
	d := tinyDataset()
	var names []string
	d.Versions[0].RootRegion().Walk(func(r *Region) { names = append(names, r.Name) })
	if strings.Join(names, ",") != "main,loop" {
		t.Fatalf("walk order: %v", names)
	}
}

func TestCanonicalSpecRoundTripsThroughPrinter(t *testing.T) {
	spec, err := parser.Parse(SpecSource)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(spec)
	spec2, err := parser.Parse(printed)
	if err != nil {
		t.Fatalf("re-parsing printed canonical spec: %v", err)
	}
	if ast.Print(spec2) != printed {
		t.Fatal("printer is not a fixed point on the canonical spec")
	}
	if len(spec2.Properties()) != len(spec.Properties()) ||
		len(spec2.Classes()) != len(spec.Classes()) ||
		len(spec2.Enums()) != len(spec.Enums()) ||
		len(spec2.Funcs()) != len(spec.Funcs()) ||
		len(spec2.Consts()) != len(spec.Consts()) {
		t.Fatal("declaration counts changed through the printer")
	}
	if _, err := sem.Check(spec2); err != nil {
		t.Fatalf("printed spec fails semantic analysis: %v", err)
	}
}
