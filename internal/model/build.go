package model

import (
	"fmt"

	"repro/internal/asl/object"
	"repro/internal/asl/sem"
)

// Graph is a dataset materialized as an ASL object graph, with handles back
// from mirror structs to their objects so analyses can be driven from either
// representation.
type Graph struct {
	World   *sem.World
	Store   *object.Store
	Dataset *Dataset

	Program  *object.Object
	Versions map[*Version]*object.Object
	Runs     map[*TestRun]*object.Object
	Funcs    map[*Function]*object.Object
	Regions  map[*Region]*object.Object
	Calls    map[*FunctionCall]*object.Object

	// OrderedRegions and OrderedCalls list this dataset's region and
	// call-site objects in deterministic build order; analyses iterate
	// these rather than the whole store, which may hold other programs.
	OrderedRegions []*object.Object
	OrderedCalls   []*object.Object
}

// Build materializes the dataset in a fresh object store using the canonical
// specification's classes. The dataset is validated first.
func Build(d *Dataset) (*Graph, error) {
	return BuildInto(object.NewStore(), d)
}

// BuildInto materializes the dataset into an existing store, so several
// applications can share one database — the paper's COSY database holds
// "multiple applications with different versions and multiple test runs per
// program version". Object IDs stay unique across all datasets built into
// the same store.
func BuildInto(store *object.Store, d *Dataset) (*Graph, error) {
	w, err := CompileSpec()
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{
		World:    w,
		Store:    store,
		Dataset:  d,
		Versions: make(map[*Version]*object.Object),
		Runs:     make(map[*TestRun]*object.Object),
		Funcs:    make(map[*Function]*object.Object),
		Regions:  make(map[*Region]*object.Object),
		Calls:    make(map[*FunctionCall]*object.Object),
	}
	cls := func(name string) *sem.Class {
		c, ok := w.Classes[name]
		if !ok {
			panic(fmt.Sprintf("model: canonical spec lacks class %s", name))
		}
		return c
	}
	enumTT := w.Enums["TimingType"]
	if enumTT == nil {
		return nil, fmt.Errorf("model: canonical spec lacks enum TimingType")
	}

	prog := g.Store.New(cls("Program"))
	prog.Set("Name", object.Str(d.Program))
	g.Program = prog

	for _, v := range d.Versions {
		vo := g.Store.New(cls("ProgVersion"))
		g.Versions[v] = vo
		vo.Set("Compilation", object.DateTime(v.Compilation.Unix()))
		code := g.Store.New(cls("SourceCode"))
		code.Set("Text", object.Str(v.Code))
		vo.Set("Code", code)
		prog.Append("Versions", vo)

		for _, run := range v.Runs {
			ro := g.Store.New(cls("TestRun"))
			g.Runs[run] = ro
			ro.Set("Start", object.DateTime(run.Start.Unix()))
			ro.Set("NoPe", object.Int(int64(run.NoPe)))
			ro.Set("Clockspeed", object.Int(int64(run.Clockspeed)))
			vo.Append("Runs", ro)
		}

		// Functions first so call sites can reference caller functions.
		for _, f := range v.Functions {
			fo := g.Store.New(cls("Function"))
			g.Funcs[f] = fo
			fo.Set("Name", object.Str(f.Name))
			vo.Append("Functions", fo)
		}

		for _, f := range v.Functions {
			fo := g.Funcs[f]
			for _, root := range f.Regions {
				root.Walk(func(r *Region) {
					ro := g.Store.New(cls("Region"))
					g.Regions[r] = ro
					g.OrderedRegions = append(g.OrderedRegions, ro)
					ro.Set("Name", object.Str(r.Name))
					ro.Set("Kind", object.Str(string(r.Kind)))
					fo.Append("Regions", ro)
				})
			}
		}
		// Second pass: parent links and timings (regions now all exist).
		for _, f := range v.Functions {
			for _, root := range f.Regions {
				root.Walk(func(r *Region) {
					ro := g.Regions[r]
					if r.Parent != nil {
						ro.Set("ParentRegion", g.Regions[r.Parent])
					}
					for _, tt := range r.TotTimes {
						to := g.Store.New(cls("TotalTiming"))
						to.Set("Run", g.Runs[tt.Run])
						to.Set("Excl", object.Float(tt.Excl))
						to.Set("Incl", object.Float(tt.Incl))
						to.Set("Ovhd", object.Float(tt.Ovhd))
						ro.Append("TotTimes", to)
					}
					for _, tt := range r.TypTimes {
						to := g.Store.New(cls("TypedTiming"))
						to.Set("Run", g.Runs[tt.Run])
						to.Set("Type", object.Enum{Type: enumTT, Member: tt.Type.String()})
						to.Set("Time", object.Float(tt.Time))
						ro.Append("TypTimes", to)
					}
				})
			}
		}
		for _, f := range v.Functions {
			fo := g.Funcs[f]
			for _, call := range f.Calls {
				co := g.Store.New(cls("FunctionCall"))
				g.Calls[call] = co
				g.OrderedCalls = append(g.OrderedCalls, co)
				co.Set("Callee", object.Str(call.Callee))
				if call.Caller != nil {
					co.Set("Caller", g.Funcs[call.Caller])
				}
				if call.CallingReg != nil {
					co.Set("CallingReg", g.Regions[call.CallingReg])
				}
				for _, ct := range call.Sums {
					cto := g.Store.New(cls("CallTiming"))
					cto.Set("Run", g.Runs[ct.Run])
					cto.Set("MinCalls", object.Float(ct.MinCalls))
					cto.Set("MaxCalls", object.Float(ct.MaxCalls))
					cto.Set("MeanCalls", object.Float(ct.MeanCalls))
					cto.Set("StdevCalls", object.Float(ct.StdevCalls))
					cto.Set("PeMinCalls", object.Int(int64(ct.PeMinCalls)))
					cto.Set("PeMaxCalls", object.Int(int64(ct.PeMaxCalls)))
					cto.Set("MinTime", object.Float(ct.MinTime))
					cto.Set("MaxTime", object.Float(ct.MaxTime))
					cto.Set("MeanTime", object.Float(ct.MeanTime))
					cto.Set("StdevTime", object.Float(ct.StdevTime))
					cto.Set("PeMinTime", object.Int(int64(ct.PeMinTime)))
					cto.Set("PeMaxTime", object.Int(int64(ct.PeMaxTime)))
					co.Append("Sums", cto)
				}
				fo.Append("Calls", co)
			}
		}
	}
	return g, nil
}
