// Package paradyn implements the comparison baseline of the paper's related
// work: a Paradyn-style analyzer with a fixed, hard-coded set of searched
// bottlenecks (CPUbound, ExcessiveSyncWaitingTime, ExcessiveIOBlockingTime,
// TooManySmallIOOps) instead of a specification-driven property set.
//
// The point of the baseline is architectural, not numerical: the fixed set
// cannot be extended or retargeted without changing tool code, and it misses
// bottleneck classes the ASL specification expresses in a few lines
// (communication cost, replicated work, load imbalance at arbitrary call
// sites). The tests in this package and the A2 benchmarks quantify exactly
// that gap on the workload library.
package paradyn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Bottleneck names the fixed hypotheses, after the Paradyn documentation
// cited by the paper.
type Bottleneck string

// The fixed bottleneck set.
const (
	CPUBound                 Bottleneck = "CPUbound"
	ExcessiveSyncWaitingTime Bottleneck = "ExcessiveSyncWaitingTime"
	ExcessiveIOBlockingTime  Bottleneck = "ExcessiveIOBlockingTime"
	TooManySmallIOOps        Bottleneck = "TooManySmallIOOps"
)

// Fixed is the complete searched set; it cannot be extended at runtime, by
// design of this baseline.
var Fixed = []Bottleneck{CPUBound, ExcessiveSyncWaitingTime, ExcessiveIOBlockingTime, TooManySmallIOOps}

// Finding is one detected bottleneck instance.
type Finding struct {
	Bottleneck Bottleneck
	Region     string
	// Fraction is the share of the whole-program duration spent in the
	// offending category.
	Fraction float64
}

// Config carries the hard-wired thresholds of the baseline.
type Config struct {
	// SyncFraction triggers ExcessiveSyncWaitingTime.
	SyncFraction float64
	// IOFraction triggers ExcessiveIOBlockingTime.
	IOFraction float64
	// CPUFraction triggers CPUbound.
	CPUFraction float64
	// SmallIOOpsPerPe and SmallIOMeanTime trigger TooManySmallIOOps for a
	// call site of an I/O routine.
	SmallIOOpsPerPe float64
	SmallIOMeanTime float64
	// IORoutines names the call sites considered I/O operations.
	IORoutines []string
}

// DefaultConfig mirrors the published Paradyn thresholds (20% waiting time)
// scaled to the summary data available here.
func DefaultConfig() Config {
	return Config{
		SyncFraction:    0.20,
		IOFraction:      0.20,
		CPUFraction:     0.80,
		SmallIOOpsPerPe: 1000,
		SmallIOMeanTime: 1e-4,
		IORoutines:      []string{"write_restart", "read_restart", "fwrite", "fread"},
	}
}

// Analyze searches the fixed bottleneck set in one test run of a version.
func Analyze(v *model.Version, run *model.TestRun, cfg Config) ([]Finding, error) {
	root := v.RootRegion()
	if root == nil {
		return nil, fmt.Errorf("paradyn: no program region")
	}
	rootTot := root.TotalFor(run)
	if rootTot == nil || rootTot.Incl <= 0 {
		return nil, fmt.Errorf("paradyn: program region has no timing for this run")
	}
	total := rootTot.Incl

	var findings []Finding
	for _, r := range v.AllRegions() {
		tot := r.TotalFor(run)
		if tot == nil {
			continue
		}
		var sync, io float64
		for _, tt := range r.TypTimes {
			if tt.Run != run {
				continue
			}
			switch tt.Type {
			case model.Barrier, model.LockWait:
				sync += tt.Time
			case model.IORead, model.IOWrite, model.IOOpen, model.IOClose, model.IOWait:
				io += tt.Time
			}
		}
		if f := sync / total; f > cfg.SyncFraction {
			findings = append(findings, Finding{ExcessiveSyncWaitingTime, r.Name, f})
		}
		if f := io / total; f > cfg.IOFraction {
			findings = append(findings, Finding{ExcessiveIOBlockingTime, r.Name, f})
		}
		// CPUbound applies to the whole program: computation dominates.
		if r == root {
			if f := (tot.Incl - tot.Ovhd) / total; f > cfg.CPUFraction {
				findings = append(findings, Finding{CPUBound, r.Name, f})
			}
		}
	}

	ioRoutine := make(map[string]bool, len(cfg.IORoutines))
	for _, n := range cfg.IORoutines {
		ioRoutine[n] = true
	}
	for _, f := range v.Functions {
		if !ioRoutine[f.Name] {
			continue
		}
		for _, call := range f.Calls {
			for _, ct := range call.Sums {
				if ct.Run != run {
					continue
				}
				if ct.MeanCalls > cfg.SmallIOOpsPerPe && ct.MeanCalls > 0 &&
					ct.MeanTime/ct.MeanCalls < cfg.SmallIOMeanTime {
					region := ""
					if call.CallingReg != nil {
						region = call.CallingReg.Name
					}
					findings = append(findings, Finding{TooManySmallIOOps, region, ct.MeanTime / total})
				}
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Fraction != findings[j].Fraction {
			return findings[i].Fraction > findings[j].Fraction
		}
		if findings[i].Bottleneck != findings[j].Bottleneck {
			return findings[i].Bottleneck < findings[j].Bottleneck
		}
		return findings[i].Region < findings[j].Region
	})
	return findings, nil
}

// Render formats the findings.
func Render(findings []Finding) string {
	if len(findings) == 0 {
		return "paradyn baseline: no bottleneck in the fixed set\n"
	}
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "paradyn: %-26s %-20s %.4f\n", f.Bottleneck, f.Region, f.Fraction)
	}
	return b.String()
}
