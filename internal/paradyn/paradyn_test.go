package paradyn

import (
	"strings"
	"testing"

	"repro/internal/apprentice"
	"repro/internal/model"
)

func simulate(t *testing.T, w *apprentice.Workload) (*model.Version, *model.TestRun) {
	t.Helper()
	ds, err := apprentice.Simulate(w, apprentice.PartitionSweep(2, 8, 32), 42)
	if err != nil {
		t.Fatal(err)
	}
	v := ds.Versions[0]
	return v, v.Runs[len(v.Runs)-1]
}

func TestDetectsSyncBottleneck(t *testing.T) {
	v, run := simulate(t, apprentice.Particles())
	findings, err := Analyze(v, run, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Bottleneck == ExcessiveSyncWaitingTime && f.Region == "forces" {
			return
		}
	}
	t.Fatalf("sync bottleneck at forces not found: %s", Render(findings))
}

func TestDetectsIOBottleneck(t *testing.T) {
	v, run := simulate(t, apprentice.IOBound())
	findings, err := Analyze(v, run, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Bottleneck == ExcessiveIOBlockingTime {
			return
		}
	}
	t.Fatalf("I/O bottleneck not found: %s", Render(findings))
}

func TestDetectsCPUBound(t *testing.T) {
	// A balanced stencil on few processors is mostly computation.
	ds, err := apprentice.Simulate(apprentice.Stencil(), apprentice.PartitionSweep(2, 4), 42)
	if err != nil {
		t.Fatal(err)
	}
	v := ds.Versions[0]
	findings, err := Analyze(v, v.Runs[0], DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Bottleneck == CPUBound {
			return
		}
	}
	t.Fatalf("CPUbound not found: %s", Render(findings))
}

// TestParadynMissesCommunication is the point of the A2 ablation: the fixed
// bottleneck set has no hypothesis for communication cost, so the all-to-all
// workload's dominant problem is invisible to the baseline while COSY's
// CommunicationCost property reports it (covered in internal/core tests).
func TestParadynMissesCommunication(t *testing.T) {
	v, run := simulate(t, apprentice.AllToAll())
	findings, err := Analyze(v, run, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		switch f.Bottleneck {
		case ExcessiveSyncWaitingTime, ExcessiveIOBlockingTime, TooManySmallIOOps:
			t.Fatalf("unexpected finding %s for a communication-bound code", f.Bottleneck)
		}
	}
	// The dominant transpose cost is not attributed at all; at most the
	// whole program is (wrongly) called CPU bound.
	for _, f := range findings {
		if strings.Contains(f.Region, "transpose") {
			t.Fatalf("fixed set cannot attribute to transpose, got %+v", f)
		}
	}
}

func TestFindingsSorted(t *testing.T) {
	v, run := simulate(t, apprentice.Particles())
	findings, err := Analyze(v, run, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(findings); i++ {
		if findings[i-1].Fraction < findings[i].Fraction {
			t.Fatalf("findings not sorted: %+v", findings)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	v, run := simulate(t, apprentice.Particles())
	bad := &model.Version{Functions: v.Functions[1:]} // drop main, lose program region
	if _, err := Analyze(bad, run, DefaultConfig()); err == nil {
		t.Fatal("missing program region must fail")
	}
	if _, err := Analyze(v, &model.TestRun{NoPe: 999}, DefaultConfig()); err == nil {
		t.Fatal("unknown run must fail")
	}
}

func TestRenderEmpty(t *testing.T) {
	if !strings.Contains(Render(nil), "no bottleneck") {
		t.Fatal("empty render")
	}
	out := Render([]Finding{{CPUBound, "main", 0.9}})
	if !strings.Contains(out, "CPUbound") || !strings.Contains(out, "main") {
		t.Fatalf("render: %s", out)
	}
}
