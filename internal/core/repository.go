package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/asl/object"
	"repro/internal/asl/sqlgen"
	"repro/internal/model"
)

// Repository is the COSY database contents: multiple applications, each
// with versions and test runs, sharing one object store (and therefore one
// relational database). The paper: "The database includes multiple
// applications with different versions and multiple test runs per program
// version. The user interface of COSY allows to select a program version
// and a specific test run."
type Repository struct {
	store  *object.Store
	graphs map[string]*model.Graph
	order  []string
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{store: object.NewStore(), graphs: make(map[string]*model.Graph)}
}

// Add materializes a dataset into the shared store. Program names must be
// unique within the repository.
func (r *Repository) Add(d *model.Dataset) (*model.Graph, error) {
	if _, dup := r.graphs[d.Program]; dup {
		return nil, fmt.Errorf("core: program %s already in repository", d.Program)
	}
	g, err := model.BuildInto(r.store, d)
	if err != nil {
		return nil, err
	}
	r.graphs[d.Program] = g
	r.order = append(r.order, d.Program)
	return g, nil
}

// Programs lists the stored applications in insertion order.
func (r *Repository) Programs() []string { return append([]string(nil), r.order...) }

// Graph returns the graph of a stored program, or nil.
func (r *Repository) Graph(program string) *model.Graph { return r.graphs[program] }

// Store returns the shared object store (e.g. for loading into a database).
func (r *Repository) Store() *object.Store { return r.store }

// Load creates the schema and loads the entire repository through the
// executor.
func (r *Repository) Load(exec sqlgen.Executor) error {
	w, err := model.CompileSpec()
	if err != nil {
		return err
	}
	if err := sqlgen.CreateSchema(w, exec); err != nil {
		return err
	}
	_, err = sqlgen.Load(r.store, exec)
	return err
}

// Analyzer returns an analyzer for one stored program.
func (r *Repository) Analyzer(program string, opts ...Option) (*Analyzer, error) {
	g, ok := r.graphs[program]
	if !ok {
		return nil, fmt.Errorf("core: program %s not in repository", program)
	}
	return New(g, opts...), nil
}

// Delta is one entry of a report comparison: how the severity of a property
// instance changed between two analyses (two test runs, or the same run of
// two program versions).
type Delta struct {
	Property string
	Context  string
	Before   float64
	After    float64
}

// Change returns the severity difference (positive means it got worse).
func (d Delta) Change() float64 { return d.After - d.Before }

// CompareReports matches instances of two reports by (property, context)
// and returns the severity deltas sorted by decreasing absolute change.
// Instances present in only one report compare against zero.
func CompareReports(before, after *Report) []Delta {
	type key struct{ p, c string }
	m := make(map[key]*Delta)
	for _, in := range before.Instances {
		m[key{in.Property, in.Context}] = &Delta{Property: in.Property, Context: in.Context, Before: in.Severity}
	}
	for _, in := range after.Instances {
		k := key{in.Property, in.Context}
		if d, ok := m[k]; ok {
			d.After = in.Severity
		} else {
			m[k] = &Delta{Property: in.Property, Context: in.Context, After: in.Severity}
		}
	}
	out := make([]Delta, 0, len(m))
	for _, d := range m {
		out = append(out, *d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := math.Abs(out[i].Change()), math.Abs(out[j].Change())
		if ci != cj {
			return ci > cj
		}
		if out[i].Property != out[j].Property {
			return out[i].Property < out[j].Property
		}
		return out[i].Context < out[j].Context
	})
	return out
}

// RenderDeltas formats a comparison as a text table.
func RenderDeltas(deltas []Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-34s %10s %10s %10s\n", "PROPERTY", "CONTEXT", "BEFORE", "AFTER", "CHANGE")
	for _, d := range deltas {
		fmt.Fprintf(&b, "%-28s %-34s %10.4f %10.4f %+10.4f\n", d.Property, d.Context, d.Before, d.After, d.Change())
	}
	return b.String()
}
