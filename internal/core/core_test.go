package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/godbc"
	"repro/internal/model"
	"repro/internal/sqldb"
)

// buildGraph simulates a workload on a small sweep and materializes it.
func buildGraph(t testing.TB, w *apprentice.Workload, pes ...int) *model.Graph {
	t.Helper()
	if len(pes) == 0 {
		pes = []int{2, 8, 32}
	}
	ds, err := apprentice.Simulate(w, apprentice.PartitionSweep(pes...), 42)
	if err != nil {
		t.Fatal(err)
	}
	g, err := model.Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// loadDB loads the graph's store into a fresh embedded database.
func loadDB(t testing.TB, g *model.Graph) *sqldb.DB {
	t.Helper()
	db := sqldb.NewDB()
	exec := sqlgen.ExecutorFunc(func(q string, p *sqldb.Params) (int, error) {
		res, err := db.Exec(q, p)
		if err != nil {
			return 0, err
		}
		return res.Affected, nil
	})
	if err := sqlgen.CreateSchema(g.World, exec); err != nil {
		t.Fatal(err)
	}
	if _, err := sqlgen.Load(g.Store, exec); err != nil {
		t.Fatal(err)
	}
	return db
}

func lastRun(g *model.Graph) *model.TestRun {
	runs := g.Dataset.Versions[0].Runs
	return runs[len(runs)-1]
}

func TestObjectAnalysisParticles(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	a := New(g)
	rep, err := a.AnalyzeObject(lastRun(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) > 0 {
		t.Fatalf("diagnostics on a complete dataset: %+v", rep.Diagnostics)
	}
	bn := rep.Bottleneck()
	if bn == nil {
		t.Fatal("no bottleneck found in an imbalanced workload")
	}
	// The seeded bottleneck is load imbalance: either the SyncCost of the
	// imbalanced loop or the whole-program SublinearSpeedup must dominate,
	// and LoadImbalance must hold at the barrier call in the forces loop.
	found := false
	for _, in := range rep.Instances {
		if in.Property == "LoadImbalance" && strings.Contains(in.Context, "forces") {
			found = true
			// The paper's severity formula divides the per-process mean by
			// the process-summed basis duration, so the value is small; it
			// must still be positive with full confidence.
			if in.Severity <= 0 || in.Confidence != 1 {
				t.Errorf("LoadImbalance severity %.6f confidence %.2f", in.Severity, in.Confidence)
			}
		}
	}
	if !found {
		t.Error("LoadImbalance at the forces barrier not detected")
	}
	syncSeen := false
	for _, in := range rep.Instances {
		if in.Property == "SyncCost" && strings.Contains(in.Context, "forces") && in.Severity > rep.Threshold {
			syncSeen = true
		}
	}
	if !syncSeen {
		t.Error("SyncCost at forces not reported as a problem")
	}
}

func TestBottleneckPerWorkload(t *testing.T) {
	cases := []struct {
		workload *apprentice.Workload
		// wantProp must appear among the top problems (by severity) of the
		// largest run, in a region matching wantCtx.
		wantProp string
		wantCtx  string
	}{
		{apprentice.Particles(), "SyncCost", "forces"},
		{apprentice.IOBound(), "IOCost", "checkpoint"},
		{apprentice.AllToAll(), "CommunicationCost", "transpose"},
		{apprentice.Amdahl(), "UnmeasuredCost", "serial_setup"},
		{apprentice.FineGrained(), "FrequentFineGrainedCalls", "get_cell"},
	}
	for _, c := range cases {
		t.Run(c.workload.Name, func(t *testing.T) {
			g := buildGraph(t, c.workload)
			a := New(g)
			rep, err := a.AnalyzeObject(lastRun(g))
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range rep.Problems() {
				if in.Property == c.wantProp && strings.Contains(in.Context, c.wantCtx) {
					return
				}
			}
			t.Errorf("expected problem %s at %q; report:\n%s", c.wantProp, c.wantCtx, rep.Render())
		})
	}
}

func TestSeverityGrowsWithPartitionSize(t *testing.T) {
	g := buildGraph(t, apprentice.Amdahl(), 2, 4, 8, 16, 32, 64)
	a := New(g)
	prev := -1.0
	for _, run := range g.Dataset.Versions[0].Runs[1:] {
		rep, err := a.AnalyzeObject(run)
		if err != nil {
			t.Fatal(err)
		}
		var sev float64
		for _, in := range rep.Instances {
			if in.Property == "SublinearSpeedup" && strings.Contains(in.Context, "region main") {
				sev = in.Severity
			}
		}
		if sev <= prev {
			t.Errorf("NoPe=%d: SublinearSpeedup severity %.4f did not grow (prev %.4f)", run.NoPe, sev, prev)
		}
		prev = sev
	}
}

// TestEnginesAgree is the A1 ablation: the object interpreter and the
// compiled SQL queries must produce identical results on every workload.
func TestEnginesAgree(t *testing.T) {
	for name, w := range apprentice.Library() {
		t.Run(name, func(t *testing.T) {
			g := buildGraph(t, w, 2, 8, 32)
			db := loadDB(t, g)
			a := New(g)
			for _, run := range g.Dataset.Versions[0].Runs {
				obj, err := a.AnalyzeObject(run)
				if err != nil {
					t.Fatal(err)
				}
				sql, err := a.AnalyzeSQL(run, godbc.Embedded{DB: db})
				if err != nil {
					t.Fatal(err)
				}
				compareReports(t, obj, sql)
			}
		})
	}
}

// TestClientSideAgrees checks the fetch-then-evaluate configuration against
// the direct object path.
func TestClientSideAgrees(t *testing.T) {
	g := buildGraph(t, apprentice.Stencil())
	db := loadDB(t, g)
	a := New(g)
	run := lastRun(g)
	obj, err := a.AnalyzeObject(run)
	if err != nil {
		t.Fatal(err)
	}
	client, err := a.AnalyzeClientSide(run, godbc.Embedded{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, obj, client)
}

func compareReports(t *testing.T, a, b *Report) {
	t.Helper()
	if len(a.Instances) != len(b.Instances) {
		t.Fatalf("instance count: %s=%d, %s=%d\n%s\n%s",
			a.Engine, len(a.Instances), b.Engine, len(b.Instances), a.Render(), b.Render())
	}
	if len(a.Diagnostics) != 0 || len(b.Diagnostics) != 0 {
		t.Fatalf("diagnostics: %s=%v, %s=%v", a.Engine, a.Diagnostics, b.Engine, b.Diagnostics)
	}
	for i := range a.Instances {
		x, y := a.Instances[i], b.Instances[i]
		if x.Property != y.Property || x.Context != y.Context {
			t.Fatalf("ranking differs at %d: %s/%s vs %s/%s", i, x.Property, x.Context, y.Property, y.Context)
		}
		if !closeEnough(x.Severity, y.Severity) || !closeEnough(x.Confidence, y.Confidence) {
			t.Fatalf("%s %s: severity %.12g vs %.12g, confidence %g vs %g",
				x.Property, x.Context, x.Severity, y.Severity, x.Confidence, y.Confidence)
		}
	}
}

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func TestThresholdOption(t *testing.T) {
	g := buildGraph(t, apprentice.Stencil())
	a := New(g, WithThreshold(0.5))
	rep, err := a.AnalyzeObject(lastRun(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems() {
		if p.Severity <= 0.5 {
			t.Errorf("problem below threshold: %+v", p)
		}
	}
}

func TestPropertySubset(t *testing.T) {
	g := buildGraph(t, apprentice.Stencil())
	a := New(g, WithProperties("SyncCost"))
	rep, err := a.AnalyzeObject(lastRun(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range rep.Instances {
		if in.Property != "SyncCost" {
			t.Fatalf("unexpected property %s", in.Property)
		}
	}
	if len(rep.Instances) == 0 {
		t.Fatal("SyncCost nowhere found in stencil workload")
	}
}

func TestConstOverride(t *testing.T) {
	g := buildGraph(t, apprentice.Stencil())
	strict := New(g, WithProperties("LoadImbalance"), WithConst("ImbalanceThreshold", 1e9))
	rep, err := strict.AnalyzeObject(lastRun(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Instances) != 0 {
		t.Fatalf("ImbalanceThreshold=1e9 still reports %d imbalances", len(rep.Instances))
	}
	// The same override must act identically on the SQL path.
	db := loadDB(t, g)
	repSQL, err := strict.AnalyzeSQL(lastRun(g), godbc.Embedded{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if len(repSQL.Instances) != 0 {
		t.Fatalf("SQL path ignored the constant override: %d instances", len(repSQL.Instances))
	}
}

func TestCallFilterDefaultsToBarrier(t *testing.T) {
	g := buildGraph(t, apprentice.Stencil())
	a := New(g, WithProperties("LoadImbalance"))
	rep, err := a.AnalyzeObject(lastRun(g))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range rep.Instances {
		if !strings.Contains(in.Context, model.BarrierFunction) {
			t.Fatalf("LoadImbalance evaluated for non-barrier call: %s", in.Context)
		}
	}
}

func TestReportRendering(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	rep, err := New(g).AnalyzeObject(lastRun(g))
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Render()
	for _, want := range []string{"COSY analysis", "bottleneck:", "SEVERITY"} {
		if !strings.Contains(text, want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}
}

func TestAnalyzeUnknownRun(t *testing.T) {
	g := buildGraph(t, apprentice.Stencil())
	if _, err := New(g).AnalyzeObject(&model.TestRun{NoPe: 999}); err == nil {
		t.Fatal("expected error for run outside the dataset")
	}
}
