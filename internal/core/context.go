package core

// Context-observing analysis entry points. The resident service (see
// internal/service) runs many concurrent analyses with per-request deadlines;
// these variants let a client's cancel or deadline stop an analysis wherever
// it is — queued, mid-batch, or idle in a profiled vendor delay — instead of
// letting abandoned work occupy the capacity other tenants are waiting for.
//
// Cancellation propagates layer by layer (each layer is probed for context
// support and falls back to the uncancellable call when it has none):
//
//	core      between chunks and instances (this package)
//	godbc     pool checkout, the wire round trip, ReqCancel on MuxConn
//	wire      server-side capacity queue, profiled vendor delays
//	sqldb     between the bindings of a batched execution
//
// A canceled analysis always returns the context's error — never a partial
// report, which would be indistinguishable from a complete one.

import (
	"context"
	"fmt"

	"repro/internal/asl/sqlgen"
	"repro/internal/model"
	"repro/internal/sqldb"
)

// AnalyzeObjectCtx is AnalyzeObject observing a context. The interpreter runs
// in process with no blocking points, so cancellation is checked between
// property instances.
func (a *Analyzer) AnalyzeObjectCtx(ctx context.Context, run *model.TestRun) (*Report, error) {
	sc, err := a.scopeFromGraph(run)
	if err != nil {
		return nil, err
	}
	instances, err := a.evalScope(ctx, sc)
	if err != nil {
		return nil, err
	}
	return a.finish("object", run.NoPe, instances), nil
}

// AnalyzeClientSideCtx is AnalyzeClientSide observing a context: the
// store-fetching queries observe it when the executor supports contexts, and
// the interpretation phase checks it between instances.
func (a *Analyzer) AnalyzeClientSideCtx(ctx context.Context, run *model.TestRun, q QueryExec) (*Report, error) {
	store, err := sqlgen.ReadStore(a.world, ctxQueryExec(ctx, q))
	if err != nil {
		return nil, err
	}
	version := a.versionOf(run)
	if version == nil {
		return nil, fmt.Errorf("core: run not part of the analyzed dataset")
	}
	sc, err := a.scopeFromStore(store, version, run.NoPe)
	if err != nil {
		return nil, err
	}
	instances, err := a.evalScope(ctx, sc)
	if err != nil {
		return nil, err
	}
	return a.finish("client-sql", run.NoPe, instances), nil
}

// ctxQueryExec binds a context to an executor: the returned executor routes
// every ExecQuery through the context-observing call when the underlying
// executor has one. With no context support (or an uncancellable context) the
// executor is returned unwrapped.
func ctxQueryExec(ctx context.Context, q QueryExec) QueryExec {
	ce, ok := q.(sqlgen.ContextQueryExecutor)
	if !ok || ctx.Done() == nil {
		return q
	}
	return boundExec{ctx: ctx, q: ce}
}

// boundExec is a QueryExec with a context pre-bound to every execution.
type boundExec struct {
	ctx context.Context
	q   sqlgen.ContextQueryExecutor
}

func (b boundExec) ExecQuery(query string, params *sqldb.Params) (*sqldb.ResultSet, error) {
	return b.q.ExecQueryContext(b.ctx, query, params)
}
