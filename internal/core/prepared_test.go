package core

import (
	"testing"

	"repro/internal/apprentice"
	"repro/internal/asl/sqlgen"
	"repro/internal/godbc"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// The prepared-statement pipeline must be invisible in the output: for every
// executor and worker count, the report produced with prepared statements is
// byte-identical to the per-call text-protocol one. Run with -race to
// exercise concurrent executions of the shared prepared handles.

// TestPreparedMatchesTextEmbedded compares prepared and text execution on
// the embedded engine for every library workload.
func TestPreparedMatchesTextEmbedded(t *testing.T) {
	for name, w := range apprentice.Library() {
		t.Run(name, func(t *testing.T) {
			g := buildGraph(t, w)
			db := loadDB(t, g)
			run := lastRun(g)
			q := godbc.Embedded{DB: db}

			text := New(g, WithPreparedStatements(false))
			prepared := New(g)
			want := renderWith(t, text, 1, func() (*Report, error) { return text.AnalyzeSQL(run, q) })
			for _, workers := range []int{1, 8} {
				got := renderWith(t, prepared, workers, func() (*Report, error) { return prepared.AnalyzeSQL(run, q) })
				if got != want {
					t.Errorf("workers=%d prepared report differs from text:\n--- text ---\n%s--- prepared ---\n%s", workers, want, got)
				}
			}
		})
	}
}

// TestPreparedMatchesTextOverPool drives the full networked stack: the
// pool's prepared statements at workers=8 must reproduce the serial
// text-protocol report byte for byte.
func TestPreparedMatchesTextOverPool(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	db := loadDB(t, g)
	srv, err := wire.NewServer(db, wire.ProfileFast, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool, err := godbc.NewPool(srv.Addr(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	run := lastRun(g)
	text := New(g, WithPreparedStatements(false))
	want := renderWith(t, text, 1, func() (*Report, error) { return text.AnalyzeSQL(run, pool) })
	prepared := New(g)
	for _, workers := range []int{1, 8} {
		got := renderWith(t, prepared, workers, func() (*Report, error) { return prepared.AnalyzeSQL(run, pool) })
		if got != want {
			t.Errorf("workers=%d pooled prepared report differs from serial text:\n--- text ---\n%s--- prepared ---\n%s", workers, want, got)
		}
	}
	// The 8 properties were prepared lazily on at most pool-size
	// connections; the database must not have accumulated more handles.
	if live := db.Stats().PreparedLive; live > int64(8*pool.Size()) {
		t.Errorf("server holds %d prepared handles", live)
	}
}

// TestPreparedHandlesReleasedEmbedded: an analysis must close every handle
// it prepared.
func TestPreparedHandlesReleasedEmbedded(t *testing.T) {
	g := buildGraph(t, apprentice.Stencil())
	db := loadDB(t, g)
	a := New(g)
	if _, err := a.AnalyzeSQL(lastRun(g), godbc.Embedded{DB: db}); err != nil {
		t.Fatal(err)
	}
	if live := db.Stats().PreparedLive; live != 0 {
		t.Fatalf("%d prepared handles leaked", live)
	}
}

// TestGuidedSQLMatchesGuidedObject: the SQL-engine refinement search must
// visit the same instances with the same outcomes as the object-engine one.
func TestGuidedSQLMatchesGuidedObject(t *testing.T) {
	for name, w := range apprentice.Library() {
		t.Run(name, func(t *testing.T) {
			g := buildGraph(t, w)
			db := loadDB(t, g)
			run := lastRun(g)
			a := New(g)
			obj, objStats, err := a.AnalyzeGuided(run, DefaultHierarchy())
			if err != nil {
				t.Fatal(err)
			}
			sql, sqlStats, err := a.AnalyzeGuidedSQL(run, DefaultHierarchy(), godbc.Embedded{DB: db})
			if err != nil {
				t.Fatal(err)
			}
			if objStats.Evaluated != sqlStats.Evaluated || objStats.Exhaustive != sqlStats.Exhaustive {
				t.Fatalf("search stats differ: object %+v, sql %+v", objStats, sqlStats)
			}
			compareReports(t, obj, sql)
		})
	}
}

// countingPreparer wraps an executor and counts prepare and text-execution
// traffic.
type countingPreparer struct {
	godbc.Embedded
	prepares  int
	textExecs int
}

func (c *countingPreparer) PrepareQuery(sql string) (sqlgen.PreparedQuery, error) {
	c.prepares++
	return c.Embedded.PrepareQuery(sql)
}

func (c *countingPreparer) ExecQuery(sql string, params *sqldb.Params) (*sqldb.ResultSet, error) {
	c.textExecs++
	return c.Embedded.ExecQuery(sql, params)
}

// TestGuidedSQLPreparesOncePerProperty: the refinement search prepares each
// property's query at most once regardless of how many contexts it
// evaluates, and ships no query text per instance.
func TestGuidedSQLPreparesOncePerProperty(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	db := loadDB(t, g)
	a := New(g)
	q := &countingPreparer{Embedded: godbc.Embedded{DB: db}}
	rep, stats, err := a.AnalyzeGuidedSQL(lastRun(g), DefaultHierarchy(), q)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bottleneck() == nil {
		t.Fatal("no bottleneck")
	}
	if stats.Evaluated == 0 {
		t.Fatal("search evaluated nothing")
	}
	if q.prepares == 0 || q.prepares > len(a.props) {
		t.Fatalf("prepared %d times for %d properties", q.prepares, len(a.props))
	}
	if q.textExecs != 0 {
		t.Fatalf("%d text executions on the prepared path", q.textExecs)
	}
	if live := db.Stats().PreparedLive; live != 0 {
		t.Fatalf("%d prepared handles leaked", live)
	}
}

// TestAnalyzeSQLPreparesOncePerProperty: the exhaustive analysis prepares
// exactly one handle per property and executes it per context.
func TestAnalyzeSQLPreparesOncePerProperty(t *testing.T) {
	g := buildGraph(t, apprentice.Stencil())
	db := loadDB(t, g)
	a := New(g)
	q := &countingPreparer{Embedded: godbc.Embedded{DB: db}}
	if _, err := a.AnalyzeSQL(lastRun(g), q); err != nil {
		t.Fatal(err)
	}
	if q.prepares != len(a.props) {
		t.Fatalf("prepared %d times for %d properties", q.prepares, len(a.props))
	}
	if q.textExecs != 0 {
		t.Fatalf("%d text executions on the prepared path", q.textExecs)
	}
}
