package core

import (
	"fmt"
	"sort"

	"repro/internal/asl/object"
	"repro/internal/asl/sem"
	"repro/internal/model"
)

// Hierarchy is a property refinement tree: child property -> parent
// property. The paper introduces the idea with "The LoadImbalance property
// is a refinement of the SyncCost property", following the proof/refinement
// rule design of the OPAL tool it cites: a refinement hypothesis is only
// worth evaluating where its parent is already a proven problem.
type Hierarchy map[string]string

// DefaultHierarchy reflects the refinement structure of the canonical
// specification: everything explains a part of the sublinear speedup;
// measured cost splits into synchronization, communication, and I/O;
// imbalance and call granularity refine their respective parents.
func DefaultHierarchy() Hierarchy {
	return Hierarchy{
		"MeasuredCost":             "SublinearSpeedup",
		"UnmeasuredCost":           "SublinearSpeedup",
		"SyncCost":                 "MeasuredCost",
		"CommunicationCost":        "MeasuredCost",
		"IOCost":                   "MeasuredCost",
		"LoadImbalance":            "SyncCost",
		"FrequentFineGrainedCalls": "MeasuredCost",
	}
}

// Roots returns the properties without parents, restricted to the given
// evaluation set, in that set's order.
func (h Hierarchy) Roots(props []string) []string {
	var out []string
	for _, p := range props {
		if _, hasParent := h[p]; !hasParent {
			out = append(out, p)
		}
	}
	return out
}

// Children returns the direct refinements of a property, restricted to the
// given evaluation set, in that set's order.
func (h Hierarchy) Children(parent string, props []string) []string {
	var out []string
	for _, p := range props {
		if h[p] == parent {
			out = append(out, p)
		}
	}
	return out
}

// Validate rejects hierarchies with unknown properties or cycles.
func (h Hierarchy) Validate(known map[string]*sem.PropertySig) error {
	for child, parent := range h {
		if _, ok := known[child]; !ok {
			return fmt.Errorf("core: hierarchy refines unknown property %s", child)
		}
		if _, ok := known[parent]; !ok {
			return fmt.Errorf("core: hierarchy names unknown parent %s", parent)
		}
	}
	for start := range h {
		slow, fast := start, start
		for {
			fast = h[fast]
			if fast == "" {
				break
			}
			fast = h[fast]
			slow = h[slow]
			if fast == "" {
				break
			}
			if slow == fast {
				return fmt.Errorf("core: hierarchy cycle involving %s", start)
			}
		}
	}
	return nil
}

// SearchStats reports how much work the guided search did compared to
// exhaustive evaluation.
type SearchStats struct {
	// Evaluated counts property instances actually evaluated.
	Evaluated int
	// Exhaustive counts the instances a full evaluation would touch.
	Exhaustive int
}

// Savings is the fraction of instance evaluations avoided.
func (s SearchStats) Savings() float64 {
	if s.Exhaustive == 0 {
		return 0
	}
	return 1 - float64(s.Evaluated)/float64(s.Exhaustive)
}

// AnalyzeGuided performs the refinement-driven search of the OPAL design
// the paper builds on: root properties are evaluated for every context, and
// a refinement is evaluated only where its parent is a performance problem
// (severity above the threshold). Refinement descends both axes, property
// and program structure: when a property is proven at region r, its
// refinements are evaluated throughout r's region subtree (a parent
// region's cost is explained by overheads recorded in its descendants),
// and call-scoped refinements at the call sites inside that subtree.
func (a *Analyzer) AnalyzeGuided(run *model.TestRun, h Hierarchy) (*Report, *SearchStats, error) {
	if err := h.Validate(a.world.Props); err != nil {
		return nil, nil, err
	}
	sc, err := a.scopeFromGraph(run)
	if err != nil {
		return nil, nil, err
	}

	stats := &SearchStats{}
	for _, prop := range a.props {
		ctxs, err := a.contexts(sc, prop)
		if err != nil {
			return nil, nil, err
		}
		stats.Exhaustive += len(ctxs)
	}

	ev := a.objectEvaluator()
	var instances []Instance
	evaluated := make(map[string]bool)

	// evalIn evaluates one property for one pre-built context, once.
	evalIn := func(prop string, ctx instCtx) (Instance, bool) {
		key := prop + "\x00" + ctx.label
		if evaluated[key] {
			return Instance{}, false
		}
		evaluated[key] = true
		stats.Evaluated++
		in := Instance{Property: prop, Context: ctx.label}
		res, err := ev.EvalProperty(prop, ctx.args...)
		if err != nil {
			in.Diagnostic = err.Error()
			return in, true
		}
		in.Holds = res.Holds
		in.Confidence = res.Confidence
		in.Severity = res.Severity
		return in, true
	}

	// The work list pairs a property with the region subtree that scopes it.
	type item struct {
		prop string
		root *object.Object // nil means "all regions" (search roots)
	}
	var queue []item
	for _, root := range h.Roots(a.props) {
		queue = append(queue, item{prop: root})
	}

	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		ctxs, err := a.contexts(sc, it.prop)
		if err != nil {
			return nil, nil, err
		}
		for _, ctx := range ctxs {
			if it.root != nil && !ctxInSubtree(ctx, it.root) {
				continue
			}
			in, fresh := evalIn(it.prop, ctx)
			if !fresh {
				continue
			}
			instances = append(instances, in)
			if in.Holds && in.Severity > a.threshold {
				region := contextRegion(ctx)
				for _, child := range h.Children(it.prop, a.props) {
					queue = append(queue, item{prop: child, root: region})
				}
			}
		}
	}

	rep := a.finish("guided", run.NoPe, instances)
	return rep, stats, nil
}

// contextRegion extracts the region object scoping a context: the first
// argument for region properties, the calling region for call properties.
func contextRegion(ctx instCtx) *object.Object {
	first, _ := ctx.args[0].(*object.Object)
	if first == nil {
		return nil
	}
	if first.Class.Name == "Region" {
		return first
	}
	if reg, ok := first.Get("CallingReg").(*object.Object); ok {
		return reg
	}
	return nil
}

// ctxInSubtree reports whether a context's region lies in the subtree
// rooted at the given region (following ParentRegion links).
func ctxInSubtree(ctx instCtx, root *object.Object) bool {
	for r := contextRegion(ctx); r != nil; {
		if r == root {
			return true
		}
		parent, ok := r.Get("ParentRegion").(*object.Object)
		if !ok {
			return false
		}
		r = parent
	}
	return false
}

// SortedBySeverity returns instances ordered as reports order them; used by
// tests comparing guided and exhaustive results.
func SortedBySeverity(in []Instance) []Instance {
	out := append([]Instance(nil), in...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Property != out[j].Property {
			return out[i].Property < out[j].Property
		}
		return out[i].Context < out[j].Context
	})
	return out
}
