package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/asl/object"
	"repro/internal/asl/sem"
	"repro/internal/model"
)

// Hierarchy is a property refinement tree: child property -> parent
// property. The paper introduces the idea with "The LoadImbalance property
// is a refinement of the SyncCost property", following the proof/refinement
// rule design of the OPAL tool it cites: a refinement hypothesis is only
// worth evaluating where its parent is already a proven problem.
type Hierarchy map[string]string

// DefaultHierarchy reflects the refinement structure of the canonical
// specification: everything explains a part of the sublinear speedup;
// measured cost splits into synchronization, communication, and I/O;
// imbalance and call granularity refine their respective parents.
func DefaultHierarchy() Hierarchy {
	return Hierarchy{
		"MeasuredCost":             "SublinearSpeedup",
		"UnmeasuredCost":           "SublinearSpeedup",
		"SyncCost":                 "MeasuredCost",
		"CommunicationCost":        "MeasuredCost",
		"IOCost":                   "MeasuredCost",
		"LoadImbalance":            "SyncCost",
		"FrequentFineGrainedCalls": "MeasuredCost",
	}
}

// Roots returns the properties without parents, restricted to the given
// evaluation set, in that set's order.
func (h Hierarchy) Roots(props []string) []string {
	var out []string
	for _, p := range props {
		if _, hasParent := h[p]; !hasParent {
			out = append(out, p)
		}
	}
	return out
}

// Children returns the direct refinements of a property, restricted to the
// given evaluation set, in that set's order.
func (h Hierarchy) Children(parent string, props []string) []string {
	var out []string
	for _, p := range props {
		if h[p] == parent {
			out = append(out, p)
		}
	}
	return out
}

// Validate rejects hierarchies with unknown properties or cycles.
func (h Hierarchy) Validate(known map[string]*sem.PropertySig) error {
	for child, parent := range h {
		if _, ok := known[child]; !ok {
			return fmt.Errorf("core: hierarchy refines unknown property %s", child)
		}
		if _, ok := known[parent]; !ok {
			return fmt.Errorf("core: hierarchy names unknown parent %s", parent)
		}
	}
	for start := range h {
		slow, fast := start, start
		for {
			fast = h[fast]
			if fast == "" {
				break
			}
			fast = h[fast]
			slow = h[slow]
			if fast == "" {
				break
			}
			if slow == fast {
				return fmt.Errorf("core: hierarchy cycle involving %s", start)
			}
		}
	}
	return nil
}

// SearchStats reports how much work the guided search did compared to
// exhaustive evaluation.
type SearchStats struct {
	// Evaluated counts property instances actually evaluated.
	Evaluated int
	// Exhaustive counts the instances a full evaluation would touch.
	Exhaustive int
}

// Savings is the fraction of instance evaluations avoided.
func (s SearchStats) Savings() float64 {
	if s.Exhaustive == 0 {
		return 0
	}
	return 1 - float64(s.Evaluated)/float64(s.Exhaustive)
}

// AnalyzeGuided performs the refinement-driven search of the OPAL design
// the paper builds on: root properties are evaluated for every context, and
// a refinement is evaluated only where its parent is a performance problem
// (severity above the threshold). Refinement descends both axes, property
// and program structure: when a property is proven at region r, its
// refinements are evaluated throughout r's region subtree (a parent
// region's cost is explained by overheads recorded in its descendants),
// and call-scoped refinements at the call sites inside that subtree.
func (a *Analyzer) AnalyzeGuided(run *model.TestRun, h Hierarchy) (*Report, *SearchStats, error) {
	ev := a.objectEvaluator()
	evalGroup := func(prop string, ctxs []instCtx) []Instance {
		out := make([]Instance, len(ctxs))
		for i, ctx := range ctxs {
			in := Instance{Property: prop, Context: ctx.label}
			res, err := ev.EvalProperty(prop, ctx.args...)
			if err != nil {
				in.Diagnostic = err.Error()
			} else {
				in.Holds = res.Holds
				in.Confidence = res.Confidence
				in.Severity = res.Severity
			}
			out[i] = in
		}
		return out
	}
	return a.analyzeGuided(run, h, "guided", evalGroup)
}

// AnalyzeGuidedSQL runs the same refinement-driven search with the compiled
// SQL queries executed inside the database. The search revisits each
// property across many contexts as it descends the region tree, so each
// property's query is prepared once, on first use, and executed per context
// when the executor supports prepared statements. The contexts a search step
// opens up are evaluated together, so on batch-capable executors each step
// costs one round trip per BatchSize contexts rather than one per context.
func (a *Analyzer) AnalyzeGuidedSQL(run *model.TestRun, h Hierarchy, q QueryExec) (*Report, *SearchStats, error) {
	preparer := a.preparer(q)
	// The memo caches failures too, so a property that does not compile
	// produces its diagnostic once per context without recompiling.
	type compileResult struct {
		c   *compiledProp
		err error
	}
	compiled := make(map[string]compileResult)
	defer func() {
		for _, r := range compiled {
			if r.c != nil {
				r.c.close()
			}
		}
	}()
	compile := func(prop string) (*compiledProp, error) {
		if r, ok := compiled[prop]; ok {
			return r.c, r.err
		}
		c, err := a.compileProp(prop, preparer)
		compiled[prop] = compileResult{c: c, err: err}
		return c, err
	}
	fail := &analysisAbort{}
	evalGroup := func(prop string, ctxs []instCtx) []Instance {
		out := make([]Instance, len(ctxs))
		c, err := compile(prop)
		if err != nil {
			for i, ctx := range ctxs {
				out[i] = Instance{Property: prop, Context: ctx.label, Outcome: Outcome{Diagnostic: err.Error()}}
			}
			return out
		}
		a.evalSQLCtxs(context.Background(), q, c, prop, ctxs, out, fail)
		return out
	}
	rep, stats, err := a.analyzeGuided(run, h, "guided-sql", evalGroup)
	if err == nil {
		// A lost shard aborts the search; see AnalyzeSQL.
		if ferr := fail.Err(); ferr != nil {
			return nil, nil, ferr
		}
	}
	return rep, stats, err
}

// analyzeGuided is the engine-agnostic refinement search; evalGroup
// evaluates the instances one search step opened up, one Instance per
// context in context order (batched inside the SQL engine when supported).
func (a *Analyzer) analyzeGuided(run *model.TestRun, h Hierarchy, engine string, evalGroup func(prop string, ctxs []instCtx) []Instance) (*Report, *SearchStats, error) {
	if err := h.Validate(a.world.Props); err != nil {
		return nil, nil, err
	}
	sc, err := a.scopeFromGraph(run)
	if err != nil {
		return nil, nil, err
	}

	stats := &SearchStats{}
	for _, prop := range a.props {
		ctxs, err := a.contexts(sc, prop)
		if err != nil {
			return nil, nil, err
		}
		stats.Exhaustive += len(ctxs)
	}

	var instances []Instance
	evaluated := make(map[string]bool)

	// The work list pairs a property with the region subtree that scopes it.
	type item struct {
		prop string
		root *object.Object // nil means "all regions" (search roots)
	}
	var queue []item
	for _, root := range h.Roots(a.props) {
		queue = append(queue, item{prop: root})
	}

	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		ctxs, err := a.contexts(sc, it.prop)
		if err != nil {
			return nil, nil, err
		}
		// Collect the contexts this step opens up, then evaluate them as one
		// group: the refinement decisions below depend only on each
		// instance's own outcome, so deferring them past the group changes
		// neither the visit set nor the visit order.
		var pending []instCtx
		for _, ctx := range ctxs {
			if it.root != nil && !ctxInSubtree(ctx, it.root) {
				continue
			}
			key := it.prop + "\x00" + ctx.label
			if evaluated[key] {
				continue
			}
			evaluated[key] = true
			pending = append(pending, ctx)
		}
		if len(pending) == 0 {
			continue
		}
		stats.Evaluated += len(pending)
		for i, in := range evalGroup(it.prop, pending) {
			instances = append(instances, in)
			if in.Holds && in.Severity > a.threshold {
				region := contextRegion(pending[i])
				for _, child := range h.Children(it.prop, a.props) {
					queue = append(queue, item{prop: child, root: region})
				}
			}
		}
	}

	rep := a.finish(engine, run.NoPe, instances)
	return rep, stats, nil
}

// contextRegion extracts the region object scoping a context: the first
// argument for region properties, the calling region for call properties.
func contextRegion(ctx instCtx) *object.Object {
	first, _ := ctx.args[0].(*object.Object)
	if first == nil {
		return nil
	}
	if first.Class.Name == "Region" {
		return first
	}
	if reg, ok := first.Get("CallingReg").(*object.Object); ok {
		return reg
	}
	return nil
}

// ctxInSubtree reports whether a context's region lies in the subtree
// rooted at the given region (following ParentRegion links).
func ctxInSubtree(ctx instCtx, root *object.Object) bool {
	for r := contextRegion(ctx); r != nil; {
		if r == root {
			return true
		}
		parent, ok := r.Get("ParentRegion").(*object.Object)
		if !ok {
			return false
		}
		r = parent
	}
	return false
}

// SortedBySeverity returns instances ordered as reports order them; used by
// tests comparing guided and exhaustive results.
func SortedBySeverity(in []Instance) []Instance {
	out := append([]Instance(nil), in...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Property != out[j].Property {
			return out[i].Property < out[j].Property
		}
		return out[i].Context < out[j].Context
	})
	return out
}
