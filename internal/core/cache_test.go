package core

import (
	"testing"

	"repro/internal/apprentice"
	"repro/internal/godbc"
)

// The result-cache determinism suite: analyses answered from the server-side
// result cache must render byte-identically to uncached ones — at any worker
// count, batch size, and shard count, before and after DML invalidated the
// cached run. Run with -race to exercise concurrent lookups and stores.

// halveTypedTiming is DML to a run-partitioned table (model.RunPartitioned
// includes TypedTiming): it changes the overhead-based severities, so any
// stale cached result would be visible in the report.
const halveTypedTiming = `UPDATE TypedTiming SET Time = Time / 2`

// TestCachedAnalysisDeterminism: on the embedded engine, cache-on analyses
// (first run populating, second run served from cache) render identically to
// the cache-off baseline, at workers 1 and 8; DML invalidates and the
// post-DML reports agree again.
func TestCachedAnalysisDeterminism(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	run := lastRun(g)

	offDB := loadDB(t, g)
	offDB.SetResultCacheSize(0)
	ref := New(g)
	analyzeOff := func() (*Report, error) { return ref.AnalyzeSQL(run, godbc.Embedded{DB: offDB}) }
	wantBefore := renderWith(t, ref, 1, analyzeOff)
	if _, err := offDB.Exec(halveTypedTiming, nil); err != nil {
		t.Fatal(err)
	}
	wantAfter := renderWith(t, ref, 1, analyzeOff)
	if wantBefore == wantAfter {
		t.Fatal("the invalidating DML did not change the report; the test is vacuous")
	}

	for _, workers := range []int{1, 8} {
		onDB := loadDB(t, g)
		a := New(g)
		q := godbc.Embedded{DB: onDB}
		analyzeOn := func() (*Report, error) { return a.AnalyzeSQL(run, q) }
		cold := renderWith(t, a, workers, analyzeOn)
		warm := renderWith(t, a, workers, analyzeOn)
		if cold != wantBefore || warm != wantBefore {
			t.Errorf("workers=%d: cached reports differ from the cache-off baseline", workers)
		}
		stats, _, _ := q.CacheStats()
		if stats.Hits == 0 {
			t.Errorf("workers=%d: warm analysis recorded no cache hits", workers)
		}
		if _, err := onDB.Exec(halveTypedTiming, nil); err != nil {
			t.Fatal(err)
		}
		after := renderWith(t, a, workers, analyzeOn)
		if after != wantAfter {
			t.Errorf("workers=%d: post-DML cached report differs from the cache-off baseline:\n--- want ---\n%s--- got ---\n%s",
				workers, wantAfter, after)
		}
	}
}

// TestCachedShardedDeterminism: every shard caches independently; the merged
// report of a cache-warm sharded analysis is byte-identical to the cache-off
// single-node baseline at shards 1/2/4 × workers 1/8, and DML to the
// partitioned table (broadcast, so every shard's copy of its own runs moves)
// invalidates without corrupting the merge.
func TestCachedShardedDeterminism(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	run := lastRun(g)

	offDB := loadDB(t, g)
	offDB.SetResultCacheSize(0)
	ref := New(g)
	analyzeOff := func() (*Report, error) { return ref.AnalyzeSQL(run, godbc.Embedded{DB: offDB}) }
	wantBefore := renderWith(t, ref, 1, analyzeOff)
	if _, err := offDB.Exec(halveTypedTiming, nil); err != nil {
		t.Fatal(err)
	}
	wantAfter := renderWith(t, ref, 1, analyzeOff)
	if wantBefore == wantAfter {
		t.Fatal("the invalidating DML did not change the report; the test is vacuous")
	}

	for _, shards := range []int{1, 2, 4} {
		h := startShardHarness(t, g, shards)
		for _, workers := range []int{1, 8} {
			a := New(g)
			analyze := func() (*Report, error) { return a.AnalyzeSQL(run, h.sdb) }
			cold := renderWith(t, a, workers, analyze)
			warm := renderWith(t, a, workers, analyze)
			if cold != wantBefore || warm != wantBefore {
				t.Errorf("shards=%d workers=%d: cached reports differ from the baseline", shards, workers)
			}
		}
		stats, ok, err := h.sdb.CacheStats()
		if err != nil || !ok {
			t.Fatalf("shards=%d: CacheStats: ok=%v err=%v", shards, ok, err)
		}
		if stats.Hits == 0 {
			t.Errorf("shards=%d: warm analyses recorded no cache hits", shards)
		}

		// DML to the partitioned table, broadcast so each shard updates the
		// rows of the runs it owns; the owning shard's cached results for the
		// analyzed run are invalidated, the report changes accordingly.
		if _, err := h.sdb.Exec(halveTypedTiming, nil); err != nil {
			t.Fatal(err)
		}
		a := New(g)
		after := renderWith(t, a, 8, func() (*Report, error) { return a.AnalyzeSQL(run, h.sdb) })
		if after != wantAfter {
			t.Errorf("shards=%d: post-DML report differs from the cache-off baseline:\n--- want ---\n%s--- got ---\n%s",
				shards, wantAfter, after)
		}
	}
}

// TestCachedBatchSizesDeterminism: the cache composes with every batch size —
// per-instance prepared execution, small batches, and the default — without
// changing the report.
func TestCachedBatchSizesDeterminism(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	run := lastRun(g)
	db := loadDB(t, g)
	db.SetResultCacheSize(0)
	ref := New(g)
	want := renderWith(t, ref, 1, func() (*Report, error) { return ref.AnalyzeSQL(run, godbc.Embedded{DB: db}) })

	for _, batch := range []int{1, 4, DefaultBatchSize} {
		onDB := loadDB(t, g)
		a := New(g, WithBatchSize(batch))
		q := godbc.Embedded{DB: onDB}
		for pass := 0; pass < 2; pass++ {
			got := renderWith(t, a, 8, func() (*Report, error) { return a.AnalyzeSQL(run, q) })
			if got != want {
				t.Errorf("batch=%d pass=%d: cached report differs from baseline", batch, pass)
			}
		}
	}
}

// TestCacheSurvivesUnrelatedTableDML at the analysis level: mutating a table
// no property query references keeps the warm cache warm — the second
// analysis after the DML still hits.
func TestCacheSurvivesUnrelatedTableDML(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	run := lastRun(g)
	db := loadDB(t, g)
	q := godbc.Embedded{DB: db}
	a := New(g)
	if _, err := a.AnalyzeSQL(run, q); err != nil {
		t.Fatal(err)
	}
	// A scratch table the property queries never touch.
	db.MustExec(`CREATE TABLE scratch (id INTEGER PRIMARY KEY)`, nil) // DDL clears the cache...
	if _, err := a.AnalyzeSQL(run, q); err != nil {                   // ...so warm it again
		t.Fatal(err)
	}
	before, _, _ := q.CacheStats()
	db.MustExec(`INSERT INTO scratch (id) VALUES (1)`, nil)
	if _, err := a.AnalyzeSQL(run, q); err != nil {
		t.Fatal(err)
	}
	after, _, _ := q.CacheStats()
	if after.Invalidations != before.Invalidations {
		t.Errorf("unrelated DML invalidated %d entries", after.Invalidations-before.Invalidations)
	}
	if after.Hits <= before.Hits {
		t.Errorf("analysis after unrelated DML did not hit the cache (hits %d -> %d)", before.Hits, after.Hits)
	}
}
