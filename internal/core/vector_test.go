package core

import (
	"testing"

	"repro/internal/apprentice"
	"repro/internal/godbc"
	"repro/internal/model"
	"repro/internal/sqldb"
)

// The vectorized-engine determinism suite: the engine selection must be
// invisible in the output. Reports computed on the columnar engine render
// byte-identically to the row interpreter's — at any worker count, batch
// size, and shard count, with the result cache on or off, before and after
// DML. Run with -race to exercise the pooled batch contexts under the
// concurrent analysis pipeline.

// rowBaseline renders the row-interpreter reference reports for a run:
// serial, cache-off, before and after the invalidating DML.
func rowBaseline(t *testing.T, g *model.Graph, run *model.TestRun) (before, after string) {
	t.Helper()
	db := loadDB(t, g)
	db.SetResultCacheSize(0)
	if err := db.SetEngine(sqldb.EngineRow); err != nil {
		t.Fatal(err)
	}
	ref := New(g)
	analyze := func() (*Report, error) { return ref.AnalyzeSQL(run, godbc.Embedded{DB: db}) }
	before = renderWith(t, ref, 1, analyze)
	if _, err := db.Exec(halveTypedTiming, nil); err != nil {
		t.Fatal(err)
	}
	after = renderWith(t, ref, 1, analyze)
	if before == after {
		t.Fatal("the invalidating DML did not change the report; the test is vacuous")
	}
	return before, after
}

// TestVectorAnalysisDeterminism: on the embedded database, the vectorized
// engine's report is byte-identical to the row engine's at workers 1/8 ×
// batch 1/32 × cache on/off, on repeat (cache-warm) analyses, and after DML.
func TestVectorAnalysisDeterminism(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	run := lastRun(g)
	wantBefore, wantAfter := rowBaseline(t, g, run)

	for _, workers := range []int{1, 8} {
		for _, batch := range []int{1, 32} {
			for _, cache := range []string{"off", "on"} {
				db := loadDB(t, g)
				if cache == "off" {
					db.SetResultCacheSize(0)
				}
				if err := db.SetEngine(sqldb.EngineVector); err != nil {
					t.Fatal(err)
				}
				a := New(g, WithBatchSize(batch))
				q := godbc.Embedded{DB: db}
				analyze := func() (*Report, error) { return a.AnalyzeSQL(run, q) }
				cold := renderWith(t, a, workers, analyze)
				warm := renderWith(t, a, workers, analyze)
				if cold != wantBefore || warm != wantBefore {
					t.Errorf("workers=%d batch=%d cache=%s: vectorized report differs from the row baseline",
						workers, batch, cache)
				}
				if _, err := db.Exec(halveTypedTiming, nil); err != nil {
					t.Fatal(err)
				}
				after := renderWith(t, a, workers, analyze)
				if after != wantAfter {
					t.Errorf("workers=%d batch=%d cache=%s: post-DML vectorized report differs from the row baseline:\n--- want ---\n%s--- got ---\n%s",
						workers, batch, cache, wantAfter, after)
				}
				if st := db.Stats(); st.VecSelects == 0 {
					t.Errorf("workers=%d batch=%d cache=%s: no SELECT took the vectorized path", workers, batch, cache)
				}
			}
		}
	}
}

// TestVectorShardedDeterminism: every shard runs the vectorized engine; the
// merged report matches the embedded row-engine baseline at shards 1/2 ×
// workers 1/8, and broadcast DML keeps the shards and the report consistent.
func TestVectorShardedDeterminism(t *testing.T) {
	g := buildGraph(t, apprentice.Particles())
	run := lastRun(g)
	wantBefore, wantAfter := rowBaseline(t, g, run)

	for _, shards := range []int{1, 2} {
		h := startShardHarness(t, g, shards)
		for _, db := range h.dbs {
			if err := db.SetEngine(sqldb.EngineVector); err != nil {
				t.Fatal(err)
			}
		}
		for _, workers := range []int{1, 8} {
			a := New(g)
			got := renderWith(t, a, workers, func() (*Report, error) { return a.AnalyzeSQL(run, h.sdb) })
			if got != wantBefore {
				t.Errorf("shards=%d workers=%d: vectorized report differs from the row baseline", shards, workers)
			}
		}
		if _, err := h.sdb.Exec(halveTypedTiming, nil); err != nil {
			t.Fatal(err)
		}
		a := New(g)
		after := renderWith(t, a, 8, func() (*Report, error) { return a.AnalyzeSQL(run, h.sdb) })
		if after != wantAfter {
			t.Errorf("shards=%d: post-DML vectorized report differs from the row baseline:\n--- want ---\n%s--- got ---\n%s",
				shards, wantAfter, after)
		}
		vec := int64(0)
		for _, db := range h.dbs {
			vec += db.Stats().VecSelects
		}
		if vec == 0 {
			t.Errorf("shards=%d: no SELECT took the vectorized path", shards)
		}
	}
}
